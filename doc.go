// Package paratick is a deterministic simulation library for studying
// scheduler-tick management in virtual machines, reproducing the system and
// evaluation of "Paratick: Reducing Timer Overhead in Virtual Machines"
// (Schildermans, Aerts, Shan, Ding — ICPP 2021).
//
// The paper's contribution — virtual scheduler ticks, where the guest stops
// programming its own tick timer and the hypervisor injects ticks on VM
// entry — is a Linux/KVM kernel modification. This library re-implements the
// whole stack as a discrete-event model: timer hardware (TSC-deadline MSR,
// VMX preemption timer), a KVM-like hypervisor with per-reason VM-exit
// accounting, a guest kernel (run queues, timer wheel, idle loop, RCU and
// softirq models), block devices, and behavioural workload generators for
// the paper's PARSEC and fio evaluations.
//
// # Quick start
//
// Compare paratick against the standard tickless ("dynticks") kernel on an
// I/O-intensive workload:
//
//	cmp, err := paratick.CompareToBaseline(paratick.Scenario{
//		Name:     "rndr-4k",
//		VCPUs:    1,
//		Workload: paratick.FioWorkload("rndr", 4, 32),
//	})
//	if err != nil { ... }
//	fmt.Println(cmp.Summary())
//
// # Tick modes
//
// Three guest tick-management policies are available (§2, §4 of the paper):
//
//   - ModePeriodic: classic fixed-rate scheduler tick.
//   - ModeDynticks: the tickless kernel, Linux's default and the paper's
//     baseline.
//   - ModeParatick: the paper's virtual scheduler ticks.
//
// # Custom workloads
//
// CustomWorkload builds arbitrary guest task graphs — compute phases,
// blocking locks and barriers, sleeps, and synchronous or write-back I/O —
// through a small builder API; see the examples directory.
//
// # Reproduction harness
//
// The cmd/paratick-bench binary and the repository's bench_test.go
// regenerate every table and figure of the paper's evaluation; EXPERIMENTS.md
// records paper-vs-measured values.
package paratick
