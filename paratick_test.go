package paratick

import (
	"strings"
	"testing"
	"time"
)

func TestTickModeStrings(t *testing.T) {
	if ModeDynticks.String() != "dynticks" || ModePeriodic.String() != "periodic" ||
		ModeParatick.String() != "paratick" {
		t.Error("mode names wrong")
	}
	for _, s := range []string{"periodic", "dynticks", "tickless", "paratick"} {
		if _, err := ParseTickMode(s); err != nil {
			t.Errorf("ParseTickMode(%q): %v", s, err)
		}
	}
	if _, err := ParseTickMode("bogus"); err == nil {
		t.Error("bogus mode parsed")
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{Workload: IdleWorkload(), Duration: time.Second}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scenario{}).Validate(); err == nil {
		t.Error("empty scenario (no workload, no duration) accepted")
	}
	if err := (Scenario{Duration: -time.Second}).Validate(); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRunIdleScenario(t *testing.T) {
	rep, err := Run(Scenario{
		Mode:     ModePeriodic,
		VCPUs:    2,
		Duration: 100 * time.Millisecond,
		Workload: IdleWorkload(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModePeriodic {
		t.Fatalf("mode = %v", rep.Mode)
	}
	// 2 vCPUs × 25 ticks × 2 exits.
	if rep.TotalExits < 80 || rep.TotalExits > 130 {
		t.Fatalf("idle periodic exits = %d, want ~100", rep.TotalExits)
	}
	if rep.GuestTicks < 40 {
		t.Fatalf("guest ticks = %d", rep.GuestTicks)
	}
	if !strings.Contains(rep.Summary(), "VM exits") {
		t.Error("summary malformed")
	}
}

func TestRunFioScenario(t *testing.T) {
	rep, err := Run(Scenario{
		Mode:     ModeParatick,
		Workload: FioWorkload("rndr", 4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOOps != 256 { // 1 MiB / 4 KiB
		t.Fatalf("io ops = %d, want 256", rep.IOOps)
	}
	if rep.IOThroughputMBps <= 0 {
		t.Fatal("no io throughput")
	}
	if rep.VirtualTicks == 0 {
		t.Fatal("paratick run recorded no virtual ticks")
	}
	if !strings.Contains(rep.Summary(), "io") {
		t.Error("summary missing io line")
	}
}

func TestRunRejectsBadWorkloads(t *testing.T) {
	if _, err := Run(Scenario{Workload: FioWorkload("zzz", 4, 1)}); err == nil {
		t.Error("bad fio pattern accepted")
	}
	if _, err := Run(Scenario{Workload: FioWorkload("rndr", 0, 1)}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := Run(Scenario{Workload: ParsecSequential("nope")}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Scenario{Workload: CustomWorkload("x", nil)}); err == nil {
		t.Error("nil custom setup accepted")
	}
}

func TestCompareToBaselineFio(t *testing.T) {
	cmp, err := CompareToBaseline(Scenario{Workload: FioWorkload("rndr", 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline.Mode != ModeDynticks || cmp.Optimized.Mode != ModeParatick {
		t.Fatalf("modes: %v vs %v", cmp.Baseline.Mode, cmp.Optimized.Mode)
	}
	if cmp.ExitsDelta >= 0 {
		t.Errorf("exits delta = %v, want negative", cmp.ExitsDelta)
	}
	if cmp.TimerExitsDelta >= -0.5 {
		t.Errorf("timer exits delta = %v, want strong reduction", cmp.TimerExitsDelta)
	}
	if cmp.ThroughputDelta <= 0 {
		t.Errorf("throughput delta = %v, want positive", cmp.ThroughputDelta)
	}
	if cmp.RuntimeDelta >= 0 {
		t.Errorf("runtime delta = %v, want negative", cmp.RuntimeDelta)
	}
	if cmp.IOThroughputDelta <= 0 {
		t.Errorf("io throughput delta = %v, want positive", cmp.IOThroughputDelta)
	}
	s := cmp.Summary()
	for _, want := range []string{"VM exits", "system throughput", "execution time", "io throughput"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompareExplicitPeriodic(t *testing.T) {
	// Comparing periodic against the dynticks baseline on an idle VM:
	// periodic is far worse (§3.3 W1).
	cmp, err := CompareToBaseline(Scenario{
		Mode:     ModePeriodic,
		VCPUs:    4,
		Duration: 200 * time.Millisecond,
		Workload: IdleWorkload(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ExitsDelta <= 1 {
		t.Errorf("periodic idle should have many times the exits of dynticks, delta = %v", cmp.ExitsDelta)
	}
}

func TestParsecBenchmarksList(t *testing.T) {
	bs := ParsecBenchmarks()
	if len(bs) != 13 {
		t.Fatalf("benchmarks = %d", len(bs))
	}
	if bs[0] != "blackscholes" || bs[12] != "x264" {
		t.Fatalf("ordering: %v", bs)
	}
}

func TestParsecSequentialScenario(t *testing.T) {
	rep, err := Run(Scenario{Workload: ParsecSequentialScaled("swaptions", 0.02)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsefulCycles < 10*time.Millisecond {
		t.Fatalf("useful cycles = %v", rep.UsefulCycles)
	}
	if rep.Name != "parsec-seq/swaptions" {
		t.Fatalf("name = %q", rep.Name)
	}
}

func TestParsecParallelScenario(t *testing.T) {
	rep, err := Run(Scenario{
		VCPUs:    4,
		Workload: ParsecParallelScaled("fluidanimate", 4, 0.02),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wakeups == 0 {
		t.Fatal("parallel run recorded no wakeups")
	}
	if rep.IdleTransitions == 0 {
		t.Fatal("parallel run recorded no idle transitions")
	}
}

func TestSyncWorkloadScenario(t *testing.T) {
	rep, err := Run(Scenario{
		VCPUs:    4,
		Workload: SyncWorkload(4, 2000, 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wakeups < 20 {
		t.Fatalf("wakeups = %d, want rendezvous traffic", rep.Wakeups)
	}
}

func TestCustomWorkloadScenario(t *testing.T) {
	var lock *Lock
	wl := CustomWorkload("pipeline", func(b *Builder) error {
		dev, err := b.AttachDevice("d0", DeviceNVMe)
		if err != nil {
			return err
		}
		lock = b.NewLock("l")
		for i := 0; i < 2; i++ {
			i := i
			if err := b.Spawn("t", i, Sequence(
				OpCompute(2*time.Millisecond),
				OpAcquire(lock),
				OpCompute(10*time.Microsecond),
				OpRelease(lock),
				OpRead(dev, 4096, false),
				OpCompute(time.Millisecond),
			)); err != nil {
				return err
			}
		}
		return nil
	})
	rep, err := Run(Scenario{VCPUs: 2, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IOOps != 2 {
		t.Fatalf("io ops = %d, want 2", rep.IOOps)
	}
	if lock.Acquisitions() != 2 {
		t.Fatalf("lock acquisitions = %d", lock.Acquisitions())
	}
	if rep.Name != "pipeline" {
		t.Fatalf("name = %q", rep.Name)
	}
}

func TestCustomProgramFuncAndContext(t *testing.T) {
	iterations := 0
	wl := CustomWorkload("gen", func(b *Builder) error {
		return b.Spawn("g", 0, ProgramFunc(func(ctx *Context) Op {
			if iterations >= 5 {
				return OpDone()
			}
			iterations++
			// Exercise the deterministic randomness helpers.
			d := ctx.Jitter(100*time.Microsecond, 0.2)
			if ctx.Float64() < 0 || ctx.Intn(10) >= 10 {
				t.Error("context randomness out of range")
			}
			if ctx.Exp(time.Microsecond) <= 0 {
				t.Error("Exp returned non-positive")
			}
			return OpCompute(d)
		}))
	})
	rep, err := Run(Scenario{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if iterations != 5 {
		t.Fatalf("iterations = %d", iterations)
	}
	if rep.ExecutionTime <= 0 {
		t.Fatal("no execution time")
	}
}

func TestZeroOpFinishesTask(t *testing.T) {
	wl := CustomWorkload("zero", func(b *Builder) error {
		return b.Spawn("z", 0, ProgramFunc(func(*Context) Op {
			return Op{} // zero value must terminate, not spin
		}))
	})
	if _, err := Run(Scenario{Workload: wl}); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnValidation(t *testing.T) {
	wl := CustomWorkload("bad", func(b *Builder) error {
		return b.Spawn("x", 99, Sequence(OpCompute(time.Millisecond)))
	})
	if _, err := Run(Scenario{Workload: wl}); err == nil {
		t.Error("out-of-range vCPU accepted")
	}
	wl2 := CustomWorkload("bad2", func(b *Builder) error {
		return b.Spawn("x", 0, nil)
	})
	if _, err := Run(Scenario{Workload: wl2}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestTraceCapture(t *testing.T) {
	rep, err := Run(Scenario{
		Mode:          ModeParatick,
		Workload:      FioWorkload("rndr", 4, 1),
		TraceCapacity: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace.Total() == 0 {
		t.Fatal("trace empty")
	}
	if !strings.Contains(rep.Trace.Summary(), "exit/") {
		t.Error("trace summary missing exits")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Scenario{
			VCPUs:    4,
			Seed:     77,
			Workload: ParsecParallelScaled("dedup", 4, 0.01),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TotalExits != b.TotalExits || a.ExecutionTime != b.ExecutionTime ||
		a.BusyCycles != b.BusyCycles {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) *Report {
		rep, err := Run(Scenario{
			VCPUs:    2,
			Seed:     seed,
			Workload: ParsecParallelScaled("canneal", 2, 0.01),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if run(1).ExecutionTime == run(2).ExecutionTime {
		t.Error("different seeds produced identical execution times (suspicious)")
	}
}

func TestDeviceClasses(t *testing.T) {
	for _, d := range []DeviceClass{DeviceNVMe, DeviceSataSSD, DeviceHDD} {
		if d.profile().Validate() != nil {
			t.Errorf("device class %v invalid", d)
		}
	}
	if DeviceNVMe.String() != "nvme" || DeviceHDD.String() != "hdd" || DeviceSataSSD.String() != "sata-ssd" {
		t.Error("device class names")
	}
}

func TestHDDShowsLittleBenefit(t *testing.T) {
	// §4.2: "For high latency I/O devices such as HDDs the potential for
	// improvement is limited."
	hdd, err := CompareToBaseline(Scenario{Workload: FioWorkloadOn("rndr", 4, 1, DeviceHDD)})
	if err != nil {
		t.Fatal(err)
	}
	nvme, err := CompareToBaseline(Scenario{Workload: FioWorkloadOn("rndr", 4, 1, DeviceNVMe)})
	if err != nil {
		t.Fatal(err)
	}
	if hdd.RuntimeDelta < nvme.RuntimeDelta {
		t.Errorf("HDD runtime benefit (%v) should be smaller than NVMe's (%v)",
			hdd.RuntimeDelta, nvme.RuntimeDelta)
	}
	if hdd.RuntimeDelta < -0.02 {
		t.Errorf("HDD runtime delta = %v, should be near zero", hdd.RuntimeDelta)
	}
}

func TestSummaryIncludesLatencyTables(t *testing.T) {
	rep, err := Run(Scenario{
		Mode:     ModePeriodic,
		VCPUs:    1,
		Duration: 100 * time.Millisecond,
		Workload: IdleWorkload(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitLatencyTable() == nil || rep.InjectLatencyTable() == nil {
		t.Fatal("latency tables nil for a run with exits")
	}
	s := rep.Summary()
	for _, want := range []string{
		"exit handling cost", "injection latency", "tick interval",
		"p50", "p95", "p99",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
