package paratick

import (
	"fmt"
	"time"

	"paratick/internal/guest"
	"paratick/internal/iodev"
	"paratick/internal/kvm"
	"paratick/internal/sim"
)

// CustomWorkload builds an arbitrary guest workload: the setup function
// receives a Builder to attach devices, create synchronization objects, and
// spawn task programs.
func CustomWorkload(label string, setup func(b *Builder) error) Workload {
	return &customWL{label: label, setup: setup}
}

type customWL struct {
	label string
	setup func(b *Builder) error
}

func (w *customWL) name() string {
	if w.label != "" {
		return w.label
	}
	return "custom"
}

func (w *customWL) apply(vm *kvm.VM) error {
	if w.setup == nil {
		return fmt.Errorf("paratick: CustomWorkload with nil setup")
	}
	return w.setup(&Builder{vm: vm})
}

// Builder assembles a custom workload inside a fresh VM.
type Builder struct {
	vm      *kvm.VM
	devices int
}

// VCPUs returns the VM's vCPU count, for spreading tasks.
func (b *Builder) VCPUs() int { return len(b.vm.VCPUs()) }

// AttachDevice adds a block device of the given class.
func (b *Builder) AttachDevice(name string, class DeviceClass) (*Device, error) {
	dev, err := b.vm.AttachDevice(name, class.profile())
	if err != nil {
		return nil, err
	}
	b.devices++
	return &Device{dev: dev}, nil
}

// AttachCustomDevice adds a block device with explicit latencies — useful
// for controlled experiments (delay lines, hypothetical ultra-low-latency
// storage).
func (b *Builder) AttachCustomDevice(name string, readLatency, writeLatency time.Duration) (*Device, error) {
	profile := iodev.Profile{
		Name:       name,
		ReadBase:   sim.Time(readLatency.Nanoseconds()),
		WriteBase:  sim.Time(writeLatency.Nanoseconds()),
		SeqFactor:  1,
		QueueDepth: 32,
		Jitter:     0.05,
	}
	dev, err := b.vm.AttachDevice(name, profile)
	if err != nil {
		return nil, err
	}
	b.devices++
	return &Device{dev: dev}, nil
}

// NewLock creates a guest-level blocking mutex.
func (b *Builder) NewLock(name string) *Lock {
	return &Lock{l: b.vm.Kernel().NewLock(name)}
}

// NewBarrier creates a guest-level barrier for parties tasks.
func (b *Builder) NewBarrier(name string, parties int) *Barrier {
	return &Barrier{b: b.vm.Kernel().NewBarrier(name, parties)}
}

// NewCond creates a condition variable paired with l.
func (b *Builder) NewCond(name string, l *Lock) *Cond {
	return &Cond{c: b.vm.Kernel().NewCond(name, l.l)}
}

// Spawn creates a task on the given vCPU running prog.
func (b *Builder) Spawn(name string, vcpu int, prog Program) error {
	if prog == nil {
		return fmt.Errorf("paratick: Spawn %q with nil program", name)
	}
	if vcpu < 0 || vcpu >= b.VCPUs() {
		return fmt.Errorf("paratick: Spawn %q on vCPU %d of %d", name, vcpu, b.VCPUs())
	}
	b.vm.Kernel().Spawn(name, vcpu, &progAdapter{prog: prog})
	return nil
}

// Device wraps a block device for custom programs.
type Device struct{ dev *iodev.Device }

// Ops returns the number of completed device operations.
func (d *Device) Ops() uint64 { return d.dev.Ops() }

// Lock wraps a guest mutex.
type Lock struct{ l *guest.Lock }

// Acquisitions returns successful acquisitions so far.
func (l *Lock) Acquisitions() uint64 { return l.l.Acquisitions() }

// Contended returns how many acquisitions had to block.
func (l *Lock) Contended() uint64 { return l.l.Contended() }

// Cond wraps a guest condition variable.
type Cond struct{ c *guest.Cond }

// Waits returns the total number of waits performed.
func (c *Cond) Waits() uint64 { return c.c.Waits() }

// Barrier wraps a guest barrier.
type Barrier struct{ b *guest.Barrier }

// Cycles returns how many times the barrier has released.
func (b *Barrier) Cycles() uint64 { return b.b.Cycles() }

// Context is passed to Program.Next: the current simulated time, the task
// id, and deterministic randomness helpers.
type Context struct {
	Now    time.Duration
	TaskID int
	rand   *sim.Rand
}

// Float64 returns a uniform value in [0,1).
func (c *Context) Float64() float64 { return c.rand.Float64() }

// Intn returns a uniform value in [0,n).
func (c *Context) Intn(n int) int { return c.rand.Intn(n) }

// Jitter perturbs d by ±f (e.g. 0.2 = ±20%).
func (c *Context) Jitter(d time.Duration, f float64) time.Duration {
	return time.Duration(c.rand.Jitter(sim.Time(d.Nanoseconds()), f))
}

// Exp returns an exponentially distributed duration with the given mean.
func (c *Context) Exp(mean time.Duration) time.Duration {
	return time.Duration(c.rand.Exp(sim.Time(mean.Nanoseconds())))
}

// Program generates a task's behaviour one operation at a time; Next is
// called when the previous operation (including any blocking) completed.
type Program interface {
	Next(ctx *Context) Op
}

// ProgramFunc adapts a function to Program.
type ProgramFunc func(ctx *Context) Op

// Next implements Program.
func (f ProgramFunc) Next(ctx *Context) Op { return f(ctx) }

// Sequence returns a Program replaying fixed ops, then finishing.
func Sequence(ops ...Op) Program {
	i := 0
	return ProgramFunc(func(*Context) Op {
		if i >= len(ops) {
			return OpDone()
		}
		op := ops[i]
		i++
		return op
	})
}

// Op is one operation of a custom program. Create ops with the
// constructors; the zero Op finishes the task.
type Op struct{ step guest.Step }

// OpCompute runs on the CPU for d.
func OpCompute(d time.Duration) Op {
	return Op{guest.Compute(sim.Time(d.Nanoseconds()))}
}

// OpSleep blocks the task on a soft timer for d.
func OpSleep(d time.Duration) Op {
	return Op{guest.Sleep(sim.Time(d.Nanoseconds()))}
}

// OpAcquire takes the lock, blocking on contention.
func OpAcquire(l *Lock) Op { return Op{guest.Acquire(l.l)} }

// OpRelease releases the lock, waking the next waiter.
func OpRelease(l *Lock) Op { return Op{guest.Release(l.l)} }

// OpWait atomically releases the cond's lock, blocks until signaled, and
// re-acquires the lock (the caller must hold it).
func OpWait(c *Cond) Op { return Op{guest.Wait(c.c)} }

// OpSignal wakes one waiter of the cond.
func OpSignal(c *Cond) Op { return Op{guest.Signal(c.c)} }

// OpBroadcast wakes all waiters of the cond.
func OpBroadcast(c *Cond) Op { return Op{guest.Broadcast(c.c)} }

// OpBarrier joins the barrier.
func OpBarrier(b *Barrier) Op { return Op{guest.JoinBarrier(b.b)} }

// OpLeaveBarrier detaches from the barrier party (call before finishing a
// task that participates in a barrier).
func OpLeaveBarrier(b *Barrier) Op { return Op{guest.LeaveBarrier(b.b)} }

// OpRead performs a synchronous read of n bytes.
func OpRead(d *Device, n int, sequential bool) Op {
	return Op{guest.Read(d.dev, n, sequential)}
}

// OpWrite performs a write of n bytes; blocking selects sync semantics.
func OpWrite(d *Device, n int, sequential, blocking bool) Op {
	return Op{guest.WriteOp(d.dev, n, sequential, blocking)}
}

// OpYield relinquishes the CPU to the next runnable task.
func OpYield() Op { return Op{guest.Yield()} }

// OpDone finishes the task.
func OpDone() Op { return Op{guest.Done()} }

type progAdapter struct {
	prog Program
}

func (a *progAdapter) Next(ctx *guest.StepCtx) guest.Step {
	c := &Context{Now: time.Duration(ctx.Now), TaskID: ctx.TaskID, rand: ctx.Rand}
	step := a.prog.Next(c).step
	// The zero Op (and a zero-duration compute) finishes the task; letting
	// it through would spin the scheduler without advancing time.
	if step.Kind == guest.StepCompute && step.D <= 0 {
		return guest.Done()
	}
	return step
}
