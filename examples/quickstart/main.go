// Quickstart: compare paratick against the standard tickless kernel on one
// workload and print the paper's three headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"paratick"
)

func main() {
	// dedup is the PARSEC suite's most I/O- and sync-intensive pipeline;
	// §6.1 shows it among the biggest paratick winners.
	scenario := paratick.Scenario{
		Name:     "quickstart-dedup",
		VCPUs:    1,
		Workload: paratick.ParsecSequential("dedup"),
	}

	// Run once under paratick and once under the dynticks baseline.
	cmp, err := paratick.CompareToBaseline(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== dedup, sequential, 1 vCPU ===")
	fmt.Print(cmp.Summary())

	// Reports carry the full exit breakdown for deeper digging.
	fmt.Println("\n--- baseline (dynticks) detail ---")
	fmt.Print(cmp.Baseline.Summary())
	fmt.Println("\n--- paratick detail ---")
	fmt.Print(cmp.Optimized.Summary())
}
