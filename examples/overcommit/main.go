// Overcommit: the §3.1/§3.3 story — on a consolidated host where several
// vCPUs share each physical CPU, classic periodic ticks waste enormous
// resources (every vCPU's tick interrupts whoever is running), tickless
// kernels fix the idle case but pay per idle transition, and paratick
// undercuts both.
//
//	go run ./examples/overcommit
package main

import (
	"fmt"
	"log"
	"time"

	"paratick"
)

func main() {
	modes := []paratick.TickMode{
		paratick.ModePeriodic, paratick.ModeDynticks, paratick.ModeParatick,
	}

	// Scenario A: a mostly idle 16-vCPU VM squeezed onto 4 physical CPUs —
	// the consolidation case where idle guests should cost nothing.
	fmt.Println("=== A: idle 16-vCPU VM, 4:1 overcommit, 1 simulated second ===")
	fmt.Printf("%-10s %12s %14s %14s\n", "mode", "exits", "timer-exits", "host-overhead")
	for _, m := range modes {
		rep, err := paratick.Run(paratick.Scenario{
			Name:       "idle-overcommit",
			Mode:       m,
			VCPUs:      16,
			Overcommit: 4,
			Duration:   time.Second,
			Workload:   paratick.IdleWorkload(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14d %14v\n", m, rep.TotalExits, rep.TimerExits, rep.HostOverhead)
	}

	// Scenario B: the W3 workload of §3.3 — 16 threads blocking-syncing
	// 1000×/s — where tickless kernels lose to periodic ticks and paratick
	// beats both.
	fmt.Println("\n=== B: 16 threads, 1000 blocking syncs/s (W3 of §3.3), 2:1 overcommit ===")
	fmt.Printf("%-10s %12s %14s %14s\n", "mode", "exits", "timer-exits", "guest-ticks")
	for _, m := range modes {
		rep, err := paratick.Run(paratick.Scenario{
			Name:       "w3-overcommit",
			Mode:       m,
			VCPUs:      16,
			Overcommit: 2,
			Duration:   time.Second,
			Workload:   paratick.SyncWorkload(16, 1000, time.Second),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14d %14d\n", m, rep.TotalExits, rep.TimerExits, rep.GuestTicks)
	}
	// Scenario C: the host scheduler as its own axis. Eight vCPUs spin
	// while eight others rendezvous at a barrier: each release must wake
	// every party, and under FIFO a woken vCPU waits behind full fixed
	// timeslices of the spinners queued ahead of it. The fair policy picks
	// by least virtual runtime with a depth-scaled timeslice, so the sync
	// group cycles far more often on the same hardware.
	fmt.Println("\n=== C: barrier group vs spinning hogs, 4:1 overcommit, FIFO vs fair ===")
	fmt.Printf("%-10s %15s %12s\n", "sched", "barrier-cycles", "wakeups")
	dur := time.Second
	for _, pol := range []paratick.SchedPolicy{paratick.SchedFIFO, paratick.SchedFair} {
		var bar *paratick.Barrier
		rep, err := paratick.Run(paratick.Scenario{
			Name:       "mixed-sched",
			Mode:       paratick.ModeParatick,
			VCPUs:      16,
			Overcommit: 4,
			Sched:      pol,
			Duration:   dur,
			Workload: paratick.CustomWorkload("hogs+sync", func(b *paratick.Builder) error {
				// Hogs on even vCPUs, sync parties on odd ones: vCPUs map to
				// pCPUs in contiguous blocks under Overcommit, so interleaving
				// puts spinners and sync threads on every pCPU.
				for i := 0; i < 8; i++ {
					err := b.Spawn(fmt.Sprintf("hog%d", i), 2*i,
						paratick.ProgramFunc(func(*paratick.Context) paratick.Op {
							return paratick.OpCompute(2 * dur)
						}))
					if err != nil {
						return err
					}
				}
				bar = b.NewBarrier("sync", 8)
				for i := 0; i < 8; i++ {
					compute := true
					err := b.Spawn(fmt.Sprintf("sync%d", i), 2*i+1,
						paratick.ProgramFunc(func(*paratick.Context) paratick.Op {
							if compute {
								compute = false
								return paratick.OpCompute(50 * time.Microsecond)
							}
							compute = true
							return paratick.OpBarrier(bar)
						}))
					if err != nil {
						return err
					}
				}
				return nil
			}),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %15d %12d\n", pol, bar.Cycles(), rep.Wakeups)
	}

	fmt.Println("\nParatick's virtual ticks ride the host's own timer interrupts, so")
	fmt.Println("timer-related exits all but disappear in both scenarios (§4.2).")
}
