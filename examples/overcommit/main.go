// Overcommit: the §3.1/§3.3 story — on a consolidated host where several
// vCPUs share each physical CPU, classic periodic ticks waste enormous
// resources (every vCPU's tick interrupts whoever is running), tickless
// kernels fix the idle case but pay per idle transition, and paratick
// undercuts both.
//
//	go run ./examples/overcommit
package main

import (
	"fmt"
	"log"
	"time"

	"paratick"
)

func main() {
	modes := []paratick.TickMode{
		paratick.ModePeriodic, paratick.ModeDynticks, paratick.ModeParatick,
	}

	// Scenario A: a mostly idle 16-vCPU VM squeezed onto 4 physical CPUs —
	// the consolidation case where idle guests should cost nothing.
	fmt.Println("=== A: idle 16-vCPU VM, 4:1 overcommit, 1 simulated second ===")
	fmt.Printf("%-10s %12s %14s %14s\n", "mode", "exits", "timer-exits", "host-overhead")
	for _, m := range modes {
		rep, err := paratick.Run(paratick.Scenario{
			Name:       "idle-overcommit",
			Mode:       m,
			VCPUs:      16,
			Overcommit: 4,
			Duration:   time.Second,
			Workload:   paratick.IdleWorkload(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14d %14v\n", m, rep.TotalExits, rep.TimerExits, rep.HostOverhead)
	}

	// Scenario B: the W3 workload of §3.3 — 16 threads blocking-syncing
	// 1000×/s — where tickless kernels lose to periodic ticks and paratick
	// beats both.
	fmt.Println("\n=== B: 16 threads, 1000 blocking syncs/s (W3 of §3.3), 2:1 overcommit ===")
	fmt.Printf("%-10s %12s %14s %14s\n", "mode", "exits", "timer-exits", "guest-ticks")
	for _, m := range modes {
		rep, err := paratick.Run(paratick.Scenario{
			Name:       "w3-overcommit",
			Mode:       m,
			VCPUs:      16,
			Overcommit: 2,
			Duration:   time.Second,
			Workload:   paratick.SyncWorkload(16, 1000, time.Second),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14d %14d\n", m, rep.TotalExits, rep.TimerExits, rep.GuestTicks)
	}
	fmt.Println("\nParatick's virtual ticks ride the host's own timer interrupts, so")
	fmt.Println("timer-related exits all but disappear in both scenarios (§4.2).")
}
