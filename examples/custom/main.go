// Custom: build a workload from scratch with the Builder API — a two-stage
// producer/consumer pipeline with a lock-protected queue and synchronous
// reads, the blocking-synchronization pattern §4.2 identifies as paratick's
// sweet spot.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"time"

	"paratick"
)

// pipeline builds: one producer reading blocks from disk and publishing
// them under a lock, and three consumers that each grab the lock, take an
// item, and process it. Consumers block (idling their vCPUs) whenever the
// queue is empty — generating exactly the brief idle periods that make
// tickless kernels pay per transition.
func pipeline(b *paratick.Builder) error {
	dev, err := b.AttachDevice("src", paratick.DeviceNVMe)
	if err != nil {
		return err
	}
	queueLock := b.NewLock("queue")
	items := 0 // guest-side shared state, safe: the simulator is single-threaded

	const totalItems = 400
	produced := 0
	if err := b.Spawn("producer", 0, paratick.ProgramFunc(func(ctx *paratick.Context) paratick.Op {
		switch {
		case produced >= totalItems:
			return paratick.OpDone()
		case produced%2 == 0:
			produced++
			return paratick.OpRead(dev, 16<<10, true)
		default:
			produced++
			items++
			return paratick.OpCompute(ctx.Jitter(30*time.Microsecond, 0.3))
		}
	})); err != nil {
		return err
	}

	for c := 1; c < b.VCPUs(); c++ {
		consumed := 0
		phase := 0
		if err := b.Spawn(fmt.Sprintf("consumer%d", c), c,
			paratick.ProgramFunc(func(ctx *paratick.Context) paratick.Op {
				switch phase {
				case 0:
					if consumed >= totalItems/(b.VCPUs()-1)/2 {
						return paratick.OpDone()
					}
					phase = 1
					return paratick.OpAcquire(queueLock)
				case 1:
					phase = 2
					if items > 0 {
						items--
						consumed++
					}
					return paratick.OpCompute(5 * time.Microsecond)
				case 2:
					phase = 3
					return paratick.OpRelease(queueLock)
				default:
					phase = 0
					// Process the item, then briefly wait for more work —
					// the micro-idle period at the heart of §3.2.
					return paratick.OpSleep(ctx.Jitter(200*time.Microsecond, 0.5))
				}
			})); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	cmp, err := paratick.CompareToBaseline(paratick.Scenario{
		Name:     "custom-pipeline",
		VCPUs:    4,
		Workload: paratick.CustomWorkload("pipeline", pipeline),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== custom producer/consumer pipeline, 4 vCPUs ===")
	fmt.Print(cmp.Summary())
	fmt.Println("\n--- paratick detail ---")
	fmt.Print(cmp.Optimized.Summary())
}
