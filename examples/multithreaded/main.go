// Multithreaded: the §6.2 experiment in miniature — a blocking-sync-heavy
// PARSEC benchmark across the paper's small/medium/large VM shapes, showing
// how paratick's throughput gain grows with parallelism while execution
// time barely moves (the critical-path argument of §4.2).
//
//	go run ./examples/multithreaded [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"paratick"
)

func main() {
	bench := "fluidanimate"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	sizes := []struct {
		name    string
		vcpus   int
		sockets int
	}{
		{"small", 4, 1},
		{"medium", 16, 2},
		{"large", 64, 4},
	}
	fmt.Printf("=== %s, multithreaded, paratick vs dynticks ===\n\n", bench)
	fmt.Printf("%-8s %12s %14s %12s %12s\n", "VM", "exits", "timer-exits", "throughput", "exec-time")
	for _, size := range sizes {
		cmp, err := paratick.CompareToBaseline(paratick.Scenario{
			Name:    bench + "/" + size.name,
			VCPUs:   size.vcpus,
			Sockets: size.sockets,
			// Scale the work down so the example runs in seconds.
			Workload: paratick.ParsecParallelScaled(bench, size.vcpus, 0.5),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %11.1f%% %13.1f%% %+11.1f%% %+11.1f%%\n",
			size.name,
			cmp.ExitsDelta*100, cmp.TimerExitsDelta*100,
			cmp.ThroughputDelta*100, cmp.RuntimeDelta*100)
	}
	fmt.Println("\nNote how the throughput gain dwarfs the execution-time gain:")
	fmt.Println("the exits paratick removes burn host CPU, but most sit off the")
	fmt.Println("critical path of the parallel computation (§6.2).")
}
