// Crossover: §3.3's "to tick or not to tick" question, answered through the
// public API — a task alternating short busy bursts with controlled idle
// periods (a delay-line device), swept across the tick period. Periodic
// ticks win at microsecond idle periods, tickless wins past ~2 tick
// periods, and paratick wins everywhere.
//
//	go run ./examples/crossover
package main

import (
	"fmt"
	"log"
	"time"

	"paratick"
)

func run(mode paratick.TickMode, idle time.Duration) *paratick.Report {
	ops := 0
	total := int(500 * time.Millisecond / (idle + 50*time.Microsecond))
	rep, err := paratick.Run(paratick.Scenario{
		Name: "crossover",
		Mode: mode,
		Workload: paratick.CustomWorkload("idle-cycle", func(b *paratick.Builder) error {
			dev, err := b.AttachCustomDevice("delay-line", idle, idle)
			if err != nil {
				return err
			}
			phase := 0
			return b.Spawn("cycle", 0, paratick.ProgramFunc(func(ctx *paratick.Context) paratick.Op {
				if ops >= total {
					return paratick.OpDone()
				}
				if phase == 0 {
					phase = 1
					return paratick.OpCompute(ctx.Jitter(50*time.Microsecond, 0.2))
				}
				phase = 0
				ops++
				return paratick.OpRead(dev, 4096, false)
			}))
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	idles := []time.Duration{
		200 * time.Microsecond, 1 * time.Millisecond,
		4 * time.Millisecond, 16 * time.Millisecond,
	}
	fmt.Println("timer-related VM exits over ~500ms of idle/busy cycling (250 Hz ticks):")
	fmt.Printf("%-12s %10s %10s %10s   %s\n", "idle period", "periodic", "tickless", "paratick", "winner")
	for _, idle := range idles {
		p := run(paratick.ModePeriodic, idle).TimerExits
		d := run(paratick.ModeDynticks, idle).TimerExits
		pt := run(paratick.ModeParatick, idle).TimerExits
		winner := "tickless"
		if d > p {
			winner = "periodic"
		}
		if pt <= p && pt <= d {
			winner += " (paratick best)"
		}
		fmt.Printf("%-12v %10d %10d %10d   %s\n", idle, p, d, pt, winner)
	}
	fmt.Println("\nThe §3.3 rule: tickless needs idle periods longer than the tick")
	fmt.Println("period to beat periodic ticks; paratick needs no timer exits at all.")
}
