// IObench: the §6.3 experiment in miniature — fio's four access patterns on
// devices of three latency classes, showing that paratick's I/O benefit
// grows as devices get faster (§4.2's prediction, and the paper's closing
// argument that "performance benefits will only increase as time goes on").
//
//	go run ./examples/iobench
package main

import (
	"fmt"
	"log"

	"paratick"
)

func main() {
	devices := []paratick.DeviceClass{
		paratick.DeviceHDD, paratick.DeviceSataSSD, paratick.DeviceNVMe,
	}
	patterns := []string{"seqr", "seqwr", "rndr", "rndwr"}

	fmt.Println("=== fio 4k, paratick vs dynticks: runtime improvement by device ===")
	fmt.Printf("%-10s", "pattern")
	for _, d := range devices {
		fmt.Printf(" %12s", d)
	}
	fmt.Println()
	for _, pat := range patterns {
		fmt.Printf("%-10s", pat)
		for _, dev := range devices {
			mb := 8
			if dev == paratick.DeviceHDD {
				mb = 1 // HDDs are slow; keep the example snappy
			}
			cmp, err := paratick.CompareToBaseline(paratick.Scenario{
				Name:     fmt.Sprintf("fio/%s/%s", pat, dev),
				Workload: paratick.FioWorkloadOn(pat, 4, mb, dev),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %+11.1f%%", cmp.RuntimeDelta*100)
		}
		fmt.Println()
	}

	fmt.Println("\n=== rndr 4k on NVMe, full comparison ===")
	cmp, err := paratick.CompareToBaseline(paratick.Scenario{
		Workload: paratick.FioWorkloadOn("rndr", 4, 16, paratick.DeviceNVMe),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cmp.Summary())
}
