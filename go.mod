module paratick

go 1.22
