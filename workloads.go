package paratick

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"paratick/internal/iodev"
	"paratick/internal/kvm"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// Workload generates the guest tasks of a scenario. Implementations are
// created with the constructors below (ParsecSequential, FioWorkload, ...)
// or with CustomWorkload.
type Workload interface {
	apply(vm *kvm.VM) error
	name() string
}

// DeviceClass selects a block-device latency profile.
type DeviceClass int

const (
	// DeviceNVMe is a modern low-latency NVMe-class SSD (the default).
	DeviceNVMe DeviceClass = iota
	// DeviceSataSSD resembles the paper's test system storage.
	DeviceSataSSD
	// DeviceHDD is a rotational disk.
	DeviceHDD
)

// String names the class.
func (d DeviceClass) String() string {
	switch d {
	case DeviceSataSSD:
		return "sata-ssd"
	case DeviceHDD:
		return "hdd"
	default:
		return "nvme"
	}
}

func (d DeviceClass) profile() iodev.Profile {
	switch d {
	case DeviceSataSSD:
		return iodev.SataSSD()
	case DeviceHDD:
		return iodev.HDD()
	default:
		return iodev.NVMe()
	}
}

// ParsecBenchmarks returns the names of the 13 modeled PARSEC workloads.
func ParsecBenchmarks() []string {
	ps := workload.Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

type parsecSeq struct {
	bench string
	scale float64
	dev   DeviceClass
}

// ParsecSequential runs one PARSEC benchmark in sequential mode (the §6.1
// experiment) on vCPU 0, with its file I/O on an NVMe-class device.
func ParsecSequential(benchmark string) Workload {
	return &parsecSeq{bench: benchmark, scale: 1}
}

// ParsecSequentialScaled is ParsecSequential with the work multiplied by
// scale (shorter or longer runs).
func ParsecSequentialScaled(benchmark string, scale float64) Workload {
	return &parsecSeq{bench: benchmark, scale: scale}
}

func (w *parsecSeq) name() string { return "parsec-seq/" + w.bench }

func (w *parsecSeq) apply(vm *kvm.VM) error {
	p, err := workload.ProfileByName(w.bench)
	if err != nil {
		return err
	}
	dev, err := vm.AttachDevice("disk0", w.dev.profile())
	if err != nil {
		return err
	}
	prog, err := p.SequentialProgram(dev, w.scale)
	if err != nil {
		return err
	}
	vm.Kernel().Spawn(p.Name, 0, prog)
	return nil
}

type parsecPar struct {
	bench   string
	threads int
	scale   float64
	dev     DeviceClass
}

// ParsecParallel runs one PARSEC benchmark with the given thread count (the
// §6.2 experiment); threads are spread over the VM's vCPUs.
func ParsecParallel(benchmark string, threads int) Workload {
	return &parsecPar{bench: benchmark, threads: threads, scale: 1}
}

// ParsecParallelScaled is ParsecParallel with scaled work.
func ParsecParallelScaled(benchmark string, threads int, scale float64) Workload {
	return &parsecPar{bench: benchmark, threads: threads, scale: scale}
}

func (w *parsecPar) name() string {
	return fmt.Sprintf("parsec-par/%s-x%d", w.bench, w.threads)
}

func (w *parsecPar) apply(vm *kvm.VM) error {
	p, err := workload.ProfileByName(w.bench)
	if err != nil {
		return err
	}
	dev, err := vm.AttachDevice("disk0", w.dev.profile())
	if err != nil {
		return err
	}
	_, err = p.SpawnParallel(vm.Kernel(), w.threads, dev, w.scale)
	return err
}

type fioWL struct {
	pattern     string
	blockSizeKB int
	totalMB     int
	dev         DeviceClass
}

// FioWorkload runs a phoronix-fio-style job (the §6.3 experiment): pattern
// is one of "seqr", "seqwr", "rndr", "rndwr"; the job moves totalMB MiB in
// blockSizeKB-KiB synchronous operations on vCPU 0.
func FioWorkload(pattern string, blockSizeKB, totalMB int) Workload {
	return &fioWL{pattern: pattern, blockSizeKB: blockSizeKB, totalMB: totalMB}
}

// FioWorkloadOn is FioWorkload against a specific device class.
func FioWorkloadOn(pattern string, blockSizeKB, totalMB int, dev DeviceClass) Workload {
	return &fioWL{pattern: pattern, blockSizeKB: blockSizeKB, totalMB: totalMB, dev: dev}
}

func (w *fioWL) name() string {
	return fmt.Sprintf("fio/%s-%dk", w.pattern, w.blockSizeKB)
}

func (w *fioWL) apply(vm *kvm.VM) error {
	pat, err := workload.ParseFioPattern(w.pattern)
	if err != nil {
		return err
	}
	if w.blockSizeKB <= 0 || w.totalMB <= 0 {
		return fmt.Errorf("paratick: fio needs positive block size and total MB")
	}
	dev, err := vm.AttachDevice("disk0", w.dev.profile())
	if err != nil {
		return err
	}
	job := workload.DefaultFioJob(pat, w.blockSizeKB<<10, int64(w.totalMB)<<20)
	return job.Spawn(vm.Kernel(), dev)
}

type idleWL struct{}

// IdleWorkload runs no tasks at all — the W1/W2 scenario of §3.3. Pair it
// with Scenario.Duration.
func IdleWorkload() Workload { return idleWL{} }

func (idleWL) name() string           { return "idle" }
func (idleWL) apply(vm *kvm.VM) error { return nil }

type syncWL struct {
	threads     int
	syncsPerSec float64
	duration    time.Duration
}

// SyncWorkload runs the §3.3 blocking-synchronization microbenchmark:
// threads rendezvous pairwise at the aggregate rate for the duration
// (W3 is SyncWorkload(16, 1000, 10*time.Second)).
func SyncWorkload(threads int, syncsPerSec float64, duration time.Duration) Workload {
	return &syncWL{threads: threads, syncsPerSec: syncsPerSec, duration: duration}
}

func (w *syncWL) name() string {
	return fmt.Sprintf("sync/%dx%.0f", w.threads, w.syncsPerSec)
}

func (w *syncWL) apply(vm *kvm.VM) error {
	b := workload.SyncBench{
		Threads:     w.threads,
		SyncsPerSec: w.syncsPerSec,
		CSLen:       5 * sim.Microsecond,
		Duration:    sim.Time(w.duration.Nanoseconds()),
	}
	return b.Spawn(vm.Kernel())
}

// ParseWorkloadSpec builds a workload from a colon-separated spec string,
// the syntax the command-line tools accept:
//
//	idle                     no tasks (pair with Scenario.Duration)
//	parsec-seq:NAME          sequential PARSEC benchmark
//	parsec-par:NAME:THREADS  multithreaded PARSEC benchmark
//	fio:PATTERN:BSKB:MB      fio job, e.g. fio:rndr:4:64
//	sync:THREADS:RATE        §3.3 blocking-sync microbenchmark
//
// duration is used by specs that need one (sync; defaulting to 1s).
func ParseWorkloadSpec(spec string, duration time.Duration) (Workload, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "idle":
		return IdleWorkload(), nil
	case "parsec-seq":
		if len(parts) != 2 {
			return nil, fmt.Errorf("paratick: want parsec-seq:NAME, got %q", spec)
		}
		return ParsecSequential(parts[1]), nil
	case "parsec-par":
		if len(parts) != 3 {
			return nil, fmt.Errorf("paratick: want parsec-par:NAME:THREADS, got %q", spec)
		}
		threads, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("paratick: bad thread count %q", parts[2])
		}
		return ParsecParallel(parts[1], threads), nil
	case "fio":
		if len(parts) != 4 {
			return nil, fmt.Errorf("paratick: want fio:PATTERN:BSKB:MB, got %q", spec)
		}
		bs, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("paratick: bad block size %q", parts[2])
		}
		mb, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, fmt.Errorf("paratick: bad total MB %q", parts[3])
		}
		return FioWorkload(parts[1], bs, mb), nil
	case "sync":
		if len(parts) != 3 {
			return nil, fmt.Errorf("paratick: want sync:THREADS:RATE, got %q", spec)
		}
		threads, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("paratick: bad thread count %q", parts[1])
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("paratick: bad sync rate %q", parts[2])
		}
		if duration <= 0 {
			duration = time.Second
		}
		return SyncWorkload(threads, rate, duration), nil
	}
	return nil, fmt.Errorf("paratick: unknown workload spec %q", spec)
}
