package paratick

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each iteration executes the experiment at a
// reduced (but behaviour-preserving) scale and reports the paper's relative
// metrics via b.ReportMetric:
//
//	exits_pct      relative change in total VM exits (negative = fewer)
//	throughput_pct relative change in system throughput
//	runtime_pct    relative change in execution time
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale runs (the numbers recorded in EXPERIMENTS.md) come from
// cmd/paratick-bench.

import (
	"testing"

	"paratick/internal/analytic"
	"paratick/internal/experiment"
)

// benchOpts returns reduced-scale options so `go test -bench=.` completes
// in minutes while preserving every experiment's structure.
func benchOpts() experiment.Options {
	o := experiment.DefaultOptions()
	o.Scale = 0.1
	return o
}

// BenchmarkTable1 regenerates Table 1: VM exits of the four §3.3
// hypothetical workloads under periodic/tickless/paratick, analytically and
// in full simulation.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			w3 := res.Rows[2]
			b.ReportMetric(float64(w3.SimPeriodic), "w3_periodic_exits")
			b.ReportMetric(float64(w3.SimTickless), "w3_tickless_exits")
			b.ReportMetric(float64(w3.SimParatick), "w3_paratick_exits")
		}
	}
}

// BenchmarkTable1Analytic regenerates the analytic half of Table 1 alone
// (the closed-form §3 models).
func BenchmarkTable1Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := analytic.Table1(analytic.PaperTable)
		if len(rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func reportFigure(b *testing.B, fig *experiment.ParsecFigure) {
	b.ReportMetric(fig.Aggregate.ExitsDelta*100, "exits_pct")
	b.ReportMetric(fig.Aggregate.ThroughputDelta*100, "throughput_pct")
	b.ReportMetric(fig.Aggregate.RuntimeDelta*100, "runtime_pct")
}

// BenchmarkFig4Table2 regenerates Figure 4 and Table 2: the 13 sequential
// PARSEC benchmarks, dynticks vs paratick.
func BenchmarkFig4Table2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, fig)
		}
	}
}

// BenchmarkFig5Small / Medium / Large regenerate the three panels of
// Figure 5 (and the rows of Table 3): multithreaded PARSEC at the paper's
// VM sizes.
func BenchmarkFig5Small(b *testing.B)  { benchFig5(b, 0) }
func BenchmarkFig5Medium(b *testing.B) { benchFig5(b, 1) }
func BenchmarkFig5Large(b *testing.B)  { benchFig5(b, 2) }

func benchFig5(b *testing.B, size int) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFig5Size(benchOpts(), experiment.VMSizes()[size])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, fig)
		}
	}
}

// BenchmarkFig6Table4 regenerates Figure 6 and Table 4: fio's four access
// patterns over the 4k–256k block-size sweep.
func BenchmarkFig6Table4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(fig.ExitsDelta*100, "exits_pct")
			b.ReportMetric(fig.IOThroughputDelta*100, "throughput_pct")
			b.ReportMetric(fig.RuntimeDelta*100, "runtime_pct")
		}
	}
}

// BenchmarkCrossover regenerates the §3.3 idle-period sweep locating the
// periodic-vs-tickless crossover.
func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCrossover(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EmpiricalCrossover.Microseconds(), "crossover_us")
			b.ReportMetric(res.AnalyticThreshold.Microseconds(), "threshold_us")
		}
	}
}

// BenchmarkConsolidation regenerates the §3.1 mixed-fleet scenario: neither
// periodic nor tickless is acceptable fleet-wide; paratick undercuts both.
func BenchmarkConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunConsolidation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[0].TimerExits), "periodic_timer_exits")
			b.ReportMetric(float64(res.Rows[1].TimerExits), "tickless_timer_exits")
			b.ReportMetric(float64(res.Rows[2].TimerExits), "paratick_timer_exits")
		}
	}
}

// BenchmarkAblationIdleExit measures the §5.2.5 keep-timer-armed heuristic.
func BenchmarkAblationIdleExit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunIdleExitAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[1].TimerExits), "keep_timer_exits")
			b.ReportMetric(float64(res.Rows[2].TimerExits), "disarm_timer_exits")
		}
	}
}

// BenchmarkAblationFreqMismatch measures the §4.1 top-up extension.
func BenchmarkAblationFreqMismatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFrequencyMismatchAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[0].GuestTicks), "ticks_no_topup")
			b.ReportMetric(float64(res.Rows[1].GuestTicks), "ticks_topup")
		}
	}
}

// BenchmarkAblationHaltPoll measures KVM halt polling's cycles-for-latency
// trade (why the paper disables it).
func BenchmarkAblationHaltPoll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunHaltPollAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[0].Runtime.Seconds()*1e3, "runtime_nopoll_ms")
			b.ReportMetric(res.Rows[2].Runtime.Seconds()*1e3, "runtime_poll200us_ms")
		}
	}
}

// BenchmarkAblationPLE contrasts blocking sync, optimistic spinning, and
// spinning under pause-loop exiting (why §6 disables PLE).
func BenchmarkAblationPLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunPLEAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[1].TotalExits), "exits_spin_nople")
			b.ReportMetric(float64(res.Rows[2].TotalExits), "exits_spin_ple")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// nanoseconds per wall second on the fio workload (a sanity metric for the
// engine itself, not a paper result).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(Scenario{
			Mode:     ModeParatick,
			Workload: FioWorkload("rndr", 4, 8),
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.IOOps == 0 {
			b.Fatal("no work done")
		}
	}
}
