package paratick

import (
	"strings"
	"testing"
	"time"
)

func TestParseWorkloadSpec(t *testing.T) {
	good := []struct {
		spec string
		name string
	}{
		{"idle", "idle"},
		{"parsec-seq:dedup", "parsec-seq/dedup"},
		{"parsec-par:ferret:8", "parsec-par/ferret-x8"},
		{"fio:rndr:4:64", "fio/rndr-4k"},
		{"sync:16:1000", "sync/16x1000"},
	}
	for _, c := range good {
		w, err := ParseWorkloadSpec(c.spec, time.Second)
		if err != nil {
			t.Errorf("ParseWorkloadSpec(%q): %v", c.spec, err)
			continue
		}
		if w.name() != c.name {
			t.Errorf("spec %q → name %q, want %q", c.spec, w.name(), c.name)
		}
	}
	bad := []string{
		"", "bogus", "parsec-seq", "parsec-seq:a:b", "parsec-par:x",
		"parsec-par:x:notanumber", "fio:rndr:4", "fio:rndr:x:1",
		"fio:rndr:4:x", "sync:16", "sync:x:1000", "sync:16:x",
	}
	for _, spec := range bad {
		if _, err := ParseWorkloadSpec(spec, 0); err == nil {
			t.Errorf("bad spec %q accepted", spec)
		}
	}
}

func TestParseWorkloadSpecSyncDefaultDuration(t *testing.T) {
	w, err := ParseWorkloadSpec("sync:4:100", 0)
	if err != nil {
		t.Fatal(err)
	}
	sw, ok := w.(*syncWL)
	if !ok {
		t.Fatalf("wrong type %T", w)
	}
	if sw.duration != time.Second {
		t.Fatalf("default duration = %v", sw.duration)
	}
}

func TestOvercommitScenario(t *testing.T) {
	// 8 vCPUs on 2 pCPUs: compute takes ~4× longer than unshared.
	work := func(oc int) time.Duration {
		rep, err := Run(Scenario{
			VCPUs:      8,
			Overcommit: oc,
			Workload: CustomWorkload("oc", func(b *Builder) error {
				for i := 0; i < 8; i++ {
					if err := b.Spawn("w", i, Sequence(OpCompute(10*time.Millisecond))); err != nil {
						return err
					}
				}
				return nil
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecutionTime
	}
	unshared := work(1)
	shared := work(4)
	if shared < 3*unshared {
		t.Fatalf("4:1 overcommit runtime %v should be ~4× unshared %v", shared, unshared)
	}
}

func TestScenarioTopUpTimer(t *testing.T) {
	run := func(topUp bool) *Report {
		rep, err := Run(Scenario{
			Mode:       ModeParatick,
			GuestHz:    1000,
			HostHz:     250,
			TopUpTimer: topUp,
			Workload: CustomWorkload("spin", func(b *Builder) error {
				return b.Spawn("s", 0, Sequence(OpCompute(100*time.Millisecond)))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := run(false)
	with := run(true)
	if with.GuestTicks < 3*without.GuestTicks {
		t.Fatalf("top-up ticks %d should be ~4× plain %d", with.GuestTicks, without.GuestTicks)
	}
}

func TestScenarioDisarmOnIdleExitAblation(t *testing.T) {
	run := func(disarm bool) *Report {
		rep, err := Run(Scenario{
			Mode:             ModeParatick,
			DisarmOnIdleExit: disarm,
			Workload: CustomWorkload("mix", func(b *Builder) error {
				dev, err := b.AttachDevice("d", DeviceNVMe)
				if err != nil {
					return err
				}
				// A sleeper keeps a soft timer pending; the reader blocks
				// on I/O, exercising the §5.2.5 idle-exit decision.
				sleeps := 0
				if err := b.Spawn("heartbeat", 0, ProgramFunc(func(ctx *Context) Op {
					if sleeps >= 20 {
						return OpDone()
					}
					sleeps++
					return OpSleep(2 * time.Millisecond)
				})); err != nil {
					return err
				}
				reads := 0
				return b.Spawn("reader", 0, ProgramFunc(func(ctx *Context) Op {
					if reads >= 300 {
						return OpDone()
					}
					reads++
					return OpRead(dev, 4096, false)
				}))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	keep := run(false)
	disarm := run(true)
	if keep.TimerExits >= disarm.TimerExits {
		t.Fatalf("keeping the timer armed (%d timer exits) should beat disarming (%d)",
			keep.TimerExits, disarm.TimerExits)
	}
}

func TestScenarioPLEAndSpin(t *testing.T) {
	run := func(spin, ple time.Duration) *Report {
		rep, err := Run(Scenario{
			VCPUs:        2,
			AdaptiveSpin: spin,
			PLEWindow:    ple,
			Workload: CustomWorkload("hotlock", func(b *Builder) error {
				l := b.NewLock("hot")
				for i := 0; i < 2; i++ {
					iters := 200
					phase := 0
					if err := b.Spawn("t", i, ProgramFunc(func(ctx *Context) Op {
						switch phase {
						case 0:
							if iters <= 0 {
								return OpDone()
							}
							iters--
							phase = 1
							return OpCompute(ctx.Exp(50 * time.Microsecond))
						case 1:
							phase = 2
							return OpAcquire(l)
						case 2:
							phase = 3
							return OpCompute(20 * time.Microsecond)
						default:
							phase = 0
							return OpRelease(l)
						}
					})); err != nil {
						return err
					}
				}
				return nil
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	blocking := run(0, 0)
	spinning := run(30*time.Microsecond, 0)
	spinningPLE := run(30*time.Microsecond, 10*time.Microsecond)
	// Spinning avoids some HLT/IPI exits relative to blocking.
	if spinning.ExitBreakdown["hlt"] >= blocking.ExitBreakdown["hlt"] {
		t.Errorf("spinning should reduce HLT exits: %d vs %d",
			spinning.ExitBreakdown["hlt"], blocking.ExitBreakdown["hlt"])
	}
	// PLE turns those spins into exits.
	if spinningPLE.ExitBreakdown["ple"] == 0 {
		t.Error("PLE window produced no PLE exits")
	}
	if spinning.ExitBreakdown["ple"] != 0 {
		t.Error("PLE exits without a PLE window")
	}
}

func TestScenarioHostHzVariation(t *testing.T) {
	// A 100 Hz host delivers paratick ticks at 100/s to a 100 Hz guest.
	rep, err := Run(Scenario{
		Mode:    ModeParatick,
		GuestHz: 100,
		HostHz:  100,
		Workload: CustomWorkload("spin", func(b *Builder) error {
			return b.Spawn("s", 0, Sequence(OpCompute(500*time.Millisecond)))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GuestTicks < 45 || rep.GuestTicks > 55 {
		t.Fatalf("guest ticks = %d over 500ms at 100 Hz, want ~50", rep.GuestTicks)
	}
}

func TestReportBreakdownSorted(t *testing.T) {
	rep, err := Run(Scenario{Workload: FioWorkload("rndr", 4, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	// Under dynticks, MSR writes dominate and the rare external interrupts
	// trail; the breakdown is sorted by count.
	if strings.Index(s, "msr-write") > strings.Index(s, "external-irq") {
		t.Errorf("breakdown not sorted by count:\n%s", s)
	}
}

func TestIdleWorkloadName(t *testing.T) {
	if IdleWorkload().name() != "idle" {
		t.Error("idle workload name")
	}
	rep, err := Run(Scenario{Duration: 10 * time.Millisecond, Workload: IdleWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "idle" {
		t.Errorf("report name = %q", rep.Name)
	}
}

func TestAttachCustomDevice(t *testing.T) {
	rep, err := Run(Scenario{
		Workload: CustomWorkload("delay", func(b *Builder) error {
			dev, err := b.AttachCustomDevice("line", 500*time.Microsecond, time.Millisecond)
			if err != nil {
				return err
			}
			ops := 0
			return b.Spawn("t", 0, ProgramFunc(func(*Context) Op {
				if ops >= 10 {
					return OpDone()
				}
				ops++
				return OpRead(dev, 4096, false)
			}))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 reads at ~500µs each dominate the runtime.
	if rep.ExecutionTime < 5*time.Millisecond || rep.ExecutionTime > 7*time.Millisecond {
		t.Fatalf("execution time = %v, want ~5ms", rep.ExecutionTime)
	}
	if _, err := Run(Scenario{
		Workload: CustomWorkload("bad", func(b *Builder) error {
			_, err := b.AttachCustomDevice("x", 0, 0) // invalid latencies
			return err
		}),
	}); err == nil {
		t.Fatal("zero-latency device accepted")
	}
}

func TestCustomCondvarPipeline(t *testing.T) {
	// Public-API condvar: a producer/consumer queue.
	var cond *Cond
	wl := CustomWorkload("pc", func(b *Builder) error {
		mu := b.NewLock("mu")
		cond = b.NewCond("nonempty", mu)
		items := 0
		consumed := 0
		consPhase := 0
		if err := b.Spawn("consumer", 0, ProgramFunc(func(*Context) Op {
			switch consPhase {
			case 0:
				consPhase = 1
				return OpAcquire(mu)
			case 1:
				if items == 0 {
					return OpWait(cond)
				}
				items--
				consumed++
				if consumed < 3 {
					return OpWait(cond) // wait for the next item
				}
				consPhase = 2
				return OpRelease(mu)
			default:
				return OpDone()
			}
		})); err != nil {
			return err
		}
		prodPhase := 0
		produced := 0
		return b.Spawn("producer", 1, ProgramFunc(func(ctx *Context) Op {
			switch prodPhase {
			case 0:
				prodPhase = 1
				return OpCompute(ctx.Jitter(200*time.Microsecond, 0.2))
			case 1:
				prodPhase = 2
				return OpAcquire(mu)
			case 2:
				prodPhase = 3
				items++
				produced++
				return OpSignal(cond)
			case 3:
				if produced < 3 {
					prodPhase = 0
				} else {
					prodPhase = 4
				}
				return OpRelease(mu)
			default:
				return OpDone()
			}
		}))
	})
	rep, err := Run(Scenario{VCPUs: 2, Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	if cond.Waits() < 3 {
		t.Fatalf("waits = %d, want ≥3", cond.Waits())
	}
	// Cross-vCPU wakes require IPIs.
	if rep.ExitBreakdown["ipi"] == 0 {
		t.Error("no IPIs despite cross-vCPU signaling")
	}
}
