package paratick

import (
	"fmt"
	"time"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// TickMode selects the guest's scheduler-tick management policy.
type TickMode int

const (
	// ModeDynticks is the standard tickless kernel ("dynticks idle"),
	// Linux's default and the paper's baseline. The zero value, so
	// Scenario{} compares sensibly.
	ModeDynticks TickMode = iota
	// ModePeriodic is the classic fixed-rate scheduler tick.
	ModePeriodic
	// ModeParatick is the paper's virtual-scheduler-tick mechanism.
	ModeParatick
)

// String names the mode.
func (m TickMode) String() string { return m.internal().String() }

func (m TickMode) internal() core.Mode {
	switch m {
	case ModePeriodic:
		return core.Periodic
	case ModeParatick:
		return core.Paratick
	default:
		return core.DynticksIdle
	}
}

// ParseTickMode parses "periodic", "dynticks"/"tickless", or "paratick".
func ParseTickMode(s string) (TickMode, error) {
	m, err := core.ParseMode(s)
	if err != nil {
		return 0, err
	}
	switch m {
	case core.Periodic:
		return ModePeriodic, nil
	case core.Paratick:
		return ModeParatick, nil
	default:
		return ModeDynticks, nil
	}
}

// SchedPolicy selects the host's vCPU scheduling policy.
type SchedPolicy int

const (
	// SchedFIFO is the legacy host scheduler: strict per-pCPU arrival
	// order with a fixed timeslice. The zero value, so existing scenarios
	// behave exactly as before.
	SchedFIFO SchedPolicy = iota
	// SchedFair is a CFS-like virtual-runtime policy with per-socket idle
	// work stealing; it bounds wakeup latency under overcommit.
	SchedFair
)

// String names the policy.
func (p SchedPolicy) String() string { return p.internal().String() }

func (p SchedPolicy) internal() sched.Kind {
	if p == SchedFair {
		return sched.Fair
	}
	return sched.FIFO
}

// ParseSchedPolicy parses "fifo" (or "") and "fair"/"cfs".
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	k, err := sched.Parse(s)
	if err != nil {
		return 0, err
	}
	if k == sched.Fair {
		return SchedFair, nil
	}
	return SchedFIFO, nil
}

// Scenario describes one simulated virtual machine and its workload.
// The zero value of every field selects the paper's defaults.
type Scenario struct {
	// Name labels reports; defaults to the workload's name.
	Name string
	// Mode is the tick policy (default ModeDynticks).
	Mode TickMode
	// VCPUs is the VM size (default 1).
	VCPUs int
	// Sockets spreads the vCPUs over NUMA sockets (default 1). The host is
	// the paper's 4-socket × 20-CPU machine.
	Sockets int
	// Overcommit pins that many vCPUs onto each physical CPU (default 1,
	// no time sharing) — the consolidation scenario of §3.1.
	Overcommit int
	// Sched is the host vCPU scheduling policy (default SchedFIFO, the
	// legacy behaviour). Only matters when Overcommit > 1.
	Sched SchedPolicy
	// Timeslice overrides the host pCPU timeslice (default 6ms).
	Timeslice time.Duration
	// GuestHz / HostHz are the tick frequencies (default 250, the paper's).
	GuestHz int
	HostHz  int
	// Seed fixes all randomness (default 1); equal seeds reproduce runs
	// bit for bit.
	Seed uint64
	// Duration bounds open-ended workloads (e.g. IdleWorkload). When zero,
	// the run ends at workload completion.
	Duration time.Duration
	// HaltPoll enables KVM-style halt polling (the paper disables it).
	HaltPoll time.Duration
	// PLEWindow enables pause-loop exiting with the given detection window
	// (the paper disables it).
	PLEWindow time.Duration
	// AdaptiveSpin makes contended guest locks spin this long before
	// blocking (0 = pure blocking synchronization, the paper's workloads).
	AdaptiveSpin time.Duration
	// DisarmOnIdleExit inverts the paper's §5.2.5 heuristic (ablation).
	DisarmOnIdleExit bool
	// TopUpTimer enables the §4.1 frequency-mismatch extension.
	TopUpTimer bool
	// TraceCapacity, when positive, records the last N exit/injection
	// events for Report.Trace.
	TraceCapacity int
	// Workload generates the guest's tasks. Required unless Duration > 0.
	Workload Workload
}

func (s Scenario) withDefaults() Scenario {
	if s.VCPUs == 0 {
		s.VCPUs = 1
	}
	if s.Sockets == 0 {
		s.Sockets = 1
	}
	if s.GuestHz == 0 {
		s.GuestHz = 250
	}
	if s.HostHz == 0 {
		s.HostHz = 250
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Overcommit == 0 {
		s.Overcommit = 1
	}
	if s.Name == "" && s.Workload != nil {
		s.Name = s.Workload.name()
	}
	if s.Name == "" {
		s.Name = "scenario"
	}
	return s
}

// Validate reports configuration errors without running anything.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	if s.VCPUs < 0 || s.Sockets < 0 || s.GuestHz < 0 || s.HostHz < 0 || s.Overcommit < 0 {
		return fmt.Errorf("paratick: negative scenario parameter")
	}
	if s.Workload == nil && s.Duration <= 0 {
		return fmt.Errorf("paratick: scenario %q needs a Workload or a Duration", s.Name)
	}
	if s.Duration < 0 || s.HaltPoll < 0 || s.PLEWindow < 0 || s.AdaptiveSpin < 0 || s.Timeslice < 0 {
		return fmt.Errorf("paratick: negative duration")
	}
	return nil
}

// Run simulates the scenario and returns its report.
func Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	engine := sim.NewEngine(s.Seed)
	cfg := kvm.DefaultConfig()
	cfg.HostHz = s.HostHz
	cfg.HaltPoll = sim.Time(s.HaltPoll.Nanoseconds())
	cfg.PLEWindow = sim.Time(s.PLEWindow.Nanoseconds())
	cfg.SchedPolicy = s.Sched.internal()
	if s.Timeslice > 0 {
		cfg.Timeslice = sim.Time(s.Timeslice.Nanoseconds())
	}
	host, err := kvm.NewHost(engine, cfg)
	if err != nil {
		return nil, err
	}
	var tracer *trace.Buffer
	if s.TraceCapacity > 0 {
		tracer = trace.NewBuffer(s.TraceCapacity)
		host.SetTracer(tracer)
	}
	// With overcommit, groups of vCPUs share a physical CPU: vCPU i lands
	// on the pCPU of slot i/Overcommit.
	pcpus := (s.VCPUs + s.Overcommit - 1) / s.Overcommit
	spread, err := cfg.Topology.SpreadAcross(pcpus, s.Sockets)
	if err != nil {
		return nil, err
	}
	placement := make([]hw.CPUID, s.VCPUs)
	for i := range placement {
		placement[i] = spread[i/s.Overcommit]
	}
	gcfg := guest.DefaultConfig()
	gcfg.Mode = s.Mode.internal()
	gcfg.TickHz = s.GuestHz
	gcfg.PolicyOpts = core.Options{DisarmOnIdleExit: s.DisarmOnIdleExit}
	gcfg.AdaptiveSpin = sim.Time(s.AdaptiveSpin.Nanoseconds())
	vm, err := host.NewVM(s.Name, gcfg, placement)
	if err != nil {
		return nil, err
	}
	if s.Mode == ModeParatick && s.TopUpTimer {
		vm.SetEntryHook(&core.ParatickHost{TopUp: true})
	}
	if s.Workload != nil {
		if err := s.Workload.apply(vm); err != nil {
			return nil, fmt.Errorf("paratick: workload setup: %w", err)
		}
	}
	deadline := sim.Time(s.Duration.Nanoseconds())
	if deadline == 0 {
		deadline = 1000 * sim.Second
		vm.OnWorkloadDone = func(sim.Time) { engine.Stop() }
	}
	vm.Start()
	engine.RunUntil(deadline)
	if s.Duration == 0 {
		if done, _ := vm.WorkloadDone(); !done {
			return nil, fmt.Errorf("paratick: scenario %q did not finish within %v (%d tasks alive)",
				s.Name, deadline, vm.Kernel().LiveTasks())
		}
	}
	return newReport(s, vm, tracer), nil
}

// CompareToBaseline runs the scenario twice — once under ModeDynticks (the
// paper's vanilla baseline) and once under the scenario's own mode
// (defaulting to ModeParatick when left as the baseline) — and returns the
// paper's three relative metrics.
func CompareToBaseline(s Scenario) (*Comparison, error) {
	optimized := s
	if optimized.Mode == ModeDynticks {
		optimized.Mode = ModeParatick
	}
	base := s
	base.Mode = ModeDynticks
	baseRep, err := Run(base)
	if err != nil {
		return nil, err
	}
	optRep, err := Run(optimized)
	if err != nil {
		return nil, err
	}
	return compareReports(baseRep, optRep), nil
}
