package paratick

import (
	"fmt"
	"strings"
	"time"

	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/trace"
)

// Report is the outcome of one scenario run: the paper's measured
// quantities plus the full exit breakdown.
type Report struct {
	Name string
	Mode TickMode

	// TotalExits and TimerExits are VM-exit counts; TimerExits covers
	// tick-management exits (TSC_DEADLINE writes, preemption-timer
	// expiries, tick interrupts stealing time from co-located vCPUs).
	TotalExits uint64
	TimerExits uint64
	// ExitBreakdown maps exit-reason name → count.
	ExitBreakdown map[string]uint64

	// VirtualTicks counts vector-235 injections (paratick only); GuestTicks
	// counts executed tick handlers; Injections counts all injected
	// interrupts.
	VirtualTicks uint64
	GuestTicks   uint64
	Injections   uint64

	// Cycle accounting: BusyCycles is the paper's "CPU cycles" throughput
	// proxy (useful work + guest kernel + host overhead).
	BusyCycles   time.Duration
	UsefulCycles time.Duration
	KernelCycles time.Duration
	HostOverhead time.Duration

	// ExecutionTime is the workload's simulated wall-clock runtime.
	ExecutionTime time.Duration

	// I/O totals (zero for compute-only workloads).
	IOOps            uint64
	IOBytes          uint64
	IOThroughputMBps float64

	// IdleTransitions counts idle-loop entries (≈ exits).
	IdleTransitions uint64
	Wakeups         uint64

	// Trace holds the recorded events when Scenario.TraceCapacity was set.
	Trace *trace.Buffer

	result metrics.Result
}

func newReport(s Scenario, vm *kvm.VM, tracer *trace.Buffer) *Report {
	res := vm.Result(s.Name)
	c := &res.Counters
	breakdown := make(map[string]uint64)
	for r := metrics.ExitReason(0); r < metrics.NumExitReasons; r++ {
		if c.Exits[r] > 0 {
			breakdown[r.String()] = c.Exits[r]
		}
	}
	return &Report{
		Name:             s.Name,
		Mode:             s.Mode,
		TotalExits:       c.TotalExits(),
		TimerExits:       c.TimerExits(),
		ExitBreakdown:    breakdown,
		VirtualTicks:     c.VirtualTicks,
		GuestTicks:       c.GuestTicks,
		Injections:       c.Injections,
		BusyCycles:       time.Duration(c.BusyCycles()),
		UsefulCycles:     time.Duration(c.GuestUseful),
		KernelCycles:     time.Duration(c.GuestKernel),
		HostOverhead:     time.Duration(c.HostOverhead),
		ExecutionTime:    time.Duration(res.WallTime),
		IOOps:            c.IOOps(),
		IOBytes:          c.IOBytes(),
		IOThroughputMBps: res.IOThroughputMBps(),
		IdleTransitions:  c.IdleEnters,
		Wakeups:          c.Wakeups,
		Trace:            tracer,
		result:           res,
	}
}

// Summary renders the report for humans.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]\n", r.Name, r.Mode)
	fmt.Fprintf(&b, "  execution time : %v\n", r.ExecutionTime)
	fmt.Fprintf(&b, "  VM exits       : %d total, %d timer-related\n", r.TotalExits, r.TimerExits)
	for _, kv := range sortedBreakdown(r.ExitBreakdown) {
		fmt.Fprintf(&b, "    %-14s %d\n", kv.name, kv.count)
	}
	fmt.Fprintf(&b, "  ticks          : %d guest (%d virtual), %d injections\n",
		r.GuestTicks, r.VirtualTicks, r.Injections)
	fmt.Fprintf(&b, "  cycles         : %v busy (%v useful, %v guest-kernel, %v host)\n",
		r.BusyCycles, r.UsefulCycles, r.KernelCycles, r.HostOverhead)
	fmt.Fprintf(&b, "  idle/wakeups   : %d idle transitions, %d wakeups\n",
		r.IdleTransitions, r.Wakeups)
	if r.IOOps > 0 {
		fmt.Fprintf(&b, "  io             : %d ops, %d bytes, %.1f MB/s\n",
			r.IOOps, r.IOBytes, r.IOThroughputMBps)
	}
	if tick := &r.result.Counters.TickInterval; tick.Count() > 0 {
		fmt.Fprintf(&b, "  tick interval  : %s\n", tick)
	}
	if tbl := r.ExitLatencyTable(); tbl != nil {
		b.WriteString(indentBlock(tbl.String(), "  "))
	}
	if tbl := r.InjectLatencyTable(); tbl != nil {
		b.WriteString(indentBlock(tbl.String(), "  "))
	}
	return b.String()
}

// ExitLatencyTable returns the per-exit-reason handling-cost distribution
// (p50/p95/p99/max), or nil when the run recorded no exits.
func (r *Report) ExitLatencyTable() *metrics.Table {
	return metrics.ExitLatencyTable("exit handling cost", &r.result.Counters)
}

// InjectLatencyTable returns the pend-to-delivery latency distribution per
// interrupt-vector class, or nil when the run recorded no injections.
func (r *Report) InjectLatencyTable() *metrics.Table {
	return metrics.InjectLatencyTable("injection latency", &r.result.Counters)
}

// Result returns the underlying metrics snapshot (counters + wall time).
func (r *Report) Result() metrics.Result { return r.result }

// indentBlock prefixes every non-empty line of s with prefix.
func indentBlock(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	var b strings.Builder
	for _, ln := range lines {
		if ln != "" {
			b.WriteString(prefix)
			b.WriteString(ln)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

type breakdownKV struct {
	name  string
	count uint64
}

func sortedBreakdown(m map[string]uint64) []breakdownKV {
	out := make([]breakdownKV, 0, len(m))
	for n, c := range m {
		out = append(out, breakdownKV{n, c})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].count > out[j-1].count ||
			(out[j].count == out[j-1].count && out[j].name < out[j-1].name)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Comparison holds the paper's three headline metrics for an optimized run
// against the dynticks baseline.
type Comparison struct {
	Name      string
	Baseline  *Report
	Optimized *Report
	// ExitsDelta is the relative change in total VM exits (negative =
	// fewer); TimerExitsDelta the same for timer-related exits.
	ExitsDelta      float64
	TimerExitsDelta float64
	// ThroughputDelta is the relative change in system throughput
	// (positive = better): same work in k× fewer busy cycles.
	ThroughputDelta float64
	// RuntimeDelta is the relative change in execution time (negative =
	// faster).
	RuntimeDelta float64
	// IOThroughputDelta is the relative change in direct I/O throughput
	// (zero for workloads without I/O).
	IOThroughputDelta float64
}

func compareReports(base, opt *Report) *Comparison {
	mc := metrics.Compare(base.result, opt.result)
	c := &Comparison{
		Name:            base.Name,
		Baseline:        base,
		Optimized:       opt,
		ExitsDelta:      mc.ExitsDelta,
		TimerExitsDelta: mc.TimerExitsDelta,
		ThroughputDelta: mc.ThroughputDelta,
		RuntimeDelta:    mc.RuntimeDelta,
	}
	if base.IOThroughputMBps > 0 {
		c.IOThroughputDelta = opt.IOThroughputMBps/base.IOThroughputMBps - 1
	}
	return c
}

// Summary renders the comparison in the paper's terms.
func (c *Comparison) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s vs %s\n", c.Name, c.Optimized.Mode, c.Baseline.Mode)
	fmt.Fprintf(&b, "  VM exits          : %s (%d → %d; timer-related %s)\n",
		metrics.Pct1(c.ExitsDelta), c.Baseline.TotalExits, c.Optimized.TotalExits,
		metrics.Pct1(c.TimerExitsDelta))
	fmt.Fprintf(&b, "  system throughput : %s (busy cycles %v → %v)\n",
		metrics.Pct1(c.ThroughputDelta), c.Baseline.BusyCycles, c.Optimized.BusyCycles)
	fmt.Fprintf(&b, "  execution time    : %s (%v → %v)\n",
		metrics.Pct1(c.RuntimeDelta), c.Baseline.ExecutionTime, c.Optimized.ExecutionTime)
	if c.Baseline.IOThroughputMBps > 0 {
		fmt.Fprintf(&b, "  io throughput     : %s (%.1f → %.1f MB/s)\n",
			metrics.Pct1(c.IOThroughputDelta),
			c.Baseline.IOThroughputMBps, c.Optimized.IOThroughputMBps)
	}
	return b.String()
}
