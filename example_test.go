package paratick_test

import (
	"fmt"
	"time"

	"paratick"
)

// ExampleRun simulates an I/O workload under paratick: the guest performs
// 256 synchronous 4k reads and — because virtual ticks need no timer
// hardware — takes zero timer-related VM exits. (Simulations are
// deterministic, so the output is exact.)
func ExampleRun() {
	rep, err := paratick.Run(paratick.Scenario{
		Mode:     paratick.ModeParatick,
		Workload: paratick.FioWorkload("rndr", 4, 1), // 1 MiB of random 4k reads
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("io ops: %d\n", rep.IOOps)
	fmt.Printf("timer exits: %d\n", rep.TimerExits)
	// Output:
	// io ops: 256
	// timer exits: 0
}

// ExampleCompareToBaseline reproduces the paper's headline on a small fio
// job: paratick eliminates the tickless baseline's timer-management exits
// entirely (§4.2's guarantee).
func ExampleCompareToBaseline() {
	cmp, err := paratick.CompareToBaseline(paratick.Scenario{
		Workload: paratick.FioWorkload("rndr", 4, 2),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("timer exits: %.0f%%\n", cmp.TimerExitsDelta*100)
	// Output:
	// timer exits: -100%
}

// ExampleRun_periodicIdle shows the §3.1 cost of classic periodic ticks: an
// idle VM still processes its scheduler tick on every vCPU — 2 vCPUs ×
// 250 Hz × 100 ms ≈ 50 ticks of pure overhead.
func ExampleRun_periodicIdle() {
	rep, err := paratick.Run(paratick.Scenario{
		Mode:     paratick.ModePeriodic,
		VCPUs:    2,
		Duration: 100 * time.Millisecond,
		Workload: paratick.IdleWorkload(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("idle guest ticks: %d\n", rep.GuestTicks)
	// Output:
	// idle guest ticks: 48
}

// ExampleCustomWorkload builds a workload from scratch: two tasks sharing a
// lock, with the contended acquisition blocking one vCPU.
func ExampleCustomWorkload() {
	var lock *paratick.Lock
	wl := paratick.CustomWorkload("demo", func(b *paratick.Builder) error {
		lock = b.NewLock("shared")
		for i := 0; i < 2; i++ {
			if err := b.Spawn("worker", i, paratick.Sequence(
				paratick.OpCompute(time.Millisecond),
				paratick.OpAcquire(lock),
				paratick.OpCompute(50*time.Microsecond),
				paratick.OpRelease(lock),
			)); err != nil {
				return err
			}
		}
		return nil
	})
	_, err := paratick.Run(paratick.Scenario{VCPUs: 2, Workload: wl})
	if err != nil {
		panic(err)
	}
	fmt.Printf("acquisitions: %d\n", lock.Acquisitions())
	// Output:
	// acquisitions: 2
}
