package lint

// The type-facts layer: a shared, cross-package inventory built once per
// RunAnalyzers invocation and handed to every analyzer. It answers the
// questions the struct-coverage rules (S001/S002 snapshot coverage, R001
// reset coverage, D005 shard isolation) all need:
//
//   - which named struct types exist, with every field's declaration
//     position and its field-level annotations (//snap:skip, //reset:keep);
//   - which function declarations exist, keyed by their types.Func object,
//     so a statically-resolved call site anywhere in the module maps back
//     to the callee's body — the basis for the arena-reachability walk and
//     the save-graph sweep;
//   - field identity: a *types.Var seen at a selector resolves to the
//     FieldFact (and owning TypeFact) it was declared as, across packages.
//
// Field annotations mirror the //lint: directive contract: a reason is
// mandatory, and a directive that excuses nothing is itself reported by the
// U001 stale-suppression audit.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FieldDirective is one field-level annotation: //snap:skip (S001) or
// //reset:keep (R001), written in the field's doc or trailing comment.
type FieldDirective struct {
	// Kind is "snap:skip" or "reset:keep".
	Kind string
	// Reason is the justification text; empty means the directive excuses
	// nothing (and U001 reports it as missing a reason).
	Reason string
	Pos    token.Pos
	Pkg    *Package
	used   bool
}

// FieldFact is one struct field: name, declaration position, its types.Var
// identity, and any coverage annotations.
type FieldFact struct {
	Name string
	Pos  token.Pos
	Var  *types.Var
	// Owner is the struct type declaring this field.
	Owner *TypeFact
	// SnapSkip excuses the field from S001 snapshot coverage.
	SnapSkip *FieldDirective
	// ResetKeep excuses the field from R001 reset coverage.
	ResetKeep *FieldDirective
}

// TypeFact is one named struct type with its field inventory.
type TypeFact struct {
	Obj *types.TypeName
	Pkg *Package
	// DeclFile is the full filename of the file declaring the type.
	DeclFile string
	Fields   []*FieldFact
}

// FuncFact is one function or method declaration with a body.
type FuncFact struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Facts is the shared cross-package fact base for one analysis run.
type Facts struct {
	// Types indexes every named struct type declared in the analyzed
	// packages.
	Types map[*types.TypeName]*TypeFact
	// Funcs indexes every function/method declaration with a body.
	Funcs map[*types.Func]*FuncFact
	// fields resolves a field object (as returned by a selection) to its
	// declaration fact.
	fields map[*types.Var]*FieldFact
	// directives lists every field-level annotation, for the U001 audit.
	directives []*FieldDirective

	// Lazily computed cross-package analyses, shared between rules of one
	// family (S001/S002 share the save-graph sweep, R001 the reachability
	// walk). Keyed by the Config pointer identity of the run.
	snap  *snapFacts
	reset *resetFacts
}

// BuildFacts inventories types and functions across all analyzed packages.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Types:  make(map[*types.TypeName]*TypeFact),
		Funcs:  make(map[*types.Func]*FuncFact),
		fields: make(map[*types.Var]*FieldFact),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok == token.TYPE {
						for _, spec := range d.Specs {
							f.addType(pkg, spec.(*ast.TypeSpec))
						}
					}
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						f.Funcs[fn] = &FuncFact{Fn: fn, Decl: d, Pkg: pkg}
					}
				}
			}
		}
	}
	return f
}

// addType records one struct type declaration and its fields.
func (f *Facts) addType(pkg *Package, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	obj, ok := pkg.Info.Defs[spec.Name].(*types.TypeName)
	if !ok {
		return
	}
	tf := &TypeFact{
		Obj:      obj,
		Pkg:      pkg,
		DeclFile: pkg.position(spec.Pos()).Filename,
	}
	// Pair AST fields with the types.Struct field objects positionally:
	// each name is one field, an embedded field is one field.
	var tstruct *types.Struct
	if named, ok := obj.Type().(*types.Named); ok {
		tstruct, _ = named.Underlying().(*types.Struct)
	}
	idx := 0
	for _, field := range st.Fields.List {
		snapSkip, resetKeep := parseFieldDirectives(f, pkg, field)
		record := func(name string, pos token.Pos) {
			if tstruct == nil || idx >= tstruct.NumFields() {
				return
			}
			ff := &FieldFact{
				Name:      name,
				Pos:       pos,
				Var:       tstruct.Field(idx),
				Owner:     tf,
				SnapSkip:  snapSkip,
				ResetKeep: resetKeep,
			}
			idx++
			tf.Fields = append(tf.Fields, ff)
			f.fields[ff.Var] = ff
		}
		if len(field.Names) == 0 {
			// Embedded field: named after its type.
			if tstruct != nil && idx < tstruct.NumFields() {
				record(tstruct.Field(idx).Name(), field.Type.Pos())
			}
			continue
		}
		for _, name := range field.Names {
			record(name.Name, name.Pos())
		}
	}
	f.Types[obj] = tf
}

// parseFieldDirectives extracts //snap:skip and //reset:keep annotations
// from a field's doc and trailing comments.
func parseFieldDirectives(f *Facts, pkg *Package, field *ast.Field) (snapSkip, resetKeep *FieldDirective) {
	scan := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			for _, kind := range []string{"snap:skip", "reset:keep"} {
				rest, ok := strings.CutPrefix(text, kind)
				if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
					continue
				}
				d := &FieldDirective{
					Kind:   kind,
					Reason: strings.TrimSpace(rest),
					Pos:    c.Pos(),
					Pkg:    pkg,
				}
				f.directives = append(f.directives, d)
				if kind == "snap:skip" && snapSkip == nil {
					snapSkip = d
				} else if kind == "reset:keep" && resetKeep == nil {
					resetKeep = d
				}
			}
		}
	}
	scan(field.Doc)
	scan(field.Comment)
	return snapSkip, resetKeep
}

// calleeOf resolves a call expression to the module function declaration it
// statically invokes: direct calls, method calls on concrete receivers, and
// package-qualified calls. Dynamic calls (interface methods, function
// values) resolve to nil.
func (f *Facts) calleeOf(pkg *Package, call *ast.CallExpr) *FuncFact {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f.Funcs[fn]
		}
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return f.Funcs[fn]
				}
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f.Funcs[fn]
		}
	}
	return nil
}

// recvTypeName returns the named type a method's receiver is declared on
// (through a pointer), or nil for plain functions.
func recvTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isSnapType reports whether t is (a pointer to) the named type
// snap.<name> — matched structurally by type and package name, so fixtures
// importing the real snap package resolve the same way the module does.
func isSnapType(t types.Type, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "snap"
}

// unparen strips any parentheses around an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprText renders a normalized source form of simple expressions for
// sequence comparison and diagnostics: identifier chains keep their names,
// index expressions collapse to [_] (loop variables may differ between a
// save and its load), anything else falls back to a coarse shape.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[_]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.ParenExpr:
		return exprText(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return exprText(e.X) + e.Op.String() + exprText(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.CallExpr:
		return exprText(e.Fun) + "(…)"
	}
	return "?"
}
