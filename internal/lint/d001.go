package lint

import (
	"fmt"
	"go/ast"
)

// wallclockFuncs are the package time entry points that read the host clock
// or block on it. Referencing one from a deterministic package makes results
// depend on the machine, not the seed. time.Duration arithmetic and
// constants remain legal — only clock reads and timers are banned.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// AnalyzerD001 flags wall-clock reads and host timers in deterministic
// packages. Simulated time comes from sim.Engine.Now; host time has no place
// in any package whose output must be a pure function of the seed.
var AnalyzerD001 = &Analyzer{
	Name: "D001",
	Doc:  "no wall clock (time.Now/Since/Sleep/NewTimer/…) in deterministic packages",
	Run:  runD001,
}

func runD001(cfg *Config, _ *Facts, pkg *Package) []Diagnostic {
	if !cfg.isDeterministicPkg(pkg.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		if cfg.isExemptFile(pkg.PkgPath, pkg.fileBase(f.Pos())) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := qualifiedCallee(pkg.Info, sel)
			if ok && path == "time" && wallclockFuncs[name] {
				out = append(out, Diagnostic{
					Pos:  pkg.position(sel.Pos()),
					Rule: "D001",
					Message: fmt.Sprintf("time.%s in deterministic package %s: use sim.Engine time, never the host clock",
						name, pkg.PkgPath),
				})
			}
			return true
		})
	}
	return out
}
