package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function as a pinned zero-allocation hot path.
const noallocDirective = "//paratick:noalloc"

// AnalyzerA001 checks every function annotated `//paratick:noalloc` for
// allocation-prone constructs:
//
//   - map and slice composite literals, make, new;
//   - append into a function-local slice without preallocated-capacity
//     evidence (a make with an explicit capacity, or a reslice like b[:0];
//     appends into fields, parameters, and package state are assumed
//     pool-managed by the surrounding design and stay legal);
//   - fmt calls and function literals (closures);
//   - interface boxing at call sites: passing a non-pointer-shaped concrete
//     value where an interface parameter is expected;
//   - string ↔ []byte/[]rune conversions.
//
// Direct calls to same-package functions and methods must themselves be
// annotated, so an allocation cannot hide one call deep. Dynamic calls
// (function-typed fields and variables, interface methods) and cross-package
// calls are outside the rule's reach — the annotation documents that those
// callees are vetted by the package's allocation benchmarks instead.
//
// Anything reachable only through panic(…) is exempt: allocating while
// aborting is free.
var AnalyzerA001 = &Analyzer{
	Name: "A001",
	Doc:  "no allocation-prone constructs inside //paratick:noalloc functions",
	Run:  runA001,
}

func runA001(cfg *Config, _ *Facts, pkg *Package) []Diagnostic {
	annotated := make(map[types.Object]bool)
	var decls []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoalloc(fd.Doc) {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				annotated[obj] = true
			}
			decls = append(decls, fd)
		}
	}
	var out []Diagnostic
	for _, fd := range decls {
		out = append(out, checkNoalloc(pkg, annotated, fd)...)
	}
	return out
}

// isNoalloc reports whether the doc comment carries the noalloc directive.
func isNoalloc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, noallocDirective) {
			return true
		}
	}
	return false
}

// checkNoalloc reports every allocation-prone construct in one annotated
// function.
func checkNoalloc(pkg *Package, annotated map[types.Object]bool, fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	panicSpans := collectPanicSpans(pkg, fd.Body)
	inPanic := func(n ast.Node) bool {
		for _, s := range panicSpans {
			if n.Pos() >= s[0] && n.End() <= s[1] {
				return true
			}
		}
		return false
	}
	localInit := collectLocalInits(pkg, fd.Body)

	var out []Diagnostic
	diag := func(n ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:     pkg.position(n.Pos()),
			Rule:    "A001",
			Message: fmt.Sprintf("noalloc %s: ", name) + fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inPanic(n) {
				diag(n, "function literal allocates a closure")
			}
			return false
		case *ast.CompositeLit:
			if inPanic(n) {
				return true
			}
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					diag(n, "map literal allocates")
				case *types.Slice:
					diag(n, "slice literal allocates")
				}
			}
		case *ast.CallExpr:
			if inPanic(n) {
				return true
			}
			checkCall(pkg, annotated, localInit, n, name, diag)
		}
		return true
	})
	return out
}

// checkCall applies the call-site rules: banned builtins, append capacity
// evidence, fmt, same-package callee propagation, conversions, and
// interface boxing.
func checkCall(pkg *Package, annotated map[types.Object]bool, localInit map[types.Object]ast.Expr,
	call *ast.CallExpr, fn string, diag func(ast.Node, string, ...any)) {

	switch target := call.Fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[target].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				diag(call, "make allocates")
			case "new":
				diag(call, "new allocates")
			case "append":
				checkAppend(pkg, localInit, call, diag)
			}
			return
		case *types.Func:
			if obj.Pkg() == pkg.Types && !annotated[obj] {
				diag(call, "calls %s, which is not annotated %s", obj.Name(), noallocDirective)
			}
		case *types.TypeName:
			checkConversion(pkg, call, diag)
			return
		case *types.Var:
			// Dynamic call through a function value: the callee is vetted by
			// benchmarks, but its arguments can still box — fall through.
		}
	case *ast.SelectorExpr:
		if path, fname, ok := qualifiedCallee(pkg.Info, target); ok {
			if path == "fmt" {
				diag(call, "fmt.%s allocates", fname)
				return // already flagged; don't also report its boxed args
			}
			// Other cross-package calls: outside the rule's reach.
		} else if selection := pkg.Info.Selections[target]; selection != nil {
			switch selection.Kind() {
			case types.MethodVal:
				if m, ok := selection.Obj().(*types.Func); ok && m.Pkg() == pkg.Types {
					if _, isIface := selection.Recv().Underlying().(*types.Interface); !isIface && !annotated[m] {
						diag(call, "calls method %s, which is not annotated %s", m.Name(), noallocDirective)
					}
				}
			case types.FieldVal:
				// Function-typed field (e.g. a handler): dynamic, vetted by
				// benchmarks.
			}
		}
	default:
		// Conversion to a non-ident type expression, or a call of a call:
		// check conversions, skip callee propagation.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			checkConversion(pkg, call, diag)
			return
		}
	}
	checkBoxing(pkg, call, diag)
}

// checkAppend flags append into a function-local slice with no
// preallocated-capacity evidence.
func checkAppend(pkg *Package, localInit map[types.Object]ast.Expr, call *ast.CallExpr, diag func(ast.Node, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields, indexed buckets, …: pool-managed by design
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	init, declaredHere := localInit[obj]
	if !declaredHere {
		return // parameter or outer state: caller-managed
	}
	if hasCapEvidence(init) {
		return
	}
	diag(call, "append into local %q without preallocated-capacity evidence (make with explicit cap, or a reslice like b[:0])", id.Name)
}

// hasCapEvidence reports whether a local slice's initializer guarantees
// capacity: a 3-arg make, or a reslice of existing storage.
func hasCapEvidence(init ast.Expr) bool {
	switch e := init.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) == 3 {
			return true
		}
	case *ast.SliceExpr:
		return true // b[:0], b[:n], b[low:high:max] reuse existing storage
	}
	return false
}

// collectLocalInits maps every variable defined inside the body to its
// initializer expression (nil for bare declarations).
func collectLocalInits(pkg *Package, body *ast.BlockStmt) map[types.Object]ast.Expr {
	out := make(map[types.Object]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					if i < len(n.Rhs) {
						out[obj] = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						out[obj] = n.Rhs[0] // multi-value assignment
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					var init ast.Expr
					if i < len(n.Values) {
						init = n.Values[i]
					}
					out[obj] = init
				}
			}
		}
		return true
	})
	return out
}

// checkConversion flags string ↔ []byte/[]rune conversions, which copy.
func checkConversion(pkg *Package, call *ast.CallExpr, diag func(ast.Node, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dstTV, ok1 := pkg.Info.Types[call.Fun]
	srcTV, ok2 := pkg.Info.Types[call.Args[0]]
	if !ok1 || !ok2 {
		return
	}
	dst, src := dstTV.Type.Underlying(), srcTV.Type.Underlying()
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		diag(call, "string conversion copies and allocates")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// checkBoxing flags non-pointer-shaped concrete arguments passed to
// interface parameters: the conversion heap-allocates the value.
func checkBoxing(pkg *Package, call *ast.CallExpr, diag func(ast.Node, string, ...any)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				paramType = params.At(params.Len() - 1).Type() // slice passed whole
			} else {
				paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := paramType.Underlying().(*types.Interface); !isIface {
			continue
		}
		argTV, ok := pkg.Info.Types[arg]
		if !ok || argTV.IsNil() {
			continue
		}
		at := argTV.Type
		if _, alreadyIface := at.Underlying().(*types.Interface); alreadyIface {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		diag(arg, "passing %s as interface %s boxes and allocates", at, paramType)
	}
}

// pointerShaped reports whether values of t fit an interface's data word
// without a heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// collectPanicSpans records the source span of every panic(…) call so
// constructs reachable only while aborting stay exempt.
func collectPanicSpans(pkg *Package, body *ast.BlockStmt) [][2]token.Pos {
	var spans [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				spans = append(spans, [2]token.Pos{call.Lparen, call.Rparen})
			}
		}
		return true
	})
	return spans
}
