// Package lint is paratick-vet's analyzer framework: a small, stdlib-only
// (go/parser + go/types + go/importer) harness that type-checks the module
// from source and runs project-law analyzers over it.
//
// The laws it enforces are the two invariants the reproduction's methodology
// rests on and that tests can only catch after the fact:
//
//   - Determinism: simulation results must be byte-identical for any seed and
//     worker count. Wall-clock reads, global RNG state, unordered map
//     iteration feeding output, and unsanctioned concurrency all break this
//     silently, far from where a golden diff eventually points. Rules D001,
//     D002, D003 and D004 turn each into a compile-time diagnostic with exact
//     file:line blame.
//
//   - Zero-allocation hot paths: the event engine and timer wheel promise
//     0 allocs/op in steady state. Rule A001 checks every function annotated
//     `//paratick:noalloc` for allocation-prone constructs and requires the
//     same annotation on its statically-resolved same-package callees, so an
//     allocation cannot hide one call deep.
//
// Suppression: a finding that is deliberate carries a justification comment
// on the same line or the line directly above it —
//
//	//lint:ignore D004 reason…   suppresses the named rule(s); a reason is
//	                             mandatory (comma-separate several rules)
//	//lint:ordered reason…       shorthand for D003: iteration order is
//	                             harmless or handled here
//
// A directive without a reason does not suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic vet-style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule run over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier (D001…, A001…) used in diagnostics and
	// suppression directives.
	Name string
	// Doc is a one-line description shown by paratick-vet -list.
	Doc string
	// Run reports the rule's findings in pkg. facts is the shared
	// cross-package type-facts layer built once per RunAnalyzers call.
	// Suppression directives are applied by RunAnalyzers, not by the rule
	// itself.
	Run func(cfg *Config, facts *Facts, pkg *Package) []Diagnostic
}

// Analyzers returns every registered rule, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerD001, AnalyzerD002, AnalyzerD003, AnalyzerD004, AnalyzerD005,
		AnalyzerS001, AnalyzerS002, AnalyzerR001, AnalyzerA001, AnalyzerU001,
	}
}

// Config scopes the rules to the project layout: which packages carry the
// determinism contract and where concurrency is sanctioned.
type Config struct {
	// DeterministicPkgs are import paths of packages in which D001 (wall
	// clock) applies: everything they compute must be a pure function of
	// seeds and scenario parameters.
	DeterministicPkgs []string
	// ExemptFiles maps an import path to base filenames excluded from the
	// deterministic-package rules (e.g. the parallel runner, which owns the
	// sanctioned concurrency but never touches simulated state).
	ExemptFiles map[string][]string
	// ConcurrencyAllow lists where D004 permits goroutine launches and
	// multi-case selects: either an import-path prefix ("mod/cmd/") or a
	// single file ("mod/internal/experiment:runner.go").
	ConcurrencyAllow []string
	// SnapshotPkgs are import paths whose struct types carry the snapshot
	// coverage contract: once any field of a type is encoded by a save
	// function, S001 requires every field to be encoded or carry a
	// //snap:skip reason, and S002 requires each Load to mirror its Save.
	SnapshotPkgs []string
	// ArenaRoots name the arena take-path entry points for R001, as
	// "importpath:Type" (every method of Type), "importpath:Type.Method",
	// or "importpath:Func". Any Reset/reset method statically reachable
	// from a root puts its receiver type under the reset-coverage contract.
	ArenaRoots []string
	// LaneDispatchPkgs are packages whose code executes inside engine
	// lanes; D005 restricts them to the lane-safe ShardedEngine surface
	// (Post, Quantum).
	LaneDispatchPkgs []string
	// LaneCoordinatorFiles ("importpath:file.go") are files within
	// lane-dispatch packages sanctioned to use the coordinator-only
	// ShardedEngine surface: construction, reset, snapshot, and the
	// barrier-drain plumbing itself.
	LaneCoordinatorFiles []string
}

// DefaultConfig returns the paratick project policy for a module rooted at
// import path modPath.
func DefaultConfig(modPath string) *Config {
	p := func(s string) string { return modPath + "/" + s }
	return &Config{
		DeterministicPkgs: []string{
			p("internal/sim"), p("internal/guest"), p("internal/kvm"),
			p("internal/core"), p("internal/sched"), p("internal/hw"),
			p("internal/experiment"),
		},
		ExemptFiles: map[string][]string{
			p("internal/experiment"): {"runner.go"},
		},
		ConcurrencyAllow: []string{
			p("internal/experiment") + ":runner.go",
			// shard.go owns the quantum-barrier parallelism: shard worker
			// goroutines synchronized by channel ping-pong, each confined to
			// its own lanes' engines. Everything else in internal/sim stays
			// single-threaded by contract.
			p("internal/sim") + ":shard.go",
			p("cmd") + "/",
		},
		SnapshotPkgs: []string{
			p("internal/sim"), p("internal/guest"), p("internal/kvm"),
			p("internal/metrics"), p("internal/trace"), p("internal/sched"),
			p("internal/hw"), p("internal/iodev"), p("internal/workload"),
			p("internal/experiment"),
		},
		ArenaRoots: []string{
			// Host/VM pooling: HostArena.NewHostOn → Host.reset → PCPU.reset,
			// and the VM take path, which runs through Host.NewVM (the arena
			// itself only stashes) → VM.reset → Kernel.Reset → VCPU.reset.
			p("internal/kvm") + ":HostArena",
			p("internal/kvm") + ":VMArena",
			p("internal/kvm") + ":Host.NewVM",
			// Timer-wheel recycling: WheelPool.acquire → TimerWheel.Reset.
			p("internal/guest") + ":WheelPool",
		},
		LaneDispatchPkgs: []string{
			p("internal/sim"), p("internal/guest"), p("internal/kvm"),
		},
		LaneCoordinatorFiles: []string{
			// shard.go defines ShardedEngine and owns the barrier/drain
			// machinery; the kvm files below run only on the coordinator:
			// construction, arena reset, checkpoint save/load, and VM wiring.
			p("internal/sim") + ":shard.go",
			p("internal/kvm") + ":host.go",
			p("internal/kvm") + ":arena.go",
			p("internal/kvm") + ":snapshot.go",
			p("internal/kvm") + ":vm.go",
		},
	}
}

// isDeterministicPkg reports whether the determinism rules apply to pkgPath.
func (c *Config) isDeterministicPkg(pkgPath string) bool {
	for _, p := range c.DeterministicPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// isExemptFile reports whether base (a file's base name) is excluded from
// the deterministic-package rules in pkgPath.
func (c *Config) isExemptFile(pkgPath, base string) bool {
	for _, f := range c.ExemptFiles[pkgPath] {
		if f == base {
			return true
		}
	}
	return false
}

// concurrencyAllowed reports whether D004 sanctions concurrency in the given
// file of the given package.
func (c *Config) concurrencyAllowed(pkgPath, base string) bool {
	for _, entry := range c.ConcurrencyAllow {
		if pkg, file, ok := strings.Cut(entry, ":"); ok {
			if pkg == pkgPath && file == base {
				return true
			}
			continue
		}
		if entry == pkgPath || strings.HasPrefix(pkgPath, strings.TrimSuffix(entry, "/")+"/") {
			return true
		}
	}
	return false
}

// isSnapshotPkg reports whether the snapshot coverage contract applies to
// types declared in pkgPath.
func (c *Config) isSnapshotPkg(pkgPath string) bool {
	for _, p := range c.SnapshotPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// isLaneDispatchPkg reports whether pkgPath holds lane-executed code.
func (c *Config) isLaneDispatchPkg(pkgPath string) bool {
	for _, p := range c.LaneDispatchPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// laneCoordinatorFile reports whether base (a file's base name) in pkgPath
// is sanctioned to use the coordinator-only ShardedEngine surface.
func (c *Config) laneCoordinatorFile(pkgPath, base string) bool {
	for _, entry := range c.LaneCoordinatorFiles {
		if pkg, file, ok := strings.Cut(entry, ":"); ok && pkg == pkgPath && file == base {
			return true
		}
	}
	return false
}

// RunAnalyzers builds the shared type-facts layer, runs the given rules
// over every package, drops findings suppressed by a justification
// directive, and returns the remainder sorted by (file, line, column,
// rule). When U001 is among the analyzers, a final pass reports every
// suppression directive that excused nothing (considering only the rules
// that actually ran, so a -rules subset cannot mark directives stale).
func RunAnalyzers(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := BuildFacts(pkgs)
	auditUnused := false
	ran := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "U001" {
			auditUnused = true
		} else {
			ran[a.Name] = true
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		pkg.ensureDirectives()
		for _, a := range analyzers {
			for _, d := range a.Run(cfg, facts, pkg) {
				if !pkg.suppressed(d.Rule, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	if auditUnused {
		for _, pkg := range pkgs {
			for _, d := range unusedDirectiveDiags(facts, pkg, ran) {
				if !pkg.suppressed(d.Rule, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Package is one type-checked, comment-bearing package under analysis.
type Package struct {
	// PkgPath is the import path ("paratick/internal/sim").
	PkgPath string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives maps filename → line → the //lint: directives written
	// there, built lazily and hit-tracked for the U001 stale-suppression
	// audit.
	directives map[string]map[int][]*lineDirective
}

// lineDirective is one //lint:ignore or //lint:ordered comment.
type lineDirective struct {
	// rules the directive names (lint:ordered is shorthand for D003).
	rules []string
	// hasReason records whether a justification was given; without one the
	// directive suppresses nothing.
	hasReason bool
	pos       token.Pos
	// used flips when the directive suppresses a diagnostic.
	used bool
}

// fileBase returns the base filename of the file containing pos.
func (p *Package) fileBase(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// position resolves a token.Pos.
func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// ensureDirectives parses the package's //lint: comments once.
func (p *Package) ensureDirectives() {
	if p.directives == nil {
		p.directives = parseDirectives(p.Fset, p.Files)
	}
}

// suppressed reports whether a justification directive on the diagnostic's
// line, or the line directly above it, names the rule. A directive without
// a reason suppresses nothing. Matches are recorded for the U001 audit.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	p.ensureDirectives()
	byLine := p.directives[pos.Filename]
	hit := false
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[l] {
			if !d.hasReason {
				continue
			}
			for _, r := range d.rules {
				if r == rule {
					d.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// parseDirectives scans every comment for //lint:ignore and //lint:ordered
// justifications, keeping reasonless directives around (they suppress
// nothing, but U001 reports them).
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]*lineDirective {
	out := make(map[string]map[int][]*lineDirective)
	add := func(pos token.Pos, d *lineDirective) {
		position := fset.Position(pos)
		byLine := out[position.Filename]
		if byLine == nil {
			byLine = make(map[int][]*lineDirective)
			out[position.Filename] = byLine
		}
		d.pos = pos
		byLine[position.Line] = append(byLine[position.Line], d)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if rest, ok := strings.CutPrefix(text, "lint:ignore "); ok {
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue // no rule named: not a directive
					}
					add(c.Pos(), &lineDirective{
						rules:     strings.Split(fields[0], ","),
						hasReason: len(fields) >= 2,
					})
				} else if rest, ok := strings.CutPrefix(text, "lint:ordered"); ok && (rest == "" || strings.HasPrefix(rest, " ")) {
					add(c.Pos(), &lineDirective{
						rules:     []string{"D003"},
						hasReason: strings.TrimSpace(rest) != "",
					})
				}
			}
		}
	}
	return out
}

// pkgNameOf returns the imported package an identifier refers to, or nil if
// the identifier is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// qualifiedCallee resolves a selector expression to (package path, name) when
// it references a package-level object of an imported package.
func qualifiedCallee(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
