// Package lint is paratick-vet's analyzer framework: a small, stdlib-only
// (go/parser + go/types + go/importer) harness that type-checks the module
// from source and runs project-law analyzers over it.
//
// The laws it enforces are the two invariants the reproduction's methodology
// rests on and that tests can only catch after the fact:
//
//   - Determinism: simulation results must be byte-identical for any seed and
//     worker count. Wall-clock reads, global RNG state, unordered map
//     iteration feeding output, and unsanctioned concurrency all break this
//     silently, far from where a golden diff eventually points. Rules D001,
//     D002, D003 and D004 turn each into a compile-time diagnostic with exact
//     file:line blame.
//
//   - Zero-allocation hot paths: the event engine and timer wheel promise
//     0 allocs/op in steady state. Rule A001 checks every function annotated
//     `//paratick:noalloc` for allocation-prone constructs and requires the
//     same annotation on its statically-resolved same-package callees, so an
//     allocation cannot hide one call deep.
//
// Suppression: a finding that is deliberate carries a justification comment
// on the same line or the line directly above it —
//
//	//lint:ignore D004 reason…   suppresses the named rule(s); a reason is
//	                             mandatory (comma-separate several rules)
//	//lint:ordered reason…       shorthand for D003: iteration order is
//	                             harmless or handled here
//
// A directive without a reason does not suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic vet-style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule run over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier (D001…, A001…) used in diagnostics and
	// suppression directives.
	Name string
	// Doc is a one-line description shown by paratick-vet -list.
	Doc string
	// Run reports the rule's findings in pkg. Suppression directives are
	// applied by RunAnalyzers, not by the rule itself.
	Run func(cfg *Config, pkg *Package) []Diagnostic
}

// Analyzers returns every registered rule, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{AnalyzerD001, AnalyzerD002, AnalyzerD003, AnalyzerD004, AnalyzerA001}
}

// Config scopes the rules to the project layout: which packages carry the
// determinism contract and where concurrency is sanctioned.
type Config struct {
	// DeterministicPkgs are import paths of packages in which D001 (wall
	// clock) applies: everything they compute must be a pure function of
	// seeds and scenario parameters.
	DeterministicPkgs []string
	// ExemptFiles maps an import path to base filenames excluded from the
	// deterministic-package rules (e.g. the parallel runner, which owns the
	// sanctioned concurrency but never touches simulated state).
	ExemptFiles map[string][]string
	// ConcurrencyAllow lists where D004 permits goroutine launches and
	// multi-case selects: either an import-path prefix ("mod/cmd/") or a
	// single file ("mod/internal/experiment:runner.go").
	ConcurrencyAllow []string
}

// DefaultConfig returns the paratick project policy for a module rooted at
// import path modPath.
func DefaultConfig(modPath string) *Config {
	p := func(s string) string { return modPath + "/" + s }
	return &Config{
		DeterministicPkgs: []string{
			p("internal/sim"), p("internal/guest"), p("internal/kvm"),
			p("internal/core"), p("internal/sched"), p("internal/hw"),
			p("internal/experiment"),
		},
		ExemptFiles: map[string][]string{
			p("internal/experiment"): {"runner.go"},
		},
		ConcurrencyAllow: []string{
			p("internal/experiment") + ":runner.go",
			// shard.go owns the quantum-barrier parallelism: shard worker
			// goroutines synchronized by channel ping-pong, each confined to
			// its own lanes' engines. Everything else in internal/sim stays
			// single-threaded by contract.
			p("internal/sim") + ":shard.go",
			p("cmd") + "/",
		},
	}
}

// isDeterministicPkg reports whether the determinism rules apply to pkgPath.
func (c *Config) isDeterministicPkg(pkgPath string) bool {
	for _, p := range c.DeterministicPkgs {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// isExemptFile reports whether base (a file's base name) is excluded from
// the deterministic-package rules in pkgPath.
func (c *Config) isExemptFile(pkgPath, base string) bool {
	for _, f := range c.ExemptFiles[pkgPath] {
		if f == base {
			return true
		}
	}
	return false
}

// concurrencyAllowed reports whether D004 sanctions concurrency in the given
// file of the given package.
func (c *Config) concurrencyAllowed(pkgPath, base string) bool {
	for _, entry := range c.ConcurrencyAllow {
		if pkg, file, ok := strings.Cut(entry, ":"); ok {
			if pkg == pkgPath && file == base {
				return true
			}
			continue
		}
		if entry == pkgPath || strings.HasPrefix(pkgPath, strings.TrimSuffix(entry, "/")+"/") {
			return true
		}
	}
	return false
}

// RunAnalyzers runs the given rules over every package, drops findings
// suppressed by a justification directive, and returns the remainder sorted
// by (file, line, column, rule).
func RunAnalyzers(cfg *Config, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(cfg, pkg) {
				if !pkg.suppressed(d.Rule, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// Package is one type-checked, comment-bearing package under analysis.
type Package struct {
	// PkgPath is the import path ("paratick/internal/sim").
	PkgPath string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives maps filename → line → rules suppressed there, built
	// lazily from //lint: comments.
	directives map[string]map[int][]string
}

// fileBase returns the base filename of the file containing pos.
func (p *Package) fileBase(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// position resolves a token.Pos.
func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// suppressed reports whether a justification directive on the diagnostic's
// line, or the line directly above it, names the rule.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	if p.directives == nil {
		p.directives = parseDirectives(p.Fset, p.Files)
	}
	byLine := p.directives[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range byLine[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// parseDirectives scans every comment for //lint:ignore and //lint:ordered
// justifications. Directives without a reason are ignored: a suppression
// must say why.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	add := func(pos token.Position, rules []string) {
		byLine := out[pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]string)
			out[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], rules...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore "))
					if len(fields) < 2 {
						continue // no reason given
					}
					add(fset.Position(c.Pos()), strings.Split(fields[0], ","))
				case strings.HasPrefix(text, "lint:ordered "):
					if strings.TrimSpace(strings.TrimPrefix(text, "lint:ordered ")) == "" {
						continue
					}
					add(fset.Position(c.Pos()), []string{"D003"})
				}
			}
		}
	}
	return out
}

// pkgNameOf returns the imported package an identifier refers to, or nil if
// the identifier is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// qualifiedCallee resolves a selector expression to (package path, name) when
// it references a package-level object of an imported package.
func qualifiedCallee(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn := pkgNameOf(info, id)
	if pn == nil {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
