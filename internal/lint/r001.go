package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerR001 enforces reset field coverage for pooled types. Starting
// from the arena take-path roots (Config.ArenaRoots), the module's static
// call graph is walked; every Reset/reset method reachable from a root
// puts its receiver type under the contract: each field must be zeroed,
// reassigned, or otherwise written somewhere on the reachable reuse path —
// assignment, ++/--, address-taken, passed to a call, or the base of a
// method call (v.wheel.Reset() counts for wheel) — or carry a
// `//reset:keep reason` annotation (construction identity that survives
// reuse by design: pre-bound closures, back-pointers, pooled storage).
// A merely-read field does not count: reading stale state is exactly the
// bug class the digest audits only sample for.
var AnalyzerR001 = &Analyzer{
	Name: "R001",
	Doc:  "every field of an arena-recycled type is reset or carries //reset:keep",
	Run:  runR001,
}

// resetFacts is the module-wide arena-reachability walk shared across
// packages in one run.
type resetFacts struct {
	// contract maps each recycled type to the reachable reset method that
	// put it under contract.
	contract map[*TypeFact]*FuncFact
	// covered holds every field written on the reachable reuse path.
	covered map[*types.Var]bool
	// wholeAssigned holds types a reachable function assigns wholesale
	// (*p = T{…}), which covers every field at once.
	wholeAssigned map[*types.TypeName]bool
}

// resetCoverage walks the arena call graph once per run.
func (f *Facts) resetCoverage(cfg *Config) *resetFacts {
	if f.reset != nil {
		return f.reset
	}
	rf := &resetFacts{
		contract:      make(map[*TypeFact]*FuncFact),
		covered:       make(map[*types.Var]bool),
		wholeAssigned: make(map[*types.TypeName]bool),
	}
	// Seed the walk with the configured roots.
	visited := make(map[*FuncFact]bool)
	var queue []*FuncFact
	for _, ff := range f.Funcs {
		if matchesArenaRoot(cfg, ff) {
			visited[ff] = true
			queue = append(queue, ff)
		}
	}
	for len(queue) > 0 {
		ff := queue[0]
		queue = queue[1:]
		ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
			// A function literal is not executed by the function that
			// declares it: binding `p.doneFn = func() { p.done() }` on the
			// take path must not pull the whole run path into the walk —
			// run-path writes happen after take and cannot sanitize the
			// previous run's state.
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := f.calleeOf(ff.Pkg, call); callee != nil && !visited[callee] {
				visited[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	// Reachable Reset/reset methods define the contract set.
	for ff := range visited {
		name := ff.Decl.Name.Name
		if name != "Reset" && name != "reset" {
			continue
		}
		if recv := recvTypeName(ff.Fn); recv != nil {
			if tf := f.Types[recv]; tf != nil {
				rf.contract[tf] = ff
			}
		}
	}
	// Sweep every reachable body for field writes.
	for ff := range visited {
		collectResetWrites(ff.Pkg, ff.Decl.Body, rf)
	}
	f.reset = rf
	return rf
}

// matchesArenaRoot reports whether ff is named by a Config.ArenaRoots entry
// ("path:Type", "path:Type.Method", or "path:Func").
func matchesArenaRoot(cfg *Config, ff *FuncFact) bool {
	fnName := ff.Decl.Name.Name
	recv := recvTypeName(ff.Fn)
	for _, entry := range cfg.ArenaRoots {
		path, name, ok := strings.Cut(entry, ":")
		if !ok || path != ff.Pkg.PkgPath {
			continue
		}
		if recv != nil {
			if name == recv.Name() || name == recv.Name()+"."+fnName {
				return true
			}
		} else if name == fnName {
			return true
		}
	}
	return false
}

// collectResetWrites records field coverage from one body: assignments,
// ++/--, address-of, call arguments, and method-call receivers all count
// as writes (or ownership transfers) on the reuse path.
func collectResetWrites(pkg *Package, body *ast.BlockStmt, rf *resetFacts) {
	coverIn := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // deferred to run time, not a take-path write
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if selection := pkg.Info.Selections[sel]; selection != nil && selection.Kind() == types.FieldVal {
					if v, ok := selection.Obj().(*types.Var); ok {
						rf.covered[v] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Writes inside a closure run later (if ever), not on the take
			// path being swept.
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				coverIn(lhs)
				// `*p = T{…}` rewrites the whole struct: every field is
				// covered at once.
				if star, ok := unparen(lhs).(*ast.StarExpr); ok {
					if named := namedOf(pkg.Info.Types[star.X].Type); named != nil {
						rf.wholeAssigned[named.Obj()] = true
					}
				}
			}
		case *ast.IncDecStmt:
			coverIn(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				coverIn(n.X)
			}
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				coverIn(sel.X)
			}
			for _, arg := range n.Args {
				coverIn(arg)
			}
		}
		return true
	})
}

func runR001(cfg *Config, facts *Facts, pkg *Package) []Diagnostic {
	rf := facts.resetCoverage(cfg)
	var out []Diagnostic
	//lint:ordered RunAnalyzers sorts diagnostics by position before reporting
	for _, tf := range facts.Types {
		if tf.Pkg != pkg {
			continue
		}
		resetFn := rf.contract[tf]
		if resetFn == nil {
			continue
		}
		for _, field := range tf.Fields {
			if rf.covered[field.Var] || rf.wholeAssigned[tf.Obj] {
				continue
			}
			if d := field.ResetKeep; d != nil && d.Reason != "" {
				d.used = true
				continue
			}
			out = append(out, Diagnostic{
				Pos:  pkg.position(field.Pos),
				Rule: "R001",
				Message: fmt.Sprintf(
					"field %s.%s is not reset on the arena reuse path (recycled via %s.%s) and carries no //reset:keep justification",
					tf.Obj.Name(), field.Name, tf.Obj.Name(), resetFn.Decl.Name.Name),
			})
		}
	}
	return out
}
