package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// AnalyzerD002 flags use of math/rand's process-global generator (and the
// global Seed). The project's only legal randomness is a seeded generator
// threaded from experiment configuration — internally that is sim.Rand;
// a seeded *rand.Rand built via rand.New(rand.NewSource(seed)) is tolerated
// at the edges, so the New* constructors stay legal.
var AnalyzerD002 = &Analyzer{
	Name: "D002",
	Doc:  "no global or unseeded math/rand; thread a seeded generator from config",
	Run:  runD002,
}

// randPkgs are the import paths D002 watches.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runD002(cfg *Config, _ *Facts, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := qualifiedCallee(pkg.Info, sel)
			if !ok || !randPkgs[path] {
				return true
			}
			// Constructors (New, NewSource, NewPCG, …) build an explicitly
			// seeded generator; every other package-level entry point — and
			// the deprecated global Seed — goes through shared process state.
			if strings.HasPrefix(name, "New") {
				return true
			}
			out = append(out, Diagnostic{
				Pos:  pkg.position(sel.Pos()),
				Rule: "D002",
				Message: fmt.Sprintf("%s.%s uses the process-global RNG: thread a seeded generator (sim.Rand) from experiment config",
					path, name),
			})
			return true
		})
	}
	return out
}
