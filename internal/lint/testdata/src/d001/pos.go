package d001

import "time"

// Deadline reads the wall clock and sleeps: two findings.
func Deadline() time.Time {
	t := time.Now()
	time.Sleep(time.Second)
	return t
}
