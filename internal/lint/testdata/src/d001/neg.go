package d001

import "time"

// Span does pure duration arithmetic: legal in deterministic packages.
func Span(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
