package unused

import (
	"fmt"

	"paratick/internal/snap"
)

// Working suppresses a real map-range finding: the directive earns its
// keep, no U001 finding.
func Working(m map[string]int) {
	//lint:ignore D003 fixture: output order is irrelevant here
	for k := range m {
		fmt.Println(k)
	}
}

// Quiet's scratch is genuinely unencoded and justified: the skip is
// load-bearing, no finding.
type Quiet struct {
	n uint64
	//snap:skip fixture: scratch buffer rebuilt on demand
	scratch []byte
}

// Save encodes n.
func (q *Quiet) Save(enc *snap.Encoder) {
	enc.U64(q.n)
}

// Slot's home is genuinely unreset and justified: the keep is
// load-bearing, no finding.
type Slot struct {
	used bool
	//reset:keep fixture: back-pointer wired once at construction
	home *Pool
}

// reset clears the mutable flag.
func (s *Slot) reset() {
	s.used = false
}

// TakeSlot recycles a Slot from the arena root.
func (p *Pool) TakeSlot(s *Slot) *Slot {
	s.reset()
	return s
}
