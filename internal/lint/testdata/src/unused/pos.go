package unused

import (
	"fmt"

	"paratick/internal/snap"
)

// Stale guards a slice range, which D003 never flags: the directive
// suppresses nothing. One U001 finding.
func Stale(s []int) {
	//lint:ignore D003 fixture: slices iterate in order anyway
	for _, v := range s {
		fmt.Println(v)
	}
}

// Reasonless fails to suppress the map range (one D003 finding) and the
// bare directive is dead weight (one U001 finding).
func Reasonless(m map[string]int) {
	//lint:ignore D003
	for k := range m {
		fmt.Println(k)
	}
}

// State's seen field is encoded by Save, so its skip annotation excuses a
// field S001 already covers: one U001 finding.
type State struct {
	value uint64
	//snap:skip fixture: re-derived on load
	seen uint64
}

// Save encodes both fields.
func (s *State) Save(enc *snap.Encoder) {
	enc.U64(s.value)
	enc.U64(s.seen)
}

// Cache's entries field is uncovered and its skip has no reason: one
// S001 finding (the bare skip excuses nothing) plus one U001 finding.
type Cache struct {
	//snap:skip
	entries map[string]int
	hits    uint64
}

// Save encodes only hits.
func (c *Cache) Save(enc *snap.Encoder) {
	enc.U64(c.hits)
}

// Pool recycles Conn values; configured as the fixture's arena root.
type Pool struct {
	free []*Conn
}

// Take recycles a Conn.
func (p *Pool) Take() *Conn {
	c := p.free[0]
	c.reset()
	return c
}

// Conn's id is zeroed by reset, so its keep annotation excuses a field
// R001 already covers: one U001 finding.
type Conn struct {
	//reset:keep fixture: identity survives reuse
	id int
}

// reset zeroes id.
func (c *Conn) reset() {
	c.id = 0
}
