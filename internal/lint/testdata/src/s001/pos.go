package s001

import "paratick/internal/snap"

// Counter is under the coverage contract: Save references value, so every
// other field must be encoded or carry a justified //snap:skip.
type Counter struct {
	value uint64
	// dropped is stateful but never encoded and carries no skip: one
	// finding.
	dropped uint64
	//snap:skip
	cache map[string]uint64 // reasonless skip excuses nothing: one finding
}

// Save encodes only value.
func (c *Counter) Save(enc *snap.Encoder) {
	enc.U64(c.value)
}
