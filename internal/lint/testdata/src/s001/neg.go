package s001

import "paratick/internal/snap"

// Gauge is fully covered: high is encoded by the Save method, low by a
// helper in the save graph, and scratch carries a justified skip. Clean.
type Gauge struct {
	high uint64
	low  uint64
	//snap:skip scratch buffer, rebuilt on demand after restore
	scratch []byte
}

// Save encodes high and delegates the rest.
func (g *Gauge) Save(enc *snap.Encoder) {
	enc.U64(g.high)
	saveLow(enc, g)
}

// saveLow has an encoder parameter, so it is part of the save graph.
func saveLow(enc *snap.Encoder, g *Gauge) {
	enc.U64(g.low)
}

// Untracked is never touched by any save function: not under the
// contract, so its unencoded fields are legal.
type Untracked struct {
	hits   int
	misses int
}

// Touch keeps the fields referenced outside the save graph.
func (u *Untracked) Touch() { u.hits++; u.misses++ }
