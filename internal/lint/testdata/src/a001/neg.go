package a001

import "fmt"

// pool is a slab-style accumulator: appends into its fields are assumed
// pool-managed by the surrounding design.
type pool struct{ buf []int }

//paratick:noalloc
func (p *pool) put(x int) {
	p.buf = append(p.buf, x)
}

// Fill exercises every sanctioned pattern: annotated same-package callee,
// integer arithmetic, reslice capacity evidence, and an allocating panic
// path (allocating while aborting is free).
//
//paratick:noalloc
func Fill(p *pool, xs []int) int {
	n := 0
	for _, x := range xs {
		p.put(x)
		n += x
	}
	scratch := p.buf[:0]
	scratch = append(scratch, n)
	if n < 0 {
		panic(fmt.Sprintf("impossible: %d", n))
	}
	return scratch[0]
}
