package a001

import "fmt"

//paratick:noalloc
func Hot(xs []int) int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	fmt.Println(len(out))
	m := map[string]int{}
	helper()
	return len(m)
}

func helper() {}

// Box passes an int where an interface parameter is expected: one finding.
//
//paratick:noalloc
func Box(sink func(any)) {
	sink(42)
}
