package d004

// Fan launches a goroutine and races two channels: two findings.
func Fan(a, b chan int) {
	go func() { a <- 1 }()
	select {
	case <-a:
	case <-b:
	}
}
