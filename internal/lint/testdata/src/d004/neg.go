package d004

// Drain consumes one channel with a single-case select: deterministic,
// legal.
func Drain(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
