package sim

// laneLeak runs inside a lane but calls a coordinator-only method and
// reaches into the engine's fields: two findings.
func laneLeak(e *ShardedEngine) {
	e.Drain()
	e.lanes[1] = 7
}
