// Package sim is a fixture double of the simulator: the rule matches
// ShardedEngine structurally (type name + package name), so the fixture
// declares its own. This file is on the coordinator allowlist: full
// access to the engine surface is legal here.
package sim

// ShardedEngine is the fixture engine.
type ShardedEngine struct {
	lanes   []int
	quantum int
}

// Post is the lane-safe message path.
func (e *ShardedEngine) Post(lane int, v int) {
	e.lanes[lane] += v
}

// Quantum is the lane-safe read-only index.
func (e *ShardedEngine) Quantum() int {
	return e.quantum
}

// Drain is coordinator-only.
func (e *ShardedEngine) Drain() {
	e.quantum++
}

// coordinatorStep may use the full surface: this file is allowlisted.
func coordinatorStep(e *ShardedEngine) {
	e.Drain()
	e.lanes[0] = 0
}
