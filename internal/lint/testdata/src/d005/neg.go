package sim

// laneStep stays inside the lane-safe surface: Post for cross-lane
// effects, Quantum for the read-only index. Clean.
func laneStep(e *ShardedEngine) int {
	e.Post(1, 7)
	return e.Quantum()
}
