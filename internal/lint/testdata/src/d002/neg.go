package d002

import "math/rand"

// Seeded threads an explicitly seeded generator: legal.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
