package d002

import "math/rand"

// Roll uses the process-global RNG: two findings.
func Roll() int {
	rand.Seed(42)
	return rand.Intn(6)
}
