package s002

import "paratick/internal/snap"

// Pair's load decodes b before a while its save encodes a before b: the
// transposition S002 exists to catch. One finding on the first load op.
type Pair struct {
	a uint64
	b uint64
}

// Save encodes a then b.
func (p *Pair) Save(enc *snap.Encoder) {
	enc.U64(p.a)
	enc.U64(p.b)
}

// Load decodes them swapped.
func (p *Pair) Load(dec *snap.Decoder) {
	p.b = dec.U64()
	p.a = dec.U64()
}

// Short's load reads fewer operations than its save writes: one finding
// on the load's name.
type Short struct {
	x uint32
	y uint32
}

// Save writes two words.
func (s *Short) Save(enc *snap.Encoder) {
	enc.U32(s.x)
	enc.U32(s.y)
}

// Load reads one.
func (s *Short) Load(dec *snap.Decoder) {
	s.x = dec.U32()
}

// Mixed's load reads a different primitive kind at op 2: one finding.
type Mixed struct {
	flag bool
	n    uint64
}

// Save writes Bool then U64.
func (m *Mixed) Save(enc *snap.Encoder) {
	enc.Bool(m.flag)
	enc.U64(m.n)
}

// Load reads Bool then U32.
func (m *Mixed) Load(dec *snap.Decoder) {
	m.flag = dec.Bool()
	m.n = uint64(dec.U32())
}
