package s002

import "paratick/internal/snap"

// Tree exercises the control-flow cases the flattener must see through:
// a nil guard (save writes a presence Bool and returns; load returns
// early), delegation to a helper pair, and an if/else whose branches
// encode the same primitive either way. Clean.
type Tree struct {
	size  uint64
	left  *Tree
	wide  bool
	extra uint64
}

// SaveTree writes a presence marker, then the node via a helper.
func SaveTree(enc *snap.Encoder, t *Tree) {
	if t == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	saveNode(enc, t)
}

// LoadTree mirrors SaveTree through the guard.
func LoadTree(dec *snap.Decoder) *Tree {
	if !dec.Bool() {
		return nil
	}
	t := &Tree{}
	loadNode(dec, t)
	return t
}

// saveNode encodes size, a same-shape if/else, then recurses.
func saveNode(enc *snap.Encoder, t *Tree) {
	enc.U64(t.size)
	if t.wide {
		enc.U64(t.extra)
	} else {
		enc.U64(0)
	}
	SaveTree(enc, t.left)
}

// loadNode mirrors saveNode without the branch.
func loadNode(dec *snap.Decoder, t *Tree) {
	t.size = dec.U64()
	t.extra = dec.U64()
	t.left = LoadTree(dec)
}
