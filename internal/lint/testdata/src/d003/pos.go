package d003

import "fmt"

// Render prints a map in iteration order: one finding.
func Render(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Total accumulates floats in map order (float addition is not
// associative): one finding.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
