package d003

import (
	"fmt"

	"paratick/internal/snap"
)

// Render prints a map in iteration order: one finding.
func Render(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Total accumulates floats in map order (float addition is not
// associative): one finding.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// SaveCounts feeds a map range straight into a snapshot encoder: the
// serialized bytes would depend on iteration order, so two snapshots of
// identical state could fail to compare byte-equal. One finding.
func SaveCounts(enc *snap.Encoder, m map[string]uint64) {
	for _, v := range m {
		enc.U64(v)
	}
}
