package d003

import (
	"fmt"
	"sort"

	"paratick/internal/snap"
)

// Sorted collects keys and sorts them before use: the sanctioned pattern.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counts accumulates integers: order-independent, legal.
func Counts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Justified documents why ordering is harmless; the directive suppresses
// the finding.
func Justified(m map[string]int) {
	//lint:ordered demo fixture: output is consumed order-insensitively
	for k := range m {
		fmt.Println(k)
	}
}

// SortedSave collects and sorts the keys before encoding — the sanctioned
// pattern for serializing a map: the bytes are deterministic, no finding
// (the second loop ranges over the sorted slice, not the map).
func SortedSave(enc *snap.Encoder, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		enc.String(k)
		enc.U64(m[k])
	}
}
