package d003

import (
	"fmt"
	"sort"
)

// Sorted collects keys and sorts them before use: the sanctioned pattern.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counts accumulates integers: order-independent, legal.
func Counts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Justified documents why ordering is harmless; the directive suppresses
// the finding.
func Justified(m map[string]int) {
	//lint:ordered demo fixture: output is consumed order-insensitively
	for k := range m {
		fmt.Println(k)
	}
}
