package r001

// Worker's reuse path is clean: n is zeroed by Reset, home carries a
// justified keep.
type Worker struct {
	n int
	//reset:keep back-pointer to the owning pool, wired once at construction
	home *Pool
}

// Reset zeroes the mutable state.
func (w *Worker) Reset() {
	w.n = 0
}

// TakeWorker recycles through Reset: reachable from the Pool root.
func (p *Pool) TakeWorker(w *Worker) *Worker {
	w.Reset()
	return w
}

// Slot is reset wholesale: *s = Slot{} covers every field at once.
type Slot struct {
	tag  string
	live bool
}

// Reset rewrites the whole struct.
func (s *Slot) Reset() {
	*s = Slot{}
}

// TakeSlot recycles a Slot.
func (p *Pool) TakeSlot(s *Slot) *Slot {
	s.Reset()
	return s
}

// Loose has unreset fields but no reachable reset method: not under the
// contract, so it is legal.
type Loose struct {
	stale int
}

// clear is never called from an arena root.
func (l *Loose) clear() { l.stale = 0 }
