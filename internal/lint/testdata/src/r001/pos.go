package r001

// Pool recycles Conn values; its methods are the configured arena roots.
type Pool struct {
	free []*Conn
}

// Take pops a pooled Conn and recycles it, putting Conn's reset under the
// coverage contract.
func (p *Pool) Take() *Conn {
	n := len(p.free)
	c := p.free[n-1]
	p.free = p.free[:n-1]
	c.reset()
	return c
}

// Conn is recycled through the pool.
type Conn struct {
	id int
	// buf is never reset and carries no keep: stale bytes leak across
	// reuses. One finding.
	buf []byte
	//reset:keep
	owner *Pool // reasonless keep excuses nothing: one finding
}

// reset zeroes only id.
func (c *Conn) reset() {
	c.id = 0
}
