package ignore

import "fmt"

// Justified carries a reasoned directive: suppressed.
func Justified(m map[string]int) {
	//lint:ignore D003 fixture: order is irrelevant here
	for k := range m {
		fmt.Println(k)
	}
}

// Unjustified carries a reasonless directive: NOT suppressed.
func Unjustified(m map[string]int) {
	//lint:ignore D003
	for k := range m {
		fmt.Println(k)
	}
}
