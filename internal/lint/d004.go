package lint

import (
	"go/ast"
)

// AnalyzerD004 flags goroutine launches and multi-case channel selects
// outside the approved concurrency surface. The simulation core is
// single-threaded by contract — determinism depends on it — and the only
// sanctioned concurrency is the parallel experiment runner (independent
// engines, results assembled by index) and cmd/ entry points.
var AnalyzerD004 = &Analyzer{
	Name: "D004",
	Doc:  "no goroutines or multi-case selects outside the approved concurrency allowlist",
	Run:  runD004,
}

func runD004(cfg *Config, _ *Facts, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		if cfg.concurrencyAllowed(pkg.PkgPath, pkg.fileBase(f.Pos())) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, Diagnostic{
					Pos:     pkg.position(n.Pos()),
					Rule:    "D004",
					Message: "goroutine launch outside the approved concurrency allowlist (simulation state is single-threaded by contract)",
				})
			case *ast.SelectStmt:
				if len(n.Body.List) >= 2 {
					out = append(out, Diagnostic{
						Pos:     pkg.position(n.Pos()),
						Rule:    "D004",
						Message: "multi-case select outside the approved concurrency allowlist: case choice is scheduler-dependent and nondeterministic",
					})
				}
			}
			return true
		})
	}
	return out
}
