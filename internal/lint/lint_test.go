package lint

import (
	"path/filepath"
	"testing"
)

// diagAt is one expected finding: base filename, exact line and column, and
// the rule that fires there.
type diagAt struct {
	file string
	line int
	col  int
	rule string
}

// fixtureConfig scopes the rules to the fixture import paths: the d001
// fixture package is "deterministic", the s001/s002/unused fixtures carry
// the snapshot contract, the r001/unused fixtures are arena-recycled
// through their Pool, and the d005 fixture is lane-dispatch code with
// coord.go as its only coordinator file.
func fixtureConfig() *Config {
	return &Config{
		DeterministicPkgs:    []string{"fixture/d001"},
		SnapshotPkgs:         []string{"fixture/s001", "fixture/s002", "fixture/unused"},
		ArenaRoots:           []string{"fixture/r001:Pool", "fixture/unused:Pool"},
		LaneDispatchPkgs:     []string{"fixture/d005"},
		LaneCoordinatorFiles: []string{"fixture/d005:coord.go"},
	}
}

// TestAnalyzerFixtures drives every rule over its positive (fires) and
// negative (clean) fixture and asserts the exact diagnostic positions, so a
// rule cannot silently rot in either direction. Both fixture files form one
// package per rule; every expected finding lives in pos.go, and any finding
// in neg.go fails the test by not matching the table.
func TestAnalyzerFixtures(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rule      string
		analyzers []*Analyzer
		want      []diagAt
	}{
		{"d001", []*Analyzer{AnalyzerD001}, []diagAt{
			{"pos.go", 7, 7, "D001"}, // time.Now
			{"pos.go", 8, 2, "D001"}, // time.Sleep
		}},
		{"d002", []*Analyzer{AnalyzerD002}, []diagAt{
			{"pos.go", 7, 2, "D002"}, // rand.Seed
			{"pos.go", 8, 9, "D002"}, // rand.Intn
		}},
		{"d003", []*Analyzer{AnalyzerD003}, []diagAt{
			{"pos.go", 11, 2, "D003"}, // range feeding fmt.Println
			{"pos.go", 20, 2, "D003"}, // range accumulating floats
			{"pos.go", 30, 2, "D003"}, // range feeding a snapshot encoder
		}},
		{"d004", []*Analyzer{AnalyzerD004}, []diagAt{
			{"pos.go", 5, 2, "D004"}, // go statement
			{"pos.go", 6, 2, "D004"}, // two-case select
		}},
		{"d005", []*Analyzer{AnalyzerD005}, []diagAt{
			{"pos.go", 6, 4, "D005"}, // coordinator-only Drain call
			{"pos.go", 7, 4, "D005"}, // direct field access
		}},
		{"a001", []*Analyzer{AnalyzerA001}, []diagAt{
			{"pos.go", 9, 9, "A001"},  // append without cap evidence
			{"pos.go", 11, 2, "A001"}, // fmt.Println
			{"pos.go", 12, 7, "A001"}, // map literal
			{"pos.go", 13, 2, "A001"}, // unannotated callee
			{"pos.go", 23, 7, "A001"}, // int boxed into any
		}},
		{"s001", []*Analyzer{AnalyzerS001}, []diagAt{
			{"pos.go", 11, 2, "S001"}, // dropped: never encoded
			{"pos.go", 13, 2, "S001"}, // cache: reasonless skip excuses nothing
		}},
		{"s002", []*Analyzer{AnalyzerS002}, []diagAt{
			{"pos.go", 20, 8, "S002"},  // Pair: op 1 transposed (b vs a)
			{"pos.go", 38, 17, "S002"}, // Short: load reads 1 of 2 ops
			{"pos.go", 57, 15, "S002"}, // Mixed: op 2 reads U32 where save writes U64
		}},
		{"r001", []*Analyzer{AnalyzerR001}, []diagAt{
			{"pos.go", 23, 2, "R001"}, // buf: never reset
			{"pos.go", 25, 2, "R001"}, // owner: reasonless keep excuses nothing
		}},
		{"unused", []*Analyzer{AnalyzerD003, AnalyzerS001, AnalyzerR001, AnalyzerU001}, []diagAt{
			{"pos.go", 12, 2, "U001"}, // stale //lint:ignore on a slice range
			{"pos.go", 21, 2, "U001"}, // reasonless //lint:ignore
			{"pos.go", 22, 2, "D003"}, // the map range the bare directive fails to hush
			{"pos.go", 31, 2, "U001"}, // stale //snap:skip on an encoded field
			{"pos.go", 44, 2, "U001"}, // reasonless //snap:skip
			{"pos.go", 45, 2, "S001"}, // entries: the bare skip excuses nothing
			{"pos.go", 69, 2, "U001"}, // stale //reset:keep on a reset field
		}},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", tc.rule), "fixture/"+tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			diags := RunAnalyzers(fixtureConfig(), []*Package{pkg}, tc.analyzers)
			if len(diags) != len(tc.want) {
				for _, d := range diags {
					t.Logf("got: %s", d)
				}
				t.Fatalf("got %d diagnostics, want %d", len(diags), len(tc.want))
			}
			for i, d := range diags {
				w := tc.want[i]
				got := diagAt{filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule}
				if got != w {
					t.Errorf("diagnostic %d: got %+v, want %+v (%s)", i, got, w, d.Message)
				}
			}
		})
	}
}

// TestConcurrencyAllowlist checks both allowlist entry forms: a pkg:file
// pin and an import-path prefix.
func TestConcurrencyAllowlist(t *testing.T) {
	cfg := &Config{ConcurrencyAllow: []string{
		"mod/internal/experiment:runner.go",
		"mod/cmd/",
	}}
	for _, tc := range []struct {
		pkg, file string
		want      bool
	}{
		{"mod/internal/experiment", "runner.go", true},
		{"mod/internal/experiment", "other.go", false},
		{"mod/cmd/paratick-bench", "main.go", true},
		{"mod/cmdx", "main.go", false},
		{"mod/internal/sim", "engine.go", false},
	} {
		if got := cfg.concurrencyAllowed(tc.pkg, tc.file); got != tc.want {
			t.Errorf("concurrencyAllowed(%s, %s) = %v, want %v", tc.pkg, tc.file, got, tc.want)
		}
	}
}

// TestD004AllowlistedFixture re-runs the D004 positive fixture with its file
// on the allowlist and expects silence.
func TestD004AllowlistedFixture(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "d004"), "fixture/d004")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{ConcurrencyAllow: []string{"fixture/d004:pos.go"}}
	if diags := RunAnalyzers(cfg, []*Package{pkg}, []*Analyzer{AnalyzerD004}); len(diags) != 0 {
		t.Fatalf("allowlisted fixture still fires: %v", diags)
	}
}

// TestDirectiveRequiresReason checks that a bare //lint:ignore without a
// justification does not suppress anything.
func TestDirectiveRequiresReason(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "ignore"), "fixture/ignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(fixtureConfig(), []*Package{pkg}, []*Analyzer{AnalyzerD003})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unjustified one: %v", len(diags), diags)
	}
	if got := diags[0].Pos.Line; got != 16 {
		t.Errorf("surviving diagnostic at line %d, want 16 (the reasonless directive)", got)
	}
}
