package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerS001 enforces snapshot field coverage. The module's save graph is
// every function with a *snap.Encoder parameter — Save/save methods, their
// helpers (saveSharded, saveClock, saveSegment, …), and SaveState
// implementations. A struct type declared in a snapshot package is under
// the coverage contract as soon as any of its fields is referenced by the
// save graph (guest.Kernel.Save encodes Lock/Task/VCPU fields inline, so
// owning a Save method is not required). Every field of a contract type
// must then be referenced somewhere in the save graph or carry a
// `//snap:skip reason` annotation on its declaration — pools, closures,
// caches, and state re-derived on restore are the sanctioned skips.
var AnalyzerS001 = &Analyzer{
	Name: "S001",
	Doc:  "every field of a snapshotted struct is encoded or carries //snap:skip",
	Run:  runS001,
}

// snapFacts is the module-wide save-graph sweep shared by S001 and S002.
type snapFacts struct {
	// covered maps a struct field to one save-graph position referencing it.
	covered map[*types.Var]token.Pos
	// contract holds every struct type with at least one covered field.
	contract map[*TypeFact]bool
}

// snapshotFacts sweeps the save graph once per run.
func (f *Facts) snapshotFacts(cfg *Config) *snapFacts {
	if f.snap != nil {
		return f.snap
	}
	sf := &snapFacts{
		covered:  make(map[*types.Var]token.Pos),
		contract: make(map[*TypeFact]bool),
	}
	for _, ff := range f.Funcs {
		if paramOfType(ff, "Encoder") == nil {
			continue
		}
		pkg := ff.Pkg
		ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pkg.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			if v, ok := selection.Obj().(*types.Var); ok {
				if _, seen := sf.covered[v]; !seen {
					sf.covered[v] = sel.Pos()
				}
			}
			return true
		})
	}
	for v := range sf.covered {
		if field := f.fields[v]; field != nil && cfg.isSnapshotPkg(field.Owner.Pkg.PkgPath) {
			sf.contract[field.Owner] = true
		}
	}
	f.snap = sf
	return sf
}

// paramOfType returns the first parameter of type *snap.<name> (by object,
// so the function body's uses resolve against it), or nil.
func paramOfType(ff *FuncFact, name string) *types.Var {
	params := ff.Decl.Type.Params
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		for _, n := range field.Names {
			if v, ok := ff.Pkg.Info.Defs[n].(*types.Var); ok && isSnapType(v.Type(), name) {
				return v
			}
		}
	}
	return nil
}

func runS001(cfg *Config, facts *Facts, pkg *Package) []Diagnostic {
	sf := facts.snapshotFacts(cfg)
	var out []Diagnostic
	//lint:ordered RunAnalyzers sorts diagnostics by position before reporting
	for _, tf := range facts.Types {
		if tf.Pkg != pkg || !sf.contract[tf] {
			continue
		}
		for _, field := range tf.Fields {
			if _, ok := sf.covered[field.Var]; ok {
				continue // encoded (or read) by the save graph
			}
			if d := field.SnapSkip; d != nil && d.Reason != "" {
				d.used = true
				continue
			}
			out = append(out, Diagnostic{
				Pos:  pkg.position(field.Pos),
				Rule: "S001",
				Message: fmt.Sprintf(
					"field %s.%s is not encoded by any save function and carries no //snap:skip justification (sanctioned skips: pools, closures, caches, derived state)",
					tf.Obj.Name(), field.Name),
			})
		}
	}
	return out
}
