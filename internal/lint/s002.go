package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerS002 enforces Save/Load mirroring. For every save/load pair — a
// method pair on one type, or a package-level function pair, matched by
// stripping the save/Save/load/Load prefix (Save↔Load, saveSharded↔
// loadSharded, SaveState↔LoadState, saveEventCoords↔loadEventCoords) — the
// two bodies are flattened into statement-order operation sequences:
// primitive encoder/decoder calls (U8…String, Section with its label) and
// delegated sub-saves (any call passing the encoder/decoder on, tokenized
// by receiver and prefix-stripped name). The sequences must agree
// position by position; where both sides name the concrete field (the
// encoder argument / the decoder assignment target), the field names must
// agree too — catching the encode/decode transposition class the snapshot
// fuzzers currently chase. Flattening deliberately ignores control-flow
// nesting: a save's `if pending {…}` and its load's early-return shape
// differ, but their operation orders must not.
var AnalyzerS002 = &Analyzer{
	Name: "S002",
	Doc:  "every Load mirrors its Save's encode order field for field",
	Run:  runS002,
}

// snapOp is one element of a flattened save/load operation sequence.
type snapOp struct {
	prim bool
	// name is the primitive kind (U8…String, Section) or the canonical
	// (prefix-stripped) delegated-call name.
	name string
	// recv is the delegated call's receiver text ("" for package-level
	// functions), or the Section label expression.
	recv string
	// hint is the concrete field the op encodes/decodes, when syntactically
	// evident.
	hint string
	pos  ast.Node
}

// describe renders an op for diagnostics.
func (op snapOp) describe() string {
	switch {
	case op.prim && op.name == "Section":
		return fmt.Sprintf("Section(%s)", op.recv)
	case op.prim && op.hint != "":
		return fmt.Sprintf("%s(.%s)", op.name, op.hint)
	case op.prim:
		return op.name
	case op.recv != "":
		return op.recv + ".(save|load)" + op.name
	}
	return "(save|load)" + op.name
}

// primKinds are the snap.Encoder/Decoder methods that move data. Err,
// Bytes, and friends are bookkeeping, not stream operations.
var primKinds = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true,
	"I64": true, "Bool": true, "F64": true, "String": true,
}

// canonicalSnapName strips the leading save/Save/load/Load, so paired
// helpers tokenize identically. ok is false when the name has no such
// prefix (the function then never pairs).
func canonicalSnapName(name string) (string, bool) {
	for _, prefix := range []string{"Save", "save", "Load", "load"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			return rest, true
		}
	}
	return name, false
}

func runS002(cfg *Config, facts *Facts, pkg *Package) []Diagnostic {
	if !cfg.isSnapshotPkg(pkg.PkgPath) {
		return nil
	}
	// Pair save functions with load functions: same receiver type (nil for
	// package-level functions), same canonical name, and same exportedness —
	// so an exported wrapper (SaveRequest calling saveRequest) pairs with
	// its exported counterpart, not with the other side's implementation.
	type pairKey struct {
		recv     *types.TypeName
		canon    string
		exported bool
	}
	saves := make(map[pairKey]*FuncFact)
	loads := make(map[pairKey]*FuncFact)
	for _, ff := range facts.Funcs {
		if ff.Pkg != pkg {
			continue
		}
		name := ff.Decl.Name.Name
		canon, ok := canonicalSnapName(name)
		if !ok {
			continue
		}
		key := pairKey{recvTypeName(ff.Fn), canon, ast.IsExported(name)}
		enc, dec := paramOfType(ff, "Encoder"), paramOfType(ff, "Decoder")
		var into map[pairKey]*FuncFact
		switch {
		case enc != nil && dec == nil:
			into = saves
		case dec != nil && enc == nil:
			into = loads
		default:
			continue
		}
		// On a (rare) collision keep the lexicographically smaller name, so
		// the pairing does not depend on map iteration order.
		if prev := into[key]; prev == nil || name < prev.Decl.Name.Name {
			into[key] = ff
		}
	}
	var out []Diagnostic
	for key, saveFn := range saves {
		loadFn, ok := loads[key]
		if !ok {
			continue // loaded inline elsewhere; S001 still covers the fields
		}
		saveOps := snapOps(saveFn, paramOfType(saveFn, "Encoder"), false)
		loadOps := snapOps(loadFn, paramOfType(loadFn, "Decoder"), true)
		if d, ok := compareSnapSeqs(pkg, saveFn, loadFn, saveOps, loadOps); ok {
			out = append(out, d)
		}
	}
	return out
}

// compareSnapSeqs checks one pair's flattened sequences and reports the
// first divergence.
func compareSnapSeqs(pkg *Package, saveFn, loadFn *FuncFact, saveOps, loadOps []snapOp) (Diagnostic, bool) {
	name := loadFn.Decl.Name.Name
	diag := func(pos ast.Node, format string, args ...any) (Diagnostic, bool) {
		return Diagnostic{
			Pos:     pkg.position(pos.Pos()),
			Rule:    "S002",
			Message: fmt.Sprintf("%s does not mirror %s: ", name, saveFn.Decl.Name.Name) + fmt.Sprintf(format, args...),
		}, true
	}
	for i := 0; i < len(saveOps) || i < len(loadOps); i++ {
		if i >= len(loadOps) {
			return diag(loadFn.Decl.Name,
				"save writes %d operations, load reads %d; first unmatched save op is %s (%s)",
				len(saveOps), len(loadOps), saveOps[i].describe(), pkg.position(saveOps[i].pos.Pos()))
		}
		if i >= len(saveOps) {
			return diag(loadOps[i].pos,
				"load op %d is %s, but save writes only %d operations",
				i+1, loadOps[i].describe(), len(saveOps))
		}
		s, l := saveOps[i], loadOps[i]
		switch {
		case s.prim != l.prim, s.prim && s.name != l.name:
			return diag(l.pos, "op %d: load reads %s where save writes %s (%s)",
				i+1, l.describe(), s.describe(), pkg.position(s.pos.Pos()))
		case s.prim && s.name == "Section" && s.recv != l.recv:
			return diag(l.pos, "op %d: section label %s does not match save's %s", i+1, l.recv, s.recv)
		case !s.prim && (s.name != l.name || (s.recv != "" && l.recv != "" && s.recv != l.recv)):
			return diag(l.pos, "op %d: load delegates to %s where save delegates to %s (%s)",
				i+1, l.describe(), s.describe(), pkg.position(s.pos.Pos()))
		case s.prim && s.hint != "" && l.hint != "" && s.hint != l.hint:
			return diag(l.pos, "op %d transposed: load decodes into field %s but save encodes field %s (%s)",
				i+1, l.hint, s.hint, pkg.position(s.pos.Pos()))
		}
	}
	return Diagnostic{}, false
}

// snapOps flattens a save/load body into its operation sequence. param is
// the *snap.Encoder / *snap.Decoder parameter object.
//
// Flattening is statement-structured rather than a raw AST walk, because a
// save and its load rarely share control-flow shape even when their stream
// layouts agree:
//
//   - an if/else or switch runs exactly one branch at runtime, so branch
//     op-sequences are alternatives: identical-signature branches collapse
//     to one (an if/else that encodes the same primitive either way), and
//     divergent branches contribute their longest alternative — a partial
//     mirror check beats abandoning the pair;
//   - an if-branch ending in `return` is a guard (`if b == nil {
//     enc.Bool(false); return }` mirrored by a load's early return); its ops
//     never precede the code after it, so they are dropped rather than
//     prepended;
//   - loop bodies count once — iteration counts are a runtime property the
//     length prefix already guards.
func snapOps(ff *FuncFact, param *types.Var, decoder bool) []snapOp {
	if param == nil {
		return nil
	}
	w := &snapWalker{pkg: ff.Pkg, param: param}
	if decoder {
		w.hints = collectDecodeHints(ff.Pkg, ff.Decl.Body)
	}
	return w.stmts(ff.Decl.Body.List)
}

// snapWalker flattens one function body.
type snapWalker struct {
	pkg   *Package
	param *types.Var
	// hints maps decoder primitive calls to their destination fields
	// (decoder side only).
	hints map[*ast.CallExpr]string
}

func (w *snapWalker) isParam(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && w.pkg.Info.Uses[id] == w.param
}

// collect extracts ops from a straight-line node (an expression or a
// non-branching statement) in evaluation order.
func (w *snapWalker) collect(n ast.Node) []snapOp {
	if n == nil {
		return nil
	}
	var ops []snapOp
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && w.isParam(sel.X) {
			switch name := sel.Sel.Name; {
			case primKinds[name]:
				op := snapOp{prim: true, name: name, pos: call}
				if w.hints != nil {
					op.hint = w.hints[call]
				} else if len(call.Args) > 0 {
					op.hint = fieldHint(w.pkg, call.Args[0])
				}
				ops = append(ops, op)
			case name == "Section" && len(call.Args) > 0:
				ops = append(ops, snapOp{prim: true, name: "Section", recv: exprText(call.Args[0]), pos: call})
			}
			return true
		}
		// A call passing the encoder/decoder on is a delegated sub-save.
		for _, arg := range call.Args {
			if !w.isParam(arg) {
				continue
			}
			op := snapOp{pos: call}
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				op.name, _ = canonicalSnapName(fun.Name)
			case *ast.SelectorExpr:
				op.name, _ = canonicalSnapName(fun.Sel.Name)
				op.recv = exprText(fun.X)
			default:
				op.name = exprText(call.Fun)
			}
			ops = append(ops, op)
			return false // the delegate owns everything beneath
		}
		return true
	})
	return ops
}

func (w *snapWalker) stmts(list []ast.Stmt) []snapOp {
	var ops []snapOp
	for _, s := range list {
		ops = append(ops, w.stmt(s)...)
	}
	return ops
}

func (w *snapWalker) optStmt(s ast.Stmt) []snapOp {
	if s == nil {
		return nil
	}
	return w.stmt(s)
}

func (w *snapWalker) stmt(s ast.Stmt) []snapOp {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.IfStmt:
		ops := append(w.optStmt(s.Init), w.collect(s.Cond)...)
		thenOps := w.stmts(s.Body.List)
		if terminates(s.Body.List) {
			thenOps = nil // a guard branch never precedes the code after it
		}
		branches := [][]snapOp{thenOps}
		if s.Else != nil {
			elseOps := w.stmt(s.Else)
			if blk, ok := s.Else.(*ast.BlockStmt); ok && terminates(blk.List) {
				elseOps = nil
			}
			branches = append(branches, elseOps)
		}
		return append(ops, mergeAlternatives(branches)...)
	case *ast.SwitchStmt:
		ops := append(w.optStmt(s.Init), w.collect(s.Tag)...)
		return append(ops, w.caseAlternatives(s.Body)...)
	case *ast.TypeSwitchStmt:
		ops := append(w.optStmt(s.Init), w.optStmt(s.Assign)...)
		return append(ops, w.caseAlternatives(s.Body)...)
	case *ast.ForStmt:
		ops := append(w.optStmt(s.Init), w.collect(s.Cond)...)
		ops = append(ops, w.stmts(s.Body.List)...)
		return append(ops, w.optStmt(s.Post)...)
	case *ast.RangeStmt:
		return append(w.collect(s.X), w.stmts(s.Body.List)...)
	case *ast.SelectStmt:
		var ops []snapOp
		for _, cc := range s.Body.List {
			ops = append(ops, w.stmts(cc.(*ast.CommClause).Body)...)
		}
		return ops
	default:
		return w.collect(s)
	}
}

// caseAlternatives flattens a switch body's case clauses as alternatives.
func (w *snapWalker) caseAlternatives(body *ast.BlockStmt) []snapOp {
	var branches [][]snapOp
	for _, cc := range body.List {
		branches = append(branches, w.stmts(cc.(*ast.CaseClause).Body))
	}
	return mergeAlternatives(branches)
}

// terminates reports whether a statement list ends in a return.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	_, ok := list[len(list)-1].(*ast.ReturnStmt)
	return ok
}

// mergeAlternatives combines the op sequences of mutually exclusive
// branches. Identical signatures collapse to one sequence (keeping only the
// hints all branches agree on); divergent signatures contribute the longest
// branch, preserving a partial mirror check.
func mergeAlternatives(branches [][]snapOp) []snapOp {
	var alive [][]snapOp
	for _, b := range branches {
		if len(b) > 0 {
			alive = append(alive, b)
		}
	}
	if len(alive) == 0 {
		return nil
	}
	merged := append([]snapOp(nil), alive[0]...)
	same := true
	for _, b := range alive[1:] {
		if !sameOpSignature(merged, b) {
			same = false
			break
		}
	}
	if same {
		for i := range merged {
			for _, b := range alive[1:] {
				if b[i].hint != merged[i].hint {
					merged[i].hint = ""
				}
			}
		}
		return merged
	}
	longest := alive[0]
	for _, b := range alive[1:] {
		if len(b) > len(longest) {
			longest = b
		}
	}
	return longest
}

// sameOpSignature reports whether two op sequences are interchangeable
// alternatives: same kinds, names, and receivers/labels, hints aside.
func sameOpSignature(a, b []snapOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].prim != b[i].prim || a[i].name != b[i].name || a[i].recv != b[i].recv {
			return false
		}
	}
	return true
}

// fieldHint extracts the field a save argument encodes: conversions and
// index expressions are unwrapped until a selector names it.
func fieldHint(pkg *Package, e ast.Expr) string {
	for {
		e = unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			if len(x.Args) == 1 {
				if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return ""
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		default:
			return ""
		}
	}
}

// collectDecodeHints maps decoder primitive calls to the field they decode
// into, when the call's value flows straight to a field: a direct
// assignment (v.field = dec.U64(), possibly through a conversion or index)
// or a composite-literal key (SoftTimer{Deadline: sim.Time(dec.I64())}).
// Values landing in locals produce no hint, and unhinted ops skip the
// transposition check.
func collectDecodeHints(pkg *Package, body *ast.BlockStmt) map[*ast.CallExpr]string {
	hints := make(map[*ast.CallExpr]string)
	record := func(target string, value ast.Expr) {
		if target == "" {
			return
		}
		if call, ok := unwrapConv(pkg, value).(*ast.CallExpr); ok {
			hints[call] = target
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				record(fieldHint(pkg, lhs), n.Rhs[i])
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok {
				record(key.Name, n.Value)
			}
		}
		return true
	})
	return hints
}

// unwrapConv strips type conversions (and parentheses) around an
// expression.
func unwrapConv(pkg *Package, e ast.Expr) ast.Expr {
	for {
		e = unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}
