package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// AnalyzerD005 enforces shard isolation. Under the sharded engine, lanes
// run concurrently within a quantum and may only touch their own engine,
// mailbox, and RNG; cross-lane effects must travel as sim.Message values
// through ShardedEngine.Post and drain at the quantum barrier. Code in the
// lane-dispatch packages (Config.LaneDispatchPkgs) therefore must not call
// coordinator-only ShardedEngine methods (anything beyond Post and the
// read-only Quantum) nor reach into ShardedEngine's fields directly —
// both are only legal in the coordinator files (Config.LaneCoordinatorFiles)
// that run between quanta, on one goroutine.
var AnalyzerD005 = &Analyzer{
	Name: "D005",
	Doc:  "lane-executed code crosses shard boundaries only via Post/drain",
	Run:  runD005,
}

// laneSafeShardedMethods are the ShardedEngine methods a lane may call
// mid-quantum: Post is the message path, Quantum is an immutable index.
var laneSafeShardedMethods = map[string]bool{
	"Post":    true,
	"Quantum": true,
}

// isShardedEngine matches (a pointer to) sim.ShardedEngine structurally —
// by type and package name — so fixture packages declaring their own
// sim.ShardedEngine exercise the rule without importing the real simulator.
func isShardedEngine(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ShardedEngine" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

func runD005(cfg *Config, facts *Facts, pkg *Package) []Diagnostic {
	if !cfg.isLaneDispatchPkg(pkg.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		filename := pkg.position(file.Pos()).Filename
		if cfg.laneCoordinatorFile(pkg.PkgPath, filepath.Base(filename)) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pkg.Info.Selections[sel]
			if selection == nil || !isShardedEngine(selection.Recv()) {
				return true
			}
			switch selection.Kind() {
			case types.MethodVal, types.MethodExpr:
				if !laneSafeShardedMethods[sel.Sel.Name] {
					out = append(out, Diagnostic{
						Pos:  pkg.position(sel.Sel.Pos()),
						Rule: "D005",
						Message: fmt.Sprintf(
							"lane-executed code calls coordinator-only ShardedEngine.%s; cross-lane effects must go through Post and drain at the quantum barrier",
							sel.Sel.Name),
					})
				}
			case types.FieldVal:
				// Field access is reserved for the type's own file (its
				// methods); anywhere else bypasses the message discipline.
				if tf := facts.Types[namedOf(selection.Recv()).Obj()]; tf == nil || tf.DeclFile != filename {
					out = append(out, Diagnostic{
						Pos:  pkg.position(sel.Sel.Pos()),
						Rule: "D005",
						Message: fmt.Sprintf(
							"lane-executed code reaches into ShardedEngine.%s directly; use Post/drain instead of touching another lane's state",
							sel.Sel.Name),
					})
				}
			}
			return true
		})
	}
	return out
}
