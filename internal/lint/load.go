package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks a module from source using only the standard library.
// Imports inside the module are resolved by mapping the import path onto a
// directory under the module root; standard-library imports go through the
// go/importer "source" importer (the toolchain ships no pre-compiled export
// data, so source is the only stdlib-only route). Third-party imports are
// rejected — the module has none, by project policy.
type Loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package       // loaded module packages by import path
	cache   map[string]*types.Package // all resolved imports by path
	loading map[string]bool           // cycle guard
}

// NewLoader returns a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Fset returns the shared file set (positions in diagnostics resolve
// against it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule loads every package in the module (skipping testdata and hidden
// directories), returning them sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(importPath, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads a single directory as a package under the given import path.
// Used for analyzer fixtures, which live outside the module's package tree.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.load(importPath, dir)
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// load parses and type-checks one package directory (cached).
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[importPath] = pkg
	l.cache[importPath] = tpkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths resolve against
// the module root, everything else is treated as standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if tpkg, ok := l.cache[path]; ok {
		return tpkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := l.root
		if rel != "" {
			dir = filepath.Join(l.root, filepath.FromSlash(rel))
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tpkg, err := l.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", path, err)
	}
	l.cache[path] = tpkg
	return tpkg, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
