package lint

import (
	"fmt"
	"sort"
)

// AnalyzerU001 is the stale-suppression audit. It has no scan of its own:
// when enabled, RunAnalyzers re-examines every suppression directive after
// the other analyzers finish and reports the ones that did no work — a
// `//lint:ignore`, `//snap:skip`, or `//reset:keep` that suppressed or
// excused nothing (the code it hushed was fixed or deleted), and any
// directive missing its mandatory reason (which suppresses nothing and is
// therefore dead weight with the added insult of looking load-bearing).
// Directives are judged only against rules that actually ran: `-rules D001`
// does not flag a //snap:skip as stale merely because S001 was skipped.
var AnalyzerU001 = &Analyzer{
	Name: "U001",
	Doc:  "every suppression directive still suppresses something and has a reason",
	Run:  func(cfg *Config, facts *Facts, pkg *Package) []Diagnostic { return nil },
}

// unusedDirectiveDiags reports pkg's stale and reasonless directives.
// ran holds the names of the analyzers that executed this run (minus U001
// itself); directives guarding rules that did not run are left alone.
func unusedDirectiveDiags(facts *Facts, pkg *Package, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	// Line directives: //lint:ignore RULE[,RULE] reason.
	pkg.ensureDirectives()
	//lint:ordered the function sorts its diagnostics by position before returning
	for _, byLine := range pkg.directives {
		//lint:ordered the function sorts its diagnostics by position before returning
		for _, dirs := range byLine {
			for _, d := range dirs {
				anyRan := false
				for _, rule := range d.rules {
					if ran[rule] {
						anyRan = true
					}
				}
				if !anyRan {
					continue
				}
				switch {
				case !d.hasReason:
					out = append(out, Diagnostic{
						Pos:  pkg.position(d.pos),
						Rule: "U001",
						Message: fmt.Sprintf(
							"//lint:ignore %s has no reason and suppresses nothing; add a justification or delete it",
							joinRules(d.rules)),
					})
				case !d.used:
					out = append(out, Diagnostic{
						Pos:  pkg.position(d.pos),
						Rule: "U001",
						Message: fmt.Sprintf(
							"stale suppression: //lint:ignore %s no longer matches any diagnostic; delete it",
							joinRules(d.rules)),
					})
				}
			}
		}
	}
	// Field directives: //snap:skip (S001) and //reset:keep (R001).
	for _, d := range facts.directives {
		if d.Pkg != pkg {
			continue
		}
		rule := "S001"
		if d.Kind == "reset:keep" {
			rule = "R001"
		}
		if !ran[rule] {
			continue
		}
		switch {
		case d.Reason == "":
			out = append(out, Diagnostic{
				Pos:  pkg.position(d.Pos),
				Rule: "U001",
				Message: fmt.Sprintf(
					"//%s has no reason and excuses nothing; add a justification or delete it", d.Kind),
			})
		case !d.used:
			out = append(out, Diagnostic{
				Pos:  pkg.position(d.Pos),
				Rule: "U001",
				Message: fmt.Sprintf(
					"stale annotation: //%s excuses a field %s already covers; delete it", d.Kind, rule),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

func joinRules(rules []string) string {
	s := ""
	for i, r := range rules {
		if i > 0 {
			s += ","
		}
		s += r
	}
	return s
}
