package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerD003 flags `range` over a map when the loop body is sensitive to
// iteration order: it writes output (fmt calls, Write*/AddRow/Encode-style
// method calls), sends on a channel, or accumulates floating-point state
// declared outside the loop (float addition is not associative, so the sum
// depends on visit order). The sanctioned patterns stay silent:
//
//   - collect-and-sort: a loop that only appends keys or pairs into a slice
//     that is sorted before use triggers nothing (append and integer
//     accumulation are order-independent);
//   - a `//lint:ordered reason` comment on the range line (or the line
//     above) records that ordering is deliberate and suppresses the finding.
var AnalyzerD003 = &Analyzer{
	Name: "D003",
	Doc:  "no map iteration feeding output, event ordering, or float aggregation (sort keys or justify with //lint:ordered)",
	Run:  runD003,
}

// orderedSinkMethods are method names whose call inside a map-range body
// implies the iteration order reaches an ordered sink (an output stream, a
// table, an encoder, an event queue).
var orderedSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"AddRow":      true,
	"Encode":      true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"At":          true, // sim.Engine.At / After: event ordering
	"After":       true,
	"Push":        true,
	"Enqueue":     true,
}

func runD003(cfg *Config, _ *Facts, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(pkg, rs); reason != "" {
				out = append(out, Diagnostic{
					Pos:  pkg.position(rs.Pos()),
					Rule: "D003",
					Message: fmt.Sprintf("map iteration order reaches an ordered sink (%s): collect and sort the keys, or justify with //lint:ordered",
						reason),
				})
			}
			return true
		})
	}
	return out
}

// orderSensitive reports why the body of a map range depends on iteration
// order, or "" when it only performs order-independent work.
func orderSensitive(pkg *Package, rs *ast.RangeStmt) string {
	reason := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "channel send"
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if path, name, ok := qualifiedCallee(pkg.Info, sel); ok {
					if path == "fmt" {
						reason = "fmt." + name + " call"
					}
					return true
				}
				// A method (not package-qualified) call with a sink name.
				if orderedSinkMethods[sel.Sel.Name] {
					reason = sel.Sel.Name + " method call"
				} else if isSnapEncoderSink(pkg, sel) {
					reason = "snap.Encoder." + sel.Sel.Name + " call"
				}
			}
		case *ast.AssignStmt:
			if isFloatAccumulation(pkg, rs, n) {
				reason = "floating-point accumulation into outer state"
			}
		}
		return true
	})
	return reason
}

// isSnapEncoderSink reports whether sel is a method call on a snapshot
// Encoder (internal/snap). Every Encoder method appends to the serialized
// byte stream, so calling any of them from a map-range body makes the
// snapshot bytes depend on iteration order — two snapshots of identical
// state would then fail to compare byte-equal. The sink-name table above
// cannot catch these: the encoder's methods are named after the scalar they
// write (U64, I64, F64, String, …), so the receiver type is the signal.
func isSnapEncoderSink(pkg *Package, sel *ast.SelectorExpr) bool {
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Encoder" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/snap")
}

// isFloatAccumulation reports whether the assignment compounds (+=, -=, *=,
// /=) a floating-point variable declared outside the range statement.
func isFloatAccumulation(pkg *Package, rs *ast.RangeStmt, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	lhs := as.Lhs[0]
	tv, ok := pkg.Info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	root := rootIdent(lhs)
	if root == nil {
		return true // e.g. indexing a map/slice expression: assume outer
	}
	obj := pkg.Info.Uses[root]
	if obj == nil {
		obj = pkg.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rootIdent unwraps selector/index/paren/star expressions to the base
// identifier, or nil when there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
