package perf

import "testing"

// BenchmarkKernels exposes every pinned suite kernel through `go test
// -bench`, so the regression kernels can be profiled with the standard
// tooling (-memprofile/-cpuprofile) without going through paratick-bench.
func BenchmarkKernels(b *testing.B) {
	for _, k := range Kernels() {
		b.Run(k.Name, k.Fn)
	}
}
