// Package perf pins the benchmark kernels behind the -perf-suite regression
// gate of cmd/paratick-bench. Each kernel is a self-contained testing.B
// function exercising one hot path of the simulator through its public API:
// the guest timer wheel (add/cancel, idle-entry NextExpiry, sparse and dense
// AdvanceTo), the sim event engine, and one small end-to-end experiment.
//
// The kernels deliberately duplicate the shapes of the in-package
// *_bench_test.go benchmarks rather than importing them: test files cannot
// be imported, and a perf package imported from the packages under test
// would cycle. Keeping the kernels here, frozen, also means the regression
// gate compares like with like across commits even when the exploratory
// in-package benchmarks evolve. When a kernel changes shape, the committed
// baseline (BENCH_PR6.json) must be regenerated in the same commit — see
// EXPERIMENTS.md.
package perf

import (
	"fmt"
	"testing"

	"paratick/internal/core"
	"paratick/internal/experiment"
	"paratick/internal/guest"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// Kernel is one pinned benchmark of the regression suite.
type Kernel struct {
	// Name identifies the kernel in suite output and baselines; renaming a
	// kernel orphans its baseline entry, so treat names as stable.
	Name string
	// Desc is a one-line summary printed by -perf-suite.
	Desc string
	// Fn is the benchmark body, run via testing.Benchmark.
	Fn func(b *testing.B)
	// MaxAllocs is an absolute allocs/op ceiling enforced by -perf-suite on
	// every run, independent of any baseline: the zero value demands a
	// zero-allocation steady state (the contract for every wheel and engine
	// kernel), and a negative value disables the check. Unlike the baseline
	// comparison this cannot drift — a regenerated baseline with worse
	// numbers still fails the ceiling.
	MaxAllocs int64
}

// Kernels returns the suite in fixed order.
func Kernels() []Kernel {
	return []Kernel{
		{
			Name: "wheel/add-cancel",
			Desc: "timer wheel Add+Cancel cycle (guest sleep/wake hot path)",
			Fn:   wheelAddCancel,
		},
		{
			Name: "wheel/next-expiry-dense",
			Desc: "NextExpiry on 10k-timer wheel with cache-invalidating churn",
			Fn:   wheelNextExpiryDense,
		},
		{
			Name: "wheel/advance-sparse",
			Desc: "AdvanceTo across 1M empty jiffies firing one timer",
			Fn:   wheelAdvanceSparse,
		},
		{
			Name: "wheel/advance-dense",
			Desc: "1-jiffy AdvanceTo with 10k re-queueing timers",
			Fn:   wheelAdvanceDense,
		},
		{
			Name: "engine/schedule-fire",
			Desc: "sim engine schedule+dispatch cycle",
			Fn:   engineScheduleFire,
		},
		{
			Name: "engine/cancel-heavy",
			Desc: "sim engine cancel+re-arm against a 1k-deep queue",
			Fn:   engineCancelHeavy,
		},
		{
			Name: "engine/batch-dispatch",
			Desc: "StepBatch draining 64 same-instant events per op",
			Fn:   engineBatchDispatch,
		},
		{
			Name: "engine/horizon-cascade",
			Desc: "beyond-horizon schedule + heap→wheel cascade + fire, 128 events/op",
			Fn:   engineHorizonCascade,
		},
		{
			Name:      "e2e/table1",
			Desc:      "Table 1 experiment end to end at smoke scale (events/sec)",
			Fn:        e2eTable1,
			MaxAllocs: 500,
		},
		{
			Name:      "e2e/shardfleet",
			Desc:      "64-VM shard fleet at shards=4, quantum 1ms (events/sec)",
			Fn:        e2eShardFleet,
			MaxAllocs: shardFleetMaxAllocs,
		},
		{
			Name:      "e2e/fleet-reuse",
			Desc:      "8-VM sync fleet recycled through one Session, mode alternating (events/sec)",
			Fn:        e2eFleetReuse,
			MaxAllocs: fleetReuseMaxAllocs,
		},
	}
}

func wheelAddCancel(b *testing.B) {
	w := guest.NewTimerWheel(sim.Millisecond)
	tm := &guest.SoftTimer{Fire: func(sim.Time) {}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Deadline = sim.Time(i%1000+1) * sim.Millisecond
		w.Add(tm)
		w.Cancel(tm)
	}
}

func wheelNextExpiryDense(b *testing.B) {
	const n = 10_000
	w := guest.NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	for i := 0; i < n; i++ {
		w.Add(&guest.SoftTimer{
			Deadline: rng.Between(sim.Second, 2000*sim.Second),
			Fire:     func(sim.Time) {},
		})
	}
	wakeup := &guest.SoftTimer{Fire: func(sim.Time) {}}
	b.ReportAllocs()
	b.ResetTimer()
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		// The wakeup is the earliest timer, so canceling it invalidates the
		// wheel's cached minimum and forces a bitmap recompute.
		wakeup.Deadline = sim.Time(i%1000+1) * sim.Millisecond
		w.Add(wakeup)
		sink = w.NextExpiry()
		w.Cancel(wakeup)
		sink = w.NextExpiry()
	}
	_ = sink
}

func wheelAdvanceSparse(b *testing.B) {
	const gap = 1_000_000 // jiffies per advance
	w := guest.NewTimerWheel(sim.Millisecond)
	tm := &guest.SoftTimer{Fire: func(sim.Time) {}}
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if now > sim.Forever-2*gap*sim.Millisecond {
			// Rewind before simulated time saturates at sim.Forever.
			w = guest.NewTimerWheel(sim.Millisecond)
			now = 0
		}
		now += gap * sim.Millisecond
		tm.Deadline = now
		w.Add(tm)
		if w.AdvanceTo(now) != 1 {
			b.Fatal("sparse advance did not fire the timer")
		}
	}
}

func wheelAdvanceDense(b *testing.B) {
	const n = 10_000
	w := guest.NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	span := func() sim.Time { return rng.Between(sim.Millisecond, 20*sim.Second) }
	for i := 0; i < n; i++ {
		t := &guest.SoftTimer{Deadline: span()}
		// Bind the requeue closure once per timer: rebuilding it per fire
		// allocated 48 B on every expiry and was the kernel's only
		// steady-state allocation.
		t.Fire = func(now sim.Time) {
			t.Deadline = now + span()
			w.Add(t)
		}
		w.Add(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		w.AdvanceTo(now)
	}
}

func engineScheduleFire(b *testing.B) {
	e := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, "b", func(*sim.Engine) {})
		e.Step()
	}
}

func engineCancelHeavy(b *testing.B) {
	e := sim.NewEngine(1)
	const depth = 1024
	ring := make([]sim.Event, depth)
	for i := range ring {
		ring[i] = e.After(sim.Time(i+1), "seed", func(*sim.Engine) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % depth
		e.Cancel(ring[slot])
		ring[slot] = e.After(sim.Time(depth+i+1), "rearm", func(*sim.Engine) {})
	}
}

// engineBatchDispatch measures the batched same-jiffy dispatch path: every
// op schedules 64 events for the same instant and drains them with one
// StepBatch — the workload shape of a tick wave across a fleet's vCPUs.
func engineBatchDispatch(b *testing.B) {
	e := sim.NewEngine(1)
	const fanout = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < fanout; j++ {
			e.After(1, "b", func(*sim.Engine) {})
		}
		if e.StepBatch() != fanout {
			b.Fatal("batch did not drain the same-instant group")
		}
	}
}

// engineHorizonCascade measures the overflow tier: every op schedules 128
// events beyond the near-horizon window (so they land in the min-heap),
// then runs across the idle gap, forcing the heap→wheel cascade and firing
// them all — the long-sleep / far-deadline shape dynticks guests produce.
func engineHorizonCascade(b *testing.B) {
	e := sim.NewEngine(1)
	const spread = 128
	// The default wheel window is 256 buckets of 2^16 ns; 2^26 ns starts
	// well past it, so every At lands in the overflow heap.
	const horizon = sim.Time(1) << 26
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Now() > sim.Forever/2 {
			// Rewind before simulated time saturates at sim.Forever.
			e.Reset(1)
		}
		base := e.Now() + 2*horizon
		for j := 0; j < spread; j++ {
			e.At(base+sim.Time(j)<<16, "c", func(*sim.Engine) {})
		}
		e.RunUntil(base + sim.Time(spread)<<16)
	}
}

// shardFleetMaxAllocs bounds the sharded end-to-end kernel. Every op
// builds the 64-VM world from scratch through the public API (no arena),
// so the count is construction-dominated; the ceiling exists to catch a
// per-event allocation sneaking into the barrier loop, the mailbox drain,
// or the worker hand-off — those would scale with the ~500k events/op and
// blow far past construction.
const shardFleetMaxAllocs = 135_000

// e2eShardFleet runs the canonical lane-mode workload end to end: 64
// socket-contained VMs on the paper topology, cross-socket IPI ring,
// 1ms quantum, four shard workers. It is the suite's only multi-goroutine
// kernel — events/sec here is what the sharded-scaling experiment records.
func e2eShardFleet(b *testing.B) {
	opts := experiment.DefaultOptions()
	opts.Scale = 0.02
	opts.Workers = 1
	opts.Shards = 4
	m := &metrics.Meter{}
	opts.Meter = m
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunShardFleet(opts, 64); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(m.Events())/secs, "events/sec")
	}
}

// fleetReuseMaxAllocs bounds the recycling bill of a full fleet run: after
// warm-up every VM, vCPU, kernel, task, timer wheel, and deadline timer
// comes back out of the VM arena, and RunScenarioInto refills one
// caller-owned ScenarioResult in place, so the steady state is a few dozen
// scenario-spec allocations — not construction, not results. The ceiling
// is the regression tripwire for a reuse path quietly falling back to
// building fresh (which costs tens of thousands).
const fleetReuseMaxAllocs = 300

// fleetReuseScenario is the pinned fleet shape: 8 sync-workload VMs of 8
// vCPUs each on the paper topology. The mode is the reconfiguration axis the
// kernel alternates between runs.
func fleetReuseScenario(mode core.Mode, dur sim.Time) experiment.Scenario {
	s := experiment.Scenario{
		Name:     "fleet-reuse",
		Duration: dur,
	}
	for n := 0; n < 8; n++ {
		s.VMs = append(s.VMs, experiment.VMSpec{
			Name:     fmt.Sprintf("vm%d", n),
			Mode:     mode,
			VCPUs:    8,
			TaskHint: workload.DefaultSyncBench().Threads,
			Setup: func(vm *kvm.VM) error {
				bench := workload.DefaultSyncBench()
				bench.Duration = dur
				return bench.Spawn(vm.Kernel())
			},
		})
	}
	return s
}

// e2eFleetReuse measures the VM arena's steady state: one Session runs the
// same 8-VM sync fleet repeatedly, alternating the tick mode every iteration
// so each run re-acquires every recycled VM under a reconfiguration rather
// than a plain repeat. Two warm-up runs (one per mode) populate the arena
// and the per-mode policy caches; the meter attaches afterwards so warm-up
// events don't inflate the rate.
func e2eFleetReuse(b *testing.B) {
	const dur = 200 * sim.Millisecond
	modes := [2]core.Mode{core.Periodic, core.Paratick}
	sess := experiment.NewSession()
	for _, mode := range modes {
		if _, err := sess.RunScenario(fleetReuseScenario(mode, dur), 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	m := &metrics.Meter{}
	var res experiment.ScenarioResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.RunScenarioInto(fleetReuseScenario(modes[i%2], dur), 1, m, &res); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(m.Events())/secs, "events/sec")
	}
}

func e2eTable1(b *testing.B) {
	opts := experiment.DefaultOptions()
	opts.Scale = 0.02
	opts.Workers = 1
	opts.Pool = experiment.NewWorkerPool()
	// Warm the pool: the first run builds the world the steady state reuses.
	// The meter attaches afterwards so warm-up events don't inflate the rate.
	if _, err := experiment.RunTable1(opts); err != nil {
		b.Fatal(err)
	}
	m := &metrics.Meter{}
	opts.Meter = m
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(opts); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(m.Events())/secs, "events/sec")
	}
}
