// Package analytic implements the closed-form VM-exit models of §3 of the
// paper: the exit counts induced by scheduler-tick management under classic
// periodic ticks (§3.1) and tickless kernels (§3.2), the crossover condition
// of §3.3, and the Table 1 scenario generator.
//
// Two counting conventions are provided, because the paper's printed Table 1
// does not match its own formulas (the formulas count 2 exits per tick —
// arming plus delivery — while the printed numbers count 1; see DESIGN.md):
//
//   - StrictFormula: the literal equations of §3.1/§3.2.
//   - PaperTable: the convention that reproduces the printed Table 1 values.
package analytic

import (
	"fmt"

	"paratick/internal/sim"
)

// VMSpec describes one virtual machine for the analytic model.
type VMSpec struct {
	Name   string
	VCPUs  int     // n_vCPU
	TickHz int     // f_tick
	Load   float64 // L_n: utilized/maximum VM throughput, in [0,1]
	// TIdle is the average idle period; relevant only when Load < 1.
	TIdle sim.Time
	// SyncsPerSec is the rate of blocking-synchronization events (each one
	// an idle entry + exit pair) for the PaperTable convention of W3/W4.
	SyncsPerSec float64
}

// Validate checks the spec's ranges.
func (v VMSpec) Validate() error {
	if v.VCPUs <= 0 {
		return fmt.Errorf("analytic: %s: vCPUs must be positive, got %d", v.Name, v.VCPUs)
	}
	if v.TickHz <= 0 {
		return fmt.Errorf("analytic: %s: tick frequency must be positive, got %d", v.Name, v.TickHz)
	}
	if v.Load < 0 || v.Load > 1 {
		return fmt.Errorf("analytic: %s: load must be in [0,1], got %v", v.Name, v.Load)
	}
	if v.Load < 1 && v.TIdle <= 0 && v.SyncsPerSec == 0 {
		return fmt.Errorf("analytic: %s: partially idle VM needs TIdle or SyncsPerSec", v.Name)
	}
	if v.SyncsPerSec < 0 {
		return fmt.Errorf("analytic: %s: SyncsPerSec must be non-negative", v.Name)
	}
	return nil
}

// Convention selects the exit-counting convention.
type Convention int

const (
	// StrictFormula applies §3.1/§3.2 literally: every tick costs 2 exits
	// (TSC_DEADLINE write + delivery) and every idle transition pair costs
	// 2 exits.
	StrictFormula Convention = iota
	// PaperTable reproduces the printed Table 1: 1 exit per tick, 2 exits
	// per blocking-sync event.
	PaperTable
)

// String names the convention.
func (c Convention) String() string {
	switch c {
	case StrictFormula:
		return "strict-formula"
	case PaperTable:
		return "paper-table"
	}
	return fmt.Sprintf("convention(%d)", int(c))
}

// PeriodicExits returns the timer-management VM exits a VM with classic
// periodic ticks induces over duration t (§3.1):
//
//	exits = k × t × n_vCPU × f_tick
//
// with k = 2 under StrictFormula and k = 1 under PaperTable.
func PeriodicExits(v VMSpec, t sim.Time, conv Convention) float64 {
	k := 2.0
	if conv == PaperTable {
		k = 1.0
	}
	return k * t.Seconds() * float64(v.VCPUs) * float64(v.TickHz)
}

// TicklessExits returns the timer-management VM exits a tickless VM induces
// over duration t (§3.2):
//
//	exits = 2 × t × (L×n_vCPU×f_tick + (1-L)×n_vCPU/T_idle)
//
// The first term is ticks while active; the second is idle-transition
// reprogramming. Under PaperTable, active ticks cost 1 exit each and idle
// transitions are counted from SyncsPerSec (2 exits per sync event), which
// reproduces the printed W3/W4 values.
func TicklessExits(v VMSpec, t sim.Time, conv Convention) float64 {
	secs := t.Seconds()
	active := v.Load * float64(v.VCPUs) * float64(v.TickHz) * secs
	var transitions float64
	if conv == PaperTable {
		// Sync-driven idle transitions occur even when the VM counts as
		// fully loaded (critical sections are microseconds; vCPUs block
		// briefly but are almost always runnable).
		transitions = v.SyncsPerSec * secs
	} else if v.Load < 1 && v.TIdle > 0 && v.TIdle != sim.Forever {
		// (1-L)×n_vCPU/T_idle transitions per unit time.
		transitions = (1 - v.Load) * float64(v.VCPUs) / v.TIdle.Seconds() * secs
	}
	k := 2.0
	if conv == PaperTable {
		return active + 2*transitions
	}
	return k * (active + transitions)
}

// ParatickExits returns the timer-management exits under virtual scheduler
// ticks (§4.2): the guest never arms the tick, so only idle-entry wakeup
// timers remain — at most one MSR write per idle period that has a pending
// soft event, bounded above by the number of idle transitions. We model the
// paper's conservative bound: one exit per idle-entry that programs a
// timer, with fraction softEventFraction of idle entries needing one.
func ParatickExits(v VMSpec, t sim.Time, softEventFraction float64) float64 {
	if softEventFraction < 0 {
		softEventFraction = 0
	}
	if softEventFraction > 1 {
		softEventFraction = 1
	}
	secs := t.Seconds()
	var transitions float64
	if v.SyncsPerSec > 0 {
		transitions = v.SyncsPerSec * secs
	} else if v.Load < 1 && v.TIdle > 0 && v.TIdle != sim.Forever {
		transitions = (1 - v.Load) * float64(v.VCPUs) / v.TIdle.Seconds() * secs
	}
	return softEventFraction * transitions
}

// TicklessPreferable implements the §3.3 crossover rule: tickless kernels
// are preferable as long as the average idle period is longer than the
// average vCPU tick period divided by the number of vCPUs sharing the same
// physical CPU.
func TicklessPreferable(tIdle sim.Time, tickHz, vcpusPerPCPU int) bool {
	if tickHz <= 0 || vcpusPerPCPU <= 0 {
		return true
	}
	threshold := sim.PeriodFromHz(tickHz) / sim.Time(vcpusPerPCPU)
	return tIdle > threshold
}
