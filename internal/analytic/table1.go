package analytic

import (
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// Table1Duration and Table1TickHz are the §3.3 scenario parameters: the
// workloads run for 10 seconds with a 250 Hz tick on a 16-pCPU system.
const (
	Table1Duration = 10 * sim.Second
	Table1TickHz   = 250
)

// Table1Workloads returns the four hypothetical workloads of §3.3:
//
//	W1: an idle VM with 16 vCPUs
//	W2: 4 idle VMs with 16 vCPUs each
//	W3: 16 threads synchronizing 1000×/s via blocking sync, one 16-vCPU VM
//	W4: 4 concurrent copies of W3
//
// Each entry is the list of VMs making up the workload.
func Table1Workloads() map[string][]VMSpec {
	idle := VMSpec{Name: "idle", VCPUs: 16, TickHz: Table1TickHz, Load: 0, TIdle: sim.Forever}
	// W3's VM: 16 threads, blocking-sync 1000×/s. The printed table is
	// consistent with the VM ticking as if fully active (critical sections
	// are microseconds, so vCPUs are nearly always runnable) plus 2 exits
	// per sync event; see DESIGN.md.
	sync := VMSpec{Name: "sync", VCPUs: 16, TickHz: Table1TickHz, Load: 1.0, SyncsPerSec: 1000}
	return map[string][]VMSpec{
		"W1": {idle},
		"W2": {idle, idle, idle, idle},
		"W3": {sync},
		"W4": {sync, sync, sync, sync},
	}
}

// table1SyncLoad adapts the sync VMSpec for a given convention: the strict
// formula needs Load<1 with an explicit TIdle to produce transitions, while
// the paper-table convention uses Load=1 active ticking plus SyncsPerSec.
func table1SyncSpec(conv Convention) VMSpec {
	s := VMSpec{Name: "sync", VCPUs: 16, TickHz: Table1TickHz, SyncsPerSec: 1000}
	if conv == PaperTable {
		s.Load = 1.0
		return s
	}
	// Strict formula: threads blocked ~half the time in sub-millisecond
	// bursts. 1000 sync/s across the workload with ~0.5 ms idle periods.
	s.Load = 0.5
	s.TIdle = 500 * sim.Microsecond
	return s
}

// Table1Row holds the computed exits for one workload.
type Table1Row struct {
	Workload string
	Periodic float64
	Tickless float64
	Paratick float64
}

// Table1 computes the §3.3 Table 1 values under the given convention.
// Paratick is included as the paper's conceptual third column (§4.2): idle
// VMs need no exits at all, and sync workloads need at most a timer program
// on the fraction of idle entries with pending soft events (we use the
// paper's "negligible" characterization: 5%).
func Table1(conv Convention) []Table1Row {
	order := []string{"W1", "W2", "W3", "W4"}
	rows := make([]Table1Row, 0, len(order))
	for _, w := range order {
		nVMs := 1
		if w == "W2" || w == "W4" {
			nVMs = 4
		}
		var spec VMSpec
		if w == "W1" || w == "W2" {
			spec = VMSpec{Name: "idle", VCPUs: 16, TickHz: Table1TickHz, Load: 0, TIdle: sim.Forever}
		} else {
			spec = table1SyncSpec(conv)
		}
		row := Table1Row{Workload: w}
		for i := 0; i < nVMs; i++ {
			row.Periodic += PeriodicExits(spec, Table1Duration, conv)
			row.Tickless += TicklessExits(spec, Table1Duration, conv)
			row.Paratick += ParatickExits(spec, Table1Duration, 0.05)
		}
		rows = append(rows, row)
	}
	return rows
}

// PaperTable1Values returns the exact values printed in the paper's Table 1
// for cross-checking: W1–W4 under periodic and tickless.
func PaperTable1Values() map[string][2]float64 {
	return map[string][2]float64{
		"W1": {40000, 0},
		"W2": {160000, 0},
		"W3": {40000, 60000},
		"W4": {160000, 240000},
	}
}

// RenderTable1 renders Table 1 in the paper's layout (plus the paratick
// column) as a metrics.Table.
func RenderTable1(conv Convention) *metrics.Table {
	t := metrics.NewTable(
		"Table 1: VM exits induced by tick management over 10s ("+conv.String()+" convention)",
		"mechanism", "W1", "W2", "W3", "W4")
	rows := Table1(conv)
	get := func(f func(Table1Row) float64) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = formatCount(f(r))
		}
		return out
	}
	per := get(func(r Table1Row) float64 { return r.Periodic })
	tl := get(func(r Table1Row) float64 { return r.Tickless })
	pt := get(func(r Table1Row) float64 { return r.Paratick })
	t.AddRow(append([]string{"periodic ticks"}, per...)...)
	t.AddRow(append([]string{"tickless"}, tl...)...)
	t.AddRow(append([]string{"paratick"}, pt...)...)
	return t
}

func formatCount(f float64) string {
	n := int64(f + 0.5)
	// Group thousands with spaces, like the paper ("40 000").
	s := ""
	for n >= 1000 {
		s = " " + pad3(n%1000) + s
		n /= 1000
	}
	return itoa(n) + s
}

func pad3(n int64) string {
	d := []byte{'0', '0', '0'}
	for i := 2; i >= 0 && n > 0; i-- {
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
