package analytic

import (
	"strings"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

func specIdle16() VMSpec {
	return VMSpec{Name: "idle", VCPUs: 16, TickHz: 250, Load: 0, TIdle: sim.Forever}
}

func TestVMSpecValidate(t *testing.T) {
	good := []VMSpec{
		specIdle16(),
		{Name: "x", VCPUs: 1, TickHz: 100, Load: 1},
		{Name: "y", VCPUs: 4, TickHz: 250, Load: 0.5, TIdle: sim.Millisecond},
		{Name: "z", VCPUs: 4, TickHz: 250, Load: 0.5, SyncsPerSec: 100},
	}
	for _, v := range good {
		if err := v.Validate(); err != nil {
			t.Errorf("good spec %q rejected: %v", v.Name, err)
		}
	}
	bad := []VMSpec{
		{Name: "a", VCPUs: 0, TickHz: 250, Load: 1},
		{Name: "b", VCPUs: 4, TickHz: 0, Load: 1},
		{Name: "c", VCPUs: 4, TickHz: 250, Load: 1.5},
		{Name: "d", VCPUs: 4, TickHz: 250, Load: -0.1},
		{Name: "e", VCPUs: 4, TickHz: 250, Load: 0.5}, // idle but no TIdle/syncs
		{Name: "f", VCPUs: 4, TickHz: 250, Load: 1, SyncsPerSec: -1},
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad spec %q accepted", v.Name)
		}
	}
}

func TestPeriodicExitsStrict(t *testing.T) {
	// §3.1: exits = 2 × t × n_vCPU × f_tick = 2×10×16×250 = 80 000.
	v := specIdle16()
	got := PeriodicExits(v, 10*sim.Second, StrictFormula)
	if got != 80000 {
		t.Fatalf("strict periodic exits = %v, want 80000", got)
	}
}

func TestPeriodicExitsPaperConvention(t *testing.T) {
	// Printed Table 1: W1 = 40 000.
	v := specIdle16()
	got := PeriodicExits(v, 10*sim.Second, PaperTable)
	if got != 40000 {
		t.Fatalf("paper-convention periodic exits = %v, want 40000", got)
	}
}

func TestPeriodicExitsIndependentOfLoad(t *testing.T) {
	// §3.1: periodic exit count is workload-independent.
	busy := VMSpec{Name: "busy", VCPUs: 16, TickHz: 250, Load: 1}
	idle := specIdle16()
	if PeriodicExits(busy, sim.Second, StrictFormula) != PeriodicExits(idle, sim.Second, StrictFormula) {
		t.Fatal("periodic exits should not depend on load")
	}
}

func TestTicklessExitsIdleVM(t *testing.T) {
	// A fully idle tickless VM induces zero tick-management exits.
	v := specIdle16()
	if got := TicklessExits(v, 10*sim.Second, StrictFormula); got != 0 {
		t.Fatalf("idle tickless exits = %v, want 0", got)
	}
	if got := TicklessExits(v, 10*sim.Second, PaperTable); got != 0 {
		t.Fatalf("idle tickless exits (paper) = %v, want 0", got)
	}
}

func TestTicklessExitsStrictFormula(t *testing.T) {
	// exits = 2t(L n f + (1-L) n / T_idle)
	// L=0.5, n=16, f=250, T_idle=1ms, t=10s:
	// = 2×10×(0.5×16×250 + 0.5×16/0.001) = 2×10×(2000+8000) = 200000.
	v := VMSpec{Name: "x", VCPUs: 16, TickHz: 250, Load: 0.5, TIdle: sim.Millisecond}
	got := TicklessExits(v, 10*sim.Second, StrictFormula)
	if got != 200000 {
		t.Fatalf("strict tickless exits = %v, want 200000", got)
	}
}

func TestTicklessExitsFullyBusy(t *testing.T) {
	// L=1: only active ticks remain; equals the periodic count.
	v := VMSpec{Name: "x", VCPUs: 8, TickHz: 100, Load: 1}
	if got, want := TicklessExits(v, sim.Second, StrictFormula), PeriodicExits(v, sim.Second, StrictFormula); got != want {
		t.Fatalf("busy tickless = %v, want %v", got, want)
	}
}

func TestParatickExits(t *testing.T) {
	v := VMSpec{Name: "x", VCPUs: 16, TickHz: 250, Load: 0.5, SyncsPerSec: 1000}
	// 1000 sync/s × 10 s × 5% = 500.
	if got := ParatickExits(v, 10*sim.Second, 0.05); got != 500 {
		t.Fatalf("paratick exits = %v, want 500", got)
	}
	// Clamping.
	if got := ParatickExits(v, 10*sim.Second, -1); got != 0 {
		t.Fatalf("negative fraction should clamp to 0, got %v", got)
	}
	if got := ParatickExits(v, 10*sim.Second, 2); got != 10000 {
		t.Fatalf("fraction >1 should clamp to 1, got %v", got)
	}
	// Idle VM: no exits at all.
	if got := ParatickExits(specIdle16(), 10*sim.Second, 1); got != 0 {
		t.Fatalf("idle paratick exits = %v, want 0", got)
	}
}

func TestParatickNeverExceedsTicklessProperty(t *testing.T) {
	// §4.2: "virtual scheduler ticks is guaranteed to never induce more
	// timer-related VM exits than tickless kernels."
	f := func(vcpus, hz uint8, loadRaw uint8, syncRaw uint16, frac uint8) bool {
		v := VMSpec{
			Name:        "p",
			VCPUs:       int(vcpus%64) + 1,
			TickHz:      int(hz%250) + 10,
			Load:        float64(loadRaw%101) / 100,
			SyncsPerSec: float64(syncRaw % 10000),
			TIdle:       sim.Millisecond,
		}
		para := ParatickExits(v, 10*sim.Second, float64(frac%101)/100)
		// Compare against the strict formula, which counts transitions from
		// the same source (syncs when declared, else TIdle). The printed-
		// table convention ignores TIdle entirely, so it is not comparable
		// for sync-free specs.
		strict := TicklessExits(v, 10*sim.Second, StrictFormula)
		if v.SyncsPerSec > 0 {
			// The strict formula's transition term comes from TIdle; put
			// paratick on the same footing by comparing sync-driven specs
			// against the paper convention (2 exits per sync + ticks).
			paper := TicklessExits(v, 10*sim.Second, PaperTable)
			if paper == 0 {
				return para == 0
			}
			return para <= paper
		}
		if strict == 0 {
			return para == 0
		}
		return para <= strict
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTicklessPreferableCrossover(t *testing.T) {
	// §3.3: tickless preferable iff T_idle > tick period / vCPUs-per-pCPU.
	// 250 Hz → 4ms period. 4 vCPUs per pCPU → threshold 1ms.
	if !TicklessPreferable(2*sim.Millisecond, 250, 4) {
		t.Error("2ms idle period should favor tickless")
	}
	if TicklessPreferable(500*sim.Microsecond, 250, 4) {
		t.Error("0.5ms idle period should favor periodic")
	}
	if TicklessPreferable(sim.Millisecond, 250, 4) {
		t.Error("exactly at threshold should not be 'longer than'")
	}
	// Degenerate inputs default to tickless.
	if !TicklessPreferable(sim.Millisecond, 0, 4) || !TicklessPreferable(sim.Millisecond, 250, 0) {
		t.Error("degenerate params should default to tickless")
	}
}

func TestTable1PaperConventionMatchesPrintedValues(t *testing.T) {
	rows := Table1(PaperTable)
	want := PaperTable1Values()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		w := want[r.Workload]
		if r.Periodic != w[0] {
			t.Errorf("%s periodic = %v, paper prints %v", r.Workload, r.Periodic, w[0])
		}
		if r.Tickless != w[1] {
			t.Errorf("%s tickless = %v, paper prints %v", r.Workload, r.Tickless, w[1])
		}
	}
}

func TestTable1ParatickColumn(t *testing.T) {
	rows := Table1(PaperTable)
	for _, r := range rows {
		if r.Workload == "W1" || r.Workload == "W2" {
			if r.Paratick != 0 {
				t.Errorf("%s paratick = %v, want 0 for idle VMs", r.Workload, r.Paratick)
			}
			continue
		}
		if r.Paratick <= 0 {
			t.Errorf("%s paratick = %v, want positive", r.Workload, r.Paratick)
		}
		if r.Paratick >= r.Tickless {
			t.Errorf("%s paratick (%v) should undercut tickless (%v)", r.Workload, r.Paratick, r.Tickless)
		}
		if r.Paratick >= r.Periodic {
			t.Errorf("%s paratick (%v) should undercut periodic (%v)", r.Workload, r.Paratick, r.Periodic)
		}
	}
}

func TestTable1StrictConventionDoublesPeriodic(t *testing.T) {
	strict := Table1(StrictFormula)
	paper := Table1(PaperTable)
	for i := range strict {
		if strict[i].Periodic != 2*paper[i].Periodic {
			t.Errorf("%s: strict periodic %v != 2× paper %v",
				strict[i].Workload, strict[i].Periodic, paper[i].Periodic)
		}
	}
}

func TestTable1ShapeW3(t *testing.T) {
	// The §3.3 headline: for W3/W4 (frequent brief idling), tickless is
	// WORSE than periodic; for W1/W2 (mostly idle) it is vastly better.
	for _, conv := range []Convention{StrictFormula, PaperTable} {
		rows := Table1(conv)
		byName := map[string]Table1Row{}
		for _, r := range rows {
			byName[r.Workload] = r
		}
		if byName["W1"].Tickless >= byName["W1"].Periodic {
			t.Errorf("%v: W1 tickless should beat periodic", conv)
		}
		if byName["W3"].Tickless <= byName["W3"].Periodic {
			t.Errorf("%v: W3 tickless should be worse than periodic", conv)
		}
	}
}

func TestTable1Workloads(t *testing.T) {
	ws := Table1Workloads()
	if len(ws) != 4 {
		t.Fatalf("workload count = %d", len(ws))
	}
	if len(ws["W2"]) != 4 || len(ws["W4"]) != 4 {
		t.Error("W2/W4 should have 4 VMs")
	}
	for name, vms := range ws {
		for _, v := range vms {
			if v.VCPUs != 16 {
				t.Errorf("%s VM has %d vCPUs, want 16", name, v.VCPUs)
			}
			if v.TickHz != 250 {
				t.Errorf("%s VM tick = %d Hz, want 250", name, v.TickHz)
			}
		}
	}
}

func TestRenderTable1(t *testing.T) {
	s := RenderTable1(PaperTable).String()
	for _, want := range []string{"W1", "W4", "periodic ticks", "tickless", "paratick", "40 000", "240 000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		999:    "999",
		1000:   "1 000",
		40000:  "40 000",
		240000: "240 000",
		1e6:    "1 000 000",
	}
	for in, want := range cases {
		if got := formatCount(in); got != want {
			t.Errorf("formatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestConventionString(t *testing.T) {
	if StrictFormula.String() != "strict-formula" || PaperTable.String() != "paper-table" {
		t.Error("convention names wrong")
	}
	if Convention(9).String() != "convention(9)" {
		t.Error("unknown convention name wrong")
	}
}
