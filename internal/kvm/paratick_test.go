package kvm

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// TestParatickCatchUpAfterLongHalt: a vCPU halted across many tick periods
// receives exactly one virtual tick on wake (§4.1), not a burst.
func TestParatickCatchUpAfterLongHalt(t *testing.T) {
	rig := newRig(t, core.Paratick, 1)
	// Sleep far longer than a tick period, then compute briefly.
	rig.vm.Kernel().Spawn("napper", 0, guest.Steps(
		guest.Compute(sim.Millisecond),
		guest.Sleep(100*sim.Millisecond),
		guest.Compute(sim.Millisecond),
	))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	// ~25 periods asleep; awake ~2ms. Virtual ticks should be bounded by
	// awake-time ticks plus one catch-up per wake, nowhere near 25.
	if c.VirtualTicks > 6 {
		t.Fatalf("virtual ticks = %d; halted periods must not be replayed", c.VirtualTicks)
	}
}

// TestParatickTickRateOnBusyGuestLongRun: over one simulated second, a busy
// paratick guest receives its declared 250 ticks/s within a few percent.
func TestParatickTickRateOnBusyGuestLongRun(t *testing.T) {
	rig := newRig(t, core.Paratick, 1)
	rig.vm.Kernel().Spawn("spin", 0, guest.Steps(guest.Compute(sim.Second)))
	rig.runUntilDone(t, 2*sim.Second)
	c := rig.vm.Counters()
	if c.GuestTicks < 240 || c.GuestTicks > 260 {
		t.Fatalf("guest ticks over 1s busy = %d, want ~250", c.GuestTicks)
	}
}

// TestTimerStealChargesRunningVCPU: under overcommit with periodic guests,
// tick timers of descheduled vCPUs must surface as timer-steal exits on
// whoever runs (§3.1).
func TestTimerStealChargesRunningVCPU(t *testing.T) {
	engine := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	gcfg.Mode = core.Periodic
	// Two periodic 1-vCPU VMs sharing pCPU 0; one computes, the other
	// idles (so its tick keeps firing while descheduled or halted).
	busy, err := host.NewVM("busy", gcfg, []hw.CPUID{0})
	if err != nil {
		t.Fatal(err)
	}
	idle, err := host.NewVM("idle", gcfg, []hw.CPUID{0})
	if err != nil {
		t.Fatal(err)
	}
	busy.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(400*sim.Millisecond)))
	busy.Start()
	idle.Start()
	engine.RunUntil(500 * sim.Millisecond)
	steals := busy.Counters().Exits[metrics.ExitTimerSteal]
	// The idle VM ticks ~every rotation (≈8ms → ~50 fires over 400ms);
	// roughly half land while the busy VM executes guest code.
	if steals < 10 {
		t.Fatalf("timer-steal exits on the busy VM = %d, want ≥10", steals)
	}
}

// TestCrossSocketIPICostsMore: wakeup IPIs across sockets are taxed.
func TestCrossSocketIPICost(t *testing.T) {
	engine := sim.NewEngine(1)
	cfg := DefaultConfig() // paper topology: sockets of 20
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := host.NewVM("x", guest.DefaultConfig(), []hw.CPUID{0, 30}) // sockets 0 and 1
	if err != nil {
		t.Fatal(err)
	}
	p0 := vm.VCPUs()[0].PCPU()
	same := p0.ipiCost(vm.VCPUs()[0], 0)
	cross := p0.ipiCost(vm.VCPUs()[0], 1)
	if cross <= same {
		t.Fatalf("cross-socket IPI (%v) should cost more than same-socket (%v)", cross, same)
	}
	want := sim.Time(float64(cfg.Cost.ExitIPI) * cfg.Topology.CrossSocketTax)
	if cross != want {
		t.Fatalf("cross-socket IPI = %v, want %v", cross, want)
	}
}

// TestCycleAccountingConservation: useful cycles equal exactly the compute
// the workload requested, regardless of interrupts and preemptions.
func TestCycleAccountingConservation(t *testing.T) {
	for _, mode := range []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick} {
		rig := newRig(t, mode, 2)
		const work = 37*sim.Millisecond + 123
		rig.vm.Kernel().Spawn("a", 0, guest.Steps(guest.Compute(work)))
		rig.vm.Kernel().Spawn("b", 1, guest.Steps(guest.Compute(work/3)))
		rig.runUntilDone(t, sim.Second)
		c := rig.vm.Counters()
		if c.GuestUseful != work+work/3 {
			t.Fatalf("%v: useful = %v, want %v", mode, c.GuestUseful, work+work/3)
		}
	}
}

// TestTraceRecordsExitsMatchingCounters: the tracer's per-reason counts
// agree with the metrics counters.
func TestTraceRecordsExitsMatchingCounters(t *testing.T) {
	rig := newRig(t, core.DynticksIdle, 1)
	tr := trace.NewBuffer(64) // small ring; aggregates still count all
	rig.host.SetTracer(tr)
	dev, err := rig.vm.AttachDevice("d", iodev.NVMe())
	if err != nil {
		t.Fatal(err)
	}
	var steps []guest.Step
	for i := 0; i < 30; i++ {
		steps = append(steps, guest.Read(dev, 4096, false))
	}
	rig.vm.Kernel().Spawn("fio", 0, guest.Steps(steps...))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	for r := metrics.ExitReason(0); r < metrics.NumExitReasons; r++ {
		if got := tr.Count(trace.KindExit, r.String()); got != c.Exits[r] {
			t.Errorf("trace count for %v = %d, counters say %d", r, got, c.Exits[r])
		}
	}
	if rig.host.Tracer() != tr {
		t.Error("tracer accessor broken")
	}
}

// TestTimesliceRotationUnderOvercommit: two compute-bound vCPUs sharing a
// pCPU must alternate on timeslice boundaries rather than run to completion
// serially.
func TestTimesliceRotationUnderOvercommit(t *testing.T) {
	engine := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	var vms []*VM
	for i := 0; i < 2; i++ {
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{0})
		if err != nil {
			t.Fatal(err)
		}
		vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(50*sim.Millisecond)))
		vm.Start()
		vms = append(vms, vm)
	}
	engine.RunUntil(200 * sim.Millisecond)
	_, at0 := vms[0].WorkloadDone()
	_, at1 := vms[1].WorkloadDone()
	// With 6ms slices both finish near 100ms; serial execution would put
	// the first at ~50ms. Rotation means neither finishes before ~90ms.
	if at0 < 90*sim.Millisecond {
		t.Fatalf("vm0 finished at %v — ran serially, no timeslicing", at0)
	}
	if at1 < 90*sim.Millisecond || at1 > 120*sim.Millisecond {
		t.Fatalf("vm1 finished at %v", at1)
	}
}

// TestGuaranteeParatickNeverMoreTimerExits is the §4.2 guarantee as a
// randomized end-to-end property: across random mixed workloads, paratick
// never induces more timer-related VM exits than the dynticks baseline.
func TestGuaranteeParatickNeverMoreTimerExits(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		seed := uint64(1000 + trial)
		run := func(mode core.Mode) *metrics.Counters {
			engine := sim.NewEngine(seed)
			cfg := DefaultConfig()
			cfg.Topology = hw.SmallTopology()
			host, err := NewHost(engine, cfg)
			if err != nil {
				t.Fatal(err)
			}
			gcfg := guest.DefaultConfig()
			gcfg.Mode = mode
			vcpus := 1 + int(seed%4)
			placement := make([]hw.CPUID, vcpus)
			for i := range placement {
				placement[i] = hw.CPUID(i)
			}
			vm, err := host.NewVM("p", gcfg, placement)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := vm.AttachDevice("d", iodev.NVMe())
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRand(seed)
			lock := vm.Kernel().NewLock("l")
			for i := 0; i < vcpus; i++ {
				var steps []guest.Step
				for j := 0; j < 20; j++ {
					switch rng.Intn(4) {
					case 0:
						steps = append(steps, guest.Compute(rng.Between(10*sim.Microsecond, 2*sim.Millisecond)))
					case 1:
						steps = append(steps, guest.Sleep(rng.Between(100*sim.Microsecond, 5*sim.Millisecond)))
					case 2:
						steps = append(steps, guest.Read(dev, 4096, rng.Bool(0.5)))
					case 3:
						steps = append(steps,
							guest.Acquire(lock),
							guest.Compute(rng.Between(sim.Microsecond, 20*sim.Microsecond)),
							guest.Release(lock))
					}
				}
				vm.Kernel().Spawn("t", i, guest.Steps(steps...))
			}
			vm.OnWorkloadDone = func(sim.Time) { engine.Stop() }
			vm.Start()
			engine.RunUntil(10 * sim.Second)
			if done, _ := vm.WorkloadDone(); !done {
				t.Fatalf("seed %d mode %v: workload hung", seed, mode)
			}
			return vm.Counters()
		}
		dyn := run(core.DynticksIdle)
		par := run(core.Paratick)
		if par.TimerExits() > dyn.TimerExits() {
			t.Errorf("seed %d: paratick timer exits %d > dynticks %d — §4.2 guarantee violated",
				seed, par.TimerExits(), dyn.TimerExits())
		}
	}
}

// TestPeriodicGuestUnaffectedByParatickHost: a VM that never negotiated
// paratick must not receive virtual ticks even if an entry hook is forced.
func TestPeriodicGuestRejectsInjectedVirtualTicks(t *testing.T) {
	rig := newRig(t, core.Periodic, 1)
	rig.vm.SetEntryHook(&core.ParatickHost{}) // hostile/misconfigured host
	rig.vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(50*sim.Millisecond)))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	// A periodic guest's own timer pends a local-timer interrupt at every
	// period, so the Fig. 2 hook sees HasPendingLocalTimer and rarely (if
	// ever) injects; whatever does arrive is rejected by the guest
	// (§5.2.1). Tick work must come exclusively from the guest's own
	// 250 Hz timer.
	ticks := float64(c.GuestTicks)
	if ticks < 10 || ticks > 16 {
		t.Fatalf("guest ticks = %v, want ~12.5 (own 250 Hz timer only)", ticks)
	}
	if c.VirtualTicks > c.GuestTicks {
		t.Fatalf("virtual ticks %d exceed processed ticks %d", c.VirtualTicks, c.GuestTicks)
	}
}

// TestHypercallRecordsDeclaredRate: the §4.1 boot hypercall reaches the
// host side.
func TestHypercallRecordsDeclaredRate(t *testing.T) {
	engine := sim.NewEngine(1)
	cfg := DefaultConfig()
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	gcfg.Mode = core.Paratick
	gcfg.TickHz = 1000
	vm, err := host.NewVM("v", gcfg, []hw.CPUID{0})
	if err != nil {
		t.Fatal(err)
	}
	if vm.DeclaredTickHz() != 0 {
		t.Fatal("declared before boot")
	}
	if vm.GuestTickPeriod() != sim.Millisecond {
		t.Fatalf("pre-hypercall fallback period = %v, want config-derived 1ms", vm.GuestTickPeriod())
	}
	vm.Start()
	engine.RunUntil(10 * sim.Millisecond)
	if vm.DeclaredTickHz() != 1000 {
		t.Fatalf("declared hz = %d, want 1000", vm.DeclaredTickHz())
	}
}

// TestVCPUAccessors exercises the small introspection surface.
func TestVCPUAccessors(t *testing.T) {
	rig := newRig(t, core.DynticksIdle, 2)
	v := rig.vm.VCPUs()[1]
	if v.ID() != 1 || v.VM() != rig.vm {
		t.Error("identity accessors")
	}
	if v.PCPU() != rig.host.PCPUs()[1] {
		t.Error("pcpu accessor")
	}
	if v.State() != VCPUStopped {
		t.Error("initial state")
	}
	if len(v.PendingIRQs()) != 0 {
		t.Error("fresh vCPU has pending IRQs")
	}
	v.pendIRQ(hw.RescheduleVector)
	v.pendIRQ(hw.RescheduleVector) // dedupe
	if got := v.PendingIRQs(); len(got) != 1 || got[0] != hw.RescheduleVector {
		t.Errorf("pending = %v", got)
	}
	if !rig.host.Config().Topology.SameSocket(0, 1) {
		t.Error("test premise: both on socket 0")
	}
	if rig.host.Engine() == nil || rig.host.Now() != 0 {
		t.Error("host accessors")
	}
}

func TestPCPUAccessorsAndHostVMs(t *testing.T) {
	rig := newRig(t, core.DynticksIdle, 1)
	p := rig.host.PCPUs()[0]
	if p.ID() != 0 || p.Current() != nil || p.RunQueueLen() != 0 {
		t.Error("fresh pCPU accessors wrong")
	}
	if len(rig.host.VMs()) != 1 || rig.host.VMs()[0] != rig.vm {
		t.Error("host VMs accessor")
	}
	v := rig.vm.VCPUs()[0]
	if v.HostTickPeriod() != 4*sim.Millisecond {
		t.Error("HostTickPeriod accessor")
	}
}

func TestArmTopUpTimerKeepsEarlierDeadline(t *testing.T) {
	rig := newRig(t, core.Paratick, 1)
	v := rig.vm.VCPUs()[0]
	v.ArmTopUpTimer(10 * sim.Millisecond)
	v.ArmTopUpTimer(20 * sim.Millisecond) // later: ignored
	if v.topUpTimer.Deadline() != 10*sim.Millisecond {
		t.Fatalf("deadline = %v, want the earlier 10ms", v.topUpTimer.Deadline())
	}
	v.ArmTopUpTimer(5 * sim.Millisecond) // earlier: replaces
	if v.topUpTimer.Deadline() != 5*sim.Millisecond {
		t.Fatalf("deadline = %v, want 5ms", v.topUpTimer.Deadline())
	}
}

func TestPLEExitsChargedOnSpinSegments(t *testing.T) {
	engine := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	cfg.PLEWindow = 10 * sim.Microsecond
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	gcfg.AdaptiveSpin = 35 * sim.Microsecond
	vm, err := host.NewVM("s", gcfg, []hw.CPUID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	l := vm.Kernel().NewLock("hot")
	// vCPU0 holds the lock through a long compute; vCPU1 spins then blocks.
	vm.Kernel().Spawn("holder", 0, guest.Steps(
		guest.Acquire(l), guest.Compute(sim.Millisecond), guest.Release(l)))
	vm.Kernel().Spawn("spinner", 1, guest.Steps(
		guest.Compute(10*sim.Microsecond), guest.Acquire(l), guest.Release(l)))
	vm.OnWorkloadDone = func(sim.Time) { engine.Stop() }
	vm.Start()
	engine.RunUntil(sim.Second)
	if done, _ := vm.WorkloadDone(); !done {
		t.Fatal("hung")
	}
	// One 35µs spin with a 10µs window → 3 PLE exits.
	if got := vm.Counters().Exits[metrics.ExitPLE]; got != 3 {
		t.Fatalf("PLE exits = %d, want 3", got)
	}
}
