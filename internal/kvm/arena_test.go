package kvm

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// runWorkload builds a host on se via the given arena, boots two VMs with a
// small CPU-burn workload, runs to completion, and returns the digest of
// the final engine state plus the per-VM exit totals — everything a reused
// host could plausibly corrupt.
func arenaRun(t *testing.T, a *HostArena, se *sim.ShardedEngine, cfg Config) (snap.Digest, []uint64) {
	t.Helper()
	host, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var exits []uint64
	for i := 0; i < 2; i++ {
		gcfg := guest.DefaultConfig()
		if i == 1 {
			gcfg.Mode = core.Paratick
		}
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{hw.CPUID(2 * i), hw.CPUID(2*i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		vm.Kernel().Spawn("burn", 0, guest.Steps(guest.Compute(3*sim.Millisecond)))
		vm.Start()
	}
	se.RunUntil(20 * sim.Millisecond)
	for _, vm := range host.VMs() {
		if done, _ := vm.WorkloadDone(); !done {
			t.Fatal("workload did not finish")
		}
		exits = append(exits, vm.Counters().TotalExits())
	}
	return se.Root().DigestState(), exits
}

// TestHostArenaReuseMatchesFresh pins the pool's contract: a run on a
// reused host is indistinguishable from a run on a freshly built one —
// same engine digest, same counters — including when the reuse switches
// scheduler policy and cost knobs between runs.
func TestHostArenaReuseMatchesFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	fair := cfg
	fair.SchedPolicy = sched.Fair
	fair.Timeslice = 3 * sim.Millisecond
	fair.HaltPoll = 50 * sim.Microsecond

	fresh := func(c Config) (snap.Digest, []uint64) {
		e := sim.NewEngine(7)
		return arenaRun(t, nil, sim.WrapEngine(e), c)
	}
	wantFifo0, exitsFifo0 := fresh(cfg)
	wantFair, exitsFair := fresh(fair)

	a := &HostArena{}
	e := sim.NewEngine(7)
	se := sim.WrapEngine(e)
	for round, tc := range []struct {
		cfg    Config
		digest snap.Digest
		exits  []uint64
	}{
		{cfg: cfg, digest: wantFifo0, exits: exitsFifo0},
		{cfg: fair, digest: wantFair, exits: exitsFair}, // policy + knob switch on reuse
		{cfg: cfg, digest: wantFifo0, exits: exitsFifo0},
	} {
		e.Reset(7)
		dig, exits := arenaRun(t, a, se, tc.cfg)
		if dig != tc.digest {
			t.Fatalf("round %d: reused-host digest %x, fresh run %x", round, dig, tc.digest)
		}
		for i := range exits {
			if exits[i] != tc.exits[i] {
				t.Fatalf("round %d: vm %d exits %d on reuse, %d fresh", round, i, exits[i], tc.exits[i])
			}
		}
	}
	if a.host == nil {
		t.Fatal("arena never cached a host")
	}
}

// TestHostArenaRebuildsOnShapeChange checks the pool only reuses when the
// coordinator and machine shape match.
func TestHostArenaRebuildsOnShapeChange(t *testing.T) {
	a := &HostArena{}
	se := sim.WrapEngine(sim.NewEngine(1))
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	h1, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same everything → reuse.
	se.Root().Reset(1)
	h2, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Fatal("matching shape did not reuse the pooled host")
	}
	// Different topology → rebuild.
	big := cfg
	big.Topology = hw.PaperTopology()
	se.Root().Reset(1)
	h3, err := a.NewHostOn(se, big)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("topology change reused the pooled host")
	}
	// Different coordinator → rebuild.
	other := sim.WrapEngine(sim.NewEngine(1))
	h4, err := a.NewHostOn(other, big)
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h3 {
		t.Fatal("coordinator change reused the pooled host")
	}
	// Nil arena always builds fresh.
	var nilA *HostArena
	h5, err := nilA.NewHostOn(other, big)
	if err != nil {
		t.Fatal(err)
	}
	if h5 == h4 {
		t.Fatal("nil arena reused a host")
	}
}
