package kvm

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// runWorkload builds a host on se via the given arena, boots two VMs with a
// small CPU-burn workload, runs to completion, and returns the digest of
// the final engine state plus the per-VM exit totals — everything a reused
// host could plausibly corrupt.
func arenaRun(t *testing.T, a *HostArena, se *sim.ShardedEngine, cfg Config) (snap.Digest, []uint64) {
	t.Helper()
	host, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var exits []uint64
	for i := 0; i < 2; i++ {
		gcfg := guest.DefaultConfig()
		if i == 1 {
			gcfg.Mode = core.Paratick
		}
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{hw.CPUID(2 * i), hw.CPUID(2*i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		vm.Kernel().Spawn("burn", 0, guest.Steps(guest.Compute(3*sim.Millisecond)))
		vm.Start()
	}
	se.RunUntil(20 * sim.Millisecond)
	for _, vm := range host.VMs() {
		if done, _ := vm.WorkloadDone(); !done {
			t.Fatal("workload did not finish")
		}
		exits = append(exits, vm.Counters().TotalExits())
	}
	return se.Root().DigestState(), exits
}

// TestHostArenaReuseMatchesFresh pins the pool's contract: a run on a
// reused host is indistinguishable from a run on a freshly built one —
// same engine digest, same counters — including when the reuse switches
// scheduler policy and cost knobs between runs.
func TestHostArenaReuseMatchesFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	fair := cfg
	fair.SchedPolicy = sched.Fair
	fair.Timeslice = 3 * sim.Millisecond
	fair.HaltPoll = 50 * sim.Microsecond

	fresh := func(c Config) (snap.Digest, []uint64) {
		e := sim.NewEngine(7)
		return arenaRun(t, nil, sim.WrapEngine(e), c)
	}
	wantFifo0, exitsFifo0 := fresh(cfg)
	wantFair, exitsFair := fresh(fair)

	a := &HostArena{}
	e := sim.NewEngine(7)
	se := sim.WrapEngine(e)
	for round, tc := range []struct {
		cfg    Config
		digest snap.Digest
		exits  []uint64
	}{
		{cfg: cfg, digest: wantFifo0, exits: exitsFifo0},
		{cfg: fair, digest: wantFair, exits: exitsFair}, // policy + knob switch on reuse
		{cfg: cfg, digest: wantFifo0, exits: exitsFifo0},
	} {
		e.Reset(7)
		dig, exits := arenaRun(t, a, se, tc.cfg)
		if dig != tc.digest {
			t.Fatalf("round %d: reused-host digest %x, fresh run %x", round, dig, tc.digest)
		}
		for i := range exits {
			if exits[i] != tc.exits[i] {
				t.Fatalf("round %d: vm %d exits %d on reuse, %d fresh", round, i, exits[i], tc.exits[i])
			}
		}
	}
	if a.host == nil {
		t.Fatal("arena never cached a host")
	}
}

// vmArenaRun builds a host on se through the arena, boots two 2-vCPU VMs in
// the given guest shape, runs to completion, and returns the engine digest
// plus per-VM exit totals. The variant axes — tick mode, guest Hz, and
// workload (pure compute vs lock/barrier sync) — are exactly what the VM
// arena must recycle across without observable effect.
func vmArenaRun(t *testing.T, a *HostArena, se *sim.ShardedEngine, cfg Config, hz int, mode core.Mode, sync bool) (snap.Digest, []uint64) {
	t.Helper()
	host, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		gcfg := guest.DefaultConfig()
		gcfg.TickHz = hz
		gcfg.Mode = mode
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{hw.CPUID(2 * i), hw.CPUID(2*i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		k := vm.Kernel()
		if sync {
			l := k.NewLock("l")
			bar := k.NewBarrier("b", 2)
			for task := 0; task < 2; task++ {
				k.Spawn("sync", task, guest.Steps(
					guest.Acquire(l),
					guest.Compute(200*sim.Microsecond),
					guest.Release(l),
					guest.JoinBarrier(bar),
					guest.Compute(100*sim.Microsecond),
				))
			}
		} else {
			k.Spawn("burn", 0, guest.Steps(guest.Compute(3*sim.Millisecond)))
		}
		vm.Start()
	}
	se.RunUntil(30 * sim.Millisecond)
	var exits []uint64
	for _, vm := range host.VMs() {
		if done, _ := vm.WorkloadDone(); !done {
			t.Fatal("workload did not finish")
		}
		exits = append(exits, vm.Counters().TotalExits())
	}
	return se.Root().DigestState(), exits
}

// TestVMArenaRecycledMatchesFresh is the VM pool's digest audit: a run whose
// VMs came out of the arena must be byte-identical — engine digest and
// counters — to the same run on freshly constructed VMs, including when
// consecutive runs switch tick mode, guest Hz, and workload shape (compute
// vs lock/barrier sync). The Hz switch also exercises the shape key: a
// 100 Hz request cannot reuse a pooled 250 Hz VM, and the interleaved
// rounds prove the mismatched VMs survive in the pool for the round that
// can use them.
func TestVMArenaRecycledMatchesFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	type variant struct {
		hz   int
		mode core.Mode
		sync bool
	}
	rounds := []variant{
		{250, core.Periodic, false},
		{250, core.Paratick, true},      // mode + workload switch on recycled VMs
		{100, core.DynticksIdle, false}, // Hz switch → pool miss, fresh build
		{250, core.Periodic, true},      // workload switch again on the 250 Hz pair
		{250, core.Paratick, false},
	}
	fresh := make([]snap.Digest, len(rounds))
	freshExits := make([][]uint64, len(rounds))
	for i, v := range rounds {
		e := sim.NewEngine(11)
		fresh[i], freshExits[i] = vmArenaRun(t, nil, sim.WrapEngine(e), cfg, v.hz, v.mode, v.sync)
	}

	a := &HostArena{}
	e := sim.NewEngine(11)
	se := sim.WrapEngine(e)
	for i, v := range rounds {
		e.Reset(11)
		dig, exits := vmArenaRun(t, a, se, cfg, v.hz, v.mode, v.sync)
		if dig != fresh[i] {
			t.Fatalf("round %d (%dHz %v sync=%v): recycled-VM digest %x, fresh %x",
				i, v.hz, v.mode, v.sync, dig, fresh[i])
		}
		for j := range exits {
			if exits[j] != freshExits[i][j] {
				t.Fatalf("round %d: vm %d exits %d recycled, %d fresh", i, j, exits[j], freshExits[i][j])
			}
		}
	}
}

// TestVMArenaRecyclesVMObjects pins that reuse actually happens: after a
// completed run, re-acquiring the same construction shape returns the same
// *VM objects, while a shape miss (different guest Hz) builds fresh and
// leaves the pooled VMs for a later matching request.
func TestVMArenaRecyclesVMObjects(t *testing.T) {
	a := &HostArena{}
	e := sim.NewEngine(3)
	se := sim.WrapEngine(e)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	vmArenaRun(t, a, se, cfg, 250, core.Periodic, false)
	pooled := make(map[*VM]bool)
	for _, vm := range a.host.VMs() {
		pooled[vm] = true
	}

	e.Reset(3)
	host, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	gcfg.TickHz = 100
	miss, err := host.NewVM("miss", gcfg, []hw.CPUID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pooled[miss] {
		t.Fatal("a 100Hz request recycled a 250Hz VM")
	}
	hit, err := host.NewVM("hit", guest.DefaultConfig(), []hw.CPUID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !pooled[hit] {
		t.Fatal("a matching-shape request rebuilt instead of recycling")
	}
}

// TestVMArenaReuseAfterAbandonedRun covers the snapshot-probe path: a run
// abandoned mid-flight (tasks still blocked on locks and barriers, timers
// armed, IRQs pending) stashes its dirty VMs uncleaned; the sanitize-at-take
// reset must still produce VMs byte-identical to fresh construction.
func TestVMArenaReuseAfterAbandonedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	freshDig, freshExits := vmArenaRun(t, nil, sim.WrapEngine(sim.NewEngine(5)), cfg, 250, core.Paratick, true)

	a := &HostArena{}
	e := sim.NewEngine(5)
	se := sim.WrapEngine(e)
	host, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		gcfg := guest.DefaultConfig()
		gcfg.Mode = core.Paratick
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{hw.CPUID(2 * i), hw.CPUID(2*i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		k := vm.Kernel()
		l := k.NewLock("l")
		bar := k.NewBarrier("b", 2)
		for task := 0; task < 2; task++ {
			k.Spawn("sync", task, guest.Steps(
				guest.Acquire(l),
				guest.Compute(5*sim.Millisecond),
				guest.Release(l),
				guest.JoinBarrier(bar),
			))
		}
		vm.Start()
	}
	// Abandon mid-run: one task holds each lock, its sibling is blocked, the
	// barrier has no arrivals, ticks and deadline timers are armed.
	se.RunUntil(2 * sim.Millisecond)
	for _, vm := range host.VMs() {
		if done, _ := vm.WorkloadDone(); done {
			t.Fatal("abandon point too late: workload already finished")
		}
	}

	e.Reset(5)
	dig, exits := vmArenaRun(t, a, se, cfg, 250, core.Paratick, true)
	if dig != freshDig {
		t.Fatalf("post-abandon recycled digest %x, fresh %x", dig, freshDig)
	}
	for i := range exits {
		if exits[i] != freshExits[i] {
			t.Fatalf("vm %d exits %d after abandoned-run reuse, %d fresh", i, exits[i], freshExits[i])
		}
	}
}

// TestHostArenaRebuildsOnShapeChange checks the pool only reuses when the
// coordinator and machine shape match.
func TestHostArenaRebuildsOnShapeChange(t *testing.T) {
	a := &HostArena{}
	se := sim.WrapEngine(sim.NewEngine(1))
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	h1, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same everything → reuse.
	se.Root().Reset(1)
	h2, err := a.NewHostOn(se, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Fatal("matching shape did not reuse the pooled host")
	}
	// Different topology → rebuild.
	big := cfg
	big.Topology = hw.PaperTopology()
	se.Root().Reset(1)
	h3, err := a.NewHostOn(se, big)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("topology change reused the pooled host")
	}
	// Different coordinator → rebuild.
	other := sim.WrapEngine(sim.NewEngine(1))
	h4, err := a.NewHostOn(other, big)
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h3 {
		t.Fatal("coordinator change reused the pooled host")
	}
	// Nil arena always builds fresh.
	var nilA *HostArena
	h5, err := nilA.NewHostOn(other, big)
	if err != nil {
		t.Fatal(err)
	}
	if h5 == h4 {
		t.Fatal("nil arena reused a host")
	}
}
