package kvm

// Checkpoint/restore of the full hypervisor state. The protocol mirrors
// the guest layer's: the scenario is rebuilt from its spec first (which
// recreates every object, closure, and pre-bound handler), the engine is
// reset and loaded, and then Host.Load overwrites the rebuilt state with
// the snapshot's — re-arming every pending host-side event (segment
// completions, halt polls, wake delays, host ticks, guest/top-up timers)
// at its original (when, seq) coordinates.
//
// Closures are never serialized. The in-flight segment on a pCPU is not
// encoded either: it is, by construction, the current vCPU's issued guest
// segment (set by exec via gcpu.Next and restored by the guest kernel), so
// restore re-links the pointer. Pending segment-completion events are
// encoded as a handler-kind enum resolved back to the pCPU's pre-bound
// handlers.

import (
	"fmt"

	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// Handler kinds for a pCPU's pending segment-completion event. The kind is
// derived from the in-flight segment at save time and selects which
// pre-bound handler the restored event invokes.
const (
	pevRun  = 0 // runDoneFn: a guest-run segment completes
	pevExit = 1 // exitDoneFn: an atomic exit's handling window elapses
	pevHlt  = 2 // hltDoneFn: the HLT exit's handling window elapses
	pevIrq  = 3 // irqDoneFn: an interrupt-induced exit's window elapses
)

func saveEventCoords(enc *snap.Encoder, ev sim.Event) {
	pending := ev.Pending()
	enc.Bool(pending)
	if pending {
		seq, _ := ev.Seq()
		enc.I64(int64(ev.When()))
		enc.U64(seq)
	}
}

// loadEventCoords reads the coordinates written by saveEventCoords and
// re-arms the handler when the event was pending. Returns the zero Event
// otherwise.
func loadEventCoords(dec *snap.Decoder, e *sim.Engine, label string, fn sim.Handler) (sim.Event, error) {
	if !dec.Bool() {
		return sim.Event{}, dec.Err()
	}
	when := sim.Time(dec.I64())
	seq := dec.U64()
	if err := dec.Err(); err != nil {
		return sim.Event{}, err
	}
	return e.ScheduleRestored(when, seq, label, fn), nil
}

// Save serializes the complete hypervisor state: every VM (counters,
// vCPUs, guest kernel), the scheduler queues, every pCPU's run state, and
// the tracer. The engine must be saved separately (sim.Engine.Save) and
// first, since restore needs the engine's clock before any event re-arms.
func (h *Host) Save(enc *snap.Encoder) error {
	enc.Section("kvm-host")
	enc.U32(uint32(len(h.pcpus)))
	enc.U32(uint32(len(h.vms)))
	enc.I64(int64(h.nextIOVector))
	enc.U64(h.nextSchedKey)
	for _, vm := range h.vms {
		if err := vm.save(enc); err != nil {
			return err
		}
	}
	h.sched.Save(enc)
	for _, p := range h.pcpus {
		if err := p.save(enc); err != nil {
			return err
		}
	}
	h.tracer.Save(enc)
	if h.se.Quantum() > 0 {
		h.saveSharded(enc)
	}
	return nil
}

// Load restores state saved by Save into a host freshly rebuilt from the
// same scenario spec: identical topology, VM shapes, device attachments,
// and spawn order. The engine must already be restored (sim.Engine.Load).
func (h *Host) Load(dec *snap.Decoder) error {
	dec.Section("kvm-host")
	np := int(dec.U32())
	nv := int(dec.U32())
	iov := hw.Vector(dec.I64())
	key := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if np != len(h.pcpus) || nv != len(h.vms) {
		return fmt.Errorf("kvm: snapshot has %d pCPUs / %d VMs, host has %d / %d",
			np, nv, len(h.pcpus), len(h.vms))
	}
	if iov != h.nextIOVector || key != h.nextSchedKey {
		return fmt.Errorf("kvm: snapshot allocator state (vector %d, key %d) does not match rebuilt host (vector %d, key %d) — scenario shape mismatch",
			iov, key, h.nextIOVector, h.nextSchedKey)
	}
	for _, vm := range h.vms {
		if err := vm.load(dec); err != nil {
			return err
		}
	}
	byKey := make(map[uint64]*VCPU)
	for _, vm := range h.vms {
		for _, v := range vm.vcpus {
			byKey[v.node.Key] = v
		}
	}
	lookup := func(k uint64) sched.Entity {
		if v, ok := byKey[k]; ok {
			return v
		}
		return nil
	}
	if err := h.sched.Load(dec, lookup); err != nil {
		return err
	}
	for _, p := range h.pcpus {
		if err := p.load(dec, byKey); err != nil {
			return err
		}
	}
	_, err := h.tracer.Load(dec)
	if err != nil {
		return err
	}
	if h.se.Quantum() > 0 {
		if err := h.loadSharded(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// saveSharded encodes the lane-mode extras: per-lane trace rings, in-flight
// remote-IRQ deliveries, and IPI stream positions. The section only exists
// for lane-mode hosts (a positive quantum), so legacy checkpoint bytes are
// byte-for-byte unchanged.
func (h *Host) saveSharded(enc *snap.Encoder) {
	enc.Section("kvm-sharded")
	enc.Bool(h.laneTracers != nil)
	for _, t := range h.laneTracers {
		t.Save(enc)
	}
	enc.U32(uint32(len(h.inflight)))
	for _, list := range h.inflight {
		enc.U32(uint32(len(list)))
		for _, r := range list {
			enc.I64(int64(r.vm))
			enc.I64(int64(r.vcpu))
			enc.I64(int64(r.vec))
			seq, _ := r.ev.Seq()
			enc.I64(int64(r.ev.When()))
			enc.U64(seq)
		}
	}
	enc.U32(uint32(len(h.streams)))
	for _, s := range h.streams {
		enc.U64(s.sent)
		saveEventCoords(enc, s.ev)
	}
}

// loadSharded restores the lane-mode extras into a host rebuilt from the
// same scenario spec, re-arming every in-flight remote delivery and stream
// event at its original (when, seq) coordinates.
func (h *Host) loadSharded(dec *snap.Decoder) error {
	dec.Section("kvm-sharded")
	if dec.Bool() {
		if h.laneTracers == nil {
			return fmt.Errorf("kvm: snapshot has per-lane tracers but the rebuilt host records none")
		}
		for _, t := range h.laneTracers {
			if _, err := t.Load(dec); err != nil {
				return err
			}
		}
	} else if dec.Err() == nil && h.laneTracers != nil {
		return fmt.Errorf("kvm: rebuilt host has per-lane tracers but the snapshot records none")
	}
	if nl := int(dec.U32()); dec.Err() == nil && nl != len(h.inflight) {
		return fmt.Errorf("kvm: snapshot has %d remote-IRQ lanes, host has %d", nl, len(h.inflight))
	}
	for lane := range h.inflight {
		h.inflight[lane] = h.inflight[lane][:0]
		n := int(dec.U32())
		for i := 0; i < n && dec.Err() == nil; i++ {
			r := &remoteIRQ{vm: int(dec.I64()), vcpu: int(dec.I64()), vec: hw.Vector(dec.I64())}
			when := sim.Time(dec.I64())
			seq := dec.U64()
			if err := dec.Err(); err != nil {
				return err
			}
			if r.vm < 0 || r.vm >= len(h.vms) {
				return fmt.Errorf("kvm: snapshot remote IRQ targets unknown VM %d", r.vm)
			}
			if vm := h.vms[r.vm]; r.vcpu < 0 || r.vcpu >= len(vm.vcpus) {
				return fmt.Errorf("kvm: snapshot remote IRQ targets invalid vCPU %d of VM %q", r.vcpu, vm.name)
			}
			h.armRemoteIRQRestored(r, when, seq)
		}
	}
	if ns := int(dec.U32()); dec.Err() == nil && ns != len(h.streams) {
		return fmt.Errorf("kvm: snapshot has %d IPI streams, host has %d", ns, len(h.streams))
	}
	for _, s := range h.streams {
		s.sent = dec.U64()
		var err error
		s.ev, err = loadEventCoords(dec, s.src.engine, "ipi-stream", s.fn)
		if err != nil {
			return err
		}
	}
	return dec.Err()
}

func (vm *VM) save(enc *snap.Encoder) error {
	enc.Section("vm:" + vm.name)
	enc.I64(int64(vm.declaredTickHz))
	enc.Bool(vm.started)
	enc.Bool(vm.workloadDone)
	enc.I64(int64(vm.doneAt))
	vm.counters.Save(enc)
	enc.U32(uint32(len(vm.vcpus)))
	for _, v := range vm.vcpus {
		v.save(enc)
	}
	return vm.kernel.Save(enc)
}

func (vm *VM) load(dec *snap.Decoder) error {
	dec.Section("vm:" + vm.name)
	vm.declaredTickHz = int(dec.I64())
	vm.started = dec.Bool()
	vm.workloadDone = dec.Bool()
	vm.doneAt = sim.Time(dec.I64())
	if err := vm.counters.Load(dec); err != nil {
		return err
	}
	if n := int(dec.U32()); dec.Err() == nil && n != len(vm.vcpus) {
		return fmt.Errorf("kvm: snapshot VM %q has %d vCPUs, rebuilt VM has %d",
			vm.name, n, len(vm.vcpus))
	}
	for _, v := range vm.vcpus {
		if err := v.load(dec); err != nil {
			return err
		}
	}
	return vm.kernel.Load(dec)
}

func (v *VCPU) save(enc *snap.Encoder) {
	enc.U8(uint8(v.state))
	enc.I64(int64(v.pcpu.id))
	v.node.Save(enc)
	enc.I64(int64(v.lastVirtualTick))
	enc.I64(int64(v.sliceStart))
	enc.U32(uint32(len(v.pending)))
	for _, irq := range v.pending {
		enc.I64(int64(irq.vec))
		enc.I64(int64(irq.since))
	}
	v.guestTimer.Save(enc)
	v.topUpTimer.Save(enc)
}

func (v *VCPU) load(dec *snap.Decoder) error {
	st := VCPUState(dec.U8())
	if dec.Err() == nil && (st < VCPUStopped || st > VCPUHalted) {
		return fmt.Errorf("kvm: snapshot vCPU %s/%d has invalid state %d", v.vm.name, v.id, st)
	}
	v.state = st
	pid := int(dec.I64())
	if dec.Err() == nil && (pid < 0 || pid >= len(v.vm.host.pcpus)) {
		return fmt.Errorf("kvm: snapshot vCPU %s/%d homed on invalid pCPU %d", v.vm.name, v.id, pid)
	}
	if dec.Err() == nil {
		v.pcpu = v.vm.host.pcpus[pid]
	}
	if err := v.node.Load(dec); err != nil {
		return err
	}
	v.lastVirtualTick = sim.Time(dec.I64())
	v.sliceStart = sim.Time(dec.I64())
	n := int(dec.U32())
	v.pending = v.pending[:0]
	for i := 0; i < n && dec.Err() == nil; i++ {
		vec := hw.Vector(dec.I64())
		since := sim.Time(dec.I64())
		v.pending = append(v.pending, pendingIRQ{vec: vec, since: since})
	}
	if err := v.guestTimer.Load(dec); err != nil {
		return err
	}
	return v.topUpTimer.Load(dec)
}

// segEventKind derives the pending completion event's handler kind from
// the in-flight segment: interruptGuest is the only path that leaves a
// pending event with no segment, and otherwise the segment's kind selects
// the handler exec installed.
func (p *PCPU) segEventKind() uint8 {
	if p.seg == nil {
		return pevIrq
	}
	switch p.seg.Kind {
	case guest.SegRun:
		return pevRun
	case guest.SegHLT:
		return pevHlt
	default:
		return pevExit
	}
}

func (p *PCPU) save(enc *snap.Encoder) error {
	enc.Section(fmt.Sprintf("pcpu:%d", p.id))
	p.tick.Save(enc)
	cur := p.current != nil
	enc.Bool(cur)
	if cur {
		enc.U64(p.current.node.Key)
	}
	enc.Bool(p.seg != nil)
	pending := p.segEvent.Pending()
	enc.Bool(pending)
	if pending {
		enc.U8(p.segEventKind())
		seq, _ := p.segEvent.Seq()
		enc.I64(int64(p.segEvent.When()))
		enc.U64(seq)
	}
	enc.I64(int64(p.segStart))
	enc.Bool(p.polling)
	enc.I64(int64(p.pollStart))
	saveEventCoords(enc, p.pollEvent)
	enc.Bool(p.dispatchPending)
	saveEventCoords(enc, p.wakeEvent)
	enc.Bool(p.irqExpire)
	return nil
}

func (p *PCPU) load(dec *snap.Decoder, byKey map[uint64]*VCPU) error {
	dec.Section(fmt.Sprintf("pcpu:%d", p.id))
	if err := p.tick.Load(dec); err != nil {
		return err
	}
	p.current = nil
	if dec.Bool() {
		key := dec.U64()
		if dec.Err() == nil {
			v, ok := byKey[key]
			if !ok {
				return fmt.Errorf("kvm: snapshot pCPU %d runs unknown vCPU key %d", p.id, key)
			}
			p.current = v
		}
	}
	segInFlight := dec.Bool()
	p.seg = nil
	if dec.Err() == nil && segInFlight {
		if p.current == nil {
			return fmt.Errorf("kvm: snapshot pCPU %d has an in-flight segment but no current vCPU", p.id)
		}
		gv, ok := p.current.gcpu.(*guest.VCPU)
		if !ok {
			return fmt.Errorf("kvm: pCPU %d in-flight segment belongs to a non-guest vCPU; such hosts cannot be restored", p.id)
		}
		p.seg = gv.Issued()
		if p.seg == nil {
			return fmt.Errorf("kvm: snapshot pCPU %d expects an issued segment on %s/%d, guest restored none",
				p.id, p.current.vm.name, p.current.id)
		}
	}
	p.segEvent = sim.Event{}
	if dec.Bool() {
		kind := dec.U8()
		when := sim.Time(dec.I64())
		seq := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		var label string
		var fn sim.Handler
		switch kind {
		case pevRun:
			label, fn = "pcpu-run", p.runDoneFn
		case pevExit:
			label, fn = "pcpu-exit", p.exitDoneFn
		case pevHlt:
			label, fn = "pcpu-hlt", p.hltDoneFn
		case pevIrq:
			label, fn = "pcpu-irq-exit", p.irqDoneFn
		default:
			return fmt.Errorf("kvm: snapshot pCPU %d has unknown segment-event kind %d", p.id, kind)
		}
		p.segEvent = p.engine.ScheduleRestored(when, seq, label, fn)
	}
	p.segStart = sim.Time(dec.I64())
	p.polling = dec.Bool()
	p.pollStart = sim.Time(dec.I64())
	var err error
	p.pollEvent, err = loadEventCoords(dec, p.engine, "pcpu-poll", p.pollDoneFn)
	if err != nil {
		return err
	}
	p.dispatchPending = dec.Bool()
	p.wakeEvent, err = loadEventCoords(dec, p.engine, "pcpu-wakeup", p.wakeupFn)
	if err != nil {
		return err
	}
	p.irqExpire = dec.Bool()
	return dec.Err()
}
