package kvm

import (
	"bytes"
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/snap"
	"paratick/internal/trace"
)

// buildSnapScenario constructs the checkpoint fixture: an overcommitted
// paratick VM (two vCPUs sharing pCPU 0) with halt polling enabled, a
// tracer attached, an NVMe device, and two tasks exercising locks, sleeps,
// blocking I/O, and a barrier. Deterministic: every call builds the
// identical world, which is the rebuild contract Host.Load relies on.
func buildSnapScenario(t *testing.T, policy sched.Kind) (*sim.Engine, *Host, *VM) {
	t.Helper()
	engine := sim.NewEngine(4242)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	cfg.HaltPoll = 50 * sim.Microsecond
	cfg.SchedPolicy = policy
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	host.SetTracer(trace.NewBuffer(256))
	gcfg := guest.DefaultConfig()
	gcfg.Mode = core.Paratick
	gcfg.AdaptiveSpin = 3 * sim.Microsecond
	vm, err := host.NewVM("snap", gcfg, []hw.CPUID{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := vm.AttachDevice("nvme0", iodev.NVMe())
	if err != nil {
		t.Fatal(err)
	}
	k := vm.Kernel()
	l := k.NewLock("l0")
	b := k.NewBarrier("join", 2)
	k.Spawn("t0", 0, guest.Steps(
		guest.Compute(sim.Millisecond),
		guest.Acquire(l),
		guest.Compute(200*sim.Microsecond),
		guest.Release(l),
		guest.Read(dev, 4096, false),
		guest.Sleep(3*sim.Millisecond),
		guest.JoinBarrier(b),
		guest.Compute(500*sim.Microsecond),
	))
	k.Spawn("t1", 1, guest.Steps(
		guest.Compute(300*sim.Microsecond),
		guest.Acquire(l),
		guest.Compute(200*sim.Microsecond),
		guest.Release(l),
		guest.Sleep(2*sim.Millisecond),
		guest.Read(dev, 8192, true),
		guest.JoinBarrier(b),
		guest.Compute(sim.Millisecond),
	))
	vm.OnWorkloadDone = func(sim.Time) { engine.Stop() }
	vm.Start()
	return engine, host, vm
}

// saveHost serializes the full world: engine first (restore needs the
// clock before events re-arm), then the host.
func saveHost(t *testing.T, e *sim.Engine, h *Host) []byte {
	t.Helper()
	var enc snap.Encoder
	e.Save(&enc)
	if err := h.Save(&enc); err != nil {
		t.Fatalf("host save: %v", err)
	}
	return enc.Bytes()
}

// restoreHost loads a saved world into a freshly rebuilt scenario.
func restoreHost(t *testing.T, buf []byte, e *sim.Engine, h *Host) {
	t.Helper()
	e.Reset(0)
	dec := snap.NewDecoder(buf)
	if err := e.Load(dec); err != nil {
		t.Fatalf("engine load: %v", err)
	}
	if err := h.Load(dec); err != nil {
		t.Fatalf("host load: %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over after load", dec.Remaining())
	}
}

// TestHostSaveLoadByteIdentity snapshots the running fixture at a sweep of
// probe instants — spanning dispatch, in-guest segments, exit windows,
// halt-poll windows, blocked sleepers, in-flight I/O, and the drained
// end state — and checks that restoring each snapshot into a rebuilt
// scenario re-saves to the exact original bytes.
func TestHostSaveLoadByteIdentity(t *testing.T) {
	probes := []sim.Time{
		200 * sim.Microsecond,
		700 * sim.Microsecond,
		1200 * sim.Microsecond,
		2 * sim.Millisecond,
		3100 * sim.Microsecond,
		4500 * sim.Microsecond,
		6 * sim.Millisecond,
		9 * sim.Millisecond,
	}
	for _, policy := range []sched.Kind{sched.FIFO, sched.Fair} {
		t.Run(policy.String(), func(t *testing.T) {
			engine, host, vm := buildSnapScenario(t, policy)
			for _, probe := range probes {
				engine.RunUntil(probe)
				buf := saveHost(t, engine, host)
				e2, h2, _ := buildSnapScenario(t, policy)
				restoreHost(t, buf, e2, h2)
				buf2 := saveHost(t, e2, h2)
				if !bytes.Equal(buf, buf2) {
					t.Fatalf("restore-then-resave at %v diverged: %d vs %d bytes", probe, len(buf), len(buf2))
				}
			}
			engine.RunUntil(50 * sim.Millisecond)
			if done, _ := vm.WorkloadDone(); !done {
				t.Fatal("fixture workload never completed — probes missed the interesting states")
			}
		})
	}
}

// TestHostRestoreContinuesIdentically restores a mid-run snapshot into a
// rebuilt scenario, runs both worlds to completion, and requires the final
// serialized states to be byte-identical — the restored world must replay
// the exact event sequence the original would have run.
func TestHostRestoreContinuesIdentically(t *testing.T) {
	const probe = 1200 * sim.Microsecond
	const deadline = 50 * sim.Millisecond
	for _, policy := range []sched.Kind{sched.FIFO, sched.Fair} {
		t.Run(policy.String(), func(t *testing.T) {
			engine, host, vm := buildSnapScenario(t, policy)
			engine.RunUntil(probe)
			buf := saveHost(t, engine, host)
			engine.RunUntil(deadline)
			done, srcAt := vm.WorkloadDone()
			if !done {
				t.Fatal("source workload incomplete")
			}
			srcFinal := saveHost(t, engine, host)

			e2, h2, vm2 := buildSnapScenario(t, policy)
			restoreHost(t, buf, e2, h2)
			e2.RunUntil(deadline)
			done2, dstAt := vm2.WorkloadDone()
			if !done2 {
				t.Fatal("restored workload incomplete")
			}
			if srcAt != dstAt {
				t.Fatalf("completion time diverged: %v vs %v", srcAt, dstAt)
			}
			dstFinal := saveHost(t, e2, h2)
			if !bytes.Equal(srcFinal, dstFinal) {
				t.Fatalf("final states diverged: %d vs %d bytes", len(srcFinal), len(dstFinal))
			}
			if vm.Counters().TotalExits() != vm2.Counters().TotalExits() {
				t.Fatalf("exit totals diverged: %d vs %d",
					vm.Counters().TotalExits(), vm2.Counters().TotalExits())
			}
		})
	}
}

// TestHostLoadRejectsShapeMismatch loads a 2-vCPU snapshot into a 1-vCPU
// host and expects a validation error rather than corruption.
func TestHostLoadRejectsShapeMismatch(t *testing.T) {
	engine, host, _ := buildSnapScenario(t, sched.FIFO)
	engine.RunUntil(sim.Millisecond)
	buf := saveHost(t, engine, host)

	e2 := sim.NewEngine(4242)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	h2, err := NewHost(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.NewVM("snap", guest.DefaultConfig(), []hw.CPUID{0}); err != nil {
		t.Fatal(err)
	}
	e2.Reset(0)
	dec := snap.NewDecoder(buf)
	if err := e2.Load(dec); err != nil {
		t.Fatal(err)
	}
	if err := h2.Load(dec); err == nil {
		t.Fatal("shape-mismatched load succeeded")
	}
}
