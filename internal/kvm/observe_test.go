package kvm

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

func TestVectorClassMapping(t *testing.T) {
	cases := []struct {
		vec  hw.Vector
		want metrics.VectorClass
	}{
		{hw.LocalTimerVector, metrics.VecTimer},
		{hw.ParatickVector, metrics.VecParatick},
		{hw.RescheduleVector, metrics.VecReschedule},
		{hw.CallFuncVector, metrics.VecCallFunc},
		{hw.IODeviceBase, metrics.VecDevice},
		{hw.IODeviceBase + 7, metrics.VecDevice},
	}
	for _, c := range cases {
		if got := vectorClass(c.vec); got != c.want {
			t.Errorf("vectorClass(%v) = %v, want %v", c.vec, got, c.want)
		}
	}
}

// Every VM exit must land in a per-reason cost histogram: the histogram
// counts have to add up to the exit counters, reason by reason.
func TestExitCostHistogramsMatchExitCounts(t *testing.T) {
	rig := newRig(t, core.Periodic, 1)
	rig.vm.Kernel().Spawn("worker", 0, guest.Steps(
		guest.Compute(20*sim.Millisecond),
		guest.Sleep(10*sim.Millisecond),
		guest.Compute(5*sim.Millisecond),
	))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	if c.TotalExits() == 0 {
		t.Fatal("no exits recorded")
	}
	for r := metrics.ExitReason(0); r < metrics.NumExitReasons; r++ {
		if c.ExitCost[r].Count() != c.Exits[r] {
			t.Errorf("%v: histogram count %d != exit count %d",
				r, c.ExitCost[r].Count(), c.Exits[r])
		}
		if c.Exits[r] > 0 && c.ExitCost[r].Max() <= 0 {
			t.Errorf("%v: exits recorded but max cost is %v", r, c.ExitCost[r].Max())
		}
	}
}

// Every injection must be histogrammed by vector class, and timer
// injections must dominate for a tick-driven workload.
func TestInjectLatencyHistogramsMatchInjections(t *testing.T) {
	rig := newRig(t, core.Periodic, 1)
	rig.vm.Kernel().Spawn("worker", 0, guest.Steps(guest.Compute(50*sim.Millisecond)))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	var total uint64
	for vc := metrics.VectorClass(0); vc < metrics.NumVectorClasses; vc++ {
		total += c.InjectLatency[vc].Count()
	}
	if total != c.Injections {
		t.Fatalf("inject latency observations = %d, injections = %d", total, c.Injections)
	}
	if c.InjectLatency[metrics.VecTimer].Count() == 0 {
		t.Fatal("no timer-vector injections histogrammed for a busy periodic guest")
	}
}

// The guest tick-interval histogram should cluster around the tick period
// for a busy periodic guest (250 Hz → 4ms).
func TestTickIntervalHistogramTracksTickPeriod(t *testing.T) {
	rig := newRig(t, core.Periodic, 1)
	rig.vm.Kernel().Spawn("worker", 0, guest.Steps(guest.Compute(100*sim.Millisecond)))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	h := &c.TickInterval
	if h.Count() == 0 {
		t.Fatal("no tick intervals observed")
	}
	// Intervals = ticks - 1 on a single vCPU.
	if h.Count() != c.GuestTicks-1 {
		t.Fatalf("intervals = %d, ticks = %d, want ticks-1", h.Count(), c.GuestTicks)
	}
	period := rig.vm.GuestTickPeriod()
	if p50 := h.P50(); p50 < period/2 || p50 > period*2 {
		t.Fatalf("p50 interval %v not within 2x of period %v", p50, period)
	}
}

// The tracer must see host scheduling transitions (enter/deschedule/wake)
// and durationful exit events.
func TestTraceRecordsSchedEventsAndExitDurations(t *testing.T) {
	rig := newRig(t, core.DynticksIdle, 1)
	tr := trace.NewBuffer(4096)
	rig.host.SetTracer(tr)
	rig.vm.Kernel().Spawn("sleeper", 0, guest.Steps(
		guest.Compute(2*sim.Millisecond),
		guest.Sleep(20*sim.Millisecond),
		guest.Compute(2*sim.Millisecond),
	))
	rig.runUntilDone(t, sim.Second)

	sched := map[string]int{}
	exitsWithDur := 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case trace.KindSched:
			sched[e.Detail]++
		case trace.KindExit:
			if e.Dur > 0 {
				exitsWithDur++
			}
		}
	}
	for _, want := range []string{"enter", "deschedule", "wake"} {
		if sched[want] == 0 {
			t.Errorf("no %q sched events recorded (got %v)", want, sched)
		}
	}
	if exitsWithDur == 0 {
		t.Error("no exit events carry a duration")
	}
}
