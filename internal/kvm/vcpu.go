package kvm

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// VCPUState is a vCPU's host-side scheduling state.
type VCPUState int

const (
	// VCPUStopped has not been started.
	VCPUStopped VCPUState = iota
	// VCPURunnable is queued on its pCPU waiting for a turn.
	VCPURunnable
	// VCPURunning is the pCPU's current vCPU (in guest or in an exit).
	VCPURunning
	// VCPUHalted executed HLT and waits for an interrupt.
	VCPUHalted
)

// String names the state.
func (s VCPUState) String() string {
	names := [...]string{"stopped", "runnable", "running", "halted"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("vcpu-state(%d)", int(s))
}

// VCPU is the host-side representation of a guest CPU — the model's
// kvm_vcpu. The lastVirtualTick field is the last_tick the paper adds in
// §5.1.
type VCPU struct {
	//snap:skip back-pointer wiring, bound at VM construction
	vm *VM
	//snap:skip identity is implicit in the VM's save order
	//reset:keep identity fixed at construction; VM reuse keys on the vCPU count
	id int
	//snap:skip guest-CPU wiring, re-linked to the kernel's vCPU at construction
	//reset:keep wiring to the recycled kernel's vCPU, which stays attached across reuse
	gcpu guestCPU
	pcpu *PCPU

	state   VCPUState
	pending []pendingIRQ
	// pendingSpare is the drained pending buffer awaiting reuse: the
	// injection path double-buffers so draining never reallocates while
	// delivery handlers pend fresh interrupts.
	//snap:skip pool: drained double-buffer, capacity only
	pendingSpare []pendingIRQ

	// node is the scheduling layer's per-entity state; its Key is this
	// vCPU's host-wide creation ordinal.
	node sched.Node

	// guestTimer realizes the guest's TSC-deadline timer: while the vCPU
	// runs, its expiry models a VMX preemption-timer exit; while the vCPU
	// is descheduled or halted it is the host-armed hrtimer.
	guestTimer *hw.DeadlineTimer
	// topUpTimer implements the §4.1 frequency-mismatch extension.
	topUpTimer *hw.DeadlineTimer

	lastVirtualTick sim.Time
	sliceStart      sim.Time
}

// pendingIRQ is one queued interrupt plus the time it was pended, so the
// injection path can histogram pend-to-delivery latency per vector class.
type pendingIRQ struct {
	vec   hw.Vector
	since sim.Time
}

// guestCPU is what the hypervisor needs from a guest vCPU; implemented by
// *guest.VCPU. Narrowing it to an interface keeps the dependency one-way
// and makes the run loop testable with scripted guests.
type guestCPU interface {
	Boot()
	Next() *guestSegment
	Deliver(vec hw.Vector)
	Preempt(seg *guestSegment, remaining sim.Time)
	ShouldHalt() bool
}

// reset returns a pooled vCPU to its just-constructed state on a (possibly
// different) pCPU with a fresh scheduler ordinal. The deadline timers are
// reset in place onto the VM's current lane engine — their expiry handlers
// were pre-bound at construction and receive the dispatching engine as an
// argument, so rebinding lanes costs nothing.
//
//paratick:noalloc
func (v *VCPU) reset(pcpu *PCPU, key uint64) {
	v.pcpu = pcpu
	v.state = VCPUStopped
	v.pending = v.pending[:0]
	v.pendingSpare = v.pendingSpare[:0]
	v.node = sched.Node{Key: key}
	v.guestTimer.Reset(v.vm.engine)
	v.topUpTimer.Reset(v.vm.engine)
	v.lastVirtualTick = 0
	v.sliceStart = 0
}

// ID returns the vCPU index within its VM.
func (v *VCPU) ID() int { return v.id }

// VM returns the owning VM.
func (v *VCPU) VM() *VM { return v.vm }

// State returns the scheduling state.
func (v *VCPU) State() VCPUState { return v.state }

// PCPU returns the physical CPU this vCPU currently calls home: its pinned
// placement under sched.FIFO, or the last pCPU that dispatched it when the
// policy migrates vCPUs (sched.Fair work stealing).
func (v *VCPU) PCPU() *PCPU { return v.pcpu }

// SchedNode exposes the scheduler-owned state (sched.Entity).
func (v *VCPU) SchedNode() *sched.Node { return &v.node }

// PendingIRQs returns a copy of the pending vector list.
func (v *VCPU) PendingIRQs() []hw.Vector {
	out := make([]hw.Vector, len(v.pending))
	for i, p := range v.pending {
		out[i] = p.vec
	}
	return out
}

// pendIRQ queues vec for injection (deduplicated, like the LAPIC IRR) and
// wakes or interrupts the vCPU as its state demands.
func (v *VCPU) pendIRQ(vec hw.Vector) {
	for _, p := range v.pending {
		if p.vec == vec {
			// Already pending; hardware coalesces.
			v.reactToIRQ()
			return
		}
	}
	v.pending = append(v.pending, pendingIRQ{vec: vec, since: v.Now()})
	v.reactToIRQ()
}

func (v *VCPU) reactToIRQ() {
	switch v.state {
	case VCPUHalted:
		v.pcpu.wake(v)
	case VCPURunning:
		v.pcpu.interruptIfInGuest(v)
	case VCPURunnable, VCPUStopped:
		// Delivered at next entry.
	}
}

// queuePendingNoReact queues a vector without triggering wake/interrupt
// handling — used when the caller performs the exit itself.
func (v *VCPU) queuePendingNoReact(vec hw.Vector) {
	for _, p := range v.pending {
		if p.vec == vec {
			return
		}
	}
	v.pending = append(v.pending, pendingIRQ{vec: vec, since: v.Now()})
}

// hasPending reports whether any interrupt is queued.
func (v *VCPU) hasPending() bool { return len(v.pending) > 0 }

// drainPending empties and returns the pending interrupts, swapping in the
// spare buffer so delivery handlers can pend new interrupts while the
// caller iterates the drained ones. The caller hands the drained slice back
// via recyclePending once done.
//
//paratick:noalloc
func (v *VCPU) drainPending() []pendingIRQ {
	out := v.pending
	v.pending = v.pendingSpare
	v.pendingSpare = nil
	return out
}

// recyclePending returns a slice obtained from drainPending to the spare
// buffer for the next drain.
//
//paratick:noalloc
func (v *VCPU) recyclePending(drained []pendingIRQ) {
	v.pendingSpare = drained[:0]
}

// onGuestTimer fires when the guest's armed deadline passes.
func (v *VCPU) onGuestTimer(now sim.Time) {
	switch v.state {
	case VCPURunning:
		// Expiry hits a running vCPU: KVM's preemption-timer exit (§3).
		v.pcpu.preemptTimerExit(v)
	default:
		// Host hrtimer on behalf of a descheduled/halted vCPU: queue the
		// interrupt (wakes a halted vCPU). If another vCPU currently
		// occupies this pCPU, the physical timer interrupt suspends it —
		// the §3.1 overcommit cost: "the running vCPU is suspended
		// whenever a tick interrupt arrives for a descheduled vCPU".
		victim := v.pcpu.current
		v.pendLocalTimer()
		if victim != nil && victim != v {
			v.pcpu.timerStealExit(victim)
		}
	}
}

func (v *VCPU) pendLocalTimer() {
	v.pendIRQ(hw.LocalTimerVector)
}

// onTopUpTimer fires the §4.1 top-up deadline: a bare preemption-timer exit
// that forces a VM entry, so the paratick hook observes the elapsed guest
// tick period and injects the due virtual tick. Unlike the guest's own
// deadline timer, no local-timer vector is queued — this timer is
// host-internal.
func (v *VCPU) onTopUpTimer(now sim.Time) {
	if v.state == VCPURunning {
		v.pcpu.forceEntryExit(v)
	}
	// Halted/descheduled vCPUs don't need top-up ticks.
}

// --- core.HostVCPU implementation (the Fig. 2 hook surface) ---------------

// Now returns current simulated time on the VM's lane (mid-quantum, only
// the vCPU's own lane clock is coherent to read).
func (v *VCPU) Now() sim.Time { return v.vm.engine.Now() }

// GuestTickPeriod returns the declared guest tick period.
func (v *VCPU) GuestTickPeriod() sim.Time { return v.vm.GuestTickPeriod() }

// HostTickPeriod returns the host scheduler-tick period.
func (v *VCPU) HostTickPeriod() sim.Time { return v.vm.host.cfg.HostTickPeriod() }

// HasPendingLocalTimer reports a queued local-timer interrupt.
func (v *VCPU) HasPendingLocalTimer() bool {
	for _, p := range v.pending {
		if p.vec == hw.LocalTimerVector {
			return true
		}
	}
	return false
}

// InjectVirtualTick queues the vector-235 virtual tick.
func (v *VCPU) InjectVirtualTick() {
	v.vm.counters.VirtualTicks++
	if tr := v.vm.host.tracerFor(v.vm.lane); tr != nil {
		tr.Record(trace.Event{
			When: v.Now(), Kind: trace.KindVirtualTick, PCPU: int(v.pcpu.id),
			VM: v.vm.name, VCPU: v.id, Detail: "vector-235",
		})
	}
	for _, p := range v.pending {
		if p.vec == hw.ParatickVector {
			return
		}
	}
	v.pending = append(v.pending, pendingIRQ{vec: hw.ParatickVector, since: v.Now()})
}

// LastVirtualTick returns the §5.1 last_tick field.
func (v *VCPU) LastVirtualTick() sim.Time { return v.lastVirtualTick }

// SetLastVirtualTick records a tick injection.
func (v *VCPU) SetLastVirtualTick(t sim.Time) { v.lastVirtualTick = t }

// ArmTopUpTimer programs the §4.1 top-up deadline.
func (v *VCPU) ArmTopUpTimer(deadline sim.Time) {
	if v.topUpTimer.Armed() && v.topUpTimer.Deadline() <= deadline {
		return
	}
	v.topUpTimer.Arm(deadline)
}

var _ core.HostVCPU = (*VCPU)(nil)
