package kvm

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/sim"
)

// testRig is a host with one VM, ready for task spawning.
type testRig struct {
	engine *sim.Engine
	host   *Host
	vm     *VM
}

func newRig(t *testing.T, mode core.Mode, vcpus int) *testRig {
	t.Helper()
	engine := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology() // 16 pCPUs
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	gcfg.Mode = mode
	placement := make([]hw.CPUID, vcpus)
	for i := range placement {
		placement[i] = hw.CPUID(i)
	}
	vm, err := host.NewVM("test", gcfg, placement)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{engine: engine, host: host, vm: vm}
}

// runUntilDone starts the VM and runs until its workload finishes (or the
// deadline passes, which fails the test).
func (r *testRig) runUntilDone(t *testing.T, deadline sim.Time) sim.Time {
	t.Helper()
	r.vm.OnWorkloadDone = func(sim.Time) { r.engine.Stop() }
	r.vm.Start()
	r.engine.RunUntil(deadline)
	done, at := r.vm.WorkloadDone()
	if !done {
		t.Fatalf("workload not done by %v; live tasks: %d", deadline, r.vm.Kernel().LiveTasks())
	}
	return at
}

func TestHostConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	bad := DefaultConfig()
	bad.HostHz = 0
	if _, err := NewHost(e, bad); err == nil {
		t.Error("HostHz=0 accepted")
	}
	bad = DefaultConfig()
	bad.Timeslice = 0
	if _, err := NewHost(e, bad); err == nil {
		t.Error("Timeslice=0 accepted")
	}
	bad = DefaultConfig()
	bad.HaltPoll = -1
	if _, err := NewHost(e, bad); err == nil {
		t.Error("negative HaltPoll accepted")
	}
	if _, err := NewHost(nil, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestNewVMValidation(t *testing.T) {
	e := sim.NewEngine(1)
	h, err := NewHost(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewVM("x", guest.DefaultConfig(), nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := h.NewVM("x", guest.DefaultConfig(), []hw.CPUID{999}); err == nil {
		t.Error("out-of-range placement accepted")
	}
	bad := guest.DefaultConfig()
	bad.TickHz = 0
	if _, err := h.NewVM("x", bad, []hw.CPUID{0}); err == nil {
		t.Error("bad guest config accepted")
	}
}

func TestComputeTaskCompletes(t *testing.T) {
	for _, mode := range []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick} {
		t.Run(mode.String(), func(t *testing.T) {
			rig := newRig(t, mode, 1)
			const work = 50 * sim.Millisecond
			rig.vm.Kernel().Spawn("worker", 0, guest.Steps(guest.Compute(work)))
			at := rig.runUntilDone(t, sim.Second)
			if at < work {
				t.Fatalf("finished at %v before the work amount %v", at, work)
			}
			// Completion should be within ~20% of the pure compute time
			// (overheads are microseconds per tick).
			if at > work*12/10 {
				t.Fatalf("finished at %v, way beyond work %v", at, work)
			}
			c := rig.vm.Counters()
			if c.GuestUseful != work {
				t.Fatalf("useful cycles = %v, want %v", c.GuestUseful, work)
			}
			if c.TotalExits() == 0 {
				t.Fatal("no VM exits recorded")
			}
		})
	}
}

func TestPeriodicBusyTickExits(t *testing.T) {
	// §3.1: a busy periodic guest takes 2 timer-related exits per tick
	// (MSR write + preemption-timer expiry). 250 Hz for 100ms ≈ 25 ticks.
	rig := newRig(t, core.Periodic, 1)
	rig.vm.Kernel().Spawn("worker", 0, guest.Steps(guest.Compute(100*sim.Millisecond)))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	ticks := float64(c.GuestTicks)
	if ticks < 20 || ticks > 30 {
		t.Fatalf("guest ticks = %v, want ~25", ticks)
	}
	timerExits := float64(c.TimerExits())
	if timerExits < 2*ticks*0.9 || timerExits > 2*ticks*1.1+2 {
		t.Fatalf("timer exits = %v for %v ticks, want ~2 per tick", timerExits, ticks)
	}
}

func TestParatickBusyReceivesVirtualTicks(t *testing.T) {
	// A busy paratick vCPU gets its ticks injected on host-tick induced
	// entries: ~250 virtual ticks/s and ~zero timer exits.
	rig := newRig(t, core.Paratick, 1)
	rig.vm.Kernel().Spawn("worker", 0, guest.Steps(guest.Compute(100*sim.Millisecond)))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	if c.VirtualTicks < 20 || c.VirtualTicks > 30 {
		t.Fatalf("virtual ticks = %d over 100ms at 250 Hz, want ~25", c.VirtualTicks)
	}
	if c.GuestTicks < 20 {
		t.Fatalf("guest tick work ran %d times, want ~25", c.GuestTicks)
	}
	if c.TimerExits() > 2 {
		t.Fatalf("paratick busy guest had %d timer exits, want ~0", c.TimerExits())
	}
	// The guest declared its frequency via hypercall at boot.
	if rig.vm.DeclaredTickHz() != 250 {
		t.Fatalf("declared tick hz = %d, want 250", rig.vm.DeclaredTickHz())
	}
	if c.Exits[1]+c.Exits[0] != c.TimerExits() {
		t.Fatal("timer exit classification inconsistent")
	}
}

func TestIdleVMExitRates(t *testing.T) {
	// Table 1's W1 in miniature: an idle VM. Periodic keeps paying 2 exits
	// per tick per vCPU; dynticks and paratick go fully quiescent.
	const dur = sim.Second
	exits := map[core.Mode]uint64{}
	for _, mode := range []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick} {
		rig := newRig(t, mode, 2)
		rig.vm.Start()
		rig.engine.RunUntil(dur)
		exits[mode] = rig.vm.Counters().TotalExits()
	}
	// Periodic: 2 vCPUs × 250 ticks × 2 exits per tick (the §3.1 formula):
	// the halted vCPU wakes for its tick, re-arms (MSR exit), and halts
	// again (HLT exit); expiry itself costs no exit while descheduled.
	if exits[core.Periodic] < 900 || exits[core.Periodic] > 1200 {
		t.Errorf("periodic idle exits = %d, want ~1000 (2/tick/vCPU)", exits[core.Periodic])
	}
	// Dynticks/paratick: only boot-time activity.
	if exits[core.DynticksIdle] > 20 {
		t.Errorf("dynticks idle exits = %d, want ~boot-only", exits[core.DynticksIdle])
	}
	if exits[core.Paratick] > 20 {
		t.Errorf("paratick idle exits = %d, want ~boot-only", exits[core.Paratick])
	}
}

func TestSleepWakesOnTime(t *testing.T) {
	for _, mode := range []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick} {
		t.Run(mode.String(), func(t *testing.T) {
			rig := newRig(t, mode, 1)
			const nap = 20 * sim.Millisecond
			rig.vm.Kernel().Spawn("sleeper", 0, guest.Steps(
				guest.Compute(sim.Millisecond),
				guest.Sleep(nap),
				guest.Compute(sim.Millisecond),
			))
			at := rig.runUntilDone(t, sim.Second)
			// Must not wake early; wheel granularity is one tick period
			// (4ms), so allow two periods of slack plus overheads.
			if at < nap {
				t.Fatalf("finished at %v, before the %v sleep elapsed", at, nap)
			}
			if at > nap+10*sim.Millisecond {
				t.Fatalf("finished at %v, sleep overshoot too large", at)
			}
		})
	}
}

func TestTwoTasksShareOneVCPU(t *testing.T) {
	// Round-robin preemption from the tick: two CPU hogs on one vCPU both
	// finish, in roughly double the single-task time.
	rig := newRig(t, core.DynticksIdle, 1)
	const work = 40 * sim.Millisecond
	rig.vm.Kernel().Spawn("a", 0, guest.Steps(guest.Compute(work)))
	rig.vm.Kernel().Spawn("b", 0, guest.Steps(guest.Compute(work)))
	at := rig.runUntilDone(t, sim.Second)
	if at < 2*work {
		t.Fatalf("two tasks of %v finished at %v", work, at)
	}
	if at > 2*work*12/10 {
		t.Fatalf("excessive overhead: finished at %v", at)
	}
	c := rig.vm.Counters()
	if c.ContextSw < 10 {
		t.Fatalf("context switches = %d, want ≥10 (tick preemption)", c.ContextSw)
	}
}

func TestCrossVCPULockHandoffUsesIPIs(t *testing.T) {
	// Task A on vCPU0 holds a lock task B on vCPU1 wants; the release
	// must wake B through a reschedule IPI.
	rig := newRig(t, core.DynticksIdle, 2)
	k := rig.vm.Kernel()
	l := k.NewLock("l")
	k.Spawn("holder", 0, guest.Steps(
		guest.Acquire(l),
		guest.Compute(10*sim.Millisecond),
		guest.Release(l),
		guest.Compute(sim.Millisecond),
	))
	k.Spawn("waiter", 1, guest.Steps(
		guest.Compute(sim.Millisecond), // lose the race for the lock
		guest.Acquire(l),
		guest.Compute(sim.Millisecond),
		guest.Release(l),
	))
	rig.runUntilDone(t, sim.Second)
	c := rig.vm.Counters()
	if c.Exits[5] == 0 { // ExitIPI
		t.Fatalf("no IPI exits despite cross-vCPU handoff; exits: %v", c.Exits)
	}
	if c.Wakeups == 0 {
		t.Fatal("no wakeups recorded")
	}
	if l.Contended() == 0 {
		t.Fatal("lock was never contended — test premise broken")
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	rig := newRig(t, core.Paratick, 4)
	k := rig.vm.Kernel()
	b := k.NewBarrier("phase", 4)
	for i := 0; i < 4; i++ {
		k.Spawn("t", i, guest.Steps(
			guest.Compute(sim.Time(i+1)*sim.Millisecond), // staggered arrivals
			guest.JoinBarrier(b),
			guest.Compute(sim.Millisecond),
		))
	}
	rig.runUntilDone(t, sim.Second)
	if b.Cycles() != 1 {
		t.Fatalf("barrier cycles = %d, want 1", b.Cycles())
	}
	if b.Waiting() != 0 {
		t.Fatalf("barrier still has %d waiters", b.Waiting())
	}
}

func TestSyncIOCompletes(t *testing.T) {
	for _, mode := range []core.Mode{core.DynticksIdle, core.Paratick} {
		t.Run(mode.String(), func(t *testing.T) {
			rig := newRig(t, mode, 1)
			dev, err := rig.vm.AttachDevice("nvme0", iodev.NVMe())
			if err != nil {
				t.Fatal(err)
			}
			const ops = 50
			steps := make([]guest.Step, 0, ops)
			for i := 0; i < ops; i++ {
				steps = append(steps, guest.Read(dev, 4096, false))
			}
			rig.vm.Kernel().Spawn("fio", 0, guest.Steps(steps...))
			rig.runUntilDone(t, sim.Second)
			c := rig.vm.Counters()
			if c.IOReads != ops {
				t.Fatalf("completed reads = %d, want %d", c.IOReads, ops)
			}
			if c.IOBytesRead != ops*4096 {
				t.Fatalf("bytes read = %d", c.IOBytesRead)
			}
			if got := c.Exits[4]; got != ops { // ExitIOKick
				t.Fatalf("io-kick exits = %d, want %d", got, ops)
			}
			if dev.Ops() != ops {
				t.Fatalf("device ops = %d", dev.Ops())
			}
		})
	}
}

func TestIOTimerExitsParatickVsDynticks(t *testing.T) {
	// The §6.3 mechanism: each sync I/O blocks the task, so dynticks pays
	// MSR writes on idle entry and exit; paratick pays almost none.
	run := func(mode core.Mode) *VM {
		rig := newRig(t, mode, 1)
		dev, err := rig.vm.AttachDevice("nvme0", iodev.NVMe())
		if err != nil {
			t.Fatal(err)
		}
		steps := make([]guest.Step, 0, 200)
		for i := 0; i < 200; i++ {
			steps = append(steps, guest.Compute(2*sim.Microsecond), guest.Read(dev, 4096, false))
		}
		rig.vm.Kernel().Spawn("fio", 0, guest.Steps(steps...))
		rig.runUntilDone(t, 10*sim.Second)
		return rig.vm
	}
	dyn := run(core.DynticksIdle).Counters()
	par := run(core.Paratick).Counters()
	if par.TimerExits() >= dyn.TimerExits() {
		t.Fatalf("paratick timer exits (%d) not below dynticks (%d)",
			par.TimerExits(), dyn.TimerExits())
	}
	if par.TotalExits() >= dyn.TotalExits() {
		t.Fatalf("paratick total exits (%d) not below dynticks (%d)",
			par.TotalExits(), dyn.TotalExits())
	}
	// Dynticks pays ~2 MSR writes per op (idle entry defer/stop + idle
	// exit re-arm); with 200 ops expect hundreds of timer exits.
	if dyn.TimerExits() < 300 {
		t.Fatalf("dynticks timer exits = %d, expected ≥300 for 200 sync ops", dyn.TimerExits())
	}
}

func TestOvercommitBothVMsProgress(t *testing.T) {
	// Two 1-vCPU VMs pinned to the same pCPU: time sharing must let both
	// finish, in roughly the sum of their compute times.
	engine := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := guest.DefaultConfig()
	var vms []*VM
	for i := 0; i < 2; i++ {
		vm, err := host.NewVM("vm", gcfg, []hw.CPUID{0}) // both on pCPU 0
		if err != nil {
			t.Fatal(err)
		}
		vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(30*sim.Millisecond)))
		vms = append(vms, vm)
	}
	for _, vm := range vms {
		vm.Start()
	}
	engine.RunUntil(sim.Second)
	for i, vm := range vms {
		done, at := vm.WorkloadDone()
		if !done {
			t.Fatalf("VM %d did not finish", i)
		}
		if at < 30*sim.Millisecond {
			t.Fatalf("VM %d finished impossibly fast at %v", i, at)
		}
	}
	// The second finisher needed both compute slices.
	_, at0 := vms[0].WorkloadDone()
	_, at1 := vms[1].WorkloadDone()
	later := sim.MaxTime(at0, at1)
	if later < 60*sim.Millisecond {
		t.Fatalf("later VM finished at %v, impossible for 2×30ms on one pCPU", later)
	}
	if later > 80*sim.Millisecond {
		t.Fatalf("later VM finished at %v, overhead too large", later)
	}
}

func TestHaltPollingAvoidsSchedDelay(t *testing.T) {
	// With halt polling enabled and a wake arriving inside the window, the
	// vCPU resumes without the descheduling round trip; the polling cycles
	// are charged as host overhead.
	mk := func(haltPoll sim.Time) (sim.Time, *VM) {
		engine := sim.NewEngine(42)
		cfg := DefaultConfig()
		cfg.Topology = hw.SmallTopology()
		cfg.HaltPoll = haltPoll
		host, err := NewHost(engine, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := host.NewVM("vm", guest.DefaultConfig(), []hw.CPUID{0})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := vm.AttachDevice("nvme0", iodev.NVMe())
		if err != nil {
			t.Fatal(err)
		}
		var steps []guest.Step
		for i := 0; i < 100; i++ {
			steps = append(steps, guest.Read(dev, 4096, false))
		}
		vm.Kernel().Spawn("fio", 0, guest.Steps(steps...))
		vm.OnWorkloadDone = func(sim.Time) { engine.Stop() }
		vm.Start()
		engine.RunUntil(sim.Second)
		done, at := vm.WorkloadDone()
		if !done {
			t.Fatal("workload incomplete")
		}
		return at, vm
	}
	atNoPoll, _ := mk(0)
	atPoll, vmPoll := mk(100 * sim.Microsecond)
	if atPoll >= atNoPoll {
		t.Fatalf("halt polling did not reduce latency: %v vs %v", atPoll, atNoPoll)
	}
	if vmPoll.Counters().HostOverhead == 0 {
		t.Fatal("polling burned no cycles?")
	}
}

func TestVMResultSnapshot(t *testing.T) {
	rig := newRig(t, core.Paratick, 1)
	rig.vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(5*sim.Millisecond)))
	at := rig.runUntilDone(t, sim.Second)
	res := rig.vm.Result("unit")
	if res.Name != "unit" || res.Mode != "paratick" {
		t.Fatalf("result identity: %+v", res)
	}
	if res.WallTime != at {
		t.Fatalf("wall time %v != completion %v", res.WallTime, at)
	}
	if res.Counters.GuestUseful != 5*sim.Millisecond {
		t.Fatalf("useful = %v", res.Counters.GuestUseful)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, uint64) {
		rig := &testRig{}
		rig.engine = sim.NewEngine(1234)
		cfg := DefaultConfig()
		cfg.Topology = hw.SmallTopology()
		host, err := NewHost(rig.engine, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := host.NewVM("d", guest.DefaultConfig(), []hw.CPUID{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		l := vm.Kernel().NewLock("l")
		for i := 0; i < 2; i++ {
			vm.Kernel().Spawn("w", i, guest.Steps(
				guest.Compute(sim.Millisecond),
				guest.Acquire(l),
				guest.Compute(100*sim.Microsecond),
				guest.Release(l),
				guest.Compute(sim.Millisecond),
			))
		}
		vm.OnWorkloadDone = func(sim.Time) { rig.engine.Stop() }
		vm.Start()
		rig.engine.RunUntil(sim.Second)
		_, at := vm.WorkloadDone()
		return at, vm.Counters().TotalExits()
	}
	a1, e1 := run()
	a2, e2 := run()
	if a1 != a2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", a1, e1, a2, e2)
	}
}

func TestVCPUStateString(t *testing.T) {
	if VCPUStopped.String() != "stopped" || VCPURunning.String() != "running" ||
		VCPUHalted.String() != "halted" || VCPURunnable.String() != "runnable" {
		t.Error("state names wrong")
	}
	if VCPUState(9).String() != "vcpu-state(9)" {
		t.Error("unknown state name wrong")
	}
}

func TestStartTwicePanics(t *testing.T) {
	rig := newRig(t, core.DynticksIdle, 1)
	rig.vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(sim.Millisecond)))
	rig.vm.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	rig.vm.Start()
}

func TestConfigPLEValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.PLEWindow = -1
	if _, err := NewHost(sim.NewEngine(1), bad); err == nil {
		t.Error("negative PLEWindow accepted")
	}
}

func TestGuestConfigAdaptiveSpinValidation(t *testing.T) {
	e := sim.NewEngine(1)
	h, err := NewHost(e, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := guest.DefaultConfig()
	bad.AdaptiveSpin = -1
	if _, err := h.NewVM("x", bad, []hw.CPUID{0}); err == nil {
		t.Error("negative AdaptiveSpin accepted")
	}
}

func TestHostTickPeriodHelper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HostTickPeriod() != 4*sim.Millisecond {
		t.Fatalf("host tick period = %v", cfg.HostTickPeriod())
	}
}

func TestMultiVMIsolatedCounters(t *testing.T) {
	// Two VMs on separate pCPUs must not leak exits into each other's
	// counters.
	engine := sim.NewEngine(7)
	cfg := DefaultConfig()
	cfg.Topology = hw.SmallTopology()
	host, err := NewHost(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := host.NewVM("busy", guest.DefaultConfig(), []hw.CPUID{0})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := host.NewVM("quiet", guest.DefaultConfig(), []hw.CPUID{1})
	if err != nil {
		t.Fatal(err)
	}
	busy.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(100*sim.Millisecond)))
	busy.Start()
	quiet.Start()
	engine.RunUntil(150 * sim.Millisecond)
	if busy.Counters().TotalExits() < 50 {
		t.Fatalf("busy VM exits = %d", busy.Counters().TotalExits())
	}
	// The quiet dynticks VM quiesces after boot: nothing from the busy VM
	// may appear in its counters.
	if quiet.Counters().TotalExits() > 10 {
		t.Fatalf("quiet VM absorbed %d exits", quiet.Counters().TotalExits())
	}
	if quiet.Counters().GuestUseful != 0 {
		t.Fatal("quiet VM charged useful cycles")
	}
}
