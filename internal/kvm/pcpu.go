package kvm

import (
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// guestSegment aliases the guest's execution unit; the hypervisor executes
// these.
type guestSegment = guest.Segment

// PCPU is one physical CPU: it runs at most one vCPU at a time, fires the
// host scheduler tick, and executes the current vCPU's segment stream,
// charging exit costs as they occur.
type PCPU struct {
	//snap:skip back-pointer wiring, bound at host construction
	//reset:keep back-pointer to the owning host, wired once at construction
	host *Host
	//reset:keep identity fixed at construction; the pooled host keeps its pCPU set
	id hw.CPUID
	// engine is the pCPU's lane engine (its socket's shard); every event
	// this pCPU schedules and every random draw it makes goes through its
	// lane, which is what keeps shard execution race-free and the outcome
	// independent of the shard count.
	//snap:skip lane-engine wiring, re-derived from the topology at construction
	engine *sim.Engine
	//snap:skip lane index, re-derived from the topology at construction
	//reset:keep lane index fixed by the topology, which the host pool keys on
	lane int
	tick *hw.PeriodicTimer

	current *VCPU

	// seg is the in-flight segment: a SegRun in guest context, or any
	// other kind while the host handles its exit. nil while the host is in
	// scheduling/interrupt bookkeeping.
	seg      *guestSegment
	segEvent sim.Event
	segStart sim.Time

	polling         bool
	pollStart       sim.Time
	pollEvent       sim.Event
	dispatchPending bool
	// wakeEvent is the pending wake-to-dispatch delay event scheduled by
	// wake(); held so a snapshot can re-arm it at its original coordinates.
	wakeEvent sim.Event

	// irqExpire carries interruptGuest's expire-slice decision to irqDone.
	irqExpire bool

	// Pre-bound completion handlers, created once in bindHandlers: the
	// exec/exit/halt/wake paths schedule millions of events per run, and a
	// closure literal at each schedule site was the dominant allocation in
	// the whole experiment layer.
	//snap:skip pre-bound handler, recreated by bindHandlers
	runDoneFn sim.Handler
	//snap:skip pre-bound handler, recreated by bindHandlers
	exitDoneFn sim.Handler
	//snap:skip pre-bound handler, recreated by bindHandlers
	hltDoneFn sim.Handler
	//snap:skip pre-bound handler, recreated by bindHandlers
	pollDoneFn sim.Handler
	//snap:skip pre-bound handler, recreated by bindHandlers
	wakeupFn sim.Handler
	//snap:skip pre-bound handler, recreated by bindHandlers
	irqDoneFn sim.Handler
}

// bindHandlers installs the pCPU's pre-bound event handlers. Called once at
// construction; every handler reads the in-flight state (p.current, p.seg,
// p.irqExpire) from the struct instead of a per-event closure environment.
// That state is stable across the host-side handling window: p.current only
// changes in deschedule/dispatch paths that run strictly after these
// handlers, and wake-side paths re-check it.
func (p *PCPU) bindHandlers() {
	p.runDoneFn = func(*sim.Engine) { p.runDone() }
	p.exitDoneFn = func(*sim.Engine) { p.exitDone() }
	p.hltDoneFn = func(*sim.Engine) { p.hltDone() }
	p.pollDoneFn = func(*sim.Engine) { p.pollDone() }
	p.wakeupFn = func(*sim.Engine) {
		p.wakeEvent = sim.Event{}
		p.dispatchPending = false
		p.maybeDispatch()
	}
	p.irqDoneFn = func(*sim.Engine) { p.irqDone() }
}

// ID returns the physical CPU id.
func (p *PCPU) ID() hw.CPUID { return p.id }

// Current returns the vCPU currently owning this pCPU (nil when idle).
func (p *PCPU) Current() *VCPU { return p.current }

// RunQueueLen returns the number of runnable vCPUs waiting for this pCPU.
func (p *PCPU) RunQueueLen() int { return p.host.sched.QueueLen(p.id) }

func (p *PCPU) cost() *hw.CostModel { return &p.host.cost }

// traceEvent records into the host tracer (no-op when tracing is off).
func (p *PCPU) traceEvent(kind trace.Kind, v *VCPU, detail string) {
	p.traceSpan(kind, v, detail, 0)
}

// traceSpan records a durationful event — an exit whose handling occupies
// the pCPU for dur — so the Chrome export renders it as a timeline slice.
func (p *PCPU) traceSpan(kind trace.Kind, v *VCPU, detail string, dur sim.Time) {
	t := p.host.tracerFor(p.lane)
	if t == nil {
		return
	}
	t.Record(trace.Event{
		When: p.now(), Kind: kind, PCPU: int(p.id),
		VM: v.vm.name, VCPU: v.id, Detail: detail, Dur: dur,
	})
}

func (p *PCPU) now() sim.Time { return p.engine.Now() }

func (p *PCPU) enqueue(v *VCPU) {
	v.state = VCPURunnable
	p.host.sched.Enqueue(p.id, v, p.now())
}

// maybeDispatch asks the scheduler for the next runnable vCPU if the pCPU is
// free. The policy may hand back a vCPU stolen from a sibling queue; the
// vCPU is re-homed here (a no-op self-assignment under FIFO, which never
// migrates).
func (p *PCPU) maybeDispatch() {
	if p.current != nil || p.dispatchPending {
		return
	}
	e := p.host.sched.PickNext(p.id, p.now())
	if e == nil {
		return
	}
	v := e.(*VCPU)
	v.pcpu = p
	v.vm.counters.HostOverhead += p.cost().HostSchedSwitch
	p.enter(v)
}

func (p *PCPU) enter(v *VCPU) {
	v.state = VCPURunning
	v.sliceStart = p.now()
	p.current = v
	p.traceEvent(trace.KindSched, v, "enter")
	p.execNext()
}

// execNext performs one VM entry — entry hook, pending-interrupt injection
// — then fetches and executes the next guest segment.
func (p *PCPU) execNext() { p.exec(true) }

// continueGuest fetches the next segment without a VM entry: the previous
// run segment completed naturally and the guest simply keeps executing.
// (A pending interrupt still forces entry semantics — hardware would exit.)
func (p *PCPU) continueGuest() { p.exec(false) }

func (p *PCPU) exec(entry bool) {
	v := p.current
	if v == nil {
		p.maybeDispatch()
		return
	}
	if entry || v.hasPending() {
		if hook := v.vm.hook; hook != nil {
			hook.OnVMEntry(v)
		}
	}
	if v.hasPending() {
		irqs := v.drainPending()
		cnt := v.vm.counters
		cnt.Injections += uint64(len(irqs))
		cnt.HostOverhead += p.cost().InjectIRQ
		now := p.now()
		for _, irq := range irqs {
			cnt.InjectLatency[vectorClass(irq.vec)].Observe(now - irq.since)
			p.traceEvent(trace.KindInject, v, irq.vec.String())
			v.gcpu.Deliver(irq.vec)
		}
		v.recyclePending(irqs)
	}
	seg := v.gcpu.Next()
	p.seg = seg
	p.segStart = p.now()
	c := p.cost()
	switch seg.Kind {
	case guest.SegRun:
		if seg.Spin {
			p.chargePLE(v, seg)
		}
		p.segEvent = p.engine.After(seg.Duration, "pcpu-run", p.runDoneFn)

	case guest.SegMSRWrite:
		p.atomic(metrics.ExitMSRWrite, c.ExitMSRWrite+c.HostTimerArm)

	case guest.SegHLT:
		if !v.gcpu.ShouldHalt() {
			// need_resched raced ahead of HLT: abort the halt.
			p.seg = nil
			p.execNext()
			return
		}
		p.halt(v)

	case guest.SegIOSubmit:
		p.atomic(metrics.ExitIOKick, c.ExitIOKick)

	case guest.SegIPI:
		p.atomic(metrics.ExitIPI, p.ipiCost(v, seg.Target))

	case guest.SegHypercall:
		p.atomic(metrics.ExitHypercall, c.ExitHypercall)

	default:
		panic("kvm: unknown segment kind")
	}
}

// chargePLE accounts pause-loop exits for a spin segment: one exit per
// elapsed PLE window. (The spin still runs its full duration; PLE's yield
// benefit matters only under overcommit, which is exactly the paper's
// argument for disabling it otherwise.)
func (p *PCPU) chargePLE(v *VCPU, seg *guestSegment) {
	w := p.host.cfg.PLEWindow
	if w <= 0 {
		return
	}
	n := int64(seg.Duration / w)
	cnt := v.vm.counters
	perExit := p.cost().ExitPLE
	for i := int64(0); i < n; i++ {
		cnt.AddExit(metrics.ExitPLE)
		cnt.ExitCost[metrics.ExitPLE].Observe(perExit)
	}
	cnt.HostOverhead += sim.Time(n) * perExit
}

// ipiCost prices a wakeup IPI, taxing cross-socket delivery.
func (p *PCPU) ipiCost(v *VCPU, target int) sim.Time {
	c := p.cost().ExitIPI
	topo := p.host.cfg.Topology
	tgt := v.vm.vcpus[target].pcpu.id
	if !topo.SameSocket(p.id, tgt) {
		c = sim.Time(float64(c) * topo.CrossSocketTax)
	}
	return c
}

// runDone completes a guest-run segment.
func (p *PCPU) runDone() {
	v := p.current
	seg := p.seg
	p.seg = nil
	p.segEvent = sim.Event{}
	p.chargeRun(v, seg, seg.Duration)
	if seg.OnDone != nil {
		seg.OnDone()
	}
	p.continueGuest()
}

func (p *PCPU) chargeRun(v *VCPU, seg *guestSegment, d sim.Time) {
	if d <= 0 {
		return
	}
	if seg.Kernel {
		v.vm.counters.GuestKernel += d
	} else {
		v.vm.counters.GuestUseful += d
	}
}

// atomic executes a non-run segment: a VM exit of the given reason whose
// handling occupies the pCPU for hostCost; exitDone then applies its
// effect from the segment fields.
func (p *PCPU) atomic(reason metrics.ExitReason, hostCost sim.Time) {
	v := p.current
	cnt := v.vm.counters
	cnt.AddExit(reason)
	cnt.HostOverhead += hostCost
	cnt.ExitCost[reason].Observe(hostCost)
	p.traceSpan(trace.KindExit, v, reason.String(), hostCost)
	p.segEvent = p.engine.After(hostCost, "pcpu-exit", p.exitDoneFn)
}

// exitDone completes an atomic (non-run, non-HLT) exit: the host-side
// handling window has elapsed, so apply the segment's architectural effect
// and re-enter the guest.
func (p *PCPU) exitDone() {
	v := p.current
	seg := p.seg
	p.seg = nil
	p.segEvent = sim.Event{}
	switch seg.Kind {
	case guest.SegMSRWrite:
		if seg.Deadline == sim.Forever {
			v.guestTimer.Cancel()
		} else {
			v.guestTimer.Arm(seg.Deadline)
		}
	case guest.SegIOSubmit:
		seg.Dev.Submit(seg.Req)
	case guest.SegIPI:
		v.vm.vcpus[seg.Target].pendIRQ(hw.RescheduleVector)
	case guest.SegHypercall:
		v.vm.applyHypercall(seg.HKind, seg.HArg)
	default:
		panic("kvm: atomic exit with unexpected segment kind")
	}
	p.execNext()
}

// halt processes a SegHLT: the HLT exit, then either halt polling or
// descheduling.
func (p *PCPU) halt(v *VCPU) {
	c := p.cost()
	cnt := v.vm.counters
	cnt.AddExit(metrics.ExitHLT)
	cnt.HostOverhead += c.ExitHLT
	cnt.ExitCost[metrics.ExitHLT].Observe(c.ExitHLT)
	p.traceSpan(trace.KindExit, v, metrics.ExitHLT.String(), c.ExitHLT)
	p.segEvent = p.engine.After(c.ExitHLT, "pcpu-hlt", p.hltDoneFn)
}

// hltDone completes the HLT exit: the vCPU either stays on the CPU (an
// interrupt raced with the halt), enters the halt-poll window, or is
// descheduled.
func (p *PCPU) hltDone() {
	v := p.current
	p.seg = nil
	p.segEvent = sim.Event{}
	if v.hasPending() {
		// An interrupt raced with the halt: stay on the CPU.
		p.execNext()
		return
	}
	if hp := p.host.cfg.HaltPoll; hp > 0 {
		v.state = VCPUHalted
		p.polling = true
		p.pollStart = p.now()
		p.pollEvent = p.engine.After(hp, "pcpu-poll", p.pollDoneFn)
		return
	}
	p.deschedule(v)
}

// pollDone ends an expired halt-poll window: the polling cycles are charged
// as host overhead and the vCPU is descheduled.
func (p *PCPU) pollDone() {
	v := p.current
	p.polling = false
	p.pollEvent = sim.Event{}
	v.vm.counters.HostOverhead += p.host.cfg.HaltPoll // cycles burned polling
	p.deschedule(v)
}

func (p *PCPU) deschedule(v *VCPU) {
	p.host.sched.Ran(v, p.now()-v.sliceStart)
	v.state = VCPUHalted
	p.current = nil
	p.traceEvent(trace.KindSched, v, "deschedule")
	p.maybeDispatch()
}

// wake transitions a halted vCPU toward running: instantly when it is
// still inside its halt-poll window, otherwise through the run queue with
// the host's wake-to-schedule latency.
func (p *PCPU) wake(v *VCPU) {
	p.traceEvent(trace.KindSched, v, "wake")
	if p.polling && p.current == v {
		p.polling = false
		p.engine.Cancel(p.pollEvent)
		p.pollEvent = sim.Event{}
		v.vm.counters.HostOverhead += p.now() - p.pollStart
		v.state = VCPURunning
		p.execNext()
		return
	}
	p.enqueue(v)
	if p.current == nil && !p.dispatchPending {
		p.dispatchPending = true
		p.wakeEvent = p.engine.After(p.cost().HostSchedDelay, "pcpu-wakeup", p.wakeupFn)
	}
}

// interruptIfInGuest forces an external-interrupt exit when v is executing
// guest code on this pCPU (a physical interrupt — device or IPI — arrived
// for it).
func (p *PCPU) interruptIfInGuest(v *VCPU) {
	if p.current != v || p.seg == nil || p.seg.Kind != guest.SegRun {
		return // in host context: delivered at the next entry
	}
	p.interruptGuest(v, metrics.ExitExternalIRQ, p.cost().ExitExternalIRQ, false)
}

// preemptTimerExit handles the guest deadline timer firing while v runs:
// KVM's (cheaper) preemption-timer exit (§3).
func (p *PCPU) preemptTimerExit(v *VCPU) {
	v.queuePendingNoReact(hw.LocalTimerVector)
	if p.current != v || p.seg == nil || p.seg.Kind != guest.SegRun {
		return
	}
	p.interruptGuest(v, metrics.ExitPreemptTimer, p.cost().ExitPreemptTimer, false)
}

// forceEntryExit takes a bare preemption-timer exit on a running vCPU so
// the next VM entry (and its hook) happens now — the §4.1 top-up mechanism.
func (p *PCPU) forceEntryExit(v *VCPU) {
	if p.current != v || p.seg == nil || p.seg.Kind != guest.SegRun {
		return // already exiting; the entry hook will run shortly anyway
	}
	p.interruptGuest(v, metrics.ExitPreemptTimer, p.cost().ExitPreemptTimer, false)
}

// timerStealExit charges a running vCPU for a physical timer interrupt that
// belongs to a different (descheduled) vCPU sharing this pCPU.
func (p *PCPU) timerStealExit(victim *VCPU) {
	if p.current != victim || p.seg == nil || p.seg.Kind != guest.SegRun {
		// Already in host context: the interrupt is absorbed there.
		return
	}
	p.interruptGuest(victim, metrics.ExitTimerSteal, p.cost().ExitExternalIRQ, false)
}

// onHostTick is the host scheduler tick on this pCPU.
func (p *PCPU) onHostTick(now sim.Time) {
	v := p.current
	if v == nil {
		return // idle pCPU: host housekeeping is free for our accounting
	}
	cnt := v.vm.counters
	// The host tick handler's work varies (load balancing, accounting);
	// jittering it also prevents same-period timers from phase-locking
	// onto the handling window deterministically.
	tickWork := p.engine.Rand().Jitter(p.cost().HostTickWork, 0.2)
	if p.seg != nil && p.seg.Kind == guest.SegRun {
		// The tick interrupts guest execution: an external-interrupt exit
		// plus the host tick handler. This is the exit paratick reuses for
		// virtual-tick injection on the subsequent entry.
		expire := p.host.sched.TickPreempt(p.id, v, v.sliceStart, now)
		p.interruptGuest(v, metrics.ExitExternalIRQ,
			p.cost().ExitExternalIRQ+tickWork, expire)
		return
	}
	// Already in host context: the tick is handled without an extra exit.
	cnt.HostOverhead += tickWork
}

// interruptGuest preempts the in-flight run segment, charges the exit, and
// afterwards resumes the vCPU — or rotates it out when its timeslice
// expired.
func (p *PCPU) interruptGuest(v *VCPU, reason metrics.ExitReason, hostCost sim.Time, expireSlice bool) {
	seg := p.seg
	elapsed := p.now() - p.segStart
	p.engine.Cancel(p.segEvent)
	p.segEvent = sim.Event{}
	p.seg = nil
	p.chargeRun(v, seg, elapsed)
	if remaining := seg.Duration - elapsed; remaining > 0 {
		v.gcpu.Preempt(seg, remaining)
	} else if seg.OnDone != nil {
		seg.OnDone()
	}
	cnt := v.vm.counters
	cnt.AddExit(reason)
	cnt.HostOverhead += hostCost
	cnt.ExitCost[reason].Observe(hostCost)
	p.traceSpan(trace.KindExit, v, reason.String(), hostCost)
	p.irqExpire = expireSlice
	p.segEvent = p.engine.After(hostCost, "pcpu-irq-exit", p.irqDoneFn)
}

// irqDone completes an interrupt-induced exit: the vCPU resumes, or — when
// its timeslice expired with the interrupt — rotates through the run queue.
func (p *PCPU) irqDone() {
	v := p.current
	p.segEvent = sim.Event{}
	if p.irqExpire {
		v.vm.counters.HostOverhead += p.cost().HostSchedSwitch
		p.host.sched.Ran(v, p.now()-v.sliceStart)
		p.enqueue(v)
		p.current = nil
		p.maybeDispatch()
		return
	}
	p.execNext()
}
