package kvm

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// VM is one virtual machine: a guest kernel plus its host-side vCPUs and
// devices. All of a VM's exits and cycles accumulate in one counter set.
type VM struct {
	//snap:skip back-pointer wiring, bound when the host adopts the VM
	//reset:keep back-pointer bound at construction, stable across arena reuse
	host *Host
	name string
	// engine is the VM's lane engine: with one lane per socket the VM is
	// contained on one socket and everything it schedules — kernel timers,
	// device completions, vCPU events — goes through its lane.
	//snap:skip lane-engine wiring, re-derived from placement at construction
	engine *sim.Engine
	//snap:skip lane index, re-derived from placement at construction
	lane int
	//snap:skip identity is implicit in the host's save order
	index    int
	kernel   *guest.Kernel
	counters *metrics.Counters
	vcpus    []*VCPU
	//snap:skip mode hook, reinstalled by SetTickMode/SetEntryHook after restore
	hook core.EntryHook

	// defaultHook is the in-place ParatickHost installed for paratick
	// guests; keeping it a value field lets a pooled VM switch modes across
	// runs without allocating a hook. SetEntryHook may still override it.
	//snap:skip value-field hook storage, reinstalled with the mode on restore
	defaultHook core.ParatickHost

	declaredTickHz int
	started        bool
	doneAt         sim.Time
	workloadDone   bool

	// OnWorkloadDone fires when the guest's last task completes; the
	// experiment harness uses it to record wall time and stop the run.
	//snap:skip completion callback, rebound by the harness after restore
	OnWorkloadDone func(now sim.Time)
}

// NewVM creates a VM whose vCPUs are pinned one-to-one onto placement.
// Multiple vCPUs (from this or other VMs) may share a pCPU — that is the
// overcommit scenario of §3.1.
func (h *Host) NewVM(name string, gcfg guest.Config, placement []hw.CPUID) (*VM, error) {
	if len(placement) == 0 {
		return nil, fmt.Errorf("kvm: VM %q needs at least one vCPU placement", name)
	}
	for i, cpu := range placement {
		if cpu < 0 || int(cpu) >= h.cfg.Topology.NumCPUs() {
			return nil, fmt.Errorf("kvm: VM %q vCPU %d placed on invalid pCPU %d", name, i, cpu)
		}
	}
	// Home the VM to its socket's lane. Lane mode requires socket
	// containment: a VM spanning sockets would couple two lanes inside a
	// quantum, which the conservative barrier cannot order.
	lane := 0
	if h.se.Lanes() > 1 {
		lane = h.laneOf(h.cfg.Topology.SocketOf(placement[0]))
		for i, cpu := range placement {
			if l := h.laneOf(h.cfg.Topology.SocketOf(cpu)); l != lane {
				return nil, fmt.Errorf("kvm: VM %q spans sockets (vCPU 0 on lane %d, vCPU %d on lane %d); lane mode requires socket-contained VMs",
					name, lane, i, l)
			}
		}
	}
	engine := h.se.Engine(lane)
	if vm := h.vmArena.take(len(placement), gcfg.TickHz); vm != nil {
		if err := vm.reset(name, engine, lane, gcfg, placement); err != nil {
			return nil, err
		}
		h.vms = append(h.vms, vm)
		return vm, nil
	}
	counters := &metrics.Counters{}
	kernel, err := guest.NewKernel(engine, h.cost, gcfg, counters)
	if err != nil {
		return nil, err
	}
	vm := &VM{host: h, name: name, engine: engine, lane: lane, index: len(h.vms), kernel: kernel, counters: counters}
	if gcfg.Mode == core.Paratick {
		vm.hook = &vm.defaultHook
	}
	vm.vcpus = make([]*VCPU, 0, len(placement))
	for i, cpu := range placement {
		gv := kernel.AddVCPU()
		v := &VCPU{
			vm:    vm,
			id:    i,
			gcpu:  gv,
			pcpu:  h.pcpus[cpu],
			state: VCPUStopped,
			// The LAPIC IRR dedupes by vector, so the pend queue holds at
			// most the distinct vectors in play; 8 covers every scenario
			// without first-run growth.
			pending:      make([]pendingIRQ, 0, 8),
			pendingSpare: make([]pendingIRQ, 0, 8),
		}
		v.node.Key = h.nextSchedKey
		h.nextSchedKey++
		v.guestTimer = hw.NewDeadlineTimer(engine, "guest-timer", v.onGuestTimer)
		v.topUpTimer = hw.NewDeadlineTimer(engine, "topup-timer", v.onTopUpTimer)
		vm.vcpus = append(vm.vcpus, v)
	}
	vm.kernel.OnAllDone = func(now sim.Time) {
		vm.workloadDone = true
		vm.doneAt = now
		if vm.OnWorkloadDone != nil {
			vm.OnWorkloadDone(now)
		}
	}
	h.vms = append(h.vms, vm)
	return vm, nil
}

// reset rebinds a pooled VM — taken from the host's VM arena — to a new
// run: new name, lane engine, guest config, and placement. The expensive
// object graph survives: the guest kernel (with its tasks, sync objects,
// segment pool, and timer wheels), the host vCPUs with their pre-bound
// deadline-timer handlers, and the OnAllDone completion closure NewVM bound
// once (it captures only the VM and reads per-run fields at fire time).
// The arena key guarantees len(vm.vcpus) == len(placement).
func (vm *VM) reset(name string, engine *sim.Engine, lane int, gcfg guest.Config, placement []hw.CPUID) error {
	h := vm.host
	vm.name = name
	vm.engine = engine
	vm.lane = lane
	vm.index = len(h.vms)
	*vm.counters = metrics.Counters{}
	if err := vm.kernel.Reset(engine, h.cost, gcfg, vm.counters); err != nil {
		return err
	}
	vm.defaultHook = core.ParatickHost{}
	if gcfg.Mode == core.Paratick {
		vm.hook = &vm.defaultHook
	} else {
		vm.hook = nil
	}
	vm.declaredTickHz = 0
	vm.started = false
	vm.doneAt = 0
	vm.workloadDone = false
	vm.OnWorkloadDone = nil
	for i, cpu := range placement {
		vm.vcpus[i].reset(h.pcpus[cpu], h.nextSchedKey)
		h.nextSchedKey++
	}
	return nil
}

// SetEntryHook overrides the VM-entry hook (nil disables). NewVM installs
// core.ParatickHost automatically for paratick guests; this override exists
// for ablations (e.g. enabling the §4.1 frequency top-up).
func (vm *VM) SetEntryHook(hook core.EntryHook) { vm.hook = hook }

// Name returns the VM name.
func (vm *VM) Name() string { return vm.name }

// Kernel returns the guest kernel, used to spawn tasks and create locks.
func (vm *VM) Kernel() *guest.Kernel { return vm.kernel }

// Counters returns the VM's metric counters.
func (vm *VM) Counters() *metrics.Counters { return vm.counters }

// VCPUs returns the host-side vCPUs.
func (vm *VM) VCPUs() []*VCPU { return vm.vcpus }

// WorkloadDone reports whether all guest tasks have finished, and when.
func (vm *VM) WorkloadDone() (bool, sim.Time) { return vm.workloadDone, vm.doneAt }

// AttachDevice creates a block device with the given profile, wires its
// completion interrupts into this VM, and registers it with the guest.
func (vm *VM) AttachDevice(name string, profile iodev.Profile) (*iodev.Device, error) {
	h := vm.host
	dev, err := iodev.New(vm.engine, name, profile, h.nextIOVector)
	if err != nil {
		return nil, err
	}
	h.nextIOVector++
	dev.OnInterrupt = func(vcpu int) {
		if vcpu < 0 || vcpu >= len(vm.vcpus) {
			panic(fmt.Sprintf("kvm: completion for invalid vCPU %d", vcpu))
		}
		vm.vcpus[vcpu].pendIRQ(dev.Vector())
	}
	vm.kernel.AttachDevice(dev)
	return dev, nil
}

// Device returns the attached device with the given name, or nil.
func (vm *VM) Device(name string) *iodev.Device {
	for _, d := range vm.kernel.Devices() {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// Start boots every vCPU and makes it runnable. Call after spawning the
// initial tasks.
func (vm *VM) Start() {
	if vm.started {
		panic(fmt.Sprintf("kvm: VM %q started twice", vm.name))
	}
	vm.started = true
	for _, v := range vm.vcpus {
		v.gcpu.Boot()
		v.state = VCPURunnable
		v.pcpu.enqueue(v)
	}
	for _, v := range vm.vcpus {
		v.pcpu.maybeDispatch()
	}
}

// applyHypercall processes a guest paravirtual call.
func (vm *VM) applyHypercall(kind core.HypercallKind, arg int64) {
	switch kind {
	case core.HypercallDeclareTickHz:
		if arg > 0 {
			vm.declaredTickHz = int(arg)
		}
	}
}

// DeclaredTickHz returns the tick frequency the guest announced via
// hypercall (0 before the paratick boot sequence ran).
func (vm *VM) DeclaredTickHz() int { return vm.declaredTickHz }

// GuestTickPeriod returns the declared guest tick period, defaulting to the
// guest kernel's configured rate when no hypercall has arrived.
func (vm *VM) GuestTickPeriod() sim.Time {
	if vm.declaredTickHz > 0 {
		return sim.PeriodFromHz(vm.declaredTickHz)
	}
	return vm.kernel.Config().TickPeriod()
}

// Result snapshots the VM's metrics as a metrics.Result. The wall time is
// the workload completion time when the workload has finished, otherwise
// the current time.
func (vm *VM) Result(workload string) metrics.Result {
	var out metrics.Result
	vm.ResultInto(&out, workload)
	return out
}

// ResultInto writes the VM's metrics into caller-owned storage, the
// allocation-free flavor of Result for callers that harvest results every
// run: every field of *out is overwritten (Events to zero — the engine
// event count is the run's, not the VM's, so the scenario layer stamps it).
func (vm *VM) ResultInto(out *metrics.Result, workload string) {
	wall := vm.host.Now()
	if vm.workloadDone {
		wall = vm.doneAt
	}
	out.Name = workload
	out.Mode = vm.kernel.Config().Mode.String()
	out.Counters = *vm.counters
	out.WallTime = wall
	out.Events = 0
}
