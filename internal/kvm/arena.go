package kvm

import (
	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
)

// HostArena pools Host construction across the runs of one experiment
// worker. Building a host is the second-largest allocation source in an
// end-to-end run after VM construction: one PCPU per physical CPU, six
// pre-bound handler closures each, a periodic host-tick timer per pCPU,
// and the scheduler's per-CPU queues. All of that state is reusable — the
// closures capture only the PCPU itself, which survives — so consecutive
// runs on the same coordinator and machine shape reset the cached host in
// place instead of rebuilding it.
//
// Reuse never changes behaviour: a reset host is indistinguishable from a
// fresh one (the contract TestHostArenaReuseMatchesFresh pins), so run
// output stays byte-identical whether or not a pool is in play. A nil
// *HostArena is valid and always builds fresh hosts.
type HostArena struct {
	host *Host
	vms  VMArena
}

// VMArena pools whole VMs across a host's runs: the guest kernel with its
// task, segment, and sync-object pools; the host-side vCPUs with their
// pre-bound deadline-timer handler closures and pending-IRQ double buffers;
// and the per-vCPU timer wheels, which stay attached to their kernels.
// Host.reset stashes a finished run's VMs here and NewVM re-acquires them
// keyed on (vCPU count, guest tick Hz) — the construction-shape fields; the
// workload shape adapts through the kernel's internal pools. A nil *VMArena
// is valid and never pools.
//
// Like host pooling, VM reuse is execution-only: VM.reset returns every
// recycled object to the state a fresh constructor would produce (the
// digest audits in arena_test.go pin fresh == recycled byte for byte), so
// reports, traces, and checkpoints cannot observe it.
type VMArena struct {
	free []*VM
}

// take removes and returns a pooled VM matching the construction shape, or
// nil. Matching is LIFO so the hottest cache-resident VM is reused first.
func (a *VMArena) take(vcpus, tickHz int) *VM {
	if a == nil {
		return nil
	}
	for i := len(a.free) - 1; i >= 0; i-- {
		vm := a.free[i]
		if len(vm.vcpus) == vcpus && vm.kernel.Config().TickHz == tickHz {
			a.free = append(a.free[:i], a.free[i+1:]...)
			return vm
		}
	}
	return nil
}

// stash parks a finished run's VMs for reuse. No sanitization happens here
// — VM.reset does all of it at re-acquire time, which also covers VMs
// abandoned mid-run (the snapshot-probe path).
func (a *VMArena) stash(vms []*VM) {
	if a == nil {
		return
	}
	a.free = append(a.free, vms...)
}

// clear drops every pooled VM. Called when the owning host is rebuilt for
// a new machine shape: the pooled VMs reference the dead host's pCPUs and
// lane engines.
func (a *VMArena) clear() {
	for i := range a.free {
		a.free[i] = nil
	}
	a.free = a.free[:0]
}

// NewHostOn returns a host for the coordinator, reusing the pooled one
// when it was built on the same coordinator with the same machine shape
// (topology and host-tick rate — the fields that size the object graph).
// Everything else in cfg (cost model, timeslice, halt-poll, PLE window,
// scheduler policy) is applied on reuse.
func (a *HostArena) NewHostOn(se *sim.ShardedEngine, cfg Config) (*Host, error) {
	if a == nil {
		return NewHostOn(se, cfg)
	}
	if h := a.host; h != nil && h.se == se &&
		h.cfg.Topology == cfg.Topology && h.cfg.HostHz == cfg.HostHz {
		if err := h.reset(cfg); err != nil {
			return nil, err
		}
		return h, nil
	}
	a.vms.clear()
	h, err := NewHostOn(se, cfg)
	if err == nil {
		h.vmArena = &a.vms
		a.host = h
	}
	return h, err
}

// reset returns the host to its just-constructed state for cfg. The
// caller guarantees the engines underneath were already Reset, so stale
// event handles are dropped, not canceled.
func (h *Host) reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	h.cfg = cfg
	h.cost = cfg.Cost
	h.vmArena.stash(h.vms)
	for i := range h.vms {
		h.vms[i] = nil
	}
	h.vms = h.vms[:0]
	h.nextIOVector = hw.IODeviceBase
	h.nextSchedKey = 0
	h.tracer = nil
	h.laneTracers = nil
	if h.sched.Name() == cfg.SchedPolicy.String() {
		h.sched.Reset(cfg.Timeslice)
	} else {
		s, err := sched.New(cfg.SchedPolicy, cfg.Topology, cfg.Timeslice)
		if err != nil {
			return err
		}
		h.sched = s
	}
	// Restart the staggered host ticks in pCPU order — the same engine-At
	// order construction uses, so the tick events get identical (when, seq)
	// coordinates on the freshly reset lane engines.
	n := len(h.pcpus)
	period := cfg.HostTickPeriod()
	for i, p := range h.pcpus {
		p.reset()
		p.tick.Start(period * sim.Time(i+1) / sim.Time(n+1))
	}
	if h.se.Quantum() > 0 {
		for l := range h.inflight {
			for i := range h.inflight[l] {
				h.inflight[l][i] = nil
			}
			h.inflight[l] = h.inflight[l][:0]
		}
		for i := range h.streams {
			h.streams[i] = nil
		}
		h.streams = h.streams[:0]
		h.se.SetDeliver(h.deliverRemoteIRQ)
	}
	return nil
}

// reset clears the pCPU's in-flight execution state for pooled reuse. The
// pre-bound handlers and the tick timer object are kept — that is the
// point of the pool — but the tick must be restarted by the caller.
func (p *PCPU) reset() {
	p.current = nil
	p.seg = nil
	p.segEvent = sim.Event{}
	p.segStart = 0
	p.polling = false
	p.pollStart = 0
	p.pollEvent = sim.Event{}
	p.dispatchPending = false
	p.wakeEvent = sim.Event{}
	p.irqExpire = false
	p.tick.Reset()
}
