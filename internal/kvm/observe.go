package kvm

import (
	"paratick/internal/hw"
	"paratick/internal/metrics"
)

// vectorClass buckets a hardware interrupt vector into the coarse classes
// the metrics package histograms injection latency by. The metrics package
// deliberately does not import hw, so the mapping lives on the kvm side.
//
//paratick:noalloc
func vectorClass(vec hw.Vector) metrics.VectorClass {
	switch vec {
	case hw.LocalTimerVector:
		return metrics.VecTimer
	case hw.ParatickVector:
		return metrics.VecParatick
	case hw.RescheduleVector:
		return metrics.VecReschedule
	case hw.CallFuncVector:
		return metrics.VecCallFunc
	default:
		return metrics.VecDevice
	}
}
