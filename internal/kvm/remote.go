package kvm

import (
	"fmt"

	"paratick/internal/hw"
	"paratick/internal/sim"
)

// Cross-lane interrupts. With the host sharded one lane per socket, a VM
// is contained on one socket and everything it does stays on its lane —
// except doorbell-style IPIs between VMs (the vhost/virtio kick pattern:
// one VM's backend thread notifying another VM's queue). Those travel as
// sim.Messages through the quantum-barrier mailboxes: posted on the
// source lane, drained by the coordinator at the barrier in fixed order,
// then armed as a normal event on the destination lane's engine.
//
// The payload is pure data (VM index, vCPU index, vector), never a
// closure, so a checkpoint taken while a delivery is in flight can
// serialize it and restore re-arms it — see saveRemote/loadRemote.

// remoteIRQ is one in-flight cross-lane interrupt delivery: drained from
// the mailbox, waiting on the destination lane's engine to fire.
type remoteIRQ struct {
	vm, vcpu int
	vec      hw.Vector
	ev       sim.Event
}

// PostRemoteIRQ sends an interrupt to another VM's vCPU across lanes,
// taking effect at fireAt. It must be called from the source VM's lane
// (its execution context) and fireAt must respect the conservative
// horizon (now + quantum); sim.ShardedEngine.Post enforces both bounds it
// can see and panics on violations.
func (h *Host) PostRemoteIRQ(src, dst *VM, vcpu int, vec hw.Vector, fireAt sim.Time) {
	if vcpu < 0 || vcpu >= len(dst.vcpus) {
		panic(fmt.Sprintf("kvm: remote IRQ for invalid vCPU %d of VM %q", vcpu, dst.name))
	}
	h.se.Post(sim.Message{
		Src: src.lane, Dst: dst.lane, FireAt: fireAt,
		A: int64(dst.index), B: int64(vcpu), C: int64(vec),
	})
}

// deliverRemoteIRQ is the barrier-drain hook: it runs on the coordinator
// with every lane parked, arms the interrupt on the destination lane's
// engine, and tracks it as in flight until it fires.
func (h *Host) deliverRemoteIRQ(m sim.Message) {
	r := &remoteIRQ{vm: int(m.A), vcpu: int(m.B), vec: hw.Vector(m.C)}
	h.armRemoteIRQ(r, m.FireAt)
}

// armRemoteIRQ schedules an in-flight delivery's interrupt and registers
// it on the destination lane's in-flight list.
func (h *Host) armRemoteIRQ(r *remoteIRQ, fireAt sim.Time) {
	vm := h.vms[r.vm]
	r.ev = vm.engine.At(fireAt, "remote-irq", h.remoteFireFn(vm, r))
	h.inflight[vm.lane] = append(h.inflight[vm.lane], r)
}

// armRemoteIRQRestored is the checkpoint-restore arm path: same handler,
// re-scheduled at the snapshot's original (when, seq) coordinates.
func (h *Host) armRemoteIRQRestored(r *remoteIRQ, when sim.Time, seq uint64) {
	vm := h.vms[r.vm]
	r.ev = vm.engine.ScheduleRestored(when, seq, "remote-irq", h.remoteFireFn(vm, r))
	h.inflight[vm.lane] = append(h.inflight[vm.lane], r)
}

// remoteFireFn builds the delivery handler: unregister, then pend the
// interrupt on the destination vCPU.
func (h *Host) remoteFireFn(vm *VM, r *remoteIRQ) sim.Handler {
	return func(*sim.Engine) {
		h.dropInflight(vm.lane, r)
		vm.vcpus[r.vcpu].pendIRQ(r.vec)
	}
}

// dropInflight removes a fired delivery, preserving the (deterministic)
// arrival order of the remainder. In-flight counts are tiny — at most
// latency/period entries per stream — so a linear scan is fine.
func (h *Host) dropInflight(lane int, r *remoteIRQ) {
	list := h.inflight[lane]
	for i, e := range list {
		if e == r {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			h.inflight[lane] = list[:len(list)-1]
			return
		}
	}
	panic("kvm: fired remote IRQ missing from the in-flight list")
}

// ipiStream is one periodic cross-VM doorbell generator: every period it
// posts a remote IRQ from src's lane to dst's vCPU, modeling a vhost-style
// notification stream between VMs on different sockets.
type ipiStream struct {
	//snap:skip back-pointer wiring, bound when the stream is installed
	host *Host
	//snap:skip stream endpoints are scenario config, re-installed before restore
	src, dst *VM
	//snap:skip immutable stream parameter from the scenario
	vcpu int
	//snap:skip immutable stream parameter from the scenario
	period sim.Time
	//snap:skip immutable stream parameter from the scenario
	latency sim.Time
	sent    uint64
	ev      sim.Event
	//snap:skip pre-bound handler, recreated when the stream is installed
	fn sim.Handler
}

// AddIPIStream installs a periodic cross-VM interrupt stream, first
// firing at phase. Streams require lane mode: the delivery latency must
// cover the conservative quantum horizon. Call during construction, in a
// deterministic order — stream order is part of the scenario's identity.
func (h *Host) AddIPIStream(src, dst *VM, vcpu int, period, latency, phase sim.Time) error {
	if h.se.Quantum() <= 0 {
		return fmt.Errorf("kvm: IPI streams require lane mode (a positive quantum)")
	}
	if period <= 0 {
		return fmt.Errorf("kvm: IPI stream period must be positive, got %v", period)
	}
	if latency < h.se.Quantum() {
		return fmt.Errorf("kvm: IPI stream latency %v is below the conservative quantum horizon %v", latency, h.se.Quantum())
	}
	if vcpu < 0 || vcpu >= len(dst.vcpus) {
		return fmt.Errorf("kvm: IPI stream targets invalid vCPU %d of VM %q", vcpu, dst.name)
	}
	if phase <= 0 {
		phase = period
	}
	s := &ipiStream{host: h, src: src, dst: dst, vcpu: vcpu, period: period, latency: latency}
	s.fn = func(e *sim.Engine) {
		s.sent++
		now := e.Now()
		h.PostRemoteIRQ(s.src, s.dst, s.vcpu, hw.RescheduleVector, now+s.latency)
		s.ev = e.At(now+s.period, "ipi-stream", s.fn)
	}
	s.ev = src.engine.At(phase, "ipi-stream", s.fn)
	h.streams = append(h.streams, s)
	return nil
}
