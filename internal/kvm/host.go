// Package kvm models the hypervisor: a KVM-like run loop executing guest
// segment streams on physical CPUs, with VM exits priced and counted by
// reason, interrupt injection on VM entry, HLT handling, wakeup IPIs, a
// host scheduler tick per pCPU, optional halt polling, and pCPU time
// sharing for overcommitted placements. The paratick host side (Fig. 2 of
// the paper) plugs in as a core.EntryHook invoked on every VM entry.
package kvm

import (
	"fmt"

	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// Config describes the host.
type Config struct {
	// Topology is the physical CPU layout.
	Topology hw.Topology
	// Cost prices every modeled interaction.
	Cost hw.CostModel
	// HostHz is the host scheduler-tick frequency (250 in the paper's
	// kernels).
	HostHz int
	// Timeslice bounds a vCPU's turn on a shared pCPU (overcommit).
	Timeslice sim.Time
	// HaltPoll is KVM's halt-polling window; the paper disables it (§6),
	// so 0 is the default. When positive, a halting vCPU busy-waits up to
	// this long for an interrupt before truly descheduling.
	HaltPoll sim.Time
	// PLEWindow enables pause-loop exiting: a guest spinning longer than
	// this window takes a PLE exit per window. The paper disables PLE
	// (§6: "only beneficial in overcommitted environments"), so 0 is the
	// default.
	PLEWindow sim.Time
	// SchedPolicy selects the host vCPU scheduler. The zero value is
	// sched.FIFO, the legacy policy, so existing configs are unchanged.
	SchedPolicy sched.Kind
}

// DefaultConfig returns the paper's host setup: the 80-CPU NUMA box,
// 250 Hz host tick, 6 ms timeslices, halt polling disabled.
func DefaultConfig() Config {
	return Config{
		Topology:  hw.PaperTopology(),
		Cost:      hw.DefaultCostModel(),
		HostHz:    250,
		Timeslice: 6 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.HostHz <= 0 {
		return fmt.Errorf("kvm: HostHz must be positive, got %d", c.HostHz)
	}
	if c.Timeslice <= 0 {
		return fmt.Errorf("kvm: Timeslice must be positive, got %v", c.Timeslice)
	}
	if c.HaltPoll < 0 {
		return fmt.Errorf("kvm: HaltPoll must be non-negative, got %v", c.HaltPoll)
	}
	if c.PLEWindow < 0 {
		return fmt.Errorf("kvm: PLEWindow must be non-negative, got %v", c.PLEWindow)
	}
	if err := c.SchedPolicy.Validate(); err != nil {
		return err
	}
	return nil
}

// HostTickPeriod returns the host tick period.
func (c Config) HostTickPeriod() sim.Time { return sim.PeriodFromHz(c.HostHz) }

// Host is the hypervisor instance.
type Host struct {
	se *sim.ShardedEngine
	//snap:skip immutable host configuration from the scenario
	cfg Config
	//snap:skip immutable cost model from the scenario
	cost  hw.CostModel
	pcpus []*PCPU
	vms   []*VM
	sched sched.Scheduler

	nextIOVector hw.Vector
	// nextSchedKey hands out host-wide vCPU ordinals (sched.Node.Key), the
	// stable tie-break the scheduling layer's determinism contract requires.
	nextSchedKey uint64

	// vmArena, when non-nil, recycles whole VMs across this host's runs:
	// Host.reset stashes the finished run's VMs there and NewVM re-acquires
	// them by (vCPU count, guest Hz). Only HostArena-managed hosts carry
	// one; a nil arena always builds VMs fresh.
	//snap:skip pool of stashed VMs between runs, never live state
	vmArena *VMArena

	// tracer, when set, records exits/injections (perf-style; see
	// internal/trace). nil disables tracing. With multiple lanes each lane
	// records into its own buffer (laneTracers) so shard goroutines never
	// share one ring; Tracer() merges them canonically.
	tracer      *trace.Buffer
	laneTracers []*trace.Buffer

	// inflight tracks remote-IPI deliveries per destination lane: messages
	// drained from the barrier mailboxes whose interrupt has not fired yet.
	// A checkpoint serializes them so restore can re-arm the delivery.
	inflight [][]*remoteIRQ
	// streams are the periodic cross-VM IPI generators, in creation order.
	streams []*ipiStream
}

// NewHost creates a host on a single engine — the legacy serial mode,
// byte-identical to the pre-shard code path.
func NewHost(engine *sim.Engine, cfg Config) (*Host, error) {
	if engine == nil {
		return nil, fmt.Errorf("kvm: NewHost requires an engine")
	}
	return NewHostOn(sim.WrapEngine(engine), cfg)
}

// NewHostOn creates a host on a sharded coordinator. In lane mode (a
// positive quantum) the coordinator must hold one lane per socket: every
// pCPU, VM, and device lives on its socket's lane engine, which is what
// lets shards execute sockets concurrently without sharing state.
func NewHostOn(se *sim.ShardedEngine, cfg Config) (*Host, error) {
	if se == nil {
		return nil, fmt.Errorf("kvm: NewHostOn requires an engine coordinator")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if se.Lanes() != 1 && se.Lanes() != cfg.Topology.Sockets {
		return nil, fmt.Errorf("kvm: coordinator has %d lanes, topology has %d sockets (want one lane per socket, or one lane total)",
			se.Lanes(), cfg.Topology.Sockets)
	}
	h := &Host{se: se, cfg: cfg, cost: cfg.Cost, nextIOVector: hw.IODeviceBase}
	if se.Quantum() > 0 {
		h.inflight = make([][]*remoteIRQ, se.Lanes())
		se.SetDeliver(h.deliverRemoteIRQ)
	}
	s, err := sched.New(cfg.SchedPolicy, cfg.Topology, cfg.Timeslice)
	if err != nil {
		return nil, err
	}
	h.sched = s
	n := cfg.Topology.NumCPUs()
	period := cfg.HostTickPeriod()
	for i := 0; i < n; i++ {
		lane := h.laneOf(cfg.Topology.SocketOf(hw.CPUID(i)))
		p := &PCPU{host: h, id: hw.CPUID(i), lane: lane, engine: se.Engine(lane)}
		p.bindHandlers()
		// Stagger host ticks across pCPUs deterministically, like LAPIC
		// calibration skew on real machines. The offset starts away from 0
		// so host ticks do not land exactly on guest tick deadlines (which
		// are armed at whole tick periods from boot).
		phase := period * sim.Time(i+1) / sim.Time(n+1)
		p.tick = hw.NewPeriodicTimer(p.engine, "host-tick", period, p.onHostTick)
		p.tick.Start(phase)
		h.pcpus = append(h.pcpus, p)
	}
	return h, nil
}

// laneOf maps a socket to its lane: identity with one lane per socket, 0
// when a single lane carries the whole machine.
func (h *Host) laneOf(socket int) int {
	if h.se.Lanes() == 1 {
		return 0
	}
	return socket
}

// Engine returns lane 0's simulation engine — the engine, in the serial
// single-lane mode. Multi-lane callers should use Sharded().
func (h *Host) Engine() *sim.Engine { return h.se.Root() }

// Sharded returns the engine coordinator the host runs on.
func (h *Host) Sharded() *sim.ShardedEngine { return h.se }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// PCPUs returns the physical CPUs.
func (h *Host) PCPUs() []*PCPU { return h.pcpus }

// Scheduler returns the host's vCPU scheduler.
func (h *Host) Scheduler() sched.Scheduler { return h.sched }

// VMs returns the created VMs.
func (h *Host) VMs() []*VM { return h.vms }

// Now returns current simulated time (lane 0's clock; all lanes agree at
// quantum barriers, which is the only context cross-lane code runs in).
func (h *Host) Now() sim.Time { return h.se.Now() }

// SetHaltPoll adjusts the halt-polling window at runtime. Each HLT exit
// reads the current value, so the change applies from the next halt on —
// the experiment layer varies it across forked snapshot arms.
func (h *Host) SetHaltPoll(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("kvm: HaltPoll must be non-negative, got %v", d)
	}
	h.cfg.HaltPoll = d
	return nil
}

// SetPLEWindow adjusts the pause-loop-exiting window at runtime; each spin
// consults the current value.
func (h *Host) SetPLEWindow(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("kvm: PLEWindow must be non-negative, got %v", d)
	}
	h.cfg.PLEWindow = d
	return nil
}

// SetTracer attaches a trace buffer recording exits and injections. With
// multiple lanes the buffer only sets the capacity: recording goes into
// one private buffer per lane (so shard goroutines never share a ring)
// and Tracer() returns their canonical merge.
func (h *Host) SetTracer(t *trace.Buffer) {
	h.tracer = t
	h.laneTracers = nil
	if t == nil || h.se.Lanes() == 1 {
		return
	}
	h.laneTracers = make([]*trace.Buffer, h.se.Lanes())
	for l := range h.laneTracers {
		h.laneTracers[l] = trace.NewBuffer(t.Cap())
	}
}

// Tracer returns the attached trace buffer (nil when tracing is off). With
// multiple lanes it merges the per-lane buffers in the canonical
// (timestamp, lane, record order) order — a pure function of the lane
// schedules, independent of the shard count.
func (h *Host) Tracer() *trace.Buffer {
	if h.laneTracers != nil {
		return trace.Merge(h.laneTracers, h.tracer.Cap())
	}
	return h.tracer
}

// tracerFor returns the buffer lane's components record into (nil when
// tracing is off).
func (h *Host) tracerFor(lane int) *trace.Buffer {
	if h.laneTracers != nil {
		return h.laneTracers[lane]
	}
	return h.tracer
}
