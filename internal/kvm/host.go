// Package kvm models the hypervisor: a KVM-like run loop executing guest
// segment streams on physical CPUs, with VM exits priced and counted by
// reason, interrupt injection on VM entry, HLT handling, wakeup IPIs, a
// host scheduler tick per pCPU, optional halt polling, and pCPU time
// sharing for overcommitted placements. The paratick host side (Fig. 2 of
// the paper) plugs in as a core.EntryHook invoked on every VM entry.
package kvm

import (
	"fmt"

	"paratick/internal/hw"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/trace"
)

// Config describes the host.
type Config struct {
	// Topology is the physical CPU layout.
	Topology hw.Topology
	// Cost prices every modeled interaction.
	Cost hw.CostModel
	// HostHz is the host scheduler-tick frequency (250 in the paper's
	// kernels).
	HostHz int
	// Timeslice bounds a vCPU's turn on a shared pCPU (overcommit).
	Timeslice sim.Time
	// HaltPoll is KVM's halt-polling window; the paper disables it (§6),
	// so 0 is the default. When positive, a halting vCPU busy-waits up to
	// this long for an interrupt before truly descheduling.
	HaltPoll sim.Time
	// PLEWindow enables pause-loop exiting: a guest spinning longer than
	// this window takes a PLE exit per window. The paper disables PLE
	// (§6: "only beneficial in overcommitted environments"), so 0 is the
	// default.
	PLEWindow sim.Time
	// SchedPolicy selects the host vCPU scheduler. The zero value is
	// sched.FIFO, the legacy policy, so existing configs are unchanged.
	SchedPolicy sched.Kind
}

// DefaultConfig returns the paper's host setup: the 80-CPU NUMA box,
// 250 Hz host tick, 6 ms timeslices, halt polling disabled.
func DefaultConfig() Config {
	return Config{
		Topology:  hw.PaperTopology(),
		Cost:      hw.DefaultCostModel(),
		HostHz:    250,
		Timeslice: 6 * sim.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.HostHz <= 0 {
		return fmt.Errorf("kvm: HostHz must be positive, got %d", c.HostHz)
	}
	if c.Timeslice <= 0 {
		return fmt.Errorf("kvm: Timeslice must be positive, got %v", c.Timeslice)
	}
	if c.HaltPoll < 0 {
		return fmt.Errorf("kvm: HaltPoll must be non-negative, got %v", c.HaltPoll)
	}
	if c.PLEWindow < 0 {
		return fmt.Errorf("kvm: PLEWindow must be non-negative, got %v", c.PLEWindow)
	}
	if err := c.SchedPolicy.Validate(); err != nil {
		return err
	}
	return nil
}

// HostTickPeriod returns the host tick period.
func (c Config) HostTickPeriod() sim.Time { return sim.PeriodFromHz(c.HostHz) }

// Host is the hypervisor instance.
type Host struct {
	engine *sim.Engine
	cfg    Config
	cost   hw.CostModel
	pcpus  []*PCPU
	vms    []*VM
	sched  sched.Scheduler

	nextIOVector hw.Vector
	// nextSchedKey hands out host-wide vCPU ordinals (sched.Node.Key), the
	// stable tie-break the scheduling layer's determinism contract requires.
	nextSchedKey uint64

	// tracer, when set, records exits/injections (perf-style; see
	// internal/trace). nil disables tracing.
	tracer *trace.Buffer
}

// NewHost creates a host on the engine.
func NewHost(engine *sim.Engine, cfg Config) (*Host, error) {
	if engine == nil {
		return nil, fmt.Errorf("kvm: NewHost requires an engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Host{engine: engine, cfg: cfg, cost: cfg.Cost, nextIOVector: hw.IODeviceBase}
	s, err := sched.New(cfg.SchedPolicy, cfg.Topology, cfg.Timeslice)
	if err != nil {
		return nil, err
	}
	h.sched = s
	n := cfg.Topology.NumCPUs()
	period := cfg.HostTickPeriod()
	for i := 0; i < n; i++ {
		p := &PCPU{host: h, id: hw.CPUID(i)}
		p.bindHandlers()
		// Stagger host ticks across pCPUs deterministically, like LAPIC
		// calibration skew on real machines. The offset starts away from 0
		// so host ticks do not land exactly on guest tick deadlines (which
		// are armed at whole tick periods from boot).
		phase := period * sim.Time(i+1) / sim.Time(n+1)
		p.tick = hw.NewPeriodicTimer(engine, "host-tick", period, p.onHostTick)
		p.tick.Start(phase)
		h.pcpus = append(h.pcpus, p)
	}
	return h, nil
}

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.engine }

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// PCPUs returns the physical CPUs.
func (h *Host) PCPUs() []*PCPU { return h.pcpus }

// Scheduler returns the host's vCPU scheduler.
func (h *Host) Scheduler() sched.Scheduler { return h.sched }

// VMs returns the created VMs.
func (h *Host) VMs() []*VM { return h.vms }

// Now returns current simulated time.
func (h *Host) Now() sim.Time { return h.engine.Now() }

// SetHaltPoll adjusts the halt-polling window at runtime. Each HLT exit
// reads the current value, so the change applies from the next halt on —
// the experiment layer varies it across forked snapshot arms.
func (h *Host) SetHaltPoll(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("kvm: HaltPoll must be non-negative, got %v", d)
	}
	h.cfg.HaltPoll = d
	return nil
}

// SetPLEWindow adjusts the pause-loop-exiting window at runtime; each spin
// consults the current value.
func (h *Host) SetPLEWindow(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("kvm: PLEWindow must be non-negative, got %v", d)
	}
	h.cfg.PLEWindow = d
	return nil
}

// SetTracer attaches a trace buffer recording exits and injections.
func (h *Host) SetTracer(t *trace.Buffer) { h.tracer = t }

// Tracer returns the attached trace buffer (nil when tracing is off).
func (h *Host) Tracer() *trace.Buffer { return h.tracer }
