package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/iodev"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// CrossoverPoint is one idle-period sample of the §3.3 sweep: the
// timer-management VM exits each tick mechanism induces when a vCPU
// alternates short busy phases with idle periods of the given length.
type CrossoverPoint struct {
	IdlePeriod    sim.Time
	PeriodicExits uint64
	TicklessExits uint64
	ParatickExits uint64
}

// CrossoverResult is the full sweep plus the §3.3 analytic threshold
// ("tickless kernels are preferable as long as the average idle period is
// longer than the average vCPU tick period divided by the number of vCPUs
// sharing the same physical CPU") and the empirically observed crossover.
type CrossoverResult struct {
	Duration sim.Time
	Points   []CrossoverPoint
	// AnalyticThreshold is tick period / vCPUs-per-pCPU (here 1).
	AnalyticThreshold sim.Time
	// EmpiricalCrossover is the smallest swept idle period at which
	// tickless induces no more timer exits than periodic (sim.Forever when
	// tickless never wins in the sweep).
	EmpiricalCrossover sim.Time
	// Warmup accounts the events shared by warm-starting each mode's sweep
	// from one forked checkpoint.
	Warmup WarmupStats
}

// crossoverIdlePeriods returns the swept idle-period lengths, bracketing
// the 4ms analytic threshold at 250 Hz.
func crossoverIdlePeriods() []sim.Time {
	us := sim.Microsecond
	return []sim.Time{
		100 * us, 250 * us, 500 * us, 1000 * us,
		2000 * us, 4000 * us, 8000 * us, 16000 * us,
	}
}

// delayLineProfile builds a device whose every operation takes exactly the
// requested latency — a controllable idle-period generator.
func delayLineProfile(latency sim.Time) iodev.Profile {
	return iodev.Profile{
		Name:       "delay-line",
		ReadBase:   latency,
		WriteBase:  latency,
		PerKiB:     0,
		SeqFactor:  1,
		QueueDepth: 1,
		Jitter:     0.05,
	}
}

// idleCycleProgram alternates a short busy phase with a blocking wait of
// the controlled idle period.
type idleCycleProgram struct {
	//snap:skip device wiring, re-bound when the program is rebuilt
	dev *iodev.Device
	//snap:skip immutable program parameter from the scenario
	busy sim.Time
	//snap:skip fixed at construction from the scenario duration
	until sim.Time
	inIO  bool
}

func (p *idleCycleProgram) Next(ctx *guest.StepCtx) guest.Step {
	if ctx.Now >= p.until {
		return guest.Done()
	}
	if p.inIO {
		p.inIO = false
		return guest.Compute(ctx.Rand.Jitter(p.busy, 0.2))
	}
	p.inIO = true
	return guest.Read(p.dev, 4096, false)
}

// RunCrossover sweeps the idle period across the §3.3 threshold and
// measures each mechanism's timer exits over the run, reproducing the
// to-tick-or-not-to-tick crossover empirically.
func RunCrossover(opts Options) (*CrossoverResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dur := sim.Time(float64(2*sim.Second) * opts.Scale)
	if dur < 100*sim.Millisecond {
		dur = 100 * sim.Millisecond
	}
	res := &CrossoverResult{
		Duration:           dur,
		AnalyticThreshold:  sim.PeriodFromHz(250), // 1 vCPU per pCPU
		EmpiricalCrossover: sim.Forever,
	}
	const busy = 50 * sim.Microsecond
	idles := crossoverIdlePeriods()
	modes := []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick}
	// One warm-started group per mode: the scenario boots and idles once,
	// is checkpointed at warm, and every swept latency forks from that
	// checkpoint, retuning only the delay-line device. The warmup runs
	// under the longest swept latency so the guest mostly blocks — the
	// shared window then adds only a handful of ticks to each point instead
	// of flooding the tickless counts with short-idle exits.
	warm := dur / 8
	warmLatency := idles[len(idles)-1]
	type modeSweep struct {
		exits  []uint64
		warmup WarmupStats
	}
	sweeps, err := runParallel(opts, len(modes),
		func(mi int, a *arena) (modeSweep, error) {
			mode := modes[mi]
			group := Spec{
				Name:          fmt.Sprintf("crossover/%v", mode),
				Mode:          mode,
				VCPUs:         1,
				Duration:      dur,
				SchedPolicy:   opts.SchedPolicy,
				SnapshotProbe: opts.SnapshotProbe,
				Quantum:       opts.Quantum,
				Shards:        opts.Shards,
				Setup: func(vm *kvm.VM) error {
					dev, err := vm.AttachDevice("delay", delayLineProfile(warmLatency))
					if err != nil {
						return err
					}
					vm.Kernel().Spawn("cycle", 0, &idleCycleProgram{
						dev: dev, busy: busy, until: dur,
					})
					return nil
				},
			}.scenario()
			arms := make([]func(*world) error, len(idles))
			for i, idle := range idles {
				profile := delayLineProfile(idle)
				arms[i] = func(w *world) error {
					return w.vms[0].Device("delay").SetProfile(profile)
				}
			}
			results, ck, err := forkScenario(group, opts.Seed, warm, arms, opts.Meter, a)
			if err != nil {
				return modeSweep{}, err
			}
			sweep := modeSweep{exits: make([]uint64, len(idles))}
			for i, r := range results {
				sweep.exits[i] = r.Results[0].Counters.TimerExits()
			}
			sweep.warmup.record(ck, len(arms))
			return sweep, nil
		})
	if err != nil {
		return nil, err
	}
	for _, s := range sweeps {
		res.Warmup.merge(s.warmup)
	}
	for i, idle := range idles {
		pt := CrossoverPoint{
			IdlePeriod:    idle,
			PeriodicExits: sweeps[0].exits[i],
			TicklessExits: sweeps[1].exits[i],
			ParatickExits: sweeps[2].exits[i],
		}
		res.Points = append(res.Points, pt)
		if res.EmpiricalCrossover == sim.Forever && pt.TicklessExits <= pt.PeriodicExits {
			res.EmpiricalCrossover = idle
		}
	}
	return res, nil
}

// Render prints the sweep with per-point winners and the threshold check.
func (r *CrossoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3 crossover sweep (%v per point, busy bursts of 50us)\n\n", r.Duration)
	t := metrics.NewTable("",
		"idle-period", "periodic", "tickless", "paratick", "winner (non-paratick)")
	for _, p := range r.Points {
		winner := "tickless"
		if p.TicklessExits > p.PeriodicExits {
			winner = "periodic"
		}
		t.AddRow(p.IdlePeriod.String(),
			fmt.Sprintf("%d", p.PeriodicExits),
			fmt.Sprintf("%d", p.TicklessExits),
			fmt.Sprintf("%d", p.ParatickExits),
			winner)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nanalytic threshold (§3.3): tickless preferable for idle periods > %v\n",
		r.AnalyticThreshold)
	if r.EmpiricalCrossover == sim.Forever {
		b.WriteString("empirical crossover: not reached within the sweep\n")
	} else {
		fmt.Fprintf(&b, "empirical crossover: tickless wins from %v\n", r.EmpiricalCrossover)
	}
	if line := r.Warmup.String(); line != "" {
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders the sweep for CSV export.
func (r *CrossoverResult) Table() *metrics.Table {
	t := metrics.NewTable("crossover sweep",
		"idle-period-us", "periodic", "tickless", "paratick")
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.IdlePeriod.Microseconds()),
			fmt.Sprintf("%d", p.PeriodicExits),
			fmt.Sprintf("%d", p.TicklessExits),
			fmt.Sprintf("%d", p.ParatickExits))
	}
	return t
}
