package experiment

import (
	"strings"
	"testing"

	"paratick/internal/core"
	"paratick/internal/sched"
)

// TestOvercommitSweep is the acceptance check for the pluggable scheduler:
// under overcommit, sched.Fair must deliver wakeup IPIs with a lower p99
// pend-to-delivery latency than sched.FIFO, because a woken sync vCPU no
// longer waits behind full fixed timeslices of spinning antagonists.
func TestOvercommitSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("overcommit sweep is slow")
	}
	res, err := RunOvercommit(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(res.Ratios) * len(res.Modes) * len(res.Policies)
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Inject.Count() == 0 {
			t.Errorf("%d:1 %s/%s: no wakeups observed", c.Ratio, c.Mode, c.Policy)
		}
	}
	// The headline: Fair beats FIFO on p99 injection latency at every
	// overcommitted ratio in the dynticks baseline.
	for _, ratio := range []int{2, 3, 4} {
		fifo := res.Cell(ratio, core.DynticksIdle, sched.FIFO)
		fair := res.Cell(ratio, core.DynticksIdle, sched.Fair)
		if fifo == nil || fair == nil {
			t.Fatalf("missing %d:1 dynticks cells", ratio)
		}
		if fair.Inject.P99() >= fifo.Inject.P99() {
			t.Errorf("%d:1 dynticks: fair p99 (%v) not below fifo p99 (%v)",
				ratio, fair.Inject.P99(), fifo.Inject.P99())
		}
	}
	// Queueing delay grows with the overcommit ratio under FIFO.
	shallow := res.Cell(2, core.DynticksIdle, sched.FIFO)
	deep := res.Cell(4, core.DynticksIdle, sched.FIFO)
	if deep.Inject.P99() <= shallow.Inject.P99() {
		t.Errorf("fifo p99 should grow with ratio: 4:1 %v vs 2:1 %v",
			deep.Inject.P99(), shallow.Inject.P99())
	}
	r := res.Render()
	for _, want := range []string{"Overcommit sweep", "fifo", "fair", "4:1"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(res.Table().Rows) != wantCells {
		t.Errorf("table rows = %d, want %d", len(res.Table().Rows), wantCells)
	}
}
