package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// overcommitPCPUs is the sweep host: 2 sockets × 4 CPUs. Small enough that
// the 16-cell sweep stays fast, two sockets so sched.Fair's same-socket
// work stealing is exercised.
const overcommitPCPUs = 8

// OvercommitCell is one (ratio, mode, policy) measurement: the latency-
// sensitive sync VM's wakeup-injection latency while (ratio-1) spinning
// antagonist VMs contend for every pCPU.
type OvercommitCell struct {
	Ratio  int
	Mode   core.Mode
	Policy sched.Kind
	// Inject is the sync VM's reschedule-IPI pend-to-delivery latency: how
	// long a woken vCPU's interrupt waits for that vCPU to reach a pCPU.
	Inject metrics.Histogram
	// SyncCounters is the sync VM's full counter set (detail tables).
	SyncCounters metrics.Counters
}

// OvercommitResult is the §3.1-style overcommit sweep: vCPU:pCPU ratios
// 1:1→4:1 under both host scheduling policies and both tick mechanisms.
type OvercommitResult struct {
	Duration sim.Time
	Ratios   []int
	Modes    []core.Mode
	Policies []sched.Kind
	// Cells is ratio-major, then mode, then policy.
	Cells []OvercommitCell
}

// Cell returns the measurement for (ratio, mode, policy); nil when absent.
func (r *OvercommitResult) Cell(ratio int, mode core.Mode, policy sched.Kind) *OvercommitCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Ratio == ratio && c.Mode == mode && c.Policy == policy {
			return c
		}
	}
	return nil
}

// overcommitScenario declares one cell's fleet: a sync VM with one vCPU per
// pCPU (created first, so its vCPUs win scheduler tie-breaks the way
// latency-sensitive tasks win wakeup preemption on real hosts), plus
// (ratio-1) antagonist VMs whose vCPUs spin for the whole run.
func overcommitScenario(opts Options, ratio int, mode core.Mode, policy sched.Kind, dur sim.Time) Scenario {
	pin := func() []hw.CPUID {
		out := make([]hw.CPUID, overcommitPCPUs)
		for i := range out {
			out[i] = hw.CPUID(i)
		}
		return out
	}
	s := Scenario{
		Name:          fmt.Sprintf("overcommit/%d:1/%s/%s", ratio, mode, policy),
		Topology:      hw.Topology{Sockets: 2, CPUsPerSocket: 4, CrossSocketTax: 1.35},
		SchedPolicy:   policy,
		Duration:      dur,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
	}
	bench := workload.DefaultSyncBench()
	bench.Threads = overcommitPCPUs
	bench.SyncsPerSec = 4000
	bench.Duration = dur
	s.VMs = append(s.VMs, VMSpec{
		Name: "sync", Mode: mode, Placement: pin(),
		Setup: func(vm *kvm.VM) error { return bench.Spawn(vm.Kernel()) },
	})
	for a := 1; a < ratio; a++ {
		s.VMs = append(s.VMs, VMSpec{
			Name: fmt.Sprintf("spin%d", a), Mode: mode, Placement: pin(),
			Setup: func(vm *kvm.VM) error {
				for i := 0; i < overcommitPCPUs; i++ {
					vm.Kernel().Spawn(fmt.Sprintf("hog%d", i), i,
						guest.Steps(guest.Compute(2*dur)))
				}
				return nil
			},
		})
	}
	return s
}

// RunOvercommit sweeps vCPU:pCPU ratios 1:1→4:1 for each tick mode × host
// scheduling policy and reports the sync VM's injection-latency quantiles.
// At 1:1 the policies coincide (empty queues); from 2:1 up, FIFO makes a
// woken vCPU wait behind full fixed timeslices of spinning antagonists,
// while Fair's depth-scaled timeslice and least-vruntime pick bound the
// wait — the motivation for making the host scheduler pluggable.
func RunOvercommit(opts Options) (*OvercommitResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dur := sim.Time(float64(sim.Second) * opts.Scale)
	if dur < 100*sim.Millisecond {
		dur = 100 * sim.Millisecond
	}
	res := &OvercommitResult{
		Duration: dur,
		Ratios:   []int{1, 2, 3, 4},
		Modes:    []core.Mode{core.DynticksIdle, core.Paratick},
		Policies: []sched.Kind{sched.FIFO, sched.Fair},
	}
	type cellKey struct {
		ratio  int
		mode   core.Mode
		policy sched.Kind
	}
	var keys []cellKey
	for _, ratio := range res.Ratios {
		for _, mode := range res.Modes {
			for _, policy := range res.Policies {
				keys = append(keys, cellKey{ratio, mode, policy})
			}
		}
	}
	cells, err := runParallel(opts, len(keys),
		func(i int, a *arena) (OvercommitCell, error) {
			k := keys[i]
			sr := a.resultScratch()
			if err := runScenarioInto(overcommitScenario(opts, k.ratio, k.mode, k.policy, dur),
				opts.Seed, opts.Meter, a, sr); err != nil {
				return OvercommitCell{}, err
			}
			sync := &sr.Results[0].Counters
			return OvercommitCell{
				Ratio:        k.ratio,
				Mode:         k.mode,
				Policy:       k.policy,
				Inject:       sync.InjectLatency[metrics.VecReschedule],
				SyncCounters: *sync,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	return res, nil
}

// Table renders the sweep as one row per cell (also the CSV layout).
func (r *OvercommitResult) Table() *metrics.Table {
	t := metrics.NewTable("",
		"ratio", "mode", "sched", "wakeups", "p50", "p95", "p99", "max")
	for i := range r.Cells {
		c := &r.Cells[i]
		h := &c.Inject
		t.AddRow(fmt.Sprintf("%d:1", c.Ratio), c.Mode.String(), c.Policy.String(),
			fmt.Sprintf("%d", h.Count()),
			h.P50().String(), h.P95().String(), h.P99().String(), h.Max().String())
	}
	return t
}

// Render prints the sweep plus full per-vector detail at the deepest ratio.
func (r *OvercommitResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overcommit sweep: sync VM wakeup injection latency, %d pCPUs, %v\n",
		overcommitPCPUs, r.Duration)
	fmt.Fprintf(&b, "(resched-IPI pend-to-delivery; %d:1 adds spinning antagonist VMs)\n\n",
		r.Ratios[len(r.Ratios)-1])
	b.WriteString(r.Table().String())
	deepest := r.Ratios[len(r.Ratios)-1]
	for _, mode := range r.Modes {
		for _, policy := range r.Policies {
			c := r.Cell(deepest, mode, policy)
			if c == nil {
				continue
			}
			title := fmt.Sprintf("injection latency at %d:1 [%s, sched=%s]", deepest, mode, policy)
			if t := metrics.InjectLatencyTable(title, &c.SyncCounters); t != nil {
				b.WriteString("\n")
				b.WriteString(t.String())
			}
		}
	}
	return b.String()
}
