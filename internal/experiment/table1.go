package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/analytic"
	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// Table1Row holds one §3.3 workload's timer-management VM exits: the
// analytic predictions (both conventions) plus the full-simulation
// measurement for every tick mode.
type Table1Row struct {
	Workload       string
	AnalyticPaper  analytic.Table1Row // printed-table convention
	AnalyticStrict analytic.Table1Row // literal §3.1/§3.2 formulas
	// Simulated timer-related VM exits per mode.
	SimPeriodic uint64
	SimTickless uint64
	SimParatick uint64
}

// Table1Result is the full experiment output.
type Table1Result struct {
	Duration sim.Time
	Rows     []Table1Row
}

// RunTable1 reproduces Table 1: the four hypothetical workloads W1–W4 on a
// 16-pCPU system, 16-vCPU VMs, 250 Hz, run both through the analytic
// model (§3) and the full simulator. The workloads run for
// 10 s × opts.Scale.
func RunTable1(opts Options) (*Table1Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dur := sim.Time(float64(analytic.Table1Duration) * opts.Scale)
	res := &Table1Result{Duration: dur}
	paper := analytic.Table1(analytic.PaperTable)
	strict := analytic.Table1(analytic.StrictFormula)

	workloads := []string{"W1", "W2", "W3", "W4"}
	modes := []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick}
	// Flatten the (workload, mode) grid into independent parallel jobs and
	// regroup by index.
	exits, err := runParallel(opts, len(workloads)*len(modes),
		func(i int, a *arena) (uint64, error) {
			w := workloads[i/len(modes)]
			nVMs := 1
			if w == "W2" || w == "W4" {
				nVMs = 4
			}
			sync := w == "W3" || w == "W4"
			return runTable1Workload(opts, modes[i%len(modes)], nVMs, sync, dur, a)
		})
	if err != nil {
		return nil, err
	}
	for i, w := range workloads {
		res.Rows = append(res.Rows, Table1Row{
			Workload:       w,
			AnalyticPaper:  paper[i],
			AnalyticStrict: strict[i],
			SimPeriodic:    exits[i*len(modes)],
			SimTickless:    exits[i*len(modes)+1],
			SimParatick:    exits[i*len(modes)+2],
		})
	}
	return res, nil
}

// runTable1Workload simulates nVMs 16-vCPU VMs (idle, or running the §3.3
// blocking-sync workload) for dur and returns total timer-related exits.
func runTable1Workload(opts Options, mode core.Mode, nVMs int, sync bool, dur sim.Time, a *arena) (uint64, error) {
	// All VMs span the 16 pCPUs (vCPU i on pCPU i) — the overcommitted
	// consolidation scenario of §3.1.
	placement := make([]hw.CPUID, 16)
	for i := range placement {
		placement[i] = hw.CPUID(i)
	}
	s := Scenario{
		Name:          fmt.Sprintf("table1/%s", mode),
		Topology:      hw.SmallTopology(), // the §3.3 16-pCPU system
		SchedPolicy:   opts.SchedPolicy,
		Duration:      dur,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
	}
	for n := 0; n < nVMs; n++ {
		vs := VMSpec{Name: fmt.Sprintf("vm%d", n), Mode: mode, Placement: placement}
		if sync {
			vs.TaskHint = workload.DefaultSyncBench().Threads
			vs.Setup = func(vm *kvm.VM) error {
				bench := workload.DefaultSyncBench()
				bench.Duration = dur
				return bench.Spawn(vm.Kernel())
			}
		}
		s.VMs = append(s.VMs, vs)
	}
	sr := a.resultScratch()
	if err := runScenarioInto(s, opts.Seed, opts.Meter, a, sr); err != nil {
		return 0, err
	}
	var exits uint64
	for i := range sr.Results {
		exits += sr.Results[i].Counters.TimerExits()
	}
	return exits, nil
}

// Render prints Table 1 with analytic and simulated columns. Simulated
// counts are normalized to the paper's 10-second duration when a smaller
// scale was used.
func (r *Table1Result) Render() string {
	norm := float64(analytic.Table1Duration) / float64(r.Duration)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: timer-management VM exits, %v simulated (normalized to 10s)\n\n", r.Duration)
	t := metrics.NewTable("",
		"workload", "mechanism", "paper-printed", "strict-formula", "simulated")
	for _, row := range r.Rows {
		f := func(v float64) string { return fmt.Sprintf("%.0f", v) }
		s := func(v uint64) string { return fmt.Sprintf("%.0f", float64(v)*norm) }
		t.AddRow(row.Workload, "periodic", f(row.AnalyticPaper.Periodic), f(row.AnalyticStrict.Periodic), s(row.SimPeriodic))
		t.AddRow(row.Workload, "tickless", f(row.AnalyticPaper.Tickless), f(row.AnalyticStrict.Tickless), s(row.SimTickless))
		t.AddRow(row.Workload, "paratick", f(row.AnalyticPaper.Paratick), f(row.AnalyticStrict.Paratick), s(row.SimParatick))
	}
	b.WriteString(t.String())
	return b.String()
}
