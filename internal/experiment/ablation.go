package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// AblationResult compares design-choice variants on a fixed workload.
type AblationResult struct {
	Title string
	Rows  []AblationRow
	// Warmup accounts the events shared by warm-starting variant arms from
	// a forked checkpoint (zero when every variant ran from boot).
	Warmup WarmupStats
}

// AblationRow is one variant's measurement.
type AblationRow struct {
	Variant    string
	TimerExits uint64
	TotalExits uint64
	Runtime    sim.Time
	GuestTicks uint64
	BusyCycles sim.Time
}

func (r *AblationResult) add(variant string, res metrics.Result) {
	r.Rows = append(r.Rows, AblationRow{
		Variant:    variant,
		TimerExits: res.Counters.TimerExits(),
		TotalExits: res.Counters.TotalExits(),
		Runtime:    res.WallTime,
		GuestTicks: res.Counters.GuestTicks,
		BusyCycles: res.Counters.BusyCycles(),
	})
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	t := metrics.NewTable(r.Title,
		"variant", "timer-exits", "total-exits", "guest-ticks", "busy-cycles", "runtime")
	for _, row := range r.Rows {
		t.AddRow(row.Variant,
			fmt.Sprintf("%d", row.TimerExits),
			fmt.Sprintf("%d", row.TotalExits),
			fmt.Sprintf("%d", row.GuestTicks),
			row.BusyCycles.String(),
			row.Runtime.String())
	}
	out := t.String()
	if line := r.Warmup.String(); line != "" {
		out += line + "\n"
	}
	return out
}

// warmupInstant sizes a fork point for workload-completion runs: far enough
// in to amortize boot and cache warmup across the arms, scaled with the
// workload, but always well short of the earliest completion.
func warmupInstant(base sim.Time, scale float64, floor sim.Time) sim.Time {
	w := sim.Time(float64(base) * scale)
	if w < floor {
		w = floor
	}
	return w
}

// fioSetup builds a random-read fio workload for ablation runs.
func fioSetup(opts Options) func(vm *kvm.VM) error {
	job := workload.DefaultFioJob(workload.RandRead, 4096, fioTotalBytes(4096, opts.Scale))
	return func(vm *kvm.VM) error {
		dev, err := vm.AttachDevice("disk0", opts.Device)
		if err != nil {
			return err
		}
		return job.Spawn(vm.Kernel(), dev)
	}
}

// timerAppProgram is an event-loop application: it sleeps on a timeout and
// does a burst of work on each expiry — the soft-timer-driven idle pattern
// whose wakeup-timer management §5.2.4/§5.2.5 optimize.
type timerAppProgram struct {
	iters int
	//snap:skip immutable program parameter from the scenario
	interval sim.Time
	//snap:skip immutable program parameter from the scenario
	work     sim.Time
	sleeping bool
}

func (p *timerAppProgram) Next(ctx *guest.StepCtx) guest.Step {
	if p.iters <= 0 {
		return guest.Done()
	}
	if !p.sleeping {
		p.sleeping = true
		return guest.Sleep(ctx.Rand.Jitter(p.interval, 0.2))
	}
	p.sleeping = false
	p.iters--
	return guest.Compute(ctx.Rand.Jitter(p.work, 0.2))
}

// RunIdleExitAblation evaluates the §5.2.5 heuristic ("do not disable the
// idle wakeup timer on idle exit"). The workload pairs a heartbeat task
// (periodic soft timer) with a sync-I/O loop on the same vCPU: every I/O
// block enters idle with the heartbeat pending, so a wakeup timer must be
// armed — and most wakes come from I/O completions, long before that timer
// fires. With the paper's heuristic the armed timer is simply reused across
// idle cycles (≈0 MSR writes per I/O); disarming on idle exit pays a stop
// plus a re-arm on every single cycle. The two paratick variants fork from
// one warmed checkpoint, differing only in the policy option.
func RunIdleExitAblation(opts Options) (*AblationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: §5.2.5 keep-wakeup-timer-armed heuristic (heartbeat + fio rndr 4k)"}
	job := workload.DefaultFioJob(workload.RandRead, 4096, fioTotalBytes(4096, opts.Scale))
	// Size the heartbeat to tick for roughly the I/O loop's lifetime.
	heartbeat := 4 * sim.Millisecond
	iters := job.Ops() * 30 / int(heartbeat/sim.Microsecond)
	if iters < 10 {
		iters = 10
	}
	setup := func(vm *kvm.VM) error {
		dev, err := vm.AttachDevice("disk0", opts.Device)
		if err != nil {
			return err
		}
		if err := job.Spawn(vm.Kernel(), dev); err != nil {
			return err
		}
		vm.Kernel().Spawn("heartbeat", 0, &timerAppProgram{
			iters:    iters,
			interval: heartbeat,
			work:     50 * sim.Microsecond,
		})
		return nil
	}
	// The heartbeat alone keeps the run alive ≥ 10 beats ≈ 40 ms, so a
	// millisecond-class fork point is always mid-run.
	warm := warmupInstant(4*sim.Millisecond, opts.Scale, sim.Millisecond)
	type job2 struct {
		results []metrics.Result
		warmup  WarmupStats
	}
	// Job 0 is the dynticks baseline (no options to vary: a straight run);
	// job 1 warms one paratick world and forks the keep/disarm arms.
	jobs, err := runParallel(opts, 2,
		func(i int, a *arena) (job2, error) {
			if i == 0 {
				spec := Spec{
					Name:          "ablation-idle-exit/dynticks",
					Mode:          core.DynticksIdle,
					VCPUs:         1,
					SchedPolicy:   opts.SchedPolicy,
					SnapshotProbe: opts.SnapshotProbe,
					Quantum:       opts.Quantum,
					Shards:        opts.Shards,
					Setup:         setup,
				}
				r, err := run(spec, opts.Seed, opts.Meter, a)
				if err != nil {
					return job2{}, err
				}
				return job2{results: []metrics.Result{r}}, nil
			}
			group := Spec{
				Name:          "ablation-idle-exit/paratick",
				Mode:          core.Paratick,
				VCPUs:         1,
				SchedPolicy:   opts.SchedPolicy,
				SnapshotProbe: opts.SnapshotProbe,
				Quantum:       opts.Quantum,
				Shards:        opts.Shards,
				Setup:         setup,
			}.scenario()
			arms := []func(*world) error{
				nil, // keep armed: the group configuration as checkpointed
				func(w *world) error {
					return w.vms[0].Kernel().SetPolicyOptions(core.Options{DisarmOnIdleExit: true})
				},
			}
			results, ck, err := forkScenario(group, opts.Seed, warm, arms, opts.Meter, a)
			if err != nil {
				return job2{}, err
			}
			out := job2{}
			for _, r := range results {
				out.results = append(out.results, r.Results[0])
			}
			out.warmup.record(ck, len(arms))
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	res.add("dynticks (baseline)", jobs[0].results[0])
	res.add("paratick (keep armed, paper)", jobs[1].results[0])
	res.add("paratick (disarm on idle exit)", jobs[1].results[1])
	res.Warmup.merge(jobs[1].warmup)
	return res, nil
}

// RunFrequencyMismatchAblation evaluates the §4.1 extension: a guest
// declaring 1000 Hz ticks on a 250 Hz host, with and without the
// preemption-timer top-up. The guest-tick count shows whether the guest
// actually receives its requested rate. Both variants fork from one warmed
// checkpoint; the top-up is a host-side entry hook swapped at the fork.
func RunFrequencyMismatchAblation(opts Options) (*AblationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: §4.1 guest 1000 Hz on host 250 Hz (busy vCPU)"}
	work := sim.Time(float64(200*sim.Millisecond) * opts.Scale * 10)
	group := Spec{
		Name:          "ablation-freq/paratick-1000hz",
		Mode:          core.Paratick,
		VCPUs:         1,
		GuestHz:       1000,
		HostHz:        250,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
		Setup: func(vm *kvm.VM) error {
			vm.Kernel().Spawn("spin", 0, guest.Steps(guest.Compute(work)))
			return nil
		},
	}.scenario()
	arms := []func(*world) error{
		func(w *world) error {
			w.vms[0].SetEntryHook(&core.ParatickHost{})
			return nil
		},
		func(w *world) error {
			w.vms[0].SetEntryHook(&core.ParatickHost{TopUp: true})
			return nil
		},
	}
	// The busy spin runs for ~work; fork after an eighth of it.
	results, ck, err := forkScenario(group, opts.Seed, work/8, arms, opts.Meter, nil)
	if err != nil {
		return nil, err
	}
	res.add("paratick 1000Hz, no top-up", results[0].Results[0])
	res.add("paratick 1000Hz, top-up", results[1].Results[0])
	res.Warmup.record(ck, len(arms))
	return res, nil
}

// RunHaltPollAblation shows why the paper disables halt polling (§6): it
// trades burned host cycles for wake latency on a blocking-sync workload.
// The windows are a host knob read at each HLT exit, so all three variants
// fork from one checkpoint warmed with polling disabled.
func RunHaltPollAblation(opts Options) (*AblationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: KVM halt polling (fio rndr 4k, dynticks)"}
	windows := []sim.Time{0, 50 * sim.Microsecond, 200 * sim.Microsecond}
	group := Spec{
		Name:          "ablation-haltpoll",
		Mode:          core.DynticksIdle,
		VCPUs:         1,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
		Setup:         fioSetup(opts),
	}.scenario()
	arms := make([]func(*world) error, len(windows))
	for i, hp := range windows {
		hp := hp
		arms[i] = func(w *world) error {
			return w.host.SetHaltPoll(hp)
		}
	}
	warm := warmupInstant(2*sim.Millisecond, opts.Scale, 100*sim.Microsecond)
	results, ck, err := forkScenario(group, opts.Seed, warm, arms, opts.Meter, nil)
	if err != nil {
		return nil, err
	}
	for i, hp := range windows {
		name := "disabled (paper)"
		if hp > 0 {
			name = "window " + hp.String()
		}
		res.add(name, results[i].Results[0])
	}
	res.Warmup.record(ck, len(arms))
	return res, nil
}

// spinLockProgram loops: compute, then a contended critical section.
type spinLockProgram struct {
	//snap:skip shared-object wiring, re-bound when the program is rebuilt
	lock  *guest.Lock
	iters int
	phase int
}

func (p *spinLockProgram) Next(ctx *guest.StepCtx) guest.Step {
	switch p.phase {
	case 0:
		if p.iters <= 0 {
			return guest.Done()
		}
		p.iters--
		p.phase = 1
		return guest.Compute(ctx.Rand.Exp(60 * sim.Microsecond))
	case 1:
		p.phase = 2
		return guest.Acquire(p.lock)
	case 2:
		p.phase = 3
		return guest.Compute(ctx.Rand.Jitter(15*sim.Microsecond, 0.3))
	default:
		p.phase = 0
		return guest.Release(p.lock)
	}
}

// RunPLEAblation contrasts blocking synchronization with optimistic
// spinning, with and without pause-loop exiting — the §6 setup note
// ("we disabled pause loop exiting (PLE) because this optimization is only
// beneficial in overcommitted environments") made measurable. The spin
// window (guest) and PLE window (host) are both consulted per decision, so
// the three variants fork from one blocking-sync warmup.
func RunPLEAblation(opts Options) (*AblationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: blocking sync vs optimistic spin vs spin+PLE (4 vCPUs, hot lock)"}
	iters := int(4000 * opts.Scale)
	if iters < 100 {
		iters = 100
	}
	group := Spec{
		Name:          "ple",
		Mode:          core.DynticksIdle,
		VCPUs:         4,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
		Setup: func(vm *kvm.VM) error {
			lock := vm.Kernel().NewLock("hot")
			for i := 0; i < 4; i++ {
				vm.Kernel().Spawn(fmt.Sprintf("t%d", i), i, &spinLockProgram{lock: lock, iters: iters})
			}
			return nil
		},
	}.scenario()
	variants := []struct {
		name string
		spin sim.Time
		ple  sim.Time
	}{
		{"blocking (paper workloads)", 0, 0},
		{"spin 25us, PLE off (paper host)", 25 * sim.Microsecond, 0},
		{"spin 25us, PLE 10us window", 25 * sim.Microsecond, 10 * sim.Microsecond},
	}
	arms := make([]func(*world) error, len(variants))
	for i, v := range variants {
		v := v
		arms[i] = func(w *world) error {
			if err := w.vms[0].Kernel().SetAdaptiveSpin(v.spin); err != nil {
				return err
			}
			return w.host.SetPLEWindow(v.ple)
		}
	}
	// ≥100 iterations × ≥60us of compute per task keeps the run in the
	// multi-millisecond range; fork inside the first millisecond.
	warm := warmupInstant(5*sim.Millisecond, opts.Scale, 500*sim.Microsecond)
	results, ck, err := forkScenario(group, opts.Seed, warm, arms, opts.Meter, nil)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res.add(v.name, results[i].Results[0])
	}
	res.Warmup.record(ck, len(arms))
	return res, nil
}

// RunCoalescingAblation measures interrupt moderation: batching device
// completions reduces injection/exit traffic for both tick mechanisms,
// shrinking (but not erasing) paratick's relative benefit — context for the
// paper's note that its test system lacks an SR-IOV device (§6.3). The
// workload issues bursts of write-behind I/O so completions can coalesce.
// One warmed group per mode; the coalescing window is a device profile
// retuned at the fork.
func RunCoalescingAblation(opts Options) (*AblationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation: device interrupt coalescing (fio seqwr 4k bursts)"}
	job := workload.DefaultFioJob(workload.SeqWrite, 4096, fioTotalBytes(4096, opts.Scale))
	job.WriteBehind = 8 // mostly async: bursts of in-flight writes
	windows := []sim.Time{0, 30 * sim.Microsecond}
	modes := []core.Mode{core.DynticksIdle, core.Paratick}
	warm := warmupInstant(sim.Millisecond, opts.Scale, 50*sim.Microsecond)
	type modeJob struct {
		results []metrics.Result
		warmup  WarmupStats
	}
	jobs, err := runParallel(opts, len(modes),
		func(mi int, a *arena) (modeJob, error) {
			mode := modes[mi]
			base := opts.Device
			base.CoalesceWindow = windows[0]
			base.CoalesceMax = 8
			group := Spec{
				Name:          fmt.Sprintf("ablation-coalesce/%v", mode),
				Mode:          mode,
				VCPUs:         1,
				SchedPolicy:   opts.SchedPolicy,
				SnapshotProbe: opts.SnapshotProbe,
				Quantum:       opts.Quantum,
				Shards:        opts.Shards,
				Setup: func(vm *kvm.VM) error {
					d, err := vm.AttachDevice("disk0", base)
					if err != nil {
						return err
					}
					return job.Spawn(vm.Kernel(), d)
				},
			}.scenario()
			arms := make([]func(*world) error, len(windows))
			for i, coalesce := range windows {
				profile := opts.Device
				profile.CoalesceWindow = coalesce
				profile.CoalesceMax = 8
				arms[i] = func(w *world) error {
					return w.vms[0].Device("disk0").SetProfile(profile)
				}
			}
			results, ck, err := forkScenario(group, opts.Seed, warm, arms, opts.Meter, a)
			if err != nil {
				return modeJob{}, err
			}
			out := modeJob{}
			for _, r := range results {
				out.results = append(out.results, r.Results[0])
			}
			out.warmup.record(ck, len(arms))
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for i, coalesce := range windows {
		for j, mode := range modes {
			name := mode.String() + ", no coalescing"
			if coalesce > 0 {
				name = mode.String() + ", coalesce " + coalesce.String()
			}
			res.add(name, jobs[j].results[i])
		}
	}
	for _, j := range jobs {
		res.Warmup.merge(j.warmup)
	}
	return res, nil
}

// RunAllAblations runs every ablation and concatenates the reports.
func RunAllAblations(opts Options) (string, error) {
	var b strings.Builder
	a1, err := RunIdleExitAblation(opts)
	if err != nil {
		return "", err
	}
	b.WriteString(a1.Render())
	b.WriteString("\n")
	a2, err := RunFrequencyMismatchAblation(opts)
	if err != nil {
		return "", err
	}
	b.WriteString(a2.Render())
	b.WriteString("\n")
	a3, err := RunHaltPollAblation(opts)
	if err != nil {
		return "", err
	}
	b.WriteString(a3.Render())
	b.WriteString("\n")
	a4, err := RunPLEAblation(opts)
	if err != nil {
		return "", err
	}
	b.WriteString(a4.Render())
	b.WriteString("\n")
	a5, err := RunCoalescingAblation(opts)
	if err != nil {
		return "", err
	}
	b.WriteString(a5.Render())
	return b.String(), nil
}
