package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/workload"
)

// FioCell is one (pattern, block size) measurement pair of Fig. 6.
type FioCell struct {
	Pattern   workload.FioPattern
	BlockSize int
	// Baseline and Paratick carry the raw results; IOThroughputDelta is
	// the relative change in direct I/O throughput, the paper's fig. 6b
	// metric ("I/O throughput equates to system throughput for this use
	// case").
	Baseline          metrics.Result
	Paratick          metrics.Result
	ExitsDelta        float64
	TimerExitsDelta   float64
	IOThroughputDelta float64
	RuntimeDelta      float64
}

// FioCategory aggregates one pattern across the 4k–256k block sizes, as the
// paper's per-category bars do.
type FioCategory struct {
	Pattern           workload.FioPattern
	Cells             []FioCell
	ExitsDelta        float64
	TimerExitsDelta   float64
	IOThroughputDelta float64
	RuntimeDelta      float64
}

// FioFigure is the full Fig. 6 + Table 4 dataset.
type FioFigure struct {
	Title      string
	Categories []FioCategory
	// Aggregates across all categories (Table 4).
	ExitsDelta        float64
	IOThroughputDelta float64
	RuntimeDelta      float64
}

// fioTotalBytes sizes the dataset so each run performs a few thousand ops
// at full scale.
func fioTotalBytes(blockSize int, scale float64) int64 {
	total := int64(float64(64<<20) * scale)
	if total < int64(blockSize)*16 {
		total = int64(blockSize) * 16
	}
	return total
}

// RunFig6 reproduces Fig. 6 + Table 4: fio's four access patterns over the
// block-size sweep, sync engine, 1-vCPU VM.
func RunFig6(opts Options) (*FioFigure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	fig := &FioFigure{Title: fmt.Sprintf("Figure 6: fio on %s (1 vCPU)", opts.Device.Name)}
	patterns := []workload.FioPattern{
		workload.SeqRead, workload.SeqWrite, workload.RandRead, workload.RandWrite,
	}
	sizes := workload.FioBlockSizes()
	// Flatten the (pattern, block size) grid so every cell is one parallel
	// job; cells are regrouped by index, keeping category order identical to
	// the serial nested loops.
	cells, err := runParallel(opts, len(patterns)*len(sizes),
		func(i int, a *arena) (FioCell, error) {
			return runFioCell(opts, patterns[i/len(sizes)], sizes[i%len(sizes)], a)
		})
	if err != nil {
		return nil, err
	}
	for pi, pat := range patterns {
		cat := FioCategory{Pattern: pat, Cells: cells[pi*len(sizes) : (pi+1)*len(sizes)]}
		n := float64(len(cat.Cells))
		for _, c := range cat.Cells {
			cat.ExitsDelta += c.ExitsDelta / n
			cat.TimerExitsDelta += c.TimerExitsDelta / n
			cat.IOThroughputDelta += c.IOThroughputDelta / n
			cat.RuntimeDelta += c.RuntimeDelta / n
		}
		fig.Categories = append(fig.Categories, cat)
	}
	n := float64(len(fig.Categories))
	for _, c := range fig.Categories {
		fig.ExitsDelta += c.ExitsDelta / n
		fig.IOThroughputDelta += c.IOThroughputDelta / n
		fig.RuntimeDelta += c.RuntimeDelta / n
	}
	return fig, nil
}

func runFioCell(opts Options, pat workload.FioPattern, bs int, a *arena) (FioCell, error) {
	job := workload.DefaultFioJob(pat, bs, fioTotalBytes(bs, opts.Scale))
	spec := Spec{
		Name:          fmt.Sprintf("fio/%s/%dk", pat, bs/1024),
		VCPUs:         1,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
		Setup: func(vm *kvm.VM) error {
			dev, err := vm.AttachDevice("disk0", opts.Device)
			if err != nil {
				return err
			}
			return job.Spawn(vm.Kernel(), dev)
		},
	}
	base := spec
	base.Mode = core.DynticksIdle
	baseRes, err := run(base, opts.Seed, opts.Meter, a)
	if err != nil {
		return FioCell{}, err
	}
	para := spec
	para.Mode = core.Paratick
	paraRes, err := run(para, opts.Seed, opts.Meter, a)
	if err != nil {
		return FioCell{}, err
	}
	cell := FioCell{Pattern: pat, BlockSize: bs, Baseline: baseRes, Paratick: paraRes}
	cmp := metrics.Compare(baseRes, paraRes)
	cell.ExitsDelta = cmp.ExitsDelta
	cell.TimerExitsDelta = cmp.TimerExitsDelta
	cell.RuntimeDelta = cmp.RuntimeDelta
	bt, pt := baseRes.IOThroughputMBps(), paraRes.IOThroughputMBps()
	if bt > 0 {
		cell.IOThroughputDelta = pt/bt - 1
	}
	return cell, nil
}

// Render prints Fig. 6 as the paper's three panels.
func (f *FioFigure) Render() string {
	var b strings.Builder
	exits := metrics.NewBarChart(f.Title + " — (a) relative VM exits")
	thr := metrics.NewBarChart(f.Title + " — (b) relative I/O throughput")
	rt := metrics.NewBarChart(f.Title + " — (c) relative execution time")
	for _, c := range f.Categories {
		exits.Add(c.Pattern.String(), c.ExitsDelta)
		thr.Add(c.Pattern.String(), c.IOThroughputDelta)
		rt.Add(c.Pattern.String(), c.RuntimeDelta)
	}
	b.WriteString(exits.String())
	b.WriteString("\n")
	b.WriteString(thr.String())
	b.WriteString("\n")
	b.WriteString(rt.String())
	fmt.Fprintf(&b, "\naggregate: VM exits %s, I/O throughput %s, execution time %s\n",
		metrics.Pct(f.ExitsDelta), metrics.Pct(f.IOThroughputDelta), metrics.Pct(f.RuntimeDelta))
	return b.String()
}

// Table renders the per-cell data.
func (f *FioFigure) Table() *metrics.Table {
	t := metrics.NewTable(f.Title,
		"pattern", "block", "exits", "timer-exits", "io-throughput", "exec-time",
		"base-MB/s", "para-MB/s")
	for _, cat := range f.Categories {
		for _, c := range cat.Cells {
			t.AddRow(cat.Pattern.String(), fmt.Sprintf("%dk", c.BlockSize/1024),
				metrics.Pct1(c.ExitsDelta), metrics.Pct1(c.TimerExitsDelta),
				metrics.Pct1(c.IOThroughputDelta), metrics.Pct1(c.RuntimeDelta),
				fmt.Sprintf("%.1f", c.Baseline.IOThroughputMBps()),
				fmt.Sprintf("%.1f", c.Paratick.IOThroughputMBps()))
		}
		t.AddRow(cat.Pattern.String(), "MEAN",
			metrics.Pct1(cat.ExitsDelta), metrics.Pct1(cat.TimerExitsDelta),
			metrics.Pct1(cat.IOThroughputDelta), metrics.Pct1(cat.RuntimeDelta), "", "")
	}
	return t
}

// RenderTable4 renders Table 4.
func RenderTable4(f *FioFigure) *metrics.Table {
	t := metrics.NewTable("Table 4: average improvement, phoronix-fio",
		"VM exits", "System throughput", "Execution time")
	t.AddRow(metrics.Pct(f.ExitsDelta), metrics.Pct(f.IOThroughputDelta), metrics.Pct(f.RuntimeDelta))
	return t
}
