package experiment

import (
	"fmt"
	"testing"

	"paratick/internal/metrics"
)

// renderAll runs every experiment at the given worker count and concatenates
// each rendered table/figure, so any ordering or numeric divergence between
// worker counts shows up as a byte difference.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	opts := DefaultOptions()
	opts.Scale = 0.05
	opts.Workers = workers
	opts.Meter = &metrics.Meter{}
	return renderAllOpts(t, opts)
}

// renderAllOpts is renderAll with the options fully caller-controlled; the
// snapshot golden test reuses it to compare probe-on against probe-off runs.
func renderAllOpts(t *testing.T, opts Options) string {
	t.Helper()
	var out string
	t1, err := RunTable1(opts)
	if err != nil {
		t.Fatalf("table1 (workers=%d): %v", opts.Workers, err)
	}
	out += t1.Render()

	fig4, err := RunFig4(opts)
	if err != nil {
		t.Fatalf("fig4 (workers=%d): %v", opts.Workers, err)
	}
	out += fig4.Render() + fig4.Table().CSV() + RenderTable2(fig4).CSV()

	fig5, err := RunFig5Size(opts, VMSizes()[0])
	if err != nil {
		t.Fatalf("fig5 (workers=%d): %v", opts.Workers, err)
	}
	out += fig5.Render() + fig5.Table().CSV()

	fig6, err := RunFig6(opts)
	if err != nil {
		t.Fatalf("fig6 (workers=%d): %v", opts.Workers, err)
	}
	out += fig6.Render() + fig6.Table().CSV() + RenderTable4(fig6).CSV()

	cross, err := RunCrossover(opts)
	if err != nil {
		t.Fatalf("crossover (workers=%d): %v", opts.Workers, err)
	}
	out += cross.Render() + cross.Table().CSV()

	cons, err := RunConsolidation(opts)
	if err != nil {
		t.Fatalf("consolidation (workers=%d): %v", opts.Workers, err)
	}
	out += cons.Render()

	oc, err := RunOvercommit(opts)
	if err != nil {
		t.Fatalf("overcommit (workers=%d): %v", opts.Workers, err)
	}
	out += oc.Render() + oc.Table().CSV()

	abl, err := RunAllAblations(opts)
	if err != nil {
		t.Fatalf("ablations (workers=%d): %v", opts.Workers, err)
	}
	out += abl

	if opts.Meter != nil && (opts.Meter.Runs() == 0 || opts.Meter.Events() == 0) {
		t.Fatalf("meter recorded nothing (workers=%d): runs=%d events=%d",
			opts.Workers, opts.Meter.Runs(), opts.Meter.Events())
	}
	return out
}

// TestParallelRunnerDeterminism is the tentpole regression guard: fanning
// runs across a worker pool must not change a single byte of any rendered
// table or CSV relative to the serial runner.
func TestParallelRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism check is slow")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 4)
	if serial != parallel {
		t.Fatalf("workers=4 output diverges from workers=1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			firstDiff(serial, parallel), firstDiff(parallel, serial))
	}
}

// TestParallelRepeatsDeterminism covers the repeats fan-out path: averaging
// over seeds must accumulate in repeat order regardless of worker count.
func TestParallelRepeatsDeterminism(t *testing.T) {
	render := func(workers int) string {
		opts := DefaultOptions()
		opts.Scale = 0.02
		opts.Repeats = 3
		opts.Workers = workers
		fig, err := RunFig4(opts)
		if err != nil {
			t.Fatalf("fig4 repeats (workers=%d): %v", opts.Workers, err)
		}
		return fig.Render() + fig.Table().CSV()
	}
	if serial, parallel := render(1), render(4); serial != parallel {
		t.Fatalf("repeats output diverges:\n%s", firstDiff(serial, parallel))
	}
}

// firstDiff returns a window around the first differing byte for readable
// failure output.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hi := i + 80
			if hi > len(a) {
				hi = len(a)
			}
			return fmt.Sprintf("first difference at byte %d: %q", i, a[lo:hi])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}
