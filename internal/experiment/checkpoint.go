package experiment

import (
	"bytes"
	"fmt"

	"paratick/internal/core"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// Checkpoint is the deterministic state of a scenario frozen mid-run. It
// carries everything needed to continue the run in a rebuilt world: the
// scenario's structural fingerprint (restore refuses a mismatched shape),
// the seed, the freeze instant, and the serialized engine + host state.
// A checkpoint is immutable and safe to restore from concurrently; the
// experiment runners fork one warmed-up checkpoint into independent arms.
type Checkpoint struct {
	fp      []byte
	seed    uint64
	at      sim.Time
	events  uint64
	payload []byte
}

// checkpointKind tags the snapshot container header.
const checkpointKind = "scenario"

// Seed returns the seed the checkpointed run was built with.
func (c *Checkpoint) Seed() uint64 { return c.seed }

// At returns the simulated instant the state was frozen at.
func (c *Checkpoint) At() sim.Time { return c.at }

// Events returns how many engine events the warmup dispatched.
func (c *Checkpoint) Events() uint64 { return c.events }

// Bytes serializes the checkpoint into the versioned container format.
// The bytes are stable: the same logical state always encodes identically.
func (c *Checkpoint) Bytes() []byte {
	var enc snap.Encoder
	snap.WriteHeader(&enc, checkpointKind)
	enc.Section("checkpoint")
	enc.String(string(c.fp))
	enc.U64(c.seed)
	enc.I64(int64(c.at))
	enc.U64(c.events)
	enc.String(string(c.payload))
	return enc.Bytes()
}

// LoadCheckpoint parses a container produced by Checkpoint.Bytes. The state
// payload is validated only when the checkpoint is resumed into a rebuilt
// scenario — the container alone cannot know the object graph.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	dec := snap.NewDecoder(data)
	if err := snap.ReadHeader(dec, checkpointKind); err != nil {
		return nil, err
	}
	dec.Section("checkpoint")
	c := &Checkpoint{}
	c.fp = []byte(dec.String())
	c.seed = dec.U64()
	c.at = sim.Time(dec.I64())
	c.events = dec.U64()
	c.payload = []byte(dec.String())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n := dec.Remaining(); n != 0 {
		return nil, fmt.Errorf("experiment: %d trailing bytes after checkpoint", n)
	}
	return c, nil
}

// CheckpointScenario runs the scenario to the given instant and freezes the
// complete simulator state.
func CheckpointScenario(s Scenario, seed uint64, at sim.Time) (*Checkpoint, error) {
	return checkpointScenario(s, seed, at, nil, nil)
}

// checkpointScenario is CheckpointScenario with telemetry and an arena.
func checkpointScenario(s Scenario, seed uint64, at sim.Time, m *metrics.Meter, a *arena) (*Checkpoint, error) {
	if at <= 0 {
		return nil, fmt.Errorf("experiment %s: checkpoint instant must be positive, got %v", s.Name, at)
	}
	w, err := buildWorld(s, seed, a)
	if err != nil {
		return nil, err
	}
	// In lane mode the freeze instant rounds up to the quantum grid: state
	// is only saveable at a barrier (mailboxes provably empty), and pausing
	// on the grid adds no barrier an uninterrupted run would not have.
	at = w.alignUp(at)
	if at >= w.deadline() {
		return nil, fmt.Errorf("experiment %s: checkpoint instant %v is not before the deadline %v", s.Name, at, w.deadline())
	}
	w.se.RunUntil(at)
	m.AddRun(w.se.Fired())
	if w.se.Stopped() {
		return nil, fmt.Errorf("experiment %s: workload finished before checkpoint instant %v — every resumed arm would measure an already-ended run", s.Name, at)
	}
	state, err := w.save()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		fp:      w.fingerprint(),
		seed:    seed,
		at:      at,
		events:  w.se.Fired(),
		payload: append([]byte(nil), state...),
	}, nil
}

// ResumeScenario rebuilds the scenario, restores the checkpoint into it,
// and runs it to completion. The scenario must be structurally identical to
// the one the checkpoint was taken from (Name, Duration, and SnapshotProbe
// may differ — they do not shape the object graph).
func ResumeScenario(s Scenario, ck *Checkpoint) (*ScenarioResult, error) {
	return resumeCheckpoint(s, ck, nil, nil, nil)
}

// resumeCheckpoint is ResumeScenario with a mutation hook applied between
// restore and run: the fork point where ablation arms retune runtime knobs
// (halt-poll window, policy options, device profile) that construction-time
// state never captures. Arm identity therefore lives entirely in the hook —
// every arm rebuilds from the same group scenario, which is what keeps the
// snapshot's structural sections (VM names, shapes) shared.
func resumeCheckpoint(s Scenario, ck *Checkpoint, mutate func(*world) error, m *metrics.Meter, a *arena) (*ScenarioResult, error) {
	if ck == nil {
		return nil, fmt.Errorf("experiment %s: nil checkpoint", s.Name)
	}
	w, err := buildWorld(s, ck.seed, a)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(w.fingerprint(), ck.fp) {
		return nil, fmt.Errorf("experiment %s: checkpoint was taken from a structurally different scenario (fingerprint %v, rebuilt %v)",
			s.Name, snap.HashBytes(ck.fp), snap.HashBytes(w.fingerprint()))
	}
	if err := w.restore(ck.payload); err != nil {
		return nil, err
	}
	w.resumed = true
	if mutate != nil {
		if err := mutate(w); err != nil {
			return nil, fmt.Errorf("experiment %s: arm setup: %w", s.Name, err)
		}
	}
	w, err = w.run(m)
	if err != nil {
		return nil, err
	}
	return w.finish()
}

// forkScenario warms one group scenario to the fork instant, then runs one
// independent arm per mutation hook, each restored from the shared
// checkpoint. Results are returned in hook order. The arms share every
// warmup event — the savings WarmupStats reports.
func forkScenario(s Scenario, seed uint64, at sim.Time, arms []func(*world) error, m *metrics.Meter, a *arena) ([]*ScenarioResult, *Checkpoint, error) {
	ck, err := checkpointScenario(s, seed, at, m, a)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*ScenarioResult, len(arms))
	for i, mutate := range arms {
		r, err := resumeCheckpoint(s, ck, mutate, m, a)
		if err != nil {
			return nil, nil, err
		}
		out[i] = r
	}
	return out, ck, nil
}

// ReferenceScenario returns the canonical single-VM fio scenario the CLI's
// checkpoint flags operate on: random 4 KiB reads on the configured device
// under the dynticks baseline, sized by opts.Scale.
func ReferenceScenario(opts Options) Scenario {
	return Spec{
		Name:          "reference",
		Mode:          core.DynticksIdle,
		VCPUs:         1,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
		Setup:         fioSetup(opts),
	}.scenario()
}

// WarmupStats accounts what warm-started forking saved: warmup events are
// simulated once per group instead of once per arm.
type WarmupStats struct {
	// Groups is how many warmup checkpoints were taken.
	Groups int
	// Arms is how many runs were forked from those checkpoints.
	Arms int
	// GroupEvents is the number of warmup events actually simulated.
	GroupEvents uint64
	// SavedEvents is the number of warmup-event re-simulations the forks
	// avoided: each group's warmup would otherwise have run once per arm.
	SavedEvents uint64
}

// record accounts one group's checkpoint forked into the given arm count.
func (s *WarmupStats) record(ck *Checkpoint, arms int) {
	s.Groups++
	s.Arms += arms
	s.GroupEvents += ck.events
	if arms > 1 {
		s.SavedEvents += ck.events * uint64(arms-1)
	}
}

// merge folds another accumulator into s.
func (s *WarmupStats) merge(o WarmupStats) {
	s.Groups += o.Groups
	s.Arms += o.Arms
	s.GroupEvents += o.GroupEvents
	s.SavedEvents += o.SavedEvents
}

// String renders the savings line experiment reports append.
func (s WarmupStats) String() string {
	if s.Groups == 0 || s.GroupEvents == 0 {
		return ""
	}
	factor := float64(s.GroupEvents+s.SavedEvents) / float64(s.GroupEvents)
	return fmt.Sprintf("warm-started forks: %d warmup groups forked into %d arms; %d warmup events simulated once, %d re-simulations avoided (%.1fx fewer warmup events)",
		s.Groups, s.Arms, s.GroupEvents, s.SavedEvents, factor)
}
