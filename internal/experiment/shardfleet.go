package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// The shard-fleet scenario: the canonical lane-mode workload. A fleet of
// socket-contained VMs spread round-robin across the paper topology's four
// sockets, each running the fio workload, coupled by a ring of cross-VM
// doorbell IPI streams (every VM kicks its successor, which lives on the
// next socket). It is the scenario the sharded-determinism CI gate, the
// differential tests, and the sharded perf kernel all run: every socket is
// busy, every barrier drains messages, and the report is a pure function
// of (seed, quantum) — never of the shard count.

// shardFleetVCPUs is each fleet VM's vCPU count.
const shardFleetVCPUs = 2

// shardFleetQuantum is the default barrier quantum when opts.Quantum is 0:
// a quarter of the 250 Hz guest tick period, fine enough that cross-socket
// IPI latency stays realistic, coarse enough that barriers stay cheap.
const shardFleetQuantum = sim.Millisecond

// ShardFleetScenario builds the fleet: vms socket-contained VMs (alternating
// paratick/dynticks modes), each spawning the fio workload, linked in a
// cross-socket IPI ring. The scenario runs in lane mode with opts.Quantum
// (default shardFleetQuantum) and opts.Shards.
func ShardFleetScenario(opts Options, vms int) (Scenario, error) {
	if vms < 2 {
		return Scenario{}, fmt.Errorf("experiment shardfleet: need at least 2 VMs, got %d", vms)
	}
	quantum := opts.Quantum
	if quantum == 0 {
		quantum = shardFleetQuantum
	}
	topo := hw.PaperTopology()
	s := Scenario{
		Name:          "shardfleet",
		Topology:      topo,
		SchedPolicy:   opts.SchedPolicy,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       quantum,
		Shards:        opts.Shards,
	}
	for i := 0; i < vms; i++ {
		socket := i % topo.Sockets
		cpus := topo.CPUsOnSocket(socket)
		placement := make([]hw.CPUID, shardFleetVCPUs)
		for j := range placement {
			placement[j] = cpus[(shardFleetVCPUs*(i/topo.Sockets)+j)%len(cpus)]
		}
		mode := core.Paratick
		if i%2 == 1 {
			mode = core.DynticksIdle
		}
		s.VMs = append(s.VMs, VMSpec{
			Name:      fmt.Sprintf("vm%02d", i),
			Mode:      mode,
			Placement: placement,
			Workload:  true,
			Setup:     fioSetup(opts),
		})
	}
	// The IPI ring: VM i kicks VM i+1, which lives on the next socket —
	// every stream crosses lanes. Latency is twice the quantum: the minimum
	// conservative horizon plus one quantum of modeled wire time.
	for i := 0; i < vms; i++ {
		s.CrossIPI = append(s.CrossIPI, CrossIPISpec{
			Src: i, Dst: (i + 1) % vms, DstVCPU: i % shardFleetVCPUs,
			Period:  250 * sim.Microsecond,
			Latency: 2 * quantum,
		})
	}
	return s, nil
}

// ShardFleetResult is the fleet report: per-VM counters plus run totals.
type ShardFleetResult struct {
	VMs     int
	Quantum sim.Time
	Results []metrics.Result
	Events  uint64
}

// RunShardFleet runs the fleet scenario with opts.Seed and returns the
// per-VM report. The output depends on (seed, scale, quantum) only — runs
// with different shard counts are byte-identical, which is what the CI
// sharded-determinism gate diffs.
func RunShardFleet(opts Options, vms int) (*ShardFleetResult, error) {
	if opts.Quantum == 0 {
		opts.Quantum = shardFleetQuantum
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s, err := ShardFleetScenario(opts, vms)
	if err != nil {
		return nil, err
	}
	sr, err := runScenario(s, opts.Seed, opts.Meter, nil)
	if err != nil {
		return nil, err
	}
	return &ShardFleetResult{
		VMs:     vms,
		Quantum: s.Quantum,
		Results: sr.Results,
		Events:  sr.Events,
	}, nil
}

// Render prints the per-VM table: exits, ticks, injected IPIs, wall time.
func (r *ShardFleetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard fleet: %d socket-contained VMs, quantum %v, %d events\n\n",
		r.VMs, r.Quantum, r.Events)
	t := metrics.NewTable("",
		"vm", "mode", "exits", "timer-exits", "virtual-ticks", "wall")
	for _, res := range r.Results {
		t.AddRow(res.Name, res.Mode,
			fmt.Sprintf("%d", res.Counters.TotalExits()),
			fmt.Sprintf("%d", res.Counters.TimerExits()),
			fmt.Sprintf("%d", res.Counters.VirtualTicks),
			res.WallTime.String())
	}
	b.WriteString(t.String())
	return b.String()
}
