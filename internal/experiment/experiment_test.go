package experiment

import (
	"strings"
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/iodev"
	"paratick/internal/kvm"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// smallOpts returns quick-run options for tests.
func smallOpts() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scale accepted")
	}
	bad = DefaultOptions()
	bad.Device = iodev.Profile{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid device accepted")
	}
	bad = DefaultOptions()
	bad.Workers = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative workers accepted")
	}
	o := DefaultOptions()
	if o.WorkerCount() < 1 {
		t.Errorf("default WorkerCount = %d, want >= 1", o.WorkerCount())
	}
	o.Workers = 3
	if o.WorkerCount() != 3 {
		t.Errorf("WorkerCount = %d, want 3", o.WorkerCount())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{Name: "x", VCPUs: 1}, 1); err == nil {
		t.Error("spec with no workload and no duration accepted")
	}
	if _, err := Run(Spec{Name: "x", Duration: sim.Second}, 1); err == nil {
		t.Error("spec with zero vCPUs accepted")
	}
}

func TestRunFixedDuration(t *testing.T) {
	res, err := Run(Spec{Name: "idle", Mode: core.DynticksIdle, VCPUs: 2, Duration: 100 * sim.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime != 100*sim.Millisecond {
		t.Fatalf("wall time = %v", res.WallTime)
	}
	if res.Mode != "dynticks" {
		t.Fatalf("mode = %q", res.Mode)
	}
}

func TestCompareModesOnCompute(t *testing.T) {
	spec := Spec{
		Name:  "compute",
		VCPUs: 1,
		Setup: func(vm *kvm.VM) error {
			vm.Kernel().Spawn("w", 0, guest.Steps(guest.Compute(20*sim.Millisecond)))
			return nil
		},
	}
	cmp, err := CompareModes(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline.Mode != "dynticks" || cmp.Optimized.Mode != "paratick" {
		t.Fatalf("modes: %s vs %s", cmp.Baseline.Mode, cmp.Optimized.Mode)
	}
	if cmp.ExitsDelta >= 0 {
		t.Fatalf("paratick should reduce exits, delta = %v", cmp.ExitsDelta)
	}
}

func TestRunFig4Small(t *testing.T) {
	fig, err := RunFig4(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Comparisons) != 13 {
		t.Fatalf("fig4 has %d benchmarks, want 13", len(fig.Comparisons))
	}
	// The §6.1 headline: exits drop for every benchmark; throughput and
	// runtime never degrade materially (>2% would contradict Fig. 4).
	for _, c := range fig.Comparisons {
		if c.ExitsDelta >= 0 {
			t.Errorf("%s: exits delta %v, want negative", c.Name, c.ExitsDelta)
		}
		if c.ThroughputDelta < -0.02 {
			t.Errorf("%s: throughput regressed: %v", c.Name, c.ThroughputDelta)
		}
		if c.RuntimeDelta > 0.02 {
			t.Errorf("%s: runtime regressed: %v", c.Name, c.RuntimeDelta)
		}
	}
	if fig.Aggregate.ExitsDelta > -0.3 {
		t.Errorf("aggregate exits delta = %v, paper band is around -50%%", fig.Aggregate.ExitsDelta)
	}
	if fig.Aggregate.ThroughputDelta <= 0 {
		t.Errorf("aggregate throughput delta = %v, want positive", fig.Aggregate.ThroughputDelta)
	}
	// Rendering includes all three panels, the aggregate line, and the
	// exit-latency distribution tables for both modes.
	r := fig.Render()
	for _, want := range []string{"(a) relative VM exits", "(b) relative system throughput",
		"(c) relative execution time", "aggregate",
		"exit handling cost (dynticks baseline)", "exit handling cost (paratick)",
		"p50", "p95", "p99"} {
		if !strings.Contains(r, want) {
			t.Errorf("render missing %q", want)
		}
	}
	tb := RenderTable2(fig).String()
	if !strings.Contains(tb, "Table 2") {
		t.Error("table 2 title missing")
	}
}

func TestRunFig5SmallVM(t *testing.T) {
	fig, err := RunFig5Size(smallOpts(), VMSizes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Comparisons) != 13 {
		t.Fatalf("fig5 has %d benchmarks", len(fig.Comparisons))
	}
	if fig.Aggregate.ExitsDelta > -0.25 {
		t.Errorf("aggregate exits delta = %v, want strong reduction", fig.Aggregate.ExitsDelta)
	}
	if fig.Aggregate.ThroughputDelta <= 0 {
		t.Errorf("aggregate throughput delta = %v, want positive", fig.Aggregate.ThroughputDelta)
	}
	// §6.2: throughput gains exceed runtime gains (critical-path argument).
	if fig.Aggregate.ThroughputDelta < -fig.Aggregate.RuntimeDelta {
		t.Errorf("throughput gain (%v) should exceed runtime gain (%v)",
			fig.Aggregate.ThroughputDelta, -fig.Aggregate.RuntimeDelta)
	}
}

func TestVMSizesMatchPaper(t *testing.T) {
	sizes := VMSizes()
	if len(sizes) != 3 {
		t.Fatalf("sizes = %d", len(sizes))
	}
	want := []VMSize{{"small", 4, 1}, {"medium", 16, 2}, {"large", 64, 4}}
	for i, s := range sizes {
		if s != want[i] {
			t.Errorf("size %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestRunFig6Small(t *testing.T) {
	fig, err := RunFig6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Categories) != 4 {
		t.Fatalf("fig6 has %d categories, want 4", len(fig.Categories))
	}
	byPat := map[workload.FioPattern]FioCategory{}
	for _, c := range fig.Categories {
		if len(c.Cells) != len(workload.FioBlockSizes()) {
			t.Fatalf("%v has %d cells", c.Pattern, len(c.Cells))
		}
		if c.ExitsDelta >= 0 {
			t.Errorf("%v exits delta = %v", c.Pattern, c.ExitsDelta)
		}
		if c.IOThroughputDelta <= 0 {
			t.Errorf("%v io throughput delta = %v, want positive", c.Pattern, c.IOThroughputDelta)
		}
		byPat[c.Pattern] = c
	}
	// §6.3: reads benefit more than writes.
	if byPat[workload.RandRead].IOThroughputDelta <= byPat[workload.RandWrite].IOThroughputDelta {
		t.Errorf("rndr (%v) should beat rndwr (%v)",
			byPat[workload.RandRead].IOThroughputDelta, byPat[workload.RandWrite].IOThroughputDelta)
	}
	if byPat[workload.SeqRead].IOThroughputDelta <= byPat[workload.SeqWrite].IOThroughputDelta {
		t.Error("seqr should beat seqwr")
	}
	// Runtime improvement tracks throughput for I/O (§6.3): same sign,
	// similar magnitude.
	if fig.RuntimeDelta >= 0 {
		t.Errorf("aggregate runtime delta = %v, want negative", fig.RuntimeDelta)
	}
	r := fig.Render()
	if !strings.Contains(r, "(b) relative I/O throughput") {
		t.Error("render missing panel b")
	}
	if !strings.Contains(RenderTable4(fig).String(), "Table 4") {
		t.Error("table 4 missing")
	}
}

func TestRunTable1Small(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.05
	res, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Workload] = r
	}
	// Idle VMs: tickless and paratick quiescent, periodic pays per tick.
	if byName["W1"].SimPeriodic == 0 {
		t.Error("W1 periodic should tick")
	}
	if byName["W1"].SimTickless > byName["W1"].SimPeriodic/10 {
		t.Errorf("W1 tickless (%d) should be ≪ periodic (%d)",
			byName["W1"].SimTickless, byName["W1"].SimPeriodic)
	}
	if byName["W1"].SimParatick != 0 {
		t.Errorf("W1 paratick = %d, want 0", byName["W1"].SimParatick)
	}
	// The §3.3 crossover: for W3, tickless is worse than periodic.
	if byName["W3"].SimTickless <= byName["W3"].SimPeriodic {
		t.Errorf("W3: tickless (%d) should exceed periodic (%d)",
			byName["W3"].SimTickless, byName["W3"].SimPeriodic)
	}
	// Paratick beats both everywhere.
	for _, w := range []string{"W1", "W2", "W3", "W4"} {
		r := byName[w]
		if r.SimParatick >= r.SimTickless && r.SimTickless > 0 {
			t.Errorf("%s: paratick (%d) not below tickless (%d)", w, r.SimParatick, r.SimTickless)
		}
		if r.SimParatick >= r.SimPeriodic {
			t.Errorf("%s: paratick (%d) not below periodic (%d)", w, r.SimParatick, r.SimPeriodic)
		}
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestIdleExitAblation(t *testing.T) {
	res, err := RunIdleExitAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, keep, disarm := res.Rows[0], res.Rows[1], res.Rows[2]
	// The heuristic's point: keeping the timer armed must not cost more
	// timer exits than disarming, and both paratick variants beat dynticks.
	if keep.TimerExits > disarm.TimerExits {
		t.Errorf("keep-armed (%d timer exits) worse than disarm (%d)",
			keep.TimerExits, disarm.TimerExits)
	}
	if keep.TimerExits >= base.TimerExits {
		t.Errorf("paratick (%d) not below dynticks (%d)", keep.TimerExits, base.TimerExits)
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestFrequencyMismatchAblation(t *testing.T) {
	res, err := RunFrequencyMismatchAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	noTopUp, topUp := res.Rows[0], res.Rows[1]
	// Without top-up a 1000 Hz guest on a 250 Hz host receives only ~250
	// ticks/s; with top-up it gets close to the requested rate.
	if topUp.GuestTicks < 3*noTopUp.GuestTicks {
		t.Errorf("top-up ticks (%d) should be ~4× no-top-up (%d)",
			topUp.GuestTicks, noTopUp.GuestTicks)
	}
}

func TestHaltPollAblation(t *testing.T) {
	res, err := RunHaltPollAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	disabled, poll200 := res.Rows[0], res.Rows[2]
	// Polling trades cycles for latency: more busy cycles, shorter runtime.
	if poll200.BusyCycles <= disabled.BusyCycles {
		t.Errorf("polling should burn more cycles: %v vs %v",
			poll200.BusyCycles, disabled.BusyCycles)
	}
	if poll200.Runtime >= disabled.Runtime {
		t.Errorf("polling should shorten runtime: %v vs %v",
			poll200.Runtime, disabled.Runtime)
	}
}

func TestPLEAblation(t *testing.T) {
	res, err := RunPLEAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	blocking, spinNoPLE, spinPLE := res.Rows[0], res.Rows[1], res.Rows[2]
	// Spinning without PLE takes no PLE exits; with PLE enabled the spin
	// loops surface as extra exits and extra host cycles.
	if spinPLE.TotalExits <= spinNoPLE.TotalExits {
		t.Errorf("PLE should add exits: %d vs %d", spinPLE.TotalExits, spinNoPLE.TotalExits)
	}
	if spinPLE.BusyCycles <= spinNoPLE.BusyCycles {
		t.Errorf("PLE should add host cycles: %v vs %v", spinPLE.BusyCycles, spinNoPLE.BusyCycles)
	}
	// Blocking sync takes HLT/IPI exits that pure spinning avoids; both
	// must complete the same work.
	if blocking.TotalExits == 0 || spinNoPLE.TotalExits == 0 {
		t.Error("degenerate ablation rows")
	}
}

func TestCrossoverSweep(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.1
	res, err := RunCrossover(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(crossoverIdlePeriods()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	// §3.3: at very short idle periods periodic wins; at long ones
	// tickless wins; paratick undercuts both everywhere.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.TicklessExits <= first.PeriodicExits {
		t.Errorf("at %v idle, tickless (%d) should exceed periodic (%d)",
			first.IdlePeriod, first.TicklessExits, first.PeriodicExits)
	}
	if last.TicklessExits >= last.PeriodicExits {
		t.Errorf("at %v idle, tickless (%d) should undercut periodic (%d)",
			last.IdlePeriod, last.TicklessExits, last.PeriodicExits)
	}
	for _, p := range res.Points {
		if p.ParatickExits > p.TicklessExits || p.ParatickExits > p.PeriodicExits {
			t.Errorf("at %v idle, paratick (%d) not the minimum (periodic %d, tickless %d)",
				p.IdlePeriod, p.ParatickExits, p.PeriodicExits, p.TicklessExits)
		}
	}
	// The empirical crossover brackets the analytic 4ms threshold within
	// the sweep's resolution (one octave either side).
	if res.EmpiricalCrossover == sim.Forever {
		t.Fatal("no crossover found")
	}
	if res.EmpiricalCrossover < res.AnalyticThreshold/4 ||
		res.EmpiricalCrossover > res.AnalyticThreshold*4 {
		t.Errorf("empirical crossover %v too far from analytic threshold %v",
			res.EmpiricalCrossover, res.AnalyticThreshold)
	}
	if !strings.Contains(res.Render(), "crossover") {
		t.Error("render broken")
	}
	if len(res.Table().Rows) != len(res.Points) {
		t.Error("table rows mismatch")
	}
}

func TestConsolidation(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.2
	res, err := RunConsolidation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	periodic, tickless, para := res.Rows[0], res.Rows[1], res.Rows[2]
	// The §3.3 conclusion verbatim: on a mixed consolidated fleet NEITHER
	// classic mechanism is acceptable — periodic pays on the idle VMs,
	// tickless pays on the sync/I/O VMs — while paratick undercuts both by
	// a wide margin.
	if periodic.TimerExits < 3*para.TimerExits+1000 {
		t.Errorf("periodic timer exits (%d) should dwarf paratick's (%d)",
			periodic.TimerExits, para.TimerExits)
	}
	if tickless.TimerExits < 3*para.TimerExits+1000 {
		t.Errorf("tickless timer exits (%d) should dwarf paratick's (%d)",
			tickless.TimerExits, para.TimerExits)
	}
	if para.HostOverhead >= periodic.HostOverhead || para.HostOverhead >= tickless.HostOverhead {
		t.Errorf("paratick host overhead (%v) should undercut periodic (%v) and tickless (%v)",
			para.HostOverhead, periodic.HostOverhead, tickless.HostOverhead)
	}
	// Same delivered I/O under every mode (fixed job size).
	if para.IOBytes != tickless.IOBytes || para.IOBytes == 0 {
		t.Errorf("delivered io differs: %d vs %d", para.IOBytes, tickless.IOBytes)
	}
	if !strings.Contains(res.Render(), "Consolidation") {
		t.Error("render broken")
	}
}

func TestRepeatsAveraging(t *testing.T) {
	o := smallOpts()
	o.Repeats = 2
	fig, err := RunFig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Spread == nil {
		t.Fatal("no spread with repeats")
	}
	if fig.Spread.Exits.N != 2 {
		t.Fatalf("spread N = %d", fig.Spread.Exits.N)
	}
	if !strings.Contains(fig.Render(), "repeat spread") {
		t.Error("render missing spread line")
	}
	if len(fig.Table().Rows) != 14 { // 13 benchmarks + MEAN
		t.Fatalf("table rows = %d", len(fig.Table().Rows))
	}
	bad := o
	bad.Repeats = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative repeats accepted")
	}
}

func TestRunFig5AllSizes(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.01
	figs, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("panels = %d", len(figs))
	}
	t3 := RenderTable3(figs).String()
	for _, want := range []string{"small", "medium", "large"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestRunAllAblations(t *testing.T) {
	s, err := RunAllAblations(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"§5.2.5", "§4.1", "halt polling", "PLE"} {
		if !strings.Contains(s, want) {
			t.Errorf("combined ablations missing %q", want)
		}
	}
}

func TestFioFigureTable(t *testing.T) {
	o := smallOpts()
	o.Scale = 0.01
	fig, err := RunFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	tb := fig.Table()
	// 4 patterns × (4 block sizes + MEAN row).
	if len(tb.Rows) != 4*5 {
		t.Fatalf("fio table rows = %d", len(tb.Rows))
	}
	if tb.CSV() == "" {
		t.Error("empty CSV")
	}
}

func TestCoalescingAblation(t *testing.T) {
	res, err := RunCoalescingAblation(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	dynPlain, paraPlain, dynCo, paraCo := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// Coalescing reduces exits for both mechanisms.
	if dynCo.TotalExits >= dynPlain.TotalExits {
		t.Errorf("coalescing did not reduce dynticks exits: %d vs %d",
			dynCo.TotalExits, dynPlain.TotalExits)
	}
	// Paratick stays ahead on timer exits regardless.
	if paraCo.TimerExits >= dynCo.TimerExits {
		t.Errorf("paratick (%d timer exits) not below dynticks (%d) under coalescing",
			paraCo.TimerExits, dynCo.TimerExits)
	}
	_ = paraPlain
}
