package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/workload"
)

// ParsecFigure holds one Fig. 4 / Fig. 5 panel set: per-benchmark relative
// VM exits, system throughput, and execution time of paratick vs vanilla,
// plus the corresponding aggregate table (Table 2 / Table 3 row).
type ParsecFigure struct {
	Title       string
	Comparisons []metrics.Comparison
	Aggregate   metrics.Aggregate
	// Spread carries repeat-to-repeat statistics when Options.Repeats > 1
	// (nil otherwise). Comparisons then hold per-benchmark means.
	Spread *metrics.AggregateSpread
}

// RunFig4 reproduces Fig. 4 + Table 2: the 13 PARSEC benchmarks in
// sequential mode on a 1-vCPU VM. With Options.Repeats > 1, results are
// averaged over consecutive seeds.
func RunFig4(opts Options) (*ParsecFigure, error) {
	return repeatFigure(opts, runFig4Once)
}

func runFig4Once(opts Options) (*ParsecFigure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	fig := &ParsecFigure{Title: "Figure 4: sequential PARSEC (1 vCPU)"}
	profiles := workload.Profiles()
	comps, err := runParallel(opts, len(profiles),
		func(i int, a *arena) (metrics.Comparison, error) {
			p := profiles[i]
			spec := Spec{
				Name:          "parsec-seq/" + p.Name,
				VCPUs:         1,
				SchedPolicy:   opts.SchedPolicy,
				SnapshotProbe: opts.SnapshotProbe,
				Quantum:       opts.Quantum,
				Shards:        opts.Shards,
				Setup: func(vm *kvm.VM) error {
					dev, err := vm.AttachDevice("disk0", opts.Device)
					if err != nil {
						return err
					}
					prog, err := p.SequentialProgram(dev, opts.Scale)
					if err != nil {
						return err
					}
					vm.Kernel().Spawn(p.Name, 0, prog)
					return nil
				},
			}
			cmp, err := compareModes(spec, opts.Seed, opts.Meter, a)
			if err != nil {
				return metrics.Comparison{}, err
			}
			cmp.Name = p.Name
			return cmp, nil
		})
	if err != nil {
		return nil, err
	}
	fig.Comparisons = comps
	fig.Aggregate = metrics.Aggregated(fig.Comparisons)
	return fig, nil
}

// VMSize is one of the paper's §6.2 scenarios.
type VMSize struct {
	Name    string
	VCPUs   int
	Sockets int
}

// VMSizes returns the paper's small/medium/large VM placements.
func VMSizes() []VMSize {
	return []VMSize{
		{Name: "small", VCPUs: 4, Sockets: 1},
		{Name: "medium", VCPUs: 16, Sockets: 2},
		{Name: "large", VCPUs: 64, Sockets: 4},
	}
}

// RunFig5Size reproduces one VM size of Fig. 5: the 13 benchmarks with
// parallelism equal to the vCPU count. With Options.Repeats > 1, results
// are averaged over consecutive seeds.
func RunFig5Size(opts Options, size VMSize) (*ParsecFigure, error) {
	return repeatFigure(opts, func(o Options) (*ParsecFigure, error) {
		return runFig5SizeOnce(o, size)
	})
}

func runFig5SizeOnce(opts Options, size VMSize) (*ParsecFigure, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	fig := &ParsecFigure{Title: fmt.Sprintf("Figure 5 (%s VM, %d vCPUs over %d sockets)",
		size.Name, size.VCPUs, size.Sockets)}
	profiles := workload.Profiles()
	comps, err := runParallel(opts, len(profiles),
		func(i int, a *arena) (metrics.Comparison, error) {
			p := profiles[i]
			spec := Spec{
				Name:          "parsec-par/" + size.Name + "/" + p.Name,
				VCPUs:         size.VCPUs,
				Sockets:       size.Sockets,
				SchedPolicy:   opts.SchedPolicy,
				SnapshotProbe: opts.SnapshotProbe,
				Quantum:       opts.Quantum,
				Shards:        opts.Shards,
				Setup: func(vm *kvm.VM) error {
					dev, err := vm.AttachDevice("disk0", opts.Device)
					if err != nil {
						return err
					}
					_, err = p.SpawnParallel(vm.Kernel(), size.VCPUs, dev, opts.Scale)
					return err
				},
			}
			cmp, err := compareModes(spec, opts.Seed, opts.Meter, a)
			if err != nil {
				return metrics.Comparison{}, err
			}
			cmp.Name = p.Name
			return cmp, nil
		})
	if err != nil {
		return nil, err
	}
	fig.Comparisons = comps
	fig.Aggregate = metrics.Aggregated(fig.Comparisons)
	return fig, nil
}

// RunFig5 reproduces all three VM sizes of Fig. 5 + Table 3.
func RunFig5(opts Options) ([]*ParsecFigure, error) {
	var out []*ParsecFigure
	for _, size := range VMSizes() {
		fig, err := RunFig5Size(opts, size)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// repeatFigure runs a figure Options.Repeats times with consecutive seeds
// and averages the per-benchmark deltas. Repeats fan out across the worker
// pool (each repeat's runs fan out further); figures are accumulated in
// repeat order, so the float additions — and therefore the averaged output —
// are byte-identical to a serial loop.
func repeatFigure(opts Options, once func(Options) (*ParsecFigure, error)) (*ParsecFigure, error) {
	n := opts.repeatCount()
	if n == 1 {
		return once(opts)
	}
	figs, err := runParallel(opts, n, func(r int, _ *arena) (*ParsecFigure, error) {
		o := opts
		o.Seed = opts.Seed + uint64(r)
		return once(o)
	})
	if err != nil {
		return nil, err
	}
	var base *ParsecFigure
	var aggs []metrics.Aggregate
	for _, fig := range figs {
		aggs = append(aggs, fig.Aggregate)
		if base == nil {
			base = fig
			continue
		}
		for i := range base.Comparisons {
			base.Comparisons[i].ExitsDelta += fig.Comparisons[i].ExitsDelta
			base.Comparisons[i].TimerExitsDelta += fig.Comparisons[i].TimerExitsDelta
			base.Comparisons[i].ThroughputDelta += fig.Comparisons[i].ThroughputDelta
			base.Comparisons[i].RuntimeDelta += fig.Comparisons[i].RuntimeDelta
		}
	}
	for i := range base.Comparisons {
		base.Comparisons[i].ExitsDelta /= float64(n)
		base.Comparisons[i].TimerExitsDelta /= float64(n)
		base.Comparisons[i].ThroughputDelta /= float64(n)
		base.Comparisons[i].RuntimeDelta /= float64(n)
	}
	base.Aggregate = metrics.Aggregated(base.Comparisons)
	base.Spread = metrics.SpreadOf(aggs)
	return base, nil
}

// Render prints the figure as three ASCII bar-chart panels (a/b/c), the
// paper's presentation.
func (f *ParsecFigure) Render() string {
	var b strings.Builder
	exits := metrics.NewBarChart(f.Title + " — (a) relative VM exits")
	thr := metrics.NewBarChart(f.Title + " — (b) relative system throughput")
	rt := metrics.NewBarChart(f.Title + " — (c) relative execution time")
	for _, c := range f.Comparisons {
		exits.Add(c.Name, c.ExitsDelta)
		thr.Add(c.Name, c.ThroughputDelta)
		rt.Add(c.Name, c.RuntimeDelta)
	}
	b.WriteString(exits.String())
	b.WriteString("\n")
	b.WriteString(thr.String())
	b.WriteString("\n")
	b.WriteString(rt.String())
	fmt.Fprintf(&b, "\naggregate (n=%d): VM exits %s, throughput %s, execution time %s\n",
		f.Aggregate.N, metrics.Pct(f.Aggregate.ExitsDelta),
		metrics.Pct(f.Aggregate.ThroughputDelta), metrics.Pct(f.Aggregate.RuntimeDelta))
	if f.Spread != nil {
		fmt.Fprintf(&b, "repeat spread: %s\n", f.Spread.String())
	}
	for _, t := range f.LatencyTables() {
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	return b.String()
}

// LatencyTables renders the exit-handling-cost distributions (p50/p95/p99/
// max per exit reason) merged across all benchmarks in the figure, one table
// per tick mode. With Repeats > 1 the distributions come from the first
// repeat's seed (deltas are averaged, raw counters are not).
func (f *ParsecFigure) LatencyTables() []*metrics.Table {
	var base, opt metrics.Counters
	for _, c := range f.Comparisons {
		base.Add(&c.Baseline.Counters)
		opt.Add(&c.Optimized.Counters)
	}
	var out []*metrics.Table
	if t := metrics.ExitLatencyTable("exit handling cost (dynticks baseline)", &base); t != nil {
		out = append(out, t)
	}
	if t := metrics.ExitLatencyTable("exit handling cost (paratick)", &opt); t != nil {
		out = append(out, t)
	}
	return out
}

// Table renders the figure's data as a table (and CSV source).
func (f *ParsecFigure) Table() *metrics.Table {
	t := metrics.NewTable(f.Title,
		"benchmark", "exits", "timer-exits", "throughput", "exec-time")
	for _, c := range f.Comparisons {
		t.AddRow(c.Name, metrics.Pct1(c.ExitsDelta), metrics.Pct1(c.TimerExitsDelta),
			metrics.Pct1(c.ThroughputDelta), metrics.Pct1(c.RuntimeDelta))
	}
	t.AddRow("MEAN", metrics.Pct1(f.Aggregate.ExitsDelta), metrics.Pct1(f.Aggregate.TimerExitsDelta),
		metrics.Pct1(f.Aggregate.ThroughputDelta), metrics.Pct1(f.Aggregate.RuntimeDelta))
	return t
}

// RenderTable2 renders Table 2 from Fig. 4 data.
func RenderTable2(fig *ParsecFigure) *metrics.Table {
	t := metrics.NewTable("Table 2: average improvement, sequential PARSEC",
		"VM exits", "System throughput", "Execution time")
	t.AddRow(metrics.Pct(fig.Aggregate.ExitsDelta),
		metrics.Pct(fig.Aggregate.ThroughputDelta),
		metrics.Pct(fig.Aggregate.RuntimeDelta))
	return t
}

// RenderTable3 renders Table 3 from the three Fig. 5 panels.
func RenderTable3(figs []*ParsecFigure) *metrics.Table {
	t := metrics.NewTable("Table 3: average improvement, multithreaded PARSEC",
		"VM size", "VM exits", "System throughput", "Execution time")
	sizes := VMSizes()
	for i, f := range figs {
		name := fmt.Sprintf("panel-%d", i)
		if i < len(sizes) {
			name = sizes[i].Name
		}
		t.AddRow(name, metrics.Pct(f.Aggregate.ExitsDelta),
			metrics.Pct(f.Aggregate.ThroughputDelta),
			metrics.Pct(f.Aggregate.RuntimeDelta))
	}
	return t
}
