// Package experiment defines and runs the paper's evaluation (§6): one
// runner per table and figure, producing the same rows and series the paper
// reports, plus the ablation studies DESIGN.md calls out. Each experiment
// compares paratick against the dynticks baseline (the paper's "vanilla
// Linux") on identical workloads and seeds.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"paratick/internal/core"
	"paratick/internal/iodev"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sched"
	"paratick/internal/sim"
)

// Options tune experiment size and environment.
type Options struct {
	// Seed fixes all randomness; identical seeds give identical runs.
	Seed uint64
	// Scale multiplies workload durations; 1.0 is the full-size run, small
	// values (e.g. 0.05) give quick smoke runs.
	Scale float64
	// Device is the block-device profile for I/O experiments.
	Device iodev.Profile
	// Repeats runs every experiment this many times with consecutive seeds
	// and reports mean ± spread, the paper's 3–15-iteration methodology
	// (§6). 0 or 1 = single run.
	Repeats int
	// Workers caps how many independent simulation runs execute
	// concurrently; 0 means runtime.GOMAXPROCS(0). Every run owns a private
	// sim.Engine and results are assembled by index, so any worker count
	// produces byte-identical output.
	Workers int
	// Meter, when non-nil, accumulates run/event telemetry across all runs
	// (including concurrent ones) for throughput reporting.
	Meter *metrics.Meter
	// SchedPolicy is the host vCPU scheduling policy experiments run under
	// (zero → sched.FIFO, the legacy behaviour). Experiments that compare
	// policies, like the overcommit sweep, ignore it and run both.
	SchedPolicy sched.Kind
	// SnapshotProbe, when positive, makes every run checkpoint itself at
	// this instant, verify the snapshot round-trips byte-identically, and
	// continue from the restored copy. Output must be byte-identical with
	// the probe on or off — the golden gate of the checkpoint machinery.
	SnapshotProbe sim.Time
	// Quantum, when positive, runs every scenario in lane mode: the host
	// splits into one event lane per socket, advanced in conservative time
	// quanta of this length (see sim.ShardedEngine). Lane mode is a semantic
	// switch — it changes per-lane RNG streams and event interleavings, so
	// its outputs differ from the legacy serial engine — and requires every
	// VM to be contained on one socket. 0 keeps the legacy engine,
	// byte-identical to all previous releases.
	Quantum sim.Time
	// Shards is how many goroutines execute the lanes within each quantum
	// (0 or 1 = serial). Purely an execution knob: output is byte-identical
	// for every shard count. Shards > 1 requires a positive Quantum.
	Shards int
	// NoArena disables every per-worker pool (engine, host, VM, kernel
	// reuse): each run builds its world from scratch. Pooling is
	// execution-only, so output must be byte-identical either way — the CI
	// arena differential gate runs the whole suite both ways and diffs the
	// reports. A debugging and auditing knob, not a performance setting.
	NoArena bool
	// Pool, when non-nil, carries worker arenas across experiment
	// invocations: consecutive RunTable1/ParsecFigure/... calls through the
	// same pool reuse each worker's engine, host, and pooled VMs instead of
	// rebuilding them on the first run of every experiment. A pool must not
	// be shared by concurrent experiment invocations (the worker goroutines
	// within one invocation are fine — each takes its own slot). Ignored
	// under NoArena.
	Pool *WorkerPool
}

// WorkerPool owns one arena per worker slot, letting a sequence of
// experiment invocations keep their worlds warm (see Options.Pool).
type WorkerPool struct {
	arenas []*arena
}

// NewWorkerPool returns an empty pool; arenas materialize as worker slots
// are first claimed.
func NewWorkerPool() *WorkerPool { return &WorkerPool{} }

// slot returns the arena for worker w, growing the pool on demand. Callers
// serialize slot claims (runParallel claims all slots before spawning its
// workers).
func (p *WorkerPool) slot(w int) *arena {
	for len(p.arenas) <= w {
		p.arenas = append(p.arenas, &arena{})
	}
	return p.arenas[w]
}

// DefaultOptions returns full-scale settings with the NVMe-class device.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: 1.0, Device: iodev.NVMe(), Repeats: 1}
}

// repeatCount normalizes Repeats (0 means 1).
func (o Options) repeatCount() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

// WorkerCount is the effective worker-pool size: Workers, or one worker per
// available CPU when Workers is 0.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// arena is per-worker scratch reused across the independent runs one worker
// executes serially. The dominant construction cost of a run is its
// sim.Engine — the wheel bucket arrays and event slab — which Engine.Reset
// retains across runs. Arenas are never shared between workers, so runs stay
// race-free, and a run's observable behaviour depends only on its seed (the
// engine resets to an identical state either way), keeping output
// byte-identical for any worker count.
type arena struct {
	engine *sim.Engine
	// wrapped caches WrapEngine(engine) so legacy-mode runs reuse one
	// coordinator shell per worker instead of allocating one per run.
	wrapped *sim.ShardedEngine
	// sharded caches the lane-mode coordinator, reused while consecutive
	// runs ask for the same (lanes, shards, quantum) shape.
	sharded *sim.ShardedEngine
	// hosts pools Host construction (PCPUs, their pre-bound handler
	// closures, host-tick timers, scheduler queues) across runs on the
	// same coordinator and machine shape — and, one level down, whole VMs:
	// the host's kvm.VMArena recycles guest kernels, tasks, deadline
	// timers, and timer wheels across runs (the wheels ride inside their
	// pooled VMs, which is why the arena no longer carries a separate
	// wheel pool).
	hosts kvm.HostArena
	// res is the worker's reusable result storage: runScenarioInto refills
	// it in place each run, so harvesting a sweep's counters allocates
	// nothing. Valid only until the worker's next run.
	res ScenarioResult
}

// resultScratch returns the arena's reusable ScenarioResult — overwritten
// by the next run through the same arena, so callers must copy out what
// they keep. A nil arena (one-off runs) allocates fresh storage.
func (a *arena) resultScratch() *ScenarioResult {
	if a == nil {
		return &ScenarioResult{}
	}
	return &a.res
}

// hostArena exposes the arena's host pool (nil arena → nil pool, meaning
// freshly built hosts).
func (a *arena) hostArena() *kvm.HostArena {
	if a == nil {
		return nil
	}
	return &a.hosts
}

// engineFor returns the arena's engine reset to seed, creating it on first
// use. A nil arena (one-off runs outside a worker pool) builds a fresh
// engine.
func (a *arena) engineFor(seed uint64) *sim.Engine {
	if a == nil {
		return sim.NewEngine(seed)
	}
	if a.engine == nil {
		a.engine = sim.NewEngine(seed)
	} else {
		a.engine.Reset(seed)
	}
	return a.engine
}

// shardedFor returns a coordinator for the requested shape, reset to seed.
// Quantum 0 wraps the arena's legacy engine (the byte-identical serial
// path); lane mode reuses the cached coordinator while the shape matches.
func (a *arena) shardedFor(seed uint64, lanes, shards int, quantum sim.Time) (*sim.ShardedEngine, error) {
	if quantum == 0 {
		e := a.engineFor(seed)
		if a == nil {
			return sim.WrapEngine(e), nil
		}
		if a.wrapped == nil || a.wrapped.Root() != e {
			a.wrapped = sim.WrapEngine(e)
		}
		return a.wrapped, nil
	}
	if a != nil && a.sharded != nil &&
		a.sharded.Lanes() == lanes && a.sharded.Shards() == shards && a.sharded.Quantum() == quantum {
		a.sharded.Reset(seed)
		// The previous run's hooks capture its world; drop them so a stale
		// barrier hook can never fire into an abandoned object graph. The
		// new world's host and completion check reinstall theirs.
		a.sharded.SetDeliver(nil)
		a.sharded.SetBarrierHook(nil)
		return a.sharded, nil
	}
	se, err := sim.NewSharded(seed, lanes, shards, quantum)
	if err == nil && a != nil {
		a.sharded = se
	}
	return se, err
}

// arenaFor returns worker w's arena: nil when pooling is disabled, the
// pool's persistent slot when a pool is attached, a fresh invocation-local
// arena otherwise. Every arena consumer treats nil as "build everything
// fresh".
func (o Options) arenaFor(w int) *arena {
	if o.NoArena {
		return nil
	}
	if o.Pool != nil {
		return o.Pool.slot(w)
	}
	return &arena{}
}

// runParallel executes n independent jobs across at most o.WorkerCount()
// goroutines and assembles the results by index, so output ordering — and
// therefore every rendered table — is identical to a serial loop. Jobs must
// not share mutable state; each experiment run builds its own host and VMs,
// drawing scratch (the reused sim.Engine, the host/VM arenas) only from the
// worker-private arena it is handed (nil under o.NoArena). On failure the
// error of the lowest-index failing job is returned, keeping even the error
// path deterministic.
func runParallel[T any](o Options, n int, job func(i int, a *arena) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := o.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		a := o.arenaFor(0)
		for i := 0; i < n; i++ {
			v, err := job(i, a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		a := o.arenaFor(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = job(i, a)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Session pins one worker arena across caller-driven scenario runs, giving
// callers outside the experiment runners — the perf suite's fleet-reuse
// kernel, long-lived services — the same steady-state reuse a runParallel
// worker gets: after a warm-up run, consecutive runs recycle the engine,
// host, and whole VMs instead of rebuilding them. A Session is not safe for
// concurrent use; give each goroutine its own.
type Session struct {
	a arena
}

// NewSession returns an empty session; the first run through it builds and
// pools its world.
func NewSession() *Session { return &Session{} }

// RunScenario executes the scenario through the session's arena, recording
// telemetry into m when non-nil. The returned result is freshly allocated
// and stays valid across later runs; callers harvesting results every run
// should prefer RunScenarioInto.
func (s *Session) RunScenario(sc Scenario, seed uint64, m *metrics.Meter) (*ScenarioResult, error) {
	return runScenario(sc, seed, m, &s.a)
}

// RunScenarioInto is RunScenario writing per-VM results into caller-owned
// storage: out's Results slice is refilled in place, so a steady-state
// caller reusing one ScenarioResult across runs pays no per-run result
// allocation.
func (s *Session) RunScenarioInto(sc Scenario, seed uint64, m *metrics.Meter, out *ScenarioResult) error {
	return runScenarioInto(sc, seed, m, &s.a, out)
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Scale <= 0 {
		return fmt.Errorf("experiment: scale must be positive, got %v", o.Scale)
	}
	if o.Repeats < 0 {
		return fmt.Errorf("experiment: repeats must be non-negative, got %d", o.Repeats)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiment: workers must be non-negative, got %d", o.Workers)
	}
	if o.SnapshotProbe < 0 {
		return fmt.Errorf("experiment: snapshot probe must be non-negative, got %v", o.SnapshotProbe)
	}
	if o.Quantum < 0 {
		return fmt.Errorf("experiment: quantum must be non-negative, got %v", o.Quantum)
	}
	if o.Shards < 0 {
		return fmt.Errorf("experiment: shards must be non-negative, got %d", o.Shards)
	}
	if o.Shards > 1 && o.Quantum == 0 {
		return fmt.Errorf("experiment: %d shards require a positive quantum", o.Shards)
	}
	return o.Device.Validate()
}

// Spec describes one single-VM simulation run. It is the degenerate case of
// a Scenario (see scenario.go): Run turns it into a one-VM fleet.
type Spec struct {
	Name       string
	Mode       core.Mode
	VCPUs      int
	Sockets    int
	GuestHz    int // 0 → 250
	HostHz     int // 0 → 250
	PolicyOpts core.Options
	HaltPoll   sim.Time
	TopUp      bool
	// Timeslice overrides the pCPU timeslice (0 → 6 ms default).
	Timeslice sim.Time
	// PLEWindow enables pause-loop exiting on the host (0 → disabled, the
	// paper's setting).
	PLEWindow sim.Time
	// AdaptiveSpin enables the guest's optimistic-spin lock path.
	AdaptiveSpin sim.Time
	// SchedPolicy selects the host vCPU scheduler (zero → sched.FIFO).
	SchedPolicy sched.Kind
	// Duration runs for a fixed simulated time (open-ended workloads);
	// when 0 the run ends at workload completion.
	Duration sim.Time
	// SnapshotProbe enables the mid-run checkpoint round-trip gate (see
	// Scenario.SnapshotProbe).
	SnapshotProbe sim.Time
	// Quantum/Shards select lane mode and its execution width (see
	// Scenario.Quantum and Scenario.Shards).
	Quantum sim.Time
	Shards  int
	// Setup spawns the workload (tasks, devices) into the fresh VM.
	Setup func(vm *kvm.VM) error
}

// maxSimTime caps runaway simulations; any paper experiment finishes far
// sooner.
const maxSimTime = 1000 * sim.Second

// scenario lifts the single-VM spec into a one-VM Scenario.
func (spec Spec) scenario() Scenario {
	return Scenario{
		Name:          spec.Name,
		HostHz:        spec.HostHz,
		Timeslice:     spec.Timeslice,
		HaltPoll:      spec.HaltPoll,
		PLEWindow:     spec.PLEWindow,
		SchedPolicy:   spec.SchedPolicy,
		Duration:      spec.Duration,
		SnapshotProbe: spec.SnapshotProbe,
		Quantum:       spec.Quantum,
		Shards:        spec.Shards,
		VMs: []VMSpec{{
			Name:         spec.Name,
			Mode:         spec.Mode,
			GuestHz:      spec.GuestHz,
			PolicyOpts:   spec.PolicyOpts,
			AdaptiveSpin: spec.AdaptiveSpin,
			TopUp:        spec.TopUp,
			VCPUs:        spec.VCPUs,
			Sockets:      spec.Sockets,
			Workload:     spec.Setup != nil,
			Setup:        spec.Setup,
		}},
	}
}

// Run executes one spec and returns its result.
func Run(spec Spec, seed uint64) (metrics.Result, error) {
	return run(spec, seed, nil, nil)
}

// run is Run with telemetry (engine event counts go to m, which may be nil)
// and an optional worker arena providing the reused engine.
func run(spec Spec, seed uint64, m *metrics.Meter, a *arena) (metrics.Result, error) {
	if spec.Setup == nil && spec.Duration == 0 {
		return metrics.Result{}, fmt.Errorf("experiment %s: no workload and no duration", spec.Name)
	}
	if spec.VCPUs <= 0 {
		return metrics.Result{}, fmt.Errorf("experiment %s: need vCPUs", spec.Name)
	}
	sr := a.resultScratch()
	if err := runScenarioInto(spec.scenario(), seed, m, a, sr); err != nil {
		return metrics.Result{}, err
	}
	return sr.Results[0], nil
}

// CompareModes runs the spec under the dynticks baseline and paratick and
// returns the paper's relative metrics.
func CompareModes(spec Spec, seed uint64) (metrics.Comparison, error) {
	return compareModes(spec, seed, nil, nil)
}

// compareModes is CompareModes with telemetry and an optional worker arena.
func compareModes(spec Spec, seed uint64, m *metrics.Meter, a *arena) (metrics.Comparison, error) {
	base := spec
	base.Mode = core.DynticksIdle
	baseRes, err := run(base, seed, m, a)
	if err != nil {
		return metrics.Comparison{}, err
	}
	opt := spec
	opt.Mode = core.Paratick
	optRes, err := run(opt, seed, m, a)
	if err != nil {
		return metrics.Comparison{}, err
	}
	cmp := metrics.Compare(baseRes, optRes)
	cmp.Name = spec.Name
	return cmp, nil
}
