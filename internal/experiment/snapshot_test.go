package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"paratick/internal/core"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// TestSnapshotProbeGolden is the tentpole differential gate: enabling the
// mid-run snapshot probe — which saves every straight run at 500 µs,
// restores the state into a freshly built world, and continues on the
// restored copy — must not change a single byte of any runner's rendered
// output, at any worker count. A field the snapshot misses, a closure wired
// to the wrong object, or a pending event re-armed at the wrong coordinate
// all diverge the continued run and fail the byte comparison.
func TestSnapshotProbeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden check is slow")
	}
	straight := renderAll(t, 1)
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Scale = 0.05
		opts.Workers = workers
		opts.Meter = &metrics.Meter{}
		opts.SnapshotProbe = 500 * sim.Microsecond
		probed := renderAllOpts(t, opts)
		if probed != straight {
			t.Fatalf("probe-on output diverges from straight-through at workers=%d:\n%s",
				workers, firstDiff(straight, probed))
		}
	}
}

// TestCheckpointResumeMatchesStraightRun pins the public checkpoint API:
// warm up, freeze, rebuild, restore, and run to completion must produce a
// result deeply equal to running straight through — including the restored
// event counter, so a resumed run reports the same total events.
func TestCheckpointResumeMatchesStraightRun(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.02
	s := ReferenceScenario(opts)
	straight, err := RunScenario(s, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := CheckpointScenario(s, opts.Seed, 500*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeScenario(s, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(straight, resumed) {
		t.Fatalf("resumed result differs from straight run:\nstraight: %+v\nresumed:  %+v", straight, resumed)
	}
}

// TestCheckpointContainerRoundTrip pins the on-disk container: serialize,
// parse, re-serialize must be byte-identical, and a truncated or mislabeled
// container must be rejected rather than half-parsed.
func TestCheckpointContainerRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.02
	s := ReferenceScenario(opts)
	ck, err := CheckpointScenario(s, opts.Seed, 500*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	data := ck.Bytes()
	parsed, err := LoadCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Seed() != ck.Seed() || parsed.At() != ck.At() || parsed.Events() != ck.Events() {
		t.Fatalf("container fields drifted: %d/%v/%d vs %d/%v/%d",
			parsed.Seed(), parsed.At(), parsed.Events(), ck.Seed(), ck.At(), ck.Events())
	}
	if !bytes.Equal(parsed.Bytes(), data) {
		t.Fatal("container re-serialization is not byte-identical")
	}
	if _, err := LoadCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, err := LoadCheckpoint(nil); err == nil {
		t.Fatal("empty container accepted")
	}
	res, err := ResumeScenario(s, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events <= parsed.Events() {
		t.Fatalf("resumed run fired no events past the checkpoint: %d <= %d", res.Events, parsed.Events())
	}
}

// TestResumeRejectsMismatchedScenario checks the fingerprint guard: a
// checkpoint must not restore into a structurally different world.
func TestResumeRejectsMismatchedScenario(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.02
	s := ReferenceScenario(opts)
	ck, err := CheckpointScenario(s, opts.Seed, 500*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	other := s
	other.VMs = append([]VMSpec(nil), s.VMs...)
	other.VMs[0].Mode = core.Paratick
	if _, err := ResumeScenario(other, ck); err == nil {
		t.Fatal("checkpoint restored into a structurally different scenario")
	}
}

// TestWarmForkSavings asserts the acceptance floor: warm-started forking
// must at least halve the simulated warmup events on the sweeps that fork
// (the crossover's 8 device-latency arms share one warmup per mode, so the
// factor there is the arm count).
func TestWarmForkSavings(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.05
	cross, err := RunCrossover(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSavings := func(name string, w WarmupStats) {
		t.Helper()
		if w.Groups == 0 || w.GroupEvents == 0 {
			t.Fatalf("%s: no warm forks recorded: %+v", name, w)
		}
		factor := float64(w.GroupEvents+w.SavedEvents) / float64(w.GroupEvents)
		if factor < 2 {
			t.Fatalf("%s: warmup-event savings %.2fx < 2x: %+v", name, factor, w)
		}
	}
	checkSavings("crossover", cross.Warmup)

	abl, err := RunHaltPollAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkSavings("haltpoll ablation", abl.Warmup)
}

// FuzzSnapshotRoundTrip drives save→rebuild→restore→re-save at arbitrary
// mid-run instants and modes: the re-saved bytes and the engine state digest
// must both match the original exactly, whatever the freeze point cuts
// through (mid-I/O, mid-tick, pre-boot, post-completion).
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint8(0))
	f.Add(uint64(7), uint16(2500), uint8(1))
	f.Add(uint64(42), uint16(900), uint8(2))
	f.Add(uint64(1234567), uint16(4999), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, atMicros uint16, modeSel uint8) {
		modes := []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick}
		opts := DefaultOptions()
		opts.Scale = 0.02
		spec := Spec{
			Name:  "fuzz",
			Mode:  modes[int(modeSel)%len(modes)],
			VCPUs: 2,
			Setup: fioSetup(opts),
		}
		s := spec.scenario()
		at := sim.Time(int64(atMicros)%5000+1) * sim.Microsecond
		w1, err := buildWorld(s, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		w1.se.RunUntil(at)
		data, err := w1.save()
		if err != nil {
			t.Fatal(err)
		}
		w2, err := buildWorld(s, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.restore(data); err != nil {
			t.Fatal(err)
		}
		if g, w := w2.se.Root().DigestState(), w1.se.Root().DigestState(); g != w {
			t.Fatalf("engine digest mismatch after restore at %v: %v vs %v", at, g, w)
		}
		again, err := w2.save()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("snapshot round-trip diverged at %v: %d vs %d bytes", at, len(data), len(again))
		}
	})
}
