package experiment

// Checkpoint support for the experiment-layer programs, mirroring
// internal/workload/snapshot.go: each program serializes exactly the fields
// its Next mutates; construction-time parameters (devices, locks, horizons)
// come back from rebuilding the scenario.

import (
	"paratick/internal/guest"
	"paratick/internal/snap"
)

var (
	_ guest.ProgramState = (*idleCycleProgram)(nil)
	_ guest.ProgramState = (*timerAppProgram)(nil)
	_ guest.ProgramState = (*spinLockProgram)(nil)
)

// SaveState implements guest.ProgramState.
func (p *idleCycleProgram) SaveState(enc *snap.Encoder) {
	enc.Bool(p.inIO)
}

// LoadState implements guest.ProgramState.
func (p *idleCycleProgram) LoadState(dec *snap.Decoder) error {
	p.inIO = dec.Bool()
	return dec.Err()
}

// SaveState implements guest.ProgramState.
func (p *timerAppProgram) SaveState(enc *snap.Encoder) {
	enc.I64(int64(p.iters))
	enc.Bool(p.sleeping)
}

// LoadState implements guest.ProgramState.
func (p *timerAppProgram) LoadState(dec *snap.Decoder) error {
	p.iters = int(dec.I64())
	p.sleeping = dec.Bool()
	return dec.Err()
}

// SaveState implements guest.ProgramState.
func (p *spinLockProgram) SaveState(enc *snap.Encoder) {
	enc.I64(int64(p.iters))
	enc.I64(int64(p.phase))
}

// LoadState implements guest.ProgramState.
func (p *spinLockProgram) LoadState(dec *snap.Decoder) error {
	p.iters = int(dec.I64())
	p.phase = int(dec.I64())
	return dec.Err()
}
