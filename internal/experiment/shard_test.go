package experiment

import (
	"bytes"
	"testing"

	"paratick/internal/sim"
	"paratick/internal/trace"
)

// shardObservation is everything a differential run compares: the rendered
// report, the canonical trace dump, and a mid-run checkpoint. All three
// must be byte-identical for every shard count.
type shardObservation struct {
	report     string
	traceDump  string
	checkpoint []byte
}

// observeShardRun executes the scenario at the given shard count and
// collects the observation. The trace is attached through the host so the
// per-lane buffers and their canonical merge are exercised.
func observeShardRun(t *testing.T, s Scenario, seed uint64, shards int, ckAt sim.Time) shardObservation {
	t.Helper()
	s.Shards = shards
	w, err := buildWorld(s, seed, nil)
	if err != nil {
		t.Fatalf("shards=%d: build: %v", shards, err)
	}
	w.host.SetTracer(trace.NewBuffer(2048))
	w, err = w.run(nil)
	if err != nil {
		t.Fatalf("shards=%d: run: %v", shards, err)
	}
	res, err := w.finish()
	if err != nil {
		t.Fatalf("shards=%d: finish: %v", shards, err)
	}
	fleet := &ShardFleetResult{VMs: len(s.VMs), Quantum: s.Quantum, Results: res.Results, Events: res.Events}
	ck, err := CheckpointScenario(s, seed, ckAt)
	if err != nil {
		t.Fatalf("shards=%d: checkpoint: %v", shards, err)
	}
	return shardObservation{
		report:     fleet.Render(),
		traceDump:  w.host.Tracer().Dump(),
		checkpoint: ck.Bytes(),
	}
}

// diffObservations fails the test on the first byte difference.
func diffObservations(t *testing.T, label string, serial, sharded shardObservation, shards int) {
	t.Helper()
	if sharded.report != serial.report {
		t.Errorf("%s: shards=%d report differs from serial:\n--- serial ---\n%s\n--- shards=%d ---\n%s",
			label, shards, serial.report, shards, sharded.report)
	}
	if sharded.traceDump != serial.traceDump {
		t.Errorf("%s: shards=%d trace differs from serial", label, shards)
	}
	if !bytes.Equal(sharded.checkpoint, serial.checkpoint) {
		t.Errorf("%s: shards=%d checkpoint differs from serial (%d vs %d bytes)",
			label, shards, len(sharded.checkpoint), len(serial.checkpoint))
	}
}

// TestShardedDifferential pins the tentpole contract over a matrix of 40
// seeded fleet scenarios: for every (seed, fleet size, quantum, IPI
// density) the report, the canonical trace, and a mid-run checkpoint are
// byte-identical at shards 1, 2, 4, and 8 (8 clamps to the 4 lanes — the
// clamp itself must not change bytes either).
func TestShardedDifferential(t *testing.T) {
	type cfg struct {
		vms     int
		quantum sim.Time
		ipis    int // cross-IPI streams kept (ring prefix)
	}
	cfgs := []cfg{
		{vms: 4, quantum: sim.Millisecond, ipis: 4},
		{vms: 6, quantum: 500 * sim.Microsecond, ipis: 6},
		{vms: 8, quantum: 2 * sim.Millisecond, ipis: 2},
		{vms: 5, quantum: sim.Millisecond, ipis: 0},
	}
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 42, 1234567, 987654321}
	if testing.Short() {
		cfgs = cfgs[:2]
		seeds = seeds[:2]
	}
	n := 0
	for _, c := range cfgs {
		for _, seed := range seeds {
			n++
			opts := DefaultOptions()
			opts.Scale = 0.01
			opts.Quantum = c.quantum
			s, err := ShardFleetScenario(opts, c.vms)
			if err != nil {
				t.Fatal(err)
			}
			s.CrossIPI = s.CrossIPI[:c.ipis]
			label := s.Name
			// Freeze at the first barrier: safely before the ~3.4 ms (at
			// scale 0.01) workload completion for every quantum in the
			// matrix.
			ckAt := c.quantum
			serial := observeShardRun(t, s, seed, 1, ckAt)
			for _, shards := range []int{2, 4, 8} {
				diffObservations(t, label, serial, observeShardRun(t, s, seed, shards, ckAt), shards)
			}
			if t.Failed() {
				t.Fatalf("scenario %d (vms=%d quantum=%v ipis=%d seed=%d) diverged",
					n, c.vms, c.quantum, c.ipis, seed)
			}
		}
	}
	t.Logf("%d scenarios byte-identical at shards {1,2,4,8}", n)
}

// TestShardedCheckpointCrossResume pins shard-count independence of the
// checkpoint format end to end: a checkpoint taken at shards=4 resumes at
// shards=1 (and vice versa) with byte-identical final reports.
func TestShardedCheckpointCrossResume(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.01
	s, err := ShardFleetScenario(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	finish := func(takeShards, resumeShards int) string {
		take := s
		take.Shards = takeShards
		ck, err := CheckpointScenario(take, 7, 2*s.Quantum)
		if err != nil {
			t.Fatal(err)
		}
		resume := s
		resume.Shards = resumeShards
		res, err := ResumeScenario(resume, ck)
		if err != nil {
			t.Fatal(err)
		}
		fleet := &ShardFleetResult{VMs: len(s.VMs), Quantum: s.Quantum, Results: res.Results, Events: res.Events}
		return fleet.Render()
	}
	straight := finish(1, 1)
	for _, pair := range [][2]int{{1, 4}, {4, 1}, {4, 4}} {
		if got := finish(pair[0], pair[1]); got != straight {
			t.Errorf("checkpoint taken at shards=%d resumed at shards=%d diverges from serial:\n%s\nwant:\n%s",
				pair[0], pair[1], got, straight)
		}
	}
}

// TestShardedRaceSmoke runs a small multi-shard fleet — it exists so `go
// test -race -short` drives the shard goroutines, the mailbox drain, and
// the barrier hand-off under the race detector on every CI run.
func TestShardedRaceSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.002
	opts.Shards = 4
	if _, err := RunShardFleet(opts, 8); err != nil {
		t.Fatal(err)
	}
}

// FuzzShardedDifferential drives the byte-identity contract over arbitrary
// (quantum, shard count, cross-IPI density) combinations: whatever the
// fuzzer picks, the sharded report and checkpoint must match the serial
// lane schedule exactly.
func FuzzShardedDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint16(1000), uint8(2), uint8(4))
	f.Add(uint64(42), uint8(6), uint16(500), uint8(4), uint8(0))
	f.Add(uint64(7), uint8(5), uint16(2000), uint8(8), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, vms uint8, quantumMicros uint16, shards uint8, ipis uint8) {
		nv := 4 + int(vms)%5 // 4..8 VMs
		opts := DefaultOptions()
		opts.Scale = 0.004
		// 100 µs – 1 ms: the first barrier must land before the ~1.4 ms (at
		// scale 0.004) workload completion, or there is no instant to
		// checkpoint at.
		opts.Quantum = sim.Time(int64(quantumMicros)%900+100) * sim.Microsecond
		s, err := ShardFleetScenario(opts, nv)
		if err != nil {
			t.Fatal(err)
		}
		s.CrossIPI = s.CrossIPI[:int(ipis)%(nv+1)]
		ns := 2 + int(shards)%7 // 2..8 shards, clamped to lanes by buildWorld
		ckAt := s.Quantum
		serial := observeShardRun(t, s, seed, 1, ckAt)
		diffObservations(t, s.Name, serial, observeShardRun(t, s, seed, ns, ckAt), ns)
	})
}
