package experiment

import (
	"fmt"
	"testing"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/sched"
	"paratick/internal/sim"
)

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{Name: "x"}).Validate(); err == nil {
		t.Error("scenario with no VMs accepted")
	}
	s := Scenario{Name: "x", VMs: []VMSpec{{Name: "a", VCPUs: 1}}}
	if err := s.Validate(); err == nil {
		t.Error("scenario with no workload and no duration accepted")
	}
	s = Scenario{Name: "x", Duration: sim.Second, VMs: []VMSpec{{Name: "a"}}}
	if err := s.Validate(); err == nil {
		t.Error("VM with neither vCPUs nor placement accepted")
	}
}

// spinFleet declares nVMs identical VMs, every vCPU pinned to the same two
// pCPUs and spinning for the whole run — an nVMs:1 overcommit with no
// blocking, the worst case for scheduler fairness.
func spinFleet(policy sched.Kind, dur sim.Time, nVMs int) Scenario {
	pin := []hw.CPUID{0, 1}
	s := Scenario{
		Name:        fmt.Sprintf("invariant/spin/%s", policy),
		Topology:    hw.Topology{Sockets: 1, CPUsPerSocket: 2, CrossSocketTax: 1.35},
		SchedPolicy: policy,
		Duration:    dur,
	}
	for n := 0; n < nVMs; n++ {
		s.VMs = append(s.VMs, VMSpec{
			Name: fmt.Sprintf("vm%d", n), Mode: core.DynticksIdle, Placement: pin,
			Setup: func(vm *kvm.VM) error {
				for i := range pin {
					vm.Kernel().Spawn(fmt.Sprintf("hog%d", i), i,
						guest.Steps(guest.Compute(2*dur)))
				}
				return nil
			},
		})
	}
	return s
}

// TestFairNoStarvation is the sched.Fair liveness invariant: with identical
// spinning VMs at 2:1 overcommit, no VM is starved below half its fair share
// of useful compute over the run.
func TestFairNoStarvation(t *testing.T) {
	const dur = 200 * sim.Millisecond
	const nVMs = 2
	sr, err := runScenario(spinFleet(sched.Fair, dur, nVMs), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 pCPUs × dur of capacity split across nVMs identical VMs.
	fairShare := 2 * dur / nVMs
	for _, res := range sr.Results {
		got := res.Counters.GuestUseful
		if got < fairShare/2 {
			t.Errorf("%s: useful compute %v below half its fair share (%v)",
				res.Name, got, fairShare)
		}
		if got > 2*dur {
			t.Errorf("%s: useful compute %v exceeds machine capacity", res.Name, got)
		}
	}
}

// workFleet is spinFleet with a fixed amount of work per hog instead of a
// fixed duration: the scenario runs to completion, so total useful compute
// is an invariant the scheduling policy must not change.
func workFleet(policy sched.Kind, work sim.Time, nVMs int) Scenario {
	pin := []hw.CPUID{0, 1}
	s := Scenario{
		Name:        fmt.Sprintf("invariant/work/%s", policy),
		Topology:    hw.Topology{Sockets: 1, CPUsPerSocket: 2, CrossSocketTax: 1.35},
		SchedPolicy: policy,
	}
	for n := 0; n < nVMs; n++ {
		s.VMs = append(s.VMs, VMSpec{
			Name: fmt.Sprintf("vm%d", n), Mode: core.DynticksIdle, Placement: pin,
			Workload: true,
			Setup: func(vm *kvm.VM) error {
				for i := range pin {
					vm.Kernel().Spawn(fmt.Sprintf("hog%d", i), i,
						guest.Steps(guest.Compute(work)))
				}
				return nil
			},
		})
	}
	return s
}

// TestBusyConservationAcrossPolicies is the sched conservation invariant:
// a run-to-completion workload performs exactly the same total useful
// compute under FIFO and Fair — policies reorder work, they must not create
// or destroy it.
func TestBusyConservationAcrossPolicies(t *testing.T) {
	const work = 25 * sim.Millisecond
	const nVMs = 2
	total := func(policy sched.Kind) sim.Time {
		t.Helper()
		sr, err := runScenario(workFleet(policy, work, nVMs), 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum sim.Time
		for _, res := range sr.Results {
			sum += res.Counters.GuestUseful
		}
		return sum
	}
	fifo, fair := total(sched.FIFO), total(sched.Fair)
	want := sim.Time(nVMs) * 2 * work // nVMs VMs × 2 hogs × work each
	if fifo != want {
		t.Errorf("FIFO useful compute = %v, want %v", fifo, want)
	}
	if fair != want {
		t.Errorf("Fair useful compute = %v, want %v", fair, want)
	}
}
