package experiment

import (
	"fmt"
	"strings"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/workload"
)

// ConsolidationRow is one tick mode's system-wide outcome on the mixed
// fleet.
type ConsolidationRow struct {
	Mode       core.Mode
	TotalExits uint64
	TimerExits uint64
	// HostOverhead is hypervisor time burned fleet-wide.
	HostOverhead sim.Time
	// BusyCycles is fleet-wide CPU consumption for the same delivered work.
	BusyCycles sim.Time
	// IOBytes is the I/O VM's delivered bytes (its throughput proxy).
	IOBytes uint64
	// Wakeups counts fleet-wide task wakeups (sanity: equal work across
	// modes).
	Wakeups uint64
}

// ConsolidationResult compares the three tick modes on the §3.1
// consolidation scenario: one host running a mixed fleet — idle VMs (the
// common case the paper says is "not rare"), a blocking-sync VM, and an
// I/O VM — with vCPUs overcommitted 2:1 onto the host's cores.
type ConsolidationResult struct {
	Duration sim.Time
	Rows     []ConsolidationRow
}

// wrapPlace pins vcpus one per pCPU starting at base, wrapping around the
// 16-CPU consolidation host so placements overcommit 2:1.
func wrapPlace(vcpus, base int) []hw.CPUID {
	out := make([]hw.CPUID, vcpus)
	for i := range out {
		out[i] = hw.CPUID((base + i) % 16)
	}
	return out
}

// consolidationScenario declares the §3.1 fleet: 32 vCPUs over 16 pCPUs —
// four idle 4-vCPU VMs, one 8-vCPU blocking-sync VM, one 4-vCPU I/O VM, one
// 4-vCPU compute VM — all under one tick mode.
func consolidationScenario(opts Options, mode core.Mode, dur sim.Time) Scenario {
	s := Scenario{
		Name:          "consolidation/" + mode.String(),
		Topology:      hw.SmallTopology(), // 16 pCPUs
		SchedPolicy:   opts.SchedPolicy,
		Duration:      dur,
		SnapshotProbe: opts.SnapshotProbe,
		Quantum:       opts.Quantum,
		Shards:        opts.Shards,
	}
	for i := 0; i < 4; i++ {
		s.VMs = append(s.VMs, VMSpec{
			Name: fmt.Sprintf("idle%d", i), Mode: mode, Placement: wrapPlace(4, i*4),
		})
	}
	bench := workload.DefaultSyncBench()
	bench.Threads = 8
	bench.SyncsPerSec = 2000
	bench.Duration = dur
	s.VMs = append(s.VMs, VMSpec{
		Name: "sync", Mode: mode, Placement: wrapPlace(8, 0),
		Setup: func(vm *kvm.VM) error { return bench.Spawn(vm.Kernel()) },
	})
	job := workload.DefaultFioJob(workload.RandRead, 4096, int64(float64(16<<20)*opts.Scale))
	s.VMs = append(s.VMs, VMSpec{
		Name: "io", Mode: mode, Placement: wrapPlace(4, 8),
		Setup: func(vm *kvm.VM) error {
			dev, err := vm.AttachDevice("disk0", opts.Device)
			if err != nil {
				return err
			}
			return job.Spawn(vm.Kernel(), dev)
		},
	})
	s.VMs = append(s.VMs, VMSpec{
		Name: "compute", Mode: mode, Placement: wrapPlace(4, 12),
		Setup: func(vm *kvm.VM) error {
			for i := 0; i < 4; i++ {
				vm.Kernel().Spawn(fmt.Sprintf("c%d", i), i,
					guest.Steps(guest.Compute(dur/4)))
			}
			return nil
		},
	})
	return s
}

// RunConsolidation simulates the fleet for 1 s × scale under each mode and
// reports system-wide costs.
func RunConsolidation(opts Options) (*ConsolidationResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dur := sim.Time(float64(sim.Second) * opts.Scale)
	if dur < 100*sim.Millisecond {
		dur = 100 * sim.Millisecond
	}
	res := &ConsolidationResult{Duration: dur}
	modes := []core.Mode{core.Periodic, core.DynticksIdle, core.Paratick}
	rows, err := runParallel(opts, len(modes),
		func(i int, a *arena) (ConsolidationRow, error) {
			return runConsolidationMode(opts, modes[i], dur, a)
		})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

func runConsolidationMode(opts Options, mode core.Mode, dur sim.Time, a *arena) (ConsolidationRow, error) {
	sr := a.resultScratch()
	if err := runScenarioInto(consolidationScenario(opts, mode, dur), opts.Seed, opts.Meter, a, sr); err != nil {
		return ConsolidationRow{}, err
	}
	row := ConsolidationRow{Mode: mode}
	for i := range sr.Results {
		c := &sr.Results[i].Counters
		row.TotalExits += c.TotalExits()
		row.TimerExits += c.TimerExits()
		row.HostOverhead += c.HostOverhead
		row.BusyCycles += c.BusyCycles()
		row.IOBytes += c.IOBytes()
		row.Wakeups += c.Wakeups
	}
	return row, nil
}

// Render prints the fleet comparison.
func (r *ConsolidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Consolidation (§3.1): mixed fleet, 32 vCPUs on 16 pCPUs, %v\n\n", r.Duration)
	t := metrics.NewTable("",
		"mode", "total-exits", "timer-exits", "host-overhead", "busy-cycles", "io-bytes")
	for _, row := range r.Rows {
		t.AddRow(row.Mode.String(),
			fmt.Sprintf("%d", row.TotalExits),
			fmt.Sprintf("%d", row.TimerExits),
			row.HostOverhead.String(),
			row.BusyCycles.String(),
			fmt.Sprintf("%d", row.IOBytes))
	}
	b.WriteString(t.String())
	return b.String()
}
