package experiment

import (
	"bytes"
	"fmt"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sched"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// VMSpec describes one virtual machine inside a Scenario.
type VMSpec struct {
	Name       string
	Mode       core.Mode
	GuestHz    int // 0 → guest default (250)
	PolicyOpts core.Options
	// AdaptiveSpin enables the guest's optimistic-spin lock path.
	AdaptiveSpin sim.Time
	// TopUp enables the §4.1 frequency top-up (paratick mode only).
	TopUp bool
	// VCPUs/Sockets place the vCPUs via Topology.SpreadAcross. Placement,
	// when non-nil, pins them explicitly instead (overcommitted placements).
	VCPUs     int
	Sockets   int // 0 → 1
	Placement []hw.CPUID
	// Workload marks this VM's tasks as the scenario's completion condition:
	// a Scenario with Duration 0 runs until every workload VM finishes.
	Workload bool
	// TaskHint presizes the guest's task bookkeeping (task registry, vCPU
	// run queues) for roughly this many Setup-spawned tasks, so the first
	// run through a pooled VM does not grow those queues mid-flight. A
	// capacity hint only; 0 keeps the defaults.
	TaskHint int
	// Setup spawns the VM's tasks and devices. It must be deterministic and
	// re-runnable: checkpoint restore rebuilds the scenario by calling it
	// again, so it must not capture state mutated by a previous call.
	Setup func(vm *kvm.VM) error
}

// Scenario is one simulation run: a host configuration plus the fleet of
// VMs sharing it. A single-VM Spec is the degenerate case (see Spec.scenario);
// consolidation and overcommit studies declare multi-VM fleets.
type Scenario struct {
	Name string
	// Topology overrides the host CPU layout; the zero value keeps the
	// paper's 80-CPU machine.
	Topology hw.Topology
	HostHz   int // 0 → 250
	// Timeslice overrides the pCPU timeslice (0 → 6 ms default).
	Timeslice   sim.Time
	HaltPoll    sim.Time
	PLEWindow   sim.Time
	SchedPolicy sched.Kind
	// Duration runs for a fixed simulated time; when 0 the scenario ends
	// once every Workload-marked VM completes.
	Duration sim.Time
	// SnapshotProbe, when positive, checkpoints the run at this instant,
	// verifies the snapshot round-trips byte-identically, and continues on
	// the restored copy — so any restore bug surfaces as divergent results.
	// It is a differential-testing gate, not a performance feature.
	// In lane mode the probe instant is rounded up to the quantum grid, so
	// the probe never introduces a barrier an unprobed run would not have.
	SnapshotProbe sim.Time
	// Quantum, when positive, runs the scenario in lane mode: one event
	// lane per socket under the conservative quantum barrier. It is part of
	// the scenario's semantic identity (interleavings and RNG streams
	// change); every VM must then be contained on a single socket.
	Quantum sim.Time
	// Shards is how many goroutines execute the lanes (clamped to the lane
	// count; 0 or 1 = serial). Execution-only: results are byte-identical
	// for every value, and it is excluded from the structural fingerprint.
	Shards int
	// CrossIPI declares periodic cross-VM doorbell streams (the vhost-style
	// kick pattern), the only interaction that crosses lanes. Lane mode
	// only; order is part of the scenario's identity.
	CrossIPI []CrossIPISpec
	VMs      []VMSpec
}

// CrossIPISpec declares one periodic cross-VM interrupt stream: every
// Period, an IPI posted from the Src VM's lane is delivered to DstVCPU of
// the Dst VM after Latency. Latency must cover the conservative quantum
// horizon (≥ Quantum).
type CrossIPISpec struct {
	// Src and Dst index Scenario.VMs.
	Src, Dst int
	DstVCPU  int
	Period   sim.Time
	Latency  sim.Time
	// Phase is the first firing instant (0 → Period).
	Phase sim.Time
}

// ScenarioResult carries per-VM results in VMSpec order.
type ScenarioResult struct {
	Results []metrics.Result
	Events  uint64
}

// Validate checks the scenario is runnable.
func (s Scenario) Validate() error {
	if len(s.VMs) == 0 {
		return fmt.Errorf("experiment %s: scenario needs at least one VM", s.Name)
	}
	if s.Duration == 0 {
		any := false
		for _, v := range s.VMs {
			any = any || v.Workload
		}
		if !any {
			return fmt.Errorf("experiment %s: no workload VM and no duration", s.Name)
		}
	}
	for _, v := range s.VMs {
		if v.VCPUs <= 0 && len(v.Placement) == 0 {
			return fmt.Errorf("experiment %s: VM %q needs vCPUs or a placement", s.Name, v.Name)
		}
	}
	if s.Quantum < 0 {
		return fmt.Errorf("experiment %s: quantum must be non-negative, got %v", s.Name, s.Quantum)
	}
	if s.Shards < 0 {
		return fmt.Errorf("experiment %s: shards must be non-negative, got %d", s.Name, s.Shards)
	}
	if s.Quantum == 0 {
		if s.Shards > 1 {
			return fmt.Errorf("experiment %s: %d shards require a positive quantum", s.Name, s.Shards)
		}
		if len(s.CrossIPI) > 0 {
			return fmt.Errorf("experiment %s: cross-VM IPI streams require lane mode (a positive quantum)", s.Name)
		}
	}
	for i, ci := range s.CrossIPI {
		if ci.Src < 0 || ci.Src >= len(s.VMs) || ci.Dst < 0 || ci.Dst >= len(s.VMs) {
			return fmt.Errorf("experiment %s: cross-IPI stream %d links VMs %d→%d, have %d VMs",
				s.Name, i, ci.Src, ci.Dst, len(s.VMs))
		}
	}
	return nil
}

// RunScenario executes the scenario and returns per-VM results.
func RunScenario(s Scenario, seed uint64) (*ScenarioResult, error) {
	return runScenario(s, seed, nil, nil)
}

// runScenario is RunScenario with telemetry and an optional worker arena
// supplying the reused engine.
func runScenario(s Scenario, seed uint64, m *metrics.Meter, a *arena) (*ScenarioResult, error) {
	out := &ScenarioResult{}
	if err := runScenarioInto(s, seed, m, a, out); err != nil {
		return nil, err
	}
	return out, nil
}

// runScenarioInto is runScenario writing per-VM results into caller-owned
// storage; the experiment runners pass their worker arena's scratch result
// so a steady-state sweep allocates nothing per run.
func runScenarioInto(s Scenario, seed uint64, m *metrics.Meter, a *arena, out *ScenarioResult) error {
	w, err := buildWorld(s, seed, a)
	if err != nil {
		return err
	}
	w, err = w.run(m)
	if err != nil {
		return err
	}
	return w.finishInto(out)
}

// world is one fully constructed scenario instance: the engine, host, and
// VM fleet, plus the bookkeeping runScenario needs. Splitting construction
// (buildWorld) from execution (run/finish) is what makes checkpointing
// possible: restore rebuilds an identical world from the spec and then
// overwrites its mutable state from the snapshot.
type world struct {
	scenario Scenario
	seed     uint64
	cfg      kvm.Config
	// placements records each VM's resolved pCPU placement; it feeds the
	// scenario fingerprint, which must cover the placement actually used,
	// not the spec fields it was derived from.
	placements [][]hw.CPUID
	// se coordinates the run's engines: a legacy single-engine wrapper when
	// Quantum is 0 (byte-identical to the pre-shard code path), or one lane
	// per socket under the quantum barrier.
	se        *sim.ShardedEngine
	host      *kvm.Host
	vms       []*kvm.VM
	workloads int
	// remaining counts unfinished workload VMs; the legacy OnWorkloadDone
	// hooks decrement it and stop the engine at zero (Duration-0
	// scenarios). Lane mode checks completion at barriers instead — a
	// shared counter mutated from several shards would race.
	remaining int
	// resumed marks a world restored from a checkpoint whose arms may have
	// had runtime knobs retuned; the snapshot probe then verifies without
	// adopting the rebuilt copy (a rebuild cannot know the retuned knobs).
	resumed bool
}

// buildWorld constructs the scenario and starts every VM, leaving the
// engine one Run call away from executing. The construction order is
// load-bearing for reproducibility: each VM is created and set up in VMSpec
// order (kernel and device creation fork the engine's RNG), then all VMs
// start in the same order, exactly as the pre-scenario runners did.
// Checkpoint restore relies on the same property: rebuilding from an equal
// (Scenario, seed) yields an object graph of identical shape.
func buildWorld(s Scenario, seed uint64, a *arena) (*world, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := kvm.DefaultConfig()
	if s.Topology.Sockets > 0 {
		cfg.Topology = s.Topology
	}
	if s.HostHz > 0 {
		cfg.HostHz = s.HostHz
	}
	if s.Timeslice > 0 {
		cfg.Timeslice = s.Timeslice
	}
	cfg.HaltPoll = s.HaltPoll
	cfg.PLEWindow = s.PLEWindow
	cfg.SchedPolicy = s.SchedPolicy
	lanes, shards := 1, 1
	if s.Quantum > 0 {
		// One lane per socket; shards clamp to the lane count, so a
		// single-socket topology degenerates to serial lane mode.
		lanes = cfg.Topology.Sockets
		if s.Shards > 1 {
			shards = s.Shards
			if shards > lanes {
				shards = lanes
			}
		}
	}
	se, err := a.shardedFor(seed, lanes, shards, s.Quantum)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
	}
	host, err := a.hostArena().NewHostOn(se, cfg)
	if err != nil {
		return nil, err
	}
	w := &world{
		scenario:   s,
		seed:       seed,
		cfg:        cfg,
		se:         se,
		host:       host,
		vms:        make([]*kvm.VM, 0, len(s.VMs)),
		placements: make([][]hw.CPUID, 0, len(s.VMs)),
	}
	for _, vs := range s.VMs {
		placement := vs.Placement
		if placement == nil {
			sockets := vs.Sockets
			if sockets == 0 {
				sockets = 1
			}
			placement, err = cfg.Topology.SpreadAcross(vs.VCPUs, sockets)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
			}
		}
		gcfg := guest.DefaultConfig()
		gcfg.Mode = vs.Mode
		gcfg.PolicyOpts = vs.PolicyOpts
		gcfg.AdaptiveSpin = vs.AdaptiveSpin
		gcfg.TaskHint = vs.TaskHint
		if vs.GuestHz > 0 {
			gcfg.TickHz = vs.GuestHz
		}
		vm, err := host.NewVM(vs.Name, gcfg, placement)
		if err != nil {
			return nil, err
		}
		if vs.Mode == core.Paratick && vs.TopUp {
			vm.SetEntryHook(&core.ParatickHost{TopUp: true})
		}
		if vs.Setup != nil {
			if err := vs.Setup(vm); err != nil {
				return nil, fmt.Errorf("experiment %s setup %s: %w", s.Name, vs.Name, err)
			}
		}
		if vs.Workload {
			w.workloads++
		}
		w.placements = append(w.placements, placement)
		w.vms = append(w.vms, vm)
	}
	for i, ci := range s.CrossIPI {
		if err := host.AddIPIStream(w.vms[ci.Src], w.vms[ci.Dst], ci.DstVCPU, ci.Period, ci.Latency, ci.Phase); err != nil {
			return nil, fmt.Errorf("experiment %s: cross-IPI stream %d: %w", s.Name, i, err)
		}
	}
	w.remaining = w.workloads
	if s.Quantum > 0 {
		// Lane mode: completion is decided at quantum barriers, where the
		// coordinator can read every lane's state race-free. A per-VM
		// OnWorkloadDone hook would mutate shared state from several shard
		// goroutines, and a mid-quantum stop would depend on the shard
		// interleaving.
		if s.Duration == 0 {
			se.SetBarrierHook(func(sim.Time) {
				if w.workloadsDone() {
					se.Stop()
				}
			})
		}
	} else {
		for i, vs := range s.VMs {
			if !vs.Workload {
				continue
			}
			w.vms[i].OnWorkloadDone = func(sim.Time) {
				w.remaining--
				if w.remaining == 0 && w.scenario.Duration == 0 {
					w.se.Stop()
				}
			}
		}
	}
	for _, vm := range w.vms {
		vm.Start()
	}
	return w, nil
}

// workloadsDone reports whether every workload VM has finished.
func (w *world) workloadsDone() bool {
	for i, vs := range w.scenario.VMs {
		if !vs.Workload {
			continue
		}
		if done, _ := w.vms[i].WorkloadDone(); !done {
			return false
		}
	}
	return true
}

// alignUp rounds t up to the next quantum-grid instant in lane mode (the
// identity in legacy mode, or when t is already on the grid). Probe and
// checkpoint instants are aligned so that pausing there adds no barrier an
// uninterrupted run would not also have — the byte-identity contract
// between probed/checkpointed runs and straight runs depends on it.
func (w *world) alignUp(t sim.Time) sim.Time {
	q := w.se.Quantum()
	if q <= 0 || t%q == 0 {
		return t
	}
	return (t/q + 1) * q
}

// deadline is the instant the run ends at.
func (w *world) deadline() sim.Time {
	if w.scenario.Duration > 0 {
		return w.scenario.Duration
	}
	return maxSimTime
}

// fingerprint encodes the world's structural identity: everything that
// shapes the object graph a snapshot must be restored into. Name, Duration,
// SnapshotProbe, and Setup closures are deliberately excluded — they do not
// change the graph's shape, and a checkpoint may legitimately be resumed
// under a different label, horizon, or probe.
func (w *world) fingerprint() []byte {
	var enc snap.Encoder
	enc.Section("scenario-shape")
	enc.I64(int64(w.cfg.Topology.Sockets))
	enc.I64(int64(w.cfg.Topology.CPUsPerSocket))
	enc.F64(w.cfg.Topology.CrossSocketTax)
	enc.I64(int64(w.cfg.HostHz))
	enc.I64(int64(w.cfg.Timeslice))
	enc.I64(int64(w.cfg.HaltPoll))
	enc.I64(int64(w.cfg.PLEWindow))
	enc.U8(uint8(w.cfg.SchedPolicy))
	enc.U32(uint32(len(w.scenario.VMs)))
	for i, vs := range w.scenario.VMs {
		enc.String(vs.Name)
		enc.U8(uint8(vs.Mode))
		enc.I64(int64(vs.GuestHz))
		enc.Bool(vs.PolicyOpts.DisarmOnIdleExit)
		enc.I64(int64(vs.PolicyOpts.IdleEnterCost))
		enc.I64(int64(vs.PolicyOpts.IdleExitCost))
		enc.I64(int64(vs.AdaptiveSpin))
		enc.Bool(vs.TopUp)
		enc.Bool(vs.Workload)
		enc.U32(uint32(len(w.placements[i])))
		for _, c := range w.placements[i] {
			enc.I64(int64(c))
		}
	}
	// Lane-mode identity: quantum and the cross-IPI stream shapes change
	// the object graph and the schedule, so they are part of the
	// fingerprint — but only when lane mode is on, which keeps every legacy
	// fingerprint (including those inside committed reference checkpoints)
	// byte-for-byte unchanged. The shard count is deliberately excluded:
	// it is an execution knob with no observable effect, and a checkpoint
	// taken at shards=4 must resume at shards=1 (and vice versa).
	if w.scenario.Quantum != 0 {
		enc.Section("scenario-lanes")
		enc.I64(int64(w.scenario.Quantum))
		enc.U32(uint32(len(w.scenario.CrossIPI)))
		for _, ci := range w.scenario.CrossIPI {
			enc.I64(int64(ci.Src))
			enc.I64(int64(ci.Dst))
			enc.I64(int64(ci.DstVCPU))
			enc.I64(int64(ci.Period))
			enc.I64(int64(ci.Latency))
			enc.I64(int64(ci.Phase))
		}
	}
	return append([]byte(nil), enc.Bytes()...)
}

// save serializes the world's complete mutable state: engine scalars first
// (restore needs the clock before events re-arm), then the full host.
func (w *world) save() ([]byte, error) {
	var enc snap.Encoder
	w.se.Save(&enc)
	if err := w.host.Save(&enc); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// restore overwrites the world's mutable state with a snapshot produced by
// save on a world of identical shape. The engine is reset (dropping every
// event construction scheduled), its scalars loaded, and then every
// component re-arms its pending events at their original coordinates.
func (w *world) restore(data []byte) error {
	w.se.Reset(0)
	dec := snap.NewDecoder(data)
	if err := w.se.Load(dec); err != nil {
		return err
	}
	if err := w.host.Load(dec); err != nil {
		return err
	}
	if n := dec.Remaining(); n != 0 {
		return fmt.Errorf("experiment %s: %d bytes left over after snapshot load", w.scenario.Name, n)
	}
	w.remaining = 0
	for i, vs := range w.scenario.VMs {
		if !vs.Workload {
			continue
		}
		if done, _ := w.vms[i].WorkloadDone(); !done {
			w.remaining++
		}
	}
	return nil
}

// run executes the world to its deadline, crossing the snapshot probe if
// one is set, and returns the world holding the final state — which is the
// restored copy when the probe adopted one.
func (w *world) run(m *metrics.Meter) (*world, error) {
	deadline := w.deadline()
	start := w.se.Fired()
	if !w.se.Stopped() {
		if probe := w.alignUp(w.scenario.SnapshotProbe); probe > 0 && probe < deadline && w.se.Now() < probe {
			w.se.RunUntil(probe)
			// A Stop fired before the probe (workload completed) must survive
			// the split: re-arm it so the final RunUntil consumes it exactly
			// as an uninterrupted run would.
			stopped := w.se.Stopped()
			next, err := w.verifyRoundTrip()
			if err != nil {
				return nil, err
			}
			w = next
			if stopped {
				w.se.Stop()
			}
		}
		w.se.RunUntil(deadline)
	}
	m.AddRun(w.se.Fired() - start)
	return w, nil
}

// verifyRoundTrip is the probe's differential gate: save the world, rebuild
// an identical one from the spec, restore the snapshot into it, and check
// the copy re-saves to the exact original bytes. For a straight run the
// restored copy is returned and the run continues on it, so a mis-restored
// closure or pointer diverges the final results; a resumed world keeps
// running itself (its runtime knobs were retuned after the fork, which a
// rebuild from the spec cannot reproduce) and only the bytes are checked.
func (w *world) verifyRoundTrip() (*world, error) {
	data, err := w.save()
	if err != nil {
		return nil, err
	}
	fresh, err := buildWorld(w.scenario, w.seed, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: snapshot probe rebuild: %w", w.scenario.Name, err)
	}
	if err := fresh.restore(data); err != nil {
		return nil, fmt.Errorf("experiment %s: snapshot probe restore: %w", w.scenario.Name, err)
	}
	again, err := fresh.save()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(data, again) {
		return nil, fmt.Errorf("experiment %s: snapshot round-trip diverged at %v: %d bytes (digest %v) re-saved as %d bytes (digest %v)",
			w.scenario.Name, w.se.Now(), len(data), snap.HashBytes(data), len(again), snap.HashBytes(again))
	}
	if w.resumed {
		return w, nil
	}
	// The original world is abandoned in favor of the restored copy. Its VMs
	// need no teardown: if it was arena-built, the host keeps them and the
	// next run's Host.reset stashes them — mid-run state and all — into the
	// VM arena, whose acquire-time reset fully sanitizes them.
	return fresh, nil
}

// finish validates completion and assembles per-VM results. No teardown
// happens here: an arena-built world's VMs (with their timer wheels and
// task pools attached) stay with the host, which recycles them through the
// VM arena on its next reset; a fresh-built world is simply garbage.
func (w *world) finish() (*ScenarioResult, error) {
	out := &ScenarioResult{}
	if err := w.finishInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// finishInto is finish writing into caller-owned storage: out's Results
// slice is truncated and refilled in place (growing its backing array only
// when the fleet outgrows it), so a caller harvesting results every run —
// a runParallel worker, a Session — pays no per-run allocation.
func (w *world) finishInto(out *ScenarioResult) error {
	if w.scenario.Duration == 0 {
		for i, vs := range w.scenario.VMs {
			if !vs.Workload {
				continue
			}
			if done, _ := w.vms[i].WorkloadDone(); !done {
				return fmt.Errorf("experiment %s: workload did not finish within %v (live tasks %d)",
					w.scenario.Name, w.deadline(), w.vms[i].Kernel().LiveTasks())
			}
		}
	}
	out.Events = w.se.Fired()
	if cap(out.Results) < len(w.vms) {
		out.Results = make([]metrics.Result, len(w.vms))
	}
	out.Results = out.Results[:len(w.vms)]
	for i, vm := range w.vms {
		vm.ResultInto(&out.Results[i], w.scenario.VMs[i].Name)
		out.Results[i].Events = out.Events
	}
	return nil
}
