package experiment

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/kvm"
	"paratick/internal/metrics"
	"paratick/internal/sched"
	"paratick/internal/sim"
)

// VMSpec describes one virtual machine inside a Scenario.
type VMSpec struct {
	Name       string
	Mode       core.Mode
	GuestHz    int // 0 → guest default (250)
	PolicyOpts core.Options
	// AdaptiveSpin enables the guest's optimistic-spin lock path.
	AdaptiveSpin sim.Time
	// TopUp enables the §4.1 frequency top-up (paratick mode only).
	TopUp bool
	// VCPUs/Sockets place the vCPUs via Topology.SpreadAcross. Placement,
	// when non-nil, pins them explicitly instead (overcommitted placements).
	VCPUs     int
	Sockets   int // 0 → 1
	Placement []hw.CPUID
	// Workload marks this VM's tasks as the scenario's completion condition:
	// a Scenario with Duration 0 runs until every workload VM finishes.
	Workload bool
	// Setup spawns the VM's tasks and devices.
	Setup func(vm *kvm.VM) error
}

// Scenario is one simulation run: a host configuration plus the fleet of
// VMs sharing it. A single-VM Spec is the degenerate case (see Spec.scenario);
// consolidation and overcommit studies declare multi-VM fleets.
type Scenario struct {
	Name string
	// Topology overrides the host CPU layout; the zero value keeps the
	// paper's 80-CPU machine.
	Topology hw.Topology
	HostHz   int // 0 → 250
	// Timeslice overrides the pCPU timeslice (0 → 6 ms default).
	Timeslice   sim.Time
	HaltPoll    sim.Time
	PLEWindow   sim.Time
	SchedPolicy sched.Kind
	// Duration runs for a fixed simulated time; when 0 the scenario ends
	// once every Workload-marked VM completes.
	Duration sim.Time
	VMs      []VMSpec
}

// ScenarioResult carries per-VM results in VMSpec order.
type ScenarioResult struct {
	Results []metrics.Result
	Events  uint64
}

// Validate checks the scenario is runnable.
func (s Scenario) Validate() error {
	if len(s.VMs) == 0 {
		return fmt.Errorf("experiment %s: scenario needs at least one VM", s.Name)
	}
	if s.Duration == 0 {
		any := false
		for _, v := range s.VMs {
			any = any || v.Workload
		}
		if !any {
			return fmt.Errorf("experiment %s: no workload VM and no duration", s.Name)
		}
	}
	for _, v := range s.VMs {
		if v.VCPUs <= 0 && len(v.Placement) == 0 {
			return fmt.Errorf("experiment %s: VM %q needs vCPUs or a placement", s.Name, v.Name)
		}
	}
	return nil
}

// RunScenario executes the scenario and returns per-VM results.
func RunScenario(s Scenario, seed uint64) (*ScenarioResult, error) {
	return runScenario(s, seed, nil, nil)
}

// runScenario is RunScenario with telemetry and an optional worker arena
// supplying the reused engine. The construction order is load-bearing for
// reproducibility: each VM is created and set up in VMSpec order (kernel and
// device creation fork the engine's RNG), then all VMs start in the same
// order, exactly as the pre-scenario runners did.
func runScenario(s Scenario, seed uint64, m *metrics.Meter, a *arena) (*ScenarioResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	engine := a.engineFor(seed)
	cfg := kvm.DefaultConfig()
	if s.Topology.Sockets > 0 {
		cfg.Topology = s.Topology
	}
	if s.HostHz > 0 {
		cfg.HostHz = s.HostHz
	}
	if s.Timeslice > 0 {
		cfg.Timeslice = s.Timeslice
	}
	cfg.HaltPoll = s.HaltPoll
	cfg.PLEWindow = s.PLEWindow
	cfg.SchedPolicy = s.SchedPolicy
	host, err := kvm.NewHost(engine, cfg)
	if err != nil {
		return nil, err
	}
	vms := make([]*kvm.VM, 0, len(s.VMs))
	workloads := 0
	for _, vs := range s.VMs {
		placement := vs.Placement
		if placement == nil {
			sockets := vs.Sockets
			if sockets == 0 {
				sockets = 1
			}
			placement, err = cfg.Topology.SpreadAcross(vs.VCPUs, sockets)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", s.Name, err)
			}
		}
		gcfg := guest.DefaultConfig()
		gcfg.Mode = vs.Mode
		gcfg.PolicyOpts = vs.PolicyOpts
		gcfg.AdaptiveSpin = vs.AdaptiveSpin
		gcfg.Wheels = a.wheelPool()
		if vs.GuestHz > 0 {
			gcfg.TickHz = vs.GuestHz
		}
		vm, err := host.NewVM(vs.Name, gcfg, placement)
		if err != nil {
			return nil, err
		}
		if vs.Mode == core.Paratick && vs.TopUp {
			vm.SetEntryHook(&core.ParatickHost{TopUp: true})
		}
		if vs.Setup != nil {
			if err := vs.Setup(vm); err != nil {
				return nil, fmt.Errorf("experiment %s setup %s: %w", s.Name, vs.Name, err)
			}
		}
		if vs.Workload {
			workloads++
		}
		vms = append(vms, vm)
	}
	deadline := s.Duration
	if deadline == 0 {
		deadline = maxSimTime
		remaining := workloads
		for i, vs := range s.VMs {
			if !vs.Workload {
				continue
			}
			vms[i].OnWorkloadDone = func(sim.Time) {
				remaining--
				if remaining == 0 {
					engine.Stop()
				}
			}
		}
	}
	for _, vm := range vms {
		vm.Start()
	}
	engine.RunUntil(deadline)
	m.AddRun(engine.Fired())
	if s.Duration == 0 {
		for i, vs := range s.VMs {
			if !vs.Workload {
				continue
			}
			if done, _ := vms[i].WorkloadDone(); !done {
				return nil, fmt.Errorf("experiment %s: workload did not finish within %v (live tasks %d)",
					s.Name, deadline, vms[i].Kernel().LiveTasks())
			}
		}
	}
	out := &ScenarioResult{Events: engine.Fired()}
	for i, vm := range vms {
		res := vm.Result(s.VMs[i].Name)
		res.Events = out.Events
		out.Results = append(out.Results, res)
	}
	if pool := a.wheelPool(); pool != nil {
		for _, vm := range vms {
			pool.ReleaseAll(vm.Kernel())
		}
	}
	return out, nil
}
