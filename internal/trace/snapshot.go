package trace

// Checkpoint encoding of the trace buffer. The ring is saved in
// chronological order (so the internal next/full cursor state is
// normalized away) and the aggregate count map is encoded under sorted
// keys — equal trace states always produce equal bytes.

import (
	"fmt"
	"sort"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

// Save serializes the buffer. A nil buffer saves an explicit absent
// marker, so presence round-trips.
func (b *Buffer) Save(enc *snap.Encoder) {
	enc.Section("trace")
	if b == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.U64(uint64(b.cap))
	enc.U64(b.total)
	enc.I64(int64(b.first))
	enc.I64(int64(b.last))
	evs := b.Events()
	enc.U32(uint32(len(evs)))
	for _, e := range evs {
		enc.I64(int64(e.When))
		enc.I64(int64(e.Dur))
		enc.I64(int64(e.Kind))
		enc.I64(int64(e.PCPU))
		enc.String(e.VM)
		enc.I64(int64(e.VCPU))
		enc.String(e.Detail)
	}
	keys := make([]string, 0, len(b.counts))
	for k := range b.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.U64(b.counts[k])
	}
}

// Load restores state saved by Save into a buffer of the same capacity.
// It returns (present, error): present is false when the snapshot recorded
// a nil tracer.
func (b *Buffer) Load(dec *snap.Decoder) (bool, error) {
	dec.Section("trace")
	if !dec.Bool() {
		return false, dec.Err()
	}
	if b == nil {
		return true, fmt.Errorf("trace: snapshot carries a trace buffer but none is attached")
	}
	if c := int(dec.U64()); dec.Err() == nil && c != b.cap {
		return true, fmt.Errorf("trace: snapshot buffer capacity %d does not match configured %d", c, b.cap)
	}
	b.total = dec.U64()
	b.first = sim.Time(dec.I64())
	b.last = sim.Time(dec.I64())
	n := int(dec.U32())
	b.events = b.events[:0]
	b.next = 0
	b.full = false
	for i := 0; i < n && dec.Err() == nil; i++ {
		e := Event{
			When: sim.Time(dec.I64()),
			Dur:  sim.Time(dec.I64()),
			Kind: Kind(dec.I64()),
			PCPU: int(dec.I64()),
			VM:   dec.String(),
			VCPU: int(dec.I64()),
		}
		e.Detail = dec.String()
		b.events = append(b.events, e)
	}
	// The ring was saved in chronological order; a saved ring at capacity
	// resumes as full with the write cursor back at the start, which keeps
	// Events() ordering identical.
	if len(b.events) >= b.cap {
		b.full = true
		b.next = 0
	}
	nk := int(dec.U32())
	for k := range b.counts {
		delete(b.counts, k)
	}
	for i := 0; i < nk && dec.Err() == nil; i++ {
		k := dec.String()
		b.counts[k] = dec.U64()
	}
	return true, dec.Err()
}
