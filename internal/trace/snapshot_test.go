package trace

import (
	"testing"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

func record(b *Buffer, n int) {
	for i := 0; i < n; i++ {
		b.Record(Event{
			When: sim.Time(i) * sim.Microsecond, Kind: Kind(i % 4),
			PCPU: i % 3, VM: "vm0", VCPU: i % 2, Detail: "d",
		})
	}
}

func TestBufferSaveLoad(t *testing.T) {
	for _, n := range []int{0, 3, 8, 13} { // below, at, and beyond capacity 8
		src := NewBuffer(8)
		record(src, n)
		var enc snap.Encoder
		src.Save(&enc)

		dst := NewBuffer(8)
		present, err := dst.Load(snap.NewDecoder(enc.Bytes()))
		if err != nil || !present {
			t.Fatalf("n=%d: Load = %v, %v", n, present, err)
		}
		if dst.Total() != src.Total() {
			t.Fatalf("n=%d: total %d != %d", n, dst.Total(), src.Total())
		}
		se, de := src.Events(), dst.Events()
		if len(se) != len(de) {
			t.Fatalf("n=%d: events %d != %d", n, len(de), len(se))
		}
		for i := range se {
			if se[i] != de[i] {
				t.Fatalf("n=%d: event %d differs", n, i)
			}
		}
		if src.Summary() != dst.Summary() {
			t.Fatalf("n=%d: summaries differ", n)
		}

		// Recording after restore must behave like the original buffer.
		record(src, 5)
		record(dst, 5)
		if src.Summary() != dst.Summary() || src.Dump() != dst.Dump() {
			t.Fatalf("n=%d: post-restore recording diverged", n)
		}
	}
}

func TestNilBufferSaveLoad(t *testing.T) {
	var nilBuf *Buffer
	var enc snap.Encoder
	nilBuf.Save(&enc)
	present, err := NewBuffer(4).Load(snap.NewDecoder(enc.Bytes()))
	if err != nil || present {
		t.Fatalf("nil buffer round trip: present=%v err=%v", present, err)
	}
}

func TestLoadRejectsCapacityMismatch(t *testing.T) {
	src := NewBuffer(8)
	record(src, 2)
	var enc snap.Encoder
	src.Save(&enc)
	if _, err := NewBuffer(16).Load(snap.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("capacity mismatch not rejected")
	}
}
