package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

func ev(when sim.Time, kind Kind, detail string) Event {
	return Event{When: when, Kind: kind, PCPU: 0, VM: "vm", VCPU: 0, Detail: detail}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindExit: "exit", KindInject: "inject", KindVirtualTick: "vtick", KindSched: "sched",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestNilBufferIsNoop(t *testing.T) {
	var b *Buffer
	b.Record(ev(1, KindExit, "hlt")) // must not panic
	if b.Total() != 0 || b.Events() != nil || b.Count(KindExit, "hlt") != 0 {
		t.Fatal("nil buffer should be empty")
	}
}

func TestRecordAndCount(t *testing.T) {
	b := NewBuffer(16)
	b.Record(ev(1, KindExit, "hlt"))
	b.Record(ev(2, KindExit, "hlt"))
	b.Record(ev(3, KindExit, "msr-write"))
	b.Record(ev(4, KindInject, "paratick(235)"))
	if b.Total() != 4 {
		t.Fatalf("Total = %d", b.Total())
	}
	if b.Count(KindExit, "hlt") != 2 {
		t.Fatalf("Count(exit/hlt) = %d", b.Count(KindExit, "hlt"))
	}
	if b.Count(KindInject, "paratick(235)") != 1 {
		t.Fatal("inject count wrong")
	}
	if b.Count(KindExit, "nope") != 0 {
		t.Fatal("phantom count")
	}
}

func TestRingOverwrite(t *testing.T) {
	b := NewBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Record(ev(sim.Time(i), KindExit, "hlt"))
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	// Chronological: 3,4,5.
	for i, want := range []sim.Time{3, 4, 5} {
		if evs[i].When != want {
			t.Fatalf("events = %v", evs)
		}
	}
	// Aggregates count all 5.
	if b.Total() != 5 || b.Count(KindExit, "hlt") != 5 {
		t.Fatal("aggregates lost on overwrite")
	}
}

func TestNewBufferClampsCapacity(t *testing.T) {
	b := NewBuffer(0)
	b.Record(ev(1, KindExit, "x"))
	b.Record(ev(2, KindExit, "x"))
	if got := len(b.Events()); got != 1 {
		t.Fatalf("capacity-0 buffer retained %d", got)
	}
}

func TestSummary(t *testing.T) {
	b := NewBuffer(8)
	b.Record(ev(0, KindExit, "msr-write"))
	b.Record(ev(sim.Second, KindExit, "msr-write"))
	b.Record(ev(2*sim.Second, KindExit, "hlt"))
	s := b.Summary()
	if !strings.Contains(s, "3 events over 2s") {
		t.Errorf("summary header wrong:\n%s", s)
	}
	// Sorted by count: msr-write (2) before hlt (1).
	if strings.Index(s, "msr-write") > strings.Index(s, "hlt") {
		t.Errorf("summary not sorted by count:\n%s", s)
	}
	if !strings.Contains(s, "1.0/s") {
		t.Errorf("rate missing:\n%s", s)
	}
	empty := NewBuffer(4)
	if !strings.Contains(empty.Summary(), "no events") {
		t.Error("empty summary wrong")
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(4)
	b.Record(ev(5*sim.Microsecond, KindVirtualTick, "vector-235"))
	d := b.Dump()
	if !strings.Contains(d, "vector-235") || !strings.Contains(d, "vtick") {
		t.Errorf("dump missing fields:\n%s", d)
	}
	if !strings.Contains(NewBuffer(4).Dump(), "empty") {
		t.Error("empty dump wrong")
	}
}

// Property: the ring retains exactly min(n, cap) events, and they are the
// last n recorded, in order.
func TestRingRetentionProperty(t *testing.T) {
	f := func(nRaw, capRaw uint8) bool {
		n := int(nRaw % 100)
		capacity := int(capRaw%20) + 1
		b := NewBuffer(capacity)
		for i := 0; i < n; i++ {
			b.Record(ev(sim.Time(i), KindExit, "x"))
		}
		evs := b.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.When != sim.Time(n-want+i) {
				return false
			}
		}
		return b.Total() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	e := Event{When: 42 * sim.Microsecond, Kind: KindExit, PCPU: 3, VM: "vm1", VCPU: 7, Detail: "hlt"}
	s := e.String()
	for _, want := range []string{"42us", "pcpu3", "vm1/vcpu7", "exit", "hlt"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}
