// Chrome trace-event export: renders a recorded event stream in the JSON
// format consumed by Perfetto (ui.perfetto.dev) and chrome://tracing, so a
// full simulated run — VM exits, injections, virtual ticks, host scheduling —
// can be inspected on a timeline with one track per pCPU/vCPU.
//
// Output is fully deterministic for a given event stream: fixed key order,
// fixed float formatting, and stable sorting, so fixed-seed traces are
// byte-stable and can be golden-checked in CI.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"paratick/internal/sim"
)

// chromeThread identifies one timeline track: a vCPU of a VM pinned to a
// pCPU. The exporter maps pCPUs to Chrome "processes" and vCPUs to Chrome
// "threads", giving the requested one-track-per-pCPU/vCPU layout.
type chromeThread struct {
	pcpu int
	vm   string
	vcpu int
}

// WriteChrome renders the buffer's retained events as Chrome trace-event
// JSON. A nil or empty buffer writes a valid, empty trace.
func (b *Buffer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, b.Events())
}

// WriteChrome renders events as Chrome trace-event JSON. Events with a
// positive Dur become complete ("X") slices; zero-duration events become
// thread-scoped instants ("i").
func WriteChrome(w io.Writer, events []Event) error {
	evs := make([]Event, len(events))
	copy(evs, events)
	// Stable sort: ties keep recording order, so equal-timestamp events of
	// one pCPU stay in causal order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].When < evs[j].When })

	// Collect tracks and assign deterministic thread ids.
	seen := make(map[chromeThread]int)
	var threads []chromeThread
	for _, e := range evs {
		th := chromeThread{pcpu: e.PCPU, vm: e.VM, vcpu: e.VCPU}
		if _, ok := seen[th]; !ok {
			seen[th] = 0
			threads = append(threads, th)
		}
	}
	sort.Slice(threads, func(i, j int) bool {
		a, b := threads[i], threads[j]
		if a.pcpu != b.pcpu {
			return a.pcpu < b.pcpu
		}
		if a.vm != b.vm {
			return a.vm < b.vm
		}
		return a.vcpu < b.vcpu
	})
	for i, th := range threads {
		seen[th] = i + 1 // tid 0 is reserved by some viewers
	}

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}

	// Metadata: name every pCPU process and vCPU thread, and pin the sort
	// order so Perfetto lays tracks out in pCPU/vCPU order.
	lastPCPU := -1
	for _, th := range threads {
		if th.pcpu != lastPCPU {
			lastPCPU = th.pcpu
			emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"pcpu%d"}}`,
				th.pcpu, th.pcpu))
			emit(fmt.Sprintf(`{"ph":"M","name":"process_sort_index","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
				th.pcpu, th.pcpu))
		}
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
			th.pcpu, seen[th], jsonString(fmt.Sprintf("%s/vcpu%d", th.vm, th.vcpu))))
	}

	for _, e := range evs {
		tid := seen[chromeThread{pcpu: e.PCPU, vm: e.VM, vcpu: e.VCPU}]
		name := jsonString(e.Detail)
		cat := jsonString(e.Kind.String())
		ts := chromeMicros(e.When)
		if e.Dur > 0 {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d}`,
				name, cat, ts, chromeMicros(e.Dur), e.PCPU, tid))
		} else {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d}`,
				name, cat, ts, e.PCPU, tid))
		}
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeMicros formats a sim.Time (ns) as the microsecond decimal the trace
// format expects. Three fixed decimals keep nanosecond precision and make
// the output byte-stable.
func chromeMicros(t sim.Time) string {
	return strconv.FormatFloat(float64(t)/1000.0, 'f', 3, 64)
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Go string always marshals; keep the exporter total anyway.
		return `"?"`
	}
	return string(b)
}
