package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"paratick/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{When: 1 * sim.Microsecond, Kind: KindExit, PCPU: 0, VM: "vm0", VCPU: 0, Detail: "hlt", Dur: 2 * sim.Microsecond},
		{When: 2 * sim.Microsecond, Kind: KindInject, PCPU: 0, VM: "vm0", VCPU: 0, Detail: "local-timer(236)"},
		{When: 3 * sim.Microsecond, Kind: KindVirtualTick, PCPU: 1, VM: "vm0", VCPU: 1, Detail: "vector-235"},
		{When: 4 * sim.Microsecond, Kind: KindSched, PCPU: 1, VM: "vm0", VCPU: 1, Detail: "enter"},
	}
}

// chromeDoc mirrors the trace-event JSON envelope for validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		TS   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		PID  int             `json:"pid"`
		TID  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var slices, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur <= 0 {
				t.Fatal("complete event without duration")
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if slices != 1 || instants != 3 {
		t.Fatalf("slices=%d instants=%d, want 1/3", slices, instants)
	}
	if meta == 0 {
		t.Fatal("no track metadata emitted")
	}
}

func TestWriteChromeTracksPerPCPUAndVCPU(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"pcpu0"`, `"pcpu1"`, `"vm0/vcpu0"`, `"vm0/vcpu1"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing track label %s:\n%s", want, out)
		}
	}
	// Events on different pCPUs must land in different Chrome processes.
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			pids[e.PID] = true
		}
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("expected pids 0 and 1, got %v", pids)
	}
}

// Identical event streams must serialize to identical bytes — the property
// the CI golden check relies on.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	var b *Buffer // nil buffer is a valid no-op tracer
	if err := b.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatal("empty trace has events")
	}
}

func TestWriteChromeSortsOutOfOrderEvents(t *testing.T) {
	evs := []Event{
		{When: 5 * sim.Microsecond, Kind: KindExit, Detail: "late"},
		{When: 1 * sim.Microsecond, Kind: KindExit, Detail: "early"},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lastTS := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < lastTS {
			t.Fatal("exported events not in timestamp order")
		}
		lastTS = e.TS
	}
}

func TestBufferWriteChrome(t *testing.T) {
	b := NewBuffer(16)
	for _, e := range sampleEvents() {
		b.Record(e)
	}
	var buf bytes.Buffer
	if err := b.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"vtick"`) {
		t.Fatalf("buffer export missing vtick category:\n%s", buf.String())
	}
}

// Out-of-order timestamps must not produce a negative summary window (the
// old code assumed monotonically non-decreasing When and could render
// negative rates).
func TestRecordOutOfOrderKeepsWindowNonNegative(t *testing.T) {
	b := NewBuffer(8)
	b.Record(Event{When: 10 * sim.Millisecond, Kind: KindExit, Detail: "hlt"})
	b.Record(Event{When: 2 * sim.Millisecond, Kind: KindExit, Detail: "hlt"})
	b.Record(Event{When: 6 * sim.Millisecond, Kind: KindExit, Detail: "hlt"})
	if b.first != 2*sim.Millisecond || b.last != 10*sim.Millisecond {
		t.Fatalf("window = [%v, %v], want [2ms, 10ms]", b.first, b.last)
	}
	s := b.Summary()
	if strings.Contains(s, "-") {
		t.Fatalf("summary contains a negative rate:\n%s", s)
	}
	if !strings.Contains(s, "8ms") {
		t.Fatalf("summary window not 8ms:\n%s", s)
	}
}

func TestEventStringWithDuration(t *testing.T) {
	e := Event{When: sim.Microsecond, Dur: 3 * sim.Microsecond, Kind: KindExit, VM: "vm0", Detail: "hlt"}
	if !strings.Contains(e.String(), "+3us") {
		t.Fatalf("duration missing from %q", e.String())
	}
}
