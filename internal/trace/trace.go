// Package trace records simulator events — VM exits, injections, virtual
// ticks — into a bounded ring buffer and renders perf(1)-style summaries.
// It substitutes for the paper's use of `perf record` to measure VM exits
// (§6.1).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"paratick/internal/sim"
)

// Kind classifies trace events.
type Kind int

const (
	// KindExit is a VM exit; Detail carries the exit reason.
	KindExit Kind = iota
	// KindInject is an interrupt injection; Detail carries the vector.
	KindInject
	// KindVirtualTick is a paratick vector-235 injection decision.
	KindVirtualTick
	// KindSched is a host scheduling action (dispatch, halt, wake).
	KindSched
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindExit:
		return "exit"
	case KindInject:
		return "inject"
	case KindVirtualTick:
		return "vtick"
	case KindSched:
		return "sched"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one trace record. Dur, when positive, is the event's cost span
// (e.g. the host-side handling time of a VM exit); zero-duration events are
// instants (injections, scheduling edges).
type Event struct {
	When   sim.Time
	Dur    sim.Time
	Kind   Kind
	PCPU   int
	VM     string
	VCPU   int
	Detail string
}

// String renders the event as one trace line.
func (e Event) String() string {
	if e.Dur > 0 {
		return fmt.Sprintf("%12v pcpu%-3d %s/vcpu%-3d %-7s %s (+%v)",
			e.When, e.PCPU, e.VM, e.VCPU, e.Kind, e.Detail, e.Dur)
	}
	return fmt.Sprintf("%12v pcpu%-3d %s/vcpu%-3d %-7s %s",
		e.When, e.PCPU, e.VM, e.VCPU, e.Kind, e.Detail)
}

// Buffer is a bounded ring of trace events plus running aggregates. A nil
// *Buffer is a valid no-op tracer, so call sites need no nil checks.
type Buffer struct {
	cap int
	//snap:skip the ring is saved normalized (chronological) via Events
	events []Event
	//snap:skip ring cursor, re-derived from the normalized event order on load
	next int
	//snap:skip ring cursor, re-derived from the normalized event order on load
	full   bool
	total  uint64
	counts map[string]uint64 // "kind/detail" → occurrences
	first  sim.Time
	last   sim.Time
}

// NewBuffer creates a ring holding up to capacity events (aggregates are
// unbounded).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{cap: capacity, counts: make(map[string]uint64)}
}

// Record appends an event; older events are overwritten once the ring is
// full. Timestamps are usually non-decreasing, but hosts with several event
// sources may record slightly out of order — first/last are tracked as
// min/max so Summary's window (and its rates) can never go negative.
func (b *Buffer) Record(e Event) {
	if b == nil {
		return
	}
	if b.total == 0 {
		b.first = e.When
		b.last = e.When
	} else {
		if e.When < b.first {
			b.first = e.When
		}
		if e.When > b.last {
			b.last = e.When
		}
	}
	b.total++
	b.counts[e.Kind.String()+"/"+e.Detail]++
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.events[b.next] = e
	b.next = (b.next + 1) % b.cap
	b.full = true
}

// Cap returns the ring capacity.
func (b *Buffer) Cap() int {
	if b == nil {
		return 0
	}
	return b.cap
}

// Total returns the number of events recorded (including overwritten ones).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	if !b.full {
		out := make([]Event, len(b.events))
		copy(out, b.events)
		return out
	}
	out := make([]Event, 0, b.cap)
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Merge combines per-lane buffers into one buffer of the given capacity,
// ordered canonically by (timestamp, lane index, per-lane record order).
// Each lane records into a private ring (so concurrent shards never share
// one), and the merge is a pure function of the lane buffers — identical
// for every shard count that produced the same lane schedules. Aggregates
// (total, counts, window) are summed across lanes, so they cover events
// the rings have already overwritten, exactly as a single shared buffer
// would have counted them.
func Merge(lanes []*Buffer, capacity int) *Buffer {
	out := NewBuffer(capacity)
	type tagged struct {
		ev   Event
		lane int
		pos  int
	}
	var all []tagged
	for l, b := range lanes {
		for i, e := range b.Events() {
			all = append(all, tagged{ev: e, lane: l, pos: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.When != all[j].ev.When {
			return all[i].ev.When < all[j].ev.When
		}
		if all[i].lane != all[j].lane {
			return all[i].lane < all[j].lane
		}
		return all[i].pos < all[j].pos
	})
	for _, t := range all {
		out.Record(t.ev)
	}
	// Record only saw the retained events; replace the aggregates with the
	// lane sums so overwritten events stay counted.
	out.total = 0
	for k := range out.counts {
		delete(out.counts, k)
	}
	for _, b := range lanes {
		if b == nil || b.total == 0 {
			continue
		}
		if out.total == 0 || b.first < out.first {
			out.first = b.first
		}
		if out.total == 0 || b.last > out.last {
			out.last = b.last
		}
		out.total += b.total
		for k, c := range b.counts {
			out.counts[k] += c
		}
	}
	return out
}

// Count returns the number of events with the given kind and detail.
func (b *Buffer) Count(kind Kind, detail string) uint64 {
	if b == nil {
		return 0
	}
	return b.counts[kind.String()+"/"+detail]
}

// Summary renders a perf-style aggregate: every kind/detail pair with its
// count and rate over the traced window, sorted by count.
func (b *Buffer) Summary() string {
	if b == nil || b.total == 0 {
		return "trace: no events\n"
	}
	type row struct {
		key   string
		count uint64
	}
	rows := make([]row, 0, len(b.counts))
	for k, c := range b.counts {
		rows = append(rows, row{k, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].key < rows[j].key
	})
	window := b.last - b.first
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d events over %v\n", b.total, window)
	for _, r := range rows {
		rate := ""
		if window > 0 {
			rate = fmt.Sprintf("%10.1f/s", float64(r.count)/window.Seconds())
		}
		fmt.Fprintf(&sb, "  %-32s %10d %s\n", r.key, r.count, rate)
	}
	return sb.String()
}

// Dump renders the retained events, newest last.
func (b *Buffer) Dump() string {
	evs := b.Events()
	if len(evs) == 0 {
		return "trace: empty\n"
	}
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
