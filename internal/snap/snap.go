// Package snap is the stable binary encoding layer under the simulator's
// checkpoint/restore machinery. Every stateful component (sim engine
// scalars, guest kernels, host vCPUs, devices, metrics) serializes itself
// through an Encoder and rebuilds through a Decoder; the format is
// versioned, fixed-width, little-endian, and deliberately free of anything
// whose byte representation could vary between runs or platforms (no maps,
// no pointers, no varints whose length depends on incidental magnitudes).
//
// Determinism contract: encoding the same logical state must always
// produce the same bytes. Callers therefore must never range over a map
// while writing into an Encoder (paratick-vet rule D003) — collect keys,
// sort, then encode.
//
// The package is a leaf: it imports only the standard library, so every
// layer of the simulator can depend on it without cycles.
package snap

import (
	"fmt"
	"math"
)

// Magic opens every snapshot produced by WriteHeader. Changing the format
// incompatibly must bump Version, never reuse it.
const Magic = "PTSNAP"

// Version is the current snapshot format version.
const Version = 1

// Encoder appends fixed-width little-endian primitives to a growing
// buffer. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer. The slice aliases the encoder's
// storage; callers that keep it past further writes must copy.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 writes a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 as its two's-complement uint64 image.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 writes a float64 by its IEEE-754 bit image. NaNs are canonicalized
// so logically-equal states cannot differ by NaN payload bits.
func (e *Encoder) F64(v float64) {
	bits := math.Float64bits(v)
	if v != v { // NaN: canonicalize the payload
		bits = 0x7ff8000000000000
	}
	e.U64(bits)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Section writes a named marker. Decoders verify the marker with
// Decoder.Section, which turns encode/decode skew into an immediate,
// labeled error instead of silently misparsed state.
func (e *Encoder) Section(name string) {
	e.U32(sectionMagic)
	e.String(name)
}

const sectionMagic = 0x5ec710f1

// Decoder reads primitives back in the order they were encoded. Errors
// are sticky: after the first failure every read returns a zero value and
// Err reports the original cause, so Save/Load pairs can be written
// straight-line with one error check at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snap: "+format+" at offset %d", append(args, d.off)...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated: need %d bytes, have %d", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if int(n) > d.Remaining() {
		d.fail("truncated string: length %d exceeds %d remaining", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Section verifies the next bytes are the named marker written by
// Encoder.Section.
func (d *Decoder) Section(name string) {
	if m := d.U32(); d.err == nil && m != sectionMagic {
		d.fail("expected section %q, found non-section data", name)
		return
	}
	if got := d.String(); d.err == nil && got != name {
		d.fail("expected section %q, found %q", name, got)
	}
}

// WriteHeader opens a snapshot stream: magic, format version, and a
// caller-chosen kind tag naming what the snapshot contains.
func WriteHeader(e *Encoder, kind string) {
	e.buf = append(e.buf, Magic...)
	e.U32(Version)
	e.String(kind)
}

// ReadHeader validates the magic, version, and kind tag written by
// WriteHeader.
func ReadHeader(d *Decoder, kind string) error {
	m := d.take(len(Magic))
	if d.err != nil {
		return d.err
	}
	if string(m) != Magic {
		return fmt.Errorf("snap: bad magic %q (not a snapshot)", m)
	}
	if v := d.U32(); d.err == nil && v != Version {
		return fmt.Errorf("snap: unsupported snapshot version %d (want %d)", v, Version)
	}
	if k := d.String(); d.err == nil && k != kind {
		return fmt.Errorf("snap: snapshot kind %q, want %q", k, kind)
	}
	return d.err
}

// Digest is a 64-bit FNV-1a hash used for state digests: cheap, stable,
// and dependency-free. It is a corruption/divergence detector, not a
// cryptographic commitment.
type Digest uint64

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// HashBytes returns the FNV-1a digest of b.
func HashBytes(b []byte) Digest {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return Digest(h)
}

// String renders the digest as fixed-width hex.
func (d Digest) String() string { return fmt.Sprintf("%016x", uint64(d)) }
