package snap

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var e Encoder
	WriteHeader(&e, "test")
	e.Section("scalars")
	e.U8(0xab)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.14159)
	e.String("hello, snapshot")
	e.String("")

	d := NewDecoder(e.Bytes())
	if err := ReadHeader(d, "test"); err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	d.Section("scalars")
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Errorf("Bool = true, want false")
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestStickyError(t *testing.T) {
	var e Encoder
	e.U32(7)
	d := NewDecoder(e.Bytes())
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	first := d.Err()
	_ = d.U64()
	_ = d.String()
	if d.Err() != first {
		t.Error("error was not sticky")
	}
	if got := d.U32(); got != 0 {
		t.Errorf("post-error read = %d, want 0", got)
	}
}

func TestSectionMismatch(t *testing.T) {
	var e Encoder
	e.Section("alpha")
	d := NewDecoder(e.Bytes())
	d.Section("beta")
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "beta") {
		t.Fatalf("section mismatch error = %v", d.Err())
	}
}

func TestHeaderRejectsWrongKind(t *testing.T) {
	var e Encoder
	WriteHeader(&e, "scenario")
	if err := ReadHeader(NewDecoder(e.Bytes()), "engine"); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	if err := ReadHeader(NewDecoder([]byte("not a snapshot at all")), "x"); err == nil {
		t.Fatal("expected magic error")
	}
	if err := ReadHeader(NewDecoder(nil), "x"); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestNaNCanonical(t *testing.T) {
	var e1, e2 Encoder
	e1.F64(math.NaN())
	e2.F64(math.Float64frombits(0x7ff8000000000001)) // NaN with a payload bit
	b1, b2 := e1.Bytes(), e2.Bytes()
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("NaN encodings differ: % x vs % x", b1, b2)
		}
	}
	if v := NewDecoder(b1).F64(); !math.IsNaN(v) {
		t.Errorf("decoded NaN = %v", v)
	}
}

func TestBadBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Fatal("expected invalid bool error")
	}
}

func TestHashBytesStable(t *testing.T) {
	// Pinned FNV-1a vectors: the digest feeds golden files, so its value
	// must never drift.
	if got := HashBytes(nil); got != 0xcbf29ce484222325 {
		t.Errorf("HashBytes(nil) = %s", got)
	}
	if got := HashBytes([]byte("a")); got != 0xaf63dc4c8601ec8c {
		t.Errorf("HashBytes(a) = %s", got)
	}
}
