package sim

import (
	"fmt"
	"math/bits"
)

// Handler is the callback type for scheduled events. It receives the engine
// so that handlers can schedule follow-up events without capturing it.
type Handler func(e *Engine)

// Node location discriminators. A node is always in exactly one container:
// a wheel bucket (loc >= 0, the ring slot), the overflow heap (locHeap),
// the active dispatch batch (locBatch), or detached (fired/canceled/free).
const (
	locDetached int32 = -1
	locHeap     int32 = -2
	locBatch    int32 = -3
)

// node is the pooled representation of a scheduled event. Nodes are recycled
// through the engine's free list; the generation counter invalidates stale
// Event handles across reuse. index is the node's position inside whichever
// container loc names: heap index, bucket slice index, or batch index.
type node struct {
	when  Time
	seq   uint64
	index int
	loc   int32
	gen   uint32 // bumped on release; a handle with an older gen is dead
	fn    Handler
	label string
}

// Event is a handle to a scheduled occurrence, created by Engine.At /
// Engine.After. The zero value is an invalid handle. Handles are
// generation-stamped: once the event fires or is canceled the handle goes
// dead, and Cancel/Pending on a dead handle are safe no-ops even after the
// engine has recycled the underlying storage for a new event.
type Event struct {
	n   *node
	gen uint32
}

// live reports whether the handle still refers to a queued event.
//
//paratick:noalloc
func (ev Event) live() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.loc != locDetached
}

// When returns the time the event is scheduled to fire, or 0 once the
// handle is dead (fired or canceled).
func (ev Event) When() Time {
	if ev.live() {
		return ev.n.when
	}
	return 0
}

// Label returns the diagnostic label assigned at scheduling time, or ""
// once the handle is dead.
func (ev Event) Label() string {
	if ev.live() {
		return ev.n.label
	}
	return ""
}

// Pending reports whether the event is still queued (not fired, not
// canceled).
func (ev Event) Pending() bool { return ev.live() }

// less orders events by (when, seq). The seq tie-break makes event ordering
// — and therefore entire simulations — deterministic.
//
//paratick:noalloc
func less(a, b *node) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// batchEnt is one batch slot: the (when, seq) sort key copied out of the
// node so the hot dispatch/insert paths stay in one contiguous array.
type batchEnt struct {
	when Time
	seq  uint64
	nd   *node
}

// entLess is the same (when, seq) total order as less, on inline keys.
//
//paratick:noalloc
func entLess(a, b batchEnt) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Near-horizon wheel geometry. The wheel covers wheelBuckets consecutive
// buckets of 1<<shift nanoseconds each, starting at the bucket containing
// the current time. With the default shift of 16 a bucket spans ~65.5µs and
// the wheel horizon is ~16.8ms — wide enough that tick periods, timeslices,
// and IPI latencies all land in the wheel, so the overflow heap only sees
// watchdog-scale deadlines.
const (
	wheelBuckets = 256
	wheelMask    = wheelBuckets - 1
	wheelWords   = wheelBuckets / 64

	// DefaultBucketShift is the bucket granularity used by NewEngine:
	// log2 of the bucket span in nanoseconds.
	DefaultBucketShift = 16

	// sortCutover is the batch size above which bucket drains switch from
	// insertion sort to in-place heapsort.
	sortCutover = 32
)

// Engine is the discrete-event simulation core: a clock plus an event queue.
// It is single-threaded by design; determinism is a core requirement for the
// reproduction experiments, so no goroutines or wall-clock time are involved.
// (Independent engines may run concurrently — the parallel experiment runner
// relies on each run owning a private Engine.)
//
// The queue is a two-tier hybrid. Events within the near horizon go into a
// bitmap-indexed timer wheel: 256 buckets of 2^shift ns, with per-word
// occupancy bitmaps so the next occupied bucket is a handful of word scans.
// Far-future events overflow into an inlined binary min-heap — no
// container/heap interface dispatch, no boxing — and cascade into the wheel
// as the window advances with time. Dispatch drains one bucket at a time
// into a sorted batch, so the common near-horizon event costs O(1) amortized
// instead of an O(log n) heap pop. Fired or canceled nodes return to a free
// list, so steady-state schedule→fire→reschedule cycles allocate nothing.
//
// The hybrid preserves the exact (when, seq) total dispatch order of the
// classic pure-heap engine; engine_ref_test.go proves the equivalence
// differentially.
type Engine struct {
	now   Time
	shift uint

	// Near-horizon wheel. The window covers absolute buckets
	// [wheelBase, wheelBase+wheelBuckets); wheelEnd is the window's end as
	// a time (saturated at Forever). wheelBase tracks now>>shift, so every
	// schedulable time below wheelEnd maps to a unique ring slot.
	// The queue population is never encoded: owners re-arm every pending
	// event through ScheduleRestored on load, which rebuilds the wheel,
	// batch, and heap below from scratch.
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	wheelBase int64
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	wheelEnd Time
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	wheelCount int
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	occ [wheelWords]uint64
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	buckets [wheelBuckets][]*node

	// Active dispatch batch: one drained bucket, sorted by (when, seq).
	// Entries carry the sort key inline so comparisons and the dispatch
	// loop's same-instant scan never dereference nodes; canceled entries
	// keep their key but drop the node (nd == nil). batchBkt is the
	// absolute bucket the batch was drained from (-1 when no batch is
	// active); same-bucket schedules during a drain bubble-insert into the
	// live batch.
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	batch []batchEnt
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	batchPos int
	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	batchBkt int64

	//snap:skip derived queue state, rebuilt by ScheduleRestored on load
	heap []*node // overflow min-heap; invariant: heap min >= wheelEnd
	//snap:skip node pool, capacity only — never simulation state
	free []*node

	seq   uint64
	fired uint64
	//snap:skip derived: recounted as owners re-arm events on load
	count   int
	rand    *Rand
	stopReq bool // Stop() pending, not yet observed by a run
	stopped bool // most recent run was halted by Stop
	//snap:skip observer hook, reattached by the harness after restore
	obs Observer
}

// Observer receives one callback per dispatched event, immediately before
// its handler runs: the event's label and fire time. It is the engine's
// profiling hook — trace tools aggregate label counts or export timelines
// from it. The callback path allocates nothing, and a nil observer costs one
// predicted branch on the dispatch path, preserving the engine's 0 allocs/op
// steady state.
type Observer func(label string, when Time)

// initialQueueCap presizes the overflow heap (and first free-list slab) so
// typical simulations never grow either on the hot path.
const initialQueueCap = 256

// NewEngine returns an engine at time zero with an RNG seeded by seed and
// the default near-horizon bucket granularity.
func NewEngine(seed uint64) *Engine {
	return NewEngineShift(seed, DefaultBucketShift)
}

// NewEngineShift returns an engine whose wheel buckets span 1<<shift
// nanoseconds (horizon = 256 buckets). Smaller shifts trade a shorter
// horizon for finer batching; the default suits tick-rate workloads.
// shift must be in [1, 40].
func NewEngineShift(seed uint64, shift uint) *Engine {
	if shift < 1 || shift > 40 {
		panic(fmt.Sprintf("sim: bucket shift %d outside [1, 40]", shift))
	}
	return &Engine{
		shift:    shift,
		wheelEnd: wheelEndFor(0, shift),
		batchBkt: -1,
		heap:     make([]*node, 0, initialQueueCap),
		rand:     NewRand(seed),
	}
}

// wheelEndFor returns the time at which the window starting at absolute
// bucket base stops covering, saturating at Forever on overflow. When
// saturated the remaining representable buckets number fewer than
// wheelBuckets, so slot mapping stays injective.
//
//paratick:noalloc
func wheelEndFor(base int64, shift uint) Time {
	end := (base + wheelBuckets) << shift
	if end>>shift != base+wheelBuckets || end < 0 {
		return Forever
	}
	return Time(end)
}

// Reset returns the engine to time zero with a fresh RNG stream, releasing
// every pending event while keeping the node pool, bucket, batch, and heap
// capacities. It lets the experiment layer's per-worker arenas reuse one
// engine across repeated runs instead of reallocating the whole structure.
func (e *Engine) Reset(seed uint64) {
	if e.wheelCount > 0 {
		for s := range e.buckets {
			b := e.buckets[s]
			for i, nd := range b {
				b[i] = nil
				e.release(nd)
			}
			e.buckets[s] = b[:0]
		}
		for w := range e.occ {
			e.occ[w] = 0
		}
		e.wheelCount = 0
	}
	for i := e.batchPos; i < len(e.batch); i++ {
		if nd := e.batch[i].nd; nd != nil {
			e.release(nd)
		}
		e.batch[i] = batchEnt{}
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
	e.batchBkt = -1
	for i, nd := range e.heap {
		e.heap[i] = nil
		e.release(nd)
	}
	e.heap = e.heap[:0]

	e.now = 0
	e.wheelBase = 0
	e.wheelEnd = wheelEndFor(0, e.shift)
	e.seq = 0
	e.fired = 0
	e.count = 0
	e.stopReq = false
	e.stopped = false
	e.obs = nil
	e.rand.Reseed(seed)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rand }

// SetObserver installs (or, with nil, removes) the dispatch observer. The
// observer must not schedule or cancel events; it is a passive measurement
// tap.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.count }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// eventSlab is how many nodes are allocated at once when the free list runs
// dry; one allocation amortizes over a slab's worth of schedules.
const eventSlab = 64

// acquire returns a node from the free list, refilling it a slab at a time.
//
//paratick:noalloc
func (e *Engine) acquire() *node {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return nd
	}
	//lint:ignore A001 slab refill: one allocation amortized over eventSlab schedules, absent in steady state
	slab := make([]node, eventSlab)
	for i := 1; i < eventSlab; i++ {
		slab[i].loc = locDetached
		e.free = append(e.free, &slab[i])
	}
	slab[0].loc = locDetached
	return &slab[0]
}

// release recycles a fired or canceled node. Clearing fn and label drops
// closure and string references so the pool never retains guest state.
//
//paratick:noalloc
func (e *Engine) release(nd *node) {
	nd.gen++
	nd.loc = locDetached
	nd.index = -1
	nd.fn = nil
	nd.label = ""
	e.free = append(e.free, nd)
}

// --- Overflow heap (far-future tier) -----------------------------------

// siftUp moves heap[i] toward the root until the heap order holds.
//
//paratick:noalloc
func (e *Engine) siftUp(i int) {
	q := e.heap
	nd := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(nd, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = nd
	nd.index = i
}

// siftDown moves heap[i] toward the leaves until the heap order holds.
//
//paratick:noalloc
func (e *Engine) siftDown(i int) {
	q := e.heap
	n := len(q)
	nd := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		c := q[child]
		if r := child + 1; r < n && less(q[r], c) {
			child, c = r, q[r]
		}
		if !less(c, nd) {
			break
		}
		q[i] = c
		c.index = i
		i = child
	}
	q[i] = nd
	nd.index = i
}

// push appends nd to the overflow heap and restores the heap order.
//
//paratick:noalloc
func (e *Engine) push(nd *node) {
	nd.loc = locHeap
	nd.index = len(e.heap)
	e.heap = append(e.heap, nd)
	e.siftUp(nd.index)
}

// popMin removes and returns the earliest heap node.
//
//paratick:noalloc
func (e *Engine) popMin() *node {
	q := e.heap
	root := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	e.heap = q[:last]
	if last > 0 {
		e.siftDown(0)
	}
	root.index = -1
	root.loc = locDetached
	return root
}

// remove deletes nd from an arbitrary heap position.
//
//paratick:noalloc
func (e *Engine) remove(nd *node) {
	q := e.heap
	i := nd.index
	last := len(q) - 1
	if i != last {
		moved := q[last]
		q[i] = moved
		moved.index = i
		q[last] = nil
		e.heap = q[:last]
		e.siftDown(i)
		if moved.index == i {
			e.siftUp(i)
		}
	} else {
		q[last] = nil
		e.heap = q[:last]
	}
	nd.index = -1
	nd.loc = locDetached
}

// --- Near-horizon wheel (fast tier) ------------------------------------

// wheelAdd files nd into its ring bucket and marks the occupancy bit.
// Callers guarantee nd.when < e.wheelEnd.
//
//paratick:noalloc
func (e *Engine) wheelAdd(nd *node) {
	s := int(int64(nd.when>>e.shift) & wheelMask)
	nd.loc = int32(s)
	nd.index = len(e.buckets[s])
	e.buckets[s] = append(e.buckets[s], nd)
	e.occ[s>>6] |= 1 << uint(s&63)
	e.wheelCount++
}

// bucketRemove unfiles nd from its wheel bucket by swap-remove, clearing
// the occupancy bit when the bucket empties.
//
//paratick:noalloc
func (e *Engine) bucketRemove(nd *node) {
	s := int(nd.loc)
	b := e.buckets[s]
	last := len(b) - 1
	if nd.index != last {
		moved := b[last]
		b[nd.index] = moved
		moved.index = nd.index
	}
	b[last] = nil
	e.buckets[s] = b[:last]
	if last == 0 {
		e.occ[s>>6] &^= 1 << uint(s&63)
	}
	nd.index = -1
	nd.loc = locDetached
	e.wheelCount--
}

// nextOccupied scans the occupancy bitmap for the first occupied ring slot
// at or after s0, wrapping around, and returns -1 when the wheel is empty.
// Because every wheel event lives in [wheelBase, wheelBase+wheelBuckets)
// and s0 is wheelBase's slot, ring order from s0 is absolute time order.
//
//paratick:noalloc
func (e *Engine) nextOccupied(s0 int) int {
	w0 := s0 >> 6
	off := uint(s0 & 63)
	if m := e.occ[w0] &^ (1<<off - 1); m != 0 {
		return w0<<6 + bits.TrailingZeros64(m)
	}
	for i := 1; i <= wheelWords; i++ {
		w := (w0 + i) & (wheelWords - 1)
		m := e.occ[w]
		if w == w0 {
			m &= 1<<off - 1
		}
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// advanceWindow slides the wheel window forward to the bucket containing
// now and cascades overflow-heap events that fell inside the new horizon
// into their wheel buckets. Called on every dispatch; the common case —
// same bucket as the previous event — is a single compare.
//
//paratick:noalloc
func (e *Engine) advanceWindow() {
	ab := int64(e.now >> e.shift)
	if ab <= e.wheelBase {
		return
	}
	e.wheelBase = ab
	e.wheelEnd = wheelEndFor(ab, e.shift)
	for len(e.heap) > 0 && e.heap[0].when < e.wheelEnd {
		e.wheelAdd(e.popMin())
	}
}

// --- Batch (drained-bucket) dispatch -----------------------------------

// sortEnts orders a by (when, seq): insertion sort for the typical small
// bucket, in-place heapsort (via siftDownMax) above sortCutover so dense
// buckets stay O(n log n). Stability is irrelevant — seq is unique.
//
//paratick:noalloc
func sortEnts(a []batchEnt) {
	n := len(a)
	if n <= sortCutover {
		for i := 1; i < n; i++ {
			ent := a[i]
			j := i
			for j > 0 && entLess(ent, a[j-1]) {
				a[j] = a[j-1]
				j--
			}
			a[j] = ent
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMax(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownMax(a, 0, i)
	}
}

// siftDownMax restores the max-heap property for a[:n] rooted at i.
//
//paratick:noalloc
func siftDownMax(a []batchEnt, i, n int) {
	ent := a[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		c := a[child]
		if r := child + 1; r < n && entLess(c, a[r]) {
			child, c = r, a[r]
		}
		if !entLess(ent, c) {
			break
		}
		a[i] = c
		i = child
	}
	a[i] = ent
}

// batchInsert bubble-inserts nd into the live batch at its (when, seq)
// position, used when a handler schedules into the bucket currently being
// drained. Canceled (nil) entries shift along with live ones.
//
//paratick:noalloc
func (e *Engine) batchInsert(nd *node) {
	// A fire→reschedule chain inside one bucket pops from the front while
	// appending at the back; without compaction the batch array would grow
	// without bound. Sliding the live region down once the dispatched
	// prefix dominates keeps the array at ~2× the live count, amortized
	// O(1) per insert.
	if e.batchPos >= 64 && e.batchPos*2 >= len(e.batch) {
		n := copy(e.batch, e.batch[e.batchPos:])
		for i := 0; i < n; i++ {
			if m := e.batch[i].nd; m != nil {
				m.index = i
			}
		}
		for i := n; i < len(e.batch); i++ {
			e.batch[i] = batchEnt{}
		}
		e.batch = e.batch[:n]
		e.batchPos = 0
	}
	nd.loc = locBatch
	ent := batchEnt{when: nd.when, seq: nd.seq, nd: nd}
	e.batch = append(e.batch, ent)
	i := len(e.batch) - 1
	for i > e.batchPos {
		p := e.batch[i-1]
		if !entLess(ent, p) {
			break
		}
		e.batch[i] = p
		if p.nd != nil {
			p.nd.index = i
		}
		i--
	}
	e.batch[i] = ent
	nd.index = i
}

// spillBatch returns the undispatched remainder of the batch to the wheel
// or heap. It runs only on the rare out-of-order schedule: a RunUntil peek
// drained a future bucket ahead of now, and the caller then scheduled an
// event into an earlier bucket. Nodes keep their seq, so re-draining later
// reproduces the exact order.
//
//paratick:noalloc
func (e *Engine) spillBatch() {
	for i := e.batchPos; i < len(e.batch); i++ {
		nd := e.batch[i].nd
		e.batch[i] = batchEnt{}
		if nd == nil {
			continue
		}
		if nd.when < e.wheelEnd {
			e.wheelAdd(nd)
		} else {
			e.push(nd)
		}
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
	e.batchBkt = -1
}

// refillBatch drains the next occupied bucket into the (empty) batch.
// Callers guarantee the engine holds at least one pending event outside
// the batch.
//
//paratick:noalloc
func (e *Engine) refillBatch() {
	if e.wheelCount == 0 {
		// Idle gap beyond the horizon: pull the heap's earliest bucket
		// straight into the batch. Consecutive popMin calls yield
		// (when, seq) order, so the batch arrives sorted.
		ab := int64(e.heap[0].when >> e.shift)
		for len(e.heap) > 0 && int64(e.heap[0].when>>e.shift) == ab {
			nd := e.popMin()
			nd.loc = locBatch
			nd.index = len(e.batch)
			e.batch = append(e.batch, batchEnt{when: nd.when, seq: nd.seq, nd: nd})
		}
		e.batchBkt = ab
		return
	}
	s0 := int(e.wheelBase & wheelMask)
	s := e.nextOccupied(s0)
	if s < 0 {
		panic("sim: wheel count positive but occupancy empty")
	}
	b := e.buckets[s]
	for i, nd := range b {
		e.batch = append(e.batch, batchEnt{when: nd.when, seq: nd.seq, nd: nd})
		b[i] = nil
	}
	e.buckets[s] = b[:0]
	e.occ[s>>6] &^= 1 << uint(s&63)
	e.wheelCount -= len(e.batch)
	sortEnts(e.batch)
	for i := range e.batch {
		nd := e.batch[i].nd
		nd.loc = locBatch
		nd.index = i
	}
	e.batchBkt = e.wheelBase + int64((s-s0)&wheelMask)
}

// ensureBatch makes the live batch non-empty, refilling it from the wheel
// or overflow heap as needed. It returns false when no events remain.
//
//paratick:noalloc
func (e *Engine) ensureBatch() bool {
	for {
		for e.batchPos < len(e.batch) && e.batch[e.batchPos].nd == nil {
			e.batchPos++
		}
		if e.batchPos < len(e.batch) {
			return true
		}
		e.batch = e.batch[:0]
		e.batchPos = 0
		e.batchBkt = -1
		if e.wheelCount == 0 && len(e.heap) == 0 {
			return false
		}
		e.refillBatch()
	}
}

// peekWhen returns the earliest pending event time.
//
//paratick:noalloc
func (e *Engine) peekWhen() (Time, bool) {
	if !e.ensureBatch() {
		return 0, false
	}
	return e.batch[e.batchPos].when, true
}

// dispatch fires nd: advances the clock and wheel window, notifies the
// observer, recycles the node, and runs the handler.
//
//paratick:noalloc
func (e *Engine) dispatch(nd *node) {
	e.now = nd.when
	e.advanceWindow()
	e.fired++
	e.count--
	fn := nd.fn
	if e.obs != nil {
		// Label is read before release clears it for the pool.
		e.obs(nd.label, nd.when)
	}
	e.release(nd)
	fn(e)
}

// --- Public scheduling API ---------------------------------------------

// At schedules fn to run at absolute time when. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every metric downstream.
//
//paratick:noalloc
func (e *Engine) At(when Time, label string, fn Handler) Event {
	if fn == nil {
		panic("sim: nil event handler")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, when, e.now))
	}
	nd := e.acquire()
	nd.when = when
	nd.seq = e.seq
	nd.fn = fn
	nd.label = label
	e.seq++
	e.count++
	ab := int64(when >> e.shift)
	if e.batchBkt >= 0 && ab < e.batchBkt {
		// The batch was drained ahead of now (RunUntil peeked past an idle
		// gap) and this event lands before it: put the batch back first.
		e.spillBatch()
	}
	switch {
	case ab == e.batchBkt:
		e.batchInsert(nd)
	case when < e.wheelEnd:
		e.wheelAdd(nd)
	default:
		e.push(nd)
	}
	return Event{n: nd, gen: nd.gen}
}

// After schedules fn to run delay nanoseconds from now.
//
//paratick:noalloc
func (e *Engine) After(delay Time, label string, fn Handler) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", delay, label))
	}
	return e.At(e.now+delay, label, fn)
}

// Cancel removes a pending event from the queue. Canceling a zero, fired,
// or already-canceled handle is a harmless no-op and returns false.
//
//paratick:noalloc
func (e *Engine) Cancel(ev Event) bool {
	if !ev.live() {
		return false
	}
	nd := ev.n
	switch {
	case nd.loc == locHeap:
		e.remove(nd)
	case nd.loc == locBatch:
		// The entry keeps its (when, seq) key so the batch stays key-sorted
		// for bubble-inserts; only the node is dropped.
		e.batch[nd.index].nd = nil
		nd.index = -1
		nd.loc = locDetached
	default:
		e.bucketRemove(nd)
	}
	e.count--
	e.release(nd)
	return true
}

// Step dispatches the single earliest event. It returns false when the queue
// is empty.
//
//paratick:noalloc
func (e *Engine) Step() bool {
	if !e.ensureBatch() {
		return false
	}
	pos := e.batchPos
	nd := e.batch[pos].nd
	e.batch[pos].nd = nil
	e.batchPos = pos + 1
	e.dispatch(nd)
	return true
}

// StepBatch dispatches every event sharing the earliest pending timestamp
// — one simulated instant — in (when, seq) order, including events that
// handlers schedule for that same instant mid-batch. It returns the number
// of events dispatched (0 when the queue is empty). A Stop issued by a
// handler halts the batch after that handler returns, leaving the rest
// queued; like Step, StepBatch itself does not consume the stop request.
//
//paratick:noalloc
func (e *Engine) StepBatch() int {
	if !e.ensureBatch() {
		return 0
	}
	t0 := e.batch[e.batchPos].when
	n := 0
	for e.ensureBatch() {
		pos := e.batchPos
		if e.batch[pos].when != t0 {
			break
		}
		nd := e.batch[pos].nd
		e.batch[pos].nd = nil
		e.batchPos = pos + 1
		e.dispatch(nd)
		n++
		if e.stopReq {
			break
		}
	}
	return n
}

// consumeStop observes a pending stop request, converting it into the
// stopped state. Each request halts exactly one run (the current one, or —
// when issued between runs — the next one before it dispatches anything).
func (e *Engine) consumeStop() bool {
	if !e.stopReq {
		return false
	}
	e.stopReq = false
	e.stopped = true
	return true
}

// Run dispatches events until the queue empties or the engine is stopped.
// A Stop issued before Run starts halts it before any event fires; a
// subsequent Run resumes.
func (e *Engine) Run() {
	if e.consumeStop() {
		return
	}
	e.stopped = false
	for e.StepBatch() > 0 {
		if e.consumeStop() {
			return
		}
	}
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to exactly the deadline (if it is later than the last event). Like Run, it
// honors a Stop issued before it starts. Dispatch goes through StepBatch, so
// every event of a simulated instant drains in one pass.
func (e *Engine) RunUntil(deadline Time) {
	if !e.consumeStop() {
		e.stopped = false
		for {
			when, ok := e.peekWhen()
			if !ok || when > deadline {
				break
			}
			e.StepBatch()
			if e.consumeStop() {
				break
			}
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop requests a halt: the current run stops after the in-flight handler
// returns, and a Stop issued while no run is active stops the next
// Run/RunUntil before it dispatches anything.
func (e *Engine) Stop() { e.stopReq = true }

// Stopped reports whether the engine is halted by Stop: either the most
// recent run was interrupted, or a stop request is still pending.
func (e *Engine) Stopped() bool { return e.stopped || e.stopReq }
