package sim

import "fmt"

// Handler is the callback type for scheduled events. It receives the engine
// so that handlers can schedule follow-up events without capturing it.
type Handler func(e *Engine)

// node is the pooled, heap-resident representation of a scheduled event.
// Nodes are recycled through the engine's free list; the generation counter
// invalidates stale Event handles across reuse.
type node struct {
	when  Time
	seq   uint64
	index int    // heap index, -1 once fired/canceled
	gen   uint32 // bumped on release; a handle with an older gen is dead
	fn    Handler
	label string
}

// Event is a handle to a scheduled occurrence, created by Engine.At /
// Engine.After. The zero value is an invalid handle. Handles are
// generation-stamped: once the event fires or is canceled the handle goes
// dead, and Cancel/Pending on a dead handle are safe no-ops even after the
// engine has recycled the underlying storage for a new event.
type Event struct {
	n   *node
	gen uint32
}

// live reports whether the handle still refers to a queued event.
//
//paratick:noalloc
func (ev Event) live() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.index >= 0
}

// When returns the time the event is scheduled to fire, or 0 once the
// handle is dead (fired or canceled).
func (ev Event) When() Time {
	if ev.live() {
		return ev.n.when
	}
	return 0
}

// Label returns the diagnostic label assigned at scheduling time, or ""
// once the handle is dead.
func (ev Event) Label() string {
	if ev.live() {
		return ev.n.label
	}
	return ""
}

// Pending reports whether the event is still queued (not fired, not
// canceled).
func (ev Event) Pending() bool { return ev.live() }

// less orders the event heap by (when, seq). The seq tie-break makes event
// ordering — and therefore entire simulations — deterministic.
//
//paratick:noalloc
func less(a, b *node) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Engine is the discrete-event simulation core: a clock plus an event queue.
// It is single-threaded by design; determinism is a core requirement for the
// reproduction experiments, so no goroutines or wall-clock time are involved.
// (Independent engines may run concurrently — the parallel experiment runner
// relies on each run owning a private Engine.)
//
// The queue is an inlined binary min-heap specialized to *node — no
// container/heap interface dispatch, no boxing — and fired or canceled nodes
// return to a free list, so steady-state schedule→fire→reschedule cycles
// allocate nothing.
type Engine struct {
	now     Time
	queue   []*node
	free    []*node
	seq     uint64
	fired   uint64
	rand    *Rand
	stopReq bool // Stop() pending, not yet observed by a run
	stopped bool // most recent run was halted by Stop
	obs     Observer
}

// Observer receives one callback per dispatched event, immediately before
// its handler runs: the event's label and fire time. It is the engine's
// profiling hook — trace tools aggregate label counts or export timelines
// from it. The callback path allocates nothing, and a nil observer costs one
// predicted branch on the dispatch path, preserving the engine's 0 allocs/op
// steady state.
type Observer func(label string, when Time)

// initialQueueCap presizes the heap (and first free-list slab) so typical
// simulations never grow either on the hot path.
const initialQueueCap = 256

// NewEngine returns an engine at time zero with an RNG seeded by seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		queue: make([]*node, 0, initialQueueCap),
		rand:  NewRand(seed),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rand }

// SetObserver installs (or, with nil, removes) the dispatch observer. The
// observer must not schedule or cancel events; it is a passive measurement
// tap.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// eventSlab is how many nodes are allocated at once when the free list runs
// dry; one allocation amortizes over a slab's worth of schedules.
const eventSlab = 64

// acquire returns a node from the free list, refilling it a slab at a time.
//
//paratick:noalloc
func (e *Engine) acquire() *node {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return nd
	}
	//lint:ignore A001 slab refill: one allocation amortized over eventSlab schedules, absent in steady state
	slab := make([]node, eventSlab)
	for i := 1; i < eventSlab; i++ {
		e.free = append(e.free, &slab[i])
	}
	return &slab[0]
}

// release recycles a fired or canceled node. Clearing fn and label drops
// closure and string references so the pool never retains guest state.
//
//paratick:noalloc
func (e *Engine) release(nd *node) {
	nd.gen++
	nd.fn = nil
	nd.label = ""
	e.free = append(e.free, nd)
}

// siftUp moves queue[i] toward the root until the heap order holds.
//
//paratick:noalloc
func (e *Engine) siftUp(i int) {
	q := e.queue
	nd := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(nd, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = nd
	nd.index = i
}

// siftDown moves queue[i] toward the leaves until the heap order holds.
//
//paratick:noalloc
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	nd := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		c := q[child]
		if r := child + 1; r < n && less(q[r], c) {
			child, c = r, q[r]
		}
		if !less(c, nd) {
			break
		}
		q[i] = c
		c.index = i
		i = child
	}
	q[i] = nd
	nd.index = i
}

// push appends nd and restores the heap order.
//
//paratick:noalloc
func (e *Engine) push(nd *node) {
	nd.index = len(e.queue)
	e.queue = append(e.queue, nd)
	e.siftUp(nd.index)
}

// popMin removes and returns the earliest node.
//
//paratick:noalloc
func (e *Engine) popMin() *node {
	q := e.queue
	root := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	e.queue = q[:last]
	if last > 0 {
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// remove deletes nd from an arbitrary heap position.
//
//paratick:noalloc
func (e *Engine) remove(nd *node) {
	q := e.queue
	i := nd.index
	last := len(q) - 1
	if i != last {
		moved := q[last]
		q[i] = moved
		moved.index = i
		q[last] = nil
		e.queue = q[:last]
		e.siftDown(i)
		if moved.index == i {
			e.siftUp(i)
		}
	} else {
		q[last] = nil
		e.queue = q[:last]
	}
	nd.index = -1
}

// At schedules fn to run at absolute time when. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every metric downstream.
//
//paratick:noalloc
func (e *Engine) At(when Time, label string, fn Handler) Event {
	if fn == nil {
		panic("sim: nil event handler")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, when, e.now))
	}
	nd := e.acquire()
	nd.when = when
	nd.seq = e.seq
	nd.fn = fn
	nd.label = label
	e.seq++
	e.push(nd)
	return Event{n: nd, gen: nd.gen}
}

// After schedules fn to run delay nanoseconds from now.
//
//paratick:noalloc
func (e *Engine) After(delay Time, label string, fn Handler) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", delay, label))
	}
	return e.At(e.now+delay, label, fn)
}

// Cancel removes a pending event from the queue. Canceling a zero, fired,
// or already-canceled handle is a harmless no-op and returns false.
//
//paratick:noalloc
func (e *Engine) Cancel(ev Event) bool {
	if !ev.live() {
		return false
	}
	e.remove(ev.n)
	e.release(ev.n)
	return true
}

// Step dispatches the single earliest event. It returns false when the queue
// is empty.
//
//paratick:noalloc
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	nd := e.popMin()
	e.now = nd.when
	e.fired++
	fn := nd.fn
	if e.obs != nil {
		// Label is read before release clears it for the pool.
		e.obs(nd.label, nd.when)
	}
	e.release(nd)
	fn(e)
	return true
}

// consumeStop observes a pending stop request, converting it into the
// stopped state. Each request halts exactly one run (the current one, or —
// when issued between runs — the next one before it dispatches anything).
func (e *Engine) consumeStop() bool {
	if !e.stopReq {
		return false
	}
	e.stopReq = false
	e.stopped = true
	return true
}

// Run dispatches events until the queue empties or the engine is stopped.
// A Stop issued before Run starts halts it before any event fires; a
// subsequent Run resumes.
func (e *Engine) Run() {
	if e.consumeStop() {
		return
	}
	e.stopped = false
	for e.Step() {
		if e.consumeStop() {
			return
		}
	}
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to exactly the deadline (if it is later than the last event). Like Run, it
// honors a Stop issued before it starts.
func (e *Engine) RunUntil(deadline Time) {
	if !e.consumeStop() {
		e.stopped = false
		for len(e.queue) > 0 && e.queue[0].when <= deadline {
			e.Step()
			if e.consumeStop() {
				break
			}
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop requests a halt: the current run stops after the in-flight handler
// returns, and a Stop issued while no run is active stops the next
// Run/RunUntil before it dispatches anything.
func (e *Engine) Stop() { e.stopReq = true }

// Stopped reports whether the engine is halted by Stop: either the most
// recent run was interrupted, or a stop request is still pending.
func (e *Engine) Stopped() bool { return e.stopped || e.stopReq }
