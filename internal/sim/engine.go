package sim

import (
	"container/heap"
	"fmt"
)

// Handler is the callback type for scheduled events. It receives the engine
// so that handlers can schedule follow-up events without capturing it.
type Handler func(e *Engine)

// Event is a scheduled occurrence in the simulation. Events are created with
// Engine.At / Engine.After and may be canceled until they fire. The zero
// value is not usable.
type Event struct {
	when    Time
	seq     uint64
	index   int // heap index, -1 once fired/canceled
	fn      Handler
	label   string
	expired bool
}

// When returns the time the event is (or was) scheduled to fire.
func (ev *Event) When() Time { return ev.when }

// Label returns the diagnostic label assigned at scheduling time.
func (ev *Event) Label() string { return ev.label }

// Pending reports whether the event is still queued (not fired, not canceled).
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 }

// eventQueue implements heap.Interface ordered by (when, seq). The seq
// tie-break makes event ordering — and therefore entire simulations —
// deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation core: a clock plus an event queue.
// It is single-threaded by design; determinism is a core requirement for the
// reproduction experiments, so no goroutines or wall-clock time are involved.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	rand    *Rand
	stopped bool
}

// NewEngine returns an engine at time zero with an RNG seeded by seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rand: NewRand(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rand }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time when. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every metric downstream.
func (e *Engine) At(when Time, label string, fn Handler) *Event {
	if fn == nil {
		panic("sim: nil event handler")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, label string, fn Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", delay, label))
	}
	return e.At(e.now+delay, label, fn)
}

// Cancel removes a pending event from the queue. Canceling a nil, fired, or
// already-canceled event is a harmless no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.expired = true
	return true
}

// Step dispatches the single earliest event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.when
	e.fired++
	ev.expired = true
	ev.fn(e)
	return true
}

// Run dispatches events until the queue empties or the engine is stopped.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to exactly the deadline (if it is later than the last event).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop halts Run/RunUntil after the current event handler returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called during the current run.
func (e *Engine) Stopped() bool { return e.stopped }
