package sim

import "testing"

// FuzzEngine drives the event queue with a byte-coded script of schedules,
// cancels, and steps, checking that dispatch times never go backwards and
// that canceled events never fire.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x02, 0x20, 0xFF})
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x03, 0x03, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, script []byte) {
		e := NewEngine(1)
		type rec struct {
			ev       Event
			canceled bool
			fired    *bool
		}
		var recs []*rec
		lastDispatch := Time(-1)
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%3, Time(script[i+1])
			switch op {
			case 0: // schedule
				fired := false
				r := &rec{fired: &fired}
				r.ev = e.After(arg, "f", func(en *Engine) {
					if en.Now() < lastDispatch {
						t.Fatalf("time went backwards: %v after %v", en.Now(), lastDispatch)
					}
					lastDispatch = en.Now()
					fired = true
				})
				recs = append(recs, r)
			case 1: // cancel
				if len(recs) == 0 {
					continue
				}
				r := recs[int(arg)%len(recs)]
				if e.Cancel(r.ev) {
					r.canceled = true
				}
			case 2: // step a few events
				for n := Time(0); n < arg%8; n++ {
					e.Step()
				}
			}
		}
		e.Run()
		for i, r := range recs {
			if r.canceled && *r.fired {
				t.Fatalf("canceled event %d fired", i)
			}
			if !r.canceled && !*r.fired {
				t.Fatalf("live event %d never fired", i)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("queue retains %d events after Run", e.Pending())
		}
	})
}
