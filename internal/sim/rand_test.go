package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandZeroSeedWorks(t *testing.T) {
	r := NewRand(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero-seeded generator looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	r := NewRand(7)
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestInt63nPanics(t *testing.T) {
	r := NewRand(7)
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	r.Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, expected ~0.5", mean)
	}
}

func TestBetween(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Between(100, 200)
		if v < 100 || v >= 200 {
			t.Fatalf("Between(100,200) = %v", v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Between(5,5) did not panic")
			}
		}()
		r.Between(5, 5)
	}()
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := NewRand(13)
	const mean = 100 * Microsecond
	var sum Time
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 1 {
			t.Fatalf("Exp returned %v < 1ns", v)
		}
		sum += v
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("Exp mean = %v, want ~%v", Time(got), mean)
	}
	if r.Exp(0) != 1 || r.Exp(-5) != 1 {
		t.Fatal("Exp of non-positive mean should return 1ns")
	}
}

func TestJitter(t *testing.T) {
	r := NewRand(17)
	const d = 1000 * Nanosecond
	for i := 0; i < 10000; i++ {
		v := r.Jitter(d, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("Jitter(1000, .25) = %v", v)
		}
	}
	if r.Jitter(0, 0.5) != 1 {
		t.Fatal("Jitter(0) should clamp to 1ns")
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("Jitter with f=0 should return d")
	}
}

func TestBool(t *testing.T) {
	r := NewRand(19)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestForkIndependence(t *testing.T) {
	base := NewRand(23)
	a := base.Fork(1)
	b := base.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams overlap: %d/100", same)
	}
}

// Property: Duration always lands inside [0, d).
func TestDurationRangeProperty(t *testing.T) {
	r := NewRand(29)
	f := func(d uint32) bool {
		dd := Time(d%1000000) + 1
		v := r.Duration(dd)
		return v >= 0 && v < dd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: uniformity sanity — over many draws of Intn(k), every residue
// class appears.
func TestIntnCoverageProperty(t *testing.T) {
	r := NewRand(31)
	for _, k := range []int{2, 3, 7, 16} {
		seen := make([]bool, k)
		for i := 0; i < k*200; i++ {
			seen[r.Intn(k)] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", k, v)
			}
		}
	}
}
