package sim

import (
	"fmt"
	"testing"

	"paratick/internal/snap"
)

// exercise drives an engine through a representative mix of activity:
// near-horizon and far-future schedules, cancels, reschedule chains, RNG
// draws, and a partial run that leaves events pending.
func exercise(e *Engine) {
	var chain Handler
	hops := 0
	chain = func(e *Engine) {
		if hops++; hops < 5 {
			e.After(Time(hops)*Microsecond, "chain", chain)
		}
	}
	e.After(10*Microsecond, "chain", chain)
	for i := 0; i < 20; i++ {
		d := Time(e.Rand().Intn(1000)) * Microsecond
		ev := e.After(d, "scatter", func(e *Engine) {})
		if i%3 == 0 {
			e.Cancel(ev)
		}
	}
	e.After(40*Millisecond, "far", func(e *Engine) {}) // overflow heap
	e.After(900*Millisecond, "farther", func(e *Engine) {})
	e.SetObserver(func(label string, when Time) {})
	e.RunUntil(500 * Microsecond)
}

// TestResetDigestMatchesFresh is the Engine.Reset correctness audit: a
// used-then-Reset engine must be byte-for-byte (digest) indistinguishable
// from a freshly constructed one, or pooled arena reuse leaks state
// between runs.
func TestResetDigestMatchesFresh(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		used := NewEngine(7)
		exercise(used)
		used.Stop() // leave a stop request pending, Reset must clear it
		used.Reset(seed)

		fresh := NewEngine(seed)
		if g, w := used.DigestState(), fresh.DigestState(); g != w {
			t.Errorf("seed %d: reset digest %s != fresh digest %s", seed, g, w)
		}

		// Behavioural check on top of the digest: identical follow-up
		// workloads must fire identically.
		exercise(used)
		exercise(fresh)
		if used.DigestState() != fresh.DigestState() {
			t.Errorf("seed %d: reset engine diverged from fresh engine after identical workload", seed)
		}
		if used.Fired() != fresh.Fired() || used.Now() != fresh.Now() {
			t.Errorf("seed %d: fired/now diverged: %d/%v vs %d/%v",
				seed, used.Fired(), used.Now(), fresh.Fired(), fresh.Now())
		}
	}
}

// TestSaveLoadRoundTrip proves that scalar restore plus per-event re-arm
// reproduces the source engine exactly: equal digests, and an identical
// dispatch tail.
func TestSaveLoadRoundTrip(t *testing.T) {
	type firing struct {
		label string
		when  Time
	}
	var srcLog, dstLog []firing

	src := NewEngine(123)
	reschedule := func(log *[]firing) Handler {
		var fn Handler
		fn = func(e *Engine) {
			*log = append(*log, firing{"tick", e.Now()})
			if e.Now() < 2*Millisecond {
				e.After(100*Microsecond, "tick", fn)
			}
		}
		return fn
	}
	src.After(50*Microsecond, "tick", reschedule(&srcLog))
	src.After(700*Microsecond, "one-shot", func(e *Engine) {
		srcLog = append(srcLog, firing{"one-shot", e.Now()})
	})
	src.After(30*Millisecond, "far", func(e *Engine) {
		srcLog = append(srcLog, firing{"far", e.Now()})
	})
	src.RunUntil(300 * Microsecond)
	prefix := len(srcLog) // firings already delivered before the snapshot

	// Snapshot: scalars via Save, events via ForEachPending.
	var enc snap.Encoder
	src.Save(&enc)
	type saved struct {
		when  Time
		seq   uint64
		label string
	}
	var events []saved
	src.ForEachPending(func(when Time, seq uint64, label string) {
		events = append(events, saved{when, seq, label})
	})

	dst := NewEngine(0)
	if err := dst.Load(snap.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, ev := range events {
		switch ev.label {
		case "tick":
			dst.ScheduleRestored(ev.when, ev.seq, ev.label, reschedule(&dstLog))
		case "one-shot":
			dst.ScheduleRestored(ev.when, ev.seq, ev.label, func(e *Engine) {
				dstLog = append(dstLog, firing{"one-shot", e.Now()})
			})
		case "far":
			dst.ScheduleRestored(ev.when, ev.seq, ev.label, func(e *Engine) {
				dstLog = append(dstLog, firing{"far", e.Now()})
			})
		default:
			t.Fatalf("unexpected pending label %q", ev.label)
		}
	}

	if g, w := dst.DigestState(), src.DigestState(); g != w {
		t.Fatalf("restored digest %s != source digest %s", g, w)
	}
	if dst.Now() != src.Now() || dst.Fired() != src.Fired() || dst.Pending() != src.Pending() {
		t.Fatalf("restored scalars diverge: now %v/%v fired %d/%d pending %d/%d",
			dst.Now(), src.Now(), dst.Fired(), src.Fired(), dst.Pending(), src.Pending())
	}

	// The tail must replay identically, including RNG-dependent behaviour.
	tail := func(e *Engine, log *[]firing) {
		e.After(Time(e.Rand().Intn(500))*Microsecond, "rng", func(e *Engine) {
			*log = append(*log, firing{"rng", e.Now()})
		})
		e.Run()
	}
	tail(src, &srcLog)
	tail(dst, &dstLog)
	if fmt.Sprint(srcLog[prefix:]) != fmt.Sprint(dstLog) {
		t.Fatalf("dispatch tails diverge:\n src %v\n dst %v", srcLog[prefix:], dstLog)
	}
	if src.DigestState() != dst.DigestState() {
		t.Fatal("final digests diverge")
	}
}

// TestScheduleRestoredOrdering pins that a restored event's original seq
// wins (when, seq) ties against events scheduled after the restore.
func TestScheduleRestoredOrdering(t *testing.T) {
	src := NewEngine(1)
	at := 100 * Microsecond
	var order []string
	evOld := src.At(at, "old", func(e *Engine) {})
	seqOld, _ := evOld.Seq()
	src.Cancel(evOld)

	// Simulate restore: old seq re-armed after a newer event at the same
	// instant was scheduled.
	src.At(at, "new", func(e *Engine) { order = append(order, "new") })
	src.ScheduleRestored(at, seqOld, "old", func(e *Engine) { order = append(order, "old") })
	src.Run()
	if len(order) != 2 || order[0] != "old" || order[1] != "new" {
		t.Fatalf("dispatch order = %v, want [old new]", order)
	}
}

// TestScheduleRestoredGuards pins the misuse panics.
func TestScheduleRestoredGuards(t *testing.T) {
	e := NewEngine(1)
	e.At(Microsecond, "x", func(e *Engine) {})
	e.RunUntil(2 * Microsecond)

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("past", func() {
		e.ScheduleRestored(Microsecond, 0, "past", func(e *Engine) {})
	})
	expectPanic("future-seq", func() {
		e.ScheduleRestored(3*Microsecond, e.seq+10, "seq", func(e *Engine) {})
	})
}

// TestLoadRejectsPendingEvents pins that Load demands a clean engine.
func TestLoadRejectsPendingEvents(t *testing.T) {
	src := NewEngine(9)
	var enc snap.Encoder
	src.Save(&enc)

	dst := NewEngine(9)
	dst.After(Microsecond, "pending", func(e *Engine) {})
	if err := dst.Load(snap.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("Load accepted an engine with pending events")
	}
}

// TestRandStateRoundTrip pins that SetState resumes the stream exactly.
func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(77)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := NewRand(0)
	r2.SetState(st)
	for i, w := range want {
		if g := r2.Uint64(); g != w {
			t.Fatalf("draw %d: got %d want %d", i, g, w)
		}
	}
}
