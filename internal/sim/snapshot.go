package sim

// Checkpoint/restore support. The engine's pending events hold Go closures
// and therefore cannot be serialized; instead the snapshot layer saves the
// engine's *scalar* state here (clock, sequence counter, RNG stream, stop
// flags) and each component that owns events re-arms them after restore
// with ScheduleRestored, preserving the original (when, seq) dispatch
// order. Pools (the node free list, bucket/heap/batch capacities) and
// generation stamps are capacity, not state: they are deliberately outside
// the snapshot and outside DigestState.

import (
	"fmt"
	"sort"

	"paratick/internal/snap"
)

// Save serializes the engine's scalar state. Pending events are not
// included — their owners re-arm them on restore (see ScheduleRestored).
func (e *Engine) Save(enc *snap.Encoder) {
	enc.Section("engine")
	enc.U64(uint64(e.shift))
	enc.I64(int64(e.now))
	enc.U64(e.seq)
	enc.U64(e.fired)
	enc.Bool(e.stopReq)
	enc.Bool(e.stopped)
	s := e.rand.State()
	for _, w := range s {
		enc.U64(w)
	}
}

// Load restores scalar state saved by Save into an engine that holds no
// pending events (freshly constructed or Reset). The wheel window is
// re-derived from the restored clock; callers then re-arm every pending
// event via ScheduleRestored.
func (e *Engine) Load(dec *snap.Decoder) error {
	dec.Section("engine")
	shift := uint(dec.U64())
	now := Time(dec.I64())
	seq := dec.U64()
	fired := dec.U64()
	stopReq := dec.Bool()
	stopped := dec.Bool()
	var s [4]uint64
	for i := range s {
		s[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if shift != e.shift {
		return fmt.Errorf("sim: snapshot bucket shift %d does not match engine shift %d", shift, e.shift)
	}
	if e.count != 0 {
		return fmt.Errorf("sim: Load into an engine with %d pending events (Reset it first)", e.count)
	}
	e.now = now
	e.wheelBase = int64(now >> e.shift)
	e.wheelEnd = wheelEndFor(e.wheelBase, e.shift)
	e.seq = seq
	e.fired = fired
	e.stopReq = stopReq
	e.stopped = stopped
	e.rand.SetState(s)
	return nil
}

// ScheduleRestored re-arms an event carried over from a snapshot at its
// original (when, seq) coordinates, so the restored engine dispatches in
// exactly the pre-snapshot order. Unlike At it does not consume a new
// sequence number; seq must predate the restored counter, and when must
// not be in the past — a snapshot can only contain future events.
//
//paratick:noalloc
func (e *Engine) ScheduleRestored(when Time, seq uint64, label string, fn Handler) Event {
	if fn == nil {
		panic("sim: nil event handler")
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: restoring %q at %v before now %v", label, when, e.now))
	}
	if seq >= e.seq {
		panic(fmt.Sprintf("sim: restored event %q seq %d not below engine seq %d", label, seq, e.seq))
	}
	nd := e.acquire()
	nd.when = when
	nd.seq = seq
	nd.fn = fn
	nd.label = label
	e.count++
	ab := int64(when >> e.shift)
	if e.batchBkt >= 0 && ab < e.batchBkt {
		e.spillBatch()
	}
	switch {
	case ab == e.batchBkt:
		e.batchInsert(nd)
	case when < e.wheelEnd:
		e.wheelAdd(nd)
	default:
		e.push(nd)
	}
	return Event{n: nd, gen: nd.gen}
}

// Seq returns the event's dispatch sequence number, the tie-break half of
// its (when, seq) coordinates. ok is false once the handle is dead.
func (ev Event) Seq() (seq uint64, ok bool) {
	if ev.live() {
		return ev.n.seq, true
	}
	return 0, false
}

// ForEachPending visits every queued event in unspecified order. It exists
// for state digests and diagnostics; fn must not schedule or cancel.
func (e *Engine) ForEachPending(fn func(when Time, seq uint64, label string)) {
	for s := range e.buckets {
		for _, nd := range e.buckets[s] {
			fn(nd.when, nd.seq, nd.label)
		}
	}
	for i := e.batchPos; i < len(e.batch); i++ {
		if nd := e.batch[i].nd; nd != nil {
			fn(nd.when, nd.seq, nd.label)
		}
	}
	for _, nd := range e.heap {
		fn(nd.when, nd.seq, nd.label)
	}
}

// DigestState returns a canonical hash of the engine's observable state:
// scalars, RNG stream, and every pending event's (when, seq, label) in
// dispatch order. Two engines with equal digests behave identically from
// here on (given handlers are re-bound equivalently). Pool contents,
// retained capacities, and node generation stamps are excluded by design —
// they affect performance, never behaviour. Digesting allocates; it is a
// test and fuzzing facility, not a hot-path one.
func (e *Engine) DigestState() snap.Digest {
	var enc snap.Encoder
	e.Save(&enc)
	enc.U64(uint64(e.count))
	enc.Bool(e.obs != nil)
	type pending struct {
		when  Time
		seq   uint64
		label string
	}
	evs := make([]pending, 0, e.count)
	e.ForEachPending(func(when Time, seq uint64, label string) {
		evs = append(evs, pending{when, seq, label})
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for _, p := range evs {
		enc.I64(int64(p.when))
		enc.U64(p.seq)
		enc.String(p.label)
	}
	return snap.HashBytes(enc.Bytes())
}
