// Package sim provides the deterministic discrete-event simulation kernel
// that every other package in this repository is built on.
//
// The kernel consists of three pieces:
//
//   - a nanosecond-resolution simulated clock (Time),
//   - a cancelable event queue (Engine) with deterministic tie-breaking,
//   - a seeded pseudo-random number generator (Rand) so that runs are
//     reproducible bit for bit.
//
// Nothing in this package knows about virtualization; it is a generic DES
// core comparable to the event loops found in architectural simulators.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is also used for durations; the zero value is the epoch.
type Time int64

// Common durations, for readable scenario definitions.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel deadline meaning "never expires". It sorts after any
// realistic simulated instant.
const Forever Time = 1<<63 - 1

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "250ns".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	switch {
	case t == Forever:
		return "forever"
	case t >= Second:
		return fmt.Sprintf("%s%.6gs", neg, t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, t.Microseconds())
	default:
		return fmt.Sprintf("%s%dns", neg, int64(t))
	}
}

// PeriodFromHz converts an interrupt frequency in Hz to its period.
// PeriodFromHz(250) == 4ms.
func PeriodFromHz(hz int) Time {
	if hz <= 0 {
		return Forever
	}
	return Second / Time(hz)
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
