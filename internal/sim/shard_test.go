package sim

import (
	"testing"

	"paratick/internal/snap"
)

// laneTickers schedules a self-rescheduling event per lane and returns the
// per-lane fire counters.
func laneTickers(se *ShardedEngine, period Time) []*int {
	counts := make([]*int, se.Lanes())
	for l := 0; l < se.Lanes(); l++ {
		n := new(int)
		counts[l] = n
		e := se.Engine(l)
		var fn Handler
		fn = func(e *Engine) {
			*n++
			e.After(period, "tick", fn)
		}
		e.After(period, "tick", fn)
	}
	return counts
}

func TestShardedLaneSeedingIsPureFunctionOfSeedAndLanes(t *testing.T) {
	a, err := NewSharded(42, 4, 1, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSharded(42, 4, 4, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 4; l++ {
		if g, w := a.Engine(l).Rand().Uint64(), b.Engine(l).Rand().Uint64(); g != w {
			t.Fatalf("lane %d RNG differs across shard counts: %d vs %d", l, g, w)
		}
	}
}

func TestShardedRunUntilMatchesAcrossShardCounts(t *testing.T) {
	run := func(shards int) []int {
		se, err := NewSharded(7, 4, shards, Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		counts := laneTickers(se, 250*Microsecond)
		se.RunUntil(10 * Millisecond)
		out := make([]int, len(counts))
		for i, n := range counts {
			out[i] = *n
		}
		if se.Now() != 10*Millisecond {
			t.Fatalf("shards=%d: now %v, want 10ms", shards, se.Now())
		}
		return out
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for l := range serial {
			if got[l] != serial[l] {
				t.Fatalf("shards=%d lane %d fired %d events, serial fired %d", shards, l, got[l], serial[l])
			}
		}
	}
	if serial[0] == 0 {
		t.Fatal("tickers never fired")
	}
}

func TestShardedMessagesDrainInSourceLaneOrder(t *testing.T) {
	se, err := NewSharded(1, 3, 1, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	se.SetDeliver(func(m Message) { got = append(got, m.A) })
	// Post from lanes in reverse order; drain must reorder by source lane.
	for src := 2; src >= 0; src-- {
		se.Post(Message{Src: src, Dst: 0, FireAt: 2 * Millisecond, A: int64(src * 10)})
		se.Post(Message{Src: src, Dst: 0, FireAt: 2 * Millisecond, A: int64(src*10 + 1)})
	}
	se.RunUntil(Millisecond)
	want := []int64{0, 1, 10, 11, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("drained %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestShardedPostBelowHorizonPanics(t *testing.T) {
	se, err := NewSharded(1, 2, 1, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("posting below now+quantum must panic")
		}
	}()
	se.Post(Message{Src: 0, Dst: 1, FireAt: Millisecond - 1})
}

func TestShardedStopHonoredAtBarrier(t *testing.T) {
	se, err := NewSharded(1, 2, 1, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	laneTickers(se, 100*Microsecond)
	var stoppedAt Time
	se.SetBarrierHook(func(now Time) {
		if now >= 3*Millisecond && stoppedAt == 0 {
			stoppedAt = now
			se.Stop()
		}
	})
	se.RunUntil(10 * Millisecond)
	if stoppedAt != 3*Millisecond {
		t.Fatalf("stop requested at %v, want 3ms", stoppedAt)
	}
	if !se.Stopped() {
		t.Fatal("coordinator should report stopped")
	}
	// Matching Engine.RunUntil, the clock still advances to the deadline.
	if se.Now() != 10*Millisecond {
		t.Fatalf("now %v, want 10ms", se.Now())
	}
	if fired := se.Engine(0).Fired(); fired == 0 || fired > 3*10*2 {
		t.Fatalf("lane 0 fired %d events; want a count cut at the 3ms barrier", fired)
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	a, err := NewSharded(9, 4, 2, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	laneTickers(a, 300*Microsecond)
	a.RunUntil(5 * Millisecond)
	var enc snap.Encoder
	a.Save(&enc)
	data := enc.Bytes()

	// Load restores scalar engine state into an empty coordinator; event
	// re-arming is the owners' job (exercised end to end by the experiment
	// checkpoint tests).
	b, err := NewSharded(9, 4, 2, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(snap.NewDecoder(data)); err != nil {
		t.Fatal(err)
	}
	var again snap.Encoder
	b.Save(&again)
	if string(again.Bytes()) != string(data) {
		t.Fatalf("save/load/save diverged: %d vs %d bytes", len(again.Bytes()), len(data))
	}
	if b.Now() != a.Now() {
		t.Fatalf("restored clock %v, want %v", b.Now(), a.Now())
	}
}

func TestWrapEngineDelegates(t *testing.T) {
	e := NewEngine(3)
	se := WrapEngine(e)
	if se.Quantum() != 0 || se.Lanes() != 1 || se.Shards() != 1 {
		t.Fatalf("wrap shape: quantum %v lanes %d shards %d", se.Quantum(), se.Lanes(), se.Shards())
	}
	if se.Root() != e || se.Engine(0) != e {
		t.Fatal("wrap must expose the embedded engine")
	}
	fired := 0
	e.After(Millisecond, "once", func(*Engine) { fired++ })
	se.RunUntil(2 * Millisecond)
	if fired != 1 || e.Now() != 2*Millisecond || se.Now() != 2*Millisecond {
		t.Fatalf("delegation: fired=%d now=%v", fired, se.Now())
	}
	se.Stop()
	if !e.Stopped() {
		t.Fatal("Stop must delegate to the engine")
	}
}

func TestNewShardedValidation(t *testing.T) {
	for _, tc := range []struct {
		lanes, shards int
		quantum       Time
	}{
		{0, 1, Millisecond},
		{2, 0, Millisecond},
		{2, 3, Millisecond},
		{1, 1, -1},
		{2, 1, 0}, // multiple lanes require a quantum
		{2, 2, 0},
	} {
		if _, err := NewSharded(1, tc.lanes, tc.shards, tc.quantum); err == nil {
			t.Errorf("NewSharded(lanes=%d, shards=%d, quantum=%v) should fail", tc.lanes, tc.shards, tc.quantum)
		}
	}
	se, err := NewSharded(5, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if se.Quantum() != 0 {
		t.Fatal("quantum-0 construction must degenerate to legacy mode")
	}
	// Legacy-mode construction must seed exactly like NewEngine(seed).
	if g, w := se.Root().Rand().Uint64(), NewEngine(5).Rand().Uint64(); g != w {
		t.Fatalf("legacy seeding diverges from NewEngine: %d vs %d", g, w)
	}
}
