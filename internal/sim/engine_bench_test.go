package sim

import "testing"

// BenchmarkEngineScheduleFire measures raw event throughput: schedule one
// event and dispatch it, repeatedly.
//
// Pinned in the -perf-suite regression gate as engine/schedule-fire; keep
// the kernel in internal/perf in sync when changing the shape here.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, "b", func(*Engine) {})
		e.Step()
	}
}

// BenchmarkEngineDeepQueue measures heap behaviour with many queued events.
// The steady-state fire→reschedule chain must not allocate.
func BenchmarkEngineDeepQueue(b *testing.B) {
	e := NewEngine(1)
	const depth = 4096
	var chain func(en *Engine)
	chain = func(en *Engine) {
		// Every firing schedules a replacement, keeping depth constant.
		en.After(depth, "chain", chain)
	}
	for i := 0; i < depth; i++ {
		e.After(Time(i+1), "seed", chain)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("queue drained")
		}
	}
}

// BenchmarkEngineCancelHeavy models the DeadlineTimer re-arm churn: against
// a deep queue, every iteration cancels an interior event and schedules a
// replacement further out — the paratick entry-hook pattern of overwriting
// an armed deadline on every VM entry.
//
// Pinned in the -perf-suite regression gate as engine/cancel-heavy; keep
// the kernel in internal/perf in sync when changing the shape here.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	const depth = 1024
	ring := make([]Event, depth)
	for i := range ring {
		ring[i] = e.After(Time(i+1), "seed", func(*Engine) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % depth
		e.Cancel(ring[slot])
		ring[slot] = e.After(Time(depth+i+1), "rearm", func(*Engine) {})
	}
}

// BenchmarkEngineCancel measures schedule+cancel cycles.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(1000, "c", func(*Engine) {})
		e.Cancel(ev)
	}
}

// BenchmarkRandUint64 measures the generator.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// BenchmarkRandExp measures the exponential sampler used by workloads.
func BenchmarkRandExp(b *testing.B) {
	r := NewRand(1)
	var sink Time
	for i := 0; i < b.N; i++ {
		sink += r.Exp(Microsecond)
	}
	_ = sink
}
