package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It exists instead of math/rand so
// that the generator's sequence is fixed by this repository forever —
// reproduction results must not change when the Go standard library
// reshuffles its generators.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64. Any seed,
// including zero, produces a valid non-degenerate state.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place, exactly as NewRand(seed)
// would, without allocating. It lets pooled engines restart their stream
// for a fresh run.
//
//paratick:noalloc
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro requires a nonzero state; SplitMix64 cannot produce four
	// zeros, but guard anyway for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

//paratick:noalloc
func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
//
//paratick:noalloc
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [0, d). d must be positive.
func (r *Rand) Duration(d Time) Time {
	return Time(r.Int63n(int64(d)))
}

// Between returns a uniform Time in [lo, hi). It panics if hi <= lo.
func (r *Rand) Between(lo, hi Time) Time {
	if hi <= lo {
		panic("sim: Between with hi <= lo")
	}
	return lo + r.Duration(hi-lo)
}

// Exp returns an exponentially distributed Time with the given mean,
// truncated to at least 1ns. It is used for inter-arrival jitter in the
// workload generators.
func (r *Rand) Exp(mean Time) Time {
	if mean <= 0 {
		return 1
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := Time(-float64(mean) * math.Log(u))
	if d < 1 {
		d = 1
	}
	return d
}

// Jitter returns d perturbed by a uniform factor in [1-f, 1+f], clamped to a
// minimum of 1ns. f should be in [0, 1].
func (r *Rand) Jitter(d Time, f float64) Time {
	if d <= 0 || f <= 0 {
		return MaxTime(d, 1)
	}
	lo := float64(d) * (1 - f)
	hi := float64(d) * (1 + f)
	v := Time(lo + (hi-lo)*r.Float64())
	if v < 1 {
		v = 1
	}
	return v
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent generator whose stream is a pure function of
// this generator's state and the tag. Used to give every vCPU/task its own
// stream so adding one component does not shift the randomness of others.
func (r *Rand) Fork(tag uint64) *Rand {
	dst := &Rand{}
	r.ForkInto(dst, tag)
	return dst
}

// ForkInto reseeds dst exactly as Fork(tag) would seed a fresh generator,
// without allocating. It lets pooled components restart their derived
// streams on reuse: a recycled task calling ForkInto at the same point in
// the parent's draw order ends up with bit-identical state to a fresh one.
//
//paratick:noalloc
func (r *Rand) ForkInto(dst *Rand, tag uint64) {
	dst.Reseed(r.Uint64() ^ (tag * 0x9e3779b97f4a7c15))
}

// State returns the generator's full internal state, for checkpointing.
// Restoring it with SetState resumes the stream at exactly this point.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state captured by State.
//
//paratick:noalloc
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		// An all-zero xoshiro state is degenerate (the stream is stuck at
		// zero); State can never produce one, so reject it the same way
		// Reseed guards.
		s[0] = 1
	}
	r.s = s
}
