package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{250, "250ns"},
		{Microsecond, "1us"},
		{1500 * Nanosecond, "1.5us"},
		{2500 * Microsecond, "2.5ms"},
		{3 * Second, "3s"},
		{-2 * Millisecond, "-2ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPeriodFromHz(t *testing.T) {
	if got := PeriodFromHz(250); got != 4*Millisecond {
		t.Errorf("PeriodFromHz(250) = %v, want 4ms", got)
	}
	if got := PeriodFromHz(1000); got != Millisecond {
		t.Errorf("PeriodFromHz(1000) = %v, want 1ms", got)
	}
	if got := PeriodFromHz(0); got != Forever {
		t.Errorf("PeriodFromHz(0) = %v, want Forever", got)
	}
	if got := PeriodFromHz(-5); got != Forever {
		t.Errorf("PeriodFromHz(-5) = %v, want Forever", got)
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime broken")
	}
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime broken")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, "c", func(*Engine) { got = append(got, 3) })
	e.At(10, "a", func(*Engine) { got = append(got, 1) })
	e.At(20, "b", func(*Engine) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, "tie", func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(100, "x", func(en *Engine) {
		en.After(50, "y", func(en *Engine) { at = en.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, "x", func(*Engine) { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending after scheduling")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel should return false")
	}
	if e.Cancel(Event{}) {
		t.Fatal("cancel of zero handle should return false")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	var evs []Event
	for i := 1; i <= 10; i++ {
		w := Time(i * 10)
		evs = append(evs, e.At(w, "x", func(en *Engine) { got = append(got, en.Now()) }))
	}
	e.Cancel(evs[4]) // t=50
	e.Cancel(evs[7]) // t=80
	e.Run()
	want := []Time{10, 20, 30, 40, 60, 70, 90, 100}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestEngineCancelFromHandler(t *testing.T) {
	e := NewEngine(1)
	fired := false
	victim := e.At(20, "victim", func(*Engine) { fired = true })
	e.At(10, "killer", func(en *Engine) { en.Cancel(victim) })
	e.Run()
	if fired {
		t.Fatal("victim fired despite cancellation from an earlier handler")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, w := range []Time{10, 20, 30, 40} {
		w := w
		e.At(w, "x", func(en *Engine) { got = append(got, en.Now()) })
	}
	e.RunUntil(25)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("RunUntil(25) fired %v", got)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v after RunUntil(25)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(got) != 4 || e.Now() != 100 {
		t.Fatalf("second RunUntil: got %v now %v", got, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), "x", func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt Run: count = %d", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() should be true")
	}
	// A later Run resumes.
	e.Run()
	if count != 10 {
		t.Fatalf("resumed Run processed %d total", count)
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine(1)
	e.At(100, "x", func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(50, "bad", func(*Engine) {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, "bad", func(*Engine) {})
}

func TestEnginePanicsOnNilHandler(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.At(1, "bad", nil)
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), "x", func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(42, "mylabel", func(*Engine) {})
	if ev.When() != 42 {
		t.Errorf("When() = %v", ev.When())
	}
	if ev.Label() != "mylabel" {
		t.Errorf("Label() = %q", ev.Label())
	}
	var zero Event
	if zero.Pending() {
		t.Error("zero event handle reports pending")
	}
	if zero.When() != 0 || zero.Label() != "" {
		t.Error("zero event handle has non-zero accessors")
	}
}

// Property: any set of scheduled times is dispatched in sorted order.
func TestEngineDispatchSortedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(7)
		var got []Time
		for _, r := range raw {
			w := Time(r)
			e.At(w, "p", func(en *Engine) { got = append(got, en.Now()) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after random interleaved schedule/cancel operations, exactly the
// non-canceled events fire, each exactly once.
func TestEngineCancelExactnessProperty(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		e := NewEngine(3)
		fireCount := make(map[int]int)
		var evs []Event
		for i, r := range times {
			i := i
			evs = append(evs, e.At(Time(r), "p", func(*Engine) { fireCount[i]++ }))
		}
		canceled := make(map[int]bool)
		for i := range evs {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(evs[i])
				canceled[i] = true
			}
		}
		e.Run()
		for i := range evs {
			want := 1
			if canceled[i] {
				want = 0
			}
			if fireCount[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(99)
		var got []Time
		// A chain of randomly scheduled events using the engine RNG.
		var step func(en *Engine)
		n := 0
		step = func(en *Engine) {
			got = append(got, en.Now())
			n++
			if n < 100 {
				en.After(en.Rand().Between(1, 1000), "chain", step)
			}
		}
		e.After(1, "start", step)
		e.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// A Stop issued before a run starts must halt that run before it dispatches
// anything; the run consumes the request, so the following run resumes.
func TestEngineHonorsPreRunStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i), "x", func(*Engine) { count++ })
	}
	e.Stop()
	if !e.Stopped() {
		t.Fatal("Stopped() should report a pending pre-run stop")
	}
	e.Run()
	if count != 0 {
		t.Fatalf("pre-run Stop ignored: %d events fired", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() should be true after a stopped run")
	}
	e.Run() // the stop was consumed; this run proceeds
	if count != 5 {
		t.Fatalf("resumed run fired %d events, want 5", count)
	}
	if e.Stopped() {
		t.Fatal("Stopped() should clear on a completed run")
	}
}

func TestEngineRunUntilHonorsPreRunStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i), "x", func(*Engine) { count++ })
	}
	e.Stop()
	e.RunUntil(100)
	if count != 0 {
		t.Fatalf("pre-run Stop ignored by RunUntil: %d events fired", count)
	}
	// The clock still advances to the deadline, matching RunUntil's contract.
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", e.Now())
	}
	e.RunUntil(200)
	if count != 5 {
		t.Fatalf("resumed RunUntil fired %d events, want 5", count)
	}
}

// Handles are generation-stamped: once an event fires, its handle is dead,
// and reusing the pooled storage for a new event must not resurrect it.
func TestEventHandleSurvivesRecycling(t *testing.T) {
	e := NewEngine(1)
	stale := e.At(1, "first", func(*Engine) {})
	e.Run()
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}
	// The next schedule recycles the node the stale handle points to.
	fired := false
	fresh := e.At(2, "second", func(*Engine) { fired = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle canceled a recycled event")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports the recycled event as its own")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
}

// The steady-state schedule→fire→reschedule cycle must not allocate: the
// free list recycles event nodes and the heap never grows.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	// Warm up: populate the node slab and heap capacity.
	for i := 0; i < 100; i++ {
		e.After(1, "warm", func(*Engine) {})
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, "steady", func(*Engine) {})
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocates %v objects/op, want 0", allocs)
	}
	cancels := testing.AllocsPerRun(1000, func() {
		ev := e.After(1000, "c", func(*Engine) {})
		e.Cancel(ev)
	})
	if cancels != 0 {
		t.Fatalf("schedule+cancel allocates %v objects/op, want 0", cancels)
	}
}
