// Sharded intra-run parallelism: one Engine per lane (a lane is a CPU
// socket in the kvm layer), coordinated by a conservative time-quantum
// barrier — the parti-gem5 scheme. Each lane's engine advances
// independently to the next quantum boundary; anything that crosses lanes
// travels as a Message through deterministic per-source mailboxes drained
// at the barrier in fixed (source-lane, FIFO) order.
//
// The determinism contract: the observable output of a lane-mode run is a
// pure function of (seed, lane count, quantum) — never of the shard count.
// Lanes are a semantic property (how the scenario partitions state);
// shards only decide how many OS goroutines execute those lanes. shards=1
// executes the identical lane schedule inline, so differential tests can
// pin byte-equality of shards∈{1,2,4,8} against each other cheaply.
//
// Quantum 0 is the legacy single-engine mode: WrapEngine embeds an
// existing Engine and every ShardedEngine method delegates to it
// unchanged, including snapshot encoding — byte-identical to the
// pre-shard code path.
package sim

import (
	"fmt"

	"paratick/internal/snap"
)

// Message is one cross-lane interaction, exchanged only at quantum
// barriers. It is pure data — closures cannot cross lanes, because a
// checkpoint between delivery and firing must be able to serialize the
// in-flight interaction. The receiver (SetDeliver) interprets the payload
// words and schedules whatever event the message implies on the
// destination lane's engine.
type Message struct {
	// Src and Dst are lane indices. Post must be called from Src's
	// execution context (its shard's goroutine, or the coordinator between
	// quanta).
	Src, Dst int
	// FireAt is the earliest instant the interaction may take effect. The
	// conservative-barrier protocol requires FireAt ≥ send time + quantum:
	// the destination lane may already have advanced to the end of the
	// current quantum, so anything earlier could rewrite its past.
	FireAt Time
	// A, B, C are receiver-defined payload words (e.g. VM index, vCPU
	// index, interrupt vector).
	A, B, C int64
}

// shardWorker is one shard's goroutine handle during a RunUntil: start
// carries the next barrier to advance to, done signals the span finished.
// The channel pair is also the memory barrier that publishes the shard's
// engine state to the coordinator (and back) — engines are never touched
// by two goroutines concurrently.
type shardWorker struct {
	engines []*Engine
	start   chan Time
	done    chan struct{}
}

// ShardedEngine coordinates one Engine per lane under a quantum barrier.
// The zero value is not usable; construct with NewSharded or WrapEngine.
type ShardedEngine struct {
	engines []*Engine
	// shardEngines groups lanes into contiguous per-shard runs; shard s
	// executes shardEngines[s] serially on its goroutine.
	//snap:skip derived regrouping of engines, rebuilt at construction
	shardEngines [][]*Engine
	quantum      Time
	//snap:skip construction-time worker count, fixed by the topology
	shards int

	// outbox[src] buffers messages posted by lane src during the current
	// quantum; only src's shard appends to it, so no locking is needed.
	outbox [][]Message
	// deliver receives every message at barrier drain, in (src lane, FIFO)
	// order, on the coordinator goroutine.
	//snap:skip closure wiring, rebound by SetDeliver after restore
	deliver func(Message)
	// hook runs after every barrier drain with the barrier instant; it is
	// where the experiment layer checks workload completion (lane mode
	// defers Stop to barriers so the decision never depends on intra-
	// quantum cross-lane state).
	//snap:skip closure wiring, rebound by the experiment layer after restore
	hook func(Time)

	stopReq, stopped bool
}

// WrapEngine adapts a single legacy engine to the ShardedEngine interface:
// quantum 0, one lane, one shard, every method delegating unchanged.
func WrapEngine(e *Engine) *ShardedEngine {
	if e == nil {
		panic("sim: WrapEngine requires an engine")
	}
	return &ShardedEngine{
		engines:      []*Engine{e},
		shardEngines: [][]*Engine{{e}},
		shards:       1,
	}
}

// NewSharded builds a lane-mode coordinator: `lanes` engines seeded as a
// pure function of (seed, lane), grouped into `shards` contiguous lane
// ranges. quantum must be positive unless lanes == shards == 1 and may
// then be 0, which degenerates to the legacy single-engine mode (an
// engine seeded exactly like NewEngine(seed)).
func NewSharded(seed uint64, lanes, shards int, quantum Time) (*ShardedEngine, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("sim: need at least one lane, got %d", lanes)
	}
	if shards < 1 || shards > lanes {
		return nil, fmt.Errorf("sim: shard count %d out of range [1,%d]", shards, lanes)
	}
	if quantum < 0 {
		return nil, fmt.Errorf("sim: quantum must be non-negative, got %v", quantum)
	}
	if quantum == 0 {
		if lanes != 1 || shards != 1 {
			return nil, fmt.Errorf("sim: %d lanes / %d shards require a positive quantum", lanes, shards)
		}
		return WrapEngine(NewEngine(seed)), nil
	}
	se := &ShardedEngine{
		engines: make([]*Engine, lanes),
		quantum: quantum,
		shards:  shards,
		outbox:  make([][]Message, lanes),
	}
	rs := NewRand(seed)
	for l := range se.engines {
		se.engines[l] = NewEngine(rs.Uint64())
	}
	se.shardEngines = make([][]*Engine, shards)
	for s := 0; s < shards; s++ {
		lo, hi := s*lanes/shards, (s+1)*lanes/shards
		se.shardEngines[s] = se.engines[lo:hi]
	}
	return se, nil
}

// Reset returns the coordinator to its just-constructed state for the
// given seed, retaining every engine's allocated capacity — the arena
// reuse path. The resulting state is indistinguishable from a fresh
// NewSharded with the same parameters.
func (se *ShardedEngine) Reset(seed uint64) {
	se.stopReq, se.stopped = false, false
	if se.quantum == 0 {
		se.engines[0].Reset(seed)
		return
	}
	rs := NewRand(seed)
	for l, e := range se.engines {
		e.Reset(rs.Uint64())
		se.outbox[l] = se.outbox[l][:0]
	}
}

// Quantum returns the barrier quantum (0 in legacy mode).
func (se *ShardedEngine) Quantum() Time { return se.quantum }

// Lanes returns the lane count.
func (se *ShardedEngine) Lanes() int { return len(se.engines) }

// Shards returns how many goroutines execute the lanes (1 = inline).
func (se *ShardedEngine) Shards() int { return se.shards }

// Engine returns the lane's engine. Components built on lane l must
// schedule exclusively through Engine(l) and never touch another lane's
// engine at runtime — that is what makes shard execution race-free.
func (se *ShardedEngine) Engine(lane int) *Engine {
	if lane < 0 || lane >= len(se.engines) {
		panic(fmt.Sprintf("sim: lane %d out of range [0,%d)", lane, len(se.engines)))
	}
	return se.engines[lane]
}

// Root returns lane 0's engine — the engine, in legacy mode.
func (se *ShardedEngine) Root() *Engine { return se.engines[0] }

// Now returns the current simulated time. In lane mode every engine
// agrees at barriers; mid-quantum it reports lane 0's clock, so
// cross-lane observers must only read it from the coordinator context.
func (se *ShardedEngine) Now() Time { return se.engines[0].now }

// Pending returns the total queued events across all lanes.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, e := range se.engines {
		n += e.count
	}
	return n
}

// Fired returns the total events dispatched across all lanes.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, e := range se.engines {
		n += e.fired
	}
	return n
}

// SetObserver installs the dispatch observer on every lane's engine.
// Observers are only safe in single-shard execution (legacy tracing
// tools); a multi-shard run would invoke one from several goroutines.
func (se *ShardedEngine) SetObserver(obs Observer) {
	for _, e := range se.engines {
		e.SetObserver(obs)
	}
}

// SetDeliver installs the barrier-drain message receiver. It runs on the
// coordinator goroutine with every lane parked at the barrier, so it may
// schedule on any lane's engine.
func (se *ShardedEngine) SetDeliver(fn func(Message)) { se.deliver = fn }

// SetBarrierHook installs a function run after every barrier drain with
// the barrier instant. It may call Stop to end the run at this barrier.
func (se *ShardedEngine) SetBarrierHook(fn func(Time)) { se.hook = fn }

// Post queues a cross-lane message for delivery at the current quantum's
// barrier. It must be called from the source lane's execution context and
// only in lane mode; FireAt must respect the conservative horizon
// (≥ source-lane now + quantum).
func (se *ShardedEngine) Post(m Message) {
	if se.quantum == 0 {
		panic("sim: Post requires lane mode (positive quantum)")
	}
	if m.Src < 0 || m.Src >= len(se.engines) || m.Dst < 0 || m.Dst >= len(se.engines) {
		panic(fmt.Sprintf("sim: message lanes (%d→%d) out of range [0,%d)", m.Src, m.Dst, len(se.engines)))
	}
	if horizon := se.engines[m.Src].now + se.quantum; m.FireAt < horizon {
		panic(fmt.Sprintf("sim: message fires at %v, before the conservative horizon %v (now+quantum)", m.FireAt, horizon))
	}
	se.outbox[m.Src] = append(se.outbox[m.Src], m)
}

// Stop requests a halt. In lane mode the request is honored at the next
// quantum barrier (a mid-quantum stop would make the cut point depend on
// shard interleaving); in legacy mode it is the engine's own Stop.
func (se *ShardedEngine) Stop() {
	if se.quantum == 0 {
		se.engines[0].Stop()
		return
	}
	se.stopReq = true
}

// Stopped reports whether the coordinator is halted by Stop.
func (se *ShardedEngine) Stopped() bool {
	if se.quantum == 0 {
		return se.engines[0].Stopped()
	}
	return se.stopped || se.stopReq
}

// consumeStop mirrors Engine.consumeStop for the lane-mode flags.
func (se *ShardedEngine) consumeStop() bool {
	if !se.stopReq {
		return false
	}
	se.stopReq = false
	se.stopped = true
	return true
}

// advanceAll moves every lane clock forward to t (never backward),
// matching Engine.RunUntil's clock-advance contract.
func (se *ShardedEngine) advanceAll(t Time) {
	for _, e := range se.engines {
		if e.now < t {
			e.now = t
		}
	}
}

// drain delivers every outbox message in (source lane, FIFO) order — the
// fixed cross-lane merge order the determinism contract pins. It runs on
// the coordinator with all lanes parked at the barrier.
func (se *ShardedEngine) drain() {
	for src := range se.outbox {
		box := se.outbox[src]
		if len(box) == 0 {
			continue
		}
		if se.deliver == nil {
			panic("sim: messages posted with no deliver hook installed")
		}
		for i, m := range box {
			se.deliver(m)
			box[i] = Message{}
		}
		se.outbox[src] = box[:0]
	}
}

// RunUntil advances the simulation to the deadline. Legacy mode delegates
// to the engine. Lane mode runs the quantum-barrier protocol: every lane
// advances to min(deadline, next quantum boundary) — in parallel when
// shards > 1 — then the coordinator drains cross-lane mailboxes and runs
// the barrier hook, until the deadline, a Stop, or global quiescence.
func (se *ShardedEngine) RunUntil(deadline Time) {
	if se.quantum == 0 {
		se.engines[0].RunUntil(deadline)
		return
	}
	if se.consumeStop() {
		se.advanceAll(deadline)
		return
	}
	se.stopped = false
	var workers []*shardWorker
	if se.shards > 1 {
		workers = se.startWorkers()
		defer stopWorkers(workers)
	}
	for {
		now := se.engines[0].now
		if now >= deadline {
			return
		}
		// The next barrier: the first quantum-grid instant after now,
		// capped at the deadline (the final span may be partial).
		q := (now/se.quantum + 1) * se.quantum
		if q > deadline {
			q = deadline
		}
		if workers != nil {
			for _, w := range workers {
				w.start <- q
			}
			for _, w := range workers {
				<-w.done
			}
		} else {
			for _, e := range se.engines {
				e.RunUntil(q)
			}
		}
		se.drain()
		if se.hook != nil {
			se.hook(q)
		}
		if se.consumeStop() {
			se.advanceAll(deadline)
			return
		}
		if q >= deadline {
			return
		}
		if se.Pending() == 0 {
			// Global quiescence: no lane holds an event and the mailboxes
			// are drained, so nothing can ever fire again.
			se.advanceAll(deadline)
			return
		}
	}
}

// startWorkers launches one goroutine per shard for the duration of a
// RunUntil. Workers are cheap to spawn relative to a quantum's worth of
// events, and scoping them to the call keeps the engine single-threaded
// everywhere else (construction, snapshotting, draining).
func (se *ShardedEngine) startWorkers() []*shardWorker {
	workers := make([]*shardWorker, se.shards)
	for s := range workers {
		w := &shardWorker{
			engines: se.shardEngines[s],
			start:   make(chan Time),
			done:    make(chan struct{}),
		}
		workers[s] = w
		go func(w *shardWorker) {
			for q := range w.start {
				for _, e := range w.engines {
					e.RunUntil(q)
				}
				w.done <- struct{}{}
			}
		}(w)
	}
	return workers
}

// stopWorkers releases the shard goroutines.
func stopWorkers(workers []*shardWorker) {
	for _, w := range workers {
		close(w.start)
	}
}

// Save serializes the coordinator state. Legacy mode writes exactly the
// single engine's section — byte-identical to the pre-shard encoding.
// Lane mode writes a sharded section followed by every lane's engine in
// lane order; the bytes are a pure function of (state, lanes, quantum),
// never of the shard count. Saving is only legal at a barrier, where the
// mailboxes are provably empty — in-flight messages never serialize.
func (se *ShardedEngine) Save(enc *snap.Encoder) {
	if se.quantum == 0 {
		se.engines[0].Save(enc)
		return
	}
	for src, box := range se.outbox {
		if len(box) != 0 {
			panic(fmt.Sprintf("sim: save with %d undelivered messages from lane %d (not at a barrier)", len(box), src))
		}
	}
	enc.Section("sharded-engine")
	enc.I64(int64(se.quantum))
	enc.U32(uint32(len(se.engines)))
	enc.Bool(se.stopReq)
	enc.Bool(se.stopped)
	for _, e := range se.engines {
		e.Save(enc)
	}
}

// Load restores state saved by Save into a coordinator of identical shape
// (same lanes and quantum; shard count is free to differ).
func (se *ShardedEngine) Load(dec *snap.Decoder) error {
	if se.quantum == 0 {
		return se.engines[0].Load(dec)
	}
	dec.Section("sharded-engine")
	if q := Time(dec.I64()); q != se.quantum {
		return fmt.Errorf("sim: snapshot quantum %v, coordinator has %v", q, se.quantum)
	}
	if n := int(dec.U32()); n != len(se.engines) {
		return fmt.Errorf("sim: snapshot has %d lanes, coordinator has %d", n, len(se.engines))
	}
	se.stopReq = dec.Bool()
	se.stopped = dec.Bool()
	for _, e := range se.engines {
		if err := e.Load(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}
