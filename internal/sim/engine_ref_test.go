package sim

import (
	"fmt"
	"testing"
)

// Differential testing of the hybrid two-tier engine (bitmap wheel +
// overflow heap + same-instant batch) against refEngine, a deliberately
// naive pure-list reference that keeps every pending event in a flat slice
// and scans for the (when, seq) minimum on demand. The reference has no
// horizon, no cascade, and no batching, so any divergence in fire order,
// Cancel results, Pending counts, or the clock isolates a bug in the hybrid
// structure. Mirrors internal/guest/wheel_ref_test.go.

// refEvent is one pending occurrence in the reference model.
type refEvent struct {
	id   int
	when Time
	seq  uint64
}

// refEngine is the pure-list reference: total order is (when, seq), exactly
// the contract Engine documents.
type refEngine struct {
	now    Time
	seq    uint64
	events []refEvent
}

func (r *refEngine) at(id int, when Time) {
	r.events = append(r.events, refEvent{id: id, when: when, seq: r.seq})
	r.seq++
}

// cancel removes the pending event with the given id, reporting whether it
// was still queued (the Cancel return-value contract).
func (r *refEngine) cancel(id int) bool {
	for i, e := range r.events {
		if e.id == id {
			r.events = append(r.events[:i], r.events[i+1:]...)
			return true
		}
	}
	return false
}

// minIndex returns the index of the (when, seq)-minimal pending event, or
// -1 when idle.
func (r *refEngine) minIndex() int {
	best := -1
	for i, e := range r.events {
		if best < 0 || e.when < r.events[best].when ||
			(e.when == r.events[best].when && e.seq < r.events[best].seq) {
			best = i
		}
	}
	return best
}

func (r *refEngine) pop(i int) refEvent {
	e := r.events[i]
	r.events = append(r.events[:i], r.events[i+1:]...)
	return e
}

// step fires the single earliest event, mirroring Engine.Step.
func (r *refEngine) step() (int, bool) {
	i := r.minIndex()
	if i < 0 {
		return 0, false
	}
	e := r.pop(i)
	r.now = e.when
	return e.id, true
}

// stepBatch fires every event sharing the earliest timestamp in (when, seq)
// order, mirroring Engine.StepBatch.
func (r *refEngine) stepBatch() []int {
	i := r.minIndex()
	if i < 0 {
		return nil
	}
	t0 := r.events[i].when
	var ids []int
	for {
		i := r.minIndex()
		if i < 0 || r.events[i].when != t0 {
			break
		}
		e := r.pop(i)
		r.now = t0
		ids = append(ids, e.id)
	}
	return ids
}

// runUntil fires everything ≤ deadline then advances the clock, mirroring
// Engine.RunUntil.
func (r *refEngine) runUntil(deadline Time) []int {
	var ids []int
	for {
		i := r.minIndex()
		if i < 0 || r.events[i].when > deadline {
			break
		}
		e := r.pop(i)
		r.now = e.when
		ids = append(ids, e.id)
	}
	if r.now < deadline {
		r.now = deadline
	}
	return ids
}

// engineDiffShifts are the wheel horizons scripts run under: a tiny window
// (almost everything overflows to the heap and cascades back), the default
// neighborhood, and a huge window (almost everything lands in the wheel).
var engineDiffShifts = []uint{4, 10, 16, 24}

// runEngineDifferentialScript drives a hybrid engine and the reference
// through the same byte-coded script under the given horizon shift,
// failing on any divergence in fire order, Cancel results, Pending, or Now.
//
// Script format: operations are consumed two bytes at a time (op, arg).
//
//	op%8 == 0: schedule at now+arg%4 (same-instant / same-jiffy pileup)
//	op%8 == 1: schedule inside the wheel window
//	op%8 == 2: schedule far beyond the horizon (overflow heap, cascades)
//	op%8 == 3: edge deadlines — now exactly, Forever, near-Forever, or a
//	           re-arm (cancel a prior handle, schedule a replacement)
//	op%8 == 4: cancel the handle indexed by arg (result compared)
//	op%8 == 5: Step (single dispatch)
//	op%8 == 6: StepBatch (one simulated instant)
//	op%8 == 7: RunUntil a deadline derived from arg
func runEngineDifferentialScript(t *testing.T, shift uint, script []byte) {
	t.Helper()
	eng := NewEngineShift(1, shift)
	ref := &refEngine{}
	var (
		handles []Event
		fired   []int
	)
	// schedule registers one event on both sides under the next integer id.
	// Handlers append their id to fired, giving the observable order.
	schedule := func(when Time) {
		if when < eng.Now() {
			when = eng.Now() // At panics on the past; the script never asks for it
		}
		id := len(handles)
		handles = append(handles, eng.At(when, "diff", func(*Engine) {
			fired = append(fired, id)
		}))
		ref.at(id, when)
	}
	checkFired := func(op int, want []int) {
		t.Helper()
		if len(fired) != len(want) {
			t.Fatalf("shift %d op %d: fired %v, reference %v", shift, op, fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("shift %d op %d: fired %v, reference %v", shift, op, fired, want)
			}
		}
		fired = fired[:0]
	}
	bucket := Time(1) << shift
	for i := 0; i+1 < len(script); i += 2 {
		op := int(script[i] % 8)
		arg := Time(script[i+1])
		switch op {
		case 0:
			schedule(eng.Now() + arg%4)
		case 1:
			schedule(eng.Now() + arg*bucket/3 + arg%5)
		case 2:
			schedule(eng.Now() + (arg+1)*bucket*300)
		case 3:
			switch arg % 4 {
			case 0:
				schedule(eng.Now())
			case 1:
				schedule(Forever)
			case 2:
				schedule(Forever - arg)
			case 3: // re-arm: cancel a live-or-dead handle, then reschedule
				if len(handles) > 0 {
					id := int(arg) % len(handles)
					got, want := eng.Cancel(handles[id]), ref.cancel(id)
					if got != want {
						t.Fatalf("shift %d op %d: re-arm Cancel(%d) = %v, reference %v", shift, i, id, got, want)
					}
					schedule(eng.Now() + (arg+1)*bucket/2)
				}
			}
		case 4:
			if len(handles) == 0 {
				continue
			}
			id := int(arg) % len(handles)
			got, want := eng.Cancel(handles[id]), ref.cancel(id)
			if got != want {
				t.Fatalf("shift %d op %d: Cancel(%d) = %v, reference %v", shift, i, id, got, want)
			}
		case 5:
			ok := eng.Step()
			id, wantOK := ref.step()
			if ok != wantOK {
				t.Fatalf("shift %d op %d: Step = %v, reference %v", shift, i, ok, wantOK)
			}
			if ok {
				checkFired(i, []int{id})
			}
		case 6:
			n := eng.StepBatch()
			want := ref.stepBatch()
			if n != len(want) {
				t.Fatalf("shift %d op %d: StepBatch = %d, reference %d (%v)", shift, i, n, len(want), want)
			}
			checkFired(i, want)
		case 7:
			deadline := eng.Now() + (arg*arg+1)*bucket
			eng.RunUntil(deadline)
			checkFired(i, ref.runUntil(deadline))
		}
		if eng.Pending() != len(ref.events) {
			t.Fatalf("shift %d op %d: Pending = %d, reference %d", shift, i, eng.Pending(), len(ref.events))
		}
		if eng.Now() != ref.now {
			t.Fatalf("shift %d op %d: Now = %v, reference %v", shift, i, eng.Now(), ref.now)
		}
	}
	// Drain everything — including Forever-deadline events — and compare the
	// full tail order.
	eng.RunUntil(Forever)
	checkFired(len(script), ref.runUntil(Forever))
	if eng.Pending() != 0 {
		t.Fatalf("shift %d: %d events pending after full drain", shift, eng.Pending())
	}
}

// TestHybridEngineDifferentialRandomOps runs seeded random scripts against
// the reference under every horizon shift. Deterministic: failures
// reproduce by seed.
func TestHybridEngineDifferentialRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := NewRand(seed * 0x9e3779b97f4a7c15)
		script := make([]byte, 400)
		for i := range script {
			script[i] = byte(rng.Uint64())
		}
		for _, shift := range engineDiffShifts {
			t.Run(fmt.Sprintf("seed%d/shift%d", seed, shift), func(t *testing.T) {
				runEngineDifferentialScript(t, shift, script)
			})
		}
	}
}

// TestHybridEngineDifferentialTargeted exercises named adversarial
// patterns: same-instant pileups, beyond-horizon cascades, Forever and
// near-Forever deadlines, cancel-heavy churn, re-arm chains, and RunUntil
// jumps across idle gaps followed by earlier inserts (the spillBatch path).
func TestHybridEngineDifferentialTargeted(t *testing.T) {
	scripts := map[string][]byte{
		"same-instant-batches": {
			0, 0, 0, 1, 0, 2, 0, 0, 3, 0, 6, 0, 0, 3, 0, 3, 0, 3, 6, 0, 5, 0, 6, 0,
		},
		"beyond-horizon-cascade": {
			2, 1, 2, 9, 2, 200, 2, 255, 1, 7, 7, 200, 7, 255, 6, 0, 7, 255,
		},
		"forever-and-near-forever": {
			3, 1, 3, 2, 3, 6, 3, 1, 1, 9, 7, 10, 5, 0, 6, 0,
		},
		"cancel-heavy": {
			1, 3, 1, 7, 2, 40, 0, 1, 4, 0, 4, 1, 4, 2, 4, 3, 4, 0, 1, 9, 4, 5, 7, 30,
		},
		"re-arm-chains": {
			1, 5, 2, 50, 3, 3, 3, 7, 3, 11, 5, 0, 3, 15, 7, 40, 3, 19, 6, 0, 7, 255,
		},
		"idle-gap-then-earlier-insert": {
			// Far future event, RunUntil jumps the clock across the idle gap,
			// then near-now inserts land before the drained batch.
			2, 100, 7, 12, 0, 1, 0, 2, 1, 4, 6, 0, 7, 200,
		},
		"step-mixed-tiers": {
			0, 0, 1, 30, 2, 3, 2, 90, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0,
		},
	}
	for name, script := range scripts {
		for _, shift := range engineDiffShifts {
			t.Run(fmt.Sprintf("%s/shift%d", name, shift), func(t *testing.T) {
				runEngineDifferentialScript(t, shift, script)
			})
		}
	}
}

// FuzzHybridEngineDifferential fuzzes the hybrid engine against the
// pure-list reference. The first byte selects the horizon shift so the
// fuzzer explores tiny and huge wheel windows; the rest is the op script.
func FuzzHybridEngineDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0, 0, 3, 0, 6, 0})
	f.Add([]byte{1, 2, 1, 2, 9, 2, 200, 1, 7, 7, 200, 6, 0})
	f.Add([]byte{2, 3, 1, 3, 2, 3, 6, 1, 9, 7, 10, 5, 0})
	f.Add([]byte{3, 1, 3, 2, 40, 4, 0, 4, 1, 4, 0, 7, 30})
	f.Add([]byte{0, 2, 100, 7, 12, 0, 1, 1, 4, 6, 0, 7, 200})
	f.Add([]byte{1, 3, 3, 3, 7, 5, 0, 3, 15, 7, 40, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		shift := engineDiffShifts[int(data[0])%len(engineDiffShifts)]
		script := data[1:]
		if len(script) > 2048 {
			script = script[:2048]
		}
		runEngineDifferentialScript(t, shift, script)
	})
}
