package sim

import "testing"

func TestObserverSeesEveryDispatch(t *testing.T) {
	e := NewEngine(1)
	type obs struct {
		label string
		when  Time
	}
	var got []obs
	e.SetObserver(func(label string, when Time) {
		got = append(got, obs{label, when})
	})
	e.At(10, "a", func(*Engine) {})
	e.At(5, "b", func(*Engine) {})
	e.Run()
	if len(got) != 2 {
		t.Fatalf("observed %d dispatches, want 2", len(got))
	}
	if got[0] != (obs{"b", 5}) || got[1] != (obs{"a", 10}) {
		t.Fatalf("observations = %v", got)
	}
}

func TestObserverFiresBeforeHandler(t *testing.T) {
	e := NewEngine(1)
	order := ""
	e.SetObserver(func(label string, when Time) { order += "o" })
	e.After(1, "x", func(*Engine) { order += "h" })
	e.Step()
	if order != "oh" {
		t.Fatalf("order = %q, want observer before handler", order)
	}
}

func TestObserverRemoval(t *testing.T) {
	e := NewEngine(1)
	calls := 0
	e.SetObserver(func(string, Time) { calls++ })
	e.After(1, "x", func(*Engine) {})
	e.Step()
	e.SetObserver(nil)
	e.After(1, "y", func(*Engine) {})
	e.Step()
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (observer removed)", calls)
	}
}

// Canceled events never reach the observer — only real dispatches count.
func TestObserverSkipsCanceled(t *testing.T) {
	e := NewEngine(1)
	calls := 0
	e.SetObserver(func(string, Time) { calls++ })
	ev := e.After(1, "cancel-me", func(*Engine) {})
	e.Cancel(ev)
	e.After(2, "keep", func(*Engine) {})
	e.Run()
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// The steady-state dispatch cycle must stay allocation-free with an
// observer installed (the hook passes a string and a Time — no boxing).
func BenchmarkEngineScheduleFireObserved(b *testing.B) {
	e := NewEngine(1)
	var sink Time
	e.SetObserver(func(label string, when Time) { sink += when })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, "b", func(*Engine) {})
		e.Step()
	}
	_ = sink
}
