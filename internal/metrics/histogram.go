package metrics

import (
	"fmt"
	"math/bits"

	"paratick/internal/sim"
)

// HistBuckets is the number of log-scale buckets a Histogram carries. Bucket
// i covers durations in [2^(i-1), 2^i) nanoseconds (bucket 0 holds d ≤ 1ns),
// and the last bucket additionally absorbs anything larger. 44 buckets cover
// durations up to 2^43 ns (~2.4 simulated hours), comfortably past the
// 1000 s maxSimTime cap on any run, so the absorbing top bucket is
// unreachable in practice — the count exists to bound Counters' footprint:
// results are copied by value once per VM per run, and the histograms
// dominate that copy.
const HistBuckets = 44

// Histogram is a log2-bucketed latency/cost histogram. It is a plain value
// type — no pointers, no maps — so Counters embedding it stays copyable and
// mergeable, and recording is allocation-free on the simulator's hot path.
type Histogram struct {
	Buckets [HistBuckets]uint64
	N       uint64
	Sum     sim.Time
	MaxSeen sim.Time
}

// bucketOf maps a duration to its bucket index; durations past the bucket
// range clamp into the absorbing top bucket.
//
//paratick:noalloc
func bucketOf(d sim.Time) int {
	if d <= 1 {
		return 0
	}
	b := bits.Len64(uint64(d - 1))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration. Negative durations clamp to zero (they would
// indicate a model bug upstream; the histogram never corrupts).
//
//paratick:noalloc
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.Buckets[bucketOf(d)]++
	h.N++
	h.Sum += d
	if d > h.MaxSeen {
		h.MaxSeen = d
	}
}

// Merge accumulates other into h (used to merge per-VM or per-run counters).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.N += other.N
	h.Sum += other.Sum
	if other.MaxSeen > h.MaxSeen {
		h.MaxSeen = other.MaxSeen
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.N }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if h.N == 0 {
		return 0
	}
	return h.Sum / sim.Time(h.N)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() sim.Time { return h.MaxSeen }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the upper
// edge of the bucket containing that rank, clamped to the observed maximum.
// Log-scale buckets bound the relative error by 2×, which is plenty for the
// order-of-magnitude latency questions the reports answer.
//
// Out-of-domain arguments are defined, not garbage: an empty histogram
// yields 0 for every q; q ≤ 0 yields the smallest observed bucket's edge;
// q ≥ 1 yields the maximum; and a NaN q is treated as 0. (NaN previously
// slipped past both range clamps and hit a float→uint64 conversion whose
// result Go leaves implementation-defined — rendered percentiles could
// differ across platforms.)
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.N == 0 {
		return 0
	}
	if !(q > 0) { // catches q <= 0 and NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			upper := sim.Time(1) << uint(i)
			if i == 0 {
				upper = 1
			}
			return sim.MinTime(upper, h.MaxSeen)
		}
	}
	return h.MaxSeen
}

// P50, P95 and P99 are the quantiles the experiment reports print.
func (h *Histogram) P50() sim.Time { return h.Quantile(0.50) }
func (h *Histogram) P95() sim.Time { return h.Quantile(0.95) }
func (h *Histogram) P99() sim.Time { return h.Quantile(0.99) }

// String renders the histogram's summary line.
func (h *Histogram) String() string {
	if h.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v", h.N, h.P50(), h.P95(), h.P99(), h.MaxSeen)
}

// VectorClass groups interrupt vectors for injection-latency accounting.
// The hypervisor maps concrete IDT vectors onto these classes so the metrics
// package needs no dependency on the hardware model.
type VectorClass int

const (
	VecTimer      VectorClass = iota // guest LAPIC deadline timer (vector 236)
	VecParatick                      // virtual scheduler tick (vector 235)
	VecReschedule                    // wakeup IPI
	VecCallFunc                      // smp_call_function IPI
	VecDevice                        // emulated I/O device completion
	NumVectorClasses
)

var vectorClassNames = [NumVectorClasses]string{
	"timer", "paratick", "resched", "call-func", "io-device",
}

// String names the vector class.
func (c VectorClass) String() string {
	if c < 0 || c >= NumVectorClasses {
		return fmt.Sprintf("vec-class(%d)", int(c))
	}
	return vectorClassNames[c]
}

// ExitLatencyTable renders per-exit-reason handling-cost quantiles from the
// counters — the simulator's analogue of a perf exit-latency breakdown.
// Reasons with no observations are omitted; nil is returned when nothing was
// observed at all.
func ExitLatencyTable(title string, c *Counters) *Table {
	t := NewTable(title, "exit reason", "count", "p50", "p95", "p99", "max", "total")
	rows := 0
	for r := ExitReason(0); r < NumExitReasons; r++ {
		h := &c.ExitCost[r]
		if h.N == 0 {
			continue
		}
		rows++
		t.AddRow(r.String(), fmt.Sprintf("%d", h.N),
			h.P50().String(), h.P95().String(), h.P99().String(),
			h.Max().String(), h.Sum.String())
	}
	if rows == 0 {
		return nil
	}
	return t
}

// InjectLatencyTable renders per-vector-class injection latency quantiles:
// the delay between an interrupt being pended and its delivery at VM entry.
func InjectLatencyTable(title string, c *Counters) *Table {
	t := NewTable(title, "vector", "count", "p50", "p95", "p99", "max")
	rows := 0
	for v := VectorClass(0); v < NumVectorClasses; v++ {
		h := &c.InjectLatency[v]
		if h.N == 0 {
			continue
		}
		rows++
		t.AddRow(v.String(), fmt.Sprintf("%d", h.N),
			h.P50().String(), h.P95().String(), h.P99().String(), h.Max().String())
	}
	if rows == 0 {
		return nil
	}
	return t
}
