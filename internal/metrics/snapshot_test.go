package metrics

import (
	"math"
	"testing"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

// TestQuantileEdgeCases pins the defined behaviour for out-of-domain
// arguments: empty histograms, q outside [0,1], and NaN q. NaN previously
// escaped both range clamps into a float→uint64 conversion whose result is
// implementation-defined.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var h Histogram
	h.Observe(3 * sim.Microsecond)
	h.Observe(40 * sim.Microsecond)
	h.Observe(900 * sim.Microsecond)

	min, max := h.Quantile(0), h.Quantile(1)
	if min != sim.Time(4096) { // upper edge of the bucket holding 3µs
		t.Errorf("Quantile(0) = %v, want the smallest bucket's edge (4096ns)", min)
	}
	if max != h.Max() {
		t.Errorf("Quantile(1) = %v, want max %v", max, h.Max())
	}
	if got := h.Quantile(-0.5); got != min {
		t.Errorf("Quantile(-0.5) = %v, want %v (clamped to 0)", got, min)
	}
	if got := h.Quantile(1.5); got != max {
		t.Errorf("Quantile(1.5) = %v, want %v (clamped to 1)", got, max)
	}
	if got := h.Quantile(math.NaN()); got != min {
		t.Errorf("Quantile(NaN) = %v, want %v (defined as q=0)", got, min)
	}
	if got := h.Quantile(math.Inf(1)); got != max {
		t.Errorf("Quantile(+Inf) = %v, want %v", got, max)
	}
	if got := h.Quantile(math.Inf(-1)); got != min {
		t.Errorf("Quantile(-Inf) = %v, want %v", got, min)
	}
}

func TestHistogramSaveLoad(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(sim.Time(i) * sim.Microsecond)
	}
	var enc snap.Encoder
	h.Save(&enc)
	var got Histogram
	if err := got.Load(snap.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
}

func TestCountersSaveLoad(t *testing.T) {
	var c Counters
	c.AddExit(ExitHLT)
	c.AddExit(ExitMSRWrite)
	c.Injections = 7
	c.VirtualTicks = 3
	c.GuestTicks = 11
	c.HostOverhead = 5 * sim.Millisecond
	c.GuestUseful = 80 * sim.Millisecond
	c.IOReads = 4
	c.IOBytesWritten = 4096
	c.ExitCost[ExitHLT].Observe(2 * sim.Microsecond)
	c.InjectLatency[VecDevice].Observe(9 * sim.Microsecond)
	c.TickInterval.Observe(4 * sim.Millisecond)

	var enc snap.Encoder
	c.Save(&enc)
	var got Counters
	if err := got.Load(snap.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != c {
		t.Fatalf("round trip mismatch")
	}

	// Determinism of the encoding itself: same state, same bytes.
	var enc2 snap.Encoder
	c.Save(&enc2)
	if string(enc.Bytes()) != string(enc2.Bytes()) {
		t.Fatal("re-encoding the same counters produced different bytes")
	}
}
