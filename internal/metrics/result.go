package metrics

import (
	"fmt"
	"math"

	"paratick/internal/sim"
)

// Result captures the outcome of one simulated run: what ran, under which
// tick mode, its counters, and its wall-clock (simulated) execution time.
type Result struct {
	Name     string // workload identifier, e.g. "parsec/dedup"
	Mode     string // tick mode, e.g. "dynticks" or "paratick"
	Counters Counters
	WallTime sim.Time // application execution time
	// Events is the number of simulation-engine events the run dispatched —
	// the simulator's own cost metric, aggregated by Meter into events/sec.
	Events uint64
}

// Throughput returns useful work per busy cycle — the efficiency the paper's
// "system throughput" metric tracks: the same work done in fewer total
// cycles means higher throughput (§6.1).
func (r Result) Throughput() float64 {
	busy := r.Counters.BusyCycles()
	if busy <= 0 {
		return 0
	}
	return float64(r.Counters.GuestUseful) / float64(busy)
}

// IOThroughputMBps returns I/O throughput in MB/s of simulated time, the
// direct throughput measurement used for the fio experiments (§6.3).
func (r Result) IOThroughputMBps() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Counters.IOBytes()) / 1e6 / r.WallTime.Seconds()
}

// Comparison holds the paper's three headline metrics for one workload as
// relative changes of an optimized run against a baseline run:
//
//	ExitsDelta      — relative change in total VM exits (negative = fewer)
//	ThroughputDelta — relative change in system throughput (positive = better)
//	RuntimeDelta    — relative change in execution time (negative = faster)
type Comparison struct {
	Name            string
	Baseline        Result
	Optimized       Result
	ExitsDelta      float64
	TimerExitsDelta float64
	ThroughputDelta float64
	RuntimeDelta    float64
}

// Compare derives the paper's relative metrics for optimized vs baseline.
// Throughput change is computed from busy cycles for the same completed
// work: doing it in k× fewer cycles = k× higher throughput.
func Compare(baseline, optimized Result) Comparison {
	c := Comparison{Name: baseline.Name, Baseline: baseline, Optimized: optimized}
	c.ExitsDelta = relChange(float64(optimized.Counters.TotalExits()), float64(baseline.Counters.TotalExits()))
	c.TimerExitsDelta = relChange(float64(optimized.Counters.TimerExits()), float64(baseline.Counters.TimerExits()))
	// Throughput = work/cycles. With equal work, throughput ratio is the
	// inverse cycle ratio.
	bc, oc := float64(baseline.Counters.BusyCycles()), float64(optimized.Counters.BusyCycles())
	if oc > 0 {
		c.ThroughputDelta = bc/oc - 1
	}
	c.RuntimeDelta = relChange(float64(optimized.WallTime), float64(baseline.WallTime))
	return c
}

// relChange returns (new-old)/old, or 0 when old is 0.
func relChange(new, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// Pct formats a fraction as a signed percentage, e.g. -0.5 → "-50%".
func Pct(f float64) string {
	return fmt.Sprintf("%+.0f%%", f*100)
}

// Pct1 formats a fraction as a signed percentage with one decimal.
func Pct1(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// Aggregate summarizes a set of comparisons with arithmetic means of the
// relative deltas, matching how the paper aggregates "average performance
// improvement across all benchmarks" (Tables 2–4).
type Aggregate struct {
	N               int
	ExitsDelta      float64
	TimerExitsDelta float64
	ThroughputDelta float64
	RuntimeDelta    float64
}

// Aggregated computes the mean deltas over comps.
func Aggregated(comps []Comparison) Aggregate {
	agg := Aggregate{N: len(comps)}
	if len(comps) == 0 {
		return agg
	}
	for _, c := range comps {
		agg.ExitsDelta += c.ExitsDelta
		agg.TimerExitsDelta += c.TimerExitsDelta
		agg.ThroughputDelta += c.ThroughputDelta
		agg.RuntimeDelta += c.RuntimeDelta
	}
	n := float64(len(comps))
	agg.ExitsDelta /= n
	agg.TimerExitsDelta /= n
	agg.ThroughputDelta /= n
	agg.RuntimeDelta /= n
	return agg
}

// GeoMeanRatios computes the geometric mean of (1+delta) ratios and returns
// it as a delta. Robust against a single outlier benchmark; reported
// alongside the arithmetic mean.
func GeoMeanRatios(deltas []float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range deltas {
		r := 1 + d
		if r <= 0 {
			r = 1e-9
		}
		sum += math.Log(r)
	}
	return math.Exp(sum/float64(len(deltas))) - 1
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
