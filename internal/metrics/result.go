package metrics

import (
	"fmt"
	"math"

	"paratick/internal/sim"
)

// Result captures the outcome of one simulated run: what ran, under which
// tick mode, its counters, and its wall-clock (simulated) execution time.
type Result struct {
	Name     string // workload identifier, e.g. "parsec/dedup"
	Mode     string // tick mode, e.g. "dynticks" or "paratick"
	Counters Counters
	WallTime sim.Time // application execution time
	// Events is the number of simulation-engine events the run dispatched —
	// the simulator's own cost metric, aggregated by Meter into events/sec.
	Events uint64
}

// Throughput returns useful work per busy cycle — the efficiency the paper's
// "system throughput" metric tracks: the same work done in fewer total
// cycles means higher throughput (§6.1).
func (r Result) Throughput() float64 {
	busy := r.Counters.BusyCycles()
	if busy <= 0 {
		return 0
	}
	return float64(r.Counters.GuestUseful) / float64(busy)
}

// IOThroughputMBps returns I/O throughput in MB/s of simulated time, the
// direct throughput measurement used for the fio experiments (§6.3).
func (r Result) IOThroughputMBps() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Counters.IOBytes()) / 1e6 / r.WallTime.Seconds()
}

// Comparison holds the paper's three headline metrics for one workload as
// relative changes of an optimized run against a baseline run:
//
//	ExitsDelta      — relative change in total VM exits (negative = fewer)
//	ThroughputDelta — relative change in system throughput (positive = better)
//	RuntimeDelta    — relative change in execution time (negative = faster)
type Comparison struct {
	Name            string
	Baseline        Result
	Optimized       Result
	ExitsDelta      float64
	TimerExitsDelta float64
	ThroughputDelta float64
	RuntimeDelta    float64
}

// Compare derives the paper's relative metrics for optimized vs baseline.
// Throughput change is computed from busy cycles for the same completed
// work: doing it in k× fewer cycles = k× higher throughput.
func Compare(baseline, optimized Result) Comparison {
	c := Comparison{Name: baseline.Name, Baseline: baseline, Optimized: optimized}
	c.ExitsDelta = relChange(float64(optimized.Counters.TotalExits()), float64(baseline.Counters.TotalExits()))
	c.TimerExitsDelta = relChange(float64(optimized.Counters.TimerExits()), float64(baseline.Counters.TimerExits()))
	// Throughput = work/cycles. With equal work, throughput ratio is the
	// inverse cycle ratio.
	bc, oc := float64(baseline.Counters.BusyCycles()), float64(optimized.Counters.BusyCycles())
	if oc > 0 {
		c.ThroughputDelta = bc/oc - 1
	}
	c.RuntimeDelta = relChange(float64(optimized.WallTime), float64(baseline.WallTime))
	return c
}

// relChange returns (new-old)/old. A zero baseline makes the relative change
// undefined: 0 → 0 is genuinely "no change", but 0 → n>0 is an unbounded
// regression, and reporting it as 0 ("+0%") would mask it in a reproduction
// table. It is returned as NaN and rendered as "n/a" by Pct/Pct1; Aggregated
// skips NaN terms.
func relChange(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.NaN()
	}
	return (new - old) / old
}

// Pct formats a fraction as a signed percentage, e.g. -0.5 → "-50%".
// Undefined deltas (NaN, from a zero baseline) render as "n/a".
func Pct(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", f*100)
}

// Pct1 formats a fraction as a signed percentage with one decimal, or "n/a"
// for an undefined (NaN) delta.
func Pct1(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", f*100)
}

// Aggregate summarizes a set of comparisons with arithmetic means of the
// relative deltas, matching how the paper aggregates "average performance
// improvement across all benchmarks" (Tables 2–4).
type Aggregate struct {
	N               int
	ExitsDelta      float64
	TimerExitsDelta float64
	ThroughputDelta float64
	RuntimeDelta    float64
}

// Aggregated computes the mean deltas over comps. Undefined (NaN) deltas —
// zero-baseline comparisons — are skipped per metric so one degenerate
// benchmark cannot poison a table-wide mean; a metric undefined in every
// comparison stays NaN (rendered "n/a").
func Aggregated(comps []Comparison) Aggregate {
	agg := Aggregate{N: len(comps)}
	if len(comps) == 0 {
		return agg
	}
	var exits, timer, thr, rt nanMean
	for _, c := range comps {
		exits.add(c.ExitsDelta)
		timer.add(c.TimerExitsDelta)
		thr.add(c.ThroughputDelta)
		rt.add(c.RuntimeDelta)
	}
	agg.ExitsDelta = exits.mean()
	agg.TimerExitsDelta = timer.mean()
	agg.ThroughputDelta = thr.mean()
	agg.RuntimeDelta = rt.mean()
	return agg
}

// nanMean accumulates a mean over the defined (non-NaN) terms only.
type nanMean struct {
	sum float64
	n   int
}

func (m *nanMean) add(x float64) {
	if math.IsNaN(x) {
		return
	}
	m.sum += x
	m.n++
}

func (m *nanMean) mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}

// GeoMeanRatios computes the geometric mean of (1+delta) ratios and returns
// it as a delta. Robust against a single outlier benchmark; reported
// alongside the arithmetic mean.
func GeoMeanRatios(deltas []float64) float64 {
	if len(deltas) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, d := range deltas {
		if math.IsNaN(d) {
			continue // undefined (zero-baseline) delta: no defined ratio
		}
		r := 1 + d
		if r <= 0 {
			r = 1e-9
		}
		sum += math.Log(r)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum/float64(n)) - 1
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
