package metrics

import "sync/atomic"

// Meter aggregates engine telemetry across concurrently executing
// simulation runs. The parallel experiment runner gives every run its own
// engine; the meter is the one piece of shared state, so it is atomic. A
// nil *Meter is valid and records nothing, letting call sites skip guards.
type Meter struct {
	runs   atomic.Uint64
	events atomic.Uint64
}

// AddRun records one completed simulation run that dispatched the given
// number of engine events.
//
//paratick:noalloc
func (m *Meter) AddRun(events uint64) {
	if m == nil {
		return
	}
	m.runs.Add(1)
	m.events.Add(events)
}

// Runs returns the number of runs recorded so far.
func (m *Meter) Runs() uint64 {
	if m == nil {
		return 0
	}
	return m.runs.Load()
}

// Events returns the total number of engine events dispatched across all
// recorded runs.
func (m *Meter) Events() uint64 {
	if m == nil {
		return 0
	}
	return m.events.Load()
}

// EventsPerSec converts the accumulated event count into a rate over the
// given wall-clock duration in seconds (0 when the duration is not
// positive).
func (m *Meter) EventsPerSec(wallSeconds float64) float64 {
	if m == nil || wallSeconds <= 0 {
		return 0
	}
	return float64(m.Events()) / wallSeconds
}
