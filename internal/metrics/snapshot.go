package metrics

// Checkpoint encoding of the measurement plane. Counters and Histograms
// are plain value types, so Save/Load are straight field dumps — but they
// go through snap rather than raw memory copies so the on-disk format
// stays stable even if Go reorders struct layout or fields grow.

import (
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// histWireBuckets is the on-disk bucket count. The wire format predates the
// HistBuckets shrink and keeps 64 slots so committed checkpoints stay
// byte-identical: the in-memory histogram covers every reachable duration
// (see HistBuckets), so the padding slots are always zero.
const histWireBuckets = 64

// Save serializes the histogram.
func (h *Histogram) Save(enc *snap.Encoder) {
	for _, b := range h.Buckets {
		enc.U64(b)
	}
	for i := len(h.Buckets); i < histWireBuckets; i++ {
		enc.U64(0)
	}
	enc.U64(h.N)
	enc.I64(int64(h.Sum))
	enc.I64(int64(h.MaxSeen))
}

// Load restores state saved by Save.
func (h *Histogram) Load(dec *snap.Decoder) error {
	for i := range h.Buckets {
		h.Buckets[i] = dec.U64()
	}
	for i := len(h.Buckets); i < histWireBuckets; i++ {
		// Padding slots are zero for any checkpoint this build wrote; a
		// checkpoint from a wider-histogram build folds its tail into the
		// absorbing top bucket rather than silently dropping counts.
		h.Buckets[HistBuckets-1] += dec.U64()
	}
	h.N = dec.U64()
	h.Sum = sim.Time(dec.I64())
	h.MaxSeen = sim.Time(dec.I64())
	return dec.Err()
}

// Save serializes the full counter set.
func (c *Counters) Save(enc *snap.Encoder) {
	enc.Section("counters")
	for _, v := range c.Exits {
		enc.U64(v)
	}
	enc.U64(c.Injections)
	enc.U64(c.VirtualTicks)
	enc.U64(c.GuestTicks)
	enc.U64(c.TimerArms)
	enc.U64(c.IdleEnters)
	enc.U64(c.IdleExits)
	enc.U64(c.Wakeups)
	enc.U64(c.ContextSw)
	enc.I64(int64(c.HostOverhead))
	enc.I64(int64(c.GuestUseful))
	enc.I64(int64(c.GuestKernel))
	enc.U64(c.IOReads)
	enc.U64(c.IOWrites)
	enc.U64(c.IOBytesRead)
	enc.U64(c.IOBytesWritten)
	for i := range c.ExitCost {
		c.ExitCost[i].Save(enc)
	}
	for i := range c.InjectLatency {
		c.InjectLatency[i].Save(enc)
	}
	c.TickInterval.Save(enc)
}

// Load restores state saved by Save.
func (c *Counters) Load(dec *snap.Decoder) error {
	dec.Section("counters")
	for i := range c.Exits {
		c.Exits[i] = dec.U64()
	}
	c.Injections = dec.U64()
	c.VirtualTicks = dec.U64()
	c.GuestTicks = dec.U64()
	c.TimerArms = dec.U64()
	c.IdleEnters = dec.U64()
	c.IdleExits = dec.U64()
	c.Wakeups = dec.U64()
	c.ContextSw = dec.U64()
	c.HostOverhead = sim.Time(dec.I64())
	c.GuestUseful = sim.Time(dec.I64())
	c.GuestKernel = sim.Time(dec.I64())
	c.IOReads = dec.U64()
	c.IOWrites = dec.U64()
	c.IOBytesRead = dec.U64()
	c.IOBytesWritten = dec.U64()
	for i := range c.ExitCost {
		if err := c.ExitCost[i].Load(dec); err != nil {
			return err
		}
	}
	for i := range c.InjectLatency {
		if err := c.InjectLatency[i].Load(dec); err != nil {
			return err
		}
	}
	return c.TickInterval.Load(dec)
}
