package metrics

import (
	"strings"
	"testing"

	"paratick/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.String() != "n=0" {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at 1us, 10 slow at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(sim.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(sim.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.P50(); p50 > 2*sim.Microsecond {
		t.Fatalf("p50 = %v, want ≈1us", p50)
	}
	// p95 and p99 land in the slow tail; log buckets bound the error by 2×.
	if p95 := h.P95(); p95 < sim.Millisecond/2 || p95 > 2*sim.Millisecond {
		t.Fatalf("p95 = %v, want ≈1ms", p95)
	}
	if h.Max() != sim.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Mean() == 0 {
		t.Fatal("mean = 0")
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	var h Histogram
	h.Observe(3) // bucket upper edge is 4; quantile must clamp to 3
	if q := h.P99(); q != 3 {
		t.Fatalf("p99 = %v, want clamped max 3", q)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Sum != 0 {
		t.Fatalf("negative observation mishandled: %+v", h)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(100)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1000 {
		t.Fatalf("merged max = %v", a.Max())
	}
	if a.Sum != 1110 {
		t.Fatalf("merged sum = %v", a.Sum)
	}
}

func TestBucketOfMonotone(t *testing.T) {
	prev := bucketOf(0)
	for d := sim.Time(1); d < 1<<20; d *= 3 {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", d, b, prev)
		}
		prev = b
	}
	if bucketOf(sim.Time(1)) != 0 {
		t.Fatal("1ns must land in bucket 0")
	}
	if bucketOf(sim.Time(2)) != 1 {
		t.Fatal("2ns must land in bucket 1")
	}
}

func TestVectorClassNames(t *testing.T) {
	if VecParatick.String() != "paratick" || VecDevice.String() != "io-device" {
		t.Fatal("vector class names")
	}
	if !strings.HasPrefix(VectorClass(99).String(), "vec-class(") {
		t.Fatal("unknown vector class name")
	}
}

func TestExitLatencyTable(t *testing.T) {
	var c Counters
	if ExitLatencyTable("t", &c) != nil {
		t.Fatal("empty counters must render no table")
	}
	c.ExitCost[ExitMSRWrite].Observe(2 * sim.Microsecond)
	c.ExitCost[ExitMSRWrite].Observe(4 * sim.Microsecond)
	tbl := ExitLatencyTable("exit latency", &c)
	if tbl == nil {
		t.Fatal("expected a table")
	}
	s := tbl.String()
	if !strings.Contains(s, "msr-write") || !strings.Contains(s, "p99") {
		t.Fatalf("table missing content:\n%s", s)
	}
}

func TestInjectLatencyTable(t *testing.T) {
	var c Counters
	if InjectLatencyTable("t", &c) != nil {
		t.Fatal("empty counters must render no table")
	}
	c.InjectLatency[VecTimer].Observe(sim.Microsecond)
	tbl := InjectLatencyTable("inject latency", &c)
	if tbl == nil || !strings.Contains(tbl.String(), "timer") {
		t.Fatal("inject latency table missing timer row")
	}
}

func TestCountersAddMergesHistograms(t *testing.T) {
	var a, b Counters
	a.ExitCost[ExitHLT].Observe(100)
	b.ExitCost[ExitHLT].Observe(200)
	b.TickInterval.Observe(4 * sim.Millisecond)
	b.InjectLatency[VecDevice].Observe(50)
	a.Add(&b)
	if a.ExitCost[ExitHLT].Count() != 2 {
		t.Fatalf("exit cost count = %d", a.ExitCost[ExitHLT].Count())
	}
	if a.TickInterval.Count() != 1 || a.InjectLatency[VecDevice].Count() != 1 {
		t.Fatal("histograms not merged by Add")
	}
}
