package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

func TestExitReasonStrings(t *testing.T) {
	cases := map[ExitReason]string{
		ExitMSRWrite:     "msr-write",
		ExitPreemptTimer: "preempt-timer",
		ExitExternalIRQ:  "external-irq",
		ExitHLT:          "hlt",
		ExitIOKick:       "io-kick",
		ExitIPI:          "ipi",
		ExitHypercall:    "hypercall",
		ExitPLE:          "ple",
		ExitTimerSteal:   "timer-steal",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
	if got := ExitReason(99).String(); got != "exit(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestIsTimerRelated(t *testing.T) {
	if !ExitMSRWrite.IsTimerRelated() || !ExitPreemptTimer.IsTimerRelated() || !ExitTimerSteal.IsTimerRelated() {
		t.Error("timer exits not classified as timer-related")
	}
	for _, r := range []ExitReason{ExitExternalIRQ, ExitHLT, ExitIOKick, ExitIPI, ExitHypercall, ExitPLE} {
		if r.IsTimerRelated() {
			t.Errorf("%v wrongly classified as timer-related", r)
		}
	}
}

func TestCountersTotals(t *testing.T) {
	var c Counters
	c.AddExit(ExitMSRWrite)
	c.AddExit(ExitMSRWrite)
	c.AddExit(ExitPreemptTimer)
	c.AddExit(ExitHLT)
	c.AddExit(ExitIOKick)
	if c.TotalExits() != 5 {
		t.Fatalf("TotalExits = %d", c.TotalExits())
	}
	if c.TimerExits() != 3 {
		t.Fatalf("TimerExits = %d", c.TimerExits())
	}
}

func TestBusyCycles(t *testing.T) {
	c := Counters{HostOverhead: 10, GuestUseful: 100, GuestKernel: 5}
	if c.BusyCycles() != 115 {
		t.Fatalf("BusyCycles = %v", c.BusyCycles())
	}
	if c.OverheadCycles() != 15 {
		t.Fatalf("OverheadCycles = %v", c.OverheadCycles())
	}
}

func TestIOTotals(t *testing.T) {
	c := Counters{IOReads: 3, IOWrites: 2, IOBytesRead: 4096, IOBytesWritten: 8192}
	if c.IOOps() != 5 {
		t.Fatalf("IOOps = %d", c.IOOps())
	}
	if c.IOBytes() != 12288 {
		t.Fatalf("IOBytes = %d", c.IOBytes())
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{GuestTicks: 1, HostOverhead: 10, IOReads: 2}
	a.Exits[ExitHLT] = 5
	b := Counters{GuestTicks: 2, HostOverhead: 20, IOReads: 3}
	b.Exits[ExitHLT] = 7
	b.Exits[ExitIPI] = 1
	a.Add(&b)
	if a.GuestTicks != 3 || a.HostOverhead != 30 || a.IOReads != 5 {
		t.Fatalf("Add merged wrong: %+v", a)
	}
	if a.Exits[ExitHLT] != 12 || a.Exits[ExitIPI] != 1 {
		t.Fatalf("Add exits wrong: %v", a.Exits)
	}
}

func TestCountersSummary(t *testing.T) {
	var c Counters
	c.AddExit(ExitMSRWrite)
	c.IOReads = 1
	c.IOBytesRead = 4096
	s := c.Summary()
	for _, want := range []string{"VM exits: 1 total", "msr-write", "io: 1 reads"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompare(t *testing.T) {
	base := Result{Name: "w", Mode: "dynticks", WallTime: 100}
	base.Counters.Exits[ExitMSRWrite] = 100
	base.Counters.Exits[ExitHLT] = 100
	base.Counters.GuestUseful = 800
	base.Counters.HostOverhead = 200

	opt := Result{Name: "w", Mode: "paratick", WallTime: 90}
	opt.Counters.Exits[ExitMSRWrite] = 20
	opt.Counters.Exits[ExitHLT] = 100
	opt.Counters.GuestUseful = 800
	opt.Counters.HostOverhead = 0

	c := Compare(base, opt)
	if !close(c.ExitsDelta, -0.4) {
		t.Errorf("ExitsDelta = %v, want -0.4", c.ExitsDelta)
	}
	if !close(c.TimerExitsDelta, -0.8) {
		t.Errorf("TimerExitsDelta = %v, want -0.8", c.TimerExitsDelta)
	}
	if !close(c.ThroughputDelta, 0.25) { // 1000/800 - 1
		t.Errorf("ThroughputDelta = %v, want 0.25", c.ThroughputDelta)
	}
	if !close(c.RuntimeDelta, -0.1) {
		t.Errorf("RuntimeDelta = %v, want -0.1", c.RuntimeDelta)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	var base, opt Result
	c := Compare(base, opt)
	if c.ExitsDelta != 0 || c.ThroughputDelta != 0 || c.RuntimeDelta != 0 {
		t.Errorf("zero baselines should give zero deltas: %+v", c)
	}
}

func TestThroughput(t *testing.T) {
	r := Result{}
	r.Counters.GuestUseful = 80
	r.Counters.HostOverhead = 20
	if !close(r.Throughput(), 0.8) {
		t.Errorf("Throughput = %v", r.Throughput())
	}
	var empty Result
	if empty.Throughput() != 0 {
		t.Error("empty Throughput should be 0")
	}
}

func TestIOThroughputMBps(t *testing.T) {
	r := Result{WallTime: sim.Second}
	r.Counters.IOBytesRead = 100e6
	if !close(r.IOThroughputMBps(), 100) {
		t.Errorf("IOThroughputMBps = %v", r.IOThroughputMBps())
	}
	var empty Result
	if empty.IOThroughputMBps() != 0 {
		t.Error("empty IOThroughputMBps should be 0")
	}
}

func TestAggregated(t *testing.T) {
	comps := []Comparison{
		{ExitsDelta: -0.4, ThroughputDelta: 0.10, RuntimeDelta: -0.02},
		{ExitsDelta: -0.6, ThroughputDelta: 0.20, RuntimeDelta: -0.04},
	}
	agg := Aggregated(comps)
	if agg.N != 2 {
		t.Fatalf("N = %d", agg.N)
	}
	if !close(agg.ExitsDelta, -0.5) || !close(agg.ThroughputDelta, 0.15) || !close(agg.RuntimeDelta, -0.03) {
		t.Errorf("aggregate = %+v", agg)
	}
	if empty := Aggregated(nil); empty.N != 0 || empty.ExitsDelta != 0 {
		t.Error("empty aggregate should be zero")
	}
}

func TestGeoMeanRatios(t *testing.T) {
	if !close(GeoMeanRatios([]float64{0.1, 0.1}), 0.1) {
		t.Error("geomean of equal ratios should equal them")
	}
	// geomean of (2x, 0.5x) is 1x → delta 0.
	if !close(GeoMeanRatios([]float64{1.0, -0.5}), 0) {
		t.Errorf("GeoMeanRatios([2x,0.5x]) = %v", GeoMeanRatios([]float64{1.0, -0.5}))
	}
	if GeoMeanRatios(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	// A pathological -100% delta must not produce NaN/Inf.
	v := GeoMeanRatios([]float64{-1})
	if v != v || v < -1 {
		t.Errorf("degenerate geomean = %v", v)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !close(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean broken")
	}
}

func TestPctFormats(t *testing.T) {
	if Pct(-0.5) != "-50%" {
		t.Errorf("Pct(-0.5) = %q", Pct(-0.5))
	}
	if Pct(0.07) != "+7%" {
		t.Errorf("Pct(0.07) = %q", Pct(0.07))
	}
	if Pct1(0.125) != "+12.5%" {
		t.Errorf("Pct1(0.125) = %q", Pct1(0.125))
	}
}

// Property: Add is commutative in its observable totals.
func TestCountersAddCommutativeProperty(t *testing.T) {
	f := func(e1, e2 [NumExitReasons]uint8, g1, g2 uint16) bool {
		var a, b Counters
		for i := range e1 {
			a.Exits[i] = uint64(e1[i])
			b.Exits[i] = uint64(e2[i])
		}
		a.GuestTicks, b.GuestTicks = uint64(g1), uint64(g2)
		x := a
		x.Add(&b)
		y2 := b
		y2.Add(&a)
		return x.TotalExits() == y2.TotalExits() &&
			x.TimerExits() == y2.TimerExits() &&
			x.GuestTicks == y2.GuestTicks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty stats not zero")
	}
	s = ComputeStats([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single-sample stats: %+v", s)
	}
	s = ComputeStats([]float64{1, 2, 3, 4})
	if !close(s.Mean, 2.5) || s.Min != 1 || s.Max != 4 {
		t.Fatalf("stats: %+v", s)
	}
	// Sample std of 1,2,3,4 = sqrt(5/3) ≈ 1.29099.
	if !close(s.Std, 1.2909944487358056) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestStatsPctRange(t *testing.T) {
	one := ComputeStats([]float64{-0.492})
	if one.PctRange() != "-49.2%" {
		t.Errorf("single-sample PctRange = %q", one.PctRange())
	}
	many := ComputeStats([]float64{-0.48, -0.50, -0.52})
	got := many.PctRange()
	if !strings.Contains(got, "-50.0%") || !strings.Contains(got, "±") {
		t.Errorf("multi-sample PctRange = %q", got)
	}
}

func TestSpreadOf(t *testing.T) {
	aggs := []Aggregate{
		{ExitsDelta: -0.4, ThroughputDelta: 0.1, RuntimeDelta: -0.02},
		{ExitsDelta: -0.6, ThroughputDelta: 0.2, RuntimeDelta: -0.04},
	}
	sp := SpreadOf(aggs)
	if !close(sp.Exits.Mean, -0.5) || !close(sp.Throughput.Mean, 0.15) {
		t.Fatalf("spread means: %+v", sp)
	}
	if sp.Exits.N != 2 {
		t.Fatal("spread N")
	}
	if !strings.Contains(sp.String(), "n=2") {
		t.Errorf("spread string = %q", sp.String())
	}
}
