package metrics

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Table X: demo", "name", "exits", "delta")
	tb.AddRow("dedup", "1234", "-50%")
	tb.AddRow("x264", "99", "+7%")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Table X: demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "exits") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	if !strings.Contains(s, "dedup") || !strings.Contains(s, "-50%") {
		t.Errorf("rows missing:\n%s", s)
	}
	// Columns align: "exits" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "exits")
	if !strings.HasPrefix(lines[3][idx:], "1234") {
		t.Errorf("column misaligned:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z")
	s := tb.String()
	if !strings.Contains(s, "only") || !strings.Contains(s, "z") {
		t.Errorf("ragged rows mishandled:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "note")
	tb.AddRow("a", `has "quotes", and comma`)
	csv := tb.CSV()
	want := "name,note\na,\"has \"\"quotes\"\", and comma\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure N: relative exits")
	c.Add("dedup", -0.5)
	c.Add("x264", 0.25)
	c.Add("zero", 0)
	s := c.String()
	if !strings.Contains(s, "Figure N") {
		t.Errorf("missing title:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), s)
	}
	// dedup bar is left of the axis; x264 bar right of the axis.
	dedupLine, x264Line, zeroLine := lines[1], lines[2], lines[3]
	if !strings.Contains(dedupLine, "#|") && !strings.Contains(dedupLine, "# |") {
		if strings.Index(dedupLine, "#") > strings.Index(dedupLine, "|") {
			t.Errorf("negative bar on wrong side: %q", dedupLine)
		}
	}
	if strings.Contains(dedupLine, "|#") {
		t.Errorf("negative bar grew right: %q", dedupLine)
	}
	if !strings.Contains(x264Line, "|#") {
		t.Errorf("positive bar missing right of axis: %q", x264Line)
	}
	if strings.Count(zeroLine, "#") != 0 {
		t.Errorf("zero bar should be empty: %q", zeroLine)
	}
	if !strings.Contains(dedupLine, "-50.0%") || !strings.Contains(x264Line, "+25.0%") {
		t.Errorf("percent labels missing:\n%s", s)
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("flat")
	c.Add("a", 0)
	s := c.String()
	if strings.Contains(s, "#") {
		t.Errorf("all-zero chart drew bars:\n%s", s)
	}
}

func TestBarChartScales(t *testing.T) {
	c := NewBarChart("scaled")
	c.Add("big", -1.0)
	c.Add("small", -0.5)
	s := c.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	big := strings.Count(lines[1], "#")
	small := strings.Count(lines[2], "#")
	if big != 30 {
		t.Errorf("largest bar should fill half-width 30, got %d", big)
	}
	if small != 15 {
		t.Errorf("half-magnitude bar should be 15, got %d", small)
	}
}
