package metrics

import (
	"sync"
	"testing"
)

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.AddRun(100) // must not panic
	if m.Runs() != 0 || m.Events() != 0 {
		t.Fatalf("nil meter reported runs=%d events=%d", m.Runs(), m.Events())
	}
	if got := m.EventsPerSec(1); got != 0 {
		t.Fatalf("nil meter EventsPerSec = %v, want 0", got)
	}
}

func TestMeterAccumulatesConcurrently(t *testing.T) {
	m := &Meter{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.AddRun(10)
			}
		}()
	}
	wg.Wait()
	if m.Runs() != 800 {
		t.Fatalf("Runs = %d, want 800", m.Runs())
	}
	if m.Events() != 8000 {
		t.Fatalf("Events = %d, want 8000", m.Events())
	}
	if got := m.EventsPerSec(2); got != 4000 {
		t.Fatalf("EventsPerSec(2) = %v, want 4000", got)
	}
	if got := m.EventsPerSec(0); got != 0 {
		t.Fatalf("EventsPerSec(0) = %v, want 0", got)
	}
}
