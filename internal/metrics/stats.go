package metrics

import (
	"fmt"
	"math"
)

// Stats summarizes repeated measurements — the paper averages 3–15
// iterations per experiment and reports a possible ±5% deviation (§6).
type Stats struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n-1)
	Min  float64
	Max  float64
}

// ComputeStats summarizes xs; the zero Stats is returned for empty input.
func ComputeStats(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// PctRange renders the stats as a percentage with spread, e.g.
// "-49.2% ± 1.3%". With a single sample the spread is omitted.
func (s Stats) PctRange() string {
	if s.N <= 1 {
		return Pct1(s.Mean)
	}
	return fmt.Sprintf("%s ± %.1f%%", Pct1(s.Mean), s.Std*100)
}

// AggregateSpread carries repeat-to-repeat statistics of an experiment's
// aggregate deltas.
type AggregateSpread struct {
	Exits      Stats
	TimerExits Stats
	Throughput Stats
	Runtime    Stats
}

// SpreadOf computes the spread over per-repeat aggregates.
func SpreadOf(aggs []Aggregate) *AggregateSpread {
	ex := make([]float64, len(aggs))
	tx := make([]float64, len(aggs))
	th := make([]float64, len(aggs))
	rt := make([]float64, len(aggs))
	for i, a := range aggs {
		ex[i], tx[i], th[i], rt[i] = a.ExitsDelta, a.TimerExitsDelta, a.ThroughputDelta, a.RuntimeDelta
	}
	return &AggregateSpread{
		Exits:      ComputeStats(ex),
		TimerExits: ComputeStats(tx),
		Throughput: ComputeStats(th),
		Runtime:    ComputeStats(rt),
	}
}

// String renders the spread on one line.
func (s *AggregateSpread) String() string {
	return fmt.Sprintf("exits %s, throughput %s, runtime %s (n=%d)",
		s.Exits.PctRange(), s.Throughput.PctRange(), s.Runtime.PctRange(), s.Exits.N)
}
