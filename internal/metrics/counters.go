// Package metrics defines the measurement plane of the reproduction: VM-exit
// counters by reason, cycle accounting, run results, comparisons between
// configurations, aggregation across benchmarks, and text/CSV rendering of
// the paper's tables and figures.
//
// The paper measures three metrics (§6): VM exits, system throughput (CPU
// cycles via perf), and application execution time. This package records the
// simulator's exact equivalents.
package metrics

import (
	"fmt"
	"strings"

	"paratick/internal/sim"
)

// ExitReason enumerates the VM-exit causes the model distinguishes. They
// mirror the hardware exit reasons relevant to the paper's analysis (§3).
type ExitReason int

const (
	ExitMSRWrite     ExitReason = iota // TSC_DEADLINE MSR write intercepted
	ExitPreemptTimer                   // VMX preemption-timer expiry
	ExitExternalIRQ                    // physical interrupt while guest running
	ExitHLT                            // guest idle entry
	ExitIOKick                         // emulated I/O doorbell
	ExitIPI                            // guest APIC ICR write (wakeup IPI)
	ExitHypercall                      // paravirtual hypercall
	ExitPLE                            // pause-loop exiting
	ExitTimerSteal                     // another vCPU's tick timer interrupted this one (§3.1)
	NumExitReasons
)

var exitNames = [NumExitReasons]string{
	"msr-write", "preempt-timer", "external-irq", "hlt", "io-kick", "ipi", "hypercall", "ple",
	"timer-steal",
}

// String returns the short name of the exit reason.
func (r ExitReason) String() string {
	if r < 0 || r >= NumExitReasons {
		return fmt.Sprintf("exit(%d)", int(r))
	}
	return exitNames[r]
}

// IsTimerRelated reports whether the exit reason belongs to scheduler-tick /
// timer management, the class of exits paratick eliminates (§4.2). MSR
// writes arm the tick; preemption-timer exits deliver it; timer-steal exits
// are tick interrupts arriving for descheduled vCPUs and suspending the
// running one (§3.1's overcommit cost).
func (r ExitReason) IsTimerRelated() bool {
	return r == ExitMSRWrite || r == ExitPreemptTimer || r == ExitTimerSteal
}

// Counters accumulates every countable event of one simulation run.
// The zero value is ready to use.
type Counters struct {
	Exits [NumExitReasons]uint64

	// Interrupt bookkeeping.
	Injections   uint64 // interrupts injected on VM entry
	VirtualTicks uint64 // paratick vector-235 injections (§5.1)
	GuestTicks   uint64 // guest tick-handler invocations (any mechanism)
	TimerArms    uint64 // guest tick/wakeup timer programming operations
	IdleEnters   uint64 // vCPU idle-loop entries
	IdleExits    uint64 // vCPU idle-loop exits
	Wakeups      uint64 // task wakeups
	ContextSw    uint64 // guest context switches

	// Cycle (simulated-time) accounting. BusyCycles() is the paper's
	// "CPU cycles" throughput metric.
	HostOverhead sim.Time // exit handling, injection, host ticks, host sched
	GuestUseful  sim.Time // application compute
	GuestKernel  sim.Time // guest-kernel work (handlers, sched, idle logic)

	// I/O accounting.
	IOReads        uint64
	IOWrites       uint64
	IOBytesRead    uint64
	IOBytesWritten uint64

	// Latency/cost histograms (log2 buckets, see Histogram). ExitCost is
	// the host-side handling cost per exit reason; InjectLatency is the
	// pend-to-delivery delay per interrupt vector class; TickInterval is the
	// spacing between consecutive guest tick-handler runs (any mechanism:
	// physical or virtual), which exposes tick starvation per tick mode.
	ExitCost      [NumExitReasons]Histogram
	InjectLatency [NumVectorClasses]Histogram
	TickInterval  Histogram
}

// AddExit records one VM exit of the given reason.
//
//paratick:noalloc
func (c *Counters) AddExit(r ExitReason) { c.Exits[r]++ }

// TotalExits returns the total number of VM exits.
func (c *Counters) TotalExits() uint64 {
	var sum uint64
	for _, v := range c.Exits {
		sum += v
	}
	return sum
}

// TimerExits returns the number of timer-related VM exits (tick arming +
// tick delivery), the quantity targeted by paratick.
func (c *Counters) TimerExits() uint64 {
	var sum uint64
	for r := ExitReason(0); r < NumExitReasons; r++ {
		if r.IsTimerRelated() {
			sum += c.Exits[r]
		}
	}
	return sum
}

// BusyCycles returns the total CPU time consumed — useful work plus all
// overhead — the simulator's analogue of the paper's perf cycle counts.
func (c *Counters) BusyCycles() sim.Time {
	return c.HostOverhead + c.GuestUseful + c.GuestKernel
}

// OverheadCycles returns time spent on anything but application compute.
func (c *Counters) OverheadCycles() sim.Time {
	return c.HostOverhead + c.GuestKernel
}

// IOBytes returns total bytes moved.
func (c *Counters) IOBytes() uint64 { return c.IOBytesRead + c.IOBytesWritten }

// IOOps returns total I/O operations completed.
func (c *Counters) IOOps() uint64 { return c.IOReads + c.IOWrites }

// Add accumulates other into c (used to merge per-VM counters).
func (c *Counters) Add(other *Counters) {
	for i := range c.Exits {
		c.Exits[i] += other.Exits[i]
	}
	c.Injections += other.Injections
	c.VirtualTicks += other.VirtualTicks
	c.GuestTicks += other.GuestTicks
	c.TimerArms += other.TimerArms
	c.IdleEnters += other.IdleEnters
	c.IdleExits += other.IdleExits
	c.Wakeups += other.Wakeups
	c.ContextSw += other.ContextSw
	c.HostOverhead += other.HostOverhead
	c.GuestUseful += other.GuestUseful
	c.GuestKernel += other.GuestKernel
	c.IOReads += other.IOReads
	c.IOWrites += other.IOWrites
	c.IOBytesRead += other.IOBytesRead
	c.IOBytesWritten += other.IOBytesWritten
	for i := range c.ExitCost {
		c.ExitCost[i].Merge(&other.ExitCost[i])
	}
	for i := range c.InjectLatency {
		c.InjectLatency[i].Merge(&other.InjectLatency[i])
	}
	c.TickInterval.Merge(&other.TickInterval)
}

// Summary renders a human-readable multi-line breakdown.
func (c *Counters) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM exits: %d total, %d timer-related\n", c.TotalExits(), c.TimerExits())
	for r := ExitReason(0); r < NumExitReasons; r++ {
		if c.Exits[r] > 0 {
			fmt.Fprintf(&b, "  %-14s %d\n", r.String(), c.Exits[r])
		}
	}
	fmt.Fprintf(&b, "injections: %d (virtual ticks: %d), guest ticks: %d, timer arms: %d\n",
		c.Injections, c.VirtualTicks, c.GuestTicks, c.TimerArms)
	fmt.Fprintf(&b, "idle enters/exits: %d/%d, wakeups: %d, ctx switches: %d\n",
		c.IdleEnters, c.IdleExits, c.Wakeups, c.ContextSw)
	fmt.Fprintf(&b, "cycles: busy=%v (useful=%v kernel=%v host=%v)\n",
		c.BusyCycles(), c.GuestUseful, c.GuestKernel, c.HostOverhead)
	if c.IOOps() > 0 {
		fmt.Fprintf(&b, "io: %d reads / %d writes, %d bytes\n", c.IOReads, c.IOWrites, c.IOBytes())
	}
	return b.String()
}
