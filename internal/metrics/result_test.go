package metrics

import (
	"math"
	"strings"
	"testing"

	"paratick/internal/sim"
)

// A baseline with zero exits and an optimized run with nonzero exits is an
// unbounded regression; it must surface as NaN → "n/a", never as "+0%".
func TestCompareZeroBaselineIsNaNNotZero(t *testing.T) {
	base := Result{Name: "w", WallTime: sim.Second}
	opt := Result{Name: "w", WallTime: sim.Second}
	opt.Counters.Exits[ExitMSRWrite] = 100

	c := Compare(base, opt)
	if !math.IsNaN(c.ExitsDelta) {
		t.Fatalf("ExitsDelta = %v, want NaN for 0 → 100 exits", c.ExitsDelta)
	}
	if !math.IsNaN(c.TimerExitsDelta) {
		t.Fatalf("TimerExitsDelta = %v, want NaN", c.TimerExitsDelta)
	}
	if got := Pct(c.ExitsDelta); got != "n/a" {
		t.Fatalf("Pct(NaN) = %q, want n/a", got)
	}
	if got := Pct1(c.ExitsDelta); got != "n/a" {
		t.Fatalf("Pct1(NaN) = %q, want n/a", got)
	}
}

// 0 → 0 is genuinely "no change" and must stay 0, not NaN.
func TestCompareZeroToZeroIsZero(t *testing.T) {
	base := Result{Name: "w", WallTime: sim.Second}
	opt := Result{Name: "w", WallTime: sim.Second}
	c := Compare(base, opt)
	if c.ExitsDelta != 0 || c.TimerExitsDelta != 0 {
		t.Fatalf("0→0 deltas = %v / %v, want 0", c.ExitsDelta, c.TimerExitsDelta)
	}
	if got := Pct1(c.ExitsDelta); got != "+0.0%" {
		t.Fatalf("Pct1(0) = %q", got)
	}
}

func TestRelChange(t *testing.T) {
	if got := relChange(50, 100); got != -0.5 {
		t.Fatalf("relChange(50,100) = %v", got)
	}
	if got := relChange(5, 0); !math.IsNaN(got) {
		t.Fatalf("relChange(5,0) = %v, want NaN", got)
	}
	if got := relChange(0, 0); got != 0 {
		t.Fatalf("relChange(0,0) = %v, want 0", got)
	}
}

// Aggregated must skip NaN terms per metric instead of poisoning the mean.
func TestAggregatedSkipsNaN(t *testing.T) {
	comps := []Comparison{
		{ExitsDelta: -0.4, RuntimeDelta: -0.1},
		{ExitsDelta: math.NaN(), RuntimeDelta: -0.3},
		{ExitsDelta: -0.6, RuntimeDelta: math.NaN()},
	}
	agg := Aggregated(comps)
	if agg.N != 3 {
		t.Fatalf("N = %d", agg.N)
	}
	if math.Abs(agg.ExitsDelta-(-0.5)) > 1e-12 {
		t.Fatalf("ExitsDelta = %v, want -0.5 (mean of defined terms)", agg.ExitsDelta)
	}
	if math.Abs(agg.RuntimeDelta-(-0.2)) > 1e-12 {
		t.Fatalf("RuntimeDelta = %v, want -0.2", agg.RuntimeDelta)
	}
}

// A metric undefined in every comparison stays NaN and renders n/a.
func TestAggregatedAllNaNStaysNaN(t *testing.T) {
	comps := []Comparison{{ExitsDelta: math.NaN()}, {ExitsDelta: math.NaN()}}
	agg := Aggregated(comps)
	if !math.IsNaN(agg.ExitsDelta) {
		t.Fatalf("ExitsDelta = %v, want NaN", agg.ExitsDelta)
	}
	if got := Pct(agg.ExitsDelta); got != "n/a" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestGeoMeanRatiosSkipsNaN(t *testing.T) {
	got := GeoMeanRatios([]float64{0.0, math.NaN(), 0.0})
	if got != 0 {
		t.Fatalf("GeoMeanRatios = %v, want 0", got)
	}
	if !math.IsNaN(GeoMeanRatios([]float64{math.NaN()})) {
		t.Fatal("all-NaN input should return NaN")
	}
}

// The rendered tables must carry "n/a" through, proving a zero-baseline run
// cannot silently read as an improvement-free row.
func TestTableRendersNaNAsNA(t *testing.T) {
	tbl := NewTable("t", "name", "exits")
	tbl.AddRow("zero-base", Pct1(math.NaN()))
	if !strings.Contains(tbl.String(), "n/a") {
		t.Fatalf("table output missing n/a:\n%s", tbl.String())
	}
}
