package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text/CSV table used to render the paper's
// tables and per-benchmark figure series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		// Trim trailing spaces from padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes around cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// BarChart renders a horizontal ASCII bar chart for a series of signed
// percentages, used to present the paper's figures (relative performance of
// paratick vs vanilla) in the terminal.
type BarChart struct {
	Title  string
	labels []string
	values []float64 // fractions, e.g. -0.5 for -50%
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title} }

// Add appends one labeled bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart. Negative values grow left from a center axis,
// positive values grow right; scale adapts to the largest magnitude.
func (c *BarChart) String() string {
	const half = 30 // columns per side
	maxAbs := 0.0
	for _, v := range c.values {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s (full bar = %.0f%%)\n", c.Title, maxAbs*100)
	}
	for i, v := range c.values {
		n := int(abs(v)/maxAbs*half + 0.5)
		if n > half {
			n = half
		}
		left := strings.Repeat(" ", half)
		right := strings.Repeat(" ", half)
		if v < 0 {
			left = strings.Repeat(" ", half-n) + strings.Repeat("#", n)
		} else if v > 0 {
			right = strings.Repeat("#", n) + strings.Repeat(" ", half-n)
		}
		line := fmt.Sprintf("%-*s %s|%s %s", labelW, c.labels[i], left, right, Pct1(v))
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
