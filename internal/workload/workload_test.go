package workload

import (
	"testing"

	"paratick/internal/guest"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

func testKernel(t *testing.T, vcpus int) (*sim.Engine, *guest.Kernel) {
	t.Helper()
	e := sim.NewEngine(9)
	k, err := guest.NewKernel(e, hw.DefaultCostModel(), guest.DefaultConfig(), &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vcpus; i++ {
		k.AddVCPU()
	}
	return e, k
}

func testDevice(t *testing.T, e *sim.Engine) *iodev.Device {
	t.Helper()
	d, err := iodev.New(e, "d", iodev.NVMe(), hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProfilesCompleteAndValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 13 {
		t.Fatalf("PARSEC suite has %d profiles, want 13 (§6.1)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	// The canonical names must all be present.
	for _, name := range []string{"blackscholes", "bodytrack", "canneal", "dedup",
		"facesim", "ferret", "fluidanimate", "freqmine", "raytrace",
		"streamcluster", "swaptions", "vips", "x264"} {
		if !seen[name] {
			t.Errorf("missing PARSEC benchmark %s", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("dedup")
	if err != nil || p.Name != "dedup" {
		t.Fatalf("ProfileByName(dedup) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProfileSpectrum(t *testing.T) {
	// The suite must span the behaviours that drive Fig. 4/5 variance:
	// dedup/ferret I/O-heavy vs swaptions/blackscholes I/O-lean, and
	// fluidanimate sync-heavy vs swaptions sync-lean.
	by := map[string]ParsecProfile{}
	for _, p := range Profiles() {
		by[p.Name] = p
	}
	if by["dedup"].IOOpsPerSec < 10*by["swaptions"].IOOpsPerSec {
		t.Error("dedup should be far more I/O-intensive than swaptions")
	}
	if by["fluidanimate"].SyncPerSec < 20*by["swaptions"].SyncPerSec {
		t.Error("fluidanimate should be far more sync-intensive than swaptions")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := []ParsecProfile{
		{Name: "", Work: 1},
		{Name: "x", Work: 0},
		{Name: "x", Work: 1, IOOpsPerSec: -1},
		{Name: "x", Work: 1, IOOpsPerSec: 5, IOBytes: 0},
		{Name: "x", Work: 1, SyncPerSec: 5, CSLen: 0},
		{Name: "x", Work: 1, BarrierIters: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestSequentialProgramConsumesWork(t *testing.T) {
	_, k := testKernel(t, 1)
	p, _ := ProfileByName("swaptions") // nearly pure compute
	prog, err := p.SequentialProgram(nil, 0.01)
	if err != nil {
		// swaptions has nonzero I/O rate; must pass a device.
		e2, k2 := testKernel(t, 1)
		prog, err = p.SequentialProgram(testDevice(t, e2), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		k = k2
	}
	var total sim.Time
	ctx := &guest.StepCtx{Rand: sim.NewRand(1)}
	steps := 0
	for {
		s := prog.Next(ctx)
		if s.Kind == guest.StepDone {
			break
		}
		if s.Kind == guest.StepCompute {
			total += s.D
		}
		steps++
		if steps > 100000 {
			t.Fatal("program never terminates")
		}
	}
	want := sim.Time(float64(p.Work) * 0.01)
	if total != want {
		t.Fatalf("compute total = %v, want %v", total, want)
	}
	_ = k
}

func TestSequentialProgramRequiresDeviceForIO(t *testing.T) {
	p, _ := ProfileByName("dedup")
	if _, err := p.SequentialProgram(nil, 1); err == nil {
		t.Fatal("I/O profile accepted without device")
	}
	if _, err := p.SequentialProgram(nil, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestSequentialProgramEmitsIO(t *testing.T) {
	e, _ := testKernel(t, 1)
	dev := testDevice(t, e)
	p, _ := ProfileByName("dedup")
	prog, err := p.SequentialProgram(dev, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &guest.StepCtx{Rand: sim.NewRand(1)}
	ios, steps := 0, 0
	for {
		s := prog.Next(ctx)
		if s.Kind == guest.StepDone {
			break
		}
		if s.Kind == guest.StepIO {
			ios++
			if s.Write {
				t.Fatal("parsec streaming model reads only")
			}
			if !s.Blocking {
				t.Fatal("sequential I/O must be sync (§6.3 sync engine rationale)")
			}
			if s.Bytes != p.IOBytes {
				t.Fatalf("io bytes = %d, want %d", s.Bytes, p.IOBytes)
			}
		}
		steps++
		if steps > 1000000 {
			t.Fatal("runaway program")
		}
	}
	// 0.05×450ms of work at 900 ops/s ≈ 20 ops expected.
	if ios < 5 {
		t.Fatalf("dedup emitted only %d I/O ops", ios)
	}
}

func TestSpawnParallelCreatesThreads(t *testing.T) {
	e, k := testKernel(t, 4)
	dev := testDevice(t, e)
	p, _ := ProfileByName("fluidanimate")
	art, err := p.SpawnParallel(k, 4, dev, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Tasks()) != 4 {
		t.Fatalf("spawned %d tasks, want 4", len(k.Tasks()))
	}
	if len(art.Locks) == 0 {
		t.Fatal("no lock stripes")
	}
	if art.Barrier == nil {
		t.Fatal("fluidanimate (BarrierIters>0) should have a barrier")
	}
	if art.Barrier.Parties() != 4 {
		t.Fatalf("barrier parties = %d", art.Barrier.Parties())
	}
	// Tasks are spread across vCPUs.
	used := map[int]bool{}
	for _, task := range k.Tasks() {
		used[task.VCPU().ID()] = true
	}
	if len(used) != 4 {
		t.Fatalf("tasks use %d vCPUs, want 4", len(used))
	}
}

func TestSpawnParallelValidation(t *testing.T) {
	e, k := testKernel(t, 2)
	dev := testDevice(t, e)
	p, _ := ProfileByName("dedup")
	if _, err := p.SpawnParallel(k, 0, dev, 1); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := p.SpawnParallel(k, 2, nil, 1); err == nil {
		t.Error("io profile without device accepted")
	}
	if _, err := p.SpawnParallel(k, 2, dev, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestFioPatternParsing(t *testing.T) {
	for _, c := range []struct {
		s string
		p FioPattern
	}{{"seqr", SeqRead}, {"seqwr", SeqWrite}, {"rndr", RandRead}, {"rndwr", RandWrite}} {
		got, err := ParseFioPattern(c.s)
		if err != nil || got != c.p {
			t.Errorf("ParseFioPattern(%q) = %v, %v", c.s, got, err)
		}
		if c.p.String() != c.s {
			t.Errorf("%v.String() = %q", c.p, c.p.String())
		}
	}
	if _, err := ParseFioPattern("zzz"); err == nil {
		t.Error("bad pattern accepted")
	}
	if FioPattern(9).String() != "fio(9)" {
		t.Error("unknown pattern string")
	}
}

func TestFioPatternClassification(t *testing.T) {
	if !SeqWrite.IsWrite() || !RandWrite.IsWrite() || SeqRead.IsWrite() || RandRead.IsWrite() {
		t.Error("IsWrite wrong")
	}
	if !SeqRead.IsSequential() || !SeqWrite.IsSequential() || RandRead.IsSequential() {
		t.Error("IsSequential wrong")
	}
}

func TestFioBlockSizes(t *testing.T) {
	bs := FioBlockSizes()
	if bs[0] != 4096 || bs[len(bs)-1] != 256<<10 {
		t.Fatalf("block sizes %v must span 4k–256k (§6.3)", bs)
	}
}

func TestFioJobOpsAndValidation(t *testing.T) {
	j := DefaultFioJob(RandRead, 4096, 4096*100)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Ops() != 100 {
		t.Fatalf("Ops = %d", j.Ops())
	}
	bad := []FioJob{
		{Pattern: SeqRead, BlockSize: 0, TotalBytes: 1},
		{Pattern: SeqRead, BlockSize: 4096, TotalBytes: 100},
		{Pattern: SeqRead, BlockSize: 4096, TotalBytes: 8192, ThinkPerOp: -1},
		{Pattern: SeqRead, BlockSize: 4096, TotalBytes: 8192, WriteBehind: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}

func TestFioProgramReadSteps(t *testing.T) {
	e, _ := testKernel(t, 1)
	dev := testDevice(t, e)
	j := DefaultFioJob(RandRead, 4096, 4096*50)
	prog, err := j.Program(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &guest.StepCtx{Rand: sim.NewRand(3)}
	reads := 0
	for i := 0; i < 10000; i++ {
		s := prog.Next(ctx)
		if s.Kind == guest.StepDone {
			break
		}
		if s.Kind == guest.StepIO {
			reads++
			if s.Write || s.Sequential || !s.Blocking {
				t.Fatalf("rndr op wrong: %+v", s)
			}
		}
	}
	if reads != 50 {
		t.Fatalf("reads = %d, want 50", reads)
	}
}

func TestFioWriteBehindBlocksEveryNth(t *testing.T) {
	e, _ := testKernel(t, 1)
	dev := testDevice(t, e)
	j := DefaultFioJob(SeqWrite, 4096, 4096*64)
	prog, err := j.Program(dev)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &guest.StepCtx{Rand: sim.NewRand(3)}
	writes, blocking := 0, 0
	for i := 0; i < 10000; i++ {
		s := prog.Next(ctx)
		if s.Kind == guest.StepDone {
			break
		}
		if s.Kind == guest.StepIO {
			writes++
			if !s.Write || !s.Sequential {
				t.Fatalf("seqwr op wrong: %+v", s)
			}
			if s.Blocking {
				blocking++
			}
		}
	}
	if writes != 64 {
		t.Fatalf("writes = %d", writes)
	}
	if blocking != 32 { // every 2nd (buffering disabled, §6.3)
		t.Fatalf("blocking writes = %d, want 32 (write-behind 2)", blocking)
	}
}

func TestFioProgramNeedsDevice(t *testing.T) {
	j := DefaultFioJob(SeqRead, 4096, 8192)
	if _, err := j.Program(nil); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestSyncBenchValidate(t *testing.T) {
	if err := DefaultSyncBench().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SyncBench{
		{Threads: 0, SyncsPerSec: 1, CSLen: 1, Duration: 1},
		{Threads: 1, SyncsPerSec: 0, CSLen: 1, Duration: 1},
		{Threads: 1, SyncsPerSec: 1, CSLen: 0, Duration: 1},
		{Threads: 1, SyncsPerSec: 1, CSLen: 1, Duration: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad syncbench %d accepted", i)
		}
	}
}

func TestSyncBenchSpawn(t *testing.T) {
	_, k := testKernel(t, 16)
	b := DefaultSyncBench()
	if err := b.Spawn(k); err != nil {
		t.Fatal(err)
	}
	if len(k.Tasks()) != 16 {
		t.Fatalf("tasks = %d, want 16", len(k.Tasks()))
	}
}

func TestSyncBenchProgramShape(t *testing.T) {
	b := DefaultSyncBench()
	_, k := testKernel(t, 1)
	meet := k.NewBarrier("m", 2)
	p := &syncProgram{b: b, meet: meet, until: sim.Second}
	ctx := &guest.StepCtx{Rand: sim.NewRand(4)}
	// compute → rendezvous → shared work cycle
	s := p.Next(ctx)
	if s.Kind != guest.StepCompute {
		t.Fatalf("step 1 = %v", s.Kind)
	}
	if s2 := p.Next(ctx); s2.Kind != guest.StepBarrier {
		t.Fatalf("step 2 = %v", s2.Kind)
	}
	if s3 := p.Next(ctx); s3.Kind != guest.StepCompute {
		t.Fatalf("step 3 = %v", s3.Kind)
	}
	// Past the deadline it leaves the barrier party, then finishes.
	ctx.Now = 2 * sim.Second
	if s4 := p.Next(ctx); s4.Kind != guest.StepBarrierLeave {
		t.Fatalf("step 4 = %v", s4.Kind)
	}
	if s5 := p.Next(ctx); s5.Kind != guest.StepDone {
		t.Fatalf("step 5 = %v", s5.Kind)
	}
}

func TestSyncBenchRejectsOddThreads(t *testing.T) {
	b := DefaultSyncBench()
	b.Threads = 7
	if err := b.Validate(); err == nil {
		t.Fatal("odd thread count accepted")
	}
}

func TestParallelProgramStateMachine(t *testing.T) {
	// Step the per-thread program directly through one full iteration:
	// compute → acquire → critical section → release → (barrier | io |
	// compute), and verify Done after the work is exhausted (leaving the
	// barrier first).
	e, k := testKernel(t, 1)
	dev := testDevice(t, e)
	p, _ := ProfileByName("x264") // has barriers and io
	art, err := p.SpawnParallel(k, 2, dev, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	prog := &parProgram{
		p:         p,
		dev:       dev,
		locks:     art.Locks,
		barrier:   art.Barrier,
		remaining: sim.Time(float64(p.Work) * 0.001),
		doIO:      true,
	}
	ctx := &guest.StepCtx{Rand: sim.NewRand(2)}
	kinds := map[guest.StepKind]int{}
	for i := 0; i < 100000; i++ {
		s := prog.Next(ctx)
		kinds[s.Kind]++
		if s.Kind == guest.StepDone {
			break
		}
	}
	if kinds[guest.StepDone] != 1 {
		t.Fatal("program never finished")
	}
	if kinds[guest.StepLock] == 0 || kinds[guest.StepUnlock] == 0 {
		t.Fatalf("no lock traffic: %v", kinds)
	}
	if kinds[guest.StepLock] != kinds[guest.StepUnlock] {
		t.Fatalf("unbalanced lock/unlock: %v", kinds)
	}
	if kinds[guest.StepBarrier] == 0 {
		t.Fatalf("no barrier joins: %v", kinds)
	}
	if kinds[guest.StepBarrierLeave] != 1 {
		t.Fatalf("barrier leave count: %v", kinds)
	}
	if kinds[guest.StepIO] == 0 {
		t.Fatalf("thread 0 did no io: %v", kinds)
	}
}

func TestParallelProgramNoSyncProfile(t *testing.T) {
	// A profile without synchronization burns its work in slices.
	prog := &parProgram{
		p:         ParsecProfile{Name: "x", Work: 50 * sim.Millisecond, CSLen: sim.Microsecond},
		remaining: 25 * sim.Millisecond,
	}
	ctx := &guest.StepCtx{Rand: sim.NewRand(2)}
	var total sim.Time
	for i := 0; i < 1000; i++ {
		s := prog.Next(ctx)
		if s.Kind == guest.StepDone {
			break
		}
		if s.Kind != guest.StepCompute {
			t.Fatalf("unexpected step %v", s.Kind)
		}
		total += s.D
	}
	if total != 25*sim.Millisecond {
		t.Fatalf("total compute = %v", total)
	}
}

func TestIOProbabilityClamps(t *testing.T) {
	prog := &parProgram{p: ParsecProfile{IOOpsPerSec: 5000, SyncPerSec: 1000}}
	if got := prog.ioProbability(); got != 1 {
		t.Fatalf("probability = %v, want clamped 1", got)
	}
	prog2 := &parProgram{p: ParsecProfile{IOOpsPerSec: 100, SyncPerSec: 1000}}
	if got := prog2.ioProbability(); got != 0.1 {
		t.Fatalf("probability = %v, want 0.1", got)
	}
	prog3 := &parProgram{p: ParsecProfile{IOOpsPerSec: 100}}
	if got := prog3.ioProbability(); got != 0 {
		t.Fatalf("no-sync probability = %v, want 0", got)
	}
}

func TestFioSpawn(t *testing.T) {
	e, k := testKernel(t, 1)
	dev := testDevice(t, e)
	j := DefaultFioJob(SeqRead, 4096, 4096*4)
	if err := j.Spawn(k, dev); err != nil {
		t.Fatal(err)
	}
	if len(k.Tasks()) != 1 || k.Tasks()[0].Name != "fio-seqr" {
		t.Fatalf("tasks: %v", k.Tasks())
	}
	bad := DefaultFioJob(SeqRead, 0, 4096)
	if err := bad.Spawn(k, dev); err == nil {
		t.Fatal("invalid job spawned")
	}
}
