package workload

import "strconv"

// The stock benchmarks name tasks and sync objects "prefix<index>". Those
// names are stable across runs, so formatting them on every spawn into a
// recycled VM is pure churn — each package keeps small pre-built tables for
// the index ranges the paper's configurations use and falls back to
// formatting only past the table.
const nameTableSize = 64

var (
	syncTaskNames = makeNames("sync.", nameTableSize)
	syncPairNames = makeNames("sync.pair", nameTableSize)
)

func makeNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + strconv.Itoa(i)
	}
	return out
}

// indexedName returns tab[i] when the table covers i, formatting otherwise.
func indexedName(tab []string, prefix string, i int) string {
	if i < len(tab) {
		return tab[i]
	}
	return prefix + strconv.Itoa(i)
}
