package workload

import (
	"fmt"

	"paratick/internal/guest"
	"paratick/internal/sim"
)

// SyncBench is the §3.3 microbenchmark: N threads synchronizing through
// blocking synchronization at a fixed aggregate rate (W3: 16 threads,
// 1000 synchronizations per second). Threads rendezvous in pairs: each
// synchronization is a two-party barrier, so the first arrival blocks
// (idling its vCPU) and the second wakes it — one idle entry/exit pair per
// synchronization event, exactly the accounting the paper's Table 1 uses
// (2 tick-management VM exits per sync under a tickless kernel).
type SyncBench struct {
	Threads int
	// SyncsPerSec is the aggregate synchronization (rendezvous) rate
	// across all pairs.
	SyncsPerSec float64
	// CSLen is the post-rendezvous critical-section length.
	CSLen sim.Time
	// Duration bounds the benchmark.
	Duration sim.Time
}

// DefaultSyncBench returns W3: 16 threads, 1000 syncs/s.
func DefaultSyncBench() SyncBench {
	return SyncBench{Threads: 16, SyncsPerSec: 1000, CSLen: 5 * sim.Microsecond, Duration: sim.Second}
}

// Validate checks parameters.
func (s SyncBench) Validate() error {
	if s.Threads <= 0 {
		return fmt.Errorf("workload: syncbench needs positive threads, got %d", s.Threads)
	}
	if s.Threads%2 != 0 {
		return fmt.Errorf("workload: syncbench pairs threads; need an even count, got %d", s.Threads)
	}
	if s.SyncsPerSec <= 0 {
		return fmt.Errorf("workload: syncbench needs a positive sync rate")
	}
	if s.CSLen <= 0 || s.Duration <= 0 {
		return fmt.Errorf("workload: syncbench needs positive CSLen and Duration")
	}
	return nil
}

type syncProgram struct {
	//snap:skip immutable benchmark spec from the scenario
	b SyncBench
	//snap:skip shared-object wiring, re-bound when the program is rebuilt
	meet *guest.Barrier
	//snap:skip fixed at construction from the benchmark duration
	until sim.Time
	phase int
	done  bool
	left  bool
}

func (p *syncProgram) Next(ctx *guest.StepCtx) guest.Step {
	switch p.phase {
	case 0: // compute until the next rendezvous
		if p.done || ctx.Now >= p.until {
			if !p.left {
				p.left = true
				return guest.LeaveBarrier(p.meet)
			}
			return guest.Done()
		}
		pairs := float64(p.b.Threads) / 2
		interval := sim.Time(float64(sim.Second) * pairs / p.b.SyncsPerSec)
		p.phase = 1
		return guest.Compute(ctx.Rand.Jitter(interval, 0.3))
	case 1: // rendezvous: first arrival blocks, partner releases it
		p.phase = 2
		return guest.JoinBarrier(p.meet)
	default: // brief shared work, then back to compute
		p.phase = 0
		return guest.Compute(ctx.Rand.Jitter(p.b.CSLen, 0.3))
	}
}

// Spawn creates the benchmark's tasks, pairing neighbours (2i, 2i+1) and
// placing one task per vCPU round-robin.
func (s SyncBench) Spawn(k *guest.Kernel) error {
	if err := s.Validate(); err != nil {
		return err
	}
	nv := len(k.VCPUs())
	if nv == 0 {
		return fmt.Errorf("workload: syncbench needs vCPUs")
	}
	until := k.Now() + s.Duration
	// One slab for all programs and pre-formatted names: respawning the
	// benchmark into a recycled VM costs a single allocation, not one per
	// task plus one per formatted name.
	progs := make([]syncProgram, s.Threads)
	for pair := 0; pair < s.Threads/2; pair++ {
		meet := k.NewBarrier(indexedName(syncPairNames, "sync.pair", pair), 2)
		for j := 0; j < 2; j++ {
			i := pair*2 + j
			progs[i] = syncProgram{b: s, meet: meet, until: until}
			k.Spawn(indexedName(syncTaskNames, "sync.", i), i%nv, &progs[i])
		}
	}
	return nil
}
