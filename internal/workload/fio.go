package workload

import (
	"fmt"

	"paratick/internal/guest"
	"paratick/internal/iodev"
	"paratick/internal/sim"
)

// FioPattern selects one of the four phoronix-fio access patterns of §6.3.
type FioPattern int

const (
	// SeqRead is sequential read ("seqr").
	SeqRead FioPattern = iota
	// SeqWrite is sequential write ("seqwr").
	SeqWrite
	// RandRead is random read ("rndr").
	RandRead
	// RandWrite is random write ("rndwr").
	RandWrite
)

// String returns the paper's abbreviation.
func (p FioPattern) String() string {
	switch p {
	case SeqRead:
		return "seqr"
	case SeqWrite:
		return "seqwr"
	case RandRead:
		return "rndr"
	case RandWrite:
		return "rndwr"
	}
	return fmt.Sprintf("fio(%d)", int(p))
}

// ParseFioPattern parses a pattern abbreviation.
func ParseFioPattern(s string) (FioPattern, error) {
	switch s {
	case "seqr":
		return SeqRead, nil
	case "seqwr":
		return SeqWrite, nil
	case "rndr":
		return RandRead, nil
	case "rndwr":
		return RandWrite, nil
	}
	return 0, fmt.Errorf("workload: unknown fio pattern %q (want seqr/seqwr/rndr/rndwr)", s)
}

// IsWrite reports whether the pattern writes.
func (p FioPattern) IsWrite() bool { return p == SeqWrite || p == RandWrite }

// IsSequential reports whether the pattern is sequential.
func (p FioPattern) IsSequential() bool { return p == SeqRead || p == SeqWrite }

// FioBlockSizes returns the §6.3 block-size sweep: 4 KiB to 256 KiB.
func FioBlockSizes() []int {
	return []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}
}

// FioJob describes one fio run with the sync I/O engine.
type FioJob struct {
	Pattern    FioPattern
	BlockSize  int
	TotalBytes int64
	// ThinkPerOp is the application CPU spent per operation (buffer
	// preparation, checksums); the sync engine's userspace side.
	ThinkPerOp sim.Time
	// WriteBehind models page-cache write-back: only every Nth write
	// blocks for device completion (the paper: "writes are generally
	// asynchronous"). 1 = every write blocks (like O_SYNC); 0 defaults
	// to 2 (the paper disables buffering, so most writes reach the
	// device).
	WriteBehind int
}

// DefaultFioJob returns the paper-style job: sync engine, modest per-op
// CPU, write-behind of 8.
func DefaultFioJob(pattern FioPattern, blockSize int, totalBytes int64) FioJob {
	return FioJob{
		Pattern:     pattern,
		BlockSize:   blockSize,
		TotalBytes:  totalBytes,
		ThinkPerOp:  800 * sim.Nanosecond,
		WriteBehind: 2,
	}
}

// Validate checks the job.
func (j FioJob) Validate() error {
	if j.BlockSize <= 0 {
		return fmt.Errorf("workload: fio block size must be positive, got %d", j.BlockSize)
	}
	if j.TotalBytes < int64(j.BlockSize) {
		return fmt.Errorf("workload: fio total bytes %d below one block %d", j.TotalBytes, j.BlockSize)
	}
	if j.ThinkPerOp < 0 {
		return fmt.Errorf("workload: fio negative think time")
	}
	if j.WriteBehind < 0 {
		return fmt.Errorf("workload: fio negative write-behind")
	}
	return nil
}

// Ops returns the number of operations the job performs.
func (j FioJob) Ops() int {
	return int(j.TotalBytes / int64(j.BlockSize))
}

type fioProgram struct {
	//snap:skip immutable job definition from the scenario
	job FioJob
	//snap:skip device wiring, re-bound when the program is rebuilt
	dev      *iodev.Device
	opsLeft  int
	thinking bool
	opIndex  int
}

// Program builds the job's task program against dev.
func (j FioJob) Program(dev *iodev.Device) (guest.Program, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if dev == nil {
		return nil, fmt.Errorf("workload: fio needs a device")
	}
	wb := j.WriteBehind
	if wb == 0 {
		wb = 2
	}
	j.WriteBehind = wb
	return &fioProgram{job: j, dev: dev, opsLeft: j.Ops(), thinking: true}, nil
}

func (f *fioProgram) Next(ctx *guest.StepCtx) guest.Step {
	if f.opsLeft <= 0 {
		return guest.Done()
	}
	if f.thinking {
		f.thinking = false
		// Per-op CPU scales mildly with block size (copying/checksums).
		think := f.job.ThinkPerOp + sim.Time(f.job.BlockSize/1024)*50
		return guest.Compute(ctx.Rand.Jitter(think, 0.2))
	}
	f.thinking = true
	f.opsLeft--
	f.opIndex++
	seq := f.job.Pattern.IsSequential()
	if f.job.Pattern.IsWrite() {
		blocking := f.job.WriteBehind <= 1 || f.opIndex%f.job.WriteBehind == 0
		return guest.WriteOp(f.dev, f.job.BlockSize, seq, blocking)
	}
	return guest.Read(f.dev, f.job.BlockSize, seq)
}

// Spawn creates the fio task on vCPU 0 (the paper runs fio in a 1-vCPU VM).
func (j FioJob) Spawn(k *guest.Kernel, dev *iodev.Device) error {
	prog, err := j.Program(dev)
	if err != nil {
		return err
	}
	k.Spawn("fio-"+j.Pattern.String(), 0, prog)
	return nil
}
