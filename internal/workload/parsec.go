// Package workload generates the benchmark behaviours of the paper's
// evaluation: behavioural profiles of the 13 PARSEC workloads (§6.1, §6.2),
// an fio-style block-I/O generator (§6.3), the §3.3 blocking-sync workload,
// and idle VMs. The profiles substitute for the real suites (which cannot
// run on a simulator): what matters for tick-management overhead is the
// *rate and structure* of compute, blocking synchronization, and I/O, which
// each profile parameterizes.
package workload

import (
	"fmt"

	"paratick/internal/guest"
	"paratick/internal/iodev"
	"paratick/internal/sim"
)

// ParsecProfile characterizes one PARSEC benchmark's interaction pattern.
// Values are behavioural calibrations (per-thread rates), chosen to span
// the suite's published spectrum: from embarrassingly parallel compute
// (swaptions, blackscholes) through barrier-phased solvers (streamcluster,
// fluidanimate) to I/O-heavy pipelines (dedup, ferret, vips, x264).
type ParsecProfile struct {
	Name string
	// Work is the total CPU time the benchmark consumes (sequential mode),
	// before scaling.
	Work sim.Time
	// IOOpsPerSec is the file-I/O rate while running (input/output
	// streaming); ops block like the paper's sync reads.
	IOOpsPerSec float64
	// IOBytes is the transfer size per I/O op.
	IOBytes int
	// SyncPerSec is the per-thread blocking-sync rate in parallel mode.
	SyncPerSec float64
	// CSLen is the critical-section length.
	CSLen sim.Time
	// BarrierIters inserts a phase barrier every N sync iterations in
	// parallel mode (0 = no barriers).
	BarrierIters int
	// ParallelOverhead inflates total work in parallel mode (communication
	// and redundant computation), as a fraction of Work.
	ParallelOverhead float64
}

// Profiles returns the 13 PARSEC benchmarks in the paper's Fig. 4/5 order.
func Profiles() []ParsecProfile {
	ms := sim.Millisecond
	us := sim.Microsecond
	return []ParsecProfile{
		{Name: "blackscholes", Work: 600 * ms, IOOpsPerSec: 30, IOBytes: 64 << 10,
			SyncPerSec: 300, CSLen: 2 * us, BarrierIters: 50, ParallelOverhead: 0.02},
		{Name: "bodytrack", Work: 500 * ms, IOOpsPerSec: 3000, IOBytes: 16 << 10,
			SyncPerSec: 18000, CSLen: 3 * us, BarrierIters: 2, ParallelOverhead: 0.08},
		{Name: "canneal", Work: 700 * ms, IOOpsPerSec: 800, IOBytes: 32 << 10,
			SyncPerSec: 25000, CSLen: 2 * us, BarrierIters: 3, ParallelOverhead: 0.10},
		{Name: "dedup", Work: 350 * ms, IOOpsPerSec: 20000, IOBytes: 16 << 10,
			SyncPerSec: 35000, CSLen: 4 * us, BarrierIters: 2, ParallelOverhead: 0.12},
		{Name: "facesim", Work: 800 * ms, IOOpsPerSec: 150, IOBytes: 64 << 10,
			SyncPerSec: 9000, CSLen: 6 * us, BarrierIters: 3, ParallelOverhead: 0.06},
		{Name: "ferret", Work: 450 * ms, IOOpsPerSec: 16000, IOBytes: 16 << 10,
			SyncPerSec: 30000, CSLen: 4 * us, BarrierIters: 2, ParallelOverhead: 0.10},
		{Name: "fluidanimate", Work: 650 * ms, IOOpsPerSec: 80, IOBytes: 32 << 10,
			SyncPerSec: 40000, CSLen: 2 * us, BarrierIters: 1, ParallelOverhead: 0.09},
		{Name: "freqmine", Work: 750 * ms, IOOpsPerSec: 200, IOBytes: 32 << 10,
			SyncPerSec: 1500, CSLen: 4 * us, BarrierIters: 0, ParallelOverhead: 0.04},
		{Name: "raytrace", Work: 700 * ms, IOOpsPerSec: 60, IOBytes: 64 << 10,
			SyncPerSec: 2500, CSLen: 3 * us, BarrierIters: 0, ParallelOverhead: 0.05},
		{Name: "streamcluster", Work: 600 * ms, IOOpsPerSec: 120, IOBytes: 16 << 10,
			SyncPerSec: 15000, CSLen: 3 * us, BarrierIters: 2, ParallelOverhead: 0.11},
		{Name: "swaptions", Work: 650 * ms, IOOpsPerSec: 15, IOBytes: 8 << 10,
			SyncPerSec: 200, CSLen: 2 * us, BarrierIters: 0, ParallelOverhead: 0.01},
		{Name: "vips", Work: 450 * ms, IOOpsPerSec: 10000, IOBytes: 32 << 10,
			SyncPerSec: 22000, CSLen: 3 * us, BarrierIters: 2, ParallelOverhead: 0.07},
		{Name: "x264", Work: 500 * ms, IOOpsPerSec: 8000, IOBytes: 64 << 10,
			SyncPerSec: 20000, CSLen: 4 * us, BarrierIters: 2, ParallelOverhead: 0.08},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (ParsecProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return ParsecProfile{}, fmt.Errorf("workload: unknown PARSEC benchmark %q", name)
}

// Validate checks profile ranges.
func (p ParsecProfile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if p.Work <= 0 {
		return fmt.Errorf("workload: %s: Work must be positive", p.Name)
	}
	if p.IOOpsPerSec < 0 || p.SyncPerSec < 0 || p.ParallelOverhead < 0 {
		return fmt.Errorf("workload: %s: negative rate", p.Name)
	}
	if p.IOOpsPerSec > 0 && p.IOBytes <= 0 {
		return fmt.Errorf("workload: %s: I/O without a transfer size", p.Name)
	}
	if p.SyncPerSec > 0 && p.CSLen <= 0 {
		return fmt.Errorf("workload: %s: sync without a critical-section length", p.Name)
	}
	if p.BarrierIters < 0 {
		return fmt.Errorf("workload: %s: negative BarrierIters", p.Name)
	}
	return nil
}

// seqProgram alternates compute intervals with blocking file I/O, the way
// PARSEC benchmarks stream their input sets (§6.1 observes that even
// "sequential" runs vary widely in how much they benefit — the I/O rate is
// the driver).
type seqProgram struct {
	//snap:skip immutable benchmark profile from the scenario
	p ParsecProfile
	//snap:skip device wiring, re-bound when the program is rebuilt
	dev       *iodev.Device
	remaining sim.Time
	ioPending bool
	ioSeq     bool
}

// SequentialProgram builds the benchmark's 1-thread program. The device
// may be nil when the profile performs no I/O; scale multiplies the total
// work (shorter experiments).
func (p ParsecProfile) SequentialProgram(dev *iodev.Device, scale float64) (guest.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: %s: scale must be positive, got %v", p.Name, scale)
	}
	if p.IOOpsPerSec > 0 && dev == nil {
		return nil, fmt.Errorf("workload: %s: profile performs I/O but no device given", p.Name)
	}
	return &seqProgram{
		p:         p,
		dev:       dev,
		remaining: sim.Time(float64(p.Work) * scale),
	}, nil
}

func (s *seqProgram) Next(ctx *guest.StepCtx) guest.Step {
	if s.ioPending {
		s.ioPending = false
		// Alternate sequential streaming with occasional random access.
		s.ioSeq = !s.ioSeq || ctx.Rand.Bool(0.7)
		return guest.Read(s.dev, s.p.IOBytes, s.ioSeq)
	}
	if s.remaining <= 0 {
		return guest.Done()
	}
	chunk := s.remaining
	if s.p.IOOpsPerSec > 0 {
		interval := sim.Time(float64(sim.Second) / s.p.IOOpsPerSec)
		chunk = ctx.Rand.Exp(interval)
		if chunk > s.remaining {
			chunk = s.remaining
		}
		s.ioPending = true
	}
	s.remaining -= chunk
	return guest.Compute(chunk)
}

// parProgram is one thread of the parallel benchmark: compute between
// synchronization points, contended critical sections through a shared
// blocking lock, periodic phase barriers, and a thread 0 that also
// performs the benchmark's I/O.
type parProgram struct {
	//snap:skip immutable benchmark profile from the scenario
	p ParsecProfile
	//snap:skip device wiring, re-bound when the program is rebuilt
	dev   *iodev.Device
	locks []*guest.Lock
	lock  *guest.Lock // lock taken in the current iteration
	//snap:skip shared-object wiring, re-bound when the program is rebuilt
	barrier   *guest.Barrier
	remaining sim.Time
	iter      int
	phase     int // 0 compute, 1 in-CS, 2 io
	//snap:skip immutable thread-role flag fixed at program construction
	doIO bool
	left bool // has detached from the barrier
}

// ParallelArtifacts holds the shared objects of one parallel run.
type ParallelArtifacts struct {
	// Locks are the contention stripes: real PARSEC workloads synchronize
	// on many fine-grained locks, so contention per lock stays roughly
	// constant as threads scale (one stripe per ~4 threads).
	Locks   []*guest.Lock
	Barrier *guest.Barrier
}

// SpawnParallel spawns `threads` tasks (one per vCPU index modulo the vCPU
// count) running the benchmark with total work Work×(1+ParallelOverhead),
// split evenly. Thread 0 additionally performs the benchmark's I/O.
func (p ParsecProfile) SpawnParallel(k *guest.Kernel, threads int, dev *iodev.Device, scale float64) (*ParallelArtifacts, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if threads <= 0 {
		return nil, fmt.Errorf("workload: %s: need positive thread count", p.Name)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: %s: scale must be positive", p.Name)
	}
	if p.IOOpsPerSec > 0 && dev == nil {
		return nil, fmt.Errorf("workload: %s: profile performs I/O but no device given", p.Name)
	}
	nv := len(k.VCPUs())
	if nv == 0 {
		return nil, fmt.Errorf("workload: %s: kernel has no vCPUs", p.Name)
	}
	art := &ParallelArtifacts{}
	stripes := threads / 4
	if stripes < 1 {
		stripes = 1
	}
	for i := 0; i < stripes; i++ {
		art.Locks = append(art.Locks, k.NewLock(fmt.Sprintf("%s.lock%d", p.Name, i)))
	}
	if p.BarrierIters > 0 {
		art.Barrier = k.NewBarrier(p.Name+".barrier", threads)
	}
	total := sim.Time(float64(p.Work) * (1 + p.ParallelOverhead) * scale)
	share := total / sim.Time(threads)
	for i := 0; i < threads; i++ {
		prog := &parProgram{
			p:         p,
			dev:       dev,
			locks:     art.Locks,
			barrier:   art.Barrier,
			remaining: share,
			doIO:      i == 0 && p.IOOpsPerSec > 0,
		}
		k.Spawn(fmt.Sprintf("%s.%d", p.Name, i), i%nv, prog)
	}
	return art, nil
}

func (t *parProgram) Next(ctx *guest.StepCtx) guest.Step {
	switch t.phase {
	case 1: // inside the critical section: compute CSLen then release
		t.phase = 2
		return guest.Compute(ctx.Rand.Jitter(t.p.CSLen, 0.3))
	case 2:
		t.phase = 3
		return guest.Release(t.lock)
	case 3: // after the CS: maybe barrier / io, then back to compute
		t.phase = 0
		t.iter++
		if t.barrier != nil && t.p.BarrierIters > 0 && t.iter%t.p.BarrierIters == 0 {
			return guest.JoinBarrier(t.barrier)
		}
		if t.doIO && ctx.Rand.Bool(t.ioProbability()) {
			return guest.Read(t.dev, t.p.IOBytes, true)
		}
		fallthrough
	default: // compute toward the next synchronization point
		if t.remaining <= 0 {
			// Exiting: leave the barrier party first so the remaining
			// threads are not stranded waiting for this one.
			if t.barrier != nil && !t.left {
				t.left = true
				return guest.LeaveBarrier(t.barrier)
			}
			return guest.Done()
		}
		if t.p.SyncPerSec <= 0 {
			// No synchronization: burn the remaining work in slices so
			// ticks still preempt fairly.
			chunk := sim.MinTime(t.remaining, 10*sim.Millisecond)
			t.remaining -= chunk
			return guest.Compute(chunk)
		}
		interval := sim.Time(float64(sim.Second) / t.p.SyncPerSec)
		chunk := ctx.Rand.Exp(interval)
		if chunk > t.remaining {
			chunk = t.remaining
		}
		t.remaining -= chunk
		t.phase = 4 // next call acquires the lock
		return guest.Compute(chunk)
	case 4:
		t.phase = 1
		t.lock = t.locks[ctx.Rand.Intn(len(t.locks))]
		return guest.Acquire(t.lock)
	}
}

// ioProbability converts the profile's I/O rate into a per-sync-iteration
// probability for thread 0.
func (t *parProgram) ioProbability() float64 {
	if t.p.SyncPerSec <= 0 {
		return 0
	}
	p := t.p.IOOpsPerSec / t.p.SyncPerSec
	if p > 1 {
		p = 1
	}
	return p
}
