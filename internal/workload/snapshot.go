package workload

// Checkpoint support for the workload programs. Each program serializes
// only the fields its Next reads and mutates; construction-time parameters
// (job descriptions, devices, lock/barrier pointers) are re-established by
// rebuilding the scenario and are deliberately absent from the encoding.

import (
	"fmt"

	"paratick/internal/guest"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

var (
	_ guest.ProgramState = (*fioProgram)(nil)
	_ guest.ProgramState = (*syncProgram)(nil)
	_ guest.ProgramState = (*seqProgram)(nil)
	_ guest.ProgramState = (*parProgram)(nil)
)

// SaveState implements guest.ProgramState.
func (f *fioProgram) SaveState(enc *snap.Encoder) {
	enc.I64(int64(f.opsLeft))
	enc.Bool(f.thinking)
	enc.I64(int64(f.opIndex))
}

// LoadState implements guest.ProgramState.
func (f *fioProgram) LoadState(dec *snap.Decoder) error {
	f.opsLeft = int(dec.I64())
	f.thinking = dec.Bool()
	f.opIndex = int(dec.I64())
	return dec.Err()
}

// SaveState implements guest.ProgramState.
func (p *syncProgram) SaveState(enc *snap.Encoder) {
	enc.I64(int64(p.phase))
	enc.Bool(p.done)
	enc.Bool(p.left)
}

// LoadState implements guest.ProgramState.
func (p *syncProgram) LoadState(dec *snap.Decoder) error {
	p.phase = int(dec.I64())
	p.done = dec.Bool()
	p.left = dec.Bool()
	return dec.Err()
}

// SaveState implements guest.ProgramState.
func (s *seqProgram) SaveState(enc *snap.Encoder) {
	enc.I64(int64(s.remaining))
	enc.Bool(s.ioPending)
	enc.Bool(s.ioSeq)
}

// LoadState implements guest.ProgramState.
func (s *seqProgram) LoadState(dec *snap.Decoder) error {
	s.remaining = sim.Time(dec.I64())
	s.ioPending = dec.Bool()
	s.ioSeq = dec.Bool()
	return dec.Err()
}

// SaveState implements guest.ProgramState. The current-iteration lock is
// encoded as its index into the thread's stripe slice (-1 when none is
// held or pending), never as a pointer.
func (t *parProgram) SaveState(enc *snap.Encoder) {
	idx := int64(-1)
	for i, l := range t.locks {
		if l == t.lock {
			idx = int64(i)
			break
		}
	}
	enc.I64(idx)
	enc.I64(int64(t.remaining))
	enc.I64(int64(t.iter))
	enc.I64(int64(t.phase))
	enc.Bool(t.left)
}

// LoadState implements guest.ProgramState.
func (t *parProgram) LoadState(dec *snap.Decoder) error {
	idx := dec.I64()
	t.remaining = sim.Time(dec.I64())
	t.iter = int(dec.I64())
	t.phase = int(dec.I64())
	t.left = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	t.lock = nil
	if idx >= 0 {
		if int(idx) >= len(t.locks) {
			return fmt.Errorf("workload: %s: snapshot lock stripe %d out of %d", t.p.Name, idx, len(t.locks))
		}
		t.lock = t.locks[idx]
	}
	return nil
}
