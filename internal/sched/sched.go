// Package sched is the host's pluggable vCPU scheduling layer. The
// hypervisor run loop (internal/kvm) owns VM entries, exits and interrupt
// injection; *which* runnable vCPU a physical CPU executes next, and when a
// running vCPU's turn ends, is decided here, behind the Scheduler interface.
//
// Two policies are provided. FIFO reproduces the original hardcoded
// behaviour bit for bit: per-pCPU FIFO ready queues and a fixed timeslice
// checked at host ticks. Fair is a CFS-like virtual-runtime policy with
// per-socket idle work stealing, which schedules overcommitted vCPUs with
// pending interrupt injections sooner (§3.1's consolidation scenario).
//
// Determinism contract: schedulers must be pure functions of the call
// sequence. No map iteration anywhere; every ordering decision breaks ties
// on Node.Key (the vCPU's host-wide creation ordinal) and then on the lower
// CPU id, so a fixed seed reproduces runs byte for byte at any worker count.
package sched

import (
	"fmt"

	"paratick/internal/hw"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// Kind selects a scheduling policy. The zero value is FIFO, the legacy
// behaviour, so zero-valued configs remain behaviour-preserving.
type Kind int

const (
	// FIFO is the original policy: strict per-pCPU arrival order, fixed
	// timeslice, no migration.
	FIFO Kind = iota
	// Fair is a CFS-like policy: least virtual runtime first, a timeslice
	// that shrinks with queue depth, and per-socket idle work stealing.
	Fair
)

// String names the policy.
func (k Kind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	default:
		return fmt.Sprintf("sched(%d)", int(k))
	}
}

// Parse resolves "fifo" or "fair".
func Parse(s string) (Kind, error) {
	switch s {
	case "fifo", "":
		return FIFO, nil
	case "fair", "cfs":
		return Fair, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q (want fifo or fair)", s)
	}
}

// Validate reports whether the kind is a known policy.
func (k Kind) Validate() error {
	switch k {
	case FIFO, Fair:
		return nil
	default:
		return fmt.Errorf("sched: unknown policy %d", int(k))
	}
}

// Node is the scheduler-owned per-entity state. Entities (host vCPUs) embed
// one and expose it through Entity.SchedNode, so schedulers never need maps
// keyed by entity.
type Node struct {
	// Key is a stable host-wide ordinal assigned at entity creation. All
	// ordering ties break on it (never on pointers or map order), which is
	// what keeps scheduling decisions reproducible.
	Key uint64

	// vruntime is the entity's accumulated weighted CPU occupancy (Fair).
	vruntime sim.Time
}

// VRuntime exposes the accumulated virtual runtime (for tests and reports).
func (n *Node) VRuntime() sim.Time { return n.vruntime }

// Entity is one schedulable thread of execution — in this repo, a host-side
// vCPU. The scheduler sees entities opaquely through their Node.
type Entity interface {
	SchedNode() *Node
}

// Scheduler decides which entity each physical CPU runs next. One instance
// serves the whole host (so policies can see sibling queues for work
// stealing); callers index it by CPU id.
//
// The hypervisor calls it at four points:
//
//   - Enqueue when a vCPU becomes runnable (boot, wake, timeslice rotation);
//   - PickNext when a pCPU is free and wants work (the policy may return an
//     entity stolen from a sibling queue; the caller re-homes it);
//   - TickPreempt at every host tick under a running vCPU, to decide
//     whether its turn is over;
//   - Ran when a vCPU leaves its pCPU, charging the occupancy it consumed.
type Scheduler interface {
	// Name returns the policy name ("fifo", "fair").
	Name() string
	// Enqueue makes e runnable on cpu's ready queue.
	Enqueue(cpu hw.CPUID, e Entity, now sim.Time)
	// PickNext removes and returns the entity cpu should run next, or nil
	// when no work is available anywhere the policy is willing to look.
	PickNext(cpu hw.CPUID, now sim.Time) Entity
	// QueueLen reports how many entities wait on cpu's ready queue.
	QueueLen(cpu hw.CPUID) int
	// TickPreempt reports whether the entity running on cpu since
	// sliceStart should be rotated out at a host tick firing at now.
	TickPreempt(cpu hw.CPUID, running Entity, sliceStart, now sim.Time) bool
	// Ran charges d of pCPU occupancy to e (guest execution plus the exit
	// handling done on its behalf). Policies that do not account runtime
	// ignore it.
	Ran(e Entity, d sim.Time)
	// Reset returns the scheduler to its freshly built state with a new
	// base timeslice, retaining queue capacity — the pooled-host reuse
	// path. A reset scheduler must behave identically to a newly built one.
	Reset(timeslice sim.Time)
	// Save serializes the scheduler's queue state for a checkpoint;
	// entities are encoded by Node.Key.
	Save(enc *snap.Encoder)
	// Load restores state saved by Save into a freshly built scheduler of
	// the same kind and topology; lookup resolves entity keys.
	Load(dec *snap.Decoder, lookup func(key uint64) Entity) error
}

// New builds a scheduler of the given kind for a host with the given
// topology and base timeslice.
func New(kind Kind, topo hw.Topology, timeslice sim.Time) (Scheduler, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if timeslice <= 0 {
		return nil, fmt.Errorf("sched: timeslice must be positive, got %v", timeslice)
	}
	switch kind {
	case FIFO:
		return newFIFO(topo, timeslice), nil
	case Fair:
		return newFair(topo, timeslice), nil
	default:
		return nil, kind.Validate()
	}
}
