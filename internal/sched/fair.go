package sched

import (
	"paratick/internal/hw"
	"paratick/internal/sim"
)

// fairSched is a CFS-like policy: each entity accumulates virtual runtime
// while it occupies a pCPU, queues are ordered by least vruntime (ties on
// Node.Key), the timeslice shrinks as the queue deepens, and a pCPU that
// goes idle steals the best waiter from a same-socket sibling. Under
// overcommit this gets woken vCPUs — which carry pending interrupt
// injections — onto a pCPU well before a FIFO rotation would.
type fairSched struct {
	//snap:skip immutable host topology from the scenario
	topo hw.Topology
	//snap:skip immutable policy parameter from the scenario
	timeslice sim.Time
	// minGranularity bounds how small the dynamic timeslice gets, CFS's
	// sysctl_sched_min_granularity.
	//snap:skip immutable policy parameter from the scenario
	minGranularity sim.Time
	queues         []fairQueue
}

// fairQueue holds one pCPU's waiters. Queues stay tiny (bounded by the
// overcommit ratio), so min-selection is a linear scan with deterministic
// tie-breaking rather than a tree.
type fairQueue struct {
	//snap:skip queue membership is re-derived from restored vCPU states
	fifoQueue
	// minVruntime is a monotonic floor tracking the queue's progress; newly
	// woken entities are placed at the floor so a long sleeper cannot
	// monopolize the pCPU while everyone else catches up.
	minVruntime sim.Time
}

func newFair(topo hw.Topology, timeslice sim.Time) *fairSched {
	return &fairSched{
		topo:           topo,
		timeslice:      timeslice,
		minGranularity: timeslice / 8,
		queues:         make([]fairQueue, topo.NumCPUs()),
	}
}

func (s *fairSched) Name() string { return Fair.String() }

func (s *fairSched) Enqueue(cpu hw.CPUID, e Entity, now sim.Time) {
	q := &s.queues[cpu]
	// Gentle sleeper credit (CFS's GENTLE_FAIR_SLEEPERS): a waker is placed
	// half a base timeslice below the queue's floor rather than exactly at
	// it. At the bare floor a woken vCPU merely *ties* with whatever has
	// been spinning — and a tie is decided by Key, i.e. creation order —
	// whereas the credit makes wake-then-run strictly preferred while still
	// bounding how much history a long sleeper can bank.
	if n, floor := e.SchedNode(), q.minVruntime-s.timeslice/2; n.vruntime < floor {
		n.vruntime = floor
	}
	q.push(e)
}

// minIndex returns the index of the queue's least-vruntime waiter, ties
// broken by the lower Node.Key. -1 when empty.
func (q *fairQueue) minIndex() int {
	best := -1
	var bestV sim.Time
	var bestKey uint64
	for i := 0; i < q.len(); i++ {
		n := q.at(i).SchedNode()
		if best < 0 || n.vruntime < bestV || (n.vruntime == bestV && n.Key < bestKey) {
			best, bestV, bestKey = i, n.vruntime, n.Key
		}
	}
	return best
}

func (s *fairSched) PickNext(cpu hw.CPUID, now sim.Time) Entity {
	q := &s.queues[cpu]
	if i := q.minIndex(); i >= 0 {
		return s.take(q, i)
	}
	return s.steal(cpu)
}

// steal scans the idle CPU's socket siblings in increasing CPU id order and
// takes the globally least-vruntime waiter. The fixed scan order and the
// (vruntime, Key, CPU id) tie-break keep stealing deterministic.
func (s *fairSched) steal(cpu hw.CPUID) Entity {
	socket := s.topo.SocketOf(cpu)
	bestCPU, bestIdx := hw.CPUID(-1), -1
	var bestV sim.Time
	var bestKey uint64
	for _, sib := range s.topo.CPUsOnSocket(socket) {
		if sib == cpu {
			continue
		}
		q := &s.queues[sib]
		i := q.minIndex()
		if i < 0 {
			continue
		}
		n := q.at(i).SchedNode()
		if bestIdx < 0 || n.vruntime < bestV || (n.vruntime == bestV && n.Key < bestKey) {
			bestCPU, bestIdx, bestV, bestKey = sib, i, n.vruntime, n.Key
		}
	}
	if bestIdx < 0 {
		return nil
	}
	return s.take(&s.queues[bestCPU], bestIdx)
}

// take removes index i from q and advances the queue's vruntime floor.
func (s *fairSched) take(q *fairQueue, i int) Entity {
	e := q.removeAt(i)
	if v := e.SchedNode().vruntime; v > q.minVruntime {
		q.minVruntime = v
	}
	return e
}

func (s *fairSched) QueueLen(cpu hw.CPUID) int { return s.queues[cpu].len() }

// TickPreempt expires the running entity once it has consumed its share of
// the base timeslice: timeslice/(waiters+1), floored at the minimum
// granularity. With an empty queue nothing contends and the entity runs on.
func (s *fairSched) TickPreempt(cpu hw.CPUID, running Entity, sliceStart, now sim.Time) bool {
	qlen := s.queues[cpu].len()
	if qlen == 0 {
		return false
	}
	slice := s.timeslice / sim.Time(qlen+1)
	if slice < s.minGranularity {
		slice = s.minGranularity
	}
	return now-sliceStart >= slice
}

func (s *fairSched) Ran(e Entity, d sim.Time) {
	if d > 0 {
		e.SchedNode().vruntime += d
	}
}

func (s *fairSched) Reset(timeslice sim.Time) {
	s.timeslice = timeslice
	s.minGranularity = timeslice / 8
	for i := range s.queues {
		q := &s.queues[i]
		clearTail(q.items[:cap(q.items)], 0)
		q.items = q.items[:0]
		q.head = 0
		q.minVruntime = 0
	}
}
