package sched

import (
	"paratick/internal/hw"
	"paratick/internal/sim"
)

// fifoQueue is one pCPU's ready queue with an O(1) head pop: a slice plus a
// head index, compacted only when the dead prefix dominates. (The original
// in-hypervisor queue shifted the whole slice with copy on every dispatch —
// O(n) per pop under overcommit.)
type fifoQueue struct {
	items []Entity
	head  int
}

func (q *fifoQueue) push(e Entity) { q.items = append(q.items, e) }

func (q *fifoQueue) len() int { return len(q.items) - q.head }

func (q *fifoQueue) pop() Entity {
	if q.head >= len(q.items) {
		return nil
	}
	e := q.items[q.head]
	q.items[q.head] = nil // release the reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clearTail(q.items, n)
		q.items = q.items[:n]
		q.head = 0
	}
	return e
}

// removeAt removes and returns the queued entity at logical index i.
func (q *fifoQueue) removeAt(i int) Entity {
	idx := q.head + i
	e := q.items[idx]
	copy(q.items[idx:], q.items[idx+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return e
}

// at returns the queued entity at logical index i without removing it.
func (q *fifoQueue) at(i int) Entity { return q.items[q.head+i] }

func clearTail(s []Entity, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}

// fifoSched reproduces the legacy hardcoded policy exactly: per-pCPU arrival
// order, a fixed timeslice checked at host ticks, no migration, no runtime
// accounting.
type fifoSched struct {
	queues []fifoQueue
	//snap:skip immutable policy parameter from the scenario
	timeslice sim.Time
}

func newFIFO(topo hw.Topology, timeslice sim.Time) *fifoSched {
	return &fifoSched{queues: make([]fifoQueue, topo.NumCPUs()), timeslice: timeslice}
}

func (s *fifoSched) Name() string { return FIFO.String() }

func (s *fifoSched) Enqueue(cpu hw.CPUID, e Entity, now sim.Time) {
	s.queues[cpu].push(e)
}

func (s *fifoSched) PickNext(cpu hw.CPUID, now sim.Time) Entity {
	return s.queues[cpu].pop()
}

func (s *fifoSched) QueueLen(cpu hw.CPUID) int { return s.queues[cpu].len() }

func (s *fifoSched) TickPreempt(cpu hw.CPUID, running Entity, sliceStart, now sim.Time) bool {
	return s.queues[cpu].len() > 0 && now-sliceStart >= s.timeslice
}

func (s *fifoSched) Ran(e Entity, d sim.Time) {}

func (s *fifoSched) Reset(timeslice sim.Time) {
	s.timeslice = timeslice
	for i := range s.queues {
		q := &s.queues[i]
		clearTail(q.items[:cap(q.items)], 0)
		q.items = q.items[:0]
		q.head = 0
	}
}
