package sched

// Checkpoint/restore of scheduler queues. Entities are encoded by their
// stable Node.Key (never by pointer), and queue contents are saved in
// logical order so a restored scheduler makes byte-identical decisions.
// Per-entity vruntime travels with the entity itself (Node.Save), since
// the entity's owner serializes it alongside the rest of its state.

import (
	"fmt"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

// Save serializes the node's accumulated scheduling state. Key is not
// encoded: it is construction-time identity, re-established on rebuild.
func (n *Node) Save(enc *snap.Encoder) {
	enc.I64(int64(n.vruntime))
}

// Load restores state saved by Save.
func (n *Node) Load(dec *snap.Decoder) error {
	n.vruntime = sim.Time(dec.I64())
	return dec.Err()
}

func (q *fifoQueue) save(enc *snap.Encoder) {
	enc.U32(uint32(q.len()))
	for i := 0; i < q.len(); i++ {
		enc.U64(q.at(i).SchedNode().Key)
	}
}

func (q *fifoQueue) load(dec *snap.Decoder, lookup func(key uint64) Entity) error {
	// A rebuilt scenario enqueues entities while replaying its construction
	// (VM.Start); the snapshot's queue contents replace them wholesale.
	clearTail(q.items, 0)
	q.items = q.items[:0]
	q.head = 0
	n := int(dec.U32())
	for i := 0; i < n && dec.Err() == nil; i++ {
		key := dec.U64()
		e := lookup(key)
		if e == nil {
			return fmt.Errorf("sched: snapshot references unknown entity key %d", key)
		}
		q.push(e)
	}
	return dec.Err()
}

// Save serializes every per-pCPU ready queue.
func (s *fifoSched) Save(enc *snap.Encoder) {
	enc.Section("sched:fifo")
	enc.U32(uint32(len(s.queues)))
	for i := range s.queues {
		s.queues[i].save(enc)
	}
}

// Load restores queues saved by Save into a fresh scheduler of identical
// topology. lookup resolves entity keys back to live entities.
func (s *fifoSched) Load(dec *snap.Decoder, lookup func(key uint64) Entity) error {
	dec.Section("sched:fifo")
	if n := int(dec.U32()); dec.Err() == nil && n != len(s.queues) {
		return fmt.Errorf("sched: snapshot has %d queues, scheduler has %d", n, len(s.queues))
	}
	for i := range s.queues {
		if err := s.queues[i].load(dec, lookup); err != nil {
			return err
		}
	}
	return dec.Err()
}

// Save serializes every per-pCPU ready queue plus its vruntime floor.
// Entities are restored by direct queue insertion, not Enqueue — Enqueue
// applies the sleeper credit, which must not be re-applied on restore.
func (s *fairSched) Save(enc *snap.Encoder) {
	enc.Section("sched:fair")
	enc.U32(uint32(len(s.queues)))
	for i := range s.queues {
		s.queues[i].save(enc)
		enc.I64(int64(s.queues[i].minVruntime))
	}
}

// Load restores queues saved by Save; see fifoSched.Load.
func (s *fairSched) Load(dec *snap.Decoder, lookup func(key uint64) Entity) error {
	dec.Section("sched:fair")
	if n := int(dec.U32()); dec.Err() == nil && n != len(s.queues) {
		return fmt.Errorf("sched: snapshot has %d queues, scheduler has %d", n, len(s.queues))
	}
	for i := range s.queues {
		if err := s.queues[i].load(dec, lookup); err != nil {
			return err
		}
		s.queues[i].minVruntime = sim.Time(dec.I64())
	}
	return dec.Err()
}
