package sched

import (
	"testing"

	"paratick/internal/hw"
	"paratick/internal/sim"
)

type ent struct{ node Node }

func (e *ent) SchedNode() *Node { return &e.node }

func newEnt(key uint64, vruntime sim.Time) *ent {
	return &ent{node: Node{Key: key, vruntime: vruntime}}
}

func testTopo() hw.Topology {
	return hw.Topology{Sockets: 2, CPUsPerSocket: 2, CrossSocketTax: 1.35}
}

func TestKindParseString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"fifo", FIFO}, {"", FIFO}, {"fair", Fair}, {"cfs", Fair}} {
		k, err := Parse(tc.in)
		if err != nil || k != tc.want {
			t.Errorf("Parse(%q) = %v, %v", tc.in, k, err)
		}
	}
	if _, err := Parse("rr"); err == nil {
		t.Error("unknown policy accepted")
	}
	if FIFO.String() != "fifo" || Fair.String() != "fair" {
		t.Error("bad names")
	}
	if err := Kind(7).Validate(); err == nil {
		t.Error("invalid kind validated")
	}
	if _, err := New(Kind(7), testTopo(), sim.Millisecond); err == nil {
		t.Error("New accepted invalid kind")
	}
	if _, err := New(FIFO, testTopo(), 0); err == nil {
		t.Error("New accepted zero timeslice")
	}
}

func TestFIFOOrderAndTick(t *testing.T) {
	s, err := New(FIFO, testTopo(), 6*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "fifo" {
		t.Fatalf("name = %q", s.Name())
	}
	a, b, c := newEnt(1, 0), newEnt(2, 0), newEnt(3, 0)
	s.Enqueue(0, a, 0)
	s.Enqueue(0, b, 0)
	if got := s.QueueLen(0); got != 2 {
		t.Fatalf("len = %d", got)
	}
	// Strict arrival order, no stealing from CPU 0's queue by CPU 1.
	if s.PickNext(1, 0) != nil {
		t.Fatal("fifo stole work")
	}
	if s.PickNext(0, 0) != a {
		t.Fatal("want a first")
	}
	s.Enqueue(0, c, 0)
	if s.PickNext(0, 0) != b || s.PickNext(0, 0) != c || s.PickNext(0, 0) != nil {
		t.Fatal("fifo order broken")
	}
	// Legacy preemption rule: queue non-empty AND slice elapsed.
	s.Enqueue(0, b, 0)
	if s.TickPreempt(0, a, 0, 5*sim.Millisecond) {
		t.Error("preempted before timeslice")
	}
	if !s.TickPreempt(0, a, 0, 6*sim.Millisecond) {
		t.Error("no preempt at timeslice with waiter")
	}
	s.PickNext(0, 0)
	if s.TickPreempt(0, a, 0, sim.Second) {
		t.Error("preempted with empty queue")
	}
	s.Ran(a, sim.Second) // no-op for FIFO
	if a.node.VRuntime() != 0 {
		t.Error("fifo accounted vruntime")
	}
}

// TestFIFOQueueCompaction pushes enough entities through the ring that the
// head-index compaction path runs, and checks order survives it.
func TestFIFOQueueCompaction(t *testing.T) {
	var q fifoQueue
	next := uint64(0)
	popped := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.push(newEnt(next, 0))
			next++
		}
		for i := 0; i < 5; i++ {
			e := q.pop()
			if e == nil {
				t.Fatal("premature empty")
			}
			if got := e.SchedNode().Key; got != popped {
				t.Fatalf("popped key %d, want %d", got, popped)
			}
			popped++
		}
	}
	for q.len() > 0 {
		if got := q.pop().SchedNode().Key; got != popped {
			t.Fatalf("drain key %d, want %d", got, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d", popped, next)
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue")
	}
}

func TestFairPicksLeastVruntime(t *testing.T) {
	s, err := New(Fair, testTopo(), 6*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := newEnt(1, 300), newEnt(2, 100), newEnt(3, 100)
	s.Enqueue(0, a, 0)
	s.Enqueue(0, b, 0)
	s.Enqueue(0, c, 0)
	// b and c tie on vruntime; the lower key wins.
	if got := s.PickNext(0, 0); got != b {
		t.Fatalf("want b, got %v", got.SchedNode().Key)
	}
	if got := s.PickNext(0, 0); got != c {
		t.Fatal("want c second")
	}
	if got := s.PickNext(0, 0); got != a {
		t.Fatal("want a last")
	}
	s.Ran(a, 50)
	if a.node.VRuntime() != 350 {
		t.Fatalf("vruntime = %v", a.node.VRuntime())
	}
}

// TestFairWakePlacement verifies the monotonic floor with sleeper credit:
// an entity that slept through everyone else's progress is re-enqueued half
// a timeslice below the queue's floor — strictly preferred over the spinners
// that advanced the floor, but not at its stale low vruntime.
func TestFairWakePlacement(t *testing.T) {
	s := newFair(testTopo(), 6*sim.Millisecond)
	hog := newEnt(1, 0)
	s.Enqueue(0, hog, 0)
	s.Ran(hog, 10*sim.Millisecond)
	if s.PickNext(0, 0) != hog {
		t.Fatal("want hog")
	} // floor -> 0, hog runs
	s.Enqueue(0, hog, 0)
	if s.PickNext(0, 0) != hog {
		t.Fatal("want hog again")
	} // floor -> 10ms
	sleeper := newEnt(2, 0)
	s.Enqueue(0, sleeper, 0)
	if got, want := sleeper.node.VRuntime(), 7*sim.Millisecond; got != want {
		t.Fatalf("sleeper placed at %v, want floor minus credit (%v)", got, want)
	}
	// The credit makes the sleeper strictly preferred over the hog.
	s.Enqueue(0, hog, 0)
	if s.PickNext(0, 0) != sleeper {
		t.Fatal("woken sleeper should beat the hog")
	}
}

func TestFairStealsWithinSocketOnly(t *testing.T) {
	s := newFair(testTopo(), 6*sim.Millisecond) // sockets {0,1} and {2,3}
	w1, w2 := newEnt(5, 100), newEnt(6, 50)
	s.Enqueue(1, w1, 0)
	s.Enqueue(1, w2, 0)
	other := newEnt(7, 1)
	s.Enqueue(2, other, 0)
	// CPU 0 is idle: it must steal the least-vruntime waiter from its own
	// socket (CPU 1), never the cross-socket CPU 2 waiter.
	if got := s.PickNext(0, 0); got != w2 {
		t.Fatalf("stole wrong entity (key %d)", got.(*ent).node.Key)
	}
	if got := s.PickNext(0, 0); got != w1 {
		t.Fatal("second steal should drain socket sibling")
	}
	if got := s.PickNext(0, 0); got != nil {
		t.Fatal("stole across sockets")
	}
	if got := s.PickNext(3, 0); got != other {
		t.Fatal("socket 1 idle CPU should steal its sibling's waiter")
	}
}

func TestFairTickPreemptShrinksWithQueueDepth(t *testing.T) {
	s := newFair(testTopo(), 6*sim.Millisecond)
	run := newEnt(1, 0)
	if s.TickPreempt(0, run, 0, sim.Second) {
		t.Error("preempted with no waiters")
	}
	s.Enqueue(0, newEnt(2, 0), 0)
	// One waiter: slice = 6ms/2 = 3ms.
	if s.TickPreempt(0, run, 0, 2*sim.Millisecond) {
		t.Error("preempted before 3ms slice")
	}
	if !s.TickPreempt(0, run, 0, 3*sim.Millisecond) {
		t.Error("no preempt at 3ms with one waiter")
	}
	for i := uint64(3); i < 20; i++ {
		s.Enqueue(0, newEnt(i, 0), 0)
	}
	// Deep queue: slice floors at minGranularity = 6ms/8 = 750us.
	if s.TickPreempt(0, run, 0, 700*sim.Microsecond) {
		t.Error("preempted below min granularity")
	}
	if !s.TickPreempt(0, run, 0, 750*sim.Microsecond) {
		t.Error("no preempt at min granularity")
	}
}
