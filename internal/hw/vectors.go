package hw

import "fmt"

// Vector is an interrupt vector number in the x86 IDT space (0–255).
type Vector uint8

// Interrupt vectors used by the model. LOCAL_TIMER_VECTOR and
// RESCHEDULE_VECTOR match the roles of their Linux namesakes;
// ParatickVector is the vector the paper reserves for virtual scheduler
// ticks ("We reserve vector 235 for this purpose", §5.1).
const (
	LocalTimerVector Vector = 236 // guest LAPIC timer interrupt
	ParatickVector   Vector = 235 // paratick virtual scheduler tick
	RescheduleVector Vector = 253 // wakeup IPI between vCPUs
	CallFuncVector   Vector = 251 // smp_call_function IPI (TLB shootdown etc.)
	IODeviceBase     Vector = 48  // first vector used by emulated I/O devices
)

// String names the well-known vectors for diagnostics.
func (v Vector) String() string {
	switch v {
	case LocalTimerVector:
		return "local-timer(236)"
	case ParatickVector:
		return "paratick(235)"
	case RescheduleVector:
		return "reschedule(253)"
	case CallFuncVector:
		return "call-func(251)"
	}
	if v >= IODeviceBase && v < IODeviceBase+32 {
		return fmt.Sprintf("io-dev(%d)", uint8(v))
	}
	return fmt.Sprintf("vec(%d)", uint8(v))
}

// IsTimer reports whether the vector corresponds to a (physical or virtual)
// scheduler-tick interrupt.
func (v Vector) IsTimer() bool {
	return v == LocalTimerVector || v == ParatickVector
}
