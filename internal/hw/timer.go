package hw

import (
	"fmt"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

// DeadlineTimer models a one-shot hardware timer armed by writing an
// absolute deadline — the programming model of both the x86 TSC-deadline
// LAPIC timer and the VMX preemption timer (§3 of the paper). Re-arming an
// armed timer replaces the previous deadline, exactly like overwriting the
// TSC_DEADLINE MSR; writing a deadline in the past fires immediately
// (scheduled at "now"); Cancel disarms it.
type DeadlineTimer struct {
	//reset:keep diagnostic name fixed at construction, stable across reuse
	name string
	//snap:skip cache: label precomputed from name at construction
	//reset:keep cache: precomputed from name, which also survives reuse
	label string // precomputed event label; arming is a hot path
	//snap:skip engine wiring; Reset rebinds it when the owner moves lanes
	engine *sim.Engine
	//snap:skip pre-bound closure, recreated at construction
	//reset:keep pre-bound expiry closure, identical across reuses
	fire func(now sim.Time)
	//snap:skip pre-bound handler wrapping fire, recreated at construction
	handler  sim.Handler // pre-bound expiry handler; arming must not allocate
	ev       sim.Event
	deadline sim.Time
	armCount uint64
	expireCt uint64
}

// NewDeadlineTimer creates a disarmed timer that invokes fire on expiry.
func NewDeadlineTimer(engine *sim.Engine, name string, fire func(now sim.Time)) *DeadlineTimer {
	if engine == nil || fire == nil {
		panic("hw: DeadlineTimer requires an engine and a fire callback")
	}
	t := &DeadlineTimer{name: name, label: "timer:" + name, engine: engine, fire: fire}
	t.handler = func(e *sim.Engine) {
		t.ev = sim.Event{}
		t.expireCt++
		t.fire(e.Now())
	}
	return t
}

// Arm programs the timer to expire at deadline, replacing any previous
// deadline. A deadline at or before the current time fires at the current
// time (hardware behaviour for a stale TSC_DEADLINE write).
func (t *DeadlineTimer) Arm(deadline sim.Time) {
	t.Cancel()
	if deadline == sim.Forever {
		return
	}
	if deadline < t.engine.Now() {
		deadline = t.engine.Now()
	}
	t.deadline = deadline
	t.armCount++
	t.ev = t.engine.At(deadline, t.label, t.handler)
}

// ArmAfter programs the timer to expire delay from now.
func (t *DeadlineTimer) ArmAfter(delay sim.Time) {
	if delay == sim.Forever {
		t.Cancel()
		return
	}
	if delay < 0 {
		delay = 0
	}
	t.Arm(t.engine.Now() + delay)
}

// Cancel disarms the timer; it is a no-op when the timer is not armed.
func (t *DeadlineTimer) Cancel() {
	t.engine.Cancel(t.ev)
	t.ev = sim.Event{}
}

// Reset returns the timer to its just-constructed state on the given
// engine: disarmed, zero counters, no event handle. For pooled reuse after
// the owning engine was itself Reset (or the component moved lanes) — the
// stale handle is dropped, not canceled, because the engine generation that
// issued it is gone. The pre-bound expiry handler survives: it receives the
// dispatching engine as an argument, so rebinding costs nothing.
//
//paratick:noalloc
func (t *DeadlineTimer) Reset(engine *sim.Engine) {
	t.engine = engine
	t.ev = sim.Event{}
	t.deadline = 0
	t.armCount = 0
	t.expireCt = 0
}

// Armed reports whether the timer is currently programmed.
func (t *DeadlineTimer) Armed() bool { return t.ev.Pending() }

// Deadline returns the programmed expiry time, or sim.Forever when the
// timer is disarmed.
func (t *DeadlineTimer) Deadline() sim.Time {
	if !t.ev.Pending() {
		return sim.Forever
	}
	return t.deadline
}

// ArmCount returns how many times the timer has been (re)programmed.
func (t *DeadlineTimer) ArmCount() uint64 { return t.armCount }

// Expirations returns how many times the timer has fired.
func (t *DeadlineTimer) Expirations() uint64 { return t.expireCt }

// Save serializes the timer's state, including the pending expiry's
// (when, seq) coordinates so Load can re-arm it in the exact original
// dispatch order.
func (t *DeadlineTimer) Save(enc *snap.Encoder) {
	enc.Section("dtimer:" + t.name)
	enc.U64(t.armCount)
	enc.U64(t.expireCt)
	armed := t.ev.Pending()
	enc.Bool(armed)
	if armed {
		seq, _ := t.ev.Seq()
		enc.I64(int64(t.deadline))
		enc.U64(seq)
	}
}

// Load restores state saved by Save. The engine must already carry the
// restored clock and sequence counter (sim.Engine.Load); any stale event
// handle from before the engine was reset is dead and simply dropped.
func (t *DeadlineTimer) Load(dec *snap.Decoder) error {
	dec.Section("dtimer:" + t.name)
	t.armCount = dec.U64()
	t.expireCt = dec.U64()
	t.ev = sim.Event{}
	if dec.Bool() {
		deadline := sim.Time(dec.I64())
		seq := dec.U64()
		if err := dec.Err(); err != nil {
			return err
		}
		t.deadline = deadline
		t.ev = t.engine.ScheduleRestored(deadline, seq, t.label, t.handler)
	}
	return dec.Err()
}

// PeriodicTimer models a free-running periodic interrupt source — the host
// LAPIC programmed in periodic mode for the host scheduler tick. The phase
// offset staggers ticks across physical CPUs the way real LAPIC calibration
// does, preventing the model from firing every host tick in lockstep.
type PeriodicTimer struct {
	name string
	//snap:skip cache: label precomputed from name at construction
	label string
	//snap:skip engine wiring; Reset rebinds it when the owner moves lanes
	engine *sim.Engine
	//reset:keep tick rate fixed at construction; the host pool only reuses on a matching HostHz
	period sim.Time
	//snap:skip pre-bound closure, recreated at construction
	//reset:keep pre-bound tick closure, identical across reuses
	fire func(now sim.Time)
	//snap:skip pre-bound handler wrapping fire, recreated at construction
	handler sim.Handler // pre-bound tick handler; rescheduling must not allocate
	ev      sim.Event
	ticks   uint64
}

// NewPeriodicTimer creates a stopped periodic timer.
func NewPeriodicTimer(engine *sim.Engine, name string, period sim.Time, fire func(now sim.Time)) *PeriodicTimer {
	if engine == nil || fire == nil {
		panic("hw: PeriodicTimer requires an engine and a fire callback")
	}
	if period <= 0 {
		panic(fmt.Sprintf("hw: PeriodicTimer %q period must be positive, got %v", name, period))
	}
	t := &PeriodicTimer{name: name, label: "ptimer:" + name, engine: engine, period: period, fire: fire}
	t.handler = func(e *sim.Engine) {
		t.ticks++
		t.schedule(e.Now() + t.period)
		t.fire(e.Now())
	}
	return t
}

// Start begins ticking; the first tick fires phase nanoseconds from now and
// subsequent ticks follow every period. Starting a started timer panics.
func (t *PeriodicTimer) Start(phase sim.Time) {
	if t.ev.Pending() {
		panic(fmt.Sprintf("hw: PeriodicTimer %q started twice", t.name))
	}
	if phase < 0 {
		phase = 0
	}
	t.schedule(t.engine.Now() + phase)
}

//paratick:noalloc
func (t *PeriodicTimer) schedule(when sim.Time) {
	t.ev = t.engine.At(when, t.label, t.handler)
}

// Stop halts the timer.
func (t *PeriodicTimer) Stop() {
	t.engine.Cancel(t.ev)
	t.ev = sim.Event{}
}

// Reset returns the timer to its just-constructed state: stopped, zero
// ticks, no event handle. For pooled reuse after the owning engine was
// itself Reset — the stale handle is dropped, not canceled, because the
// engine generation that issued it is gone.
func (t *PeriodicTimer) Reset() {
	t.ev = sim.Event{}
	t.ticks = 0
}

// Running reports whether the timer is ticking.
func (t *PeriodicTimer) Running() bool { return t.ev.Pending() }

// Period returns the tick period.
func (t *PeriodicTimer) Period() sim.Time { return t.period }

// Ticks returns the number of ticks fired so far.
func (t *PeriodicTimer) Ticks() uint64 { return t.ticks }

// Save serializes the timer's state and the pending tick's (when, seq)
// coordinates.
func (t *PeriodicTimer) Save(enc *snap.Encoder) {
	enc.Section("ptimer:" + t.name)
	enc.I64(int64(t.period))
	enc.U64(t.ticks)
	running := t.ev.Pending()
	enc.Bool(running)
	if running {
		seq, _ := t.ev.Seq()
		enc.I64(int64(t.ev.When()))
		enc.U64(seq)
	}
}

// Load restores state saved by Save, re-arming the next tick at its
// original coordinates. The snapshot's period must match this timer's —
// the period is construction-time configuration, not restorable state.
func (t *PeriodicTimer) Load(dec *snap.Decoder) error {
	dec.Section("ptimer:" + t.name)
	period := sim.Time(dec.I64())
	ticks := dec.U64()
	running := dec.Bool()
	var when sim.Time
	var seq uint64
	if running {
		when = sim.Time(dec.I64())
		seq = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if period != t.period {
		return fmt.Errorf("hw: snapshot period %v for timer %q does not match configured %v", period, t.name, t.period)
	}
	t.ticks = ticks
	t.ev = sim.Event{}
	if running {
		t.ev = t.engine.ScheduleRestored(when, seq, t.label, t.handler)
	}
	return nil
}
