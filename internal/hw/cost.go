package hw

import (
	"fmt"

	"paratick/internal/sim"
)

// CostModel prices every hardware/hypervisor interaction in nanoseconds.
// These constants are the calibration surface of the reproduction: the paper
// reports results from real silicon (Intel VT-x, §6); we charge each modeled
// operation a fixed latency instead. Values follow published measurements of
// VM-exit round trips (~1–2 µs on contemporary Xeons), the paper's remark
// that preemption-timer exits are cheaper than LAPIC-timer exits (§3), and
// the Linux tick handler's observed microsecond-scale cost. Absolute numbers
// are inputs, not results; the experiments only depend on their ratios.
type CostModel struct {
	// VM-exit round-trip costs (exit + handling + re-entry), by reason.
	ExitMSRWrite     sim.Time // guest write to TSC_DEADLINE MSR, intercepted
	ExitPreemptTimer sim.Time // VMX preemption-timer expiry (cheaper, §3)
	ExitExternalIRQ  sim.Time // physical interrupt while guest running
	ExitHLT          sim.Time // guest executed HLT (idle entry)
	ExitIOKick       sim.Time // emulated I/O doorbell (MMIO/PIO)
	ExitIPI          sim.Time // guest APIC ICR write (wakeup IPI)
	ExitHypercall    sim.Time // paravirtual hypercall
	ExitPLE          sim.Time // pause-loop exit (disabled in the paper's setup)

	// Injection and host-side scheduling.
	InjectIRQ       sim.Time // extra VM-entry work when injecting an interrupt
	HostTickWork    sim.Time // host scheduler-tick handler, per host tick
	HostSchedDelay  sim.Time // latency from vCPU wake to VM entry on a free pCPU
	HostSchedSwitch sim.Time // host context switch between vCPUs (overcommit)
	HostTimerArm    sim.Time // host hrtimer programming on behalf of a guest

	// Guest-kernel software costs.
	GuestTickWork       sim.Time // scheduler-tick handler body
	GuestIRQEntry       sim.Time // interrupt prologue/epilogue
	GuestIdleEnterWork  sim.Time // dynticks idle-entry evaluation (Fig. 1b)
	GuestIdleExitWork   sim.Time // dynticks idle-exit path (Fig. 1c)
	GuestSchedSwitch    sim.Time // guest context switch between tasks
	GuestSyscall        sim.Time // syscall entry/exit
	GuestWakeup         sim.Time // try_to_wake_up on the waker side
	GuestTimerProgram   sim.Time // guest-side cost of composing an MSR write
	GuestIOSubmitWork   sim.Time // syscall + block-layer submission path
	GuestIOCompleteWork sim.Time // completion handler per finished request
}

// DefaultCostModel returns the calibrated cost model used by all paper
// experiments.
func DefaultCostModel() CostModel {
	us := sim.Microsecond
	return CostModel{
		ExitMSRWrite:     2200,
		ExitPreemptTimer: 900,
		ExitExternalIRQ:  1600,
		ExitHLT:          1800,
		ExitIOKick:       4 * us,
		ExitIPI:          1800,
		ExitHypercall:    1300,
		ExitPLE:          1200,

		InjectIRQ:       400,
		HostTickWork:    1500,
		HostSchedDelay:  3 * us,
		HostSchedSwitch: 1600,
		HostTimerArm:    300,

		GuestTickWork:       2500,
		GuestIRQEntry:       700,
		GuestIdleEnterWork:  1200,
		GuestIdleExitWork:   1800,
		GuestSchedSwitch:    1100,
		GuestSyscall:        500,
		GuestWakeup:         600,
		GuestTimerProgram:   200,
		GuestIOSubmitWork:   1500,
		GuestIOCompleteWork: 1200,
	}
}

// Validate rejects non-positive costs: a zero exit cost would silently
// remove the phenomenon under study.
func (c CostModel) Validate() error {
	check := func(name string, v sim.Time) error {
		if v <= 0 {
			return fmt.Errorf("hw: cost %s must be positive, got %v", name, v)
		}
		return nil
	}
	fields := []struct {
		name string
		v    sim.Time
	}{
		{"ExitMSRWrite", c.ExitMSRWrite},
		{"ExitPreemptTimer", c.ExitPreemptTimer},
		{"ExitExternalIRQ", c.ExitExternalIRQ},
		{"ExitHLT", c.ExitHLT},
		{"ExitIOKick", c.ExitIOKick},
		{"ExitIPI", c.ExitIPI},
		{"ExitHypercall", c.ExitHypercall},
		{"ExitPLE", c.ExitPLE},
		{"InjectIRQ", c.InjectIRQ},
		{"HostTickWork", c.HostTickWork},
		{"HostSchedDelay", c.HostSchedDelay},
		{"HostSchedSwitch", c.HostSchedSwitch},
		{"HostTimerArm", c.HostTimerArm},
		{"GuestTickWork", c.GuestTickWork},
		{"GuestIRQEntry", c.GuestIRQEntry},
		{"GuestIdleEnterWork", c.GuestIdleEnterWork},
		{"GuestIdleExitWork", c.GuestIdleExitWork},
		{"GuestSchedSwitch", c.GuestSchedSwitch},
		{"GuestSyscall", c.GuestSyscall},
		{"GuestWakeup", c.GuestWakeup},
		{"GuestTimerProgram", c.GuestTimerProgram},
		{"GuestIOSubmitWork", c.GuestIOSubmitWork},
		{"GuestIOCompleteWork", c.GuestIOCompleteWork},
	}
	for _, f := range fields {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}
