// Package hw models the hardware substrate underneath the hypervisor: CPU
// topology, the interrupt-vector space, the timekeeping devices involved in
// scheduler-tick management (TSC-deadline timer, VMX preemption timer), and
// the cost model that prices every hardware interaction in nanoseconds.
//
// The package corresponds to the pieces of the paper's test platform that
// cannot be used directly from Go: the 4-socket/80-CPU NUMA server, the
// LAPIC, and the VT-x timer facilities (§2, §3 of the paper).
package hw

import "fmt"

// CPUID identifies a physical CPU.
type CPUID int

// Topology describes the physical CPU layout of the host. The paper's test
// system is a 4-socket NUMA server with 20 CPUs per socket (§6).
type Topology struct {
	Sockets        int
	CPUsPerSocket  int
	CrossSocketTax float64 // multiplier on IPI/wakeup costs across sockets
}

// PaperTopology returns the evaluation machine from §6: 4 sockets × 20 CPUs.
func PaperTopology() Topology {
	return Topology{Sockets: 4, CPUsPerSocket: 20, CrossSocketTax: 1.35}
}

// SmallTopology returns a single-socket 16-CPU machine, used by the §3.3
// hypothetical scenarios (Table 1).
func SmallTopology() Topology {
	return Topology{Sockets: 1, CPUsPerSocket: 16, CrossSocketTax: 1.35}
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.Sockets <= 0 {
		return fmt.Errorf("hw: topology needs at least one socket, got %d", t.Sockets)
	}
	if t.CPUsPerSocket <= 0 {
		return fmt.Errorf("hw: topology needs at least one CPU per socket, got %d", t.CPUsPerSocket)
	}
	if t.CrossSocketTax < 1 {
		return fmt.Errorf("hw: cross-socket tax must be >= 1, got %v", t.CrossSocketTax)
	}
	return nil
}

// NumCPUs returns the total number of physical CPUs.
func (t Topology) NumCPUs() int { return t.Sockets * t.CPUsPerSocket }

// SocketOf returns the socket an individual CPU belongs to.
func (t Topology) SocketOf(cpu CPUID) int {
	if cpu < 0 || int(cpu) >= t.NumCPUs() {
		panic(fmt.Sprintf("hw: CPU %d out of range [0,%d)", cpu, t.NumCPUs()))
	}
	return int(cpu) / t.CPUsPerSocket
}

// SameSocket reports whether two CPUs share a socket.
func (t Topology) SameSocket(a, b CPUID) bool { return t.SocketOf(a) == t.SocketOf(b) }

// CPUsOnSocket returns the CPU ids belonging to a socket.
func (t Topology) CPUsOnSocket(socket int) []CPUID {
	if socket < 0 || socket >= t.Sockets {
		panic(fmt.Sprintf("hw: socket %d out of range [0,%d)", socket, t.Sockets))
	}
	out := make([]CPUID, t.CPUsPerSocket)
	for i := range out {
		out[i] = CPUID(socket*t.CPUsPerSocket + i)
	}
	return out
}

// SpreadAcross picks n CPUs spread across the given number of sockets, the
// way the paper places its small/medium/large VMs (§6.2): vCPUs are packed
// socket by socket, using `sockets` distinct sockets.
func (t Topology) SpreadAcross(n, sockets int) ([]CPUID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hw: need a positive CPU count, got %d", n)
	}
	if sockets <= 0 || sockets > t.Sockets {
		return nil, fmt.Errorf("hw: socket count %d out of range [1,%d]", sockets, t.Sockets)
	}
	if n > sockets*t.CPUsPerSocket {
		return nil, fmt.Errorf("hw: cannot place %d CPUs on %d sockets of %d CPUs",
			n, sockets, t.CPUsPerSocket)
	}
	out := make([]CPUID, 0, n)
	perSocket := (n + sockets - 1) / sockets
	for s := 0; s < sockets && len(out) < n; s++ {
		cpus := t.CPUsOnSocket(s)
		for i := 0; i < perSocket && len(out) < n; i++ {
			out = append(out, cpus[i])
		}
	}
	return out, nil
}
