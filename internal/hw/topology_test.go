package hw

import (
	"testing"
	"testing/quick"
)

func TestPaperTopology(t *testing.T) {
	top := PaperTopology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumCPUs() != 80 {
		t.Fatalf("paper topology has %d CPUs, want 80", top.NumCPUs())
	}
	if top.Sockets != 4 || top.CPUsPerSocket != 20 {
		t.Fatalf("paper topology = %+v", top)
	}
}

func TestSmallTopology(t *testing.T) {
	top := SmallTopology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.NumCPUs() != 16 {
		t.Fatalf("small topology has %d CPUs, want 16", top.NumCPUs())
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Sockets: 0, CPUsPerSocket: 4, CrossSocketTax: 1},
		{Sockets: 2, CPUsPerSocket: 0, CrossSocketTax: 1},
		{Sockets: 2, CPUsPerSocket: 4, CrossSocketTax: 0.5},
	}
	for i, top := range bad {
		if err := top.Validate(); err == nil {
			t.Errorf("case %d: bad topology %+v validated", i, top)
		}
	}
}

func TestSocketOf(t *testing.T) {
	top := PaperTopology()
	cases := []struct {
		cpu  CPUID
		want int
	}{{0, 0}, {19, 0}, {20, 1}, {39, 1}, {79, 3}}
	for _, c := range cases {
		if got := top.SocketOf(c.cpu); got != c.want {
			t.Errorf("SocketOf(%d) = %d, want %d", c.cpu, got, c.want)
		}
	}
	if !top.SameSocket(0, 19) || top.SameSocket(19, 20) {
		t.Error("SameSocket boundaries wrong")
	}
}

func TestSocketOfPanicsOutOfRange(t *testing.T) {
	top := SmallTopology()
	for _, cpu := range []CPUID{-1, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SocketOf(%d) did not panic", cpu)
				}
			}()
			top.SocketOf(cpu)
		}()
	}
}

func TestCPUsOnSocket(t *testing.T) {
	top := PaperTopology()
	cpus := top.CPUsOnSocket(2)
	if len(cpus) != 20 {
		t.Fatalf("socket 2 has %d CPUs", len(cpus))
	}
	if cpus[0] != 40 || cpus[19] != 59 {
		t.Fatalf("socket 2 CPUs = %v..%v", cpus[0], cpus[19])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CPUsOnSocket(4) did not panic")
			}
		}()
		top.CPUsOnSocket(4)
	}()
}

func TestSpreadAcrossPaperScenarios(t *testing.T) {
	top := PaperTopology()
	// Small VM: 4 vCPUs on one socket.
	small, err := top.SpreadAcross(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range small {
		if top.SocketOf(c) != 0 {
			t.Fatalf("small VM CPU %d not on socket 0", c)
		}
	}
	// Medium VM: 16 vCPUs over 2 sockets.
	med, err := top.SpreadAcross(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	sockets := map[int]int{}
	for _, c := range med {
		sockets[top.SocketOf(c)]++
	}
	if len(sockets) != 2 || sockets[0] != 8 || sockets[1] != 8 {
		t.Fatalf("medium VM socket spread = %v", sockets)
	}
	// Large VM: 64 vCPUs over 4 sockets.
	large, err := top.SpreadAcross(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	sockets = map[int]int{}
	for _, c := range large {
		sockets[top.SocketOf(c)]++
	}
	for s := 0; s < 4; s++ {
		if sockets[s] != 16 {
			t.Fatalf("large VM socket spread = %v", sockets)
		}
	}
}

func TestSpreadAcrossErrors(t *testing.T) {
	top := SmallTopology()
	if _, err := top.SpreadAcross(0, 1); err == nil {
		t.Error("SpreadAcross(0,1) should fail")
	}
	if _, err := top.SpreadAcross(4, 0); err == nil {
		t.Error("SpreadAcross(4,0) should fail")
	}
	if _, err := top.SpreadAcross(4, 2); err == nil {
		t.Error("SpreadAcross with too many sockets should fail")
	}
	if _, err := top.SpreadAcross(17, 1); err == nil {
		t.Error("SpreadAcross over capacity should fail")
	}
}

// Property: SpreadAcross returns exactly n distinct, in-range CPUs.
func TestSpreadAcrossProperty(t *testing.T) {
	top := PaperTopology()
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := int(sRaw%4) + 1
		cpus, err := top.SpreadAcross(n, s)
		if err != nil {
			// Only acceptable when capacity is exceeded.
			return n > s*top.CPUsPerSocket
		}
		if len(cpus) != n {
			return false
		}
		seen := map[CPUID]bool{}
		for _, c := range cpus {
			if c < 0 || int(c) >= top.NumCPUs() || seen[c] {
				return false
			}
			seen[c] = true
			if top.SocketOf(c) >= s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorNames(t *testing.T) {
	if LocalTimerVector.String() != "local-timer(236)" {
		t.Error(LocalTimerVector.String())
	}
	if ParatickVector.String() != "paratick(235)" {
		t.Error(ParatickVector.String())
	}
	if RescheduleVector.String() != "reschedule(253)" {
		t.Error(RescheduleVector.String())
	}
	if CallFuncVector.String() != "call-func(251)" {
		t.Error(CallFuncVector.String())
	}
	if IODeviceBase.String() != "io-dev(48)" {
		t.Error(IODeviceBase.String())
	}
	if Vector(7).String() != "vec(7)" {
		t.Error(Vector(7).String())
	}
}

func TestVectorIsTimer(t *testing.T) {
	if !LocalTimerVector.IsTimer() || !ParatickVector.IsTimer() {
		t.Error("timer vectors not recognized")
	}
	if RescheduleVector.IsTimer() || IODeviceBase.IsTimer() {
		t.Error("non-timer vector recognized as timer")
	}
}

func TestParatickVectorIs235(t *testing.T) {
	// §5.1: "We reserve vector 235 for this purpose."
	if uint8(ParatickVector) != 235 {
		t.Fatalf("paratick vector = %d, paper reserves 235", uint8(ParatickVector))
	}
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidateCatchesZeros(t *testing.T) {
	c := DefaultCostModel()
	c.ExitMSRWrite = 0
	if err := c.Validate(); err == nil {
		t.Error("zero ExitMSRWrite validated")
	}
	c = DefaultCostModel()
	c.GuestTickWork = -1
	if err := c.Validate(); err == nil {
		t.Error("negative GuestTickWork validated")
	}
}

func TestPreemptTimerCheaperThanMSR(t *testing.T) {
	// §3: KVM uses the preemption timer because its exits are less costly
	// than intercepting LAPIC-timer interrupts. The calibration must
	// preserve that ordering or the modeled optimization inverts.
	c := DefaultCostModel()
	if c.ExitPreemptTimer >= c.ExitExternalIRQ {
		t.Error("preemption-timer exit should be cheaper than external-interrupt exit")
	}
	if c.ExitPreemptTimer >= c.ExitMSRWrite {
		t.Error("preemption-timer exit should be cheaper than MSR-write exit")
	}
}
