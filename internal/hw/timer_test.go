package hw

import (
	"sort"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

func TestDeadlineTimerFires(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	dt := NewDeadlineTimer(e, "t", func(now sim.Time) { fired = append(fired, now) })
	dt.Arm(100)
	if !dt.Armed() || dt.Deadline() != 100 {
		t.Fatalf("armed=%v deadline=%v", dt.Armed(), dt.Deadline())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired = %v", fired)
	}
	if dt.Armed() {
		t.Fatal("timer still armed after expiry")
	}
	if dt.Deadline() != sim.Forever {
		t.Fatal("expired timer should report Forever")
	}
	if dt.ArmCount() != 1 || dt.Expirations() != 1 {
		t.Fatalf("counts: arm=%d exp=%d", dt.ArmCount(), dt.Expirations())
	}
}

func TestDeadlineTimerRearmReplaces(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	dt := NewDeadlineTimer(e, "t", func(now sim.Time) { fired = append(fired, now) })
	dt.Arm(100)
	dt.Arm(200) // overwrite, like rewriting TSC_DEADLINE
	e.Run()
	if len(fired) != 1 || fired[0] != 200 {
		t.Fatalf("fired = %v, want single firing at 200", fired)
	}
	if dt.ArmCount() != 2 {
		t.Fatalf("arm count = %d", dt.ArmCount())
	}
}

func TestDeadlineTimerCancel(t *testing.T) {
	e := sim.NewEngine(1)
	fired := 0
	dt := NewDeadlineTimer(e, "t", func(sim.Time) { fired++ })
	dt.Arm(100)
	dt.Cancel()
	dt.Cancel() // idempotent
	e.Run()
	if fired != 0 {
		t.Fatal("canceled timer fired")
	}
}

func TestDeadlineTimerPastDeadlineFiresNow(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	dt := NewDeadlineTimer(e, "t", func(now sim.Time) { fired = append(fired, now) })
	e.At(500, "arm", func(*sim.Engine) { dt.Arm(100) })
	e.Run()
	if len(fired) != 1 || fired[0] != 500 {
		t.Fatalf("stale deadline should fire immediately, fired = %v", fired)
	}
}

func TestDeadlineTimerArmForeverDisarms(t *testing.T) {
	e := sim.NewEngine(1)
	fired := 0
	dt := NewDeadlineTimer(e, "t", func(sim.Time) { fired++ })
	dt.Arm(100)
	dt.Arm(sim.Forever)
	if dt.Armed() {
		t.Fatal("Arm(Forever) should disarm")
	}
	e.Run()
	if fired != 0 {
		t.Fatal("disarmed timer fired")
	}
}

func TestDeadlineTimerArmAfter(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	dt := NewDeadlineTimer(e, "t", func(now sim.Time) { fired = append(fired, now) })
	e.At(50, "arm", func(*sim.Engine) { dt.ArmAfter(25) })
	e.Run()
	if len(fired) != 1 || fired[0] != 75 {
		t.Fatalf("fired = %v, want [75]", fired)
	}
	dt.ArmAfter(sim.Forever)
	if dt.Armed() {
		t.Fatal("ArmAfter(Forever) should disarm")
	}
}

func TestDeadlineTimerRearmFromCallback(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	var dt *DeadlineTimer
	dt = NewDeadlineTimer(e, "t", func(now sim.Time) {
		fired = append(fired, now)
		if len(fired) < 3 {
			dt.Arm(now + 10)
		}
	})
	dt.Arm(10)
	e.Run()
	want := []sim.Time{10, 20, 30}
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestNewDeadlineTimerPanics(t *testing.T) {
	e := sim.NewEngine(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil engine did not panic")
			}
		}()
		NewDeadlineTimer(nil, "t", func(sim.Time) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil callback did not panic")
			}
		}()
		NewDeadlineTimer(e, "t", nil)
	}()
}

func TestPeriodicTimerTicks(t *testing.T) {
	e := sim.NewEngine(1)
	var fired []sim.Time
	pt := NewPeriodicTimer(e, "tick", 4*sim.Millisecond, func(now sim.Time) {
		fired = append(fired, now)
	})
	pt.Start(sim.Millisecond) // phase 1ms
	e.RunUntil(14 * sim.Millisecond)
	want := []sim.Time{1 * sim.Millisecond, 5 * sim.Millisecond, 9 * sim.Millisecond, 13 * sim.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if pt.Ticks() != 4 {
		t.Fatalf("Ticks() = %d", pt.Ticks())
	}
	if !pt.Running() {
		t.Fatal("timer should still be running")
	}
}

func TestPeriodicTimerStop(t *testing.T) {
	e := sim.NewEngine(1)
	count := 0
	pt := NewPeriodicTimer(e, "tick", sim.Millisecond, func(sim.Time) { count++ })
	pt.Start(0)
	e.RunUntil(3 * sim.Millisecond)
	pt.Stop()
	if pt.Running() {
		t.Fatal("stopped timer reports running")
	}
	e.RunUntil(10 * sim.Millisecond)
	if count != 4 { // t=0,1,2,3 ms
		t.Fatalf("ticks after stop = %d, want 4", count)
	}
	pt.Stop() // idempotent
}

func TestPeriodicTimerDoubleStartPanics(t *testing.T) {
	e := sim.NewEngine(1)
	pt := NewPeriodicTimer(e, "tick", sim.Millisecond, func(sim.Time) {})
	pt.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	pt.Start(0)
}

func TestPeriodicTimerBadPeriodPanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("non-positive period did not panic")
		}
	}()
	NewPeriodicTimer(e, "tick", 0, func(sim.Time) {})
}

func TestPeriodicTimerRate(t *testing.T) {
	// A 250 Hz timer must fire exactly 2500 times in 10 simulated seconds.
	e := sim.NewEngine(1)
	count := 0
	pt := NewPeriodicTimer(e, "tick", sim.PeriodFromHz(250), func(sim.Time) { count++ })
	pt.Start(pt.Period()) // first tick at t=4ms, so exactly t/period ticks in (0,10s]
	e.RunUntil(10 * sim.Second)
	if count != 2500 {
		t.Fatalf("250 Hz over 10 s fired %d ticks, want 2500", count)
	}
}

// Property: a DeadlineTimer armed with a monotonically consumed sequence of
// deadlines fires each exactly once, in order, never early.
func TestDeadlineTimerOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		deadlines := make([]sim.Time, len(raw))
		for i, r := range raw {
			deadlines[i] = sim.Time(r) + 1
		}
		sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })

		e := sim.NewEngine(5)
		var fired []sim.Time
		idx := 0
		var dt *DeadlineTimer
		dt = NewDeadlineTimer(e, "p", func(now sim.Time) {
			fired = append(fired, now)
			idx++
			if idx < len(deadlines) {
				dt.Arm(deadlines[idx])
			}
		})
		dt.Arm(deadlines[0])
		e.Run()
		if len(fired) != len(deadlines) {
			return false
		}
		for i, f := range fired {
			// Never before the requested deadline; may be "now" if stale.
			if f < deadlines[i] && f != fired[max(0, i-1)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPeriodicTimerNegativePhaseClamps(t *testing.T) {
	e := sim.NewEngine(1)
	var first sim.Time = -1
	pt := NewPeriodicTimer(e, "x", sim.Millisecond, func(now sim.Time) {
		if first < 0 {
			first = now
		}
	})
	pt.Start(-5)
	e.RunUntil(2 * sim.Millisecond)
	if first != 0 {
		t.Fatalf("first tick at %v, want 0 (negative phase clamps)", first)
	}
}

func TestDeadlineTimerArmCountAcrossCancel(t *testing.T) {
	e := sim.NewEngine(1)
	dt := NewDeadlineTimer(e, "x", func(sim.Time) {})
	dt.Arm(10)
	dt.Cancel()
	dt.Arm(20)
	e.Run()
	if dt.ArmCount() != 2 || dt.Expirations() != 1 {
		t.Fatalf("arm=%d exp=%d", dt.ArmCount(), dt.Expirations())
	}
}
