// Package iodev models block I/O devices: latency profiles, a bounded
// submission queue, and completion interrupts. It substitutes for the
// paper's physical storage (§6.3 runs fio against the test system's disk;
// the paper notes it lacks an SR-IOV SSD). The profiles let experiments
// explore the paper's claim that paratick's benefit grows as device
// latencies shrink.
package iodev

import (
	"fmt"

	"paratick/internal/hw"
	"paratick/internal/sim"
)

// Profile characterizes a device's service latency.
type Profile struct {
	Name      string
	ReadBase  sim.Time // fixed service latency per read
	WriteBase sim.Time // fixed service latency per write
	PerKiB    sim.Time // transfer time per KiB
	// SeqFactor discounts the base latency of sequential accesses
	// (read-ahead / write coalescing); 1.0 = no discount.
	SeqFactor float64
	// QueueDepth bounds requests in flight; excess requests queue.
	QueueDepth int
	// Jitter is the uniform latency perturbation fraction.
	Jitter float64
	// CoalesceWindow, when positive, enables interrupt coalescing: after a
	// completion the interrupt is deferred up to this long (or until
	// CoalesceMax completions accumulate), batching completions into one
	// interrupt — standard NIC/NVMe moderation.
	CoalesceWindow sim.Time
	// CoalesceMax flushes a coalesced batch early once this many
	// completions are pending (0 = window only).
	CoalesceMax int
}

// NVMe returns a modern low-latency NVMe-class SSD profile. The paper
// predicts paratick's I/O benefit grows on such devices (§6.3).
func NVMe() Profile {
	return Profile{
		Name:     "nvme",
		ReadBase: 8 * sim.Microsecond, WriteBase: 14 * sim.Microsecond,
		PerKiB: 150, SeqFactor: 0.7, QueueDepth: 64, Jitter: 0.1,
	}
}

// SataSSD returns a SATA-SSD profile comparable to the paper's test system
// ("does not possess a high-end SSD device supporting SR-IOV", §6.3).
func SataSSD() Profile {
	return Profile{
		Name:     "sata-ssd",
		ReadBase: 55 * sim.Microsecond, WriteBase: 70 * sim.Microsecond,
		PerKiB: 250, SeqFactor: 0.6, QueueDepth: 32, Jitter: 0.15,
	}
}

// HDD returns a rotational-disk profile (high latency; §4.2 predicts little
// paratick benefit here).
func HDD() Profile {
	return Profile{
		Name:     "hdd",
		ReadBase: 4 * sim.Millisecond, WriteBase: 5 * sim.Millisecond,
		PerKiB: 30 * sim.Microsecond / 1024, SeqFactor: 0.15, QueueDepth: 4, Jitter: 0.3,
	}
}

// Validate checks profile ranges.
func (p Profile) Validate() error {
	if p.ReadBase <= 0 || p.WriteBase <= 0 {
		return fmt.Errorf("iodev: %s: base latencies must be positive", p.Name)
	}
	if p.PerKiB < 0 {
		return fmt.Errorf("iodev: %s: per-KiB cost must be non-negative", p.Name)
	}
	if p.SeqFactor <= 0 || p.SeqFactor > 1 {
		return fmt.Errorf("iodev: %s: SeqFactor must be in (0,1], got %v", p.Name, p.SeqFactor)
	}
	if p.QueueDepth <= 0 {
		return fmt.Errorf("iodev: %s: queue depth must be positive", p.Name)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("iodev: %s: jitter must be in [0,1), got %v", p.Name, p.Jitter)
	}
	if p.CoalesceWindow < 0 || p.CoalesceMax < 0 {
		return fmt.Errorf("iodev: %s: negative coalescing parameter", p.Name)
	}
	return nil
}

// Latency returns the nominal (un-jittered) service time for an operation.
func (p Profile) Latency(write, sequential bool, bytes int) sim.Time {
	base := p.ReadBase
	if write {
		base = p.WriteBase
	}
	if sequential {
		base = sim.Time(float64(base) * p.SeqFactor)
	}
	transfer := p.PerKiB * sim.Time((bytes+1023)/1024)
	return base + transfer
}

// Request is one block-I/O operation.
type Request struct {
	Write      bool
	Sequential bool
	Bytes      int
	VCPU       int // submitting vCPU; completion interrupt targets it
	Cookie     any // opaque guest payload (the blocked task)
	Submitted  sim.Time
	Completed  sim.Time
	done       bool
	ev         sim.Event // pending completion while in service
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Device is a block device with a bounded in-flight window. Completions are
// announced through the OnComplete callback (wired to the hypervisor's
// interrupt-raising path) and held until the guest drains them.
type Device struct {
	name string
	//snap:skip cache: label precomputed from name at construction
	ioLabel string // precomputed completion-event label; submit is a hot path
	//snap:skip engine wiring, bound at construction
	engine *sim.Engine
	rng    *sim.Rand
	//snap:skip deliberately unsnapshotted: forked arms re-apply SetProfile after restore
	profile Profile
	//snap:skip immutable interrupt vector from device construction
	vector hw.Vector

	// OnComplete is invoked at completion time, before the request is
	// queued for draining (per-request observation; tests and metrics).
	//snap:skip observer callback, rewired by the harness after restore
	OnComplete func(req *Request)
	// OnInterrupt raises the completion interrupt toward the given vCPU.
	// With coalescing enabled it fires once per batch rather than once per
	// request. The hypervisor wires this to its interrupt-injection path.
	//snap:skip injection wiring, rebound by the hypervisor at attach time
	OnInterrupt func(vcpu int)

	//snap:skip derived: recounted as in-service requests are restored
	inflight  int
	running   []*Request // in service, submission order; each carries its completion event
	waiting   []*Request
	completed []*Request

	// Per-vCPU coalescing state: pending completion count and the flush
	// event.
	coalesce map[int]*coalesceState

	ops           uint64
	bytesRead     uint64
	bytesWritten  uint64
	coalescedIRQs uint64
}

// New creates a device. The vector is the interrupt it raises on
// completions.
func New(engine *sim.Engine, name string, profile Profile, vector hw.Vector) (*Device, error) {
	if engine == nil {
		return nil, fmt.Errorf("iodev: nil engine")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		name:     name,
		ioLabel:  "io:" + name,
		engine:   engine,
		rng:      engine.Rand().Fork(uint64(vector) + 0x10dead),
		profile:  profile,
		vector:   vector,
		coalesce: make(map[int]*coalesceState),
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Vector returns the completion interrupt vector.
func (d *Device) Vector() hw.Vector { return d.vector }

// Profile returns the latency profile.
func (d *Device) Profile() Profile { return d.profile }

// Inflight returns the number of requests currently being serviced.
func (d *Device) Inflight() int { return d.inflight }

// QueuedWaiting returns the number of requests waiting for a device slot.
func (d *Device) QueuedWaiting() int { return len(d.waiting) }

// Ops returns the number of completed operations.
func (d *Device) Ops() uint64 { return d.ops }

// BytesRead and BytesWritten return completed transfer totals.
func (d *Device) BytesRead() uint64    { return d.bytesRead }
func (d *Device) BytesWritten() uint64 { return d.bytesWritten }

// CoalescedInterrupts returns how many batched interrupts were raised
// (0 unless the profile enables coalescing).
func (d *Device) CoalescedInterrupts() uint64 { return d.coalescedIRQs }

// Submit enqueues a request; it starts servicing immediately if the device
// has a free slot.
func (d *Device) Submit(req *Request) {
	if req == nil || req.Bytes <= 0 {
		panic(fmt.Sprintf("iodev: %s: invalid request %+v", d.name, req))
	}
	req.Submitted = d.engine.Now()
	if d.inflight < d.profile.QueueDepth {
		d.start(req)
	} else {
		d.waiting = append(d.waiting, req)
	}
}

func (d *Device) start(req *Request) {
	d.inflight++
	lat := d.profile.Latency(req.Write, req.Sequential, req.Bytes)
	lat = d.rng.Jitter(lat, d.profile.Jitter)
	req.ev = d.engine.After(lat, d.ioLabel, func(e *sim.Engine) {
		d.finish(req)
	})
	d.running = append(d.running, req)
}

func (d *Device) finish(req *Request) {
	d.inflight--
	req.ev = sim.Event{}
	for i, r := range d.running {
		if r == req {
			// Ordered removal keeps the running list in submission order,
			// which is what the snapshot encoder relies on for canonical
			// bytes. The list is bounded by QueueDepth.
			n := len(d.running)
			copy(d.running[i:], d.running[i+1:])
			d.running[n-1] = nil
			d.running = d.running[:n-1]
			break
		}
	}
	req.Completed = d.engine.Now()
	req.done = true
	d.ops++
	if req.Write {
		d.bytesWritten += uint64(req.Bytes)
	} else {
		d.bytesRead += uint64(req.Bytes)
	}
	d.completed = append(d.completed, req)
	if len(d.waiting) > 0 {
		next := d.waiting[0]
		d.waiting = d.waiting[0:copy(d.waiting, d.waiting[1:])]
		d.start(next)
	}
	if d.OnComplete != nil {
		d.OnComplete(req)
	}
	d.raiseOrCoalesce(req.VCPU)
}

// coalesceState tracks one vCPU's pending batch.
type coalesceState struct {
	pending int
	flush   sim.Event
}

// raiseOrCoalesce delivers the completion interrupt, batching when the
// profile enables moderation.
func (d *Device) raiseOrCoalesce(vcpu int) {
	if d.OnInterrupt == nil {
		return
	}
	if d.profile.CoalesceWindow <= 0 {
		d.OnInterrupt(vcpu)
		return
	}
	st := d.coalesce[vcpu]
	if st == nil {
		st = &coalesceState{}
		d.coalesce[vcpu] = st
	}
	st.pending++
	if d.profile.CoalesceMax > 0 && st.pending >= d.profile.CoalesceMax {
		d.flushCoalesced(vcpu, st)
		return
	}
	if !st.flush.Pending() {
		st.flush = d.engine.After(d.profile.CoalesceWindow, "io-coalesce:"+d.name,
			func(*sim.Engine) {
				st.flush = sim.Event{}
				d.flushCoalesced(vcpu, st)
			})
	}
}

func (d *Device) flushCoalesced(vcpu int, st *coalesceState) {
	d.engine.Cancel(st.flush)
	st.flush = sim.Event{}
	if st.pending == 0 {
		return
	}
	st.pending = 0
	d.coalescedIRQs++
	d.OnInterrupt(vcpu)
}

// DrainCompletedFor removes and returns completed requests whose submitting
// vCPU matches id — the guest's completion-handler view.
func (d *Device) DrainCompletedFor(vcpu int) []*Request {
	var out, rest []*Request
	for _, r := range d.completed {
		if r.VCPU == vcpu {
			out = append(out, r)
		} else {
			rest = append(rest, r)
		}
	}
	d.completed = rest
	return out
}
