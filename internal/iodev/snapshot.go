package iodev

// Checkpoint/restore of device state. Requests reference guest tasks
// through the opaque Cookie, so Save/Load take translation callbacks: the
// guest layer maps cookies to stable task IDs and back. In-service
// requests carry their completion event's (when, seq) coordinates and are
// re-armed on Load, so a restored device completes I/O at exactly the
// pre-snapshot instants.

import (
	"fmt"
	"sort"

	"paratick/internal/sim"
	"paratick/internal/snap"
)

// SetProfile swaps the device's latency profile. Only future submissions
// are affected; requests already in service keep their original completion
// schedule. The experiment layer uses this to vary device latency across
// forked snapshot arms without disturbing shared warmup state.
func (d *Device) SetProfile(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	d.profile = p
	return nil
}

func saveRequest(enc *snap.Encoder, r *Request, cookieID func(any) int64) {
	enc.Bool(r.Write)
	enc.Bool(r.Sequential)
	enc.I64(int64(r.Bytes))
	enc.I64(int64(r.VCPU))
	if r.Cookie == nil {
		enc.I64(-1)
	} else {
		enc.I64(cookieID(r.Cookie))
	}
	enc.I64(int64(r.Submitted))
	enc.I64(int64(r.Completed))
	enc.Bool(r.done)
}

func loadRequest(dec *snap.Decoder, cookie func(int64) any) *Request {
	r := &Request{
		Write:      dec.Bool(),
		Sequential: dec.Bool(),
		Bytes:      int(dec.I64()),
		VCPU:       int(dec.I64()),
	}
	if id := dec.I64(); id >= 0 {
		r.Cookie = cookie(id)
	}
	r.Submitted = sim.Time(dec.I64())
	r.Completed = sim.Time(dec.I64())
	r.done = dec.Bool()
	return r
}

// SaveRequest encodes a request not yet held by any device (the guest's
// queued io-kick segments carry such requests). cookieID translates the
// opaque Cookie as in Device.Save.
func SaveRequest(enc *snap.Encoder, r *Request, cookieID func(any) int64) {
	saveRequest(enc, r, cookieID)
}

// LoadRequest decodes a request written by SaveRequest.
func LoadRequest(dec *snap.Decoder, cookie func(int64) any) *Request {
	return loadRequest(dec, cookie)
}

// Save serializes the device's full state. cookieID must translate every
// non-nil request Cookie into a stable non-negative identifier.
func (d *Device) Save(enc *snap.Encoder, cookieID func(any) int64) {
	enc.Section("iodev:" + d.name)
	for _, w := range d.rng.State() {
		enc.U64(w)
	}
	enc.U64(d.ops)
	enc.U64(d.bytesRead)
	enc.U64(d.bytesWritten)
	enc.U64(d.coalescedIRQs)

	enc.U32(uint32(len(d.running)))
	for _, r := range d.running {
		saveRequest(enc, r, cookieID)
		seq, _ := r.ev.Seq()
		enc.I64(int64(r.ev.When()))
		enc.U64(seq)
	}
	enc.U32(uint32(len(d.waiting)))
	for _, r := range d.waiting {
		saveRequest(enc, r, cookieID)
	}
	enc.U32(uint32(len(d.completed)))
	for _, r := range d.completed {
		saveRequest(enc, r, cookieID)
	}

	// Coalescing state is keyed by vCPU in a map; collect and sort the keys
	// before encoding (paratick-vet D003). Exhausted entries (no pending
	// completions, no flush scheduled) are semantically absent — skip them
	// so equal states encode to equal bytes.
	keys := make([]int, 0, len(d.coalesce))
	for vcpu, st := range d.coalesce {
		if st.pending > 0 || st.flush.Pending() {
			keys = append(keys, vcpu)
		}
	}
	sort.Ints(keys)
	enc.U32(uint32(len(keys)))
	for _, vcpu := range keys {
		st := d.coalesce[vcpu]
		enc.I64(int64(vcpu))
		enc.I64(int64(st.pending))
		flushing := st.flush.Pending()
		enc.Bool(flushing)
		if flushing {
			seq, _ := st.flush.Seq()
			enc.I64(int64(st.flush.When()))
			enc.U64(seq)
		}
	}
}

// Load restores state saved by Save into a freshly constructed device (same
// name, vector, and engine wiring). cookie must translate the identifiers
// produced by Save's cookieID back into live guest objects.
func (d *Device) Load(dec *snap.Decoder, cookie func(int64) any) error {
	dec.Section("iodev:" + d.name)
	if d.inflight != 0 || len(d.waiting) != 0 || len(d.completed) != 0 {
		return fmt.Errorf("iodev: %s: Load into a device with active requests", d.name)
	}
	var s [4]uint64
	for i := range s {
		s[i] = dec.U64()
	}
	d.rng.SetState(s)
	d.ops = dec.U64()
	d.bytesRead = dec.U64()
	d.bytesWritten = dec.U64()
	d.coalescedIRQs = dec.U64()

	nRunning := int(dec.U32())
	for i := 0; i < nRunning && dec.Err() == nil; i++ {
		req := loadRequest(dec, cookie)
		when := sim.Time(dec.I64())
		seq := dec.U64()
		if dec.Err() != nil {
			break
		}
		d.inflight++
		req.ev = d.engine.ScheduleRestored(when, seq, d.ioLabel, func(e *sim.Engine) {
			d.finish(req)
		})
		d.running = append(d.running, req)
	}
	nWaiting := int(dec.U32())
	for i := 0; i < nWaiting && dec.Err() == nil; i++ {
		d.waiting = append(d.waiting, loadRequest(dec, cookie))
	}
	nCompleted := int(dec.U32())
	for i := 0; i < nCompleted && dec.Err() == nil; i++ {
		d.completed = append(d.completed, loadRequest(dec, cookie))
	}

	nCoalesce := int(dec.U32())
	for i := 0; i < nCoalesce && dec.Err() == nil; i++ {
		vcpu := int(dec.I64())
		st := &coalesceState{pending: int(dec.I64())}
		d.coalesce[vcpu] = st
		if dec.Bool() {
			when := sim.Time(dec.I64())
			seq := dec.U64()
			if dec.Err() != nil {
				break
			}
			st.flush = d.engine.ScheduleRestored(when, seq, "io-coalesce:"+d.name,
				func(*sim.Engine) {
					st.flush = sim.Event{}
					d.flushCoalesced(vcpu, st)
				})
		}
	}
	return dec.Err()
}
