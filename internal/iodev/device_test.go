package iodev

import (
	"testing"
	"testing/quick"

	"paratick/internal/hw"
	"paratick/internal/sim"
)

func newTestDevice(t *testing.T, p Profile) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine(7)
	p.Jitter = 0 // deterministic latencies for exact assertions
	d, err := New(e, "disk0", p, hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{NVMe(), SataSSD(), HDD()} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	bad := []Profile{
		{Name: "a", ReadBase: 0, WriteBase: 1, SeqFactor: 1, QueueDepth: 1},
		{Name: "b", ReadBase: 1, WriteBase: 0, SeqFactor: 1, QueueDepth: 1},
		{Name: "c", ReadBase: 1, WriteBase: 1, PerKiB: -1, SeqFactor: 1, QueueDepth: 1},
		{Name: "d", ReadBase: 1, WriteBase: 1, SeqFactor: 0, QueueDepth: 1},
		{Name: "e", ReadBase: 1, WriteBase: 1, SeqFactor: 1.5, QueueDepth: 1},
		{Name: "f", ReadBase: 1, WriteBase: 1, SeqFactor: 1, QueueDepth: 0},
		{Name: "g", ReadBase: 1, WriteBase: 1, SeqFactor: 1, QueueDepth: 1, Jitter: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %s accepted", p.Name)
		}
	}
}

func TestLatencyShape(t *testing.T) {
	p := NVMe()
	// Writes slower than reads.
	if p.Latency(true, false, 4096) <= p.Latency(false, false, 4096) {
		t.Error("write latency should exceed read latency")
	}
	// Sequential faster than random.
	if p.Latency(false, true, 4096) >= p.Latency(false, false, 4096) {
		t.Error("sequential should be faster than random")
	}
	// Bigger transfers take longer.
	if p.Latency(false, false, 256*1024) <= p.Latency(false, false, 4096) {
		t.Error("256k should take longer than 4k")
	}
	// Exact: 4k random read on NVMe = 8us + 4*150ns.
	want := 8*sim.Microsecond + 4*150
	if got := p.Latency(false, false, 4096); got != want {
		t.Errorf("4k read latency = %v, want %v", got, want)
	}
}

func TestDeviceOrderingAcrossLatencyClasses(t *testing.T) {
	// The §4.2/§6.3 premise: NVMe ≪ SATA ≪ HDD.
	if NVMe().Latency(false, false, 4096) >= SataSSD().Latency(false, false, 4096) {
		t.Error("NVMe should be faster than SATA SSD")
	}
	if SataSSD().Latency(false, false, 4096) >= HDD().Latency(false, false, 4096) {
		t.Error("SATA SSD should be faster than HDD")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, "x", NVMe(), hw.IODeviceBase); err == nil {
		t.Error("nil engine accepted")
	}
	e := sim.NewEngine(1)
	if _, err := New(e, "x", Profile{}, hw.IODeviceBase); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSubmitCompletes(t *testing.T) {
	e, d := newTestDevice(t, NVMe())
	var completions []*Request
	d.OnComplete = func(r *Request) { completions = append(completions, r) }
	req := &Request{Bytes: 4096, VCPU: 0, Cookie: "task1"}
	d.Submit(req)
	if d.Inflight() != 1 {
		t.Fatalf("inflight = %d", d.Inflight())
	}
	e.Run()
	if !req.Done() {
		t.Fatal("request not done")
	}
	if len(completions) != 1 || completions[0] != req {
		t.Fatalf("completions = %v", completions)
	}
	if req.Completed != 8*sim.Microsecond+4*150 {
		t.Fatalf("completed at %v", req.Completed)
	}
	if d.Ops() != 1 || d.BytesRead() != 4096 || d.BytesWritten() != 0 {
		t.Fatalf("stats: ops=%d read=%d written=%d", d.Ops(), d.BytesRead(), d.BytesWritten())
	}
}

func TestWriteAccounting(t *testing.T) {
	e, d := newTestDevice(t, NVMe())
	d.Submit(&Request{Write: true, Bytes: 8192})
	e.Run()
	if d.BytesWritten() != 8192 || d.BytesRead() != 0 {
		t.Fatalf("write accounting: read=%d written=%d", d.BytesRead(), d.BytesWritten())
	}
}

func TestQueueDepthLimits(t *testing.T) {
	p := NVMe()
	p.QueueDepth = 2
	e, d := newTestDevice(t, p)
	for i := 0; i < 5; i++ {
		d.Submit(&Request{Bytes: 4096, VCPU: 0})
	}
	if d.Inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", d.Inflight())
	}
	if d.QueuedWaiting() != 3 {
		t.Fatalf("waiting = %d, want 3", d.QueuedWaiting())
	}
	e.Run()
	if d.Ops() != 5 {
		t.Fatalf("ops = %d, want 5", d.Ops())
	}
	if d.Inflight() != 0 || d.QueuedWaiting() != 0 {
		t.Fatal("device not drained")
	}
}

func TestQueueDepthOneIsFIFO(t *testing.T) {
	p := NVMe()
	p.QueueDepth = 1
	e, d := newTestDevice(t, p)
	var order []any
	d.OnComplete = func(r *Request) { order = append(order, r.Cookie) }
	for i := 0; i < 4; i++ {
		d.Submit(&Request{Bytes: 4096, Cookie: i})
	}
	e.Run()
	for i, c := range order {
		if c != i {
			t.Fatalf("completion order = %v", order)
		}
	}
}

func TestDrainCompletedFor(t *testing.T) {
	e, d := newTestDevice(t, NVMe())
	d.Submit(&Request{Bytes: 4096, VCPU: 0, Cookie: "a"})
	d.Submit(&Request{Bytes: 4096, VCPU: 1, Cookie: "b"})
	d.Submit(&Request{Bytes: 4096, VCPU: 0, Cookie: "c"})
	e.Run()
	got := d.DrainCompletedFor(0)
	if len(got) != 2 {
		t.Fatalf("drained %d for vcpu0, want 2", len(got))
	}
	for _, r := range got {
		if r.VCPU != 0 {
			t.Fatal("drained wrong vCPU's request")
		}
	}
	// Draining again returns nothing for vcpu 0, one for vcpu 1.
	if len(d.DrainCompletedFor(0)) != 0 {
		t.Fatal("double drain returned requests")
	}
	if len(d.DrainCompletedFor(1)) != 1 {
		t.Fatal("vcpu1's completion lost")
	}
}

func TestSubmitPanicsOnBadRequest(t *testing.T) {
	_, d := newTestDevice(t, NVMe())
	for _, req := range []*Request{nil, {Bytes: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", req)
				}
			}()
			d.Submit(req)
		}()
	}
}

func TestJitterBounds(t *testing.T) {
	e := sim.NewEngine(7)
	p := NVMe() // 10% jitter
	d, err := New(e, "j", p, hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	nominal := p.Latency(false, false, 4096)
	lo := sim.Time(float64(nominal) * 0.9)
	hi := sim.Time(float64(nominal) * 1.1)
	for i := 0; i < 200; i++ {
		req := &Request{Bytes: 4096}
		start := e.Now()
		d.Submit(req)
		e.Run()
		lat := req.Completed - start
		if lat < lo || lat > hi {
			t.Fatalf("jittered latency %v outside [%v,%v]", lat, lo, hi)
		}
	}
}

// Property: all submitted requests eventually complete exactly once, for
// any queue depth and request count.
func TestAllRequestsCompleteProperty(t *testing.T) {
	f := func(nRaw, qdRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NVMe()
		p.QueueDepth = int(qdRaw%8) + 1
		p.Jitter = 0
		e := sim.NewEngine(11)
		d, err := New(e, "p", p, hw.IODeviceBase)
		if err != nil {
			return false
		}
		completions := 0
		d.OnComplete = func(*Request) { completions++ }
		reqs := make([]*Request, n)
		for i := range reqs {
			reqs[i] = &Request{Bytes: 4096 * (i%4 + 1), VCPU: i % 3, Write: i%2 == 0}
			d.Submit(reqs[i])
		}
		e.Run()
		if completions != n || d.Ops() != uint64(n) {
			return false
		}
		for _, r := range reqs {
			if !r.Done() || r.Completed < r.Submitted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAccessors(t *testing.T) {
	_, d := newTestDevice(t, NVMe())
	if d.Name() != "disk0" {
		t.Error("Name")
	}
	if d.Vector() != hw.IODeviceBase {
		t.Error("Vector")
	}
	if d.Profile().Name != "nvme" {
		t.Error("Profile")
	}
}

func TestCoalescingBatchesInterrupts(t *testing.T) {
	p := NVMe()
	p.Jitter = 0
	p.CoalesceWindow = 50 * sim.Microsecond
	p.CoalesceMax = 0 // window only
	e := sim.NewEngine(3)
	d, err := New(e, "c", p, hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	irqs := 0
	completions := 0
	d.OnInterrupt = func(vcpu int) { irqs++ }
	d.OnComplete = func(*Request) { completions++ }
	// 8 requests complete within ~9.2us of each other (QD 64, same
	// latency): one coalesced interrupt covers them all.
	for i := 0; i < 8; i++ {
		d.Submit(&Request{Bytes: 4096, VCPU: 0})
	}
	e.Run()
	if completions != 8 {
		t.Fatalf("completions = %d", completions)
	}
	if irqs != 1 {
		t.Fatalf("interrupts = %d, want 1 coalesced", irqs)
	}
	if d.CoalescedInterrupts() != 1 {
		t.Fatalf("CoalescedInterrupts = %d", d.CoalescedInterrupts())
	}
}

func TestCoalescingMaxFlushesEarly(t *testing.T) {
	p := NVMe()
	p.Jitter = 0
	p.CoalesceWindow = sim.Second // effectively never by window
	p.CoalesceMax = 4
	e := sim.NewEngine(3)
	d, err := New(e, "c", p, hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	irqs := 0
	d.OnInterrupt = func(int) { irqs++ }
	for i := 0; i < 8; i++ {
		d.Submit(&Request{Bytes: 4096, VCPU: 0})
	}
	e.RunUntil(10 * sim.Millisecond)
	if irqs != 2 {
		t.Fatalf("interrupts = %d, want 2 (batches of 4)", irqs)
	}
}

func TestCoalescingPerVCPU(t *testing.T) {
	p := NVMe()
	p.Jitter = 0
	p.CoalesceWindow = 50 * sim.Microsecond
	e := sim.NewEngine(3)
	d, err := New(e, "c", p, hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	d.OnInterrupt = func(v int) { got[v]++ }
	d.Submit(&Request{Bytes: 4096, VCPU: 0})
	d.Submit(&Request{Bytes: 4096, VCPU: 1})
	e.Run()
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("per-vcpu interrupts = %v", got)
	}
}

func TestNoCoalescingImmediateInterrupt(t *testing.T) {
	e, d := newTestDevice(t, NVMe())
	irqs := 0
	d.OnInterrupt = func(int) { irqs++ }
	d.Submit(&Request{Bytes: 4096})
	d.Submit(&Request{Bytes: 4096})
	e.Run()
	if irqs != 2 {
		t.Fatalf("interrupts = %d, want one per completion", irqs)
	}
	if d.CoalescedInterrupts() != 0 {
		t.Fatal("coalesced count should be 0 when disabled")
	}
}

func TestCoalescingValidation(t *testing.T) {
	p := NVMe()
	p.CoalesceWindow = -1
	if p.Validate() == nil {
		t.Error("negative window accepted")
	}
	p = NVMe()
	p.CoalesceMax = -1
	if p.Validate() == nil {
		t.Error("negative max accepted")
	}
}
