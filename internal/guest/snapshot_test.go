package guest

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/metrics"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// exerciseWheel drives a wheel through every structural path: all six
// levels, the overflow list, cancels, partial advances, and late adds.
func exerciseWheel(w *TimerWheel, fired *int) []*SoftTimer {
	noop := func(sim.Time) { *fired++ }
	j := w.Jiffy()
	var timers []*SoftTimer
	for _, dj := range []int64{1, 3, 63, 64, 512, 4096, 40_000, 300_000, 2_000_000, 3_000_000, 5_000_000} {
		t := &SoftTimer{Deadline: sim.Time(dj) * j, Fire: noop}
		w.Add(t)
		timers = append(timers, t)
	}
	// Cancel a few from different levels and the overflow list.
	w.Cancel(timers[2])
	w.Cancel(timers[5])
	w.Cancel(timers[10])
	// Advance partway: fires the early timers, cascades some buckets.
	w.AdvanceTo(700 * j)
	// Late add into an already-processed region.
	late := &SoftTimer{Deadline: 2 * j, Fire: noop}
	w.Add(late)
	timers = append(timers, late)
	w.NextExpiry() // populate the next-expiry cache
	return timers
}

// TestWheelResetDigestMatchesFresh is the reset-correctness audit for
// TimerWheel.Reset: a heavily used wheel, once Reset, must be digest-
// identical to a freshly constructed wheel — no clock, counter, bitmap, or
// bucket residue.
func TestWheelResetDigestMatchesFresh(t *testing.T) {
	jiffy := sim.PeriodFromHz(250)
	for _, resetJiffy := range []sim.Time{jiffy, sim.Millisecond} {
		used := NewTimerWheel(jiffy)
		var fired int
		exerciseWheel(used, &fired)
		if fired == 0 {
			t.Fatal("exercise fired nothing; the audit would be vacuous")
		}
		used.Reset(resetJiffy)

		fresh := NewTimerWheel(resetJiffy)
		if got, want := used.DigestState(), fresh.DigestState(); got != want {
			t.Fatalf("reset(%v) wheel digest %v != fresh digest %v", resetJiffy, got, want)
		}

		// Behavioural follow-up: identical adds after reset behave like a
		// fresh wheel.
		var a, b int
		ta := &SoftTimer{Deadline: 5 * resetJiffy, Fire: func(sim.Time) { a++ }}
		tb := &SoftTimer{Deadline: 5 * resetJiffy, Fire: func(sim.Time) { b++ }}
		used.Add(ta)
		fresh.Add(tb)
		if used.DigestState() != fresh.DigestState() {
			t.Fatalf("reset(%v) wheel diverged from fresh after one add", resetJiffy)
		}
		used.AdvanceTo(10 * resetJiffy)
		fresh.AdvanceTo(10 * resetJiffy)
		if a != 1 || b != 1 {
			t.Fatalf("post-reset fire counts: used=%d fresh=%d, want 1,1", a, b)
		}
	}
}

// TestWheelPoolRecycleDigest pins the same property through the pool path
// the experiment layer actually uses: an acquired recycled wheel must be
// indistinguishable from a new one.
func TestWheelPoolRecycleDigest(t *testing.T) {
	jiffy := sim.PeriodFromHz(250)
	pool := &WheelPool{}
	w := pool.acquire(jiffy)
	var fired int
	exerciseWheel(w, &fired)
	pool.free = append(pool.free, w)

	recycled := pool.acquire(sim.Millisecond)
	if recycled != w {
		t.Fatal("pool did not recycle the released wheel")
	}
	if got, want := recycled.DigestState(), NewTimerWheel(sim.Millisecond).DigestState(); got != want {
		t.Fatalf("recycled wheel digest %v != fresh digest %v", got, want)
	}
}

// TestSegmentPoolZeroed is the reset audit for the PR 6 segment pool:
// every segment sitting in the free pool must be the zero value, retaining
// no closure, request, device, or owner references from its previous life.
func TestSegmentPoolZeroed(t *testing.T) {
	e, k := newTestKernel(t, core.DynticksIdle, 1)
	k.cfg.AdaptiveSpin = 2 * sim.Microsecond // exercise the lock-spin owner fields
	v := k.vcpus[0]
	l := k.NewLock("pool-audit")
	k.Spawn("holder", 0, Steps(Acquire(l), Compute(50*sim.Microsecond), Release(l), Done()))
	k.Spawn("contender", 0, Steps(Compute(sim.Microsecond), Acquire(l), Release(l), Done()))
	v.Boot()
	m := newMiniExec(e, v)
	m.runUntilTasksDone(t)
	// Drain the issued segment back into the pool too.
	v.Next()

	if len(k.segFree) == 0 {
		t.Fatal("segment pool empty after a run; audit is vacuous")
	}
	for i, s := range k.segFree {
		if s == nil {
			continue
		}
		// Segment holds a func field, so it is not comparable; check every
		// field explicitly.
		dirty := s.Kind != SegRun || s.Label != "" || s.Duration != 0 ||
			s.Kernel || s.Spin || s.Deadline != 0 || s.Req != nil ||
			s.Dev != nil || s.Target != 0 || s.HKind != 0 || s.HArg != 0 ||
			s.OnDone != nil || s.ownerTask != nil || s.ownerLock != nil
		if dirty {
			t.Fatalf("pooled segment %d retains state: %+v", i, *s)
		}
	}
}

// buildSnapshotScenario constructs the fixture used by the kernel
// round-trip tests: two tasks on one vCPU contending a lock (with adaptive
// spin), sleeping, and syncing on a barrier. Construction is deterministic,
// so calling it twice yields structurally identical kernels.
func buildSnapshotScenario(t *testing.T) (*sim.Engine, *Kernel, *miniExec) {
	t.Helper()
	e := sim.NewEngine(99)
	cfg := DefaultConfig()
	cfg.Mode = core.DynticksIdle
	cfg.AdaptiveSpin = 3 * sim.Microsecond
	k, err := NewKernel(e, hw.DefaultCostModel(), cfg, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	k.AddVCPU()
	v := k.vcpus[0]
	l := k.NewLock("l0")
	b := k.NewBarrier("b0", 2)
	k.Spawn("t0", 0, Steps(
		Acquire(l), Compute(80*sim.Microsecond), Release(l),
		Sleep(5*sim.Millisecond), JoinBarrier(b), Done()))
	k.Spawn("t1", 0, Steps(
		Compute(10*sim.Microsecond), Acquire(l), Release(l),
		Sleep(2*sim.Millisecond), JoinBarrier(b), Done()))
	v.Boot()
	return e, k, newMiniExec(e, v)
}

// saveWorld serializes engine + kernel + the mini-exec's deadline timer —
// the full state of the single-vCPU fixture.
func saveWorld(t *testing.T, e *sim.Engine, k *Kernel, m *miniExec) []byte {
	t.Helper()
	var enc snap.Encoder
	e.Save(&enc)
	m.timer.Save(&enc)
	if err := k.Save(&enc); err != nil {
		t.Fatalf("kernel save: %v", err)
	}
	return enc.Bytes()
}

func loadWorld(t *testing.T, bytes []byte, e *sim.Engine, k *Kernel, m *miniExec) {
	t.Helper()
	dec := snap.NewDecoder(bytes)
	if err := e.Load(dec); err != nil {
		t.Fatalf("engine load: %v", err)
	}
	if err := m.timer.Load(dec); err != nil {
		t.Fatalf("timer load: %v", err)
	}
	if err := k.Load(dec); err != nil {
		t.Fatalf("kernel load: %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over after load", dec.Remaining())
	}
}

// TestKernelSaveLoadByteIdentity snapshots the fixture at every segment
// boundary of its whole run and checks the restore-then-resave bytes match
// the original snapshot exactly. This sweeps the encoder across queued
// run/MSR/HLT segments, in-flight spin probes, blocked sleepers with
// pending wheel timers, barrier waits, and the end-of-run state.
func TestKernelSaveLoadByteIdentity(t *testing.T) {
	e, k, m := buildSnapshotScenario(t)
	for step := 0; step < 400 && k.LiveTasks() > 0; step++ {
		s := m.runOne()
		if s.Kind == SegHLT {
			if !m.timer.Armed() {
				t.Fatal("halted forever")
			}
			e.RunUntil(m.timer.Deadline())
		}
		bytes := saveWorld(t, e, k, m)

		e2 := sim.NewEngine(99)
		cfg := k.cfg
		k2, err := NewKernel(e2, hw.DefaultCostModel(), cfg, &metrics.Counters{})
		if err != nil {
			t.Fatal(err)
		}
		k2.AddVCPU()
		l2 := k2.NewLock("l0")
		b2 := k2.NewBarrier("b0", 2)
		k2.Spawn("t0", 0, Steps(
			Acquire(l2), Compute(80*sim.Microsecond), Release(l2),
			Sleep(5*sim.Millisecond), JoinBarrier(b2), Done()))
		k2.Spawn("t1", 0, Steps(
			Compute(10*sim.Microsecond), Acquire(l2), Release(l2),
			Sleep(2*sim.Millisecond), JoinBarrier(b2), Done()))
		m2 := newMiniExec(e2, k2.vcpus[0])
		loadWorld(t, bytes, e2, k2, m2)

		again := saveWorld(t, e2, k2, m2)
		if string(again) != string(bytes) {
			t.Fatalf("step %d: restore-then-resave bytes differ from original snapshot", step)
		}
	}
	if k.LiveTasks() != 0 {
		t.Fatal("fixture never completed")
	}
}

// TestKernelRestoreContinuesIdentically restores mid-run and runs both
// worlds to completion: dispatch behaviour, task runtimes, and the final
// engine digests must coincide.
func TestKernelRestoreContinuesIdentically(t *testing.T) {
	e, k, m := buildSnapshotScenario(t)
	// Run deep enough that a sleeper is pending and the lock was contended.
	for i := 0; i < 25; i++ {
		if s := m.runOne(); s.Kind == SegHLT {
			if !m.timer.Armed() {
				t.Fatal("halted forever")
			}
			e.RunUntil(m.timer.Deadline())
		}
	}
	bytes := saveWorld(t, e, k, m)
	prefix := len(m.msrLog) // dst only replays the post-snapshot tail

	e2, k2, m2 := buildSnapshotScenario(t)
	loadWorld(t, bytes, e2, k2, m2)

	finish := func(e *sim.Engine, k *Kernel, m *miniExec) {
		for i := 0; i < 4000 && k.LiveTasks() > 0; i++ {
			if s := m.runOne(); s.Kind == SegHLT {
				if !m.timer.Armed() {
					t.Fatal("halted forever")
				}
				e.RunUntil(m.timer.Deadline())
			}
		}
		if k.LiveTasks() != 0 {
			t.Fatal("run never completed")
		}
	}
	finish(e, k, m)
	finish(e2, k2, m2)

	if d1, d2 := e.DigestState(), e2.DigestState(); d1 != d2 {
		t.Fatalf("final engine digests differ: %v vs %v", d1, d2)
	}
	for i := range k.tasks {
		if k.tasks[i].Runtime() != k2.tasks[i].Runtime() {
			t.Fatalf("task %d runtime %v != %v", i, k.tasks[i].Runtime(), k2.tasks[i].Runtime())
		}
	}
	tail := m.msrLog[prefix:]
	if len(tail) != len(m2.msrLog) {
		t.Fatalf("MSR write counts diverged: %d vs %d", len(tail), len(m2.msrLog))
	}
	for i := range m2.msrLog {
		if tail[i] != m2.msrLog[i] {
			t.Fatalf("MSR write %d: %v vs %v", i, tail[i], m2.msrLog[i])
		}
	}
}

// TestSaveRejectsClosurePrograms pins the contract that checkpointable
// scenarios must use struct programs.
func TestSaveRejectsClosurePrograms(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	k.Spawn("closure", 0, ProgramFunc(func(*StepCtx) Step { return Done() }))
	var enc snap.Encoder
	if err := k.Save(&enc); err == nil {
		t.Fatal("Save accepted a ProgramFunc task")
	}
}

// TestStepsProgramState round-trips the replay cursor.
func TestStepsProgramState(t *testing.T) {
	p := Steps(Compute(1), Compute(2), Done()).(*stepsProgram)
	p.Next(nil)
	var enc snap.Encoder
	p.SaveState(&enc)

	q := Steps(Compute(1), Compute(2), Done()).(*stepsProgram)
	if err := q.LoadState(snap.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if q.i != 1 {
		t.Fatalf("cursor = %d, want 1", q.i)
	}
	bad := snap.NewDecoder((&snap.Encoder{}).Bytes())
	if err := q.LoadState(bad); err == nil {
		t.Fatal("truncated state accepted")
	}
}
