// Package guest models the guest operating-system kernel: per-vCPU task
// scheduling, the idle loop that drives the tick policies of internal/core,
// a Linux-style hierarchical timer wheel for soft timers (§2 of the paper:
// "the application timer is added to a dedicated data structure (e.g. the
// timer wheel in Linux)"), blocking synchronization primitives, an
// RCU-callback model, and the segment stream the hypervisor executes.
package guest

import (
	"fmt"
	"math/bits"

	"paratick/internal/sim"
)

const (
	wheelLevels     = 6
	wheelSlots      = 64
	wheelLevelShift = 3 // each level is 8× coarser

	// overflowLevel marks a timer parked on the far-future overflow list
	// (beyond the top level's horizon) rather than in a wheel bucket.
	overflowLevel = -1
)

// SoftTimer is one entry in the timer wheel: an application or kernel soft
// timer serviced as a soft interrupt (§2).
type SoftTimer struct {
	// Deadline is the requested expiry; the wheel fires it at the first
	// jiffy boundary at or after the deadline (timer-wheel granularity).
	Deadline sim.Time
	// Fire runs when the timer expires.
	//snap:skip closure, re-bound by the timer's owner on restore
	Fire func(now sim.Time)

	// fireJiff is the effective fire jiffy, fixed at Add time: the deadline
	// rounded up to jiffy granularity, but never at or before the jiffy the
	// wheel had already processed (a late add fires at the next boundary,
	// not a full wheel lap later). All placement math runs on fireJiff, so
	// every bucket's occupancy bit corresponds exactly to when its timers
	// fire or cascade.
	fireJiff int64
	// seq is the Add order; timers expiring in the same jiffy fire in
	// (Deadline, seq) order.
	seq uint64

	//snap:skip wheel placement, recomputed when the timer is re-added on load
	level, slot int
	//snap:skip wheel placement, recomputed when the timer is re-added on load
	index int // position within the bucket (or overflow list) while queued
	//snap:skip wheel placement, recomputed when the timer is re-added on load
	queued bool
}

// Pending reports whether the timer is queued in a wheel.
//
//paratick:noalloc
func (t *SoftTimer) Pending() bool { return t != nil && t.queued }

// TimerWheel is a hierarchical timer wheel in the style of Linux's
// kernel/time/timer.c: 64-slot levels, each level 8× coarser than the one
// below, timers cascading downward as time advances. Granularity is one
// jiffy; timers never fire early.
//
// Each level carries a 64-bit occupancy bitmap — bit s set iff bucket s is
// non-empty — maintained on every Add/Cancel/expire. The bitmaps make the
// two hot queries cheap:
//
//   - NextExpiry locates the earliest occupied bucket per level with a
//     rotate + TrailingZeros64 and scans only those (at most one bucket per
//     level), instead of walking all 6×64 buckets.
//   - AdvanceTo jumps directly from one occupied slot boundary (or cascade
//     boundary, or overflow-migration point) to the next, so advancing an
//     idle vCPU across millions of empty jiffies costs O(occupied buckets),
//     not O(elapsed jiffies).
//
// Timers whose deadline lies beyond the top level's horizon are parked on a
// separate overflow list and migrate into the wheel once the horizon
// reaches them; this keeps the per-level invariant exact (every in-wheel
// timer's fire jiffy falls inside its bucket's current-lap span).
type TimerWheel struct {
	jiffy sim.Time
	//snap:skip derived from jiffy at construction
	maxJiff int64 // sim.Forever / jiffy: fire jiffies at or past this mean "never"
	curJiff int64 // jiffies fully processed
	//snap:skip derived population, rebuilt as timers are re-added on load
	buckets [wheelLevels][wheelSlots][]*SoftTimer
	//snap:skip derived population, rebuilt as timers are re-added on load
	occ [wheelLevels]uint64 // bit s set iff buckets[level][s] is non-empty
	// overflow holds timers beyond the top level's reach, unordered, with
	// index-swap removal like a bucket. It is empty in steady state.
	//snap:skip derived population, rebuilt as timers are re-added on load
	overflow []*SoftTimer
	//snap:skip derived population, rebuilt as timers are re-added on load
	count int
	seq   uint64

	// nextJiff caches the earliest pending fire jiffy; nextOK marks it
	// valid. Invalidated when the holder of the minimum is canceled or
	// fires; recomputed from the bitmaps, never by a full scan.
	//snap:skip cache, recomputed from the occupancy bitmaps
	nextJiff int64
	//snap:skip cache, recomputed from the occupancy bitmaps
	nextOK bool
}

// NewTimerWheel creates a wheel with the given jiffy duration.
func NewTimerWheel(jiffy sim.Time) *TimerWheel {
	if jiffy <= 0 {
		panic(fmt.Sprintf("guest: timer wheel jiffy must be positive, got %v", jiffy))
	}
	return &TimerWheel{jiffy: jiffy, maxJiff: int64(sim.Forever / jiffy)}
}

// Reset returns the wheel to its just-constructed state with the given
// jiffy, detaching any still-pending timers but retaining bucket capacity.
// The occupancy bitmaps locate the live buckets, so a near-empty wheel —
// the common end-of-run state — resets in O(occupied buckets).
func (w *TimerWheel) Reset(jiffy sim.Time) {
	if jiffy <= 0 {
		panic(fmt.Sprintf("guest: timer wheel jiffy must be positive, got %v", jiffy))
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := w.occ[lvl]
		for occ != 0 {
			s := bits.TrailingZeros64(occ)
			occ &^= 1 << uint(s)
			b := w.buckets[lvl][s]
			for i, t := range b {
				t.queued = false
				b[i] = nil
			}
			w.buckets[lvl][s] = b[:0]
		}
		w.occ[lvl] = 0
	}
	for i, t := range w.overflow {
		t.queued = false
		w.overflow[i] = nil
	}
	w.overflow = w.overflow[:0]
	w.jiffy = jiffy
	w.maxJiff = int64(sim.Forever / jiffy)
	w.curJiff = 0
	w.count = 0
	w.seq = 0
	w.nextJiff = 0
	w.nextOK = false
}

// WheelPool recycles TimerWheels across simulation runs. The wheel struct is
// dominated by its 6×64 bucket slice headers (~10 KB), which made fresh
// per-vCPU wheels the largest allocation in whole-experiment profiles; a
// pool amortizes that to the fleet's high-water mark. Pools are
// single-goroutine: each worker owns one and never shares it.
type WheelPool struct {
	free []*TimerWheel
}

// acquire pops a reset wheel from the pool, or builds one. A nil pool
// always builds fresh (the no-pooling default).
func (p *WheelPool) acquire(jiffy sim.Time) *TimerWheel {
	if p == nil {
		return NewTimerWheel(jiffy)
	}
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		w.Reset(jiffy)
		return w
	}
	return NewTimerWheel(jiffy)
}

// ReleaseAll takes every vCPU wheel of a finished kernel back into the
// pool. The kernel must not run again afterwards.
func (p *WheelPool) ReleaseAll(k *Kernel) {
	if p == nil {
		return
	}
	for _, v := range k.vcpus {
		if v.wheel != nil {
			p.free = append(p.free, v.wheel)
			v.wheel = nil
		}
	}
}

// Jiffy returns the wheel granularity.
func (w *TimerWheel) Jiffy() sim.Time { return w.jiffy }

// Len returns the number of pending timers.
func (w *TimerWheel) Len() int { return w.count }

// levelSpan returns the number of jiffies one slot covers at a level.
//
//paratick:noalloc
func levelSpan(level int) int64 {
	return 1 << (uint(level) * wheelLevelShift)
}

// levelReach returns how many jiffies ahead a level can represent.
//
//paratick:noalloc
func levelReach(level int) int64 {
	return wheelSlots * levelSpan(level)
}

// deadlineJiffies rounds a deadline up to jiffies. Deadlines at or near
// sim.Forever — where the round-up `deadline + jiffy - 1` would overflow and
// wrap negative — saturate to maxJiff, the "never fires" jiffy.
//
//paratick:noalloc
func (w *TimerWheel) deadlineJiffies(deadline sim.Time) int64 {
	if deadline > sim.Forever-w.jiffy+1 {
		return w.maxJiff
	}
	return int64((deadline + w.jiffy - 1) / w.jiffy)
}

// Add queues a timer. Adding an already-pending timer panics — cancel it
// first, mirroring the kernel's add_timer contract.
//
//paratick:noalloc
func (w *TimerWheel) Add(t *SoftTimer) {
	if t == nil || t.Fire == nil {
		panic("guest: Add of nil timer or timer without Fire")
	}
	if t.Pending() {
		panic("guest: Add of already-pending timer")
	}
	fj := w.deadlineJiffies(t.Deadline)
	if fj <= w.curJiff {
		// Late add: the deadline's jiffy is already processed. Fire at the
		// next boundary — never in a processed slot, which would delay the
		// timer a full wheel lap.
		fj = w.curJiff + 1
	}
	t.fireJiff = fj
	t.seq = w.seq
	w.seq++
	w.insert(t)
	if w.nextOK && fj < w.nextJiff {
		w.nextJiff = fj
	}
}

// insert places a timer by its (already fixed) fire jiffy: into the finest
// level whose reach covers it, or onto the overflow list beyond the top
// level's horizon. Used by Add, cascades, and overflow migration.
//
//paratick:noalloc
func (w *TimerWheel) insert(t *SoftTimer) {
	delta := t.fireJiff - w.curJiff
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if delta < levelReach(lvl) {
			slot := int((t.fireJiff / levelSpan(lvl)) % wheelSlots)
			t.level, t.slot = lvl, slot
			t.index = len(w.buckets[lvl][slot])
			t.queued = true
			w.buckets[lvl][slot] = append(w.buckets[lvl][slot], t)
			w.occ[lvl] |= 1 << uint(slot)
			w.count++
			return
		}
	}
	t.level = overflowLevel
	t.index = len(w.overflow)
	t.queued = true
	w.overflow = append(w.overflow, t)
	w.count++
}

// Cancel removes a pending timer; a no-op for detached timers. Returns
// whether the timer was pending.
//
//paratick:noalloc
func (w *TimerWheel) Cancel(t *SoftTimer) bool {
	if !t.Pending() {
		return false
	}
	if t.level == overflowLevel {
		last := len(w.overflow) - 1
		w.overflow[t.index] = w.overflow[last]
		w.overflow[t.index].index = t.index
		w.overflow[last] = nil
		w.overflow = w.overflow[:last]
	} else {
		b := w.buckets[t.level][t.slot]
		last := len(b) - 1
		b[t.index] = b[last]
		b[t.index].index = t.index
		b[last] = nil
		w.buckets[t.level][t.slot] = b[:last]
		if last == 0 {
			w.occ[t.level] &^= 1 << uint(t.slot)
		}
	}
	t.queued = false
	w.count--
	if w.nextOK && t.fireJiff == w.nextJiff {
		w.nextOK = false
	}
	return true
}

// NextExpiry returns the earliest pending *fire time* — the deadline
// rounded up to wheel granularity — or sim.Forever when the wheel is empty.
// This is the guest's get_next_timer_interrupt, used by the tick policies'
// idle-entry evaluation (Fig. 1b / Fig. 3c); returning the rounded time
// matters: a wakeup timer armed at the raw deadline would fire a jiffy
// before the wheel is willing to expire the soft timer.
//
//paratick:noalloc
func (w *TimerWheel) NextExpiry() sim.Time {
	if w.count == 0 {
		return sim.Forever
	}
	if !w.nextOK {
		w.nextJiff = w.earliestFireJiff()
		w.nextOK = true
	}
	return w.fireTimeOf(w.nextJiff)
}

// fireTimeOf converts a fire jiffy to simulated time; jiffies at or past
// maxJiff mean "never".
//
//paratick:noalloc
func (w *TimerWheel) fireTimeOf(fj int64) sim.Time {
	if fj >= w.maxJiff {
		return sim.Forever
	}
	return sim.Time(fj) * w.jiffy
}

// earliestFireJiff finds the minimum pending fire jiffy from the occupancy
// bitmaps: per level it inspects only the earliest occupied bucket (whose
// span is provably the earliest at that level), pruned against the best
// candidate so far, plus the overflow list.
//
//paratick:noalloc
func (w *TimerWheel) earliestFireJiff() int64 {
	best := w.maxJiff
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := w.occ[lvl]
		if occ == 0 {
			continue
		}
		span := levelSpan(lvl)
		k := nextOccupied(occ, w.curJiff/span+1)
		if k*span >= best {
			continue // the whole bucket starts at or after the best so far
		}
		for _, t := range w.buckets[lvl][int(k%wheelSlots)] {
			if t.fireJiff < best {
				best = t.fireJiff
			}
		}
	}
	for _, t := range w.overflow {
		if t.fireJiff < best {
			best = t.fireJiff
		}
	}
	return best
}

// nextOccupied returns the smallest position k ≥ from whose slot (k mod 64)
// has its bit set in occ. occ must be non-zero; the result is < from+64.
// Rotating occ right by (from mod 64) aligns slot (from+i) mod 64 with bit
// i, so TrailingZeros64 yields the offset directly.
//
//paratick:noalloc
func nextOccupied(occ uint64, from int64) int64 {
	rot := bits.RotateLeft64(occ, -int(uint64(from)%wheelSlots))
	return from + int64(bits.TrailingZeros64(rot))
}

// nextEventJiffy returns the first jiffy after curJiff at which the wheel
// has any work: an occupied level-0 slot expiring, an occupied higher-level
// bucket cascading at its slot boundary, or an overflow timer entering the
// top level's horizon. Returns maxJiff when nothing is pending.
//
//paratick:noalloc
func (w *TimerWheel) nextEventJiffy() int64 {
	next := w.maxJiff
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if w.occ[lvl] == 0 {
			continue
		}
		span := levelSpan(lvl)
		k := nextOccupied(w.occ[lvl], w.curJiff/span+1)
		if ev := k * span; ev < next {
			next = ev
		}
	}
	if len(w.overflow) > 0 {
		reach := levelReach(wheelLevels - 1)
		for _, t := range w.overflow {
			if ev := t.fireJiff - reach + 1; ev < next {
				next = ev
			}
		}
	}
	return next
}

// AdvanceTo processes all jiffies up to now, firing expired timers in
// (Deadline, Add-order) order within each jiffy. It returns the number
// fired. Empty stretches are skipped wholesale: the clock jumps from one
// occupied boundary to the next, so a long idle gap costs only the few
// buckets actually holding timers.
//
//paratick:noalloc
func (w *TimerWheel) AdvanceTo(now sim.Time) int {
	target := int64(now / w.jiffy)
	if target <= w.curJiff {
		return 0
	}
	fired := 0
	for w.curJiff < target {
		if w.count == 0 {
			break
		}
		next := w.nextEventJiffy()
		if next > target {
			break
		}
		w.curJiff = next
		fired += w.processJiffy(now)
	}
	if w.curJiff < target {
		w.curJiff = target
	}
	if fired > 0 {
		w.nextOK = false
	}
	return fired
}

// processJiffy runs the wheel work due at curJiff: overflow migration,
// cascades of higher levels whose slot boundary was crossed, then the
// level-0 bucket drain.
//
//paratick:noalloc
func (w *TimerWheel) processJiffy(now sim.Time) int {
	// Far-future timers whose fire jiffy is now within the top level's
	// horizon migrate into the wheel proper.
	if len(w.overflow) > 0 {
		reach := levelReach(wheelLevels - 1)
		for i := 0; i < len(w.overflow); {
			t := w.overflow[i]
			if t.fireJiff-w.curJiff < reach {
				last := len(w.overflow) - 1
				w.overflow[i] = w.overflow[last]
				w.overflow[i].index = i
				w.overflow[last] = nil
				w.overflow = w.overflow[:last]
				t.queued = false
				w.count--
				w.insert(t)
				continue // the swapped-in element now sits at i
			}
			i++
		}
	}
	// Cascade higher levels whose slot boundary we crossed. Re-placements
	// always land at a finer level (their remaining delta is below this
	// level's slot span), so the bucket being drained is never appended to.
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.curJiff%levelSpan(lvl) != 0 {
			break
		}
		slot := int((w.curJiff / levelSpan(lvl)) % wheelSlots)
		pending := w.buckets[lvl][slot]
		if len(pending) == 0 {
			continue
		}
		w.buckets[lvl][slot] = pending[:0]
		w.occ[lvl] &^= 1 << uint(slot)
		for _, t := range pending {
			t.queued = false
			w.count--
			w.insert(t)
		}
		for i := range pending {
			pending[i] = nil
		}
	}
	// Drain the level-0 bucket. Every timer is detached before any Fire
	// callback runs, so a handler canceling a sibling expiring in the same
	// jiffy sees a clean no-op instead of a stale bucket reference.
	slot := int(w.curJiff % wheelSlots)
	b := w.buckets[0][slot]
	if len(b) == 0 {
		return 0
	}
	w.buckets[0][slot] = b[:0]
	w.occ[0] &^= 1 << uint(slot)
	for _, t := range b {
		t.queued = false
		w.count--
	}
	sortByDeadline(b)
	fired := 0
	for _, t := range b {
		if t.fireJiff > w.curJiff {
			// Defensive: a timer placed for a future lap of this slot
			// (cannot happen with fireJiff-based placement) re-queues.
			w.insert(t)
			continue
		}
		fired++
		t.Fire(now)
	}
	for i := range b {
		b[i] = nil
	}
	return fired
}

// sortByDeadline orders a drained bucket by (Deadline, Add order) so same-
// jiffy expirations fire deterministically in deadline order, matching the
// AdvanceTo contract. Insertion sort: buckets are small and the common case
// (already ordered) is a single pass with zero allocations.
//
//paratick:noalloc
func sortByDeadline(b []*SoftTimer) {
	for i := 1; i < len(b); i++ {
		t := b[i]
		j := i - 1
		for j >= 0 && (b[j].Deadline > t.Deadline ||
			(b[j].Deadline == t.Deadline && b[j].seq > t.seq)) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = t
	}
}
