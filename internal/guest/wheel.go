// Package guest models the guest operating-system kernel: per-vCPU task
// scheduling, the idle loop that drives the tick policies of internal/core,
// a Linux-style hierarchical timer wheel for soft timers (§2 of the paper:
// "the application timer is added to a dedicated data structure (e.g. the
// timer wheel in Linux)"), blocking synchronization primitives, an
// RCU-callback model, and the segment stream the hypervisor executes.
package guest

import (
	"fmt"

	"paratick/internal/sim"
)

const (
	wheelLevels     = 6
	wheelSlots      = 64
	wheelLevelShift = 3 // each level is 8× coarser
)

// SoftTimer is one entry in the timer wheel: an application or kernel soft
// timer serviced as a soft interrupt (§2).
type SoftTimer struct {
	// Deadline is the requested expiry; the wheel fires it at the first
	// jiffy boundary at or after the deadline (timer-wheel granularity).
	Deadline sim.Time
	// Fire runs when the timer expires.
	Fire func(now sim.Time)

	level, slot int
	index       int // position within the bucket while queued
	queued      bool
}

// Pending reports whether the timer is queued in a wheel.
func (t *SoftTimer) Pending() bool { return t != nil && t.queued }

// TimerWheel is a hierarchical timer wheel in the style of Linux's
// kernel/time/timer.c: 64-slot levels, each level 8× coarser than the one
// below, timers cascading downward as time advances. Granularity is one
// jiffy; timers never fire early.
type TimerWheel struct {
	jiffy   sim.Time
	curJiff int64 // jiffies fully processed
	buckets [wheelLevels][wheelSlots][]*SoftTimer
	count   int
	// nextCache caches the earliest deadline (sim.Forever when empty or
	// stale-free); recomputed lazily.
	nextCache sim.Time
}

// NewTimerWheel creates a wheel with the given jiffy duration.
func NewTimerWheel(jiffy sim.Time) *TimerWheel {
	if jiffy <= 0 {
		panic(fmt.Sprintf("guest: timer wheel jiffy must be positive, got %v", jiffy))
	}
	return &TimerWheel{jiffy: jiffy, nextCache: sim.Forever}
}

// Jiffy returns the wheel granularity.
func (w *TimerWheel) Jiffy() sim.Time { return w.jiffy }

// Len returns the number of pending timers.
func (w *TimerWheel) Len() int { return w.count }

// levelSpan returns the number of jiffies one slot covers at a level.
func levelSpan(level int) int64 {
	return 1 << (uint(level) * wheelLevelShift)
}

// levelReach returns how many jiffies ahead a level can represent.
func levelReach(level int) int64 {
	return wheelSlots * levelSpan(level)
}

// place computes (level, slot) for a deadline given the current jiffy.
func (w *TimerWheel) place(deadlineJiff int64) (int, int) {
	delta := deadlineJiff - w.curJiff
	if delta < 1 {
		delta = 1
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if delta < levelReach(lvl) {
			slot := (deadlineJiff / levelSpan(lvl)) % wheelSlots
			return lvl, int(slot)
		}
	}
	// Beyond the top level's horizon: clamp into the top level's furthest
	// slot; the timer will cascade (and be re-placed) as time advances.
	lvl := wheelLevels - 1
	slot := ((w.curJiff + levelReach(lvl) - levelSpan(lvl)) / levelSpan(lvl)) % wheelSlots
	return lvl, int(slot)
}

func (w *TimerWheel) deadlineJiffies(deadline sim.Time) int64 {
	// Round up: a timer never fires before its deadline.
	return int64((deadline + w.jiffy - 1) / w.jiffy)
}

// Add queues a timer. Adding an already-pending timer panics — cancel it
// first, mirroring the kernel's add_timer contract.
func (w *TimerWheel) Add(t *SoftTimer) {
	if t == nil || t.Fire == nil {
		panic("guest: Add of nil timer or timer without Fire")
	}
	if t.Pending() {
		panic("guest: Add of already-pending timer")
	}
	lvl, slot := w.place(w.deadlineJiffies(t.Deadline))
	t.level, t.slot = lvl, slot
	t.index = len(w.buckets[lvl][slot])
	t.queued = true
	w.buckets[lvl][slot] = append(w.buckets[lvl][slot], t)
	w.count++
	if t.Deadline < w.nextCache {
		w.nextCache = t.Deadline
	}
}

// Cancel removes a pending timer; a no-op for detached timers. Returns
// whether the timer was pending.
func (w *TimerWheel) Cancel(t *SoftTimer) bool {
	if !t.Pending() {
		return false
	}
	b := w.buckets[t.level][t.slot]
	last := len(b) - 1
	b[t.index] = b[last]
	b[t.index].index = t.index
	w.buckets[t.level][t.slot] = b[:last]
	t.queued = false
	w.count--
	// nextCache may now be stale (too early); that only costs a recompute.
	return true
}

// NextExpiry returns the earliest pending *fire time* — the deadline
// rounded up to wheel granularity — or sim.Forever when the wheel is empty.
// This is the guest's get_next_timer_interrupt, used by the tick policies'
// idle-entry evaluation (Fig. 1b / Fig. 3c); returning the rounded time
// matters: a wakeup timer armed at the raw deadline would fire a jiffy
// before the wheel is willing to expire the soft timer.
func (w *TimerWheel) NextExpiry() sim.Time {
	if w.count == 0 {
		return sim.Forever
	}
	if w.nextCache != sim.Forever {
		// Verify the cache still points at a live deadline.
		if w.cacheLive() {
			return w.fireTime(w.nextCache)
		}
	}
	w.recomputeNext()
	return w.fireTime(w.nextCache)
}

// fireTime rounds a deadline up to the jiffy boundary the wheel fires at.
func (w *TimerWheel) fireTime(deadline sim.Time) sim.Time {
	if deadline == sim.Forever {
		return sim.Forever
	}
	return sim.Time(w.deadlineJiffies(deadline)) * w.jiffy
}

func (w *TimerWheel) cacheLive() bool {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for slot := 0; slot < wheelSlots; slot++ {
			for _, t := range w.buckets[lvl][slot] {
				if t.Deadline == w.nextCache {
					return true
				}
			}
		}
	}
	return false
}

func (w *TimerWheel) recomputeNext() {
	w.nextCache = sim.Forever
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for slot := 0; slot < wheelSlots; slot++ {
			for _, t := range w.buckets[lvl][slot] {
				if t.Deadline < w.nextCache {
					w.nextCache = t.Deadline
				}
			}
		}
	}
}

// AdvanceTo processes all jiffies up to now, firing expired timers in
// deadline order within each jiffy. It returns the number fired.
func (w *TimerWheel) AdvanceTo(now sim.Time) int {
	target := int64(now / w.jiffy)
	fired := 0
	for w.curJiff < target {
		w.curJiff++
		fired += w.expireJiffy(now)
	}
	if fired > 0 {
		w.recomputeNext()
	}
	return fired
}

func (w *TimerWheel) expireJiffy(now sim.Time) int {
	fired := 0
	// Cascade higher levels whose slot boundary we crossed.
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.curJiff%levelSpan(lvl) != 0 {
			break
		}
		slot := int((w.curJiff / levelSpan(lvl)) % wheelSlots)
		pending := w.buckets[lvl][slot]
		w.buckets[lvl][slot] = nil
		for _, t := range pending {
			t.queued = false
			w.count--
			w.Add(t) // re-place at a finer level
		}
	}
	slot := int(w.curJiff % wheelSlots)
	b := w.buckets[0][slot]
	w.buckets[0][slot] = nil
	for _, t := range b {
		t.queued = false
		w.count--
		if w.deadlineJiffies(t.Deadline) > w.curJiff {
			// Lives in a future lap of this slot.
			w.Add(t)
			continue
		}
		fired++
		t.Fire(now)
	}
	return fired
}
