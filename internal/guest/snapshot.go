package guest

// Checkpoint/restore of the guest kernel: tasks, vCPUs, synchronization
// objects, timer wheels, and attached devices. Closures are never
// serialized — every callback the guest schedules is rebuilt from the
// identity of the objects it was bound over (task ids, lock registry
// ordinals), which is why Segment carries owner fields and the kernel
// registers sync objects in creation order. The segment pool is drained,
// not saved: pooled segments are dead state.
//
// Load targets a kernel freshly rebuilt from the same scenario
// specification: identical vCPU count, task spawn order, sync-object
// creation order, and device attachment order. Everything mutable is then
// overwritten from the snapshot; pending timers and in-service I/O re-arm
// their engine events at the original (when, seq) coordinates.

import (
	"fmt"
	"sort"

	"paratick/internal/core"
	"paratick/internal/iodev"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// --- timer wheel -------------------------------------------------------------

// restoreTimer re-queues t with its saved placement identity: the fire
// jiffy and tie-break sequence assigned at the original Add. The wheel's
// clock must already be restored; pending timers always satisfy
// fireJiff > curJiff.
func (w *TimerWheel) restoreTimer(t *SoftTimer, fireJiff int64, seq uint64) error {
	if t.Pending() {
		return fmt.Errorf("guest: restore of an already-pending timer")
	}
	if fireJiff <= w.curJiff {
		return fmt.Errorf("guest: restored timer fires at jiffy %d, wheel already at %d", fireJiff, w.curJiff)
	}
	t.fireJiff = fireJiff
	t.seq = seq
	w.insert(t)
	if w.nextOK && fireJiff < w.nextJiff {
		w.nextJiff = fireJiff
	}
	return nil
}

// saveClock writes the wheel's scalar state. Bucket contents are not
// enumerated: every timer living in a scenario wheel is a task sleep timer,
// saved (with its placement) by the task that owns it.
func (w *TimerWheel) saveClock(enc *snap.Encoder) {
	enc.I64(int64(w.jiffy))
	enc.I64(w.curJiff)
	enc.U64(w.seq)
}

// loadClock restores state written by saveClock into an empty wheel.
func (w *TimerWheel) loadClock(dec *snap.Decoder) error {
	if j := sim.Time(dec.I64()); dec.Err() == nil && j != w.jiffy {
		return fmt.Errorf("guest: snapshot wheel jiffy %v does not match configured %v", j, w.jiffy)
	}
	if w.count != 0 {
		return fmt.Errorf("guest: loadClock into a wheel holding %d timers", w.count)
	}
	w.curJiff = dec.I64()
	w.seq = dec.U64()
	w.nextOK = false
	return dec.Err()
}

// forEachPending visits every queued timer (buckets and overflow) in an
// unspecified order.
func (w *TimerWheel) forEachPending(fn func(t *SoftTimer)) {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for slot := 0; slot < wheelSlots; slot++ {
			for _, t := range w.buckets[lvl][slot] {
				fn(t)
			}
		}
	}
	for _, t := range w.overflow {
		fn(t)
	}
}

// DigestState hashes the wheel's observable state: clock, counters,
// occupancy bitmaps, and every pending timer in Add order. Cached
// next-expiry values and retained bucket capacity are excluded — both are
// derived or deliberately recycled state. A freshly constructed wheel and
// a used-then-Reset wheel must digest identically.
func (w *TimerWheel) DigestState() snap.Digest {
	var enc snap.Encoder
	enc.Section("wheel-digest")
	enc.I64(int64(w.jiffy))
	enc.I64(w.maxJiff)
	enc.I64(w.curJiff)
	enc.I64(int64(w.count))
	enc.U64(w.seq)
	for lvl := 0; lvl < wheelLevels; lvl++ {
		enc.U64(w.occ[lvl])
	}
	var pending []*SoftTimer
	w.forEachPending(func(t *SoftTimer) { pending = append(pending, t) })
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	enc.U32(uint32(len(pending)))
	for _, t := range pending {
		enc.I64(int64(t.Deadline))
		enc.I64(t.fireJiff)
		enc.U64(t.seq)
	}
	return snap.HashBytes(enc.Bytes())
}

// --- segments ----------------------------------------------------------------

// OnDone closures are encoded symbolically by what they were bound over.
const (
	segDoneNil      = 0 // no completion callback
	segDoneTaskRun  = 1 // ownerTask's run-completion callback
	segDoneLockSpin = 2 // post-spin lock retry probe (ownerLock, ownerTask)
)

func (k *Kernel) deviceIndex(d *iodev.Device) int {
	for i, dev := range k.devices {
		if dev == d {
			return i
		}
	}
	return -1
}

func (k *Kernel) saveSegment(enc *snap.Encoder, s *Segment) error {
	enc.U8(uint8(s.Kind))
	enc.String(s.Label)
	enc.I64(int64(s.Duration))
	enc.Bool(s.Kernel)
	enc.Bool(s.Spin)
	enc.I64(int64(s.Deadline))
	enc.Bool(s.Req != nil)
	if s.Req != nil {
		iodev.SaveRequest(enc, s.Req, taskCookieID)
	}
	if s.Dev == nil {
		enc.I64(-1)
	} else {
		idx := k.deviceIndex(s.Dev)
		if idx < 0 {
			return fmt.Errorf("guest: segment %v references an unattached device", s)
		}
		enc.I64(int64(idx))
	}
	enc.I64(int64(s.Target))
	enc.I64(int64(s.HKind))
	enc.I64(s.HArg)
	switch {
	case s.OnDone == nil:
		enc.U8(segDoneNil)
	case s.ownerLock != nil && s.ownerTask != nil:
		enc.U8(segDoneLockSpin)
		enc.I64(int64(s.ownerLock.id))
		enc.I64(int64(s.ownerTask.ID))
	case s.ownerTask != nil:
		enc.U8(segDoneTaskRun)
		enc.I64(int64(s.ownerTask.ID))
	default:
		return fmt.Errorf("guest: segment %v has an OnDone closure with no recorded owner", s)
	}
	return nil
}

func (k *Kernel) loadSegment(dec *snap.Decoder, v *VCPU) (*Segment, error) {
	s := k.acquireSeg()
	s.Kind = SegKind(dec.U8())
	s.Label = dec.String()
	s.Duration = sim.Time(dec.I64())
	s.Kernel = dec.Bool()
	s.Spin = dec.Bool()
	s.Deadline = sim.Time(dec.I64())
	if dec.Bool() {
		s.Req = iodev.LoadRequest(dec, k.cookieOf)
	}
	if idx := dec.I64(); idx >= 0 {
		if int(idx) >= len(k.devices) {
			return nil, fmt.Errorf("guest: snapshot references device %d of %d", idx, len(k.devices))
		}
		s.Dev = k.devices[idx]
	}
	s.Target = int(dec.I64())
	s.HKind = core.HypercallKind(dec.I64())
	s.HArg = dec.I64()
	done := dec.U8()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	switch done {
	case segDoneNil:
	case segDoneTaskRun:
		t, err := k.taskByID(dec.I64())
		if err != nil {
			return nil, err
		}
		s.OnDone = t.runDoneFn
		s.ownerTask = t
	case segDoneLockSpin:
		lockID := dec.I64()
		t, err := k.taskByID(dec.I64())
		if err != nil {
			return nil, err
		}
		if lockID < 0 || int(lockID) >= len(k.locks) {
			return nil, fmt.Errorf("guest: snapshot references lock %d of %d", lockID, len(k.locks))
		}
		lock := k.locks[lockID]
		s.OnDone = v.lockSpinRetry(lock, t)
		s.ownerTask = t
		s.ownerLock = lock
	default:
		return nil, fmt.Errorf("guest: unknown segment completion kind %d", done)
	}
	return s, dec.Err()
}

func (k *Kernel) taskByID(id int64) (*Task, error) {
	if id < 0 || int(id) >= len(k.tasks) {
		return nil, fmt.Errorf("guest: snapshot references task %d of %d", id, len(k.tasks))
	}
	return k.tasks[id], nil
}

// taskCookieID translates a request Cookie (a *Task for blocking I/O) into
// its stable task id.
func taskCookieID(c any) int64 {
	if t, ok := c.(*Task); ok && t != nil {
		return int64(t.ID)
	}
	return -1
}

// cookieOf resolves a task id back into the Cookie value the request
// carried.
func (k *Kernel) cookieOf(id int64) any {
	if id < 0 || int(id) >= len(k.tasks) {
		return nil
	}
	return k.tasks[id]
}

func saveTaskIDs(enc *snap.Encoder, tasks []*Task) {
	enc.U32(uint32(len(tasks)))
	for _, t := range tasks {
		enc.I64(int64(t.ID))
	}
}

func (k *Kernel) loadTaskIDs(dec *snap.Decoder, into []*Task) ([]*Task, error) {
	n := int(dec.U32())
	for i := 0; i < n && dec.Err() == nil; i++ {
		t, err := k.taskByID(dec.I64())
		if err != nil {
			return nil, err
		}
		into = append(into, t)
	}
	return into, dec.Err()
}

// --- kernel ------------------------------------------------------------------

// Issued returns the segment most recently handed to the hypervisor (nil
// when none is outstanding). The hypervisor uses it after a restore to
// re-link its in-flight segment pointer.
func (v *VCPU) Issued() *Segment { return v.issued }

// Save serializes the kernel's complete mutable state. The shared metrics
// counters are excluded (the hypervisor and guest write into one Counters
// object; its owner saves it once). Every spawned program must implement
// ProgramState.
func (k *Kernel) Save(enc *snap.Encoder) error {
	enc.Section("guest")
	for _, w := range k.rng.State() {
		enc.U64(w)
	}
	enc.Bool(k.started)

	enc.U32(uint32(len(k.locks)))
	for _, l := range k.locks {
		holder := int64(-1)
		if l.holder != nil {
			holder = int64(l.holder.ID)
		}
		enc.I64(holder)
		saveTaskIDs(enc, l.waiters)
		enc.U64(l.acquisitions)
		enc.U64(l.contended)
	}
	enc.U32(uint32(len(k.barriers)))
	for _, b := range k.barriers {
		enc.I64(int64(b.parties)) // mutable: detach shrinks the party
		saveTaskIDs(enc, b.waiting)
		enc.U64(b.cycles)
	}
	enc.U32(uint32(len(k.conds)))
	for _, c := range k.conds {
		enc.I64(int64(c.lock.id))
		saveTaskIDs(enc, c.waiters)
		enc.U64(c.waits)
		enc.U64(c.signals)
	}

	enc.U32(uint32(len(k.vcpus)))
	for _, v := range k.vcpus {
		enc.U64(core.PolicyState(v.policy))
		v.wheel.saveClock(enc)
		enc.Bool(v.idle)
		enc.Bool(v.needResched)
		enc.Bool(v.booted)
		enc.Bool(v.timerArmed)
		enc.I64(int64(v.timerDeadline))
		enc.Bool(v.rcuPending)
		enc.I64(int64(v.rcuDeadline))
		enc.I64(int64(v.switchCount))
		enc.I64(int64(v.lastTickAt))
		current := int64(-1)
		if v.current != nil {
			current = int64(v.current.ID)
		}
		enc.I64(current)
		saveTaskIDs(enc, v.runq)
		enc.U32(uint32(len(v.queue)))
		for _, s := range v.queue {
			if err := k.saveSegment(enc, s); err != nil {
				return err
			}
		}
		enc.Bool(v.issued != nil)
		if v.issued != nil {
			if err := k.saveSegment(enc, v.issued); err != nil {
				return err
			}
		}
	}

	enc.U32(uint32(len(k.tasks)))
	for _, t := range k.tasks {
		enc.U8(uint8(t.state))
		for _, w := range t.rng.State() {
			enc.U64(w)
		}
		enc.I64(int64(t.remaining))
		enc.String(t.blockReason)
		pending := t.sleepTimer.Pending()
		enc.Bool(pending)
		if pending {
			enc.I64(int64(t.sleepTimer.Deadline))
			enc.I64(t.sleepTimer.fireJiff)
			enc.U64(t.sleepTimer.seq)
		}
		enc.I64(int64(t.startedAt))
		enc.I64(int64(t.finishedAt))
		ps, ok := t.prog.(ProgramState)
		if !ok {
			return fmt.Errorf("guest: task %q runs a %T, which does not implement ProgramState; snapshot requires struct programs", t.Name, t.prog)
		}
		ps.SaveState(enc)
	}

	enc.U32(uint32(len(k.devices)))
	for _, d := range k.devices {
		d.Save(enc, taskCookieID)
	}
	return nil
}

// Load restores state saved by Save into a kernel freshly rebuilt from the
// same scenario specification, re-arming pending soft timers and device
// events at their original engine coordinates. The engine's clock must
// already be restored (Engine.Load), since timer re-arms schedule into the
// restored timeline.
func (k *Kernel) Load(dec *snap.Decoder) error {
	dec.Section("guest")
	var s [4]uint64
	for i := range s {
		s[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	k.rng.SetState(s)
	k.started = dec.Bool()

	if n := int(dec.U32()); dec.Err() == nil && n != len(k.locks) {
		return fmt.Errorf("guest: snapshot has %d locks, kernel has %d", n, len(k.locks))
	}
	for _, l := range k.locks {
		l.holder = nil
		if id := dec.I64(); id >= 0 {
			t, err := k.taskByID(id)
			if err != nil {
				return err
			}
			l.holder = t
		}
		var err error
		if l.waiters, err = k.loadTaskIDs(dec, l.waiters[:0]); err != nil {
			return err
		}
		l.acquisitions = dec.U64()
		l.contended = dec.U64()
	}
	if n := int(dec.U32()); dec.Err() == nil && n != len(k.barriers) {
		return fmt.Errorf("guest: snapshot has %d barriers, kernel has %d", n, len(k.barriers))
	}
	for _, b := range k.barriers {
		b.parties = int(dec.I64())
		var err error
		if b.waiting, err = k.loadTaskIDs(dec, b.waiting[:0]); err != nil {
			return err
		}
		b.cycles = dec.U64()
	}
	if n := int(dec.U32()); dec.Err() == nil && n != len(k.conds) {
		return fmt.Errorf("guest: snapshot has %d conds, kernel has %d", n, len(k.conds))
	}
	for _, c := range k.conds {
		if id := dec.I64(); dec.Err() == nil && int(id) != c.lock.id {
			return fmt.Errorf("guest: cond %q paired with lock %d in snapshot, %d in kernel", c.name, id, c.lock.id)
		}
		var err error
		if c.waiters, err = k.loadTaskIDs(dec, c.waiters[:0]); err != nil {
			return err
		}
		c.waits = dec.U64()
		c.signals = dec.U64()
	}

	if n := int(dec.U32()); dec.Err() == nil && n != len(k.vcpus) {
		return fmt.Errorf("guest: snapshot has %d vCPUs, kernel has %d", n, len(k.vcpus))
	}
	for _, v := range k.vcpus {
		if err := core.SetPolicyState(v.policy, dec.U64()); err != nil {
			return err
		}
		if err := v.wheel.loadClock(dec); err != nil {
			return err
		}
		v.idle = dec.Bool()
		v.needResched = dec.Bool()
		v.booted = dec.Bool()
		v.timerArmed = dec.Bool()
		v.timerDeadline = sim.Time(dec.I64())
		v.rcuPending = dec.Bool()
		v.rcuDeadline = sim.Time(dec.I64())
		v.switchCount = int(dec.I64())
		v.lastTickAt = sim.Time(dec.I64())
		v.current = nil
		if id := dec.I64(); id >= 0 {
			t, err := k.taskByID(id)
			if err != nil {
				return err
			}
			v.current = t
		}
		var err error
		if v.runq, err = k.loadTaskIDs(dec, v.runq[:0]); err != nil {
			return err
		}
		for _, old := range v.queue {
			k.releaseSeg(old)
		}
		v.queue = v.queue[:0]
		nseg := int(dec.U32())
		for i := 0; i < nseg; i++ {
			seg, err := k.loadSegment(dec, v)
			if err != nil {
				return err
			}
			v.queue = append(v.queue, seg)
		}
		if v.issued != nil {
			k.releaseSeg(v.issued)
			v.issued = nil
		}
		if dec.Bool() {
			if v.issued, err = k.loadSegment(dec, v); err != nil {
				return err
			}
		}
	}

	if n := int(dec.U32()); dec.Err() == nil && n != len(k.tasks) {
		return fmt.Errorf("guest: snapshot has %d tasks, kernel has %d", n, len(k.tasks))
	}
	k.liveTasks = 0
	for _, t := range k.tasks {
		t.state = TaskState(dec.U8())
		var rs [4]uint64
		for i := range rs {
			rs[i] = dec.U64()
		}
		if err := dec.Err(); err != nil {
			return err
		}
		t.rng.SetState(rs)
		t.remaining = sim.Time(dec.I64())
		t.blockReason = dec.String()
		t.sleepTimer = SoftTimer{}
		if dec.Bool() {
			t.sleepTimer = SoftTimer{
				Deadline: sim.Time(dec.I64()),
				Fire:     t.sleepFireFn,
			}
			fireJiff := dec.I64()
			seq := dec.U64()
			if err := dec.Err(); err != nil {
				return err
			}
			if err := t.vcpu.wheel.restoreTimer(&t.sleepTimer, fireJiff, seq); err != nil {
				return err
			}
		}
		t.startedAt = sim.Time(dec.I64())
		t.finishedAt = sim.Time(dec.I64())
		ps, ok := t.prog.(ProgramState)
		if !ok {
			return fmt.Errorf("guest: task %q runs a %T, which does not implement ProgramState", t.Name, t.prog)
		}
		if err := ps.LoadState(dec); err != nil {
			return err
		}
		if t.state != TaskDone {
			k.liveTasks++
		}
	}

	if n := int(dec.U32()); dec.Err() == nil && n != len(k.devices) {
		return fmt.Errorf("guest: snapshot has %d devices, kernel has %d", n, len(k.devices))
	}
	for _, d := range k.devices {
		if err := d.Load(dec, k.cookieOf); err != nil {
			return err
		}
	}
	return dec.Err()
}
