package guest

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/sim"
)

// VCPU is one virtual CPU of a guest kernel. It owns a run queue of tasks,
// the per-CPU timer wheel, and the tick-policy instance, and it emits the
// segment stream the hypervisor executes. It implements core.GuestVCPU.
type VCPU struct {
	//snap:skip back-pointer wiring, bound at attach time
	//reset:keep back-pointer bound at attach time, stable across reuse
	kernel *Kernel
	//snap:skip identity is implicit in the kernel's save order
	//reset:keep stable slot ordinal; vCPUs are recycled in attach order
	id     int
	policy core.TickPolicy

	// policyCache keeps one policy instance per mode so a pooled vCPU can
	// switch modes across runs without allocating; reset() installs (and
	// zeroes) the cached instance for the kernel's current mode.
	//snap:skip pool of per-mode policy instances; live policy state is saved
	policyCache [3]core.TickPolicy

	queue   []*Segment
	runq    []*Task
	current *Task

	idle        bool
	needResched bool
	booted      bool

	wheel *TimerWheel

	// Guest-visible deadline-timer state; the authoritative hardware timer
	// lives in the hypervisor and is programmed by SegMSRWrite segments.
	timerArmed    bool
	timerDeadline sim.Time

	// RCU model: a pending grace period requires tick service.
	rcuPending  bool
	rcuDeadline sim.Time
	switchCount int

	// lastTickAt is when RunTickWork last ran, feeding the tick-interval
	// histogram; -1 until the first tick (time 0 is a valid tick time).
	lastTickAt sim.Time

	// emit, when non-nil, redirects queued segments (used to order
	// interrupt-handler segments ahead of preempted work).
	//snap:skip transient redirect, nil outside a collect call (never set at a barrier)
	emit *[]*Segment

	// issued is the segment most recently handed to the hypervisor; it is
	// returned to the kernel's pool when the next segment is fetched (by
	// then the hypervisor has fully consumed it — completed, preempted, or
	// aborted it).
	issued *Segment

	// irqScratch is collect's reusable buffer for interrupt-handler
	// segments; its contents are copied into the queue before the next
	// collect call.
	//snap:skip scratch buffer, empty between collect calls
	irqScratch []*Segment

	// stepCtx is the reusable context handed to task programs; programs
	// read it during Next and must not retain it.
	//snap:skip scratch: rebuilt for every program step
	stepCtx StepCtx
}

// ID returns the vCPU index within its VM.
func (v *VCPU) ID() int { return v.id }

// Kernel returns the owning guest kernel.
func (v *VCPU) Kernel() *Kernel { return v.kernel }

// Policy returns the vCPU's tick policy.
func (v *VCPU) Policy() core.TickPolicy { return v.policy }

// RunQueueLen returns the number of runnable (queued) tasks.
func (v *VCPU) RunQueueLen() int { return len(v.runq) }

// Current returns the running task, or nil.
func (v *VCPU) Current() *Task { return v.current }

// PendingSegments returns the number of queued segments (diagnostics).
func (v *VCPU) PendingSegments() int { return len(v.queue) }

// Wheel returns the vCPU's timer wheel.
func (v *VCPU) Wheel() *TimerWheel { return v.wheel }

// --- core.GuestVCPU implementation -----------------------------------------

// Now returns current simulated time.
func (v *VCPU) Now() sim.Time { return v.kernel.engine.Now() }

// TickPeriod returns the guest tick period.
func (v *VCPU) TickPeriod() sim.Time { return v.kernel.cfg.TickPeriod() }

// ArmTimer programs the deadline timer: guest-visible state changes
// immediately; the MSR write (and its VM exit) is a queued segment.
func (v *VCPU) ArmTimer(deadline sim.Time) {
	v.timerArmed = true
	v.timerDeadline = deadline
	v.kernel.counters.TimerArms++
	v.addKernelSeg(v.kernel.cost.GuestTimerProgram, "timer-program")
	s := v.kernel.acquireSeg()
	s.Kind = SegMSRWrite
	s.Deadline = deadline
	s.Label = "arm"
	v.queueSeg(s)
}

// StopTimer disarms the deadline timer (an MSR write of 0).
func (v *VCPU) StopTimer() {
	v.timerArmed = false
	v.timerDeadline = sim.Forever
	v.kernel.counters.TimerArms++
	v.addKernelSeg(v.kernel.cost.GuestTimerProgram, "timer-stop")
	s := v.kernel.acquireSeg()
	s.Kind = SegMSRWrite
	s.Deadline = sim.Forever
	s.Label = "stop"
	v.queueSeg(s)
}

// TimerArmed reports the guest-visible timer state.
func (v *VCPU) TimerArmed() bool { return v.timerArmed }

// TimerDeadline returns the guest-visible programmed deadline.
func (v *VCPU) TimerDeadline() sim.Time {
	if !v.timerArmed {
		return sim.Forever
	}
	return v.timerDeadline
}

// RunTickWork performs one scheduler tick: accounting/housekeeping cost,
// timer-wheel service (soft interrupts), RCU grace-period progress, and
// round-robin preemption.
func (v *VCPU) RunTickWork() {
	k := v.kernel
	k.counters.GuestTicks++
	// The handler's work varies run to run (pending soft timers, RCU,
	// accounting); the jitter also prevents unrealistic phase locking
	// between same-frequency timers of co-scheduled vCPUs.
	v.addKernelSeg(k.rng.Jitter(k.cost.GuestTickWork, 0.15), "tick-work")
	now := v.Now()
	if v.lastTickAt >= 0 {
		k.counters.TickInterval.Observe(now - v.lastTickAt)
	}
	v.lastTickAt = now
	v.serviceWheel(now)
	if v.rcuPending && now >= v.rcuDeadline {
		v.rcuPending = false
		v.rcuDeadline = sim.Forever
		v.addKernelSeg(500, "rcu-callbacks")
	}
	if k.cfg.PreemptOnTick && v.current != nil && len(v.runq) > 0 {
		v.needResched = true
	}
}

// AddKernelWork charges guest-kernel CPU time; d == 0 selects the
// calibrated default for the label.
func (v *VCPU) AddKernelWork(d sim.Time, label string) {
	if d == 0 {
		d = v.kernel.defaultKernelCost(label)
	}
	v.addKernelSeg(d, label)
}

// serviceWheel advances the timer wheel to now, firing due soft timers.
// This is the first wheel touch after an idle period: under dynticks or
// paratick a long idle gap spans millions of jiffies, and the bitmap-
// indexed wheel crosses them in O(occupied buckets), so both the tick
// handler and the wakeup-IPI path service the wheel unconditionally rather
// than rationing calls to what used to be an O(elapsed) walk.
func (v *VCPU) serviceWheel(now sim.Time) int {
	return v.wheel.AdvanceTo(now)
}

// NextSoftEvent returns the earliest pending soft timer or RCU deadline.
// Both tick policies evaluate this on every idle entry (Fig. 1b / Fig. 3c);
// the wheel answers from its occupancy bitmaps without scanning buckets.
func (v *VCPU) NextSoftEvent() sim.Time {
	next := v.wheel.NextExpiry()
	if v.rcuPending && v.rcuDeadline < next {
		next = v.rcuDeadline
	}
	return next
}

// TickRequired reports whether RCU needs the tick kept alive (Fig. 1b).
func (v *VCPU) TickRequired() bool { return v.rcuPending }

// Idle reports whether the vCPU is in the idle loop.
func (v *VCPU) Idle() bool { return v.idle }

// Hypercall queues a paravirtual call segment.
func (v *VCPU) Hypercall(kind core.HypercallKind, arg int64) {
	s := v.kernel.acquireSeg()
	s.Kind = SegHypercall
	s.HKind = kind
	s.HArg = arg
	s.Label = kind.String()
	v.queueSeg(s)
}

var _ core.GuestVCPU = (*VCPU)(nil)

// --- segment plumbing -------------------------------------------------------

//paratick:noalloc
func (v *VCPU) queueSeg(s *Segment) {
	if v.emit != nil {
		*v.emit = append(*v.emit, s)
		return
	}
	v.queue = append(v.queue, s)
}

// pushFront prepends segs to the queue in order, shifting the existing
// contents with overlapping copies instead of allocating a fresh slice.
//
//paratick:noalloc
func (v *VCPU) pushFront(segs ...*Segment) {
	n := len(segs)
	if n == 0 {
		return
	}
	old := len(v.queue)
	v.queue = append(v.queue, segs...)
	copy(v.queue[n:], v.queue[:old])
	copy(v.queue, segs)
}

//paratick:noalloc
func (v *VCPU) addKernelSeg(d sim.Time, label string) {
	if d <= 0 {
		return
	}
	s := v.kernel.acquireSeg()
	s.Kind = SegRun
	s.Duration = d
	s.Kernel = true
	s.Label = label
	v.queueSeg(s)
}

// collect routes segments emitted by fn into the vCPU's reusable scratch
// buffer (for interrupt handlers, whose work must run ahead of preempted
// segments). The returned slice is valid until the next collect call;
// collect never nests — only Deliver uses it, and delivery cannot re-enter.
//
//paratick:noalloc
func (v *VCPU) collect(fn func()) []*Segment {
	prev := v.emit
	v.irqScratch = v.irqScratch[:0]
	v.emit = &v.irqScratch
	fn()
	v.emit = prev
	return v.irqScratch
}

// --- hypervisor-facing interface ---------------------------------------------

// ShouldHalt is the guest's need_resched check immediately before HLT: the
// hypervisor aborts a queued halt when work became runnable between the
// idle-entry decision and the HLT instruction (an interrupt handler ran in
// between) — the idle loop's lost-wakeup guard.
func (v *VCPU) ShouldHalt() bool {
	return v.idle && v.current == nil && len(v.runq) == 0
}

// Boot initializes tick management; the hypervisor calls it once before
// running the vCPU.
func (v *VCPU) Boot() {
	if v.booted {
		panic(fmt.Sprintf("guest: vCPU %d booted twice", v.id))
	}
	v.booted = true
	v.policy.OnBoot(v)
}

// Next returns the next segment to execute. The guest always has something
// to do: with no runnable tasks it emits the idle-entry sequence ending in
// SegHLT. The previously issued segment is recycled here: by the time the
// hypervisor asks for the next segment it has fully consumed the last one
// (completed, preempted — which banks remaining work elsewhere — or
// aborted).
func (v *VCPU) Next() *Segment {
	if v.issued != nil {
		v.kernel.releaseSeg(v.issued)
		v.issued = nil
	}
	for {
		if len(v.queue) > 0 {
			s := v.queue[0]
			v.queue = v.queue[0:copy(v.queue, v.queue[1:])]
			v.issued = s
			return s
		}
		v.schedule()
	}
}

// Preempt informs the guest that an interrupt cut seg short with remaining
// time unconsumed. Task work is banked on the task (so the scheduler may
// switch away before resuming it); anonymous kernel work is re-queued
// directly.
func (v *VCPU) Preempt(seg *Segment, remaining sim.Time) {
	if seg.Kind != SegRun {
		panic(fmt.Sprintf("guest: preempt of non-run segment %v", seg))
	}
	if remaining <= 0 {
		return
	}
	if t := v.taskOf(seg); t != nil {
		t.remaining = remaining
		return
	}
	rest := v.kernel.acquireSeg()
	*rest = *seg
	rest.Duration = remaining
	v.pushFront(rest)
}

// taskOf maps a user-run segment back to the task that owns it.
func (v *VCPU) taskOf(seg *Segment) *Task {
	if seg.Kernel {
		return nil
	}
	if v.current != nil {
		return v.current
	}
	return nil
}

// Deliver runs interrupt delivery for vec: the handler's segments are
// placed ahead of everything else queued on the vCPU.
func (v *VCPU) Deliver(vec hw.Vector) {
	segs := v.collect(func() {
		v.addKernelSeg(v.kernel.cost.GuestIRQEntry, "irq-entry")
		switch {
		case vec == hw.LocalTimerVector:
			// The one-shot deadline timer fired; guest-visible state
			// reflects that before the handler runs.
			v.timerArmed = false
			v.timerDeadline = sim.Forever
			v.policy.OnTick(v)
		case vec == hw.ParatickVector:
			v.policy.OnVirtualTick(v)
		case vec == hw.RescheduleVector:
			// Wakeup IPI: the waker already queued the task; entry cost
			// plus wheel service (softirqs run on IRQ exit).
			v.serviceWheel(v.Now())
		case vec == hw.CallFuncVector:
			v.addKernelSeg(400, "call-func")
		default:
			v.deliverDeviceIRQ(vec)
		}
	})
	v.pushFront(segs...)
}

// deliverDeviceIRQ drains completions destined for this vCPU from every
// attached device using the vector, waking the blocked submitters.
func (v *VCPU) deliverDeviceIRQ(vec hw.Vector) {
	k := v.kernel
	for _, d := range k.devices {
		if d.Vector() != vec {
			continue
		}
		for _, req := range d.DrainCompletedFor(v.id) {
			v.addKernelSeg(k.cost.GuestIOCompleteWork, "io-complete")
			if req.Write {
				k.counters.IOWrites++
				k.counters.IOBytesWritten += uint64(req.Bytes)
			} else {
				k.counters.IOReads++
				k.counters.IOBytesRead += uint64(req.Bytes)
			}
			if t, ok := req.Cookie.(*Task); ok && t != nil {
				k.wake(t, v)
			}
		}
	}
}

// --- scheduler ---------------------------------------------------------------

// schedule refills the segment queue: it resolves idle transitions, picks
// tasks, and advances the current task's program.
func (v *VCPU) schedule() {
	if v.idle {
		if v.current == nil && len(v.runq) == 0 {
			// Spurious wakeup: re-evaluate idle entry (Fig. 1b / 3c) and
			// halt again.
			v.policy.OnIdleEnter(v)
			s := v.kernel.acquireSeg()
			s.Kind = SegHLT
			s.Label = "re-idle"
			v.queueSeg(s)
			return
		}
		v.exitIdle()
	}
	if v.needResched {
		v.needResched = false
		if v.current != nil && len(v.runq) > 0 {
			v.current.state = TaskRunnable
			v.runq = append(v.runq, v.current)
			v.current = nil
		}
	}
	if v.current == nil {
		if len(v.runq) == 0 {
			v.enterIdle()
			return
		}
		next := v.runq[0]
		v.runq = v.runq[0:copy(v.runq, v.runq[1:])]
		next.state = TaskRunning
		v.current = next
		v.contextSwitch()
	}
	v.advanceTask()
}

func (v *VCPU) contextSwitch() {
	k := v.kernel
	k.counters.ContextSw++
	v.switchCount++
	v.addKernelSeg(k.cost.GuestSchedSwitch, "ctx-switch")
	if k.cfg.RCUEveryNSwitches > 0 && v.switchCount%k.cfg.RCUEveryNSwitches == 0 && !v.rcuPending {
		v.rcuPending = true
		v.rcuDeadline = v.Now() + v.TickPeriod()
	}
}

func (v *VCPU) enterIdle() {
	v.idle = true
	v.kernel.counters.IdleEnters++
	v.policy.OnIdleEnter(v)
	s := v.kernel.acquireSeg()
	s.Kind = SegHLT
	s.Label = "idle"
	v.queueSeg(s)
}

func (v *VCPU) exitIdle() {
	v.idle = false
	v.kernel.counters.IdleExits++
	v.policy.OnIdleExit(v)
}

// advanceTask pushes the current task's next work onto the queue.
func (v *VCPU) advanceTask() {
	t := v.current
	if t == nil {
		return
	}
	if t.remaining > 0 {
		v.pushTaskRun(t)
		return
	}
	v.stepComplete(t)
}

//paratick:noalloc
func (v *VCPU) pushTaskRun(t *Task) {
	s := v.kernel.acquireSeg()
	s.Kind = SegRun
	s.Duration = t.remaining
	s.Label = t.Name
	s.OnDone = t.runDoneFn
	s.ownerTask = t
	v.queueSeg(s)
}

// stepComplete fetches and applies the task's next program step. The context
// is the vCPU's reusable scratch; programs must not retain it past Next.
func (v *VCPU) stepComplete(t *Task) {
	v.stepCtx = StepCtx{Now: v.Now(), Rand: t.rng, TaskID: t.ID}
	v.applyStep(t, t.prog.Next(&v.stepCtx))
}

func (v *VCPU) applyStep(t *Task, step Step) {
	k := v.kernel
	switch step.Kind {
	case StepCompute:
		if step.D <= 0 {
			v.stepComplete(t)
			return
		}
		t.remaining = step.D
		v.pushTaskRun(t)

	case StepSleep:
		v.addKernelSeg(k.cost.GuestSyscall, "nanosleep")
		t.sleepTimer = SoftTimer{
			Deadline: v.Now() + step.D,
			Fire:     t.sleepFireFn,
		}
		v.wheel.Add(&t.sleepTimer)
		v.block(t, "sleep")

	case StepLock:
		v.addKernelSeg(250, "lock-fast-path")
		if step.L.tryAcquireFast(t) {
			v.stepComplete(t)
			return
		}
		if spin := k.cfg.AdaptiveSpin; spin > 0 {
			// Optimistic spinning: burn CPU in a pause loop, then re-probe;
			// only block if the lock is still held. This is the behaviour
			// pause-loop exiting (PLE) targets — and why the paper disables
			// PLE when studying pure blocking synchronization (§6).
			lock := step.L
			s := v.kernel.acquireSeg()
			s.Kind = SegRun
			s.Duration = t.rng.Jitter(spin, 0.2)
			s.Kernel = true
			s.Spin = true
			s.Label = "lock-spin"
			s.OnDone = v.lockSpinRetry(lock, t)
			s.ownerTask = t
			s.ownerLock = lock
			v.queueSeg(s)
			return
		}
		step.L.enqueueWaiter(t)
		v.addKernelSeg(k.cost.GuestSyscall, "futex-wait")
		v.block(t, step.L.blockReason)

	case StepUnlock:
		next := step.L.release(t)
		v.addKernelSeg(250, "unlock")
		if next != nil {
			k.wake(next, v)
		}
		v.stepComplete(t)

	case StepBarrier:
		toWake, release := step.B.arrive(t)
		v.addKernelSeg(k.cost.GuestSyscall, "barrier")
		if release {
			for _, w := range toWake {
				k.wake(w, v)
			}
			v.stepComplete(t)
			return
		}
		v.block(t, step.B.blockReason)

	case StepCondWait:
		v.addKernelSeg(k.cost.GuestSyscall, "cond-wait")
		step.C.wait(t) // panics unless t holds the paired lock
		if next := step.C.lock.release(t); next != nil {
			k.wake(next, v)
		}
		v.block(t, step.C.blockReason)

	case StepCondSignal, StepCondBroadcast:
		n := 1
		if step.Kind == StepCondBroadcast {
			n = -1
		}
		v.addKernelSeg(250, "cond-signal")
		for _, w := range step.C.signal(n) {
			// The woken task resumes inside its wait: it must re-acquire
			// the paired lock first. If the lock is free it grabs it and
			// wakes immediately; otherwise it queues as a lock waiter and
			// the eventual release hands off and wakes it — no thundering
			// herd.
			if step.C.lock.tryAcquireFast(w) {
				k.wake(w, v)
			} else {
				step.C.lock.enqueueWaiter(w)
			}
		}
		v.stepComplete(t)

	case StepBarrierLeave:
		v.addKernelSeg(250, "barrier-leave")
		for _, w := range step.B.detach() {
			k.wake(w, v)
		}
		v.stepComplete(t)

	case StepIO:
		v.addKernelSeg(k.cost.GuestIOSubmitWork, "io-submit")
		req := &iodev.Request{
			Write:      step.Write,
			Sequential: step.Sequential,
			Bytes:      step.Bytes,
			VCPU:       v.id,
		}
		if step.Blocking {
			req.Cookie = t
		}
		s := v.kernel.acquireSeg()
		s.Kind = SegIOSubmit
		s.Req = req
		s.Dev = step.Dev
		s.Label = "io-kick"
		v.queueSeg(s)
		if step.Blocking {
			v.block(t, "io")
			return
		}
		v.stepComplete(t)

	case StepYield:
		v.addKernelSeg(k.cost.GuestSyscall, "yield")
		if len(v.runq) > 0 {
			t.state = TaskRunnable
			v.runq = append(v.runq, t)
			v.current = nil
		}
		// With an empty run queue the task just continues.
		if v.current == t {
			v.stepComplete(t)
		}

	case StepDone:
		v.addKernelSeg(k.cost.GuestSyscall, "exit")
		v.current = nil
		k.taskDone(t)

	default:
		panic(fmt.Sprintf("guest: unknown step kind %v", step.Kind))
	}
}

// lockSpinRetry builds the post-spin probe that ends an optimistic-spin
// segment: take the lock if it freed up meanwhile, otherwise block as a
// waiter. Factored out of applyStep so a restored checkpoint can rebuild
// an in-flight spin segment's OnDone bit for bit.
func (v *VCPU) lockSpinRetry(lock *Lock, t *Task) func() {
	return func() {
		if lock.tryAcquireFast(t) {
			v.stepComplete(t)
			return
		}
		lock.enqueueWaiter(t)
		v.addKernelSeg(v.kernel.cost.GuestSyscall, "futex-wait")
		v.block(t, lock.blockReason)
	}
}

// block marks the current task blocked and frees the CPU.
func (v *VCPU) block(t *Task, reason string) {
	t.state = TaskBlocked
	t.blockReason = reason
	if v.current == t {
		v.current = nil
	}
}

// wake makes t runnable on its home vCPU. Wakes from a different vCPU send
// a reschedule IPI (a VM exit for the waker) so a halted target is brought
// out of idle — the cross-vCPU path §4.2 analyzes.
func (k *Kernel) wake(t *Task, waker *VCPU) {
	if t.state != TaskBlocked {
		return
	}
	if t.sleepTimer.Pending() {
		t.vcpu.wheel.Cancel(&t.sleepTimer)
	}
	t.state = TaskRunnable
	t.blockReason = ""
	k.counters.Wakeups++
	t.vcpu.runq = append(t.vcpu.runq, t)
	if waker != nil && waker != t.vcpu {
		waker.addKernelSeg(k.cost.GuestWakeup, "wakeup-remote")
		s := k.acquireSeg()
		s.Kind = SegIPI
		s.Target = t.vcpu.id
		s.Label = "resched-ipi"
		waker.queueSeg(s)
	}
}

// WakeTask wakes a blocked task from outside any vCPU context (used by
// tests and by host-driven events that bypass the IPI path).
func (k *Kernel) WakeTask(t *Task) { k.wake(t, nil) }
