package guest

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// Config selects the guest kernel's tick-management behaviour.
type Config struct {
	// TickHz is the scheduler-tick frequency (Linux CONFIG_HZ); the paper
	// evaluates at 250 Hz.
	TickHz int
	// Mode selects the tick policy: periodic, dynticks (paper baseline), or
	// paratick.
	Mode core.Mode
	// PolicyOpts tunes the policy (ablations).
	PolicyOpts core.Options
	// RCUEveryNSwitches activates the RCU model: after every N guest
	// context switches an RCU grace period is pending, requiring tick
	// service (Fig. 1b's "tick explicitly needed"). 0 disables it.
	RCUEveryNSwitches int
	// PreemptOnTick enables round-robin task preemption from the tick
	// handler (the scheduler work ticks exist for).
	PreemptOnTick bool
	// AdaptiveSpin makes contended lock acquisitions spin for this long
	// before blocking (Linux mutex optimistic spinning). 0 = block
	// immediately, the pure blocking synchronization the paper evaluates.
	AdaptiveSpin sim.Time
	// Wheels, when non-nil, supplies recycled per-vCPU timer wheels. The
	// experiment layer points it at a worker-private pool; nil allocates
	// fresh wheels (identical behaviour, more garbage).
	Wheels *WheelPool
	// TaskHint, when positive, presizes the kernel's task registry and each
	// vCPU's run queue for roughly this many spawned tasks, so the first run
	// through a pooled kernel does not grow those slices mid-flight. It is a
	// capacity hint only — exceeding it merely reallocates as usual.
	TaskHint int
}

// DefaultConfig returns the paper's guest configuration: 250 Hz dynticks.
func DefaultConfig() Config {
	// RCU blocks tick-stopping rarely in practice; once per ~2000 context
	// switches keeps the Fig. 1b "tick explicitly needed" branch exercised
	// without distorting the idle-transition MSR traffic §3.2 analyzes.
	return Config{TickHz: 250, Mode: core.DynticksIdle, RCUEveryNSwitches: 2000, PreemptOnTick: true}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TickHz <= 0 {
		return fmt.Errorf("guest: TickHz must be positive, got %d", c.TickHz)
	}
	if c.RCUEveryNSwitches < 0 {
		return fmt.Errorf("guest: RCUEveryNSwitches must be non-negative, got %d", c.RCUEveryNSwitches)
	}
	if c.AdaptiveSpin < 0 {
		return fmt.Errorf("guest: AdaptiveSpin must be non-negative, got %v", c.AdaptiveSpin)
	}
	if c.TaskHint < 0 {
		return fmt.Errorf("guest: TaskHint must be non-negative, got %d", c.TaskHint)
	}
	switch c.Mode {
	case core.Periodic, core.DynticksIdle, core.Paratick:
	default:
		return fmt.Errorf("guest: unknown tick mode %d", int(c.Mode))
	}
	return nil
}

// TickPeriod returns the tick period implied by TickHz.
func (c Config) TickPeriod() sim.Time { return sim.PeriodFromHz(c.TickHz) }

// Kernel is one guest operating system instance (one VM). It owns vCPUs,
// tasks, synchronization objects, and attached devices. The hypervisor
// (internal/kvm) executes the segments its vCPUs emit.
type Kernel struct {
	//snap:skip engine wiring, bound at construction and never replaced
	engine *sim.Engine
	//snap:skip immutable cost model from the scenario configuration
	cost hw.CostModel
	//snap:skip immutable guest configuration from the scenario
	cfg Config
	//snap:skip aliases the harness-owned counters the kvm layer snapshots
	counters *metrics.Counters
	rng      *sim.Rand

	vcpus   []*VCPU
	tasks   []*Task
	devices []*iodev.Device

	// locks, barriers and conds register every synchronization object in
	// creation order. The registries give each object a stable small id so
	// checkpoints can reference them (waiter lists, spin-retry closures)
	// without serializing pointers; deterministic scenario construction
	// guarantees a rebuilt kernel assigns the same ids.
	locks    []*Lock
	barriers []*Barrier
	conds    []*Cond

	//snap:skip derived: recounted as tasks are restored
	liveTasks int
	started   bool
	// OnAllDone fires when the last live task finishes — the workload's
	// completion instant (the paper's "execution time" metric endpoint).
	//snap:skip completion callback, rebound by the harness after restore
	OnAllDone func(now sim.Time)

	// segFree pools Segment objects: every unit of guest execution used to
	// be a fresh heap literal, which made segment churn the second-largest
	// allocation source in whole-experiment profiles. Segments cycle
	// acquire → queue → issue → release (at the vCPU's next fetch).
	//snap:skip pool of recycled segments, capacity only
	segFree []*Segment

	// taskFree holds the previous run's Task objects after a Reset, reused
	// by Spawn in LIFO order. A recycled task keeps its pre-bound callback
	// closures (they read t.vcpu at call time, so re-homing is safe) and its
	// Rand object (reseeded via ForkInto at the identical draw point).
	//snap:skip pool of recycled tasks, capacity only
	taskFree []*Task

	// lockPool, barrierPool and condPool hold the previous run's
	// synchronization objects after a Reset, indexed by their registry id.
	// New{Lock,Barrier,Cond} recycle the object at the id being assigned
	// when its name matches — deterministic scenario construction recreates
	// sync objects in the same order with the same names, so in steady
	// state every constructor call is a pool hit that keeps the precomputed
	// blockReason string.
	//snap:skip pool of recycled sync objects, capacity only
	lockPool []*Lock
	//snap:skip pool of recycled sync objects, capacity only
	barrierPool []*Barrier
	//snap:skip pool of recycled sync objects, capacity only
	condPool []*Cond
}

// segSlab is how many segments are allocated at once when the pool runs
// dry; one allocation amortizes over a slab's worth of queued segments.
const segSlab = 64

// acquireSeg returns a zeroed segment from the pool, refilling it a slab at
// a time.
//
//paratick:noalloc
func (k *Kernel) acquireSeg() *Segment {
	if n := len(k.segFree); n > 0 {
		s := k.segFree[n-1]
		k.segFree[n-1] = nil
		k.segFree = k.segFree[:n-1]
		return s
	}
	//lint:ignore A001 slab refill: one allocation amortized over segSlab segments, absent in steady state
	slab := make([]Segment, segSlab)
	for i := 1; i < segSlab; i++ {
		k.segFree = append(k.segFree, &slab[i])
	}
	return &slab[0]
}

// releaseSeg recycles a fully consumed segment. Zeroing drops the OnDone
// closure, device, and request references so the pool retains no state.
//
//paratick:noalloc
func (k *Kernel) releaseSeg(s *Segment) {
	*s = Segment{}
	k.segFree = append(k.segFree, s)
}

// NewKernel creates a guest kernel recording into counters.
func NewKernel(engine *sim.Engine, cost hw.CostModel, cfg Config, counters *metrics.Counters) (*Kernel, error) {
	if engine == nil || counters == nil {
		return nil, fmt.Errorf("guest: NewKernel requires an engine and counters")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	k := &Kernel{
		engine:   engine,
		cost:     cost,
		cfg:      cfg,
		counters: counters,
		rng:      engine.Rand().Fork(0x6e57),
	}
	if cfg.TaskHint > 0 {
		k.tasks = make([]*Task, 0, cfg.TaskHint)
	}
	return k, nil
}

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// SetAdaptiveSpin adjusts the optimistic-spin window at runtime. The value
// is consulted afresh on every contended acquisition, so the change applies
// from the next lock attempt on — the experiment layer varies it across
// forked snapshot arms.
func (k *Kernel) SetAdaptiveSpin(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("guest: AdaptiveSpin must be non-negative, got %v", d)
	}
	k.cfg.AdaptiveSpin = d
	return nil
}

// SetPolicyOptions retunes every vCPU's tick policy at runtime, preserving
// the policies' accumulated state (unlike rebuilding them).
func (k *Kernel) SetPolicyOptions(o core.Options) error {
	for _, v := range k.vcpus {
		if err := core.SetOptions(v.policy, o); err != nil {
			return err
		}
	}
	k.cfg.PolicyOpts = o
	return nil
}

// Counters returns the metrics sink shared with the hypervisor.
func (k *Kernel) Counters() *metrics.Counters { return k.counters }

// Now returns current simulated time.
func (k *Kernel) Now() sim.Time { return k.engine.Now() }

// VCPUs returns the kernel's vCPUs.
func (k *Kernel) VCPUs() []*VCPU { return k.vcpus }

// AddVCPU creates the next vCPU. All vCPUs must be added before tasks
// spawn.
func (k *Kernel) AddVCPU() *VCPU {
	id := len(k.vcpus)
	runqCap := 16
	if k.cfg.TaskHint > runqCap {
		// Wakes append to a task's home run queue, so in the worst case one
		// vCPU queues every task of the VM — size for that so the first run
		// never grows the queue.
		runqCap = k.cfg.TaskHint
	}
	v := &VCPU{
		kernel:        k,
		id:            id,
		policy:        core.NewPolicy(k.cfg.Mode, k.cfg.PolicyOpts),
		wheel:         k.cfg.Wheels.acquire(k.cfg.TickPeriod()),
		queue:         make([]*Segment, 0, 64),
		runq:          make([]*Task, 0, runqCap),
		timerDeadline: sim.Forever,
		rcuDeadline:   sim.Forever,
		lastTickAt:    -1,
	}
	v.policyCache[k.cfg.Mode] = v.policy
	k.vcpus = append(k.vcpus, v)
	return v
}

// AttachDevice registers a block device whose completion interrupts this
// guest handles.
func (k *Kernel) AttachDevice(d *iodev.Device) {
	if d == nil {
		panic("guest: AttachDevice(nil)")
	}
	k.devices = append(k.devices, d)
}

// Devices returns the attached devices.
func (k *Kernel) Devices() []*iodev.Device { return k.devices }

// NewLock creates a guest-level blocking mutex.
func (k *Kernel) NewLock(name string) *Lock {
	id := len(k.locks)
	if id < len(k.lockPool) && k.lockPool[id] != nil && k.lockPool[id].name == name {
		l := k.lockPool[id]
		k.lockPool[id] = nil
		l.reset()
		k.locks = append(k.locks, l)
		return l
	}
	l := &Lock{kernel: k, id: id, name: name, blockReason: "lock:" + name}
	k.locks = append(k.locks, l)
	return l
}

// NewBarrier creates a guest-level barrier for parties tasks.
func (k *Kernel) NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("guest: barrier %q needs positive parties, got %d", name, parties))
	}
	id := len(k.barriers)
	if id < len(k.barrierPool) && k.barrierPool[id] != nil && k.barrierPool[id].name == name {
		b := k.barrierPool[id]
		k.barrierPool[id] = nil
		b.reset(parties)
		k.barriers = append(k.barriers, b)
		return b
	}
	b := &Barrier{kernel: k, id: id, name: name, blockReason: "barrier:" + name, parties: parties}
	if cap(b.waiting) < parties-1 {
		// The barrier can hold parties-1 blocked tasks (the last arrival
		// releases everyone); size both cycle buffers up front so the first
		// cycle does not grow them.
		b.waiting = make([]*Task, 0, parties-1)
		b.spare = make([]*Task, 0, parties-1)
	}
	k.barriers = append(k.barriers, b)
	return b
}

// Spawn creates a task running prog, pinned to the given vCPU. Tasks are
// runnable immediately.
func (k *Kernel) Spawn(name string, vcpu int, prog Program) *Task {
	if vcpu < 0 || vcpu >= len(k.vcpus) {
		panic(fmt.Sprintf("guest: Spawn %q on vCPU %d of %d", name, vcpu, len(k.vcpus)))
	}
	if prog == nil {
		panic("guest: Spawn with nil program")
	}
	var t *Task
	if n := len(k.taskFree); n > 0 {
		// Recycle a task retired by Reset. ForkInto consumes exactly one
		// draw from k.rng, the same as Fork on the fresh path, so recycled
		// and fresh kernels stay in RNG lockstep.
		t = k.taskFree[n-1]
		k.taskFree[n-1] = nil
		k.taskFree = k.taskFree[:n-1]
		t.ID = len(k.tasks)
		t.Name = name
		t.prog = prog
		t.vcpu = k.vcpus[vcpu]
		t.state = TaskRunnable
		k.rng.ForkInto(t.rng, uint64(len(k.tasks))+0x7a5c)
		t.remaining = 0
		t.blockReason = ""
		t.sleepTimer = SoftTimer{}
		t.startedAt = k.engine.Now()
		t.finishedAt = 0
	} else {
		t = &Task{
			ID:        len(k.tasks),
			Name:      name,
			prog:      prog,
			vcpu:      k.vcpus[vcpu],
			state:     TaskRunnable,
			rng:       k.rng.Fork(uint64(len(k.tasks)) + 0x7a5c),
			startedAt: k.engine.Now(),
		}
		// Pre-bind the task's hot-path callbacks once: a run segment
		// completes and a sleep timer fires millions of times per run, and a
		// closure literal per occurrence dominated allocation profiles. Both
		// closures read t.vcpu at call time, so they survive re-homing when
		// the task is recycled into a later run.
		t.runDoneFn = func() {
			t.remaining = 0
			t.vcpu.stepComplete(t)
		}
		t.sleepFireFn = func(sim.Time) { k.wake(t, t.vcpu) }
	}
	k.tasks = append(k.tasks, t)
	k.liveTasks++
	t.vcpu.runq = append(t.vcpu.runq, t)
	return t
}

// Tasks returns all spawned tasks.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// LiveTasks returns the number of tasks not yet done.
func (k *Kernel) LiveTasks() int { return k.liveTasks }

func (k *Kernel) taskDone(t *Task) {
	t.state = TaskDone
	t.finishedAt = k.engine.Now()
	k.liveTasks--
	if k.liveTasks == 0 && k.OnAllDone != nil {
		k.OnAllDone(k.engine.Now())
	}
}

// defaultKernelCost maps policy work labels to calibrated costs, letting
// internal/core charge work without depending on the cost model.
func (k *Kernel) defaultKernelCost(label string) sim.Time {
	switch label {
	case "idle-enter-eval":
		return k.cost.GuestIdleEnterWork
	case "idle-exit":
		return k.cost.GuestIdleExitWork
	case "paratick-stale-timer":
		return 200
	default:
		return 300
	}
}
