package guest

import (
	"fmt"

	"paratick/internal/iodev"
	"paratick/internal/sim"
	"paratick/internal/snap"
)

// StepKind enumerates the actions a workload program can request.
type StepKind int

const (
	// StepCompute runs on the CPU for D.
	StepCompute StepKind = iota
	// StepSleep blocks the task for D via a soft timer (timer wheel).
	StepSleep
	// StepLock acquires L, blocking if contended.
	StepLock
	// StepUnlock releases L, waking the next waiter.
	StepUnlock
	// StepBarrier joins barrier B; the last arriving task releases all.
	StepBarrier
	// StepBarrierLeave removes the task from barrier B's party (a thread
	// exiting a phased computation).
	StepBarrierLeave
	// StepCondWait atomically releases C's lock and blocks until signaled,
	// then re-acquires the lock (pthread_cond_wait).
	StepCondWait
	// StepCondSignal wakes one waiter of C (pthread_cond_signal).
	StepCondSignal
	// StepCondBroadcast wakes all waiters of C (pthread_cond_broadcast).
	StepCondBroadcast
	// StepIO performs a block-device operation; Blocking selects
	// synchronous semantics (the paper's fio runs use the sync engine).
	StepIO
	// StepYield relinquishes the CPU to the next runnable task.
	StepYield
	// StepDone terminates the task.
	StepDone
)

// String names the step kind.
func (k StepKind) String() string {
	names := [...]string{"compute", "sleep", "lock", "unlock", "barrier", "barrier-leave", "cond-wait", "cond-signal", "cond-broadcast", "io", "yield", "done"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("step(%d)", int(k))
}

// Step is one action requested by a workload program.
type Step struct {
	Kind       StepKind
	D          sim.Time // StepCompute / StepSleep
	L          *Lock
	B          *Barrier
	C          *Cond
	Dev        *iodev.Device
	Bytes      int
	Write      bool
	Sequential bool
	Blocking   bool // StepIO: true = synchronous (task blocks for completion)
}

// Convenience constructors keep workload definitions terse.

// Compute returns a CPU step of duration d.
func Compute(d sim.Time) Step { return Step{Kind: StepCompute, D: d} }

// Sleep returns a soft-timer sleep of duration d.
func Sleep(d sim.Time) Step { return Step{Kind: StepSleep, D: d} }

// Acquire returns a blocking lock acquisition.
func Acquire(l *Lock) Step { return Step{Kind: StepLock, L: l} }

// Release returns a lock release.
func Release(l *Lock) Step { return Step{Kind: StepUnlock, L: l} }

// JoinBarrier returns a barrier join.
func JoinBarrier(b *Barrier) Step { return Step{Kind: StepBarrier, B: b} }

// LeaveBarrier returns a barrier detach (an exiting thread leaves the
// party so the remaining threads stop waiting for it).
func LeaveBarrier(b *Barrier) Step { return Step{Kind: StepBarrierLeave, B: b} }

// Wait returns a condition wait: release the paired lock, block until
// signaled, re-acquire (the caller must hold c's lock).
func Wait(c *Cond) Step { return Step{Kind: StepCondWait, C: c} }

// Signal returns a wake of one waiter of c (the caller should hold c's
// lock, as with pthreads best practice; not enforced).
func Signal(c *Cond) Step { return Step{Kind: StepCondSignal, C: c} }

// Broadcast returns a wake of all waiters of c.
func Broadcast(c *Cond) Step { return Step{Kind: StepCondBroadcast, C: c} }

// Read returns a synchronous read of n bytes.
func Read(dev *iodev.Device, n int, sequential bool) Step {
	return Step{Kind: StepIO, Dev: dev, Bytes: n, Sequential: sequential, Blocking: true}
}

// WriteOp returns a write of n bytes; blocking selects sync semantics.
func WriteOp(dev *iodev.Device, n int, sequential, blocking bool) Step {
	return Step{Kind: StepIO, Dev: dev, Bytes: n, Write: true, Sequential: sequential, Blocking: blocking}
}

// Yield returns a voluntary CPU yield.
func Yield() Step { return Step{Kind: StepYield} }

// Done returns the terminal step.
func Done() Step { return Step{Kind: StepDone} }

// StepCtx is the context handed to programs when generating the next step.
type StepCtx struct {
	Now    sim.Time
	Rand   *sim.Rand
	TaskID int
}

// Program generates a task's behaviour one step at a time. Next is called
// when the previous step has fully completed (including any blocking).
type Program interface {
	Next(ctx *StepCtx) Step
}

// ProgramFunc adapts a function to the Program interface. A ProgramFunc
// cannot be checkpointed: closures hide their captured state. Programs used
// in snapshotted scenarios must be structs implementing ProgramState
// (embed Stateless when Next reads no mutable fields).
type ProgramFunc func(ctx *StepCtx) Step

// Next implements Program.
func (f ProgramFunc) Next(ctx *StepCtx) Step { return f(ctx) }

// ProgramState is implemented by programs whose behaviour depends on
// mutable fields. Checkpointing a kernel requires every spawned program to
// implement it; SaveState writes the fields Next reads, LoadState restores
// them into a freshly built program of the same shape.
type ProgramState interface {
	SaveState(enc *snap.Encoder)
	LoadState(dec *snap.Decoder) error
}

// Stateless marks a Program as carrying no mutable state (its Next is a
// pure function of the StepCtx). Embed it to satisfy ProgramState.
type Stateless struct{}

// SaveState implements ProgramState; nothing to save.
func (Stateless) SaveState(*snap.Encoder) {}

// LoadState implements ProgramState; nothing to restore.
func (Stateless) LoadState(*snap.Decoder) error { return nil }

// stepsProgram replays a fixed step sequence, then Done. Its only mutable
// state is the replay cursor.
type stepsProgram struct {
	//snap:skip immutable step sequence from the scenario definition
	steps []Step
	i     int
}

// Next implements Program.
func (p *stepsProgram) Next(*StepCtx) Step {
	if p.i >= len(p.steps) {
		return Done()
	}
	s := p.steps[p.i]
	p.i++
	return s
}

// SaveState implements ProgramState.
func (p *stepsProgram) SaveState(enc *snap.Encoder) { enc.U32(uint32(p.i)) }

// LoadState implements ProgramState.
func (p *stepsProgram) LoadState(dec *snap.Decoder) error {
	i := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if i < 0 || i > len(p.steps) {
		return fmt.Errorf("guest: steps-program cursor %d outside %d steps", i, len(p.steps))
	}
	p.i = i
	return nil
}

// Steps returns a Program that replays a fixed step sequence, then Done.
// Useful in tests and simple examples.
func Steps(steps ...Step) Program {
	return &stepsProgram{steps: steps}
}

// TaskState is a task's scheduler state.
type TaskState int

const (
	// TaskRunnable is queued on its vCPU's run queue.
	TaskRunnable TaskState = iota
	// TaskRunning is the vCPU's current task.
	TaskRunning
	// TaskBlocked is waiting on a lock, barrier, sleep, or I/O.
	TaskBlocked
	// TaskDone has finished.
	TaskDone
)

// String names the state.
func (s TaskState) String() string {
	names := [...]string{"runnable", "running", "blocked", "done"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Task is one schedulable guest thread.
type Task struct {
	ID   int
	Name string
	prog Program
	//snap:skip re-homed by vCPU run-queue membership, which is saved
	vcpu  *VCPU
	state TaskState
	rng   *sim.Rand

	// remaining holds unconsumed compute time when the task was preempted
	// mid-step.
	remaining sim.Time
	// blockReason annotates TaskBlocked for diagnostics.
	blockReason string
	// wakePending marks a wakeup that raced with block bookkeeping.
	sleepTimer SoftTimer

	// runDoneFn and sleepFireFn are pre-bound in Spawn so the run-segment
	// and sleep paths never allocate a closure per event.
	//snap:skip pre-bound closure, recreated by Spawn on restore
	runDoneFn func()
	//snap:skip pre-bound closure, recreated by Spawn on restore
	sleepFireFn func(sim.Time)

	startedAt  sim.Time
	finishedAt sim.Time
}

// State returns the scheduler state.
func (t *Task) State() TaskState { return t.state }

// VCPU returns the vCPU the task is affine to.
func (t *Task) VCPU() *VCPU { return t.vcpu }

// BlockReason returns why a blocked task is blocked ("" otherwise).
func (t *Task) BlockReason() string { return t.blockReason }

// Runtime returns completion time minus start time for a done task.
func (t *Task) Runtime() sim.Time {
	if t.state != TaskDone {
		return 0
	}
	return t.finishedAt - t.startedAt
}
