package guest

// Blocking synchronization primitives. These model futex-backed pthread
// mutexes and barriers: contended acquisition blocks the task (possibly
// idling its vCPU — the behaviour whose timer cost §3.2 analyzes), and
// release hands the lock directly to the first waiter and wakes it, which
// crosses vCPUs via a reschedule IPI.

// Lock is a guest-level blocking mutex with direct handoff.
type Lock struct {
	//snap:skip back-pointer wiring, bound when the kernel registers the lock
	kernel *Kernel
	// id is the lock's ordinal in the kernel's creation-order registry,
	// the stable identity used by checkpoints.
	id int
	//snap:skip immutable diagnostic label from deterministic construction
	name string
	// blockReason is the precomputed BlockReason string for waiters;
	// building "lock:"+name per contended acquisition allocated on a hot
	// path.
	//snap:skip cache: precomputed from name at construction
	blockReason string
	holder      *Task
	waiters     []*Task

	acquisitions uint64
	contended    uint64
}

// Name returns the lock's diagnostic name.
func (l *Lock) Name() string { return l.name }

// Holder returns the current owner, or nil.
func (l *Lock) Holder() *Task { return l.holder }

// Waiters returns the number of blocked waiters.
func (l *Lock) Waiters() int { return len(l.waiters) }

// Acquisitions returns the total successful acquisitions.
func (l *Lock) Acquisitions() uint64 { return l.acquisitions }

// Contended returns how many acquisitions had to block.
func (l *Lock) Contended() uint64 { return l.contended }

// reset returns a pooled lock to its just-constructed state; the kernel
// pointer, registry id, name, and precomputed blockReason are construction
// identity and survive.
//
//paratick:noalloc
func (l *Lock) reset() {
	l.holder = nil
	for i := range l.waiters {
		l.waiters[i] = nil
	}
	l.waiters = l.waiters[:0]
	l.acquisitions = 0
	l.contended = 0
}

// tryAcquire attempts acquisition for t. On contention, t is queued and
// blocked; the caller must stop running the task. Returns whether the lock
// was taken.
func (l *Lock) tryAcquire(t *Task) bool {
	if l.tryAcquireFast(t) {
		return true
	}
	l.enqueueWaiter(t)
	return false
}

// tryAcquireFast takes the lock iff it is free (the optimistic-spin probe).
func (l *Lock) tryAcquireFast(t *Task) bool {
	if l.holder == nil {
		l.holder = t
		l.acquisitions++
		return true
	}
	return false
}

// enqueueWaiter registers t as a blocked waiter.
func (l *Lock) enqueueWaiter(t *Task) {
	l.contended++
	l.waiters = append(l.waiters, t)
}

// release transfers the lock to the first waiter (direct handoff) and
// returns the task to wake, or nil when uncontended. Releasing a lock not
// held by t panics: it is always a workload bug.
func (l *Lock) release(t *Task) *Task {
	if l.holder != t {
		panic("guest: unlock of a lock not held by the calling task")
	}
	if len(l.waiters) == 0 {
		l.holder = nil
		return nil
	}
	next := l.waiters[0]
	l.waiters = l.waiters[0:copy(l.waiters, l.waiters[1:])]
	l.holder = next
	l.acquisitions++
	return next
}

// Barrier blocks tasks until Parties of them have arrived, then releases
// all of them at once (the last arrival does not block). This reproduces
// the phase synchronization of data-parallel PARSEC workloads.
type Barrier struct {
	//snap:skip back-pointer wiring, bound when the kernel registers the barrier
	kernel *Kernel
	//snap:skip identity is implicit in the registry's save order
	id int // creation-order registry ordinal (checkpoint identity)
	//snap:skip immutable diagnostic label from deterministic construction
	name    string
	parties int
	// blockReason is the precomputed BlockReason string for waiters.
	//snap:skip cache: precomputed from name at construction
	blockReason string
	waiting     []*Task
	// spare is the previous cycle's waiting buffer, recycled so each release
	// does not abandon the array. Safe because the returned toWake slice is
	// consumed synchronously (the caller wakes every task before any of them
	// can re-arrive).
	//snap:skip pool: recycled waiter buffer, capacity only
	spare []*Task

	cycles uint64
}

// Name returns the barrier's diagnostic name.
func (b *Barrier) Name() string { return b.name }

// Parties returns the arrival count that releases the barrier.
func (b *Barrier) Parties() int { return b.parties }

// Waiting returns the number of tasks currently blocked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Cycles returns how many times the barrier has released.
func (b *Barrier) Cycles() uint64 { return b.cycles }

// reset returns a pooled barrier to its just-constructed state for parties
// tasks. The party count is taken from the constructor call, not the old
// value: detach shrinks parties during a run, so it is per-run state.
//
//paratick:noalloc
func (b *Barrier) reset(parties int) {
	b.parties = parties
	for i := range b.waiting {
		b.waiting[i] = nil
	}
	b.waiting = b.waiting[:0]
	b.cycles = 0
}

// arrive registers t. If t completes the party, it returns the tasks to
// wake (everyone else) and releaseAll=true; otherwise t must block.
//
//paratick:noalloc
func (b *Barrier) arrive(t *Task) (toWake []*Task, releaseAll bool) {
	if len(b.waiting)+1 >= b.parties {
		toWake = b.waiting
		b.waiting = b.spare[:0]
		b.spare = toWake
		b.cycles++
		return toWake, true
	}
	b.waiting = append(b.waiting, t)
	return nil, false
}

// detach removes one party from the barrier — a participating task is
// exiting. If the remaining waiters now complete a cycle, they are
// released; the returned tasks must be woken by the caller.
//
//paratick:noalloc
func (b *Barrier) detach() (toWake []*Task) {
	if b.parties > 0 {
		b.parties--
	}
	if b.parties > 0 && len(b.waiting) >= b.parties {
		toWake = b.waiting
		b.waiting = b.spare[:0]
		b.spare = toWake
		b.cycles++
	}
	return toWake
}

// Cond is a guest-level condition variable paired with an external Lock,
// mirroring pthread_cond_t: Wait atomically releases the lock and blocks;
// Signal wakes one waiter, Broadcast wakes all. Woken tasks re-acquire the
// lock before Wait returns (the scheduler replays the acquisition). This is
// the primitive behind the producer/consumer queues of the pipeline PARSEC
// workloads (dedup, ferret) whose blocking behaviour §3.2 analyzes.
type Cond struct {
	//snap:skip back-pointer wiring, bound when the kernel registers the cond
	kernel *Kernel
	//snap:skip identity is implicit in the registry's save order
	id int // creation-order registry ordinal (checkpoint identity)
	//snap:skip immutable diagnostic label from deterministic construction
	name string
	//snap:skip cache: precomputed from name at construction
	blockReason string
	lock        *Lock
	waiters     []*Task

	waits   uint64
	signals uint64
}

// NewCond creates a condition variable bound to l.
func (k *Kernel) NewCond(name string, l *Lock) *Cond {
	if l == nil {
		panic("guest: NewCond with nil lock")
	}
	id := len(k.conds)
	if id < len(k.condPool) && k.condPool[id] != nil && k.condPool[id].name == name {
		c := k.condPool[id]
		k.condPool[id] = nil
		c.reset(l)
		k.conds = append(k.conds, c)
		return c
	}
	c := &Cond{kernel: k, id: id, name: name, blockReason: "cond:" + name, lock: l}
	k.conds = append(k.conds, c)
	return c
}

// reset returns a pooled condvar to its just-constructed state bound to l.
//
//paratick:noalloc
func (c *Cond) reset(l *Lock) {
	c.lock = l
	for i := range c.waiters {
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
	c.waits = 0
	c.signals = 0
}

// Name returns the condvar's diagnostic name.
func (c *Cond) Name() string { return c.name }

// Lock returns the paired mutex.
func (c *Cond) Lock() *Lock { return c.lock }

// Waiters returns the number of blocked waiters.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Waits returns the total number of Wait calls.
func (c *Cond) Waits() uint64 { return c.waits }

// Signals returns the total number of Signal/Broadcast wakes delivered.
func (c *Cond) Signals() uint64 { return c.signals }

// wait enqueues t (which must hold the lock); the caller releases the lock
// and blocks the task.
func (c *Cond) wait(t *Task) {
	if c.lock.holder != t {
		panic("guest: cond wait without holding the paired lock")
	}
	c.waits++
	c.waiters = append(c.waiters, t)
}

// signal dequeues up to n waiters (n < 0 = all) and returns them; the
// caller wakes them, and each woken task re-acquires the lock before its
// Wait step completes.
func (c *Cond) signal(n int) []*Task {
	if n < 0 || n > len(c.waiters) {
		n = len(c.waiters)
	}
	out := c.waiters[:n]
	c.waiters = c.waiters[n:]
	c.signals += uint64(n)
	return out
}
