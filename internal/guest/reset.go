package guest

// Pooled-reuse reset paths. A kernel owned by a recycled VM (kvm.VMArena)
// is not rebuilt between runs: Reset returns it — vCPUs, tasks, sync
// objects, timer wheels, and queued segments included — to the exact state
// NewKernel would construct, so a recycled VM is byte-identical to a fresh
// one under the snapshot digest audit. The rules that make that identity
// hold:
//
//   - RNG lockstep: NewKernel forks the engine stream with tag 0x6e57 and
//     Spawn forks the kernel stream once per task. Reset and the recycled
//     Spawn path reproduce those forks via ForkInto at the identical draw
//     points, so derived streams match a fresh build bit for bit.
//   - Construction identity survives, per-run state does not: registry ids,
//     names, precomputed blockReason strings, and pre-bound closures
//     (task callbacks, barrier buffers) are reused; everything a
//     fresh constructor would zero is zeroed.
//   - The vCPU count is construction identity: the VM arena only recycles a
//     kernel onto a world with the same number of vCPUs.

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// Reset returns a pooled kernel to the state NewKernel(engine, cost, cfg,
// counters) would construct. OnAllDone is deliberately left in place: the
// owning VM binds it once, and the closure reads only per-run VM fields.
func (k *Kernel) Reset(engine *sim.Engine, cost hw.CostModel, cfg Config, counters *metrics.Counters) error {
	if engine == nil || counters == nil {
		return fmt.Errorf("guest: Reset requires an engine and counters")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := cost.Validate(); err != nil {
		return err
	}
	k.engine = engine
	k.cost = cost
	k.cfg = cfg
	k.counters = counters
	// Re-fork the kernel RNG at NewKernel's tag and draw point.
	engine.Rand().ForkInto(k.rng, 0x6e57)

	// The new cfg must be installed before the vCPUs reset: they read it
	// for the policy mode/options and the wheel jiffy.
	for _, v := range k.vcpus {
		v.reset()
	}
	k.retireTasks()
	k.recycleSyncObjects()
	for i := range k.devices {
		k.devices[i] = nil
	}
	k.devices = k.devices[:0]
	k.liveTasks = 0
	k.started = false
	if cfg.TaskHint > cap(k.tasks) {
		k.tasks = make([]*Task, 0, cfg.TaskHint)
	}
	return nil
}

// retireTasks moves every task of the finished run into the free pool for
// Spawn to recycle. The program reference is dropped (it belongs to the
// workload, not the task); the Rand object and pre-bound callbacks stay.
//
//paratick:noalloc
func (k *Kernel) retireTasks() {
	for i, t := range k.tasks {
		t.prog = nil
		k.taskFree = append(k.taskFree, t)
		k.tasks[i] = nil
	}
	k.tasks = k.tasks[:0]
}

// recycleSyncObjects swaps each non-empty sync registry into its pool, so
// the next run's New{Lock,Barrier,Cond} calls — which deterministic scenario
// construction replays in the same order with the same names — become pool
// hits. Stale pool leftovers (objects the previous build never re-claimed)
// are dropped first. A registry the finished run never touched leaves its
// pool alone: an idle run between two workload runs must not discard the
// pooled objects the next workload run would have re-claimed.
//
//paratick:noalloc
func (k *Kernel) recycleSyncObjects() {
	if len(k.locks) > 0 {
		for i := range k.lockPool {
			k.lockPool[i] = nil
		}
		k.locks, k.lockPool = k.lockPool[:0], k.locks
	}
	if len(k.barriers) > 0 {
		for i := range k.barrierPool {
			k.barrierPool[i] = nil
		}
		k.barriers, k.barrierPool = k.barrierPool[:0], k.barriers
	}
	if len(k.conds) > 0 {
		for i := range k.condPool {
			k.condPool[i] = nil
		}
		k.conds, k.condPool = k.condPool[:0], k.conds
	}
}

// reset returns the vCPU to its just-constructed state under the kernel's
// (re-assigned) config: segments still queued or issued from the previous
// run are recycled into the kernel pool, the policy is swapped to the
// cached instance for the new mode, and the timer wheel is reset in place
// to the new jiffy.
func (v *VCPU) reset() {
	k := v.kernel
	v.clearRunState()
	mode := k.cfg.Mode
	p := v.policyCache[mode]
	if p == nil || !core.ResetPolicy(p, k.cfg.PolicyOpts) {
		p = core.NewPolicy(mode, k.cfg.PolicyOpts)
		v.policyCache[mode] = p
	}
	v.policy = p
	if v.wheel != nil {
		v.wheel.Reset(k.cfg.TickPeriod())
	} else {
		v.wheel = k.cfg.Wheels.acquire(k.cfg.TickPeriod())
	}
}

// clearRunState recycles leftover segments and zeroes every per-run field,
// exactly the set AddVCPU initializes and Save serializes.
//
//paratick:noalloc
func (v *VCPU) clearRunState() {
	k := v.kernel
	if v.issued != nil {
		k.releaseSeg(v.issued)
		v.issued = nil
	}
	for i, s := range v.queue {
		k.releaseSeg(s)
		v.queue[i] = nil
	}
	v.queue = v.queue[:0]
	for i := range v.irqScratch {
		v.irqScratch[i] = nil
	}
	v.irqScratch = v.irqScratch[:0]
	for i := range v.runq {
		v.runq[i] = nil
	}
	v.runq = v.runq[:0]
	v.current = nil
	v.idle = false
	v.needResched = false
	v.booted = false
	v.timerArmed = false
	v.timerDeadline = sim.Forever
	v.rcuPending = false
	v.rcuDeadline = sim.Forever
	v.switchCount = 0
	v.lastTickAt = -1
	v.emit = nil
	v.stepCtx = StepCtx{}
}
