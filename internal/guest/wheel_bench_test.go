package guest

import (
	"testing"

	"paratick/internal/sim"
)

// BenchmarkWheelAddCancel measures the hot add/cancel path (every guest
// sleep and wake touches it).
func BenchmarkWheelAddCancel(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	tm := &SoftTimer{Deadline: 100 * sim.Millisecond, Fire: func(sim.Time) {}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Deadline = sim.Time(i%1000+1) * sim.Millisecond
		w.Add(tm)
		w.Cancel(tm)
	}
}

// BenchmarkWheelAdvance measures jiffy processing with a populated wheel.
func BenchmarkWheelAdvance(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	// Keep ~64 timers alive: each firing re-queues itself further out.
	var requeue func(t *SoftTimer) func(sim.Time)
	requeue = func(t *SoftTimer) func(sim.Time) {
		return func(now sim.Time) {
			t.Deadline = now + rng.Between(sim.Millisecond, 200*sim.Millisecond)
			t.Fire = requeue(t)
			w.Add(t)
		}
	}
	for i := 0; i < 64; i++ {
		t := &SoftTimer{Deadline: rng.Between(sim.Millisecond, 200*sim.Millisecond)}
		t.Fire = requeue(t)
		w.Add(t)
	}
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		w.AdvanceTo(now)
	}
}

// BenchmarkWheelNextExpiry measures the idle-entry lookup.
func BenchmarkWheelNextExpiry(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	for i := 0; i < 32; i++ {
		w.Add(&SoftTimer{
			Deadline: rng.Between(sim.Millisecond, sim.Second),
			Fire:     func(sim.Time) {},
		})
	}
	b.ResetTimer()
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		sink = w.NextExpiry()
	}
	_ = sink
}
