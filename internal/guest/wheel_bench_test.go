package guest

import (
	"testing"

	"paratick/internal/sim"
)

// BenchmarkWheelAddCancel measures the hot add/cancel path (every guest
// sleep and wake touches it).
func BenchmarkWheelAddCancel(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	tm := &SoftTimer{Deadline: 100 * sim.Millisecond, Fire: func(sim.Time) {}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Deadline = sim.Time(i%1000+1) * sim.Millisecond
		w.Add(tm)
		w.Cancel(tm)
	}
}

// BenchmarkWheelAdvance measures jiffy processing with a populated wheel.
func BenchmarkWheelAdvance(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	// Keep ~64 timers alive: each firing re-queues itself further out. The
	// requeue closure is bound once per timer — rebuilding it per fire
	// allocates.
	for i := 0; i < 64; i++ {
		t := &SoftTimer{Deadline: rng.Between(sim.Millisecond, 200*sim.Millisecond)}
		t.Fire = func(now sim.Time) {
			t.Deadline = now + rng.Between(sim.Millisecond, 200*sim.Millisecond)
			w.Add(t)
		}
		w.Add(t)
	}
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		w.AdvanceTo(now)
	}
}

// BenchmarkWheelAdvanceSparseIdle measures the idle fast-forward: one
// pending timer, and each operation advances the wheel across a million
// empty jiffies to fire it. This is the dynticks/paratick long-idle case —
// with occupancy bitmaps the advance jumps straight to the occupied
// boundary instead of walking every jiffy.
func BenchmarkWheelAdvanceSparseIdle(b *testing.B) {
	const gap = 1_000_000 // jiffies per advance
	w := NewTimerWheel(sim.Millisecond)
	tm := &SoftTimer{Fire: func(sim.Time) {}}
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if now > sim.Forever-2*gap*sim.Millisecond {
			// Rewind before simulated time would saturate at sim.Forever
			// (~9.2M iterations at 10¹² ns per advance).
			w = NewTimerWheel(sim.Millisecond)
			now = 0
		}
		now += gap * sim.Millisecond
		tm.Deadline = now
		w.Add(tm)
		if w.AdvanceTo(now) != 1 {
			b.Fatal("sparse advance did not fire the timer")
		}
	}
}

// BenchmarkWheelAdvanceDense measures jiffy processing with 10⁴ timers
// spread across mixed levels, each re-queueing on fire so occupancy stays
// constant. Most single-jiffy advances fire something, which is the case
// that used to trigger a full recomputeNext scan of every bucket.
func BenchmarkWheelAdvanceDense(b *testing.B) {
	const n = 10_000
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	// Deadlines up to 20s → levels 0 through 3 at a 1ms jiffy, ~0.5
	// expirations per jiffy.
	span := func() sim.Time { return rng.Between(sim.Millisecond, 20*sim.Second) }
	for i := 0; i < n; i++ {
		t := &SoftTimer{Deadline: span()}
		// Bind the requeue closure once per timer: rebuilding it per fire
		// was the benchmark's only steady-state allocation (48 B/op).
		t.Fire = func(now sim.Time) {
			t.Deadline = now + span()
			w.Add(t)
		}
		w.Add(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		w.AdvanceTo(now)
	}
}

// BenchmarkWheelNextExpiry measures the idle-entry lookup.
func BenchmarkWheelNextExpiry(b *testing.B) {
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	for i := 0; i < 32; i++ {
		w.Add(&SoftTimer{
			Deadline: rng.Between(sim.Millisecond, sim.Second),
			Fire:     func(sim.Time) {},
		})
	}
	b.ResetTimer()
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		sink = w.NextExpiry()
	}
	_ = sink
}

// BenchmarkWheelNextExpiryDense measures the idle-entry evaluation against
// a dense wheel (10⁴ timers, mixed levels) with the realistic churn around
// it: every idle entry arms a short wakeup timer that the subsequent idle
// exit cancels, so each NextExpiry follows a mutation that invalidated the
// cached minimum. The old wheel re-validated its cache by scanning all
// 6×64 buckets and every queued timer; the bitmaps answer from the
// earliest occupied bucket per level.
func BenchmarkWheelNextExpiryDense(b *testing.B) {
	const n = 10_000
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	for i := 0; i < n; i++ {
		w.Add(&SoftTimer{
			// 1s..2000s: occupancy across levels 1 through 5.
			Deadline: rng.Between(sim.Second, 2000*sim.Second),
			Fire:     func(sim.Time) {},
		})
	}
	wakeup := &SoftTimer{Fire: func(sim.Time) {}}
	b.ReportAllocs()
	b.ResetTimer()
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		// The wakeup is the earliest pending timer, so canceling it always
		// invalidates the cached minimum.
		wakeup.Deadline = sim.Time(i%1000+1) * sim.Millisecond
		w.Add(wakeup)
		sink = w.NextExpiry()
		w.Cancel(wakeup)
		sink = w.NextExpiry()
	}
	_ = sink
}

// TestWheelSteadyStateAllocs asserts the hot wheel operations — Add,
// Cancel, and NextExpiry, including the recompute after a cache-
// invalidating cancel — allocate nothing once bucket capacity exists.
func TestWheelSteadyStateAllocs(t *testing.T) {
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(7)
	for i := 0; i < 256; i++ {
		w.Add(&SoftTimer{
			Deadline: rng.Between(sim.Millisecond, 100*sim.Second),
			Fire:     func(sim.Time) {},
		})
	}
	tm := &SoftTimer{Fire: func(sim.Time) {}}
	// Warm every slot the loop will touch so append never grows a bucket.
	for i := 0; i < 2000; i++ {
		tm.Deadline = sim.Time(i%1999+1) * sim.Millisecond
		w.Add(tm)
		w.Cancel(tm)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Deadline = sim.Time(i%1999+1) * sim.Millisecond
		w.Add(tm)
		_ = w.NextExpiry()
		w.Cancel(tm)
		_ = w.NextExpiry() // recompute path: the canceled timer was the minimum
		i++
	})
	if allocs != 0 {
		t.Fatalf("Add/NextExpiry/Cancel steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestWheelAdvanceDenseZeroBytes locks in the advance-dense allocation fix:
// a populated wheel advancing jiffy by jiffy, with every fired timer
// re-queueing itself, must not allocate in steady state. The requeue
// closure is bound once per timer; a regression that rebuilds it per fire
// (the old 48 B/op) trips this immediately.
func TestWheelAdvanceDenseZeroBytes(t *testing.T) {
	const n = 1000
	w := NewTimerWheel(sim.Millisecond)
	rng := sim.NewRand(1)
	span := func() sim.Time { return rng.Between(sim.Millisecond, 20*sim.Second) }
	for i := 0; i < n; i++ {
		tm := &SoftTimer{Deadline: span()}
		tm.Fire = func(now sim.Time) {
			tm.Deadline = now + span()
			w.Add(tm)
		}
		w.Add(tm)
	}
	// Warm the wheel: the first pass through each level grows bucket slices;
	// afterwards re-queues land in capacity the wheel already owns.
	now := sim.Time(0)
	for i := 0; i < 40_000; i++ {
		now += sim.Millisecond
		w.AdvanceTo(now)
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		now += sim.Millisecond
		w.AdvanceTo(now)
	})
	if allocs != 0 {
		t.Fatalf("dense advance steady state allocates %.1f allocs/op, want 0", allocs)
	}
}
