package guest

import (
	"testing"

	"paratick/internal/sim"
)

// FuzzTimerWheel drives the wheel with a byte-coded operation script —
// adds, cancels, and advances — and checks the structural invariants after
// every operation: the count matches live timers, no timer fires before its
// deadline, and every surviving timer fires exactly once by the horizon.
func FuzzTimerWheel(f *testing.F) {
	f.Add([]byte{0x10, 0x80, 0x20, 0xFF, 0x01})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0xA0, 0x33, 0x11, 0x55, 0x90, 0x04})
	f.Fuzz(func(t *testing.T, script []byte) {
		w := NewTimerWheel(sim.Millisecond)
		type rec struct {
			tm       *SoftTimer
			deadline sim.Time
			fired    int
			canceled bool
		}
		var recs []*rec
		now := sim.Time(0)
		live := 0
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%3, sim.Time(script[i+1])
			switch op {
			case 0: // add a timer up to 255ms out
				r := &rec{deadline: now + (arg+1)*sim.Millisecond}
				r.tm = &SoftTimer{Deadline: r.deadline, Fire: func(at sim.Time) {
					r.fired++
					if at < r.deadline {
						t.Fatalf("timer fired at %v before deadline %v", at, r.deadline)
					}
				}}
				w.Add(r.tm)
				recs = append(recs, r)
				live++
			case 1: // cancel a random live timer
				if len(recs) == 0 {
					continue
				}
				r := recs[int(arg)%len(recs)]
				if w.Cancel(r.tm) {
					r.canceled = true
					live--
				}
			case 2: // advance up to 255ms
				now += arg * sim.Millisecond
				fired := w.AdvanceTo(now)
				live -= fired
			}
			if w.Len() != live {
				t.Fatalf("wheel count %d, expected %d live", w.Len(), live)
			}
		}
		// Drain everything and verify exactly-once semantics.
		w.AdvanceTo(now + 600*sim.Millisecond)
		for i, r := range recs {
			want := 1
			if r.canceled {
				want = 0
			}
			if r.fired != want {
				t.Fatalf("timer %d fired %d times, want %d (canceled=%v)",
					i, r.fired, want, r.canceled)
			}
		}
		if w.Len() != 0 {
			t.Fatalf("wheel retains %d timers past the horizon", w.Len())
		}
	})
}

// FuzzTimerWheelDifferential drives the bitmap wheel and the naive
// sorted-list reference model (wheel_ref_test.go) from the same fuzzed op
// script — adds at every deadline scale including beyond the top-level
// horizon and at/near sim.Forever, cancels, and advances from sub-jiffy
// steps to sparse-idle fast-forwards — and fails on any divergence in fire
// times, fire order, pending counts, or NextExpiry.
func FuzzTimerWheelDifferential(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x05, 0x20})
	f.Add([]byte{2, 255, 2, 128, 7, 255, 7, 255})                   // beyond-horizon + huge advances
	f.Add([]byte{3, 2, 3, 3, 3, 0, 6, 50})                          // Forever / near-Forever / past deadlines
	f.Add([]byte{1, 9, 1, 9, 0, 3, 0, 3, 6, 40})                    // same-jiffy deadline ordering
	f.Add([]byte{0, 10, 4, 0, 0, 20, 4, 1, 5, 90, 6, 10})           // cancel churn
	f.Add([]byte{1, 64, 1, 65, 1, 127, 6, 31, 6, 31, 6, 31, 6, 31}) // cascade boundaries
	f.Fuzz(runDifferentialScript)
}
