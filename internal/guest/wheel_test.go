package guest

import (
	"sort"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

const testJiffy = 4 * sim.Millisecond

func TestWheelBasicsEmpty(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	if w.Len() != 0 {
		t.Fatal("new wheel not empty")
	}
	if w.NextExpiry() != sim.Forever {
		t.Fatal("empty wheel NextExpiry != Forever")
	}
	if w.AdvanceTo(sim.Second) != 0 {
		t.Fatal("empty wheel fired timers")
	}
	if w.Jiffy() != testJiffy {
		t.Fatal("Jiffy accessor")
	}
}

func TestWheelBadJiffyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero jiffy did not panic")
		}
	}()
	NewTimerWheel(0)
}

func TestWheelFiresAtOrAfterDeadline(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	var firedAt sim.Time
	tm := &SoftTimer{Deadline: 10 * sim.Millisecond, Fire: func(now sim.Time) { firedAt = now }}
	w.Add(tm)
	if !tm.Pending() {
		t.Fatal("added timer not pending")
	}
	// Advance to just before: must not fire (10ms rounds up to jiffy 3 = 12ms).
	w.AdvanceTo(11 * sim.Millisecond)
	if firedAt != 0 {
		t.Fatalf("fired early at %v", firedAt)
	}
	w.AdvanceTo(12 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("did not fire by 12ms")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if w.Len() != 0 {
		t.Fatal("wheel not empty after firing")
	}
}

func TestWheelNeverFiresEarlyJiffyGranularity(t *testing.T) {
	// A deadline exactly on a jiffy boundary fires at that boundary.
	w := NewTimerWheel(testJiffy)
	fired := false
	w.Add(&SoftTimer{Deadline: 2 * testJiffy, Fire: func(sim.Time) { fired = true }})
	w.AdvanceTo(2*testJiffy - 1)
	if fired {
		t.Fatal("fired before boundary")
	}
	w.AdvanceTo(2 * testJiffy)
	if !fired {
		t.Fatal("did not fire at boundary")
	}
}

func TestWheelNextExpiry(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	w.Add(&SoftTimer{Deadline: 100 * sim.Millisecond, Fire: func(sim.Time) {}})
	w.Add(&SoftTimer{Deadline: 20 * sim.Millisecond, Fire: func(sim.Time) {}})
	w.Add(&SoftTimer{Deadline: 300 * sim.Millisecond, Fire: func(sim.Time) {}})
	if got := w.NextExpiry(); got != 20*sim.Millisecond {
		t.Fatalf("NextExpiry = %v, want 20ms", got)
	}
	w.AdvanceTo(25 * sim.Millisecond)
	if got := w.NextExpiry(); got != 100*sim.Millisecond {
		t.Fatalf("after advance NextExpiry = %v, want 100ms", got)
	}
}

func TestWheelCancel(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	fired := false
	tm := &SoftTimer{Deadline: 20 * sim.Millisecond, Fire: func(sim.Time) { fired = true }}
	w.Add(tm)
	if !w.Cancel(tm) {
		t.Fatal("Cancel returned false")
	}
	if w.Cancel(tm) {
		t.Fatal("double Cancel returned true")
	}
	w.AdvanceTo(sim.Second)
	if fired {
		t.Fatal("canceled timer fired")
	}
	if w.Len() != 0 {
		t.Fatal("count wrong after cancel")
	}
	// NextExpiry after canceling the cached minimum must not return the
	// stale deadline.
	w2 := NewTimerWheel(testJiffy)
	a := &SoftTimer{Deadline: 8 * sim.Millisecond, Fire: func(sim.Time) {}}
	b := &SoftTimer{Deadline: 80 * sim.Millisecond, Fire: func(sim.Time) {}}
	w2.Add(a)
	w2.Add(b)
	w2.Cancel(a)
	if got := w2.NextExpiry(); got != 80*sim.Millisecond {
		t.Fatalf("stale cache: NextExpiry = %v, want 80ms", got)
	}
}

func TestWheelCancelMiddleBucket(t *testing.T) {
	// Swap-removal inside one bucket keeps the other timers intact.
	w := NewTimerWheel(testJiffy)
	count := 0
	var timers []*SoftTimer
	for i := 0; i < 5; i++ {
		tm := &SoftTimer{Deadline: testJiffy, Fire: func(sim.Time) { count++ }}
		w.Add(tm)
		timers = append(timers, tm)
	}
	w.Cancel(timers[1])
	w.Cancel(timers[3])
	w.AdvanceTo(2 * testJiffy)
	if count != 3 {
		t.Fatalf("fired %d, want 3", count)
	}
}

func TestWheelAddPanics(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add(nil) did not panic")
			}
		}()
		w.Add(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add without Fire did not panic")
			}
		}()
		w.Add(&SoftTimer{Deadline: 1})
	}()
	tm := &SoftTimer{Deadline: testJiffy, Fire: func(sim.Time) {}}
	w.Add(tm)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Add did not panic")
			}
		}()
		w.Add(tm)
	}()
}

func TestWheelLongDeadlineCascades(t *testing.T) {
	// A timer several levels up must cascade down and fire on time.
	w := NewTimerWheel(sim.Millisecond)
	deadline := 700 * sim.Millisecond // level ≥ 1 territory (64 jiffies per level-0 lap)
	var firedAt sim.Time
	w.Add(&SoftTimer{Deadline: deadline, Fire: func(now sim.Time) { firedAt = now }})
	for now := sim.Time(0); now <= sim.Second; now += sim.Millisecond {
		w.AdvanceTo(now)
		if firedAt != 0 {
			break
		}
	}
	if firedAt == 0 {
		t.Fatal("long timer never fired")
	}
	if firedAt < deadline {
		t.Fatalf("fired at %v before deadline %v", firedAt, deadline)
	}
	if firedAt > deadline+2*sim.Millisecond {
		t.Fatalf("fired at %v, too long after deadline %v", firedAt, deadline)
	}
}

func TestWheelVeryLongDeadlineBeyondHorizon(t *testing.T) {
	// Deadlines beyond the top level's reach are clamped and still fire
	// (eventually, never early).
	w := NewTimerWheel(sim.Millisecond)
	deadline := sim.Time(levelReach(wheelLevels-1)+1000) * sim.Millisecond
	fired := false
	w.Add(&SoftTimer{Deadline: deadline, Fire: func(sim.Time) { fired = true }})
	// Advance in coarse steps to keep the test fast.
	step := 50 * sim.Millisecond
	for now := sim.Time(0); now < deadline; now += step {
		w.AdvanceTo(now)
		if fired {
			t.Fatalf("fired before deadline (at ≤ %v < %v)", now, deadline)
		}
	}
	w.AdvanceTo(deadline + step)
	if !fired {
		t.Fatal("beyond-horizon timer never fired")
	}
}

func TestWheelManyTimersAllFireOnce(t *testing.T) {
	w := NewTimerWheel(sim.Millisecond)
	const n = 500
	counts := make([]int, n)
	rng := sim.NewRand(42)
	maxDeadline := sim.Time(0)
	for i := 0; i < n; i++ {
		i := i
		d := rng.Between(sim.Millisecond, 2*sim.Second)
		if d > maxDeadline {
			maxDeadline = d
		}
		w.Add(&SoftTimer{Deadline: d, Fire: func(sim.Time) { counts[i]++ }})
	}
	for now := sim.Time(0); now <= maxDeadline+10*sim.Millisecond; now += sim.Millisecond {
		w.AdvanceTo(now)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("timer %d fired %d times", i, c)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("wheel left %d timers", w.Len())
	}
}

// Property: for random deadlines and a random advance schedule, every timer
// fires exactly once, never before its deadline, and never more than one
// jiffy after the advance that covered it.
func TestWheelCorrectnessProperty(t *testing.T) {
	f := func(raw []uint16, stepsRaw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := NewTimerWheel(sim.Millisecond)
		type rec struct {
			deadline sim.Time
			firedAt  sim.Time
			fires    int
		}
		recs := make([]*rec, len(raw))
		for i, r := range raw {
			d := sim.Time(r%2000+1) * sim.Millisecond / 2 // up to 1s, off-boundary
			recs[i] = &rec{deadline: d}
			rc := recs[i]
			w.Add(&SoftTimer{Deadline: d, Fire: func(now sim.Time) {
				rc.fires++
				rc.firedAt = now
			}})
		}
		now := sim.Time(0)
		for _, s := range stepsRaw {
			now += sim.Time(s%50+1) * sim.Millisecond
			w.AdvanceTo(now)
		}
		w.AdvanceTo(2 * sim.Second)
		for _, rc := range recs {
			if rc.fires != 1 {
				return false
			}
			if rc.firedAt < rc.deadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextExpiry is always ≤ the true minimum pending deadline's
// jiffy-rounded value and equals Forever iff empty.
func TestWheelNextExpiryProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		w := NewTimerWheel(sim.Millisecond)
		var deadlines []sim.Time
		for _, r := range raw {
			d := sim.Time(r%5000+1) * sim.Millisecond
			deadlines = append(deadlines, d)
			w.Add(&SoftTimer{Deadline: d, Fire: func(sim.Time) {}})
		}
		if len(deadlines) == 0 {
			return w.NextExpiry() == sim.Forever
		}
		sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
		return w.NextExpiry() == deadlines[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftTimerPendingNil(t *testing.T) {
	var tm *SoftTimer
	if tm.Pending() {
		t.Fatal("nil timer pending")
	}
}

func TestWheelCancelThenReAdd(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	fired := 0
	tm := &SoftTimer{Deadline: 2 * testJiffy, Fire: func(sim.Time) { fired++ }}
	w.Add(tm)
	w.Cancel(tm)
	tm.Deadline = 3 * testJiffy
	w.Add(tm) // re-add after cancel is legal
	w.AdvanceTo(4 * testJiffy)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestWheelFireCanAddTimers(t *testing.T) {
	// A firing timer that re-queues itself (periodic soft timer pattern).
	w := NewTimerWheel(testJiffy)
	count := 0
	var tm *SoftTimer
	tm = &SoftTimer{Deadline: testJiffy, Fire: func(now sim.Time) {
		count++
		if count < 3 {
			tm.Deadline = now + testJiffy
			w.Add(tm)
		}
	}}
	w.Add(tm)
	for now := sim.Time(0); now <= 20*testJiffy; now += testJiffy {
		w.AdvanceTo(now)
	}
	if count != 3 {
		t.Fatalf("periodic re-add fired %d times, want 3", count)
	}
}
