package guest

import (
	"sort"
	"testing"
	"testing/quick"

	"paratick/internal/sim"
)

const testJiffy = 4 * sim.Millisecond

func TestWheelBasicsEmpty(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	if w.Len() != 0 {
		t.Fatal("new wheel not empty")
	}
	if w.NextExpiry() != sim.Forever {
		t.Fatal("empty wheel NextExpiry != Forever")
	}
	if w.AdvanceTo(sim.Second) != 0 {
		t.Fatal("empty wheel fired timers")
	}
	if w.Jiffy() != testJiffy {
		t.Fatal("Jiffy accessor")
	}
}

func TestWheelBadJiffyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero jiffy did not panic")
		}
	}()
	NewTimerWheel(0)
}

func TestWheelFiresAtOrAfterDeadline(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	var firedAt sim.Time
	tm := &SoftTimer{Deadline: 10 * sim.Millisecond, Fire: func(now sim.Time) { firedAt = now }}
	w.Add(tm)
	if !tm.Pending() {
		t.Fatal("added timer not pending")
	}
	// Advance to just before: must not fire (10ms rounds up to jiffy 3 = 12ms).
	w.AdvanceTo(11 * sim.Millisecond)
	if firedAt != 0 {
		t.Fatalf("fired early at %v", firedAt)
	}
	w.AdvanceTo(12 * sim.Millisecond)
	if firedAt == 0 {
		t.Fatal("did not fire by 12ms")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if w.Len() != 0 {
		t.Fatal("wheel not empty after firing")
	}
}

func TestWheelNeverFiresEarlyJiffyGranularity(t *testing.T) {
	// A deadline exactly on a jiffy boundary fires at that boundary.
	w := NewTimerWheel(testJiffy)
	fired := false
	w.Add(&SoftTimer{Deadline: 2 * testJiffy, Fire: func(sim.Time) { fired = true }})
	w.AdvanceTo(2*testJiffy - 1)
	if fired {
		t.Fatal("fired before boundary")
	}
	w.AdvanceTo(2 * testJiffy)
	if !fired {
		t.Fatal("did not fire at boundary")
	}
}

func TestWheelNextExpiry(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	w.Add(&SoftTimer{Deadline: 100 * sim.Millisecond, Fire: func(sim.Time) {}})
	w.Add(&SoftTimer{Deadline: 20 * sim.Millisecond, Fire: func(sim.Time) {}})
	w.Add(&SoftTimer{Deadline: 300 * sim.Millisecond, Fire: func(sim.Time) {}})
	if got := w.NextExpiry(); got != 20*sim.Millisecond {
		t.Fatalf("NextExpiry = %v, want 20ms", got)
	}
	w.AdvanceTo(25 * sim.Millisecond)
	if got := w.NextExpiry(); got != 100*sim.Millisecond {
		t.Fatalf("after advance NextExpiry = %v, want 100ms", got)
	}
}

func TestWheelCancel(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	fired := false
	tm := &SoftTimer{Deadline: 20 * sim.Millisecond, Fire: func(sim.Time) { fired = true }}
	w.Add(tm)
	if !w.Cancel(tm) {
		t.Fatal("Cancel returned false")
	}
	if w.Cancel(tm) {
		t.Fatal("double Cancel returned true")
	}
	w.AdvanceTo(sim.Second)
	if fired {
		t.Fatal("canceled timer fired")
	}
	if w.Len() != 0 {
		t.Fatal("count wrong after cancel")
	}
	// NextExpiry after canceling the cached minimum must not return the
	// stale deadline.
	w2 := NewTimerWheel(testJiffy)
	a := &SoftTimer{Deadline: 8 * sim.Millisecond, Fire: func(sim.Time) {}}
	b := &SoftTimer{Deadline: 80 * sim.Millisecond, Fire: func(sim.Time) {}}
	w2.Add(a)
	w2.Add(b)
	w2.Cancel(a)
	if got := w2.NextExpiry(); got != 80*sim.Millisecond {
		t.Fatalf("stale cache: NextExpiry = %v, want 80ms", got)
	}
}

func TestWheelCancelMiddleBucket(t *testing.T) {
	// Swap-removal inside one bucket keeps the other timers intact.
	w := NewTimerWheel(testJiffy)
	count := 0
	var timers []*SoftTimer
	for i := 0; i < 5; i++ {
		tm := &SoftTimer{Deadline: testJiffy, Fire: func(sim.Time) { count++ }}
		w.Add(tm)
		timers = append(timers, tm)
	}
	w.Cancel(timers[1])
	w.Cancel(timers[3])
	w.AdvanceTo(2 * testJiffy)
	if count != 3 {
		t.Fatalf("fired %d, want 3", count)
	}
}

func TestWheelAddPanics(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add(nil) did not panic")
			}
		}()
		w.Add(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add without Fire did not panic")
			}
		}()
		w.Add(&SoftTimer{Deadline: 1})
	}()
	tm := &SoftTimer{Deadline: testJiffy, Fire: func(sim.Time) {}}
	w.Add(tm)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Add did not panic")
			}
		}()
		w.Add(tm)
	}()
}

func TestWheelLongDeadlineCascades(t *testing.T) {
	// A timer several levels up must cascade down and fire on time.
	w := NewTimerWheel(sim.Millisecond)
	deadline := 700 * sim.Millisecond // level ≥ 1 territory (64 jiffies per level-0 lap)
	var firedAt sim.Time
	w.Add(&SoftTimer{Deadline: deadline, Fire: func(now sim.Time) { firedAt = now }})
	for now := sim.Time(0); now <= sim.Second; now += sim.Millisecond {
		w.AdvanceTo(now)
		if firedAt != 0 {
			break
		}
	}
	if firedAt == 0 {
		t.Fatal("long timer never fired")
	}
	if firedAt < deadline {
		t.Fatalf("fired at %v before deadline %v", firedAt, deadline)
	}
	if firedAt > deadline+2*sim.Millisecond {
		t.Fatalf("fired at %v, too long after deadline %v", firedAt, deadline)
	}
}

func TestWheelVeryLongDeadlineBeyondHorizon(t *testing.T) {
	// Deadlines beyond the top level's reach are clamped and still fire
	// (eventually, never early).
	w := NewTimerWheel(sim.Millisecond)
	deadline := sim.Time(levelReach(wheelLevels-1)+1000) * sim.Millisecond
	fired := false
	w.Add(&SoftTimer{Deadline: deadline, Fire: func(sim.Time) { fired = true }})
	// Advance in coarse steps to keep the test fast.
	step := 50 * sim.Millisecond
	for now := sim.Time(0); now < deadline; now += step {
		w.AdvanceTo(now)
		if fired {
			t.Fatalf("fired before deadline (at ≤ %v < %v)", now, deadline)
		}
	}
	w.AdvanceTo(deadline + step)
	if !fired {
		t.Fatal("beyond-horizon timer never fired")
	}
}

func TestWheelManyTimersAllFireOnce(t *testing.T) {
	w := NewTimerWheel(sim.Millisecond)
	const n = 500
	counts := make([]int, n)
	rng := sim.NewRand(42)
	maxDeadline := sim.Time(0)
	for i := 0; i < n; i++ {
		i := i
		d := rng.Between(sim.Millisecond, 2*sim.Second)
		if d > maxDeadline {
			maxDeadline = d
		}
		w.Add(&SoftTimer{Deadline: d, Fire: func(sim.Time) { counts[i]++ }})
	}
	for now := sim.Time(0); now <= maxDeadline+10*sim.Millisecond; now += sim.Millisecond {
		w.AdvanceTo(now)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("timer %d fired %d times", i, c)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("wheel left %d timers", w.Len())
	}
}

// Property: for random deadlines and a random advance schedule, every timer
// fires exactly once, never before its deadline, and never more than one
// jiffy after the advance that covered it.
func TestWheelCorrectnessProperty(t *testing.T) {
	f := func(raw []uint16, stepsRaw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := NewTimerWheel(sim.Millisecond)
		type rec struct {
			deadline sim.Time
			firedAt  sim.Time
			fires    int
		}
		recs := make([]*rec, len(raw))
		for i, r := range raw {
			d := sim.Time(r%2000+1) * sim.Millisecond / 2 // up to 1s, off-boundary
			recs[i] = &rec{deadline: d}
			rc := recs[i]
			w.Add(&SoftTimer{Deadline: d, Fire: func(now sim.Time) {
				rc.fires++
				rc.firedAt = now
			}})
		}
		now := sim.Time(0)
		for _, s := range stepsRaw {
			now += sim.Time(s%50+1) * sim.Millisecond
			w.AdvanceTo(now)
		}
		w.AdvanceTo(2 * sim.Second)
		for _, rc := range recs {
			if rc.fires != 1 {
				return false
			}
			if rc.firedAt < rc.deadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextExpiry is always ≤ the true minimum pending deadline's
// jiffy-rounded value and equals Forever iff empty.
func TestWheelNextExpiryProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		w := NewTimerWheel(sim.Millisecond)
		var deadlines []sim.Time
		for _, r := range raw {
			d := sim.Time(r%5000+1) * sim.Millisecond
			deadlines = append(deadlines, d)
			w.Add(&SoftTimer{Deadline: d, Fire: func(sim.Time) {}})
		}
		if len(deadlines) == 0 {
			return w.NextExpiry() == sim.Forever
		}
		sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })
		return w.NextExpiry() == deadlines[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftTimerPendingNil(t *testing.T) {
	var tm *SoftTimer
	if tm.Pending() {
		t.Fatal("nil timer pending")
	}
}

func TestWheelCancelThenReAdd(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	fired := 0
	tm := &SoftTimer{Deadline: 2 * testJiffy, Fire: func(sim.Time) { fired++ }}
	w.Add(tm)
	w.Cancel(tm)
	tm.Deadline = 3 * testJiffy
	w.Add(tm) // re-add after cancel is legal
	w.AdvanceTo(4 * testJiffy)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

// TestWheelForeverDeadline pins the deadlineJiffies overflow fix: adding a
// timer at sim.Forever (or close enough that the round-up `deadline + jiffy
// - 1` would wrap negative) must not panic, must report NextExpiry ==
// Forever, and must never fire within any realistic horizon.
func TestWheelForeverDeadline(t *testing.T) {
	for _, deadline := range []sim.Time{
		sim.Forever,
		sim.Forever - 1,
		sim.Forever - testJiffy + 2, // just inside the overflow zone
	} {
		w := NewTimerWheel(testJiffy)
		tm := &SoftTimer{Deadline: deadline, Fire: func(sim.Time) { t.Fatalf("deadline %v fired", deadline) }}
		w.Add(tm)
		if !tm.Pending() {
			t.Fatalf("deadline %v: timer not pending", deadline)
		}
		if got := w.NextExpiry(); got != sim.Forever {
			t.Fatalf("deadline %v: NextExpiry = %v, want Forever", deadline, got)
		}
		if n := w.AdvanceTo(1000 * sim.Second); n != 0 {
			t.Fatalf("deadline %v: fired %d timers", deadline, n)
		}
		if got := w.NextExpiry(); got != sim.Forever {
			t.Fatalf("deadline %v after advance: NextExpiry = %v, want Forever", deadline, got)
		}
		if !w.Cancel(tm) {
			t.Fatalf("deadline %v: Cancel returned false", deadline)
		}
	}
}

// TestWheelForeverAmongOthers checks a Forever timer does not mask or
// distort the expiry of ordinary timers sharing the wheel.
func TestWheelForeverAmongOthers(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	w.Add(&SoftTimer{Deadline: sim.Forever, Fire: func(sim.Time) { t.Fatal("forever fired") }})
	fired := false
	w.Add(&SoftTimer{Deadline: 2 * testJiffy, Fire: func(sim.Time) { fired = true }})
	if got := w.NextExpiry(); got != 2*testJiffy {
		t.Fatalf("NextExpiry = %v, want %v", got, 2*testJiffy)
	}
	if n := w.AdvanceTo(3 * testJiffy); n != 1 || !fired {
		t.Fatalf("fired %d (%v), want 1", n, fired)
	}
	if got := w.NextExpiry(); got != sim.Forever {
		t.Fatalf("NextExpiry = %v, want Forever", got)
	}
}

// TestWheelLateAddFiresNextJiffy: a deadline at or before the current jiffy
// fires at the next boundary, not a full wheel lap later.
func TestWheelLateAddFiresNextJiffy(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	w.AdvanceTo(10 * testJiffy)
	var firedAt sim.Time
	w.Add(&SoftTimer{Deadline: 3 * testJiffy, Fire: func(now sim.Time) { firedAt = now }})
	if got := w.NextExpiry(); got != 11*testJiffy {
		t.Fatalf("NextExpiry = %v, want %v", got, 11*testJiffy)
	}
	if n := w.AdvanceTo(11 * testJiffy); n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if firedAt != 11*testJiffy {
		t.Fatalf("fired at %v, want %v", firedAt, 11*testJiffy)
	}
}

// TestWheelSameJiffyDeadlineOrder pins the AdvanceTo contract: timers
// expiring within one jiffy fire in (Deadline, Add-order) order even when
// added out of deadline order.
func TestWheelSameJiffyDeadlineOrder(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	var order []int
	mk := func(id int, d sim.Time) *SoftTimer {
		return &SoftTimer{Deadline: d, Fire: func(sim.Time) { order = append(order, id) }}
	}
	// All four round up to jiffy 3 (= 12ms at the 4ms test jiffy); ids 2 and
	// 3 share a deadline, so Add order breaks their tie.
	w.Add(mk(0, 11*sim.Millisecond))
	w.Add(mk(1, 9*sim.Millisecond))
	w.Add(mk(2, 10*sim.Millisecond))
	w.Add(mk(3, 10*sim.Millisecond))
	if n := w.AdvanceTo(12 * sim.Millisecond); n != 4 {
		t.Fatalf("fired %d, want 4", n)
	}
	want := []int{1, 2, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

// TestWheelCancelSiblingDuringFire: a Fire handler canceling another timer
// that expires in the same jiffy must see a clean no-op (the sibling is
// already detached), not a stale bucket reference.
func TestWheelCancelSiblingDuringFire(t *testing.T) {
	w := NewTimerWheel(testJiffy)
	var second *SoftTimer
	secondFired := false
	first := &SoftTimer{Deadline: testJiffy - 1, Fire: func(sim.Time) {
		if w.Cancel(second) {
			t.Error("canceling an expiring sibling reported pending")
		}
	}}
	second = &SoftTimer{Deadline: testJiffy, Fire: func(sim.Time) { secondFired = true }}
	w.Add(first)
	w.Add(second)
	if n := w.AdvanceTo(2 * testJiffy); n != 2 {
		t.Fatalf("fired %d, want 2", n)
	}
	if !secondFired {
		t.Fatal("detached sibling never fired")
	}
	if w.Len() != 0 {
		t.Fatalf("wheel retains %d timers", w.Len())
	}
}

// TestWheelSparseAdvanceSkipsEmptyJiffies checks the O(occupancy) fast
// path end to end: one timer, a multi-million-jiffy advance, exact fire
// time — and an empty wheel advancing even further.
func TestWheelSparseAdvanceSkipsEmptyJiffies(t *testing.T) {
	w := NewTimerWheel(sim.Millisecond)
	var firedAt sim.Time
	deadline := 3_000_000 * sim.Millisecond // beyond the top level's 2,097,152-jiffy reach
	w.Add(&SoftTimer{Deadline: deadline, Fire: func(now sim.Time) { firedAt = now }})
	if n := w.AdvanceTo(deadline - sim.Millisecond); n != 0 {
		t.Fatalf("fired %d early", n)
	}
	if n := w.AdvanceTo(deadline); n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if firedAt != deadline {
		t.Fatalf("fired at %v, want %v", firedAt, deadline)
	}
	// Empty wheel: a huge advance must be a cheap no-op that still moves
	// the clock (a subsequent late add fires at the next boundary).
	if n := w.AdvanceTo(100_000 * sim.Second); n != 0 {
		t.Fatalf("empty advance fired %d", n)
	}
	fired := false
	w.Add(&SoftTimer{Deadline: sim.Second, Fire: func(sim.Time) { fired = true }})
	w.AdvanceTo(100_000*sim.Second + sim.Millisecond)
	if !fired {
		t.Fatal("late add after empty fast-forward never fired")
	}
}

func TestWheelFireCanAddTimers(t *testing.T) {
	// A firing timer that re-queues itself (periodic soft timer pattern).
	w := NewTimerWheel(testJiffy)
	count := 0
	var tm *SoftTimer
	tm = &SoftTimer{Deadline: testJiffy, Fire: func(now sim.Time) {
		count++
		if count < 3 {
			tm.Deadline = now + testJiffy
			w.Add(tm)
		}
	}}
	w.Add(tm)
	for now := sim.Time(0); now <= 20*testJiffy; now += testJiffy {
		w.AdvanceTo(now)
	}
	if count != 3 {
		t.Fatalf("periodic re-add fired %d times, want 3", count)
	}
}
