package guest

import (
	"fmt"

	"paratick/internal/core"
	"paratick/internal/iodev"
	"paratick/internal/sim"
)

// SegKind classifies the units of guest execution the hypervisor consumes.
// Everything a vCPU does is a stream of segments; SegRun is the only
// preemptible kind (interrupts can cut it short), the others are atomic
// hypervisor interactions.
type SegKind int

const (
	// SegRun executes on the CPU for Duration (user or kernel time).
	SegRun SegKind = iota
	// SegMSRWrite writes the TSC_DEADLINE MSR (Deadline; sim.Forever
	// disarms). Intercepted by the hypervisor: a VM exit.
	SegMSRWrite
	// SegHLT enters the idle state; the vCPU blocks until an interrupt.
	SegHLT
	// SegIOSubmit kicks an emulated I/O device with Req: a VM exit.
	SegIOSubmit
	// SegIPI sends a wakeup IPI to vCPU Target in the same VM: a VM exit.
	SegIPI
	// SegHypercall issues a paravirtual call: a VM exit.
	SegHypercall
)

// String names the segment kind.
func (k SegKind) String() string {
	switch k {
	case SegRun:
		return "run"
	case SegMSRWrite:
		return "msr-write"
	case SegHLT:
		return "hlt"
	case SegIOSubmit:
		return "io-submit"
	case SegIPI:
		return "ipi"
	case SegHypercall:
		return "hypercall"
	}
	return fmt.Sprintf("seg(%d)", int(k))
}

// Segment is one unit of guest execution handed to the hypervisor.
type Segment struct {
	Kind     SegKind
	Label    string
	Duration sim.Time // SegRun only
	Kernel   bool     // SegRun: charge to guest-kernel rather than useful time
	Spin     bool     // SegRun: a pause loop (spinning on a lock); PLE target
	Deadline sim.Time // SegMSRWrite
	Req      *iodev.Request
	Dev      *iodev.Device      // SegIOSubmit
	Target   int                // SegIPI: destination vCPU id
	HKind    core.HypercallKind // SegHypercall
	HArg     int64
	// OnDone runs inside the guest when the segment fully completes
	// (a preempted SegRun completes only after its remainder runs).
	OnDone func()

	// ownerTask and ownerLock record which objects an OnDone closure is
	// bound over, so checkpoints can encode the closure symbolically
	// (task-run completion, or a lock-spin retry probe) and rebuild it on
	// restore. nil for segments whose OnDone is nil.
	ownerTask *Task
	ownerLock *Lock
}

// String renders a segment for diagnostics.
func (s *Segment) String() string {
	switch s.Kind {
	case SegRun:
		mode := "user"
		if s.Kernel {
			mode = "kernel"
		}
		return fmt.Sprintf("run(%v,%s,%s)", s.Duration, mode, s.Label)
	case SegMSRWrite:
		return fmt.Sprintf("msr-write(%v)", s.Deadline)
	case SegIPI:
		return fmt.Sprintf("ipi(->%d)", s.Target)
	default:
		return s.Kind.String()
	}
}
