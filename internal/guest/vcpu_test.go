package guest

import (
	"testing"

	"paratick/internal/core"
	"paratick/internal/hw"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sim"
)

// newTestKernel builds a kernel with n vCPUs in the given mode.
func newTestKernel(t *testing.T, mode core.Mode, vcpus int) (*sim.Engine, *Kernel) {
	t.Helper()
	e := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.Mode = mode
	k, err := NewKernel(e, hw.DefaultCostModel(), cfg, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vcpus; i++ {
		k.AddVCPU()
	}
	return e, k
}

// miniExec executes a vCPU's segment stream without a hypervisor: run
// segments advance simulated time, MSR writes arm a deadline timer, HLT
// stops execution. It is the minimal host needed for white-box guest tests.
type miniExec struct {
	e       *sim.Engine
	v       *VCPU
	timer   *hw.DeadlineTimer
	msrLog  []sim.Time // deadlines written (Forever = stop)
	ipiLog  []int
	hlt     bool
	hcalls  []core.HypercallKind
	stepCap int
}

func newMiniExec(e *sim.Engine, v *VCPU) *miniExec {
	m := &miniExec{e: e, v: v, stepCap: 10000}
	m.timer = hw.NewDeadlineTimer(e, "mini", func(now sim.Time) {
		v.Deliver(hw.LocalTimerVector)
		m.hlt = false
	})
	return m
}

// runOne pulls and executes one segment; returns it.
func (m *miniExec) runOne() *Segment {
	s := m.v.Next()
	switch s.Kind {
	case SegRun:
		m.e.RunUntil(m.e.Now() + s.Duration)
		if s.OnDone != nil {
			s.OnDone()
		}
	case SegMSRWrite:
		m.msrLog = append(m.msrLog, s.Deadline)
		if s.Deadline == sim.Forever {
			m.timer.Cancel()
		} else {
			m.timer.Arm(s.Deadline)
		}
	case SegHLT:
		m.hlt = true
	case SegIPI:
		m.ipiLog = append(m.ipiLog, s.Target)
	case SegHypercall:
		m.hcalls = append(m.hcalls, s.HKind)
	case SegIOSubmit:
		s.Dev.Submit(s.Req)
	}
	return s
}

// runUntilHalt executes segments until the vCPU halts (or the cap trips).
func (m *miniExec) runUntilHalt(t *testing.T) {
	t.Helper()
	m.hlt = false
	for i := 0; i < m.stepCap; i++ {
		if s := m.runOne(); s.Kind == SegHLT {
			return
		}
	}
	t.Fatal("vCPU never halted")
}

// runUntilTasksDone executes until the kernel reports no live tasks.
func (m *miniExec) runUntilTasksDone(t *testing.T) {
	t.Helper()
	for i := 0; i < m.stepCap; i++ {
		if m.v.kernel.LiveTasks() == 0 {
			return
		}
		s := m.runOne()
		if s.Kind == SegHLT {
			// Wait for the armed timer (if any) to fire and wake us.
			if !m.timer.Armed() {
				t.Fatal("halted forever: no timer armed and tasks alive")
			}
			m.e.RunUntil(m.timer.Deadline())
		}
	}
	t.Fatal("tasks never finished")
}

func TestKernelConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.TickHz = 0
	if bad.Validate() == nil {
		t.Error("TickHz=0 accepted")
	}
	bad = DefaultConfig()
	bad.RCUEveryNSwitches = -1
	if bad.Validate() == nil {
		t.Error("negative RCU accepted")
	}
	bad = DefaultConfig()
	bad.Mode = core.Mode(99)
	if bad.Validate() == nil {
		t.Error("bad mode accepted")
	}
	if DefaultConfig().TickPeriod() != 4*sim.Millisecond {
		t.Error("250 Hz should be 4ms")
	}
}

func TestNewKernelValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := NewKernel(nil, hw.DefaultCostModel(), DefaultConfig(), &metrics.Counters{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewKernel(e, hw.DefaultCostModel(), DefaultConfig(), nil); err == nil {
		t.Error("nil counters accepted")
	}
	badCost := hw.DefaultCostModel()
	badCost.GuestTickWork = 0
	if _, err := NewKernel(e, badCost, DefaultConfig(), &metrics.Counters{}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestSpawnValidation(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"bad vcpu", func() { k.Spawn("x", 5, Steps(Done())) }},
		{"negative vcpu", func() { k.Spawn("x", -1, Steps(Done())) }},
		{"nil program", func() { k.Spawn("x", 0, nil) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestBarrierValidation(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero-party barrier accepted")
		}
	}()
	k.NewBarrier("b", 0)
}

func TestAttachDeviceNilPanics(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	defer func() {
		if recover() == nil {
			t.Error("AttachDevice(nil) accepted")
		}
	}()
	k.AttachDevice(nil)
}

func TestBootStreams(t *testing.T) {
	// Periodic/dynticks boot: arm the tick → one MSR write queued.
	for _, mode := range []core.Mode{core.Periodic, core.DynticksIdle} {
		e, k := newTestKernel(t, mode, 1)
		v := k.VCPUs()[0]
		m := newMiniExec(e, v)
		v.Boot()
		m.runUntilHalt(t)
		if len(m.msrLog) == 0 {
			t.Errorf("%v boot armed no timer", mode)
		}
		if !v.TimerArmed() && mode == core.Periodic {
			t.Errorf("%v: timer not armed after boot", mode)
		}
	}
	// Paratick boot: hypercall, no timer.
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	v.Boot()
	m.runUntilHalt(t)
	if len(m.hcalls) != 1 || m.hcalls[0] != core.HypercallDeclareTickHz {
		t.Fatalf("paratick boot hypercalls = %v", m.hcalls)
	}
	if len(m.msrLog) != 0 {
		t.Fatalf("paratick boot wrote MSRs: %v", m.msrLog)
	}
}

func TestDoubleBootPanics(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	v.Boot()
	defer func() {
		if recover() == nil {
			t.Error("double boot accepted")
		}
	}()
	v.Boot()
}

func TestTaskComputeRunsToCompletion(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	tk := k.Spawn("w", 0, Steps(Compute(5*sim.Millisecond)))
	v.Boot()
	m.runUntilTasksDone(t)
	if tk.State() != TaskDone {
		t.Fatalf("task state = %v", tk.State())
	}
	// The hypervisor (not the guest) charges cycle counters; here we only
	// verify that simulated time actually advanced by the compute amount.
	if e.Now() < 5*sim.Millisecond {
		t.Fatalf("finished at %v, before the work amount", e.Now())
	}
	if tk.Runtime() < 5*sim.Millisecond {
		t.Fatalf("runtime = %v", tk.Runtime())
	}
}

func TestTaskRuntimeZeroWhileAlive(t *testing.T) {
	_, k := newTestKernel(t, core.Paratick, 1)
	tk := k.Spawn("w", 0, Steps(Compute(sim.Millisecond)))
	if tk.Runtime() != 0 {
		t.Fatal("live task has runtime")
	}
}

func TestSleepUsesWheelAndWakes(t *testing.T) {
	e, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	k.Spawn("s", 0, Steps(Sleep(10*sim.Millisecond), Compute(sim.Millisecond)))
	v.Boot()
	m.runUntilTasksDone(t)
	// Wheel rounds 10ms up to the next 4ms jiffy boundary = 12ms.
	if e.Now() < 12*sim.Millisecond {
		t.Fatalf("finished at %v, before the rounded sleep deadline", e.Now())
	}
	if k.Counters().Wakeups == 0 {
		t.Fatal("no wakeup recorded")
	}
}

func TestUncontendedLockFastPath(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	l := k.NewLock("l")
	k.Spawn("w", 0, Steps(Acquire(l), Compute(sim.Millisecond), Release(l)))
	v.Boot()
	m.runUntilTasksDone(t)
	if l.Acquisitions() != 1 || l.Contended() != 0 {
		t.Fatalf("acq=%d contended=%d", l.Acquisitions(), l.Contended())
	}
	if l.Holder() != nil {
		t.Fatal("lock still held")
	}
}

func TestContendedLockSameVCPU(t *testing.T) {
	// Two tasks on one vCPU: the holder sleeps while holding the lock so
	// the waiter runs into contention; release hands off directly, no IPIs
	// (same CPU).
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	l := k.NewLock("l")
	k.Spawn("a", 0, Steps(Acquire(l), Sleep(5*sim.Millisecond), Release(l), Done()))
	k.Spawn("b", 0, Steps(Compute(100*sim.Microsecond), Acquire(l), Release(l), Done()))
	v.Boot()
	m.runUntilTasksDone(t)
	if l.Contended() != 1 {
		t.Fatalf("contended = %d, want 1", l.Contended())
	}
	if len(m.ipiLog) != 0 {
		t.Fatalf("same-vCPU handoff sent IPIs: %v", m.ipiLog)
	}
	if l.Acquisitions() != 2 {
		t.Fatalf("acquisitions = %d", l.Acquisitions())
	}
}

func TestCrossVCPUWakeEmitsIPI(t *testing.T) {
	// Waker on vCPU 0 releases a lock whose waiter lives on vCPU 1: the
	// waker's segment stream must contain a reschedule IPI to vCPU 1.
	e, k := newTestKernel(t, core.Paratick, 2)
	v0, v1 := k.VCPUs()[0], k.VCPUs()[1]
	l := k.NewLock("l")
	waiter := k.Spawn("waiter", 1, Steps(Acquire(l), Release(l)))
	// Make the waiter block first: drive vCPU 1 until it acquires... the
	// lock is free, so pre-acquire through a holder task on vCPU 0.
	holder := k.Spawn("holder", 0, Steps(Acquire(l), Compute(sim.Millisecond), Release(l)))
	m0, m1 := newMiniExec(e, v0), newMiniExec(e, v1)
	v0.Boot()
	v1.Boot()
	// vCPU0 runs the holder up to (and including) the acquisition.
	for l.Holder() != holder {
		m0.runOne()
	}
	// vCPU1 now runs the waiter into contention.
	m1.runUntilHalt(t)
	if waiter.State() != TaskBlocked {
		t.Fatalf("waiter state = %v", waiter.State())
	}
	// vCPU0 finishes: compute, release, wake(waiter) → IPI to vCPU 1.
	// (The holder's Done state flips before its queued IPI segment
	// executes, so drain until the IPI appears or the vCPU halts.)
	for i := 0; i < 100 && len(m0.ipiLog) == 0; i++ {
		if m0.runOne().Kind == SegHLT {
			break
		}
	}
	if len(m0.ipiLog) != 1 || m0.ipiLog[0] != 1 {
		t.Fatalf("ipi log = %v, want [1]", m0.ipiLog)
	}
	if waiter.State() != TaskRunnable {
		t.Fatalf("waiter not runnable after wake: %v", waiter.State())
	}
	if l.Holder() != waiter {
		t.Fatal("direct handoff failed")
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	l := k.NewLock("l")
	k.Spawn("bad", 0, Steps(Release(l)))
	v.Boot()
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld lock did not panic")
		}
	}()
	m.runUntilTasksDone(t)
}

func TestBarrierDetachReleasesWaiters(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	b := k.NewBarrier("b", 3)
	// Two tasks join; the third detaches instead — the remaining two must
	// be released.
	k.Spawn("j1", 0, Steps(JoinBarrier(b), Done()))
	k.Spawn("j2", 0, Steps(Compute(10*sim.Microsecond), JoinBarrier(b), Done()))
	k.Spawn("leaver", 0, Steps(Compute(20*sim.Microsecond), LeaveBarrier(b), Done()))
	v.Boot()
	m.runUntilTasksDone(t)
	if b.Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1 (detach completed the party)", b.Cycles())
	}
	if b.Parties() != 2 {
		t.Fatalf("parties = %d after detach, want 2", b.Parties())
	}
}

func TestYieldRotatesTasks(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	var order []string
	mark := func(name string, next Step) Program {
		done := false
		return ProgramFunc(func(*StepCtx) Step {
			if done {
				return Done()
			}
			done = true
			order = append(order, name)
			return next
		})
	}
	k.Spawn("a", 0, mark("a", Yield()))
	k.Spawn("b", 0, mark("b", Compute(sim.Microsecond)))
	v.Boot()
	m.runUntilTasksDone(t)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeliverPushesHandlerAheadOfPreemptedWork(t *testing.T) {
	e, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	k.Spawn("w", 0, Steps(Compute(10*sim.Millisecond)))
	v.Boot()
	// Pull until we hold the task's run segment.
	var runSeg *Segment
	for i := 0; i < 100; i++ {
		s := v.Next()
		if s.Kind == SegRun && !s.Kernel {
			runSeg = s
			break
		}
		m.execAux(s)
	}
	if runSeg == nil {
		t.Fatal("no task run segment")
	}
	// Interrupt mid-segment: 4ms consumed, 6ms remain.
	e.RunUntil(e.Now() + 4*sim.Millisecond)
	v.Preempt(runSeg, 6*sim.Millisecond)
	v.Deliver(hw.LocalTimerVector)
	// The next segments must be the irq handler (kernel), and the task's
	// remainder must resume afterwards with exactly 6ms.
	first := v.Next()
	if first.Kind != SegRun || !first.Kernel || first.Label != "irq-entry" {
		t.Fatalf("first post-irq segment = %v", first)
	}
	for i := 0; i < 100; i++ {
		s := v.Next()
		if s.Kind == SegRun && !s.Kernel {
			if s.Duration != 6*sim.Millisecond {
				t.Fatalf("remainder = %v, want 6ms", s.Duration)
			}
			return
		}
		m.execAux(s)
	}
	t.Fatal("task remainder never resumed")
}

// execAux executes a non-task segment in tests that hand-drive Next().
func (m *miniExec) execAux(s *Segment) {
	switch s.Kind {
	case SegRun:
		m.e.RunUntil(m.e.Now() + s.Duration)
		if s.OnDone != nil {
			s.OnDone()
		}
	case SegMSRWrite:
		m.msrLog = append(m.msrLog, s.Deadline)
	case SegHypercall:
		m.hcalls = append(m.hcalls, s.HKind)
	}
}

func TestPreemptKernelSegmentRequeues(t *testing.T) {
	e, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	v.Boot()
	// Find a kernel run segment (boot's timer-program work).
	var seg *Segment
	for i := 0; i < 20; i++ {
		s := v.Next()
		if s.Kind == SegRun && s.Kernel {
			seg = s
			break
		}
	}
	if seg == nil {
		t.Fatal("no kernel segment found")
	}
	v.Preempt(seg, 100)
	next := v.Next()
	if next.Kind != SegRun || !next.Kernel || next.Duration != 100 {
		t.Fatalf("requeued remainder = %v", next)
	}
	_ = e
}

func TestPreemptNonRunPanics(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	defer func() {
		if recover() == nil {
			t.Error("Preempt of non-run segment accepted")
		}
	}()
	v.Preempt(&Segment{Kind: SegHLT}, 5)
}

func TestTickPreemptionRotatesRunqueue(t *testing.T) {
	// With two CPU hogs and PreemptOnTick, RunTickWork must set
	// needResched so the scheduler rotates.
	e, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	a := k.Spawn("a", 0, Steps(Compute(20*sim.Millisecond)))
	b := k.Spawn("b", 0, Steps(Compute(20*sim.Millisecond)))
	v.Boot()
	// Run task a's segment partially, deliver a tick, confirm rotation.
	for i := 0; i < 100 && v.Current() != a; i++ {
		m.runOne()
	}
	seg := v.Next() // a's run segment
	if seg.Kind != SegRun || seg.Kernel {
		t.Fatalf("expected a's run segment, got %v", seg)
	}
	e.RunUntil(e.Now() + 4*sim.Millisecond)
	v.Preempt(seg, 16*sim.Millisecond)
	v.Deliver(hw.LocalTimerVector) // tick: RunTickWork sees runq non-empty
	// Drain handler segments; the scheduler must switch to b.
	for i := 0; i < 100; i++ {
		s := v.Next()
		if s.Kind == SegRun && !s.Kernel {
			if v.Current() != b {
				t.Fatalf("current = %v, want b after tick preemption", v.Current().Name)
			}
			if a.State() != TaskRunnable {
				t.Fatalf("a state = %v", a.State())
			}
			return
		}
		m.execAux(s)
	}
	t.Fatal("never reached a task segment after tick")
}

func TestShouldHalt(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	v.Boot()
	m.runUntilHalt(t)
	if !v.ShouldHalt() {
		t.Fatal("idle vCPU with empty runq should halt")
	}
	// A task arriving after the HLT was queued flips the verdict.
	k.Spawn("late", 0, Steps(Compute(sim.Microsecond)))
	if v.ShouldHalt() {
		t.Fatal("runnable task present; must not halt")
	}
}

func TestIdleCountersAndReIdle(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	v.Boot()
	m.runUntilHalt(t)
	if k.Counters().IdleEnters != 1 {
		t.Fatalf("idle enters = %d", k.Counters().IdleEnters)
	}
	// A spurious wake (no runnable task) re-evaluates idle entry and halts
	// again without counting another transition.
	v.Deliver(hw.RescheduleVector)
	m.runUntilHalt(t)
	if k.Counters().IdleEnters != 1 {
		t.Fatalf("spurious wake counted as idle transition: %d", k.Counters().IdleEnters)
	}
	if k.Counters().IdleExits != 0 {
		t.Fatalf("idle exits = %d", k.Counters().IdleExits)
	}
}

func TestTimerArmsCounted(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	v.Boot() // arms once
	if k.Counters().TimerArms != 1 {
		t.Fatalf("timer arms = %d", k.Counters().TimerArms)
	}
	v.StopTimer()
	if k.Counters().TimerArms != 2 {
		t.Fatalf("timer arms after stop = %d", k.Counters().TimerArms)
	}
}

func TestNextSoftEventIncludesRCU(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	v := k.VCPUs()[0]
	if v.NextSoftEvent() != sim.Forever {
		t.Fatal("fresh vCPU has soft events")
	}
	v.rcuPending = true
	v.rcuDeadline = 7 * sim.Millisecond
	if v.NextSoftEvent() != 7*sim.Millisecond {
		t.Fatalf("NextSoftEvent = %v", v.NextSoftEvent())
	}
	if !v.TickRequired() {
		t.Fatal("pending RCU should require the tick")
	}
}

func TestSegmentStrings(t *testing.T) {
	cases := []struct {
		seg  Segment
		want string
	}{
		{Segment{Kind: SegRun, Duration: sim.Millisecond, Label: "w"}, "run(1ms,user,w)"},
		{Segment{Kind: SegRun, Duration: 1, Kernel: true, Label: "k"}, "run(1ns,kernel,k)"},
		{Segment{Kind: SegMSRWrite, Deadline: 5}, "msr-write(5ns)"},
		{Segment{Kind: SegIPI, Target: 3}, "ipi(->3)"},
		{Segment{Kind: SegHLT}, "hlt"},
		{Segment{Kind: SegHypercall}, "hypercall"},
		{Segment{Kind: SegIOSubmit}, "io-submit"},
	}
	for _, c := range cases {
		if got := c.seg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if SegKind(99).String() != "seg(99)" {
		t.Error("unknown seg kind")
	}
}

func TestStepKindStrings(t *testing.T) {
	if StepCompute.String() != "compute" || StepDone.String() != "done" ||
		StepBarrierLeave.String() != "barrier-leave" {
		t.Error("step kind names")
	}
	if StepKind(99).String() != "step(99)" {
		t.Error("unknown step kind")
	}
	if TaskRunnable.String() != "runnable" || TaskDone.String() != "done" {
		t.Error("task state names")
	}
	if TaskState(9).String() != "state(9)" {
		t.Error("unknown task state")
	}
}

func TestOnAllDoneFires(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	var doneAt sim.Time
	k.OnAllDone = func(now sim.Time) { doneAt = now }
	k.Spawn("w", 0, Steps(Compute(3*sim.Millisecond)))
	v.Boot()
	m.runUntilTasksDone(t)
	if doneAt == 0 {
		t.Fatal("OnAllDone never fired")
	}
	if k.LiveTasks() != 0 {
		t.Fatal("live tasks nonzero")
	}
}

func TestDefaultKernelCosts(t *testing.T) {
	_, k := newTestKernel(t, core.DynticksIdle, 1)
	if k.defaultKernelCost("idle-enter-eval") != k.cost.GuestIdleEnterWork {
		t.Error("idle-enter cost mapping")
	}
	if k.defaultKernelCost("idle-exit") != k.cost.GuestIdleExitWork {
		t.Error("idle-exit cost mapping")
	}
	if k.defaultKernelCost("paratick-stale-timer") != 200 {
		t.Error("stale-timer cost mapping")
	}
	if k.defaultKernelCost("anything-else") != 300 {
		t.Error("default cost mapping")
	}
}

func TestWakeNonBlockedTaskIsNoop(t *testing.T) {
	_, k := newTestKernel(t, core.Paratick, 1)
	tk := k.Spawn("w", 0, Steps(Compute(sim.Millisecond)))
	before := k.Counters().Wakeups
	k.WakeTask(tk) // runnable, not blocked
	if k.Counters().Wakeups != before {
		t.Fatal("waking a runnable task counted")
	}
	if tk.State() != TaskRunnable {
		t.Fatal("state changed")
	}
}

func TestBlockReasonExposed(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	l := k.NewLock("mylock")
	k.Spawn("holder", 0, Steps(Acquire(l), Sleep(5*sim.Millisecond), Release(l)))
	w := k.Spawn("waiter", 0, Steps(Compute(sim.Microsecond), Acquire(l), Release(l)))
	v.Boot()
	for i := 0; i < 200 && w.State() != TaskBlocked; i++ {
		m.runOne()
	}
	if w.BlockReason() != "lock:mylock" {
		t.Fatalf("block reason = %q", w.BlockReason())
	}
}

func TestLockSpinPathAcquiresAfterRelease(t *testing.T) {
	// With adaptive spin, a waiter whose spin outlives the holder's
	// critical section acquires without ever blocking.
	e := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.Mode = core.Paratick
	cfg.AdaptiveSpin = 50 * sim.Microsecond
	k, err := NewKernel(e, hw.DefaultCostModel(), cfg, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	k.AddVCPU()
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	l := k.NewLock("l")
	// Holder takes the lock and sleeps briefly — shorter than the spin.
	// (Sleep granularity is one 4ms jiffy, so use a second task on the
	// same vCPU whose critical section is compute-only: holder computes
	// 10µs inside the CS; the spinner's 50µs spin covers it.)
	k.Spawn("holder", 0, Steps(Acquire(l), Compute(10*sim.Microsecond), Release(l), Done()))
	spinner := k.Spawn("spinner", 0, Steps(Acquire(l), Release(l), Done()))
	v.Boot()
	// Run holder to acquisition, then preempt-switch to the spinner via
	// yield-like scheduling is complex; instead just run everything: on a
	// single vCPU the holder finishes first, so the spinner's fast path
	// hits. Exercise the spin path directly instead: acquire on behalf of
	// a fake holder.
	m.runUntilTasksDone(t)
	if spinner.State() != TaskDone {
		t.Fatal("spinner did not finish")
	}
	if l.Contended() != 0 {
		t.Fatalf("contended = %d; single-vCPU serial execution should be uncontended", l.Contended())
	}
}

func TestSpinSegmentEmitted(t *testing.T) {
	e := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.Mode = core.Paratick
	cfg.AdaptiveSpin = 30 * sim.Microsecond
	k, err := NewKernel(e, hw.DefaultCostModel(), cfg, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	k.AddVCPU()
	v := k.VCPUs()[0]
	l := k.NewLock("l")
	holder := k.Spawn("holder", 0, Steps(Acquire(l), Sleep(8*sim.Millisecond), Release(l), Done()))
	k.Spawn("waiter", 0, Steps(Compute(sim.Microsecond), Acquire(l), Release(l), Done()))
	v.Boot()
	m := newMiniExec(e, v)
	// Drive until the waiter emits its spin segment.
	sawSpin := false
	for i := 0; i < 500 && !sawSpin; i++ {
		s := m.v.Next()
		if s.Kind == SegRun && s.Spin {
			sawSpin = true
			if s.Duration < 20*sim.Microsecond || s.Duration > 40*sim.Microsecond {
				t.Fatalf("spin duration = %v", s.Duration)
			}
			// Execute it: the holder still sleeps, so the waiter blocks.
			m.execAux(s)
			if s.OnDone != nil {
				s.OnDone()
			}
			break
		}
		m.execAux(s)
		if s.Kind == SegHLT {
			e.RunUntil(m.timer.Deadline())
		}
	}
	if !sawSpin {
		t.Fatal("no spin segment emitted under contention")
	}
	_ = holder
}

func TestAccessorSurface(t *testing.T) {
	e, k := newTestKernel(t, core.DynticksIdle, 2)
	dev, err := iodev.New(e, "d0", iodev.NVMe(), hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	k.AttachDevice(dev)
	if len(k.Devices()) != 1 || k.Devices()[0] != dev {
		t.Error("Devices accessor")
	}
	if k.Config().Mode != core.DynticksIdle {
		t.Error("Config accessor")
	}
	if k.Now() != 0 {
		t.Error("Now accessor")
	}
	tk := k.Spawn("t", 1, Steps(Done()))
	if len(k.Tasks()) != 1 || tk.VCPU() != k.VCPUs()[1] {
		t.Error("Tasks/VCPU accessors")
	}
	v := k.VCPUs()[1]
	if v.ID() != 1 || v.Kernel() != k || v.Policy().Mode() != core.DynticksIdle {
		t.Error("vCPU identity accessors")
	}
	if v.RunQueueLen() != 1 {
		t.Errorf("runq len = %d", v.RunQueueLen())
	}
	if v.PendingSegments() != 0 {
		t.Error("fresh vCPU has segments")
	}
	if v.Wheel() == nil || v.Wheel().Len() != 0 {
		t.Error("wheel accessor")
	}
	l := k.NewLock("mylock")
	if l.Name() != "mylock" || l.Waiters() != 0 {
		t.Error("lock accessors")
	}
	b := k.NewBarrier("mybar", 3)
	if b.Name() != "mybar" || b.Waiting() != 0 {
		t.Error("barrier accessors")
	}
}

func TestLockTryAcquireQueuesWaiter(t *testing.T) {
	_, k := newTestKernel(t, core.Paratick, 1)
	l := k.NewLock("l")
	a := k.Spawn("a", 0, Steps(Done()))
	b := k.Spawn("b", 0, Steps(Done()))
	if !l.tryAcquire(a) {
		t.Fatal("free lock not acquired")
	}
	if l.tryAcquire(b) {
		t.Fatal("held lock acquired")
	}
	if l.Waiters() != 1 || l.Contended() != 1 {
		t.Fatalf("waiters=%d contended=%d", l.Waiters(), l.Contended())
	}
	next := l.release(a)
	if next != b || l.Holder() != b {
		t.Fatal("direct handoff broken")
	}
}

func TestBarrierArriveReleaseCycle(t *testing.T) {
	_, k := newTestKernel(t, core.Paratick, 1)
	b := k.NewBarrier("b", 2)
	t1 := k.Spawn("1", 0, Steps(Done()))
	t2 := k.Spawn("2", 0, Steps(Done()))
	if toWake, release := b.arrive(t1); release || len(toWake) != 0 {
		t.Fatal("first arrival released")
	}
	toWake, release := b.arrive(t2)
	if !release || len(toWake) != 1 || toWake[0] != t1 {
		t.Fatalf("second arrival: release=%v toWake=%v", release, toWake)
	}
	if b.Cycles() != 1 {
		t.Fatal("cycle not counted")
	}
}

func TestStepConstructors(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	_ = k
	dev, err := iodev.New(e, "d", iodev.NVMe(), hw.IODeviceBase)
	if err != nil {
		t.Fatal(err)
	}
	r := Read(dev, 4096, true)
	if r.Kind != StepIO || r.Write || !r.Sequential || !r.Blocking || r.Bytes != 4096 {
		t.Errorf("Read step: %+v", r)
	}
	w := WriteOp(dev, 8192, false, false)
	if w.Kind != StepIO || !w.Write || w.Sequential || w.Blocking {
		t.Errorf("WriteOp step: %+v", w)
	}
	if Yield().Kind != StepYield || Done().Kind != StepDone {
		t.Error("Yield/Done constructors")
	}
	if Compute(5).D != 5 || Sleep(7).D != 7 {
		t.Error("Compute/Sleep constructors")
	}
}

func TestCondWaitSignal(t *testing.T) {
	// Producer/consumer: the consumer waits on a condvar; the producer
	// signals after making an item. Classic pipeline-PARSEC shape.
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	mu := k.NewLock("q.mu")
	nonEmpty := k.NewCond("q.nonempty", mu)
	items := 0
	consumed := false
	consumerPhase := 0
	k.Spawn("consumer", 0, ProgramFunc(func(*StepCtx) Step {
		switch consumerPhase {
		case 0: // take the lock
			consumerPhase = 1
			return Acquire(mu)
		case 1: // while queue empty: wait
			if items == 0 {
				return Wait(nonEmpty)
			}
			consumerPhase = 2
			items--
			consumed = true
			return Release(mu)
		default:
			return Done()
		}
	}))
	producerPhase := 0
	k.Spawn("producer", 0, ProgramFunc(func(*StepCtx) Step {
		switch producerPhase {
		case 0: // let the consumer block first
			producerPhase = 1
			return Compute(sim.Millisecond)
		case 1:
			producerPhase = 2
			return Acquire(mu)
		case 2: // produce
			producerPhase = 3
			items++
			return Signal(nonEmpty)
		case 3:
			producerPhase = 4
			return Release(mu)
		default:
			return Done()
		}
	}))
	v.Boot()
	m.runUntilTasksDone(t)
	if !consumed {
		t.Fatal("consumer never consumed")
	}
	if nonEmpty.Waits() != 1 || nonEmpty.Signals() != 1 {
		t.Fatalf("waits=%d signals=%d", nonEmpty.Waits(), nonEmpty.Signals())
	}
	if mu.Holder() != nil {
		t.Fatal("lock leaked")
	}
}

func TestCondBroadcastWakesAllWithoutThunderingHerd(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	mu := k.NewLock("mu")
	cv := k.NewCond("cv", mu)
	finished := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", 0, ProgramFunc(func() func(*StepCtx) Step {
			phase := 0
			return func(*StepCtx) Step {
				switch phase {
				case 0:
					phase = 1
					return Acquire(mu)
				case 1:
					phase = 2
					return Wait(cv)
				case 2:
					phase = 3
					finished++
					return Release(mu)
				default:
					return Done()
				}
			}
		}()))
	}
	k.Spawn("broadcaster", 0, Steps(
		Compute(sim.Millisecond),
		Acquire(mu),
		Broadcast(cv),
		Release(mu),
	))
	v.Boot()
	m.runUntilTasksDone(t)
	if finished != 3 {
		t.Fatalf("finished = %d, want 3", finished)
	}
	if cv.Waiters() != 0 || mu.Waiters() != 0 {
		t.Fatal("waiters leaked")
	}
	if cv.Signals() != 3 {
		t.Fatalf("signals = %d", cv.Signals())
	}
	if cv.Name() != "cv" || cv.Lock() != mu {
		t.Error("cond accessors")
	}
}

func TestCondWaitWithoutLockPanics(t *testing.T) {
	e, k := newTestKernel(t, core.Paratick, 1)
	v := k.VCPUs()[0]
	m := newMiniExec(e, v)
	mu := k.NewLock("mu")
	cv := k.NewCond("cv", mu)
	k.Spawn("bad", 0, Steps(Wait(cv)))
	v.Boot()
	defer func() {
		if recover() == nil {
			t.Error("cond wait without lock did not panic")
		}
	}()
	m.runUntilTasksDone(t)
}

func TestNewCondNilLockPanics(t *testing.T) {
	_, k := newTestKernel(t, core.Paratick, 1)
	defer func() {
		if recover() == nil {
			t.Error("NewCond(nil) accepted")
		}
	}()
	k.NewCond("c", nil)
}
